// Figure 1: "Probability of winning the next block for SL-PoS."
//
// The paper's Figure 1 illustrates why SL-PoS monopolises: at stake share
// Z_n = 0.3 the win probability is below 30% (drift down), at 0.7 above 70%
// (drift up), and Z_n = 0.5 is a knife edge.  This bench prints the win
// probability and drift f(Z) over a share grid (the plotted curve), the
// drift's zero set with stability classification (Theorem 4.9), and an
// empirical cross-check of the win probability at the paper's highlighted
// shares.

#include <cstdio>

#include "campaign_common.hpp"
#include "core/stochastic_approximation.hpp"
#include "protocol/win_probability.hpp"
#include "support/rng.hpp"

int main() {
  using namespace fairchain;

  std::printf(
      "================================================================\n"
      "Figure 1 — SL-PoS next-block win probability and drift\n"
      "================================================================\n\n");

  Table curve({"share Z", "win probability", "proportional", "drift f(Z)",
               "direction"});
  curve.SetTitle("Two-miner SL-PoS selection rule (Section 2.3 closed form)");
  for (int i = 1; i <= 19; ++i) {
    const double z = static_cast<double>(i) / 20.0;
    const double win = protocol::SlPosTwoMinerWinProbability(z, 1.0 - z);
    const double drift = core::SlPosDriftTwoMiner(z);
    curve.AddRow();
    curve.Cell(z, 2);
    curve.Cell(win, 4);
    curve.Cell(z, 4);
    curve.Cell(drift, 4);
    curve.Cell(std::string(drift < -1e-12   ? "toward 0"
                           : drift > 1e-12 ? "toward 1"
                                           : "equilibrium"));
  }
  curve.Emit("fig1_curve");

  Table zeros({"zero point", "stable", "interpretation"});
  zeros.SetTitle("Zero set of the drift (Theorem 4.9)");
  for (const auto& zero : core::SlPosTwoMinerZeros()) {
    zeros.AddRow();
    zeros.Cell(zero.location, 4);
    zeros.Cell(std::string(zero.stable ? "yes" : "no"));
    zeros.Cell(std::string(
        zero.location < 0.25   ? "miner A wiped out"
        : zero.location > 0.75 ? "miner A monopolises"
                               : "knife edge: never converged to"));
  }
  zeros.Emit("fig1_zeros");

  // Empirical cross-check at the paper's highlighted shares.
  Table check({"share Z", "closed form", "simulated (1e6 lotteries)"});
  check.SetTitle("Monte Carlo validation of the selection rule");
  RngStream rng(1);
  for (const double z : {0.3, 0.5, 0.7}) {
    int wins = 0;
    const int trials = 1000000;
    for (int t = 0; t < trials; ++t) {
      const double deadline_a = rng.NextOpenDouble() / z;
      const double deadline_b = rng.NextOpenDouble() / (1.0 - z);
      if (deadline_a < deadline_b) ++wins;
    }
    check.AddRow();
    check.Cell(z, 2);
    check.Cell(protocol::SlPosTwoMinerWinProbability(z, 1.0 - z), 4);
    check.Cell(static_cast<double>(wins) / trials, 4);
  }
  check.Emit("fig1_check");

  // Game-level leg: the registry's fig1 scenario plays the drift out over
  // whole mining games at the highlighted shares.
  std::printf("\n");
  bench::RunScenarioCampaign("fig1");

  std::printf(
      "Shape vs paper: win probability below the diagonal for Z < 1/2 and\n"
      "above it for Z > 1/2; zeros {0, 1/2, 1} with 1/2 unstable — the\n"
      "mechanism behind SL-PoS monopolization.\n");
  return 0;
}
