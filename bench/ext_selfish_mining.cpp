// Extension experiment (the paper's stated future work, Sections 6.5 / 8):
// selfish mining as an attack on PoW's expectational fairness.
//
// Reproduces the classic Eyal-Sirer revenue curve: the pool's revenue
// share vs its hash share alpha, for tie-propagation gamma in {0, 0.5, 1},
// from both the closed form and the event-level simulator, and reports the
// fairness threshold where honest PoW's E[lambda] = alpha breaks.

#include <cstdio>

#include "bench_common.hpp"
#include "core/selfish_mining.hpp"
#include "support/rng.hpp"

int main() {
  using namespace fairchain;

  const std::uint64_t events = FastModeEnabled() ? 200000 : 2000000;
  std::printf(
      "================================================================\n"
      "Extension — selfish mining vs PoW expectational fairness\n"
      "(%llu block events per cell)\n"
      "================================================================\n\n",
      static_cast<unsigned long long>(events));

  Table table({"alpha", "honest lambda", "g=0 formula", "g=0 simulated",
               "g=0.5 formula", "g=0.5 simulated", "g=1 formula",
               "g=1 simulated"});
  table.SetTitle(
      "Selfish-pool revenue share (> alpha means expectational fairness "
      "is broken)");
  for (int pct = 5; pct <= 50; pct += 5) {
    const double alpha = static_cast<double>(pct) / 100.0;
    table.AddRow();
    table.Cell(alpha, 2);
    table.Cell(alpha, 2);  // honest mining earns exactly alpha
    for (const double gamma : {0.0, 0.5, 1.0}) {
      table.Cell(core::SelfishMiningRevenue(alpha, gamma), 4);
      core::SelfishMiningSimulator simulator(alpha, gamma);
      RngStream rng(static_cast<std::uint64_t>(pct * 100 + gamma * 10));
      table.Cell(simulator.Run(rng, events).RevenueShare(), 4);
    }
  }
  table.Emit("ext_selfish_mining");

  Table thresholds({"gamma", "profitability threshold alpha"});
  thresholds.SetTitle("Eyal-Sirer thresholds: alpha above which selfish "
                      "mining beats honest mining");
  for (const double gamma : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    thresholds.AddRow();
    thresholds.Cell(gamma, 2);
    thresholds.Cell(core::SelfishMiningThreshold(gamma), 4);
  }
  thresholds.Emit("ext_selfish_thresholds");

  std::printf(
      "Above the threshold the pool's lambda exceeds alpha: PoW's "
      "Theorem 3.2 fairness is an\nhonest-behaviour property, exactly the "
      "attack surface the paper defers to future work.\n");
  return 0;
}
