// Ablation: C-PoS shard count P (Theorem 4.10's 1/P factor).
//
// Sweeps P over {1, 2, 4, 8, 16, 32, 64} at w = 0.01 for v in {0, 0.1},
// reporting terminal unfair probability, empirical lambda variance, and
// the Theorem 4.10 Azuma bound.  P = 1, v = 0 is exactly ML-PoS; each
// doubling of P halves the condition LHS.

#include <cstdio>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "protocol/c_pos.hpp"

int main() {
  using namespace fairchain;
  namespace exp = core::experiments;

  auto config = bench::FigureConfig(exp::kDefaultSteps, 6000, 300, 25);
  bench::Banner("Ablation", "C-PoS shard count sweep (a = 0.2, w = 0.01)",
                config);
  const core::FairnessSpec spec = exp::DefaultSpec();
  core::MonteCarloEngine engine(config, spec);

  for (const double v : {0.0, 0.1}) {
    Table table({"shards P", "unfair prob", "lambda stddev", "Azuma bound",
                 "Thm 4.10 satisfied"});
    table.SetTitle("C-PoS shard ablation, v = " + std::to_string(v));
    for (const std::uint32_t P : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      protocol::CPosModel model(exp::kDefaultW, v, P);
      const auto result = engine.RunTwoMiner(model, exp::kDefaultA);
      table.AddRow();
      table.Cell(static_cast<std::uint64_t>(P));
      table.Cell(result.Final().unfair_probability, 4);
      table.Cell(result.Final().std_dev, 5);
      table.Cell(core::CPosUnfairUpperBound(config.steps, exp::kDefaultW, v,
                                            P, exp::kDefaultA, spec.epsilon),
                 4);
      table.Cell(std::string(
          core::CPosSatisfiesBound(config.steps, exp::kDefaultW, v, P,
                                   exp::kDefaultA, spec)
              ? "yes"
              : "no"));
    }
    table.Emit("ablation_shards_v" + std::to_string(v));
  }

  std::printf(
      "Both levers of Theorem 4.10 are visible: the lambda spread falls "
      "like ~1/sqrt(P),\nand inflation multiplies the effect — v = 0.1 "
      "with P >= 2 is already robustly fair.\n");
  return 0;
}
