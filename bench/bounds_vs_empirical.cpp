// Supporting experiment: every analytical bound in the paper against the
// empirical (simulated) unfair probability — Theorem 4.2 (PoW/Hoeffding +
// the exact binomial Δ), Theorem 4.3 (ML-PoS/Azuma + the exact Beta
// limit), Theorem 4.10 (C-PoS).  The bounds must dominate the empirical
// values; the exact computations must track them closely.

#include <cstdio>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "protocol/c_pos.hpp"
#include "protocol/ml_pos.hpp"
#include "protocol/pow.hpp"

int main() {
  using namespace fairchain;
  namespace exp = core::experiments;

  const core::FairnessSpec spec = exp::DefaultSpec();
  const double a = exp::kDefaultA;
  const std::uint64_t horizons[] = {250, 500, 1000, 2500, 5000};
  const std::uint64_t reps = EnvReps(10000, 400);

  std::printf(
      "================================================================\n"
      "Bounds vs empirical — a = 0.2, (eps, delta) = (0.1, 0.1), %llu reps\n"
      "================================================================\n\n",
      static_cast<unsigned long long>(reps));

  auto run_unfair = [&](const protocol::IncentiveModel& model,
                        std::uint64_t n) {
    core::SimulationConfig config;
    config.steps = n;
    config.replications = reps;
    config.seed = 20210620;
    config.checkpoints = {n};
    core::MonteCarloEngine engine(config, spec);
    return engine.RunTwoMiner(model, a).Final().unfair_probability;
  };

  // PoW.
  {
    protocol::PowModel model(exp::kDefaultW);
    Table table({"n", "empirical", "exact binomial", "Hoeffding bound",
                 "bound holds"});
    table.SetTitle("PoW (Theorem 4.2)");
    for (const std::uint64_t n : horizons) {
      const double empirical = run_unfair(model, n);
      const double exact = 1.0 - core::PowExactFairProbability(n, a, 0.1);
      const double bound = core::PowUnfairUpperBound(n, a, 0.1);
      table.AddRow();
      table.Cell(n);
      table.Cell(empirical, 4);
      table.Cell(exact, 4);
      table.Cell(bound, 4);
      table.Cell(std::string(empirical <= bound + 0.02 ? "yes" : "NO"));
    }
    table.Emit("bounds_pow");
  }

  // ML-PoS.
  {
    protocol::MlPosModel model(exp::kDefaultW);
    Table table({"n", "empirical", "Beta-limit exact", "Azuma bound",
                 "bound holds"});
    table.SetTitle("ML-PoS (Theorem 4.3; limit = Beta(a/w, b/w))");
    const double limit =
        core::MlPosLimitUnfairProbability(a, exp::kDefaultW, 0.1);
    for (const std::uint64_t n : horizons) {
      const double empirical = run_unfair(model, n);
      const double bound =
          core::MlPosUnfairUpperBound(n, exp::kDefaultW, a, 0.1);
      table.AddRow();
      table.Cell(n);
      table.Cell(empirical, 4);
      table.Cell(limit, 4);
      table.Cell(bound, 4);
      table.Cell(std::string(empirical <= bound + 0.02 ? "yes" : "NO"));
    }
    table.Emit("bounds_mlpos");
  }

  // C-PoS.
  {
    protocol::CPosModel model(exp::kDefaultW, exp::kDefaultV,
                              exp::kDefaultShards);
    Table table({"n", "empirical", "Azuma bound", "condition LHS",
                 "Thm 4.10 satisfied"});
    table.SetTitle("C-PoS (Theorem 4.10; RHS = 2a^2eps^2/ln(2/delta))");
    for (const std::uint64_t n : horizons) {
      const double empirical = run_unfair(model, n);
      const double bound = core::CPosUnfairUpperBound(
          n, exp::kDefaultW, exp::kDefaultV, exp::kDefaultShards, a, 0.1);
      const double lhs = core::CPosConditionLhs(n, exp::kDefaultW,
                                                exp::kDefaultV,
                                                exp::kDefaultShards);
      table.AddRow();
      table.Cell(n);
      table.Cell(empirical, 4);
      table.Cell(bound, 4);
      table.CellSci(lhs, 2);
      table.Cell(std::string(core::CPosSatisfiesBound(
                                 n, exp::kDefaultW, exp::kDefaultV,
                                 exp::kDefaultShards, a, spec)
                                 ? "yes"
                                 : "no"));
    }
    table.Emit("bounds_cpos");
  }

  std::printf(
      "All bounds dominate the empirical unfair probabilities; the exact\n"
      "binomial / Beta-limit computations track them tightly — the\n"
      "Hoeffding/Azuma sufficient conditions are conservative by design.\n");
  return 0;
}
