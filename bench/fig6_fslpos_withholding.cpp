// Figure 6: "Evolution of λ_A ... under a = 0.2, w = 0.01" for the paper's
// two remedies:
//   (a) FSL-PoS — the fair single lottery (Section 6.2): expectational
//       fairness restored, robust fairness still not;
//   (b) FSL-PoS + reward withholding (Section 6.3): rewards take effect at
//       the next 1000-block boundary — nearly all mass inside the fair
//       area.
//
// The real-system leg (the paper modified NXT) is substituted by the
// SL-PoS chain engine with the fair transform enabled.

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "chain/mining_game.hpp"
#include "protocol/fsl_pos.hpp"
#include "support/stats.hpp"

namespace {

using namespace fairchain;
namespace exp = core::experiments;

void PrintPanel(const char* panel, const char* what,
                const core::SimulationResult& result) {
  Table table({"n", "mean", "p5", "p95", "unfair prob"});
  table.SetTitle(std::string("Figure 6") + panel + " — " + what +
                 "  (fair area [0.18, 0.22])");
  const std::size_t stride = result.checkpoints.size() > 12
                                 ? result.checkpoints.size() / 12
                                 : 1;
  for (std::size_t i = 0; i < result.checkpoints.size(); ++i) {
    if (i % stride != 0 && i + 1 != result.checkpoints.size()) continue;
    const auto& cp = result.checkpoints[i];
    table.AddRow();
    table.Cell(cp.step);
    table.Cell(cp.mean, 4);
    table.Cell(cp.p05, 4);
    table.Cell(cp.p95, 4);
    table.Cell(cp.unfair_probability, 3);
  }
  table.Emit(std::string("fig6") + panel);
}

}  // namespace

int main() {
  using namespace fairchain;

  auto config = bench::FigureConfig(exp::kDefaultSteps, 10000, 400, 60);
  bench::Banner("Figure 6", "FSL-PoS treatment and reward withholding",
                config);
  const core::FairnessSpec spec = exp::DefaultSpec();
  protocol::FslPosModel model(exp::kDefaultW);

  // Panel (a): plain FSL-PoS.
  {
    core::MonteCarloEngine engine(config, spec);
    PrintPanel("a", "FSL-PoS", engine.RunTwoMiner(model, exp::kDefaultA));
  }
  // Panel (b): FSL-PoS with rewards taking effect at the next 1000-block
  // boundary.
  {
    auto withheld = config;
    withheld.withhold_period = 1000;
    core::MonteCarloEngine engine(withheld, spec);
    PrintPanel("b", "FSL-PoS + reward withholding (period 1000)",
               engine.RunTwoMiner(model, exp::kDefaultA));
  }

  // Real-system analog: the NXT engine with the fair transform.
  const std::uint64_t reps = EnvReps(200, 25);
  const std::uint64_t blocks = FastModeEnabled() ? 200 : 1000;
  const auto lambdas = chain::ReplicatedRewardFractions(
      [] {
        chain::SlPosEngineConfig c;
        c.block_reward = 10000;
        c.fair_transform = true;
        return std::make_unique<chain::SlPosEngine>(c);
      },
      {200000, 800000}, blocks, reps, 106, 0);
  RunningStats stats;
  for (const double l : lambdas) stats.Add(l);
  const auto qs = Quantiles(lambdas, {0.05, 0.95});
  std::printf(
      "real-system analog FSL-PoS/chain (n = %llu): mean %.4f, "
      "5th pct %.4f, 95th pct %.4f (%zu runs)\n\n",
      static_cast<unsigned long long>(blocks), stats.Mean(), qs[0], qs[1],
      lambdas.size());

  std::printf(
      "Shape vs paper: (a) mean back at 0.2 but band outside the fair "
      "area;\n(b) with withholding nearly all mass inside the fair area.\n");
  return 0;
}
