// Figure 6: "Evolution of λ_A ... under a = 0.2, w = 0.01" for the paper's
// two remedies — a thin wrapper over the registry's `fig6` scenario
// (FSL-PoS plain, and FSL-PoS with rewards taking effect at the next
// 1000-block boundary) run through the campaign runner.  The real-system
// leg (the paper modified NXT) is substituted by the SL-PoS chain engine
// with the fair transform enabled.

#include <cstdio>
#include <memory>

#include "campaign_common.hpp"
#include "chain/mining_game.hpp"
#include "support/stats.hpp"

int main() {
  using namespace fairchain;

  bench::RunScenarioCampaign("fig6");

  // Real-system analog: the NXT engine with the fair transform.
  const std::uint64_t reps = EnvReps(200, 25);
  const std::uint64_t blocks = FastModeEnabled() ? 200 : 1000;
  const auto lambdas = chain::ReplicatedRewardFractions(
      [] {
        chain::SlPosEngineConfig c;
        c.block_reward = 10000;
        c.fair_transform = true;
        return std::make_unique<chain::SlPosEngine>(c);
      },
      {200000, 800000}, blocks, reps, 106, 0);
  RunningStats stats;
  for (const double l : lambdas) stats.Add(l);
  const auto qs = Quantiles(lambdas, {0.05, 0.95});
  std::printf(
      "\nreal-system analog FSL-PoS/chain (n = %llu): mean %.4f, "
      "5th pct %.4f, 95th pct %.4f (%zu runs)\n",
      static_cast<unsigned long long>(blocks), stats.Mean(), qs[0], qs[1],
      lambdas.size());

  std::printf(
      "\nShape vs paper: (a) mean back at 0.2 but band outside the fair "
      "area;\n(b) with withholding nearly all mass inside the fair area.\n");
  return 0;
}
