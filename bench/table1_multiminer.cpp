// Table 1: "Results for Multi-Miner Game" — a thin wrapper over the
// registry's `table1` scenario (4 protocols × {2,3,4,5,10} miners; miner A
// holds 20%, the rest split the remaining 80% equally; w = 0.01, v = 0.1)
// run through the campaign runner.  The summary table reports, per cell,
// the average of λ_A, the unfair probability, and the convergence time
// ("Never" when (ε, δ)-fairness is never sustained).

#include <cstdio>

#include "campaign_common.hpp"

int main() {
  fairchain::bench::RunScenarioCampaign("table1");
  std::printf(
      "\nShape vs paper: PoW/ML-PoS/C-PoS rows are invariant to the miner "
      "count (B acts as one\naggregate competitor); SL-PoS flips with the "
      "competitor split — avg lambda ~ 0 for 2-4\nminers, 0.2 for five "
      "equal miners, rising toward 1 when A is the biggest (10 miners).\n"
      "PoW and C-PoS converge; ML-PoS and SL-PoS report Never.  (SL-PoS "
      "avg lambda climbs\ntoward the paper's 0.98 as the horizon grows; "
      "lambda averages the whole history.)\n");
  return 0;
}
