// Table 1: "Results for Multi-Miner Game" — for 2, 3, 4, 5 and 10 miners
// (miner A holds 20%, the rest split the remaining 80% equally; w = 0.01,
// v = 0.1): the average of λ_A, the unfair probability, and the
// convergence time ("Never" when (ε, δ)-fairness is never sustained).

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace fairchain;
  namespace exp = core::experiments;

  // A longer horizon than Figure 2 so the SL-PoS monopoly dynamics play
  // out (the paper's SL-PoS rows report fully-converged games).
  const std::uint64_t steps = FastModeEnabled() ? 2000 : 20000;
  core::SimulationConfig config;
  config.steps = steps;
  config.replications = EnvReps(4000, 200);
  config.seed = 20210620;
  config.checkpoints = core::LinearCheckpoints(steps, 200);
  bench::Banner("Table 1", "multi-miner game (A holds 20%, rest equal)",
                config);
  const core::FairnessSpec spec = exp::DefaultSpec();

  const std::size_t miner_counts[] = {2, 3, 4, 5, 10};
  const auto models = exp::MakeStandardProtocols();

  // The paper groups rows by metric; reproduce that layout.
  Table avg({"No. of Miners", "PoW", "ML-PoS", "SL-PoS", "C-PoS"});
  avg.SetTitle("Table 1 — Avg. of lambda_A");
  Table unfair({"No. of Miners", "PoW", "ML-PoS", "SL-PoS", "C-PoS"});
  unfair.SetTitle("Table 1 — Unfair Prob.");
  Table cvg({"No. of Miners", "PoW", "ML-PoS", "SL-PoS", "C-PoS"});
  cvg.SetTitle("Table 1 — Cvg. Time (blocks/epochs; Never = not sustained)");

  for (const std::size_t miners : miner_counts) {
    avg.AddRow();
    unfair.AddRow();
    cvg.AddRow();
    const std::string label = std::to_string(miners) + " Miners";
    avg.Cell(label);
    unfair.Cell(label);
    cvg.Cell(label);
    for (const auto& model : models) {
      const auto outcome = exp::RunMultiMinerGame(*model, miners,
                                                  exp::kDefaultA, config,
                                                  spec);
      avg.Cell(outcome.avg_lambda, 2);
      unfair.Cell(outcome.unfair_probability, 2);
      cvg.Cell(exp::FormatConvergence(outcome.convergence_step));
    }
  }

  avg.Emit("table1_avg_lambda");
  unfair.Emit("table1_unfair");
  cvg.Emit("table1_convergence");

  std::printf(
      "Shape vs paper: PoW/ML-PoS/C-PoS rows are invariant to the miner "
      "count (B acts as one\naggregate competitor); SL-PoS flips with the "
      "competitor split — avg lambda ~ 0 for 2-4\nminers, 0.2 for five "
      "equal miners, rising toward 1 when A is the biggest (10 miners).\n"
      "PoW and C-PoS converge; ML-PoS and SL-PoS report Never.  (SL-PoS "
      "avg lambda climbs\ntoward the paper's 0.98 as the horizon grows; "
      "lambda averages the whole history.)\n");
  return 0;
}
