// Figure 2: "Evolution of λ_A along with the number n of blocks under
// a = 0.2, w = 0.01 and v = 0.1" — the four-protocol panel set, now a thin
// wrapper over the registry's `fig2` scenario run through the campaign
// runner (full per-checkpoint evolution streams to FAIRCHAIN_CSV_DIR as
// CSV/JSONL).  The real-system leg (the paper's green bars from
// Geth / Qtum / NXT on EC2) is substituted by the hash-level chain engines
// at the paper's smaller repeat counts.

#include <cstdio>
#include <memory>

#include "campaign_common.hpp"
#include "chain/mining_game.hpp"
#include "support/stats.hpp"

namespace {

using namespace fairchain;

void PrintChainBar(const char* name, const std::vector<double>& lambdas) {
  RunningStats stats;
  for (const double l : lambdas) stats.Add(l);
  const auto qs = Quantiles(lambdas, {0.05, 0.95});
  std::printf(
      "  real-system analog %-14s: mean %.4f, 5th pct %.4f, 95th pct %.4f "
      "(%zu runs)\n",
      name, stats.Mean(), qs[0], qs[1], lambdas.size());
}

}  // namespace

int main() {
  using namespace fairchain;

  bench::RunScenarioCampaign("fig2");

  // Real-system analog: hash-level chain games (paper: 10 PoW / 500 PoS
  // repeats; we default to 10 / 200 and honour FAIRCHAIN_FAST).
  std::printf(
      "\nReal-system analog (hash-level chain substrate, n = 1000):\n");
  const std::uint64_t pow_reps = FastModeEnabled() ? 3 : 10;
  const std::uint64_t pos_reps = EnvReps(200, 25);
  const std::uint64_t chain_blocks = FastModeEnabled() ? 200 : 1000;

  PrintChainBar("PoW/chain",
                chain::ReplicatedRewardFractions(
                    [] {
                      chain::PowEngineConfig c;
                      c.hash_rates = {4, 16};
                      c.initial_expected_trials = 1024.0;
                      return std::make_unique<chain::PowEngine>(c);
                    },
                    {200, 800}, chain_blocks, pow_reps, 101, 0));
  PrintChainBar("ML-PoS/chain",
                chain::ReplicatedRewardFractions(
                    [] {
                      chain::MlPosEngineConfig c;
                      c.block_reward = 10000;
                      c.target_spacing = 16;
                      return std::make_unique<chain::MlPosEngine>(c);
                    },
                    {200000, 800000}, chain_blocks, pos_reps, 102, 0));
  PrintChainBar("SL-PoS/chain",
                chain::ReplicatedRewardFractions(
                    [] {
                      chain::SlPosEngineConfig c;
                      c.block_reward = 10000;
                      return std::make_unique<chain::SlPosEngine>(c);
                    },
                    {200000, 800000}, chain_blocks, pos_reps, 103, 0));
  PrintChainBar("C-PoS/chain",
                chain::ReplicatedRewardFractions(
                    [] {
                      chain::CPosEngineConfig c;
                      c.proposer_reward = 10000;
                      c.inflation_reward = 100000;
                      c.shards = 32;
                      return std::make_unique<chain::CPosEngine>(c);
                    },
                    {200000, 800000}, chain_blocks, pos_reps, 104, 0));

  std::printf(
      "\nShape vs paper: (a) PoW band narrows into the fair area past "
      "n~1000; (b) ML-PoS mean\nstays at 0.2 but the band never enters the "
      "fair area; (c) SL-PoS decays toward 0;\n(d) C-PoS is tightly "
      "concentrated inside the fair area.\n");
  return 0;
}
