// Figure 2: "Evolution of λ_A along with the number n of blocks under
// a = 0.2, w = 0.01 and v = 0.1" — four panels (PoW, ML-PoS, SL-PoS,
// C-PoS), each showing the mean of λ_A, the 5th-95th percentile band, the
// fair area [0.18, 0.22], plus the real-system bars.
//
// The numerical-simulation leg uses the fast stake-evolution models at
// paper-scale replication counts; the real-system leg (the paper's green
// bars from Geth / Qtum / NXT on EC2) is substituted by the hash-level
// chain engines (see DESIGN.md) at the paper's smaller repeat counts.

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "chain/mining_game.hpp"
#include "support/stats.hpp"

namespace {

using namespace fairchain;
namespace exp = core::experiments;

void PrintPanel(const char* panel, const core::SimulationResult& result) {
  Table table({"n", "mean", "p5", "p25", "median", "p75", "p95",
               "unfair prob"});
  table.SetTitle(std::string("Figure 2") + panel + " — " + result.protocol +
                 "  (fair area [0.18, 0.22])");
  // Print ~12 representative checkpoints of the evolution.
  const std::size_t stride =
      result.checkpoints.size() > 12 ? result.checkpoints.size() / 12 : 1;
  for (std::size_t i = 0; i < result.checkpoints.size(); ++i) {
    if (i % stride != 0 && i + 1 != result.checkpoints.size()) continue;
    const auto& cp = result.checkpoints[i];
    table.AddRow();
    table.Cell(cp.step);
    table.Cell(cp.mean, 4);
    table.Cell(cp.p05, 4);
    table.Cell(cp.p25, 4);
    table.Cell(cp.median, 4);
    table.Cell(cp.p75, 4);
    table.Cell(cp.p95, 4);
    table.Cell(cp.unfair_probability, 3);
  }
  table.Emit(std::string("fig2") + panel);
}

void PrintChainBar(const char* name, const std::vector<double>& lambdas) {
  RunningStats stats;
  for (const double l : lambdas) stats.Add(l);
  std::vector<double> sorted = lambdas;
  const auto qs = Quantiles(sorted, {0.05, 0.95});
  std::printf(
      "  real-system analog %-14s: mean %.4f, 5th pct %.4f, 95th pct %.4f "
      "(%zu runs)\n",
      name, stats.Mean(), qs[0], qs[1], lambdas.size());
}

}  // namespace

int main() {
  using namespace fairchain;

  auto config = bench::FigureConfig(exp::kDefaultSteps, 10000, 400, 60);
  bench::Banner("Figure 2",
                "evolution of lambda_A (a = 0.2, w = 0.01, v = 0.1, P = 32)",
                config);
  const core::FairnessSpec spec = exp::DefaultSpec();
  core::MonteCarloEngine engine(config, spec);

  const auto models = exp::MakeStandardProtocols();
  const char* panels[] = {"a", "b", "c", "d"};
  for (std::size_t i = 0; i < models.size(); ++i) {
    const auto result = engine.RunTwoMiner(*models[i], exp::kDefaultA);
    PrintPanel(panels[i], result);
  }

  // Real-system analog: hash-level chain games (paper: 10 PoW / 500 PoS
  // repeats; we default to 10 / 200 and honour FAIRCHAIN_FAST).
  std::printf("Real-system analog (hash-level chain substrate, n = 1000):\n");
  const std::uint64_t pow_reps = FastModeEnabled() ? 3 : 10;
  const std::uint64_t pos_reps = EnvReps(200, 25);
  const std::uint64_t chain_blocks = FastModeEnabled() ? 200 : 1000;

  PrintChainBar("PoW/chain",
                chain::ReplicatedRewardFractions(
                    [] {
                      chain::PowEngineConfig c;
                      c.hash_rates = {4, 16};
                      c.initial_expected_trials = 1024.0;
                      return std::make_unique<chain::PowEngine>(c);
                    },
                    {200, 800}, chain_blocks, pow_reps, 101, 0));
  PrintChainBar("ML-PoS/chain",
                chain::ReplicatedRewardFractions(
                    [] {
                      chain::MlPosEngineConfig c;
                      c.block_reward = 10000;
                      c.target_spacing = 16;
                      return std::make_unique<chain::MlPosEngine>(c);
                    },
                    {200000, 800000}, chain_blocks, pos_reps, 102, 0));
  PrintChainBar("SL-PoS/chain",
                chain::ReplicatedRewardFractions(
                    [] {
                      chain::SlPosEngineConfig c;
                      c.block_reward = 10000;
                      return std::make_unique<chain::SlPosEngine>(c);
                    },
                    {200000, 800000}, chain_blocks, pos_reps, 103, 0));
  PrintChainBar("C-PoS/chain",
                chain::ReplicatedRewardFractions(
                    [] {
                      chain::CPosEngineConfig c;
                      c.proposer_reward = 10000;
                      c.inflation_reward = 100000;
                      c.shards = 32;
                      return std::make_unique<chain::CPosEngine>(c);
                    },
                    {200000, 800000}, chain_blocks, pos_reps, 104, 0));

  std::printf(
      "\nShape vs paper: (a) PoW band narrows into the fair area past "
      "n~1000; (b) ML-PoS mean\nstays at 0.2 but the band never enters the "
      "fair area; (c) SL-PoS decays toward 0;\n(d) C-PoS is tightly "
      "concentrated inside the fair area.\n");
  return 0;
}
