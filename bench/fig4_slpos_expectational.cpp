// Figure 4: "Average of reward proportion λ_A for SL-PoS" — two registry
// scenarios run through the campaign runner:
//   fig4a: allocation sweep a in {0.1..0.5} at w = 0.01;
//   fig4b: reward sweep w in {1e-4..1e-1} at a = 0.2;
// both over a 10^5-block log-spaced horizon.  This is the expectational-
// UNfairness figure: every a < 0.5 decays to 0, and smaller w decays
// slower.

#include <cstdio>

#include "campaign_common.hpp"

int main() {
  fairchain::bench::RunScenarioCampaign("fig4a");
  std::printf("\n");
  fairchain::bench::RunScenarioCampaign("fig4b");
  std::printf(
      "\nShape vs paper: (a) every a < 0.5 decays toward 0 (larger a "
      "slower), a = 0.5 stays at 0.5\nby symmetry; (b) larger w decays "
      "faster — the first-block win rate is a/(2(1-a)) = 0.125\nand "
      "compounding does the rest.\n");
  return 0;
}
