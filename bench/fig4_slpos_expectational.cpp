// Figure 4: "Average of reward proportion λ_A for SL-PoS":
//   (a) different initial stake allocations a in {0.1..0.5} at w = 0.01;
//   (b) different block rewards w in {1e-4..1e-1} at a = 0.2;
// both on a long horizon (10^5 blocks in the paper), log-spaced.
//
// This is the expectational-UNfairness figure: every a < 0.5 decays to 0,
// and smaller w decays slower.

#include <cstdio>

#include "bench_common.hpp"
#include "protocol/sl_pos.hpp"

int main() {
  using namespace fairchain;
  namespace exp = core::experiments;

  const std::uint64_t steps = FastModeEnabled() ? 5000 : 100000;
  core::SimulationConfig config;
  config.steps = steps;
  config.replications = EnvReps(2000, 200);
  config.seed = 20210620;
  config.checkpoints = core::LogCheckpoints(steps, 18, 10);
  bench::Banner("Figure 4", "SL-PoS mean lambda_A decay (log-spaced n)",
                config);
  core::MonteCarloEngine engine(config, exp::DefaultSpec());

  // Panel (a): allocation sweep at w = 0.01.
  {
    const double allocations[] = {0.1, 0.2, 0.3, 0.4, 0.5};
    protocol::SlPosModel model(exp::kDefaultW);
    std::vector<core::SimulationResult> results;
    for (const double a : allocations) {
      results.push_back(engine.RunTwoMiner(model, a));
    }
    Table table({"n", "a=0.1", "a=0.2", "a=0.3", "a=0.4", "a=0.5"});
    table.SetTitle("Figure 4a — mean lambda_A under w = 0.01");
    for (std::size_t i = 0; i < results[0].checkpoints.size(); ++i) {
      table.AddRow();
      table.Cell(results[0].checkpoints[i].step);
      for (const auto& result : results) {
        table.Cell(result.checkpoints[i].mean, 4);
      }
    }
    table.Emit("fig4a");
  }

  // Panel (b): reward sweep at a = 0.2.
  {
    const double rewards[] = {1e-4, 1e-3, 1e-2, 1e-1};
    std::vector<core::SimulationResult> results;
    for (const double w : rewards) {
      protocol::SlPosModel model(w);
      results.push_back(engine.RunTwoMiner(model, 0.2));
    }
    Table table({"n", "w=1e-4", "w=1e-3", "w=1e-2", "w=1e-1"});
    table.SetTitle("Figure 4b — mean lambda_A under a = 0.2");
    for (std::size_t i = 0; i < results[0].checkpoints.size(); ++i) {
      table.AddRow();
      table.Cell(results[0].checkpoints[i].step);
      for (const auto& result : results) {
        table.Cell(result.checkpoints[i].mean, 4);
      }
    }
    table.Emit("fig4b");
  }

  std::printf(
      "Shape vs paper: (a) every a < 0.5 decays toward 0 (larger a slower), "
      "a = 0.5 stays at 0.5\nby symmetry; (b) larger w decays faster — the "
      "first-block win rate is a/(2(1-a)) = 0.125\nand compounding does the "
      "rest.\n");
  return 0;
}
