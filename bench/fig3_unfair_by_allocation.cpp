// Figure 3: "Unfair probabilities for PoW, ML-PoS, SL-PoS and C-PoS under
// w = 0.01, v = 0.1 and different settings of a" — a thin wrapper over the
// registry's `fig3` scenario (4 protocols × 4 allocations = 16 cells) run
// through the campaign runner; the per-checkpoint curves stream to
// FAIRCHAIN_CSV_DIR as CSV/JSONL.

#include <cstdio>

#include "campaign_common.hpp"

int main() {
  fairchain::bench::RunScenarioCampaign("fig3");
  std::printf(
      "\nShape vs paper: PoW curves fall below delta, larger a faster;\n"
      "ML-PoS plateaus above delta with richer miners lower; SL-PoS\n"
      "rises to 1 for every a; C-PoS falls fast and stays below delta.\n");
  return 0;
}
