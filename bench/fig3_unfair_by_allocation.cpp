// Figure 3: "Unfair probabilities for PoW, ML-PoS, SL-PoS and C-PoS under
// w = 0.01, v = 0.1 and different settings of a" — four panels, each
// plotting the unfair probability vs the number of blocks for
// a in {0.1, 0.2, 0.3, 0.4}, with the delta = 0.1 threshold line.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace fairchain;
  namespace exp = core::experiments;

  auto config = bench::FigureConfig(exp::kDefaultSteps, 10000, 400, 40);
  bench::Banner("Figure 3",
                "unfair probability vs n under different allocations a",
                config);
  const core::FairnessSpec spec = exp::DefaultSpec();
  core::MonteCarloEngine engine(config, spec);

  const double allocations[] = {0.1, 0.2, 0.3, 0.4};
  const auto models = exp::MakeStandardProtocols();
  const char* panels[] = {"a", "b", "c", "d"};

  for (std::size_t p = 0; p < models.size(); ++p) {
    Table table({"n", "a=0.1", "a=0.2", "a=0.3", "a=0.4"});
    table.SetTitle(std::string("Figure 3") + panels[p] + " — " +
                   models[p]->name() +
                   " unfair probability (threshold delta = 0.1)");
    // Collect the four curves.
    std::vector<core::SimulationResult> results;
    for (const double a : allocations) {
      results.push_back(engine.RunTwoMiner(*models[p], a));
    }
    const std::size_t stride = results[0].checkpoints.size() > 10
                                   ? results[0].checkpoints.size() / 10
                                   : 1;
    for (std::size_t i = 0; i < results[0].checkpoints.size(); ++i) {
      if (i % stride != 0 && i + 1 != results[0].checkpoints.size()) continue;
      table.AddRow();
      table.Cell(results[0].checkpoints[i].step);
      for (const auto& result : results) {
        table.Cell(result.checkpoints[i].unfair_probability, 3);
      }
    }
    table.Emit(std::string("fig3") + panels[p]);

    // Convergence summary (when each allocation clears delta).
    std::printf("convergence (first n with unfair prob <= 0.1, sustained): ");
    for (std::size_t k = 0; k < results.size(); ++k) {
      std::printf("a=%.1f: %s%s", allocations[k],
                  exp::FormatConvergence(results[k].ConvergenceStep()).c_str(),
                  k + 1 < results.size() ? ",  " : "\n\n");
    }
  }

  std::printf(
      "Shape vs paper: (a) PoW curves fall below delta, larger a faster;\n"
      "(b) ML-PoS plateaus above delta with richer miners lower; (c) SL-PoS\n"
      "rises to 1 for every a; (d) C-PoS falls fast and stays below delta.\n");
  return 0;
}
