// Figure 5: "Unfair probabilities ... under a = 0.2 and different settings
// of w and v" — two registry scenarios run through the campaign runner:
//   fig5:  panels a-c, the block-reward sweep for ML-PoS / SL-PoS / C-PoS;
//   fig5d: the C-PoS inflation sweep, printed for both P = 32 (the
//          Ethereum 2.0 sharding the paper's model states) and P = 1.
// The P = 1 magnitudes track the paper's plotted series; at P = 32 the
// sharding alone suppresses proposer variance so strongly that C-PoS is
// essentially perfectly fair for v >= 0.01 — consistent with Theorem 4.10.

#include <cstdio>

#include "campaign_common.hpp"

int main() {
  fairchain::bench::RunScenarioCampaign("fig5");
  std::printf("\n");
  fairchain::bench::RunScenarioCampaign("fig5d");
  std::printf(
      "\nShape vs paper: (a) ML-PoS w = 1e-1 is >= 85%% unfair, w = 1e-4 "
      "clears delta;\n(b) SL-PoS rises to 1 regardless of w; (c) C-PoS "
      "dominated by ML-PoS everywhere;\n(d) unfair probability decreases "
      "in v (paper magnitudes at P = 1; at P = 32 sharding\nalready "
      "suppresses most variance).\n");
  return 0;
}
