// Figure 5: "Unfair probabilities ... under a = 0.2 and different settings
// of w and v":
//   (a) ML-PoS, w in {1e-4, 1e-3, 1e-2, 1e-1};
//   (b) SL-PoS, same sweep (insensitive: all -> 1);
//   (c) C-PoS, same sweep at v = 0.1;
//   (d) C-PoS, v in {0, 0.01, 0.1} at w = 0.01.
//
// Panel (d) is printed for both P = 32 (the Ethereum 2.0 sharding the
// paper's model states) and P = 1 (no sharding).  The P = 1 magnitudes
// track the paper's plotted series (~70% / ~50% / ~10%); at P = 32 the
// sharding alone suppresses proposer variance so strongly that C-PoS is
// essentially perfectly fair for v >= 0.01 — consistent with Theorem 4.10,
// which predicts a 32x smaller LHS.  See EXPERIMENTS.md.

#include <cstdio>

#include "bench_common.hpp"
#include "protocol/c_pos.hpp"
#include "protocol/ml_pos.hpp"
#include "protocol/sl_pos.hpp"

namespace {

using namespace fairchain;
namespace exp = core::experiments;

template <typename MakeModel>
void RewardSweepPanel(core::MonteCarloEngine& engine, const char* id,
                      const char* what, MakeModel make_model) {
  const double rewards[] = {1e-4, 1e-3, 1e-2, 1e-1};
  std::vector<core::SimulationResult> results;
  for (const double w : rewards) {
    auto model = make_model(w);
    results.push_back(engine.RunTwoMiner(*model, exp::kDefaultA));
  }
  Table table({"n", "w=1e-4", "w=1e-3", "w=1e-2", "w=1e-1"});
  table.SetTitle(std::string("Figure 5") + id + " — " + what +
                 " unfair probability (a = 0.2, delta = 0.1)");
  const std::size_t stride = results[0].checkpoints.size() > 10
                                 ? results[0].checkpoints.size() / 10
                                 : 1;
  for (std::size_t i = 0; i < results[0].checkpoints.size(); ++i) {
    if (i % stride != 0 && i + 1 != results[0].checkpoints.size()) continue;
    table.AddRow();
    table.Cell(results[0].checkpoints[i].step);
    for (const auto& result : results) {
      table.Cell(result.checkpoints[i].unfair_probability, 3);
    }
  }
  table.Emit(std::string("fig5") + id);
}

void InflationSweepPanel(core::MonteCarloEngine& engine, std::uint32_t P) {
  const double inflations[] = {0.0, 0.01, 0.1};
  std::vector<core::SimulationResult> results;
  for (const double v : inflations) {
    protocol::CPosModel model(exp::kDefaultW, v, P);
    results.push_back(engine.RunTwoMiner(model, exp::kDefaultA));
  }
  Table table({"n", "v=0", "v=0.01", "v=0.1"});
  table.SetTitle("Figure 5d — C-PoS unfair probability, w = 0.01, P = " +
                 std::to_string(P));
  const std::size_t stride = results[0].checkpoints.size() > 10
                                 ? results[0].checkpoints.size() / 10
                                 : 1;
  for (std::size_t i = 0; i < results[0].checkpoints.size(); ++i) {
    if (i % stride != 0 && i + 1 != results[0].checkpoints.size()) continue;
    table.AddRow();
    table.Cell(results[0].checkpoints[i].step);
    for (const auto& result : results) {
      table.Cell(result.checkpoints[i].unfair_probability, 3);
    }
  }
  table.Emit("fig5d_P" + std::to_string(P));
}

}  // namespace

int main() {
  using namespace fairchain;

  auto config = bench::FigureConfig(exp::kDefaultSteps, 10000, 400, 40);
  bench::Banner("Figure 5",
                "unfair probability under reward sweeps (a = 0.2)", config);
  core::MonteCarloEngine engine(config, exp::DefaultSpec());

  RewardSweepPanel(engine, "a", "ML-PoS", [](double w) {
    return std::make_unique<protocol::MlPosModel>(w);
  });
  RewardSweepPanel(engine, "b", "SL-PoS", [](double w) {
    return std::make_unique<protocol::SlPosModel>(w);
  });
  RewardSweepPanel(engine, "c", "C-PoS (v = 0.1, P = 32)", [](double w) {
    return std::make_unique<protocol::CPosModel>(w, exp::kDefaultV,
                                                 exp::kDefaultShards);
  });
  InflationSweepPanel(engine, exp::kDefaultShards);
  InflationSweepPanel(engine, 1);

  std::printf(
      "Shape vs paper: (a) ML-PoS w = 1e-1 is >= 85%% unfair, w = 1e-4 "
      "clears delta;\n(b) SL-PoS rises to 1 regardless of w; (c) C-PoS "
      "dominated by ML-PoS everywhere;\n(d) unfair probability decreases "
      "in v (paper magnitudes at P = 1; at P = 32 sharding\nalready "
      "suppresses most variance).\n");
  return 0;
}
