// Microbenchmarks (google-benchmark): throughput of the substrates the
// experiment harness is built on — hashes, 256-bit arithmetic, samplers,
// protocol steps, and the Monte Carlo engine end to end.

#include <benchmark/benchmark.h>

#include "core/monte_carlo.hpp"
#include "crypto/keccak256.hpp"
#include "crypto/sha256.hpp"
#include "math/distributions.hpp"
#include "protocol/c_pos.hpp"
#include "protocol/ml_pos.hpp"
#include "protocol/pow.hpp"
#include "protocol/sl_pos.hpp"
#include "protocol/win_probability.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"
#include "support/u256.hpp"

namespace {

using namespace fairchain;

void BM_Sha256_64B(benchmark::State& state) {
  std::uint8_t data[64] = {0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256Digest(data, sizeof(data)));
    data[0]++;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha256_64B);

void BM_Keccak256_64B(benchmark::State& state) {
  std::uint8_t data[64] = {0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Keccak256Digest(data, sizeof(data)));
    data[0]++;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Keccak256_64B);

void BM_U256_Division(benchmark::State& state) {
  const U256 numerator = U256::FromHex(
      "fedcba9876543210fedcba9876543210fedcba9876543210fedcba9876543210");
  U256 denominator = U256::FromHex("1234567890abcdef1234567");
  for (auto _ : state) {
    benchmark::DoNotOptimize(numerator / denominator);
  }
}
BENCHMARK(BM_U256_Division);

void BM_U256_MulDivU64(benchmark::State& state) {
  const U256 value = U256::FromHex(
      "fedcba9876543210fedcba9876543210fedcba9876543210fedcba9876543210");
  for (auto _ : state) {
    benchmark::DoNotOptimize(value.MulDivU64(123456789, 987654321));
  }
}
BENCHMARK(BM_U256_MulDivU64);

void BM_RngNextDouble(benchmark::State& state) {
  RngStream rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.NextDouble());
}
BENCHMARK(BM_RngNextDouble);

void BM_SampleBinomial32(benchmark::State& state) {
  RngStream rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::SampleBinomial(rng, 32, 0.2));
  }
}
BENCHMARK(BM_SampleBinomial32);

template <typename Model>
void StepBenchmark(benchmark::State& state, const Model& model) {
  protocol::StakeState stake({0.2, 0.8});
  RngStream rng(3);
  for (auto _ : state) {
    model.Step(stake, rng);
    stake.AdvanceStep();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_PowStep(benchmark::State& state) {
  StepBenchmark(state, protocol::PowModel(0.01));
}
BENCHMARK(BM_PowStep);

void BM_MlPosStep(benchmark::State& state) {
  StepBenchmark(state, protocol::MlPosModel(0.01));
}
BENCHMARK(BM_MlPosStep);

void BM_SlPosStep(benchmark::State& state) {
  StepBenchmark(state, protocol::SlPosModel(0.01));
}
BENCHMARK(BM_SlPosStep);

void BM_CPosEpoch(benchmark::State& state) {
  StepBenchmark(state, protocol::CPosModel(0.01, 0.1, 32));
}
BENCHMARK(BM_CPosEpoch);

void BM_SlPosLemma61Integral(benchmark::State& state) {
  const std::vector<double> stakes = {0.1, 0.15, 0.2, 0.25, 0.3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        protocol::SlPosMultiMinerWinProbability(stakes, 0));
  }
}
BENCHMARK(BM_SlPosLemma61Integral);

// Dispatch overhead of enqueueing a 4096-task job grid: one Submit call
// per task (a lock acquisition + notify each) vs a single SubmitBatch
// (one lock acquisition + one notify_all) — the campaign runner's path.
// Measured in the dev container (gcc Release, 4 workers, 4096 empty
// tasks): Submit loop 1.47 ms/grid vs SubmitBatch 0.24 ms/grid (~6x) —
// per-task lock/notify traffic dominates when tasks are cheap.
void BM_ThreadPoolSubmitSerial(benchmark::State& state) {
  ThreadPool pool(4);
  for (auto _ : state) {
    for (int i = 0; i < 4096; ++i) {
      pool.Submit([] {});
    }
    pool.Wait();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_ThreadPoolSubmitSerial)->Unit(benchmark::kMillisecond);

void BM_ThreadPoolSubmitBatch(benchmark::State& state) {
  ThreadPool pool(4);
  for (auto _ : state) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(4096);
    for (int i = 0; i < 4096; ++i) tasks.emplace_back([] {});
    pool.SubmitBatch(std::move(tasks));
    pool.Wait();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_ThreadPoolSubmitBatch)->Unit(benchmark::kMillisecond);

// Per-checkpoint reduction scratch: the old ReduceToResult called
// Quantiles(column, qs) per checkpoint, which copies and heap-allocates
// the whole replication column every time; the shipped path sorts one
// hoisted buffer in place (QuantilesInPlace) and reuses a single output
// vector.  Measured in the dev container (gcc Release, 10k replications,
// 5 quantiles): ~0.58 ms per checkpoint either way — the sort dominates —
// but the reduction loop drops from 2 heap allocations per checkpoint to
// 0, which is what lets a 120-checkpoint reduction
// (BM_ReduceToResult120Checkpoints, ~16 ms at 2k replications) run
// allocation-quiet next to the zero-allocation stepping core.
void BM_QuantilesCopyPerCheckpoint(benchmark::State& state) {
  RngStream rng(11);
  std::vector<double> column(10000);
  for (double& v : column) v = rng.NextDouble();
  const std::vector<double> qs = {0.05, 0.25, 0.5, 0.75, 0.95};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Quantiles(column, qs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QuantilesCopyPerCheckpoint)->Unit(benchmark::kMicrosecond);

void BM_QuantilesReusedScratch(benchmark::State& state) {
  RngStream rng(11);
  std::vector<double> source(10000);
  for (double& v : source) v = rng.NextDouble();
  const std::vector<double> qs = {0.05, 0.25, 0.5, 0.75, 0.95};
  std::vector<double> column(source.size());
  std::vector<double> out;
  for (auto _ : state) {
    // The reduction's actual shape: refill the hoisted buffer from the
    // matrix column, then sort it in place.
    std::copy(source.begin(), source.end(), column.begin());
    QuantilesInPlace(column, qs, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QuantilesReusedScratch)->Unit(benchmark::kMicrosecond);

void BM_ReduceToResult120Checkpoints(benchmark::State& state) {
  core::SimulationConfig config;
  config.steps = 5000;
  config.replications = 2000;
  config.checkpoints = core::LinearCheckpoints(5000, 120);
  config.population_metrics = false;
  RngStream rng(12);
  std::vector<double> lambda(config.checkpoints.size() *
                             config.replications);
  for (double& v : lambda) v = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ReduceToResult(
        "bench", {0.2, 0.8}, config, core::FairnessSpec{}, lambda));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(config.checkpoints.size()));
}
BENCHMARK(BM_ReduceToResult120Checkpoints)->Unit(benchmark::kMillisecond);

void BM_MonteCarloCampaign(benchmark::State& state) {
  protocol::MlPosModel model(0.01);
  core::SimulationConfig config;
  config.steps = 1000;
  config.replications = 100;
  config.threads = 1;
  config.checkpoints = {1000};
  core::MonteCarloEngine engine(config, core::FairnessSpec{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.RunTwoMiner(model, 0.2));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100 *
                          1000);
}
BENCHMARK(BM_MonteCarloCampaign)->Unit(benchmark::kMillisecond);

}  // namespace
