// Ablation: reward-withholding period (the Section 6.3 remedy) — a thin
// wrapper over the registry's `withhold-grid` scenario: periods
// {off, 100, 500, 1000, 2500} for ML-PoS and FSL-PoS at the paper's
// defaults.  Longer periods batch more rewards per release, which the law
// of large numbers concentrates — the mechanism behind Figure 6(b) — at
// the cost of slower stake activation.

#include <cstdio>

#include "campaign_common.hpp"

int main() {
  fairchain::bench::RunScenarioCampaign("withhold-grid");
  std::printf(
      "\nLonger withholding periods shrink the band monotonically: each "
      "release point is a\nlaw-of-large-numbers average of ~period/10 "
      "expected wins, which decouples luck from\nfuture mining power.\n");
  return 0;
}
