// Ablation: reward-withholding period (the Section 6.3 remedy).
//
// Sweeps the withholding period over {off, 100, 500, 1000, 2500} blocks for
// ML-PoS and FSL-PoS at the paper's defaults, reporting the terminal
// unfair probability and the 5-95 band width.  Longer periods batch more
// rewards per release, which the law of large numbers concentrates — the
// mechanism behind Figure 6(b) — at the cost of slower stake activation.

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "protocol/fsl_pos.hpp"
#include "protocol/ml_pos.hpp"

int main() {
  using namespace fairchain;
  namespace exp = core::experiments;

  auto base_config = bench::FigureConfig(exp::kDefaultSteps, 6000, 300, 25);
  bench::Banner("Ablation", "reward-withholding period sweep (a = 0.2)",
                base_config);
  const core::FairnessSpec spec = exp::DefaultSpec();

  const std::uint64_t periods[] = {0, 100, 500, 1000, 2500};

  for (const bool use_fsl : {false, true}) {
    std::unique_ptr<protocol::IncentiveModel> model;
    if (use_fsl) {
      model = std::make_unique<protocol::FslPosModel>(exp::kDefaultW);
    } else {
      model = std::make_unique<protocol::MlPosModel>(exp::kDefaultW);
    }
    Table table({"withhold period", "mean", "p5", "p95", "band width",
                 "unfair prob", "robust"});
    table.SetTitle(model->name() + " with reward withholding, w = 0.01");
    for (const std::uint64_t period : periods) {
      auto config = base_config;
      config.withhold_period = period;
      core::MonteCarloEngine engine(config, spec);
      const auto result = engine.RunTwoMiner(*model, exp::kDefaultA);
      const auto& final_stats = result.Final();
      table.AddRow();
      table.Cell(period == 0 ? std::string("off")
                             : std::to_string(period));
      table.Cell(final_stats.mean, 4);
      table.Cell(final_stats.p05, 4);
      table.Cell(final_stats.p95, 4);
      table.Cell(final_stats.p95 - final_stats.p05, 4);
      table.Cell(final_stats.unfair_probability, 3);
      table.Cell(std::string(
          final_stats.unfair_probability <= spec.delta ? "yes" : "NO"));
    }
    table.Emit(std::string("ablation_withholding_") +
               (use_fsl ? "fslpos" : "mlpos"));
  }

  std::printf(
      "Longer withholding periods shrink the band monotonically: each "
      "release point is a\nlaw-of-large-numbers average of ~period/10 "
      "expected wins, which decouples luck from\nfuture mining power.\n");
  return 0;
}
