// Hot-path benchmark (google-benchmark): ns/step of the Monte Carlo inner
// loop as a function of miner-population size m, per protocol — the repo's
// perf-trajectory baseline (BENCH_hotpath.json).
//
// Two families:
//   * BM_Fenwick_*  — the shipped O(log m) path: StakeState's Fenwick
//     sampler for proposer selection plus O(log m) reinforcement;
//   * BM_LinearScan_* — the pre-Fenwick reference: the O(m) cumulative
//     scan these models used before, kept here so every future run can
//     restate the speedup at any m (the scan is reconstructed locally; the
//     models no longer contain it).
//
// Populations are the pareto:1.16 heavy-tailed stakes of the
// large-population-sweep scenario, m ∈ {100, 1k, 10k, 100k}.
//
// Emit the JSON trajectory with:
//   bench_hotpath_bench --benchmark_out=BENCH_hotpath.json
//                       --benchmark_out_format=json
//
// Recorded in the dev container (gcc Release, 2026-07): at m = 10,000 the
// Fenwick path steps PoW in ~93 ns and ML-PoS in ~65 ns vs ~1.19 µs and
// ~1.16 µs for the linear scan — 12.8x / 17.7x; at m = 100,000 the gap
// widens to ~93x / ~132x (119 ns / 80 ns vs ~11 µs).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "protocol/c_pos.hpp"
#include "protocol/fsl_pos.hpp"
#include "protocol/ml_pos.hpp"
#include "protocol/pow.hpp"
#include "protocol/stake_state.hpp"
#include "sim/scenario_spec.hpp"
#include "support/rng.hpp"

namespace {

using namespace fairchain;

std::vector<double> ParetoStakes(std::size_t miners) {
  sim::CampaignCell cell;
  cell.miners = miners;
  cell.stake_dist = "pareto:1.16";
  return cell.Stakes();
}

// The pre-Fenwick proposer selection: one uniform, one O(m) cumulative
// scan over the stakes (verbatim shape of the old PoW/ML-PoS/NEO loop).
std::size_t LinearScanProposer(const protocol::StakeState& state,
                               RngStream& rng) {
  const double target = rng.NextDouble() * state.total_stake();
  double cumulative = 0.0;
  const std::size_t n = state.miner_count();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    cumulative += state.stake(i);
    if (target < cumulative) return i;
  }
  return n - 1;
}

void StepLoop(benchmark::State& bench_state,
              const protocol::IncentiveModel& model, std::size_t miners) {
  protocol::StakeState state(ParetoStakes(miners));
  RngStream rng(20210620);
  for (auto _ : bench_state) {
    model.Step(state, rng);
    state.AdvanceStep();
  }
  bench_state.SetItemsProcessed(
      static_cast<int64_t>(bench_state.iterations()));
}

void LinearScanLoop(benchmark::State& bench_state, bool compounds,
                    std::size_t miners) {
  protocol::StakeState state(ParetoStakes(miners));
  RngStream rng(20210620);
  for (auto _ : bench_state) {
    const std::size_t winner = LinearScanProposer(state, rng);
    state.Credit(winner, 0.01, compounds);
    state.AdvanceStep();
  }
  bench_state.SetItemsProcessed(
      static_cast<int64_t>(bench_state.iterations()));
}

// --- shipped O(log m) paths -------------------------------------------------

void BM_Fenwick_PoW(benchmark::State& state) {
  StepLoop(state, protocol::PowModel(0.01),
           static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Fenwick_PoW)->RangeMultiplier(10)->Range(100, 100000);

void BM_Fenwick_MlPos(benchmark::State& state) {
  StepLoop(state, protocol::MlPosModel(0.01),
           static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Fenwick_MlPos)->RangeMultiplier(10)->Range(100, 100000);

void BM_Fenwick_FslPos(benchmark::State& state) {
  StepLoop(state, protocol::FslPosModel(0.01),
           static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Fenwick_FslPos)->RangeMultiplier(10)->Range(100, 100000);

// C-PoS epochs sample P = 32 slots through the same tree (v = 0 isolates
// the slot path; the inflation sweep is inherently O(m)).
void BM_Fenwick_CPosEpoch(benchmark::State& state) {
  StepLoop(state, protocol::CPosModel(0.01, 0.0, 32),
           static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Fenwick_CPosEpoch)->RangeMultiplier(10)->Range(100, 100000);

// --- pre-Fenwick O(m) reference ---------------------------------------------

void BM_LinearScan_PoW(benchmark::State& state) {
  LinearScanLoop(state, /*compounds=*/false,
                 static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_LinearScan_PoW)->RangeMultiplier(10)->Range(100, 100000);

void BM_LinearScan_MlPos(benchmark::State& state) {
  LinearScanLoop(state, /*compounds=*/true,
                 static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_LinearScan_MlPos)->RangeMultiplier(10)->Range(100, 100000);

}  // namespace
