// Hot-path benchmark (google-benchmark): ns/step of the Monte Carlo inner
// loop as a function of miner-population size m, per protocol — the repo's
// perf-trajectory baseline (BENCH_hotpath.json).
//
// Three families (compare items_per_second = steps/second):
//   * BM_Batched_*  — the shipped execution core: one virtual RunSteps
//     call amortised over a whole segment, per-protocol inner loops with
//     inlined sampler descent and credit arms, zero steady-state
//     allocation (verified by BM_ZeroAllocSteadyState* below);
//   * BM_Fenwick_*  — the previous per-step path: one virtual Step call
//     per block over the same O(log m) Fenwick sampler, kept so every run
//     restates the batching gain at any m (dispatch and call overhead
//     dominate at small m, the tree descent at large m);
//   * BM_LinearScan_* — the pre-Fenwick O(m) cumulative scan, the original
//     reference (reconstructed locally; the models no longer contain it).
//
// Populations are the pareto:1.16 heavy-tailed stakes of the
// large-population-sweep scenario, m ∈ {2, 10, 100, 1k, 10k, 100k}.
//
// Emit the JSON trajectory with:
//   bench_hotpath_bench --benchmark_out=BENCH_hotpath.json
//                       --benchmark_out_format=json
// tools/compare_hotpath_bench.py guards CI against >25% per-step
// regressions relative to the checked-in baseline.
//
// Recorded in the dev container (gcc Release, 2026-07), batched execution
// core vs the pre-batching shipped path (virtual Step + out-of-line
// sampler/credit) measured on the same machine:
//   m = 2:    PoW 14.5 -> 3.3 ns (4.4x), ML-PoS 18.4 -> 7.8 ns (2.4x),
//             FSL-PoS 18.9 -> 7.9 ns (2.4x), C-PoS 636 -> 202 ns/epoch
//             (3.2x) — dispatch/call overhead dominated, batching plus the
//             inlined credit arms and the two-element sampler fast path
//             remove it.
//   m = 100:  PoW 40.8 -> 17.5 ns (2.3x, branchless static-stake descent);
//             the compounding protocols are descent-bound, not
//             dispatch-bound, and show ~1.1-1.2x.
//   m = 10k/100k: PoW 93 -> 42 ns / 119 -> 76 ns; compounding protocols at
//             parity (the branchy descent + reinforcement path is
//             unchanged) — no regression.
// The linear-scan reference stays ~2 orders of magnitude slower than the
// tree at m = 100k.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "chain/chain_replication.hpp"
#include "core/execution_backend.hpp"
#include "core/monte_carlo.hpp"
#include "core/replication_block_workspace.hpp"
#include "core/replication_workspace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/campaign.hpp"
#include "protocol/c_pos.hpp"
#include "protocol/extensions.hpp"
#include "protocol/fsl_pos.hpp"
#include "protocol/lane_state.hpp"
#include "protocol/ml_pos.hpp"
#include "protocol/pow.hpp"
#include "protocol/sl_pos.hpp"
#include "protocol/stake_state.hpp"
#include "sim/scenario_registry.hpp"
#include "sim/scenario_spec.hpp"
#include "support/philox.hpp"
#include "support/rng.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in the process bumps it.
// BM_ZeroAllocSteadyState* snapshots it around the measured region to PROVE
// the zero-steady-state-allocation property of the workspace design, not
// just assert it in a comment.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

// The replaced operator new above is malloc-backed, so free() here IS the
// matched deallocator; gcc's -Wmismatched-new-delete cannot see that
// pairing once calls are inlined and flags it spuriously.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace fairchain;

std::vector<double> ParetoStakes(std::size_t miners) {
  sim::CampaignCell cell;
  cell.miners = miners;
  cell.stake_dist = "pareto:1.16";
  return cell.Stakes();
}

// The pre-Fenwick proposer selection: one uniform, one O(m) cumulative
// scan over the stakes (verbatim shape of the old PoW/ML-PoS/NEO loop).
std::size_t LinearScanProposer(const protocol::StakeState& state,
                               RngStream& rng) {
  const double target = rng.NextDouble() * state.total_stake();
  double cumulative = 0.0;
  const std::size_t n = state.miner_count();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    cumulative += state.stake(i);
    if (target < cumulative) return i;
  }
  return n - 1;
}

// Compounding protocols reset to the initial stakes every kGameSteps — the
// replication shape of real campaigns.  Without the reset the benchmark
// state drifts forever toward a degenerate single-winner distribution, so
// ns/step would depend on how many total iterations the harness happened
// to run (CI smoke runs and long local runs would measure different
// regimes).  16384 steps at w = 0.01 spans the whole realistic
// concentration range; the O(m) reset amortises to < 4 ns/step even at
// m = 100k.  Static-stake protocols (PoW / NEO) have nothing to reset.
constexpr std::uint64_t kGameSteps = 16384;

void StepLoop(benchmark::State& bench_state,
              const protocol::IncentiveModel& model, std::size_t miners) {
  protocol::StakeState state(ParetoStakes(miners));
  RngStream rng(20210620);
  const bool reset_per_game = model.RewardCompounds();
  for (auto _ : bench_state) {
    if (reset_per_game && state.step() == kGameSteps) state.Reset();
    model.Step(state, rng);
    state.AdvanceStep();
  }
  bench_state.SetItemsProcessed(
      static_cast<int64_t>(bench_state.iterations()));
}

// One benchmark iteration = one RunSteps segment — the shape the engine
// actually drives between checkpoints.  Compare on items_per_second
// (steps/second) against the per-step families.  Compounding protocols run
// whole kGameSteps games from Reset; static ones step 1024-block segments.
constexpr std::uint64_t kBatchSteps = 1024;

void BatchedLoop(benchmark::State& bench_state,
                 const protocol::IncentiveModel& model, std::size_t miners) {
  protocol::StakeState state(ParetoStakes(miners));
  RngStream rng(20210620);
  const bool reset_per_game = model.RewardCompounds();
  const std::uint64_t segment = reset_per_game ? kGameSteps : kBatchSteps;
  for (auto _ : bench_state) {
    if (reset_per_game) state.Reset();
    model.RunSteps(state, state.step(), segment, rng);
  }
  bench_state.SetItemsProcessed(static_cast<int64_t>(
      bench_state.iterations() * static_cast<int64_t>(segment)));
}

void LinearScanLoop(benchmark::State& bench_state, bool compounds,
                    std::size_t miners) {
  protocol::StakeState state(ParetoStakes(miners));
  RngStream rng(20210620);
  for (auto _ : bench_state) {
    const std::size_t winner = LinearScanProposer(state, rng);
    state.Credit(winner, 0.01, compounds);
    state.AdvanceStep();
  }
  bench_state.SetItemsProcessed(
      static_cast<int64_t>(bench_state.iterations()));
}

// --- batched execution core (the shipped hot path) --------------------------

void BM_Batched_PoW(benchmark::State& state) {
  BatchedLoop(state, protocol::PowModel(0.01),
              static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Batched_PoW)->RangeMultiplier(10)->Range(2, 100000);

void BM_Batched_MlPos(benchmark::State& state) {
  BatchedLoop(state, protocol::MlPosModel(0.01),
              static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Batched_MlPos)->RangeMultiplier(10)->Range(2, 100000);

void BM_Batched_FslPos(benchmark::State& state) {
  BatchedLoop(state, protocol::FslPosModel(0.01),
              static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Batched_FslPos)->RangeMultiplier(10)->Range(2, 100000);

void BM_Batched_SlPos(benchmark::State& state) {
  BatchedLoop(state, protocol::SlPosModel(0.01),
              static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Batched_SlPos)->RangeMultiplier(10)->Range(2, 1000);

void BM_Batched_CPosEpoch(benchmark::State& state) {
  BatchedLoop(state, protocol::CPosModel(0.01, 0.0, 32),
              static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Batched_CPosEpoch)->RangeMultiplier(10)->Range(2, 100000);

// --- replication-vectorized lane stepping -----------------------------------

// ns per REPLICATION-STEP of the lane-batched path: one RunLaneSteps
// segment advances K lanes in lockstep, so items = steps x K and
// items_per_second compares directly against the batched scalar families
// above.  Args: (m, K) with K in {4, 8, 16}.
// tools/compare_hotpath_bench.py enforces the within-run speedup floor
// (--vectorized-floor): BM_Vectorized_PoW/(m, 16) must beat BM_Batched_PoW
// at the same m <= 100.
void VectorizedLoop(benchmark::State& bench_state,
                    const protocol::IncentiveModel& model,
                    std::size_t miners, std::size_t lanes) {
  const std::vector<double> stakes = ParetoStakes(miners);
  const bool reset_per_game = model.RewardCompounds();
  const std::uint64_t segment = reset_per_game ? kGameSteps : kBatchSteps;
  protocol::LaneStakeState block;
  block.Reset(stakes, lanes, reset_per_game);
  PhiloxLanes rng;
  rng.Reset(20210620, /*first_lane=*/0, lanes);
  for (auto _ : bench_state) {
    if (reset_per_game) block.Reset(stakes, lanes, true);
    model.RunLaneSteps(block, block.step(), segment, rng);
  }
  bench_state.SetItemsProcessed(static_cast<int64_t>(
      bench_state.iterations() * static_cast<int64_t>(segment) *
      static_cast<int64_t>(lanes)));
}

void BM_Vectorized_PoW(benchmark::State& state) {
  VectorizedLoop(state, protocol::PowModel(0.01),
                 static_cast<std::size_t>(state.range(0)),
                 static_cast<std::size_t>(state.range(1)));
}
BENCHMARK(BM_Vectorized_PoW)
    ->ArgsProduct({{2, 100, 10000, 100000}, {4, 8, 16}});

void BM_Vectorized_Neo(benchmark::State& state) {
  VectorizedLoop(state, protocol::NeoModel(0.01),
                 static_cast<std::size_t>(state.range(0)),
                 static_cast<std::size_t>(state.range(1)));
}
BENCHMARK(BM_Vectorized_Neo)
    ->ArgsProduct({{2, 100, 10000, 100000}, {4, 8, 16}});

// The compounding lane kernel, benched for the record: campaigns do NOT
// route ML-PoS through it (core::UsesVectorizedStepping), because the
// per-lane tree reinforcement erases the lockstep win — this family
// documents that trade instead of asserting it in a comment.
void BM_Vectorized_MlPos(benchmark::State& state) {
  VectorizedLoop(state, protocol::MlPosModel(0.01),
                 static_cast<std::size_t>(state.range(0)),
                 static_cast<std::size_t>(state.range(1)));
}
BENCHMARK(BM_Vectorized_MlPos)
    ->ArgsProduct({{2, 100, 10000}, {4, 8, 16}});

// --- per-step O(log m) reference (the pre-batching path) --------------------

void BM_Fenwick_PoW(benchmark::State& state) {
  StepLoop(state, protocol::PowModel(0.01),
           static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Fenwick_PoW)->RangeMultiplier(10)->Range(2, 100000);

void BM_Fenwick_MlPos(benchmark::State& state) {
  StepLoop(state, protocol::MlPosModel(0.01),
           static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Fenwick_MlPos)->RangeMultiplier(10)->Range(2, 100000);

void BM_Fenwick_FslPos(benchmark::State& state) {
  StepLoop(state, protocol::FslPosModel(0.01),
           static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Fenwick_FslPos)->RangeMultiplier(10)->Range(2, 100000);

// C-PoS epochs sample P = 32 slots through the same tree (v = 0 isolates
// the slot path; the inflation sweep is inherently O(m)).
void BM_Fenwick_CPosEpoch(benchmark::State& state) {
  StepLoop(state, protocol::CPosModel(0.01, 0.0, 32),
           static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Fenwick_CPosEpoch)->RangeMultiplier(10)->Range(2, 100000);

// --- pre-Fenwick O(m) reference ---------------------------------------------

void BM_LinearScan_PoW(benchmark::State& state) {
  LinearScanLoop(state, /*compounds=*/false,
                 static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_LinearScan_PoW)->RangeMultiplier(10)->Range(100, 100000);

void BM_LinearScan_MlPos(benchmark::State& state) {
  LinearScanLoop(state, /*compounds=*/true,
                 static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_LinearScan_MlPos)->RangeMultiplier(10)->Range(100, 100000);

// --- chain-dynamics kernels -------------------------------------------------

// ns per block-discovery event of the chain-replication kernel
// (src/chain).  One iteration = one 4096-event segment through
// StepChainEvents — the shape RunChainReplicationRange drives between
// checkpoints — so items_per_second compares directly against the
// batched incentive families above (one chain event plays the role of
// one block step).
constexpr std::uint64_t kChainSegmentEvents = 4096;

void ChainStepLoop(benchmark::State& bench_state,
                   const chain::ChainGameSpec& spec) {
  chain::ChainReplicationWorkspace workspace;
  workspace.Bind(spec);
  RngStream rng(20210620);
  for (auto _ : bench_state) {
    chain::StepChainEvents(spec, workspace.state(), rng,
                           kChainSegmentEvents);
  }
  bench_state.SetItemsProcessed(
      static_cast<int64_t>(bench_state.iterations()) *
      static_cast<int64_t>(kChainSegmentEvents));
}

// Fork-race machine at alpha = 0.3; arg = propagation delay in hundredths
// of a mean block interval.  delay = 0 is the forkless iid fast path (the
// verify layer's binomial anchor, one Bernoulli pair per event); larger
// delays spend more events inside races, exercising the window-draw and
// reorg-settlement arms.
void BM_ChainStep(benchmark::State& state) {
  chain::ChainGameSpec spec;
  spec.dynamics = chain::ChainDynamics::kForkRace;
  spec.alpha = 0.3;
  spec.delay = static_cast<double>(state.range(0)) / 100.0;
  ChainStepLoop(state, spec);
}
BENCHMARK(BM_ChainStep)->Arg(0)->Arg(25)->Arg(150);

// Eyal–Sirer selfish-mining machine at alpha = 1/3 (the paper's classic
// threshold case); arg = gamma in percent.  gamma steers how often the
// tie-race arm draws, so the three points bracket the state machine's
// branch mix.
void BM_SelfishGame(benchmark::State& state) {
  chain::ChainGameSpec spec;
  spec.dynamics = chain::ChainDynamics::kSelfish;
  spec.alpha = 1.0 / 3.0;
  spec.gamma = static_cast<double>(state.range(0)) / 100.0;
  ChainStepLoop(state, spec);
}
BENCHMARK(BM_SelfishGame)->Arg(0)->Arg(50)->Arg(100);

// --- process-shard scaling --------------------------------------------------

// Wall-clock of one whole campaign (4 cells × 256 replications × 2000
// steps) through the campaign runner on the process-sharded backend,
// shard ∈ {1, 2, 4, 8}, plus the in-process serial reference at arg 0.
// This is a WALL-CLOCK family (UseRealTime): each iteration forks its
// workers, streams chunk payloads back over pipes, and reduces — it
// measures fork + marshalling overhead against parallel speedup, not the
// per-step kernel (the families above own that).  On a loaded CI runner
// the scaling curve is noisy, so tools/compare_hotpath_bench.py holds
// BM_ShardCampaign to a separate, looser wall-clock budget and keeps it
// out of the machine-speed median.
void BM_ShardCampaign(benchmark::State& bench_state) {
  const auto shards = static_cast<unsigned>(bench_state.range(0));
  const sim::ScenarioSpec spec = sim::ScenarioSpec::FromText(
      "name=shard-bench\n"
      "protocols=pow,mlpos\n"
      "a=0.2,0.4\n"
      "steps=2000\n"
      "reps=256\n"
      "checkpoints=4\n"
      "population=off\n"
      "final_lambdas=off\n");
  const core::SerialBackend serial;
  const core::ShardBackend sharded(shards == 0 ? 1 : shards);
  sim::CampaignOptions options;
  options.backend =
      shards == 0 ? static_cast<const core::ExecutionBackend*>(&serial)
                  : &sharded;
  options.chunk_replications = 32;  // 8 chunks per cell: fan-out for 8 shards
  const sim::CampaignRunner runner(options);
  for (auto _ : bench_state) {
    const auto outcomes = runner.Run(spec, {});
    benchmark::DoNotOptimize(outcomes.size());
  }
  const auto steps_per_iteration = static_cast<int64_t>(
      static_cast<std::uint64_t>(spec.CellCount()) * spec.replications *
      spec.steps);
  bench_state.SetItemsProcessed(bench_state.iterations() *
                                steps_per_iteration);
}
#ifndef _WIN32
BENCHMARK(BM_ShardCampaign)
    ->Arg(0)  // in-process serial reference
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
#endif

// --- cost-aware scheduling --------------------------------------------------

// Wall-clock of the registry's hetero-cost-mix campaign (C-PoS + PoW +
// selfish-chain — a ~30x per-step cost spread across three cells) under
// the static planner versus the cost-aware scheduler, on the stealing
// thread pool and the demand-driven shard backend.  The static arm is the
// true coarse planner this PR replaced: one cell-granular chunk per cell
// dispatched in grid order, so the whole campaign's tail is the most
// expensive cell on one worker.  tools/compare_hotpath_bench.py derives
// its --hetero-speedup floor from the static/cost ratio WITHIN one run
// (machine speed cancels); the floor only arms on runners with >= 4 CPUs,
// where the parallelism the scheduler unlocks is physically available.
//
// Args: (mode 0 = pool / 1 = shard, workers, policy 0 = static / 1 = cost).
void BM_HeterogeneousCampaign(benchmark::State& bench_state) {
  const bool shard_mode = bench_state.range(0) == 1;
  const auto workers = static_cast<unsigned>(bench_state.range(1));
  const bool cost_aware = bench_state.range(2) == 1;
  const sim::ScenarioSpec& spec =
      sim::ScenarioRegistry::BuiltIn().Get("hetero-cost-mix");
  const core::ThreadPoolBackend pool(workers);
  const core::ShardBackend sharded(workers);
  sim::CampaignOptions options;
  options.backend =
      shard_mode ? static_cast<const core::ExecutionBackend*>(&sharded)
                 : &pool;
  if (cost_aware) {
    options.schedule = sim::SchedulePolicy::kCostAware;
  } else {
    options.schedule = sim::SchedulePolicy::kStatic;
    options.chunk_replications = spec.replications;
  }
  const sim::CampaignRunner runner(options);
  for (auto _ : bench_state) {
    const auto outcomes = runner.Run(spec, {});
    benchmark::DoNotOptimize(outcomes.size());
  }
  const auto steps_per_iteration = static_cast<int64_t>(
      static_cast<std::uint64_t>(spec.CellCount()) * spec.replications *
      spec.steps);
  bench_state.SetItemsProcessed(bench_state.iterations() *
                                steps_per_iteration);
}
#ifndef _WIN32
BENCHMARK(BM_HeterogeneousCampaign)
    ->Args({0, 4, 0})  // pool/4, static planner
    ->Args({0, 4, 1})  // pool/4, cost-aware
    ->Args({1, 2, 0})  // shard:2, static
    ->Args({1, 2, 1})  // shard:2, cost-aware
    ->Args({1, 4, 0})  // shard:4, static
    ->Args({1, 4, 1})  // shard:4, cost-aware
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
#endif

// --- observability overhead -------------------------------------------------

// The overhead budget of src/obs compiled in but DISABLED: each pair runs
// the same batched segment loop, once bare and once through the exact
// production call-site shape — a Span whose enabled check fails (tracing
// off, the steady state of every run without --trace) plus a live
// ScopedLatency into the registry histogram (histograms are always on).
// tools/compare_hotpath_bench.py holds Instrumented/Base within the SAME
// run to <2% (--obs-limit 1.02), so machine speed cancels exactly.
void InstrumentedBatchedLoop(benchmark::State& bench_state,
                             const protocol::IncentiveModel& model,
                             std::size_t miners) {
  obs::SetTraceEnabled(false);
  static auto& segment_ns =
      obs::MetricsRegistry::Global().GetHistogram("bench.obs_segment_ns");
  protocol::StakeState state(ParetoStakes(miners));
  RngStream rng(20210620);
  const bool reset_per_game = model.RewardCompounds();
  const std::uint64_t segment = reset_per_game ? kGameSteps : kBatchSteps;
  for (auto _ : bench_state) {
    obs::Span span("bench.obs_segment", segment);
    obs::ScopedLatency latency(segment_ns);
    if (reset_per_game) state.Reset();
    model.RunSteps(state, state.step(), segment, rng);
  }
  bench_state.SetItemsProcessed(static_cast<int64_t>(
      bench_state.iterations() * static_cast<int64_t>(segment)));
}

void BM_ObsBase_PoW(benchmark::State& state) {
  BatchedLoop(state, protocol::PowModel(0.01),
              static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_ObsBase_PoW)->Arg(1000);

void BM_ObsInstrumented_PoW(benchmark::State& state) {
  InstrumentedBatchedLoop(state, protocol::PowModel(0.01),
                          static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_ObsInstrumented_PoW)->Arg(1000);

void BM_ObsBase_MlPos(benchmark::State& state) {
  BatchedLoop(state, protocol::MlPosModel(0.01),
              static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_ObsBase_MlPos)->Arg(1000);

void BM_ObsInstrumented_MlPos(benchmark::State& state) {
  InstrumentedBatchedLoop(state, protocol::MlPosModel(0.01),
                          static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_ObsInstrumented_MlPos)->Arg(1000);

// --- zero-allocation property -----------------------------------------------

// Steady-state replications in a bound workspace must not allocate: after
// one warm-up replication (Bind allocates the arena once), a full
// replication — Reset, checkpoint-segment RunSteps, λ recording, and the
// population-metric sort — must leave the global allocation counter
// untouched.  The benchmark FAILS (SkipWithError) on any allocation, so a
// future accidental per-step vector shows up in CI, not in a profile.
void ZeroAllocLoop(benchmark::State& bench_state,
                   const protocol::IncentiveModel& model,
                   std::size_t miners, bool population) {
  core::SimulationConfig config;
  config.steps = 256;
  config.replications = 4;
  config.checkpoints = {128, 256};
  config.population_metrics = population;
  const std::vector<double> stakes = ParetoStakes(miners);
  std::vector<double> lambdas(config.checkpoints.size() *
                              config.replications);
  std::vector<double> metrics(
      population ? core::PopulationMatrixSize(config) : 0);
  double* metrics_ptr = metrics.empty() ? nullptr : metrics.data();
  core::ReplicationWorkspace workspace;
  // Warm-up: binds the arena (allocates) and sizes every scratch buffer.
  core::RunReplicationRange(model, stakes, config, 0, 1, lambdas.data(),
                            metrics_ptr, workspace);
  std::uint64_t allocations = 0;
  for (auto _ : bench_state) {
    const std::uint64_t before =
        g_allocation_count.load(std::memory_order_relaxed);
    core::RunReplicationRange(model, stakes, config, 1, 2, lambdas.data(),
                              metrics_ptr, workspace);
    allocations +=
        g_allocation_count.load(std::memory_order_relaxed) - before;
  }
  bench_state.counters["allocs_per_replication"] =
      static_cast<double>(allocations) /
      static_cast<double>(bench_state.iterations());
  bench_state.SetItemsProcessed(static_cast<int64_t>(
      bench_state.iterations() * static_cast<int64_t>(config.steps)));
  if (allocations != 0) {
    bench_state.SkipWithError(
        "steady-state replication allocated on the heap");
  }
}

void BM_ZeroAllocSteadyState_MlPos(benchmark::State& state) {
  ZeroAllocLoop(state, protocol::MlPosModel(0.01),
                static_cast<std::size_t>(state.range(0)),
                /*population=*/false);
}
BENCHMARK(BM_ZeroAllocSteadyState_MlPos)->Arg(2)->Arg(1000);

void BM_ZeroAllocSteadyState_MlPosWithMetrics(benchmark::State& state) {
  ZeroAllocLoop(state, protocol::MlPosModel(0.01),
                static_cast<std::size_t>(state.range(0)),
                /*population=*/true);
}
BENCHMARK(BM_ZeroAllocSteadyState_MlPosWithMetrics)->Arg(1000);

void BM_ZeroAllocSteadyState_CPos(benchmark::State& state) {
  ZeroAllocLoop(state, protocol::CPosModel(0.01, 0.1, 32),
                static_cast<std::size_t>(state.range(0)),
                /*population=*/false);
}
BENCHMARK(BM_ZeroAllocSteadyState_CPos)->Arg(1000);

// Same property for the vectorized path: after a warm-up lane block sizes
// the arena (LaneStakeState columns, Philox buffers, wealth scratch), a
// full lane block — Reset, checkpoint-segment RunLaneSteps, per-lane λ
// recording — must not allocate.
void BM_ZeroAllocVectorized_PoW(benchmark::State& bench_state) {
  const auto miners = static_cast<std::size_t>(bench_state.range(0));
  core::SimulationConfig config;
  config.steps = 256;
  config.replications = 2 * core::kReplicationLaneWidth;
  config.checkpoints = {128, 256};
  config.population_metrics = false;
  config.stepping = core::SteppingMode::kVectorized;
  const protocol::PowModel model(0.01);
  const std::vector<double> stakes = ParetoStakes(miners);
  std::vector<double> lambdas(config.checkpoints.size() *
                              config.replications);
  core::ReplicationBlockWorkspace workspace;
  // Warm-up: sizes every buffer for a full-width lane block.
  core::RunReplicationBlockRange(model, stakes, config, 0,
                                 core::kReplicationLaneWidth, lambdas.data(),
                                 nullptr, workspace);
  std::uint64_t allocations = 0;
  for (auto _ : bench_state) {
    const std::uint64_t before =
        g_allocation_count.load(std::memory_order_relaxed);
    core::RunReplicationBlockRange(
        model, stakes, config, core::kReplicationLaneWidth,
        2 * core::kReplicationLaneWidth, lambdas.data(), nullptr, workspace);
    allocations +=
        g_allocation_count.load(std::memory_order_relaxed) - before;
  }
  bench_state.counters["allocs_per_replication"] =
      static_cast<double>(allocations) /
      static_cast<double>(bench_state.iterations());
  bench_state.SetItemsProcessed(static_cast<int64_t>(
      bench_state.iterations() *
      static_cast<int64_t>(config.steps * core::kReplicationLaneWidth)));
  if (allocations != 0) {
    bench_state.SkipWithError(
        "steady-state vectorized lane block allocated on the heap");
  }
}
BENCHMARK(BM_ZeroAllocVectorized_PoW)->Arg(2)->Arg(1000);

// Same property for the chain-dynamics kernel: after a warm-up
// replication Bind()s the workspace, a full chain replication — Reset,
// checkpoint-segment StepChainEvents, λ and chain-observable recording —
// must not allocate.
void BM_ZeroAllocChainReplication(benchmark::State& bench_state) {
  core::SimulationConfig config;
  config.steps = 256;
  config.replications = 4;
  config.checkpoints = {128, 256};
  chain::ChainGameSpec spec;
  spec.dynamics = chain::ChainDynamics::kForkRace;
  spec.alpha = 0.3;
  spec.delay = 0.25;
  std::vector<double> lambdas(config.checkpoints.size() *
                              config.replications);
  std::vector<double> chain_matrix(chain::ChainMatrixSize(config));
  chain::ChainReplicationWorkspace workspace;
  // Warm-up: binds the workspace to the spec.
  chain::RunChainReplicationRange(spec, config, 0, 1, lambdas.data(),
                                  chain_matrix.data(), workspace);
  std::uint64_t allocations = 0;
  for (auto _ : bench_state) {
    const std::uint64_t before =
        g_allocation_count.load(std::memory_order_relaxed);
    chain::RunChainReplicationRange(spec, config, 1, 2, lambdas.data(),
                                    chain_matrix.data(), workspace);
    allocations +=
        g_allocation_count.load(std::memory_order_relaxed) - before;
  }
  bench_state.counters["allocs_per_replication"] =
      static_cast<double>(allocations) /
      static_cast<double>(bench_state.iterations());
  bench_state.SetItemsProcessed(static_cast<int64_t>(
      bench_state.iterations() * static_cast<int64_t>(config.steps)));
  if (allocations != 0) {
    bench_state.SkipWithError(
        "steady-state chain replication allocated on the heap");
  }
}
BENCHMARK(BM_ZeroAllocChainReplication);

}  // namespace
