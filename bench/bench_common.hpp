// Shared plumbing for the experiment harness binaries.

#ifndef FAIRCHAIN_BENCH_BENCH_COMMON_HPP_
#define FAIRCHAIN_BENCH_BENCH_COMMON_HPP_

#include <cstdint>
#include <cstdio>
#include <string>

#include "core/experiments.hpp"
#include "core/monte_carlo.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

namespace fairchain::bench {

/// Standard simulation configuration for a figure: paper-scale replication
/// counts by default, scaled down under FAIRCHAIN_FAST / FAIRCHAIN_REPS.
inline core::SimulationConfig FigureConfig(std::uint64_t steps,
                                           std::uint64_t default_reps,
                                           std::uint64_t fast_reps,
                                           std::size_t checkpoints = 50) {
  core::SimulationConfig config;
  config.steps = FastModeEnabled() ? std::min<std::uint64_t>(steps, 1000)
                                   : steps;
  config.replications = EnvReps(default_reps, fast_reps);
  config.seed = 20210620;
  config.checkpoints = core::LinearCheckpoints(config.steps, checkpoints);
  return config;
}

/// Prints the standard banner for an experiment binary.
inline void Banner(const std::string& id, const std::string& what,
                   const core::SimulationConfig& config) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("horizon n = %llu, replications = %llu%s\n",
              static_cast<unsigned long long>(config.steps),
              static_cast<unsigned long long>(config.replications),
              FastModeEnabled() ? "  [FAIRCHAIN_FAST]" : "");
  std::printf("================================================================\n\n");
}

}  // namespace fairchain::bench

#endif  // FAIRCHAIN_BENCH_BENCH_COMMON_HPP_
