// Shared plumbing for bench binaries that are thin wrappers over registry
// scenarios: the figure/table binaries resolve their workload from the
// ScenarioRegistry and execute it through the CampaignRunner — the same
// code path `fairchain campaign` and the sim tests exercise — so a bench
// binary is just (scenario name, shape note).

#ifndef FAIRCHAIN_BENCH_CAMPAIGN_COMMON_HPP_
#define FAIRCHAIN_BENCH_CAMPAIGN_COMMON_HPP_

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/campaign.hpp"
#include "sim/result_sink.hpp"
#include "sim/scenario_registry.hpp"
#include "support/env.hpp"

namespace fairchain::bench {

/// Resolves a registry scenario and scales it for the current environment:
/// paper-scale by default, FAIRCHAIN_REPS overrides the replication count,
/// FAIRCHAIN_FAST selects a CI-sized run (shorter horizon, ~4% of reps).
inline sim::ScenarioSpec ScaledScenario(const std::string& name) {
  sim::ScenarioSpec spec = sim::ScenarioRegistry::BuiltIn().Get(name);
  if (FastModeEnabled()) {
    spec.steps = std::min<std::uint64_t>(spec.steps, 1000);
  }
  spec.replications = EnvReps(
      spec.replications,
      std::max<std::uint64_t>(100, spec.replications / 25));
  return spec;
}

/// Runs one scaled registry scenario through the campaign runner with the
/// standard sinks: summary table on stdout and, when FAIRCHAIN_CSV_DIR is
/// set, streaming CSV + JSONL files in that directory.  Returns the
/// per-cell outcomes for binaries that print extra legs.
inline std::vector<sim::CellOutcome> RunScenarioCampaign(
    const std::string& name) {
  const sim::ScenarioSpec spec = ScaledScenario(name);
  std::printf(
      "================================================================\n"
      "%s — %s\n"
      "%zu cells, horizon n = %llu, replications = %llu%s\n"
      "================================================================\n\n",
      spec.name.c_str(), spec.description.c_str(), spec.CellCount(),
      static_cast<unsigned long long>(spec.steps),
      static_cast<unsigned long long>(spec.replications),
      FastModeEnabled() ? "  [FAIRCHAIN_FAST]" : "");

  sim::CampaignFileSinks sinks(name);
  if (const auto dir = GetEnv("FAIRCHAIN_CSV_DIR")) {
    // Best-effort in the bench harness: an unwritable dir drops the file
    // sinks but keeps the stdout summary.
    sinks.OpenFiles(*dir + "/campaign_" + name + ".csv",
                    *dir + "/campaign_" + name + ".jsonl");
  }
  return sim::CampaignRunner().Run(spec, sinks.sinks());
}

}  // namespace fairchain::bench

#endif  // FAIRCHAIN_BENCH_CAMPAIGN_COMMON_HPP_
