// Whale vs. minnows: the multi-miner analysis of Section 6.1 / Table 1.
//
// One whale holds 20% of the network while the remaining stake is split
// equally among k minnows.  Under SL-PoS the outcome flips qualitatively
// with k: against one 80% competitor the whale is wiped out, against nine
// 8.9% minnows the whale monopolises — "reward depends not only on staking
// power but on the staking distribution of the competitors".
//
// Build & run:  ./build/examples/whale_vs_minnows

#include <iostream>

#include "core/experiments.hpp"
#include "core/monte_carlo.hpp"
#include "protocol/sl_pos.hpp"
#include "protocol/win_probability.hpp"
#include "support/table.hpp"

int main() {
  using namespace fairchain;
  namespace exp = core::experiments;

  const core::FairnessSpec spec = exp::DefaultSpec();
  const double a = 0.2;

  // First, the instantaneous view: the whale's probability of winning the
  // *next* block under SL-PoS (Lemma 6.1) as the competitor count grows.
  Table lottery({"miners", "whale share", "next-block win prob",
                 "proportional would be"});
  lottery.SetTitle("SL-PoS next-block win probability for the whale");
  for (const std::size_t miners : {2u, 3u, 4u, 5u, 10u, 20u}) {
    const auto stakes = exp::WhaleStakes(miners, a);
    lottery.AddRow();
    lottery.Cell(static_cast<std::uint64_t>(miners));
    lottery.Cell(a, 2);
    lottery.Cell(protocol::SlPosMultiMinerWinProbability(stakes, 0), 4);
    lottery.Cell(a, 4);
  }
  lottery.Print(std::cout);
  std::cout << "\nWith 5 equal miners the lottery is fair (0.2); with "
               "fewer the whale is under-served,\nwith more it is "
               "over-served — the Lemma 6.1 non-proportionality.\n\n";

  // Then the long-run view: full mining games.
  protocol::SlPosModel model(exp::kDefaultW);
  core::SimulationConfig config;
  config.steps = 8000;
  config.replications = 400;
  config.seed = 99;

  Table games({"miners", "avg lambda", "unfair prob", "convergence"});
  games.SetTitle(
      "SL-PoS mining games, whale a = 0.2, n = 8000, 400 replications");
  for (const std::size_t miners : {2u, 3u, 4u, 5u, 10u}) {
    const auto outcome =
        exp::RunMultiMinerGame(model, miners, a, config, spec);
    games.AddRow();
    games.Cell(static_cast<std::uint64_t>(miners));
    games.Cell(outcome.avg_lambda, 3);
    games.Cell(outcome.unfair_probability, 3);
    games.Cell(exp::FormatConvergence(outcome.convergence_step));
  }
  games.Print(std::cout);
  std::cout << "\n2-4 miners: the whale is destroyed (avg lambda -> 0).  "
               "10 miners: the whale is the\nbiggest fish and monopolises "
               "(avg lambda -> 1).  Either way: no fairness.\n";
  return 0;
}
