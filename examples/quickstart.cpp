// Quickstart: is ML-PoS fair to a miner holding 20% of the stake?
//
// Demonstrates the three-step fairchain workflow:
//   1. pick an incentive model (Section 2 of the paper),
//   2. run a replicated Monte Carlo campaign,
//   3. check expectational and robust ((ε,δ)-) fairness.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/bounds.hpp"
#include "core/monte_carlo.hpp"
#include "protocol/ml_pos.hpp"

int main() {
  using namespace fairchain;

  // Miner A holds a = 20% of all stakes; each block pays w = 1% of the
  // initial circulation and the reward compounds into future stake.
  const double a = 0.2;
  const double w = 0.01;
  protocol::MlPosModel model(w);

  // Simulate 2,000 replications of a 5,000-block mining game.
  core::SimulationConfig config;
  config.steps = 5000;
  config.replications = 2000;
  config.seed = 42;

  // Robust fairness target: lambda within ±10% of a, 90% of the time.
  const core::FairnessSpec spec{0.1, 0.1};

  core::MonteCarloEngine engine(config, spec);
  const core::SimulationResult result = engine.RunTwoMiner(model, a);

  const auto expectational = result.Expectational();
  const auto& final_stats = result.Final();

  std::printf("protocol            : %s\n", result.protocol.c_str());
  std::printf("initial share a     : %.3f\n", a);
  std::printf("mean lambda         : %.4f  (expectational fairness: %s)\n",
              expectational.sample_mean,
              expectational.consistent ? "HOLDS" : "VIOLATED");
  std::printf("5th-95th pct band   : [%.4f, %.4f]\n", final_stats.p05,
              final_stats.p95);
  std::printf("fair area           : [%.4f, %.4f]\n", spec.FairLow(a),
              spec.FairHigh(a));
  std::printf("unfair probability  : %.3f  (robust fairness: %s)\n",
              final_stats.unfair_probability,
              final_stats.unfair_probability <= spec.delta ? "HOLDS"
                                                           : "VIOLATED");

  // The analytic explanation: lambda converges to Beta(a/w, (1-a)/w).
  const double limit_unfair =
      core::MlPosLimitUnfairProbability(a, w, spec.epsilon);
  std::printf("beta-limit unfair   : %.3f  (analytic, n -> infinity)\n",
              limit_unfair);
  const double w_max = core::MlPosMaxRewardForFairness(a, spec);
  std::printf("max fair reward w   : %.6f  (Theorem 4.3; current w = %g)\n",
              w_max, w);
  return 0;
}
