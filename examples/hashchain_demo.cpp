// Hash-chain demo: the chain substrate end to end.
//
// Runs small two-miner networks for each consensus engine — grinding real
// SHA-256 headers for PoW, staking kernels for ML-PoS, forging lotteries
// for SL-PoS, committee epochs for C-PoS — then prints the chains, verifies
// them block by block, and reports the reward split.  This is the stand-in
// for the paper's Geth/Qtum/NXT deployments (DESIGN.md, Section 1).
//
// Build & run:  ./build/examples/hashchain_demo

#include <iostream>
#include <memory>

#include "chain/mining_game.hpp"
#include "support/table.hpp"

namespace {

using namespace fairchain;

void ShowChainHead(const chain::Blockchain& blockchain, std::size_t count) {
  Table table({"height", "kind", "proposer", "timestamp", "nonce",
               "hash (prefix)"});
  for (std::uint64_t h = 0; h <= blockchain.height() && h < count; ++h) {
    const chain::Block& block = blockchain.at(h);
    table.AddRow();
    table.Cell(block.header.height);
    table.Cell(chain::ProofKindName(block.header.kind));
    table.Cell(static_cast<std::uint64_t>(block.header.proposer));
    table.Cell(block.header.timestamp);
    table.Cell(block.header.nonce);
    table.Cell(crypto::DigestToHex(block.Hash()).substr(0, 16) + "...");
  }
  table.Print(std::cout);
}

void RunDemo(const std::string& title, chain::MiningEngine& engine,
             const std::vector<chain::Amount>& balances,
             std::uint64_t blocks) {
  std::cout << "\n==== " << title << " ====\n";
  chain::StakeLedger ledger(balances);
  chain::Blockchain blockchain(/*genesis_salt=*/2021);
  RngStream rng(7);
  for (std::uint64_t i = 0; i < blocks; ++i) {
    blockchain.Append(engine.MineNext(blockchain, ledger, rng));
  }
  ShowChainHead(blockchain, 6);
  const chain::ValidationReport report = blockchain.Validate();
  std::cout << "chain re-verification : "
            << (report.ok ? "OK" : "FAILED: " + report.error) << "\n";
  std::cout << "mean block interval   : " << blockchain.MeanBlockInterval()
            << " simulated seconds\n";
  for (chain::MinerId m = 0; m < ledger.miner_count(); ++m) {
    std::cout << "miner " << m << ": " << blockchain.BlocksBy(m)
              << " blocks, reward fraction "
              << ledger.RewardFraction(m) << ", final stake share "
              << ledger.Share(m) << "\n";
  }
}

}  // namespace

int main() {
  using namespace fairchain;

  std::cout << "Two miners: A holds 20%, B holds 80% of the mining "
               "resource.  80 blocks each.\n";

  {
    chain::PowEngineConfig config;
    config.hash_rates = {4, 16};  // trials per simulated second
    config.block_reward = 50;
    config.initial_expected_trials = 512.0;
    chain::PowEngine engine(config);
    RunDemo("PoW (nonce grinding, Bitcoin-style retargeting)", engine,
            {200, 800}, 80);
  }
  {
    chain::MlPosEngineConfig config;
    config.block_reward = 10000;  // 1% of circulation
    config.target_spacing = 16;
    chain::MlPosEngine engine(config);
    RunDemo("ML-PoS (Qtum/Blackcoin staking kernels)", engine,
            {200000, 800000}, 80);
  }
  {
    chain::SlPosEngineConfig config;
    config.block_reward = 10000;
    chain::SlPosEngine engine(config);
    RunDemo("SL-PoS (NXT forging lottery)", engine, {200000, 800000}, 80);
  }
  {
    chain::SlPosEngineConfig config;
    config.block_reward = 10000;
    config.fair_transform = true;  // the paper's Section 6.2 treatment
    chain::SlPosEngine engine(config);
    RunDemo("FSL-PoS (fair single lottery)", engine, {200000, 800000}, 80);
  }
  {
    chain::CPosEngineConfig config;
    config.proposer_reward = 10000;
    config.inflation_reward = 100000;
    config.shards = 32;
    chain::CPosEngine engine(config);
    RunDemo("C-PoS (Ethereum 2.0 epochs, 32 shards)", engine,
            {200000, 800000}, 80);
  }

  std::cout << "\nNote the SL-PoS run: miner A's reward fraction sits well "
               "below its 20% share\n(the first-block win probability is "
               "only 12.5%), while FSL-PoS restores it.\n";
  return 0;
}
