// Incentive designer: use the paper's theorems *backwards* — given a
// fairness target (ε, δ) and a miner profile a, find protocol parameters
// that provably achieve robust fairness.
//
//   * PoW     : minimum number of blocks (Theorem 4.2)
//   * ML-PoS  : maximum block reward w (Theorem 4.3) and the exact Beta-
//               limit check (sharper than the sufficient condition)
//   * C-PoS   : minimum inflation reward v for a given (w, P)
//               (Theorem 4.10)
//
// Build & run:  ./build/examples/incentive_designer

#include <iostream>

#include "core/bounds.hpp"
#include "support/table.hpp"

int main() {
  using namespace fairchain;

  const core::FairnessSpec spec{0.1, 0.1};
  std::cout << "Designing for (epsilon, delta) = (0.1, 0.1): every miner's "
               "return within +/-10% of\nproportional with probability >= "
               "90%.\n\n";

  // PoW: how long must the chain run for miners of different sizes?
  Table pow_table({"miner share a", "sufficient n (Hoeffding)",
                   "exact n (binomial)"});
  pow_table.SetTitle("PoW: blocks needed for robust fairness");
  for (const double a : {0.05, 0.1, 0.2, 0.3, 0.4}) {
    // Exact crossover: smallest n with Delta(eps; n, a) >= 1 - delta.
    std::uint64_t lo = 1, hi = 1 << 22;
    while (lo < hi) {
      const std::uint64_t mid = (lo + hi) / 2;
      if (core::PowExactFairProbability(mid, a, spec.epsilon) >=
          1.0 - spec.delta) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    pow_table.AddRow();
    pow_table.Cell(a, 2);
    pow_table.Cell(static_cast<std::uint64_t>(
        core::PowSufficientBlocks(a, spec) + 1.0));
    pow_table.Cell(lo);
  }
  pow_table.Print(std::cout);
  std::cout << "\nSmall miners need dramatically longer horizons — the "
               "1/a^2 law of Theorem 4.2.\n\n";

  // ML-PoS: how small must the block reward be?
  Table ml_table({"miner share a", "max w (Theorem 4.3)",
                  "max w (exact Beta limit)"});
  ml_table.SetTitle("ML-PoS: largest fair block reward (n -> infinity)");
  for (const double a : {0.05, 0.1, 0.2, 0.3, 0.4}) {
    // Exact: largest w with limit unfair probability <= delta (bisection).
    double lo = 1e-8, hi = 1.0;
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (core::MlPosLimitUnfairProbability(a, mid, spec.epsilon) <=
          spec.delta) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    ml_table.AddRow();
    ml_table.Cell(a, 2);
    ml_table.CellSci(core::MlPosMaxRewardForFairness(a, spec), 3);
    ml_table.CellSci(lo, 3);
  }
  ml_table.Print(std::cout);
  std::cout << "\nThe sufficient condition is ~4x conservative versus the "
               "exact Polya-urn limit.\n\n";

  // C-PoS: how much inflation does Ethereum 2.0 need?
  Table cpos_table({"proposer reward w", "shards P", "min inflation v",
                    "v / w ratio"});
  cpos_table.SetTitle(
      "C-PoS: minimum inflation for robust fairness at a = 0.2");
  for (const double w : {0.001, 0.01, 0.1}) {
    for (const std::uint32_t P : {1u, 32u}) {
      const double v =
          core::CPosMinInflationForFairness(w, P, 0.2, spec);
      cpos_table.AddRow();
      cpos_table.CellSci(w, 1);
      cpos_table.Cell(static_cast<std::uint64_t>(P));
      cpos_table.CellSci(v, 3);
      cpos_table.Cell(v / w, 2);
    }
  }
  cpos_table.Print(std::cout);
  std::cout << "\nSharding (P = 32) slashes the inflation requirement by "
               "32x; Ethereum 2.0's v ~ 20w\nis comfortably above the "
               "threshold for moderate miners.\n";
  return 0;
}
