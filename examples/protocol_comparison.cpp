// Protocol comparison: regenerates the paper's headline ranking
//   PoW >= C-PoS >= ML-PoS >= SL-PoS  (in fairness)
// across all implemented incentive mechanisms, including the Section 6.4
// extensions (NEO, Algorand, EOS) and the Section 6.2/6.3 remedies
// (FSL-PoS, reward withholding).
//
// Build & run:  ./build/examples/protocol_comparison

#include <iostream>
#include <memory>
#include <vector>

#include "core/experiments.hpp"
#include "core/monte_carlo.hpp"
#include "protocol/c_pos.hpp"
#include "protocol/extensions.hpp"
#include "protocol/fsl_pos.hpp"
#include "protocol/ml_pos.hpp"
#include "protocol/pow.hpp"
#include "protocol/sl_pos.hpp"
#include "support/table.hpp"

int main() {
  using namespace fairchain;
  namespace exp = core::experiments;

  const double a = exp::kDefaultA;
  const core::FairnessSpec spec = exp::DefaultSpec();

  core::SimulationConfig config;
  config.steps = 3000;
  config.replications = 2000;
  config.seed = 1;

  struct Entry {
    std::string note;
    std::unique_ptr<protocol::IncentiveModel> model;
    std::uint64_t withhold = 0;
  };
  std::vector<Entry> entries;
  entries.push_back({"Bitcoin-style",
                     std::make_unique<protocol::PowModel>(exp::kDefaultW)});
  entries.push_back({"Qtum/Blackcoin",
                     std::make_unique<protocol::MlPosModel>(exp::kDefaultW)});
  entries.push_back({"NXT",
                     std::make_unique<protocol::SlPosModel>(exp::kDefaultW)});
  entries.push_back(
      {"Ethereum 2.0", std::make_unique<protocol::CPosModel>(
                           exp::kDefaultW, exp::kDefaultV,
                           exp::kDefaultShards)});
  entries.push_back({"Sec 6.2 remedy",
                     std::make_unique<protocol::FslPosModel>(exp::kDefaultW)});
  entries.push_back({"Sec 6.3 remedy",
                     std::make_unique<protocol::FslPosModel>(exp::kDefaultW),
                     1000});
  entries.push_back({"Sec 6.4",
                     std::make_unique<protocol::NeoModel>(exp::kDefaultW)});
  entries.push_back({"Sec 6.4",
                     std::make_unique<protocol::AlgorandModel>(
                         exp::kDefaultV)});
  entries.push_back({"Sec 6.4", std::make_unique<protocol::EosModel>(
                                    exp::kDefaultW, exp::kDefaultV)});

  Table table({"protocol", "note", "E[lambda]", "p5", "p95",
               "unfair prob", "expectational", "robust"});
  table.SetTitle(
      "Fairness comparison, a = 0.2, w = 0.01, v = 0.1, n = 3000, "
      "2000 replications, (eps, delta) = (0.1, 0.1)");

  for (const auto& entry : entries) {
    core::SimulationConfig entry_config = config;
    entry_config.withhold_period = entry.withhold;
    core::MonteCarloEngine engine(entry_config, spec);
    const auto result = engine.RunTwoMiner(*entry.model, a);
    const auto& final_stats = result.Final();
    const auto expectational = result.Expectational();
    table.AddRow();
    table.Cell(entry.withhold > 0 ? entry.model->name() + "+withhold"
                                  : entry.model->name());
    table.Cell(entry.note);
    table.Cell(final_stats.mean, 4);
    table.Cell(final_stats.p05, 4);
    table.Cell(final_stats.p95, 4);
    table.Cell(final_stats.unfair_probability, 3);
    // EOS / SL-PoS are designed to fail these checks (Sections 3.4, 6.4).
    table.Cell(std::string(expectational.consistent ? "yes" : "NO"));
    table.Cell(std::string(
        final_stats.unfair_probability <= spec.delta ? "yes" : "NO"));
  }
  table.Print(std::cout);

  std::cout << "\nReading: `expectational` = E[lambda] == a;  `robust` = "
               "Pr[lambda outside +/-10% of a] <= 10%.\n"
               "The paper's ranking PoW >= C-PoS >= ML-PoS >= SL-PoS is "
               "visible in the `unfair prob` column.\n";
  return 0;
}
