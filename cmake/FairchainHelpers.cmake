# Helper functions shared by the root CMakeLists.txt.

# Defines the static library fairchain_<name> from src/<name>/*.cpp with the
# repo-root include convention (#include "layer/header.hpp").
function(fairchain_add_layer name)
  file(GLOB _srcs CONFIGURE_DEPENDS "${PROJECT_SOURCE_DIR}/src/${name}/*.cpp")
  add_library(fairchain_${name} STATIC ${_srcs})
  target_include_directories(fairchain_${name} PUBLIC
    "${PROJECT_SOURCE_DIR}/src"
    "${PROJECT_BINARY_DIR}/generated")
  target_link_libraries(fairchain_${name} PRIVATE fairchain_warnings)
endfunction()

# Registers one gtest binary per tests/<layer>/*_test.cpp, named
# <layer>_<file> both as a target and as a CTest test, labelled <layer>
# so `ctest -L <layer>` runs one layer's suites.
function(fairchain_add_test_dir layer)
  file(GLOB _tests CONFIGURE_DEPENDS "${PROJECT_SOURCE_DIR}/tests/${layer}/*_test.cpp")
  foreach(_src IN LISTS _tests)
    get_filename_component(_name "${_src}" NAME_WE)
    set(_target "${layer}_${_name}")
    add_executable(${_target} "${_src}")
    target_link_libraries(${_target} PRIVATE fairchain_all fairchain_warnings
      GTest::gtest GTest::gtest_main)
    add_test(NAME ${_target} COMMAND ${_target})
    set_tests_properties(${_target} PROPERTIES LABELS ${layer})
  endforeach()
endfunction()

# Resolves GoogleTest: system package when present, FetchContent otherwise
# (the only path that needs network access).
macro(fairchain_resolve_gtest)
  find_package(GTest QUIET)
  if(NOT GTest_FOUND)
    message(STATUS "System GTest not found — fetching googletest via FetchContent")
    include(FetchContent)
    FetchContent_Declare(googletest
      URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.zip)
    set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    FetchContent_MakeAvailable(googletest)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endmacro()
