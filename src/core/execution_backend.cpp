#include "core/execution_backend.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "support/env.hpp"
#include "support/thread_pool.hpp"

namespace fairchain::core {

void SerialBackend::Execute(std::vector<std::function<void()>> jobs) const {
  for (auto& job : jobs) job();
}

ThreadPoolBackend::ThreadPoolBackend(unsigned threads, bool stealing)
    : threads_(threads != 0 ? threads : EnvThreads()), stealing_(stealing) {}

unsigned ThreadPoolBackend::Concurrency() const { return threads_; }

void ThreadPoolBackend::Execute(
    std::vector<std::function<void()>> jobs) const {
  const std::uint64_t steals =
      RunStealingBatch(threads_, std::move(jobs), stealing_);
  if (steals != 0) {
    static auto& steal_count =
        obs::MetricsRegistry::Global().GetCounter("campaign.steal_count");
    steal_count.Add(steals);
  }
}

ShardBackend::ShardBackend(unsigned shards) : shards_(shards) {
  if (shards_ == 0) {
    throw std::invalid_argument("ShardBackend: need at least one shard");
  }
}

std::string ShardBackend::name() const {
  return "shard:" + std::to_string(shards_);
}

void ShardBackend::Execute(std::vector<std::function<void()>> jobs) const {
  // Correct fallback for callers that cannot marshal across processes
  // (see the class comment): inline serial execution, the determinism
  // reference.  The campaign runner never reaches this — it detects
  // ProcessShards() and ships chunks through RunSharded instead.
  for (auto& job : jobs) job();
}

std::unique_ptr<ExecutionBackend> MakeDefaultBackend(unsigned threads) {
  if (threads == 0) threads = EnvThreads();
  if (threads <= 1) return std::make_unique<SerialBackend>();
  return std::make_unique<ThreadPoolBackend>(threads);
}

namespace {

constexpr char kKnownBackends[] = "serial, pool, shard:<N>";

// Levenshtein distance, for "did you mean" suggestions (same contract as
// FlagSet::RejectUnknown: a typo must produce a pointed error, not a
// generic list).
std::size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitute =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
    }
  }
  return row[b.size()];
}

[[noreturn]] void ThrowUnknownBackend(const std::string& name) {
  std::string message = "MakeBackend: unknown backend '" + name +
                        "' (known: " + kKnownBackends + ")";
  const char* candidates[] = {"serial", "pool", "threadpool", "shard"};
  std::size_t best_distance = 3;  // suggest only close misspellings
  const char* best = nullptr;
  for (const char* candidate : candidates) {
    const std::size_t distance = EditDistance(name, candidate);
    if (distance < best_distance) {
      best_distance = distance;
      best = candidate;
    }
  }
  if (best != nullptr) {
    message += "; did you mean '" + std::string(best) + "'?";
  }
  throw std::invalid_argument(message);
}

unsigned ParseShardCount(const std::string& name) {
  const std::string count = name.substr(6);  // after "shard:"
  if (count.empty() ||
      count.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument(
        "MakeBackend: 'shard:' needs a positive worker count, got '" + name +
        "' (e.g. shard:4)");
  }
  unsigned long shards = 0;
  try {
    shards = std::stoul(count);
  } catch (const std::out_of_range&) {
    shards = 0;  // falls through to the range error below
  }
  if (shards == 0 || shards > 4096) {
    throw std::invalid_argument(
        "MakeBackend: shard count must be in [1, 4096], got '" + count +
        "'");
  }
  return static_cast<unsigned>(shards);
}

}  // namespace

std::unique_ptr<ExecutionBackend> MakeBackend(const std::string& name,
                                              unsigned threads) {
  if (name == "serial") return std::make_unique<SerialBackend>();
  if (name == "pool" || name == "threadpool") {
    return std::make_unique<ThreadPoolBackend>(threads);
  }
  if (name.rfind("shard:", 0) == 0) {
    return std::make_unique<ShardBackend>(ParseShardCount(name));
  }
  if (name == "shard") {
    throw std::invalid_argument(
        "MakeBackend: 'shard' needs a worker count — use shard:<N> "
        "(e.g. shard:4)");
  }
  ThrowUnknownBackend(name);
}

}  // namespace fairchain::core
