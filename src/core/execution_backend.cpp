#include "core/execution_backend.hpp"

#include <stdexcept>

#include "support/env.hpp"
#include "support/thread_pool.hpp"

namespace fairchain::core {

void SerialBackend::Execute(std::vector<std::function<void()>> jobs) const {
  for (auto& job : jobs) job();
}

ThreadPoolBackend::ThreadPoolBackend(unsigned threads)
    : threads_(threads != 0 ? threads : EnvThreads()) {}

unsigned ThreadPoolBackend::Concurrency() const { return threads_; }

void ThreadPoolBackend::Execute(
    std::vector<std::function<void()>> jobs) const {
  ThreadPool pool(threads_);
  pool.SubmitBatch(std::move(jobs));
  pool.Wait();
}

std::unique_ptr<ExecutionBackend> MakeDefaultBackend(unsigned threads) {
  if (threads == 0) threads = EnvThreads();
  if (threads <= 1) return std::make_unique<SerialBackend>();
  return std::make_unique<ThreadPoolBackend>(threads);
}

std::unique_ptr<ExecutionBackend> MakeBackend(const std::string& name,
                                              unsigned threads) {
  if (name == "serial") return std::make_unique<SerialBackend>();
  if (name == "pool" || name == "threadpool") {
    return std::make_unique<ThreadPoolBackend>(threads);
  }
  throw std::invalid_argument("MakeBackend: unknown backend '" + name +
                              "' (known: serial, pool)");
}

}  // namespace fairchain::core
