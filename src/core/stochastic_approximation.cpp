#include "core/stochastic_approximation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "protocol/win_probability.hpp"

namespace fairchain::core {

double SlPosDriftTwoMiner(double z) {
  if (z < 0.0 || z > 1.0) {
    throw std::invalid_argument("SlPosDriftTwoMiner: z must be in [0, 1]");
  }
  if (z == 0.0) return 0.0;
  if (z == 1.0) return 0.0;
  if (z <= 0.5) return z / (2.0 * (1.0 - z)) - z;
  return 1.0 - (1.0 - z) / (2.0 * z) - z;
}

std::vector<double> SlPosDriftField(const std::vector<double>& shares) {
  double total = 0.0;
  for (const double s : shares) {
    if (s < 0.0) throw std::invalid_argument("SlPosDriftField: negative share");
    total += s;
  }
  if (std::fabs(total - 1.0) > 1e-9) {
    throw std::invalid_argument(
        "SlPosDriftField: shares must sum to 1 (probability vector)");
  }
  const std::vector<double> win =
      protocol::SlPosWinProbabilities(shares);
  std::vector<double> drift(shares.size());
  for (std::size_t i = 0; i < shares.size(); ++i) {
    drift[i] = win[i] - shares[i];
  }
  return drift;
}

namespace {

double BisectZero(const std::function<double(double)>& f, double lo,
                  double hi, double tolerance) {
  double flo = f(lo);
  for (int iter = 0; iter < 200 && hi - lo > tolerance; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if ((flo <= 0.0) == (fmid <= 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

bool ClassifyStable(const std::function<double(double)>& f, double z) {
  // Stable iff f points toward z on both sides:  f(z-h) > 0 and f(z+h) < 0.
  const double h = 1e-4;
  const double left = z - h;
  const double right = z + h;
  bool stable_left = true;
  bool stable_right = true;
  if (left >= 0.0) stable_left = f(left) > 0.0;
  if (right <= 1.0) stable_right = f(right) < 0.0;
  return stable_left && stable_right;
}

}  // namespace

std::vector<DriftZero> FindDriftZeros(const std::function<double(double)>& f,
                                      std::size_t grid, double tolerance) {
  if (grid < 2) throw std::invalid_argument("FindDriftZeros: grid too small");
  std::vector<DriftZero> zeros;
  auto add_zero = [&](double z) {
    for (const auto& existing : zeros) {
      if (std::fabs(existing.location - z) < 1e-6) return;
    }
    zeros.push_back(DriftZero{z, ClassifyStable(f, z)});
  };
  const double step = 1.0 / static_cast<double>(grid);
  double prev_x = 0.0;
  double prev_f = f(0.0);
  if (std::fabs(prev_f) < tolerance) add_zero(0.0);
  for (std::size_t k = 1; k <= grid; ++k) {
    const double x = static_cast<double>(k) * step;
    const double fx = f(x);
    if (std::fabs(fx) < tolerance) {
      add_zero(x);
    } else if ((prev_f < 0.0 && fx > 0.0) || (prev_f > 0.0 && fx < 0.0)) {
      add_zero(BisectZero(f, prev_x, x, tolerance));
    }
    prev_x = x;
    prev_f = fx;
  }
  std::sort(zeros.begin(), zeros.end(),
            [](const DriftZero& a, const DriftZero& b) {
              return a.location < b.location;
            });
  return zeros;
}

std::vector<DriftZero> SlPosTwoMinerZeros() {
  return FindDriftZeros([](double z) { return SlPosDriftTwoMiner(z); });
}

StochasticApproximationProcess::StochasticApproximationProcess(
    double z0, Drift drift, Noise noise, StepSize step_size)
    : z_(z0), drift_(std::move(drift)), noise_(std::move(noise)),
      step_size_(std::move(step_size)) {
  if (z0 < 0.0 || z0 > 1.0) {
    throw std::invalid_argument(
        "StochasticApproximationProcess: z0 must be in [0, 1]");
  }
}

double StochasticApproximationProcess::Step(RngStream& rng) {
  ++steps_;
  const double gamma = step_size_(steps_);
  const double drift = drift_(z_);
  const double noise = noise_(z_, drift, rng);
  z_ = std::clamp(z_ + gamma * (drift + noise), 0.0, 1.0);
  return z_;
}

double StochasticApproximationProcess::Run(RngStream& rng, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) Step(rng);
  return z_;
}

StochasticApproximationProcess MakeSlPosShareProcess(double a, double w) {
  if (!(a >= 0.0) || !(a <= 1.0)) {
    throw std::invalid_argument("MakeSlPosShareProcess: a must be in [0, 1]");
  }
  if (!(w > 0.0)) {
    throw std::invalid_argument("MakeSlPosShareProcess: w must be > 0");
  }
  // Z_{n+1} - Z_n = γ_{n+1} (X_{n+1} - Z_n), where X_{n+1} ~ Bernoulli(p)
  // with p = the SL-PoS win probability at share Z_n.  Decomposed into
  // drift f(z) = p(z) - z and noise U = X - p(z).
  auto drift = [](double z) { return SlPosDriftTwoMiner(z); };
  auto noise = [](double z, double drift_value, RngStream& rng) {
    const double win_probability = drift_value + z;  // p(z) = f(z) + z
    const bool win = rng.NextBernoulli(win_probability);
    return (win ? 1.0 : 0.0) - win_probability;
  };
  auto step_size = [w](std::uint64_t n) {
    return w / (1.0 + static_cast<double>(n) * w);
  };
  return StochasticApproximationProcess(a, drift, noise, step_size);
}

}  // namespace fairchain::core
