#include "core/polya.hpp"

#include <stdexcept>

namespace fairchain::core {

PolyaUrn::PolyaUrn(std::vector<double> initial, double reinforcement)
    : initial_(std::move(initial)), reinforcement_(reinforcement) {
  if (initial_.empty()) {
    throw std::invalid_argument("PolyaUrn: at least one color required");
  }
  if (!(reinforcement_ > 0.0)) {
    throw std::invalid_argument("PolyaUrn: reinforcement must be > 0");
  }
  for (const double m : initial_) {
    if (m < 0.0) throw std::invalid_argument("PolyaUrn: negative mass");
    total_ += m;
  }
  if (!(total_ > 0.0)) {
    throw std::invalid_argument("PolyaUrn: initial masses sum to zero");
  }
  mass_ = initial_;
}

std::size_t PolyaUrn::Draw(RngStream& rng) {
  const double target = rng.NextDouble() * total_;
  double cumulative = 0.0;
  std::size_t drawn = mass_.size() - 1;
  for (std::size_t i = 0; i + 1 < mass_.size(); ++i) {
    cumulative += mass_[i];
    if (target < cumulative) {
      drawn = i;
      break;
    }
  }
  mass_[drawn] += reinforcement_;
  total_ += reinforcement_;
  ++draws_;
  return drawn;
}

std::uint64_t PolyaUrn::Run(RngStream& rng, std::uint64_t n,
                            std::size_t color) {
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (Draw(rng) == color) ++hits;
  }
  return hits;
}

void PolyaUrn::Reset() {
  mass_ = initial_;
  total_ = 0.0;
  for (const double m : mass_) total_ += m;
  draws_ = 0;
}

BetaParams PolyaUrn::TwoColorLimit(double s0, double s1, double w) {
  if (!(s0 > 0.0) || !(s1 > 0.0) || !(w > 0.0)) {
    throw std::invalid_argument(
        "PolyaUrn::TwoColorLimit: masses and reinforcement must be > 0");
  }
  return BetaParams{s0 / w, s1 / w};
}

}  // namespace fairchain::core
