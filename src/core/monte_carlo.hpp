// Replicated Monte Carlo simulation of mining games.
//
// The engine runs R independent replications of a mining game for n steps,
// records miner A's reward fraction λ at a set of checkpoints, and reduces
// the per-checkpoint samples to the statistics the paper plots:
//   * mean λ                         (expectational fairness — Figure 2 line)
//   * 5th / 95th percentile band     (Figure 2 shaded area)
//   * unfair probability             (Figures 3 & 5)
//   * convergence step               (Table 1 "Cvg. Time": first checkpoint
//                                     from which (ε, δ)-fairness holds)
//
// Determinism: replication r always uses RngStream(seed).Split(r), so
// results are identical for any thread count.

#ifndef FAIRCHAIN_CORE_MONTE_CARLO_HPP_
#define FAIRCHAIN_CORE_MONTE_CARLO_HPP_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/execution_backend.hpp"
#include "core/fairness.hpp"
#include "core/population.hpp"
#include "core/replication_block_workspace.hpp"
#include "core/replication_workspace.hpp"
#include "protocol/incentive_model.hpp"

namespace fairchain::core {

/// How replications of a cell are stepped.
///
/// kScalar is the determinism reference: replication r draws from
/// RngStream(seed).Split(r), one game at a time, as every campaign has
/// since the seed.  kVectorized REQUESTS the lane-batched path: blocks of
/// kReplicationLaneWidth replications advance in lockstep over
/// structure-of-arrays state, replication r drawing from the counter-based
/// PhiloxStream(seed, r).  The request only takes effect for models that
/// support lane stepping with static (non-compounding) stake — see
/// UsesVectorizedStepping; everything else keeps the scalar batched path,
/// byte-identical to kScalar.
///
/// Equivalence contract: vectorized output is NOT byte-identical to scalar
/// output for the cells it accelerates — the Philox keystream is a
/// different (equally deterministic) sequence than the xoshiro splits — but
/// it is distribution-identical, which the closed-form oracles judge
/// (`verify --all`).  Vectorized output IS byte-identical to a scalar
/// replay of the same Philox streams, to any lane-block width, any
/// checkpoint segmentation, and any backend (tests/protocol/
/// lane_steps_conformance_test.cpp).
enum class SteppingMode { kScalar, kVectorized };

/// Configuration of one simulation campaign.
struct SimulationConfig {
  /// Horizon: number of blocks (or epochs) per replication.
  std::uint64_t steps = 5000;
  /// Number of independent replications (the paper uses 10,000).
  std::uint64_t replications = 10000;
  /// Master seed; replication r uses the r-th split stream.
  std::uint64_t seed = 20210620;  // SIGMOD'21 opening day
  /// Worker threads (0 = use EnvThreads()).
  unsigned threads = 0;
  /// Steps at which λ is recorded, ascending, each in [1, steps].
  /// Empty = ~120 evenly spaced checkpoints ending exactly at `steps`.
  std::vector<std::uint64_t> checkpoints;
  /// Reward-withholding period (Section 6.3); 0 disables.
  std::uint64_t withhold_period = 0;
  /// Index of the miner whose λ is tracked (the paper's miner A).
  std::size_t miner = 0;
  /// Record population concentration metrics (Gini / HHI / Nakamoto /
  /// top-decile share over miner wealth) at every checkpoint.  Costs one
  /// O(m log m) sort per (replication, checkpoint); disable for pure
  /// hot-path throughput runs at extreme populations.
  bool population_metrics = true;
  /// Retain every replication's final-checkpoint λ in
  /// SimulationResult::final_lambdas (an O(replications) vector).  Keep on
  /// for distribution inspection / Expectational(); turn off (spec key
  /// `final_lambdas=off`) for 100k-replication cells that only read the
  /// reduced checkpoint statistics.
  bool keep_final_lambdas = true;
  /// Stepping mode (spec key `stepping=scalar|vectorized`).  See
  /// SteppingMode for the eligibility and equivalence contract.
  SteppingMode stepping = SteppingMode::kScalar;

  /// Validates ranges; throws std::invalid_argument.
  void Validate() const;
};

/// Statistics of λ at one checkpoint, across replications.
struct CheckpointStats {
  std::uint64_t step = 0;
  double mean = 0.0;
  double std_dev = 0.0;
  double p05 = 0.0;   ///< 5th percentile (bottom of the paper's blue band)
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;   ///< 95th percentile (top of the band)
  double min = 0.0;
  double max = 0.0;
  double unfair_probability = 0.0;  ///< Pr[λ outside fair area]

  // Population concentration metrics, averaged across replications (NaN
  // when SimulationConfig::population_metrics is off).  See
  // core/population.hpp for definitions; wealth = initial resource +
  // cumulative credited income.
  double gini = std::numeric_limits<double>::quiet_NaN();
  double hhi = std::numeric_limits<double>::quiet_NaN();
  double nakamoto = std::numeric_limits<double>::quiet_NaN();
  double top_decile_share = std::numeric_limits<double>::quiet_NaN();

  // Chain-dynamics observables (NaN for ordinary incentive cells; filled
  // by chain::ReduceChainMetrics for fork/propagation/selfish campaigns).
  // orphan_rate / reorg_depth_mean are averages across replications,
  // reorg_depth_max the maximum across replications.
  double orphan_rate = std::numeric_limits<double>::quiet_NaN();
  double reorg_depth_mean = std::numeric_limits<double>::quiet_NaN();
  double reorg_depth_max = std::numeric_limits<double>::quiet_NaN();
};

/// Full result of a simulation campaign.
struct SimulationResult {
  std::string protocol;
  double initial_share = 0.0;  ///< a — miner A's initial resource share
  FairnessSpec spec;
  SimulationConfig config;
  std::vector<CheckpointStats> checkpoints;
  /// λ of every replication at the final checkpoint, in replication order
  /// (for distribution inspection / histograms).  Empty when
  /// SimulationConfig::keep_final_lambdas is off.
  std::vector<double> final_lambdas;

  /// The last checkpoint's statistics.
  const CheckpointStats& Final() const;

  /// First checkpoint step from which the unfair probability stays <= δ
  /// through the horizon; std::nullopt when never achieved ("Never" in
  /// Table 1).
  std::optional<std::uint64_t> ConvergenceStep() const;

  /// Expectational fairness report at the horizon.
  ExpectationalFairnessReport Expectational() const;
};

/// The Monte Carlo engine.  Immutable after construction; Run is
/// re-entrant and thread-safe.
class MonteCarloEngine {
 public:
  /// Creates an engine; validates both arguments.
  MonteCarloEngine(SimulationConfig config, FairnessSpec spec);

  /// Runs a campaign of `config.replications` games of `model`, all starting
  /// from `initial_stakes` (absolute values; the tracked miner's *share* is
  /// derived), over the default backend for `config.threads`.  Throws when
  /// `config.miner` is out of range.
  SimulationResult Run(const protocol::IncentiveModel& model,
                       const std::vector<double>& initial_stakes) const;

  /// Same campaign over an injected execution backend.  Results are
  /// byte-identical for ANY backend (see execution_backend.hpp for the
  /// seeding/chunking contract).
  SimulationResult Run(const protocol::IncentiveModel& model,
                       const std::vector<double>& initial_stakes,
                       const ExecutionBackend& backend) const;

  /// Convenience for the paper's two-miner setting: miner A starts with
  /// share `a`, miner B with 1 - a.
  SimulationResult RunTwoMiner(const protocol::IncentiveModel& model,
                               double a) const;

  const SimulationConfig& config() const { return config_; }
  const FairnessSpec& spec() const { return spec_; }

 private:
  SimulationConfig config_;
  FairnessSpec spec_;
};

/// True when a campaign of `model` under `config` resolves to the
/// vectorized lane path: the mode was requested AND the model has a lane
/// kernel AND its stake is static.  Compounding models keep the scalar
/// batched path even under kVectorized — their per-lane Fenwick trees make
/// lockstep stepping slower than the scalar loop, and withholding (which
/// only matters when rewards compound) is not modelled by the lane kernels.
/// Callers deciding store keys or output contracts MUST use this predicate,
/// not the raw config field: a kVectorized request that falls back to
/// scalar produces byte-identical-to-scalar results.
bool UsesVectorizedStepping(const protocol::IncentiveModel& model,
                            const SimulationConfig& config);

/// Number of doubles a per-replication population-metric matrix needs:
/// kPopulationMetricCount planes of (checkpoints × replications).  Layout:
/// population_matrix[(metric * cp_count + c) * replications + r].
std::size_t PopulationMatrixSize(const SimulationConfig& config);

/// Runs replications [begin, end) of `model` from `initial_stakes` under
/// `config`, writing λ of replication r at checkpoint c into
/// lambda_matrix[c * config.replications + r].  `config.checkpoints` must
/// be populated (`Validate`d); `config.miner` must index into
/// `initial_stakes` (throws std::invalid_argument otherwise — this is a
/// public entry point, callers may bypass MonteCarloEngine::Run).
/// `population_matrix` (may be null) additionally receives the wealth
/// concentration metrics of every (checkpoint, replication) in the
/// PopulationMatrixSize layout.  Replication r always draws from
/// RngStream(config.seed).Split(r), so any partition of [0, replications)
/// across threads — including the campaign runner's shared-pool sharding —
/// produces identical values.
///
/// `workspace` is the arena the replications step in; it is Bind()-ed to
/// this call's configuration (free when already bound — the steady state)
/// and left bound on return.  Steps between checkpoints are driven through
/// the model's batched RunSteps in whole segments, so the per-step cost is
/// the protocol's inner loop — no virtual dispatch, no allocation.
///
/// When UsesVectorizedStepping(model, config) holds, the range is instead
/// stepped through RunReplicationBlockRange on this thread's block arena —
/// transparently for every backend, since serial, pool, and shard workers
/// all enter through here.
void RunReplicationRange(const protocol::IncentiveModel& model,
                         const std::vector<double>& initial_stakes,
                         const SimulationConfig& config, std::size_t begin,
                         std::size_t end, double* lambda_matrix,
                         double* population_matrix,
                         ReplicationWorkspace& workspace);

/// Convenience overload running in this thread's workspace
/// (ThreadLocalReplicationWorkspace).
void RunReplicationRange(const protocol::IncentiveModel& model,
                         const std::vector<double>& initial_stakes,
                         const SimulationConfig& config, std::size_t begin,
                         std::size_t end, double* lambda_matrix,
                         double* population_matrix);

/// Backwards-compatible overload: λ only, no population metrics.
void RunReplicationRange(const protocol::IncentiveModel& model,
                         const std::vector<double>& initial_stakes,
                         const SimulationConfig& config, std::size_t begin,
                         std::size_t end, double* lambda_matrix);

/// The vectorized twin of RunReplicationRange: steps replications
/// [begin, end) in lane blocks of up to kReplicationLaneWidth, each block
/// advanced in lockstep through the model's RunLaneSteps.  Replication r is
/// lane r of the cell's Philox keystream (PhiloxStream(config.seed, r)), so
/// the output is invariant to the [begin, end) partition and to the lane
/// width — identical matrix cells for any backend, chunking, or block size.
/// Requires model.SupportsLaneStepping() and !model.RewardCompounds()
/// (throws std::invalid_argument otherwise); callers normally route through
/// RunReplicationRange, which dispatches on UsesVectorizedStepping.
void RunReplicationBlockRange(const protocol::IncentiveModel& model,
                              const std::vector<double>& initial_stakes,
                              const SimulationConfig& config,
                              std::size_t begin, std::size_t end,
                              double* lambda_matrix,
                              double* population_matrix,
                              ReplicationBlockWorkspace& workspace);

/// Reduces a fully populated λ matrix (layout as RunReplicationRange) plus
/// an optional population matrix (empty = no metrics; otherwise exactly
/// PopulationMatrixSize doubles) to per-checkpoint statistics.  The second
/// half of MonteCarloEngine::Run, exposed so external schedulers reuse the
/// same reduction.  Throws std::invalid_argument when `config.miner` is
/// out of range for `initial_stakes`.
SimulationResult ReduceToResult(const std::string& protocol_name,
                                const std::vector<double>& initial_stakes,
                                const SimulationConfig& config,
                                const FairnessSpec& spec,
                                const std::vector<double>& lambda_matrix,
                                const std::vector<double>& population_matrix);

/// Backwards-compatible overload: λ only, population metrics stay NaN.
SimulationResult ReduceToResult(const std::string& protocol_name,
                                const std::vector<double>& initial_stakes,
                                const SimulationConfig& config,
                                const FairnessSpec& spec,
                                const std::vector<double>& lambda_matrix);

/// Evenly spaced checkpoints {step/count, 2*step/count, ..., steps}.
/// Exact at every magnitude: the k·steps/count intermediate is evaluated in
/// 128-bit arithmetic, so horizons near 2^64 cannot wrap.
std::vector<std::uint64_t> LinearCheckpoints(std::uint64_t steps,
                                             std::size_t count);

/// Log-spaced checkpoints from `first` to `steps` (inclusive, deduplicated,
/// clamped so rounding can never emit a checkpoint beyond `steps`);
/// used for the 10^5-block SL-PoS horizon of Figure 4.
std::vector<std::uint64_t> LogCheckpoints(std::uint64_t steps,
                                          std::size_t count,
                                          std::uint64_t first = 10);

}  // namespace fairchain::core

#endif  // FAIRCHAIN_CORE_MONTE_CARLO_HPP_
