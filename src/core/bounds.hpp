// Analytical robust-fairness bounds (Theorems 4.2, 4.3, 4.10) and the exact
// ML-PoS Pólya-urn limit (Section 4.3).
//
// Conventions: `a` is miner A's initial resource share in (0, 1); `w` and
// `v` are per-step rewards normalised against the initial total stake; `n`
// is the number of blocks (PoW / ML-PoS) or epochs (C-PoS).

#ifndef FAIRCHAIN_CORE_BOUNDS_HPP_
#define FAIRCHAIN_CORE_BOUNDS_HPP_

#include <cstdint>

#include "core/fairness.hpp"

namespace fairchain::core {

// ---------------------------------------------------------------------------
// PoW (Theorem 4.2, Hoeffding)
// ---------------------------------------------------------------------------

/// Hoeffding tail bound on PoW unfairness:
///   Pr[λ outside fair area] <= 2 exp(-2 n a² ε²).
double PowUnfairUpperBound(std::uint64_t n, double a, double epsilon);

/// The sufficient horizon of Theorem 4.2:  n >= ln(2/δ) / (2 a² ε²).
double PowSufficientBlocks(double a, const FairnessSpec& spec);

/// True when (n, a) satisfies the Theorem 4.2 sufficient condition.
bool PowSatisfiesBound(std::uint64_t n, double a, const FairnessSpec& spec);

/// Exact PoW robust-fairness probability Δ(ε; n, a) via the binomial CDF
/// (Section 4.2) — tighter than Hoeffding; tests verify
/// Δ >= 1 - PowUnfairUpperBound.
double PowExactFairProbability(std::uint64_t n, double a, double epsilon);

// ---------------------------------------------------------------------------
// ML-PoS (Theorem 4.3, Azuma; and the exact Beta limit)
// ---------------------------------------------------------------------------

/// Azuma bound for ML-PoS:  Pr[unfair] <= 2 exp(-2 n a² ε² / (1 + n w)).
/// As n -> infinity this tends to 2 exp(-2 a² ε² / w): a *positive* limit —
/// the mathematical reason ML-PoS cannot buy robust fairness with time.
double MlPosUnfairUpperBound(std::uint64_t n, double w, double a,
                             double epsilon);

/// Theorem 4.3 sufficient condition:  1/n + w <= 2 a² ε² / ln(2/δ).
bool MlPosSatisfiesBound(std::uint64_t n, double w, double a,
                         const FairnessSpec& spec);

/// The largest block reward w for which ML-PoS can ever (n -> infinity)
/// satisfy Theorem 4.3:  w_max = 2 a² ε² / ln(2/δ).
double MlPosMaxRewardForFairness(double a, const FairnessSpec& spec);

/// Parameters of a Beta distribution.
struct BetaParams {
  double alpha;
  double beta;
};

/// The almost-sure limit of the ML-PoS reward fraction (Section 4.3):
/// λ_A -> Beta(a/w, (1-a)/w) for initial shares (a, 1-a) and reward w.
BetaParams MlPosLimitDistribution(double a, double w);

/// Exact limiting unfair probability for ML-PoS via the regularized
/// incomplete beta:  1 - [I_{(1+ε)a} - I_{(1-ε)a}](a/w, (1-a)/w).
double MlPosLimitUnfairProbability(double a, double w, double epsilon);

/// True when the ML-PoS *limit* distribution satisfies (ε, δ)-fairness —
/// the sharp (non-sufficient-condition) criterion.
bool MlPosLimitSatisfies(double a, double w, const FairnessSpec& spec);

// ---------------------------------------------------------------------------
// C-PoS (Theorem 4.10)
// ---------------------------------------------------------------------------

/// Left-hand side of the Theorem 4.10 condition:
///   w² (1/n + w + v) / ((w + v)² P).
double CPosConditionLhs(std::uint64_t n, double w, double v, std::uint32_t P);

/// Azuma bound for C-PoS:
///   Pr[unfair] <= 2 exp(-2 n a² ε² (w+v)² P / (w² (1 + (w+v) n))).
double CPosUnfairUpperBound(std::uint64_t n, double w, double v,
                            std::uint32_t P, double a, double epsilon);

/// Theorem 4.10 sufficient condition:
///   w²(1/n + w + v) / ((w+v)² P) <= 2 a² ε² / ln(2/δ).
bool CPosSatisfiesBound(std::uint64_t n, double w, double v, std::uint32_t P,
                        double a, const FairnessSpec& spec);

/// The smallest inflation reward v such that C-PoS satisfies Theorem 4.10
/// as n -> infinity, for fixed (w, P, a, spec); returns +infinity when even
/// v -> infinity cannot satisfy it (never happens for valid inputs), and 0
/// when v = 0 already suffices.  Solved by bisection.
double CPosMinInflationForFairness(double w, std::uint32_t P, double a,
                                   const FairnessSpec& spec);

/// Common right-hand side of Theorems 4.3 / 4.10:  2 a² ε² / ln(2/δ).
double AzumaConditionRhs(double a, const FairnessSpec& spec);

}  // namespace fairchain::core

#endif  // FAIRCHAIN_CORE_BOUNDS_HPP_
