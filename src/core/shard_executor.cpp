#include "core/shard_executor.hpp"

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <thread>

#include "obs/trace.hpp"
#include "support/fault_injection.hpp"

namespace fairchain::core {

#ifdef _WIN32

void RunSharded(unsigned, std::size_t, const ShardComputeFn&,
                const ShardConsumeFn&) {
  throw std::runtime_error(
      "RunSharded: the process-sharded backend requires fork/pipe (POSIX)");
}

#else

namespace {

constexpr std::uint64_t kChunkMagic = 0xFA17C8A1'C0DE0001ULL;
constexpr std::uint64_t kErrorMagic = 0xFA17C8A1'C0DE0002ULL;
constexpr std::uint64_t kDoneMagic = 0xFA17C8A1'C0DE0003ULL;
constexpr std::uint64_t kSpanMagic = 0xFA17C8A1'C0DE0004ULL;

// Span payloads are a few dozen bytes per span over at most one ring; a
// worker can never legitimately exceed this, so larger lengths are torn
// framing.
constexpr std::uint64_t kMaxSpanPayload = 1ULL << 26;

// Full write with EINTR retry; returns false on any unrecoverable error
// (e.g. EPIPE after the parent died).
bool WriteAll(int fd, const void* data, std::size_t len) {
  const char* cursor = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t written = write(fd, cursor, len);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    cursor += written;
    len -= static_cast<std::size_t>(written);
  }
  return true;
}

// Full read with EINTR retry.  Returns len on success, 0 on clean EOF at
// the first byte, and the (short) byte count on EOF mid-buffer.
std::size_t ReadAll(int fd, void* data, std::size_t len) {
  char* cursor = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = read(fd, cursor + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return got;
    }
    if (n == 0) return got;
    got += static_cast<std::size_t>(n);
  }
  return got;
}

bool WriteU64(int fd, std::uint64_t value) {
  return WriteAll(fd, &value, sizeof(value));
}

// The worker-side loop: compute and stream every owned chunk, then the
// done marker.  Never returns normally — the worker always _exit()s so no
// inherited stdio buffer, atexit hook, or gtest state replays in the
// child.
[[noreturn]] void RunWorker(unsigned shard, unsigned shard_count,
                            std::size_t chunk_count,
                            const ShardComputeFn& compute, int fd) {
  // The fork snapshotted the parent's recorded spans; discard them so this
  // worker streams only what it records itself.
  obs::TraceCollector::Global().OnShardWorkerStart();
  // Streams everything recorded since the last flush.  Called after each
  // complete chunk message and before the done marker, so a worker killed
  // between chunks has already shipped every committed span — only spans
  // of the chunk in flight can be lost.
  auto flush_spans = [fd] {
    if (!obs::TraceEnabled()) return true;
    const std::string spans =
        obs::TraceCollector::Global().DrainSerializedSpans();
    if (spans.empty()) return true;
    return WriteU64(fd, kSpanMagic) &&
           WriteU64(fd, static_cast<std::uint64_t>(spans.size())) &&
           WriteAll(fd, spans.data(), spans.size());
  };
  std::uint64_t sent = 0;
  try {
    for (std::size_t j = shard; j < chunk_count;
         j += static_cast<std::size_t>(shard_count)) {
      const std::vector<double> payload = compute(j);
      if (!WriteU64(fd, kChunkMagic) ||
          !WriteU64(fd, static_cast<std::uint64_t>(j))) {
        _exit(3);
      }
      // Torn-message fault point: the header is on the wire, the payload
      // is not.
      MaybeInjectFault("shard-message", shard, sent + 1);
      if (!WriteU64(fd, static_cast<std::uint64_t>(payload.size())) ||
          !WriteAll(fd, payload.data(), payload.size() * sizeof(double))) {
        _exit(3);
      }
      ++sent;
      if (!flush_spans()) _exit(3);
      // Clean-death fault point: between two complete chunk messages.
      MaybeInjectFault("shard-chunk", shard, sent);
    }
    if (!flush_spans()) _exit(3);
    if (!WriteU64(fd, kDoneMagic) || !WriteU64(fd, sent)) _exit(3);
    _exit(0);
  } catch (const std::exception& error) {
    const std::string what = error.what();
    if (WriteU64(fd, kErrorMagic) &&
        WriteU64(fd, static_cast<std::uint64_t>(what.size()))) {
      WriteAll(fd, what.data(), what.size());
    }
    _exit(1);
  }
}

// One shard's parent-side state.
struct ShardStream {
  pid_t pid = -1;
  int read_fd = -1;
  std::uint64_t expected_chunks = 0;
  std::uint64_t received = 0;
  bool done_seen = false;
  std::string error;  // empty = clean so far
};

bool ReadU64(int fd, std::uint64_t* value) {
  return ReadAll(fd, value, sizeof(*value)) == sizeof(*value);
}

// Drains one worker's stream, validating the framing; fills
// stream.error on the first deviation and stops.
void ReadShardStream(ShardStream& stream, unsigned shard,
                     unsigned shard_count, std::size_t chunk_count,
                     const ShardConsumeFn& consume) {
  std::uint64_t expected_index = shard;
  while (true) {
    std::uint64_t magic = 0;
    const std::size_t got = ReadAll(stream.read_fd, &magic, sizeof(magic));
    if (got == 0) {
      stream.error = stream.done_seen
                         ? ""  // clean EOF after the done marker
                         : "stream ended before the done marker (worker "
                           "died after " +
                               std::to_string(stream.received) + " of " +
                               std::to_string(stream.expected_chunks) +
                               " chunks)";
      return;
    }
    if (got != sizeof(magic)) {
      stream.error = "torn message header";
      return;
    }
    if (stream.done_seen) {
      stream.error = "message after the done marker";
      return;
    }
    if (magic == kErrorMagic) {
      std::uint64_t length = 0;
      if (!ReadU64(stream.read_fd, &length) || length > (1u << 20)) {
        stream.error = "torn error message";
        return;
      }
      std::string what(length, '\0');
      if (ReadAll(stream.read_fd, what.data(), length) != length) {
        stream.error = "torn error message";
        return;
      }
      stream.error = "worker raised: " + what;
      return;
    }
    if (magic == kSpanMagic) {
      std::uint64_t length = 0;
      if (!ReadU64(stream.read_fd, &length) || length > kMaxSpanPayload) {
        stream.error = "torn span message";
        return;
      }
      std::string spans(static_cast<std::size_t>(length), '\0');
      if (ReadAll(stream.read_fd, spans.data(), spans.size()) !=
          spans.size()) {
        stream.error = "torn span message";
        return;
      }
      if (!obs::TraceCollector::Global().ImportShardSpans(shard, spans)) {
        stream.error = "malformed span payload";
        return;
      }
      continue;
    }
    if (magic == kDoneMagic) {
      std::uint64_t sent = 0;
      if (!ReadU64(stream.read_fd, &sent)) {
        stream.error = "torn done marker";
        return;
      }
      if (sent != stream.expected_chunks ||
          stream.received != stream.expected_chunks) {
        stream.error = "done marker after " + std::to_string(sent) + " of " +
                       std::to_string(stream.expected_chunks) + " chunks";
        return;
      }
      stream.done_seen = true;
      continue;  // expect clean EOF next
    }
    if (magic != kChunkMagic) {
      stream.error = "bad message magic";
      return;
    }
    std::uint64_t index = 0;
    std::uint64_t count = 0;
    if (!ReadU64(stream.read_fd, &index) || !ReadU64(stream.read_fd, &count)) {
      stream.error = "worker died mid-message (torn chunk header)";
      return;
    }
    if (index != expected_index || index >= chunk_count) {
      stream.error = "chunk " + std::to_string(index) +
                     " out of order (expected " +
                     std::to_string(expected_index) + ")";
      return;
    }
    std::vector<double> payload(static_cast<std::size_t>(count));
    const std::size_t want = payload.size() * sizeof(double);
    if (ReadAll(stream.read_fd, payload.data(), want) != want) {
      stream.error = "worker died mid-message (torn chunk payload, chunk " +
                     std::to_string(index) + ")";
      return;
    }
    try {
      obs::Span consume_span("shard.consume", index);
      consume(static_cast<std::size_t>(index), std::move(payload));
    } catch (const std::exception& error) {
      stream.error = std::string("consume failed: ") + error.what();
      return;
    }
    ++stream.received;
    expected_index += shard_count;
  }
}

}  // namespace

void RunSharded(unsigned shard_count, std::size_t chunk_count,
                const ShardComputeFn& compute,
                const ShardConsumeFn& consume) {
  if (shard_count == 0) {
    throw std::invalid_argument("RunSharded: shard_count must be >= 1");
  }
  if (chunk_count == 0) return;

  // All pipes exist before the first fork so every worker can close every
  // descriptor that is not its own write end.
  std::vector<int> read_fds(shard_count, -1);
  std::vector<int> write_fds(shard_count, -1);
  for (unsigned s = 0; s < shard_count; ++s) {
    int fds[2];
    if (pipe(fds) != 0) {
      for (unsigned t = 0; t < s; ++t) {
        close(read_fds[t]);
        close(write_fds[t]);
      }
      throw std::runtime_error("RunSharded: pipe() failed");
    }
    read_fds[s] = fds[0];
    write_fds[s] = fds[1];
  }

  // Inherited stdio buffers would be replayed by a worker that crashes
  // through a buffered FILE*; flush everything before snapshotting.
  std::fflush(nullptr);

  std::vector<ShardStream> streams(shard_count);
  for (unsigned s = 0; s < shard_count; ++s) {
    for (std::size_t j = s; j < chunk_count;
         j += static_cast<std::size_t>(shard_count)) {
      ++streams[s].expected_chunks;
    }
  }
  for (unsigned s = 0; s < shard_count; ++s) {
    const pid_t pid = fork();
    if (pid < 0) {
      for (unsigned t = 0; t < shard_count; ++t) {
        close(read_fds[t]);
        close(write_fds[t]);
      }
      for (unsigned t = 0; t < s; ++t) {
        kill(streams[t].pid, SIGKILL);
        waitpid(streams[t].pid, nullptr, 0);
      }
      throw std::runtime_error("RunSharded: fork() failed");
    }
    if (pid == 0) {
      for (unsigned t = 0; t < shard_count; ++t) {
        close(read_fds[t]);
        if (t != s) close(write_fds[t]);
      }
      RunWorker(s, shard_count, chunk_count, compute, write_fds[s]);
    }
    streams[s].pid = pid;
    streams[s].read_fd = read_fds[s];
  }
  for (unsigned s = 0; s < shard_count; ++s) close(write_fds[s]);

  // One reader per worker: payloads are consumed as they arrive, in any
  // cross-shard order (they commute — disjoint target ranges).
  std::vector<std::thread> readers;
  readers.reserve(shard_count);
  for (unsigned s = 0; s < shard_count; ++s) {
    readers.emplace_back([&streams, s, shard_count, chunk_count, &consume] {
      ReadShardStream(streams[s], s, shard_count, chunk_count, consume);
    });
  }
  for (std::thread& reader : readers) reader.join();
  for (unsigned s = 0; s < shard_count; ++s) close(read_fds[s]);

  // Reap every worker, then report the first failure: a reader-detected
  // framing error wins over the exit status (it names the chunk), but a
  // clean stream from a crashed worker is still an error.
  std::string failure;
  for (unsigned s = 0; s < shard_count; ++s) {
    int status = 0;
    while (waitpid(streams[s].pid, &status, 0) < 0 && errno == EINTR) {
    }
    std::string exit_note;
    if (WIFSIGNALED(status)) {
      exit_note = "killed by signal " + std::to_string(WTERMSIG(status));
    } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
      exit_note = "exited with status " + std::to_string(WEXITSTATUS(status));
    }
    std::string shard_failure;
    if (!streams[s].error.empty()) {
      shard_failure = streams[s].error;
      if (!exit_note.empty()) shard_failure += "; " + exit_note;
    } else if (!exit_note.empty() || !streams[s].done_seen) {
      shard_failure = exit_note.empty() ? "incomplete stream" : exit_note;
    }
    if (!shard_failure.empty() && failure.empty()) {
      failure = "shard " + std::to_string(s) + ": " + shard_failure;
    }
  }
  if (!failure.empty()) {
    throw std::runtime_error(
        "RunSharded: " + failure +
        " — results are incomplete, nothing was emitted for the affected "
        "cells (re-run, or resume from the campaign store)");
  }
}

#endif  // _WIN32

}  // namespace fairchain::core
