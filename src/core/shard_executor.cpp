#include "core/shard_executor.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <thread>

#include "obs/trace.hpp"
#include "support/fault_injection.hpp"

namespace fairchain::core {

#ifdef _WIN32

void RunSharded(unsigned, std::size_t, const ShardComputeFn&,
                const ShardConsumeFn&, const ShardOptions&) {
  throw std::runtime_error(
      "RunSharded: the process-sharded backend requires fork/pipe (POSIX)");
}

#else

namespace {

constexpr std::uint64_t kChunkMagic = 0xFA17C8A1'C0DE0001ULL;
constexpr std::uint64_t kErrorMagic = 0xFA17C8A1'C0DE0002ULL;
constexpr std::uint64_t kDoneMagic = 0xFA17C8A1'C0DE0003ULL;
constexpr std::uint64_t kSpanMagic = 0xFA17C8A1'C0DE0004ULL;
constexpr std::uint64_t kRequestMagic = 0xFA17C8A1'C0DE0005ULL;
constexpr std::uint64_t kGrantMagic = 0xFA17C8A1'C0DE0006ULL;

// Grant-index sentinel: no more work, drain and exit.
constexpr std::uint64_t kNoMoreWork =
    std::numeric_limits<std::uint64_t>::max();

// Span payloads are a few dozen bytes per span over at most one ring; a
// worker can never legitimately exceed this, so larger lengths are torn
// framing.
constexpr std::uint64_t kMaxSpanPayload = 1ULL << 26;

// Full write with EINTR retry; returns false on any unrecoverable error
// (e.g. EPIPE after the other end died).
bool WriteAll(int fd, const void* data, std::size_t len) {
  const char* cursor = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t written = write(fd, cursor, len);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    cursor += written;
    len -= static_cast<std::size_t>(written);
  }
  return true;
}

// Full read with EINTR retry.  Returns len on success, 0 on clean EOF at
// the first byte, and the (short) byte count on EOF mid-buffer.
std::size_t ReadAll(int fd, void* data, std::size_t len) {
  char* cursor = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = read(fd, cursor + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return got;
    }
    if (n == 0) return got;
    got += static_cast<std::size_t>(n);
  }
  return got;
}

bool WriteU64(int fd, std::uint64_t value) {
  return WriteAll(fd, &value, sizeof(value));
}

bool ReadU64(int fd, std::uint64_t* value) {
  return ReadAll(fd, value, sizeof(*value)) == sizeof(*value);
}

// Grant writes race worker deaths: a SIGKILLed worker turns the parent's
// next grant write into EPIPE, which must surface as a recorded shard
// failure — not as a process-fatal SIGPIPE.  Ignored around the whole
// RunSharded scope (installed before fork, so workers inherit it and
// their writes after a parent death fail with EPIPE -> _exit(3), exactly
// as before).
class ScopedIgnoreSigpipe {
 public:
  ScopedIgnoreSigpipe() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    sigemptyset(&ignore.sa_mask);
    installed_ = sigaction(SIGPIPE, &ignore, &previous_) == 0;
  }
  ~ScopedIgnoreSigpipe() {
    if (installed_) sigaction(SIGPIPE, &previous_, nullptr);
  }
  ScopedIgnoreSigpipe(const ScopedIgnoreSigpipe&) = delete;
  ScopedIgnoreSigpipe& operator=(const ScopedIgnoreSigpipe&) = delete;

 private:
  struct sigaction previous_ {};
  bool installed_ = false;
};

// The worker-side loop: alternate grant -> compute -> stream -> request
// until the sentinel, then the done marker.  Never returns normally — the
// worker always _exit()s so no inherited stdio buffer, atexit hook, or
// gtest state replays in the child.
[[noreturn]] void RunWorker(unsigned shard, const ShardComputeFn& compute,
                            int data_fd, int cmd_fd) {
  // The fork snapshotted the parent's recorded spans; discard them so this
  // worker streams only what it records itself.
  obs::TraceCollector::Global().OnShardWorkerStart();
  // Streams everything recorded since the last flush.  Called after each
  // complete chunk message and before the done marker, so a worker killed
  // between chunks has already shipped every committed span — only spans
  // of the chunk in flight can be lost.
  auto flush_spans = [data_fd] {
    if (!obs::TraceEnabled()) return true;
    const std::string spans =
        obs::TraceCollector::Global().DrainSerializedSpans();
    if (spans.empty()) return true;
    return WriteU64(data_fd, kSpanMagic) &&
           WriteU64(data_fd, static_cast<std::uint64_t>(spans.size())) &&
           WriteAll(data_fd, spans.data(), spans.size());
  };
  std::uint64_t sent = 0;
  try {
    for (;;) {
      std::uint64_t magic = 0;
      std::uint64_t index = 0;
      if (!ReadU64(cmd_fd, &magic) || magic != kGrantMagic ||
          !ReadU64(cmd_fd, &index)) {
        _exit(3);
      }
      if (index == kNoMoreWork) break;
      const std::vector<double> payload =
          compute(static_cast<std::size_t>(index));
      if (!WriteU64(data_fd, kChunkMagic) || !WriteU64(data_fd, index)) {
        _exit(3);
      }
      // Torn-message fault point: the header is on the wire, the payload
      // is not.
      MaybeInjectFault("shard-message", shard, sent + 1);
      if (!WriteU64(data_fd, static_cast<std::uint64_t>(payload.size())) ||
          !WriteAll(data_fd, payload.data(),
                    payload.size() * sizeof(double))) {
        _exit(3);
      }
      ++sent;
      if (!flush_spans()) _exit(3);
      // Clean-death / stall fault point: the chunk is fully streamed, the
      // next grant is not yet requested — a stalled worker here holds no
      // work, so the other workers drain the whole remaining queue (the
      // worst-case interleaving the scheduler golden tests force).
      MaybeInjectFault("shard-chunk", shard, sent);
      if (!WriteU64(data_fd, kRequestMagic) || !WriteU64(data_fd, sent)) {
        _exit(3);
      }
    }
    if (!flush_spans()) _exit(3);
    if (!WriteU64(data_fd, kDoneMagic) || !WriteU64(data_fd, sent)) _exit(3);
    _exit(0);
  } catch (const std::exception& error) {
    const std::string what = error.what();
    if (WriteU64(data_fd, kErrorMagic) &&
        WriteU64(data_fd, static_cast<std::uint64_t>(what.size()))) {
      WriteAll(data_fd, what.data(), what.size());
    }
    _exit(1);
  }
}

// The parent-side grant queue, shared by every reader thread.
struct GrantQueue {
  std::mutex mutex;
  std::vector<std::size_t> order;
  std::size_t next = 0;

  // Returns kNoMoreWork when exhausted.
  std::uint64_t Pop() {
    std::lock_guard<std::mutex> lock(mutex);
    if (next >= order.size()) return kNoMoreWork;
    return static_cast<std::uint64_t>(order[next++]);
  }
};

// One shard's parent-side state.
struct ShardStream {
  pid_t pid = -1;
  int data_fd = -1;  ///< read end of the worker's data pipe
  int cmd_fd = -1;   ///< write end of the worker's command pipe
  std::uint64_t received = 0;
  bool done_seen = false;
  // The single outstanding grant (the protocol allows at most one).
  bool has_outstanding = false;
  std::uint64_t outstanding = 0;
  std::chrono::steady_clock::time_point grant_time;
  std::uint64_t last_grant_ns = 0;
  std::string error;  // empty = clean so far
};

// Writes one grant to the worker and records it as outstanding.  Returns
// false when the worker is unreachable (dead child -> EPIPE).
bool SendGrant(ShardStream& stream, std::uint64_t index) {
  if (!WriteU64(stream.cmd_fd, kGrantMagic) ||
      !WriteU64(stream.cmd_fd, index)) {
    return false;
  }
  if (index != kNoMoreWork) {
    stream.has_outstanding = true;
    stream.outstanding = index;
    stream.grant_time = std::chrono::steady_clock::now();
  }
  return true;
}

// Drains one worker's stream, serving its grant requests from the shared
// queue and validating the framing; fills stream.error on the first
// deviation and stops.  Chunks this worker was granted but never
// delivered are NOT re-granted — the run fails loudly after the other
// workers finish draining the queue.
void ReadShardStream(ShardStream& stream, unsigned shard, GrantQueue& queue,
                     std::size_t chunk_count, const ShardConsumeFn& consume,
                     const ShardOptions& options) {
  while (true) {
    std::uint64_t magic = 0;
    const std::size_t got = ReadAll(stream.data_fd, &magic, sizeof(magic));
    if (got == 0) {
      stream.error = stream.done_seen
                         ? ""  // clean EOF after the done marker
                         : "stream ended before the done marker (worker "
                           "died after " +
                               std::to_string(stream.received) + " chunks)";
      return;
    }
    if (got != sizeof(magic)) {
      stream.error = "torn message header";
      return;
    }
    if (stream.done_seen) {
      stream.error = "message after the done marker";
      return;
    }
    if (magic == kErrorMagic) {
      std::uint64_t length = 0;
      if (!ReadU64(stream.data_fd, &length) || length > (1u << 20)) {
        stream.error = "torn error message";
        return;
      }
      std::string what(length, '\0');
      if (ReadAll(stream.data_fd, what.data(), length) != length) {
        stream.error = "torn error message";
        return;
      }
      stream.error = "worker raised: " + what;
      return;
    }
    if (magic == kSpanMagic) {
      std::uint64_t length = 0;
      if (!ReadU64(stream.data_fd, &length) || length > kMaxSpanPayload) {
        stream.error = "torn span message";
        return;
      }
      std::string spans(static_cast<std::size_t>(length), '\0');
      if (ReadAll(stream.data_fd, spans.data(), spans.size()) !=
          spans.size()) {
        stream.error = "torn span message";
        return;
      }
      if (!obs::TraceCollector::Global().ImportShardSpans(shard, spans)) {
        stream.error = "malformed span payload";
        return;
      }
      continue;
    }
    if (magic == kRequestMagic) {
      std::uint64_t seq = 0;
      if (!ReadU64(stream.data_fd, &seq)) {
        stream.error = "torn request message";
        return;
      }
      if (stream.has_outstanding || seq != stream.received) {
        stream.error = "request out of sequence (worker reports " +
                       std::to_string(seq) + " chunks, parent consumed " +
                       std::to_string(stream.received) + ")";
        return;
      }
      const auto request_time = std::chrono::steady_clock::now();
      const std::uint64_t index = queue.Pop();
      if (!SendGrant(stream, index)) {
        stream.error = "worker died awaiting a grant";
        return;
      }
      stream.last_grant_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - request_time)
              .count());
      continue;
    }
    if (magic == kDoneMagic) {
      std::uint64_t sent = 0;
      if (!ReadU64(stream.data_fd, &sent)) {
        stream.error = "torn done marker";
        return;
      }
      if (stream.has_outstanding || sent != stream.received) {
        stream.error = "done marker after " + std::to_string(sent) +
                       " chunks (parent consumed " +
                       std::to_string(stream.received) + ")";
        return;
      }
      stream.done_seen = true;
      continue;  // expect clean EOF next
    }
    if (magic != kChunkMagic) {
      stream.error = "bad message magic";
      return;
    }
    std::uint64_t index = 0;
    std::uint64_t count = 0;
    if (!ReadU64(stream.data_fd, &index) ||
        !ReadU64(stream.data_fd, &count)) {
      stream.error = "worker died mid-message (torn chunk header)";
      return;
    }
    if (!stream.has_outstanding || index != stream.outstanding ||
        index >= chunk_count) {
      stream.error = "chunk " + std::to_string(index) +
                     " does not match the outstanding grant" +
                     (stream.has_outstanding
                          ? " (" + std::to_string(stream.outstanding) + ")"
                          : " (none outstanding)");
      return;
    }
    std::vector<double> payload(static_cast<std::size_t>(count));
    const std::size_t want = payload.size() * sizeof(double);
    if (ReadAll(stream.data_fd, payload.data(), want) != want) {
      stream.error = "worker died mid-message (torn chunk payload, chunk " +
                     std::to_string(index) + ")";
      return;
    }
    try {
      obs::Span consume_span("shard.consume", index);
      consume(static_cast<std::size_t>(index), std::move(payload));
    } catch (const std::exception& error) {
      stream.error = std::string("consume failed: ") + error.what();
      return;
    }
    stream.has_outstanding = false;
    ++stream.received;
    if (options.on_chunk) {
      ShardChunkStats stats;
      stats.index = static_cast<std::size_t>(index);
      stats.shard = shard;
      stats.busy_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - stream.grant_time)
              .count());
      stats.grant_ns = stream.last_grant_ns;
      options.on_chunk(stats);
    }
  }
}

}  // namespace

void RunSharded(unsigned shard_count, std::size_t chunk_count,
                const ShardComputeFn& compute, const ShardConsumeFn& consume,
                const ShardOptions& options) {
  if (shard_count == 0) {
    throw std::invalid_argument("RunSharded: shard_count must be >= 1");
  }
  if (chunk_count == 0) return;

  GrantQueue queue;
  if (options.grant_order.empty()) {
    queue.order.reserve(chunk_count);
    for (std::size_t j = 0; j < chunk_count; ++j) queue.order.push_back(j);
  } else {
    if (options.grant_order.size() != chunk_count) {
      throw std::invalid_argument(
          "RunSharded: grant_order must cover every chunk exactly once");
    }
    std::vector<bool> seen(chunk_count, false);
    for (const std::size_t j : options.grant_order) {
      if (j >= chunk_count || seen[j]) {
        throw std::invalid_argument(
            "RunSharded: grant_order must be a permutation of the chunk "
            "indices");
      }
      seen[j] = true;
    }
    queue.order = options.grant_order;
  }

  // All pipes exist before the first fork so every worker can close every
  // descriptor that is not its own pair.
  std::vector<int> data_read(shard_count, -1);
  std::vector<int> data_write(shard_count, -1);
  std::vector<int> cmd_read(shard_count, -1);
  std::vector<int> cmd_write(shard_count, -1);
  auto close_all = [&](unsigned upto) {
    for (unsigned t = 0; t < upto; ++t) {
      close(data_read[t]);
      close(data_write[t]);
      close(cmd_read[t]);
      close(cmd_write[t]);
    }
  };
  for (unsigned s = 0; s < shard_count; ++s) {
    int data_fds[2];
    int cmd_fds[2];
    if (pipe(data_fds) != 0) {
      close_all(s);
      throw std::runtime_error("RunSharded: pipe() failed");
    }
    if (pipe(cmd_fds) != 0) {
      close(data_fds[0]);
      close(data_fds[1]);
      close_all(s);
      throw std::runtime_error("RunSharded: pipe() failed");
    }
    data_read[s] = data_fds[0];
    data_write[s] = data_fds[1];
    cmd_read[s] = cmd_fds[0];
    cmd_write[s] = cmd_fds[1];
  }

  // Grant writes must fail with EPIPE, not kill the process; workers
  // inherit the disposition (see ScopedIgnoreSigpipe).
  ScopedIgnoreSigpipe ignore_sigpipe;

  // Inherited stdio buffers would be replayed by a worker that crashes
  // through a buffered FILE*; flush everything before snapshotting.
  std::fflush(nullptr);

  std::vector<ShardStream> streams(shard_count);
  for (unsigned s = 0; s < shard_count; ++s) {
    const pid_t pid = fork();
    if (pid < 0) {
      close_all(shard_count);
      for (unsigned t = 0; t < s; ++t) {
        kill(streams[t].pid, SIGKILL);
        waitpid(streams[t].pid, nullptr, 0);
      }
      throw std::runtime_error("RunSharded: fork() failed");
    }
    if (pid == 0) {
      for (unsigned t = 0; t < shard_count; ++t) {
        close(data_read[t]);
        close(cmd_write[t]);
        if (t != s) {
          close(data_write[t]);
          close(cmd_read[t]);
        }
      }
      RunWorker(s, compute, data_write[s], cmd_read[s]);
    }
    streams[s].pid = pid;
    streams[s].data_fd = data_read[s];
    streams[s].cmd_fd = cmd_write[s];
  }
  for (unsigned s = 0; s < shard_count; ++s) {
    close(data_write[s]);
    close(cmd_read[s]);
  }

  // Prime every worker with its first grant, in shard order — a pure
  // function of (grant_order, shard count), so fault tests can pin which
  // chunk a worker computes first.  Later grants are earned on demand.
  for (unsigned s = 0; s < shard_count; ++s) {
    const std::uint64_t index = queue.Pop();
    if (!SendGrant(streams[s], index)) {
      streams[s].error = "worker died before its first grant";
    }
  }

  // One reader per worker: payloads are consumed as they arrive, in any
  // cross-shard order (they commute — disjoint target ranges), and each
  // reader serves its own worker's grant requests so no shard ever waits
  // on another shard's reader.
  std::vector<std::thread> readers;
  readers.reserve(shard_count);
  for (unsigned s = 0; s < shard_count; ++s) {
    if (!streams[s].error.empty()) continue;
    readers.emplace_back(
        [&streams, s, &queue, chunk_count, &consume, &options] {
          ReadShardStream(streams[s], s, queue, chunk_count, consume,
                          options);
        });
  }
  for (std::thread& reader : readers) reader.join();
  // Closing the command pipes unblocks any worker still waiting on a
  // grant after its reader bailed out (it reads EOF and exits).
  for (unsigned s = 0; s < shard_count; ++s) {
    close(cmd_write[s]);
    close(data_read[s]);
  }

  // Reap every worker, then report the first failure: a reader-detected
  // framing error wins over the exit status (it names the chunk), but a
  // clean stream from a crashed worker is still an error.
  std::string failure;
  for (unsigned s = 0; s < shard_count; ++s) {
    int status = 0;
    while (waitpid(streams[s].pid, &status, 0) < 0 && errno == EINTR) {
    }
    std::string exit_note;
    if (WIFSIGNALED(status)) {
      exit_note = "killed by signal " + std::to_string(WTERMSIG(status));
    } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
      exit_note = "exited with status " + std::to_string(WEXITSTATUS(status));
    }
    std::string shard_failure;
    if (!streams[s].error.empty()) {
      shard_failure = streams[s].error;
      if (!exit_note.empty()) shard_failure += "; " + exit_note;
    } else if (!exit_note.empty() || !streams[s].done_seen) {
      shard_failure = exit_note.empty() ? "incomplete stream" : exit_note;
    }
    if (!shard_failure.empty() && failure.empty()) {
      failure = "shard " + std::to_string(s) + ": " + shard_failure;
    }
  }
  if (!failure.empty()) {
    throw std::runtime_error(
        "RunSharded: " + failure +
        " — results are incomplete, nothing was emitted for the affected "
        "cells (re-run, or resume from the campaign store)");
  }
}

#endif  // _WIN32

}  // namespace fairchain::core
