#include "core/replication_block_workspace.hpp"

namespace fairchain::core {

ReplicationBlockWorkspace& ThreadLocalReplicationBlockWorkspace() {
  thread_local ReplicationBlockWorkspace workspace;
  return workspace;
}

}  // namespace fairchain::core
