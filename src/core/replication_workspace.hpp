// ReplicationWorkspace: the per-worker arena of the Monte Carlo hot path.
//
// One workspace owns everything a replication mutates — the game state
// (including its Fenwick stake sampler) and the wealth / population-metric
// scratch buffers — and is reused across replications, chunks, and cells.
// Binding to a cell's (initial stakes, withholding period) allocates; every
// subsequent replication of the same cell only Reset()s in place, so
// steady-state stepping performs ZERO heap allocations (pinned by
// bench/hotpath_bench.cpp's allocation counter).
//
// Threading: a workspace is NOT thread-safe; the execution backends give
// every worker its own via ThreadLocalReplicationWorkspace().  Results
// never depend on which workspace ran a replication — all randomness comes
// from the per-replication RNG stream, and Bind/Reset restore identical
// initial state.

#ifndef FAIRCHAIN_CORE_REPLICATION_WORKSPACE_HPP_
#define FAIRCHAIN_CORE_REPLICATION_WORKSPACE_HPP_

#include <cstdint>
#include <optional>
#include <vector>

#include "protocol/stake_state.hpp"

namespace fairchain::core {

/// Per-worker arena: game state + measurement buffers, reused across
/// replications.
class ReplicationWorkspace {
 public:
  ReplicationWorkspace() = default;

  ReplicationWorkspace(const ReplicationWorkspace&) = delete;
  ReplicationWorkspace& operator=(const ReplicationWorkspace&) = delete;

  /// Prepares the workspace for replications of a game with the given
  /// initial stakes and withholding period.  Rebinding with the parameters
  /// of the previous Bind is free (the state is merely Reset); a different
  /// configuration reconstructs the state (the only allocating path).
  /// Throws std::invalid_argument for invalid stakes (see StakeState).
  void Bind(const std::vector<double>& initial_stakes,
            std::uint64_t withhold_period);

  /// The bound game state; valid until the next Bind.  Callers Reset() it
  /// at every replication boundary.
  protocol::StakeState& state() { return *state_; }

  /// True once Bind has been called.
  bool bound() const { return state_.has_value(); }

  /// Wealth vector buffer for population-metric checkpoints.
  std::vector<double>* wealth_buffer() { return &wealth_; }

  /// Sort scratch for core::MeasurePopulation.
  std::vector<double>* population_scratch() { return &scratch_; }

 private:
  std::optional<protocol::StakeState> state_;
  std::uint64_t bound_withhold_ = 0;
  std::vector<double> wealth_;
  std::vector<double> scratch_;
};

/// This thread's workspace, default-constructed on first use.  The serial
/// backend, every thread-pool worker, and any external caller stepping
/// replications on its own thread share replications through this one
/// arena per thread.
ReplicationWorkspace& ThreadLocalReplicationWorkspace();

}  // namespace fairchain::core

#endif  // FAIRCHAIN_CORE_REPLICATION_WORKSPACE_HPP_
