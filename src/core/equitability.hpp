// Equitability (Fanti et al., FC 2019) — the variance-based fairness
// metric the paper contrasts with in Section 7.
//
// For a compounding PoS system, Fanti et al. call an incentive scheme
// "equitable" when the variance of a miner's final stake fraction stays
// proportional to its initial fraction's dispersion.  fairchain computes
// the empirical normalised variance
//
//     Eq(lambda) = Var[lambda] / (a (1 - a))
//
// (0 = perfectly concentrated, 1 = the variance of a single Bernoulli(a)
// draw — the worst one-shot case), which lets the two notions be compared
// on the same simulations: the paper's point is that expectational
// fairness + low equitability variance still does not imply robust
// (ε, δ)-fairness, and this module makes that observable.

#ifndef FAIRCHAIN_CORE_EQUITABILITY_HPP_
#define FAIRCHAIN_CORE_EQUITABILITY_HPP_

#include <vector>

namespace fairchain::core {

/// Equitability report for one protocol at one horizon.
struct EquitabilityReport {
  double initial_share = 0.0;       ///< a
  double lambda_variance = 0.0;     ///< Var[λ] across replications
  double normalised_variance = 0.0; ///< Var[λ] / (a (1 - a))
};

/// Computes the report from per-replication reward fractions.
/// Throws std::invalid_argument when `lambdas` is empty or a is not in
/// (0, 1).
EquitabilityReport ComputeEquitability(const std::vector<double>& lambdas,
                                       double a);

/// Analytic normalised variance of the ML-PoS limit Beta(a/w, (1-a)/w):
///   Var / (a(1-a)) = w / (1 + w)  — independent of a, the closed form of
/// Fanti et al.'s equitability for the Pólya-urn limit.
double MlPosLimitNormalisedVariance(double w);

}  // namespace fairchain::core

#endif  // FAIRCHAIN_CORE_EQUITABILITY_HPP_
