// Stochastic-approximation analysis of SL-PoS (Section 4.4, Theorem 4.9).
//
// The SL-PoS stake share Z_n of miner A evolves as
//   Z_{n+1} - Z_n = γ_{n+1} ( f(Z_n) + U_{n+1} ),   γ_{n+1} = w / (1+(n+1)w),
// with drift (Equation (2)):
//   f(z) = z / (2 (1 - z)) - z          for z <= 1/2,
//        = 1 - (1 - z) / (2 z) - z      otherwise.
// The zero set is {0, 1/2, 1}: the paper shows 1/2 is unstable and 0 / 1 are
// stable, so Z_n -> {0, 1} almost surely — the Matthew effect.
//
// This module exposes the drift, a generic zero finder with numeric
// stability classification, and a runnable SA process used to cross-check
// the SL-PoS simulation (the share process of SlPosModel and the SA
// recurrence must agree in distribution).

#ifndef FAIRCHAIN_CORE_STOCHASTIC_APPROXIMATION_HPP_
#define FAIRCHAIN_CORE_STOCHASTIC_APPROXIMATION_HPP_

#include <cstdint>
#include <functional>
#include <vector>

#include "support/rng.hpp"

namespace fairchain::core {

/// Two-miner SL-PoS drift f(z) of Equation (2).  Defined on [0, 1].
double SlPosDriftTwoMiner(double z);

/// Multi-miner drift field:  f_i(shares) = Pr[i wins | shares] - shares_i,
/// with the win probability from Lemma 6.1.  `shares` must be a probability
/// vector (positive entries allowed to be zero).
std::vector<double> SlPosDriftField(const std::vector<double>& shares);

/// A zero of a drift function with its stability classification.
struct DriftZero {
  double location;  ///< z with f(z) = 0
  bool stable;      ///< true when f(x)(x - z) < 0 on both sides near z
};

/// Finds the zeros of `f` on [0, 1] by sign-change scanning on a uniform
/// grid followed by bisection, plus explicit endpoint checks.  Stability is
/// classified by the sign of f just inside each neighbourhood.
std::vector<DriftZero> FindDriftZeros(const std::function<double(double)>& f,
                                      std::size_t grid = 4096,
                                      double tolerance = 1e-12);

/// The SL-PoS two-miner zero set {0, 1/2, 1} with stability flags —
/// computed numerically from the drift (not hard-coded), so tests can
/// verify Theorem 4.9's classification end to end.
std::vector<DriftZero> SlPosTwoMinerZeros();

/// A runnable stochastic-approximation recurrence (Definition 4.4) for
/// processes on [0, 1]:
///   Z_{n+1} = clamp( Z_n + γ_{n+1} (f(Z_n) + U_{n+1}) ).
/// The noise U is supplied by a callback so exact protocol noise (win
/// indicator minus win probability) can be injected.
class StochasticApproximationProcess {
 public:
  using Drift = std::function<double(double)>;
  /// Noise callback: given (z, drift(z), rng), returns U_{n+1}.
  using Noise = std::function<double(double, double, RngStream&)>;
  /// Step-size callback: given n (1-based), returns γ_n.
  using StepSize = std::function<double(std::uint64_t)>;

  /// Creates the process; z0 must lie in [0, 1].
  StochasticApproximationProcess(double z0, Drift drift, Noise noise,
                                 StepSize step_size);

  /// Advances one step and returns the new Z.
  double Step(RngStream& rng);

  /// Advances `n` steps and returns the final Z.
  double Run(RngStream& rng, std::uint64_t n);

  /// Current value Z_n.
  double value() const { return z_; }

  /// Number of completed steps.
  std::uint64_t steps() const { return steps_; }

 private:
  double z_;
  Drift drift_;
  Noise noise_;
  StepSize step_size_;
  std::uint64_t steps_ = 0;
};

/// The SL-PoS share process expressed directly as a stochastic
/// approximation: starts at share `a`, uses γ_n = w / (1 + n w), the
/// Equation (2) drift, and exact Bernoulli protocol noise.  Theorem 4.9's
/// statement "Z_n -> {0,1} a.s." is validated against this process in tests.
StochasticApproximationProcess MakeSlPosShareProcess(double a, double w);

}  // namespace fairchain::core

#endif  // FAIRCHAIN_CORE_STOCHASTIC_APPROXIMATION_HPP_
