// The paper's two fairness notions (Definitions 3.1 and 4.1).
//
//   * Expectational fairness:  E[λ_A] = a — the expected reward fraction of
//     a miner equals her initial resource share.
//   * Robust ((ε, δ)-) fairness:  Pr[(1-ε) a <= λ_A <= (1+ε) a] >= 1 - δ —
//     the realised reward fraction concentrates around a.
//
// FairnessSpec carries (ε, δ); the fair area and unfair probability are the
// quantities every figure in the evaluation section is built from.

#ifndef FAIRCHAIN_CORE_FAIRNESS_HPP_
#define FAIRCHAIN_CORE_FAIRNESS_HPP_

#include <cstddef>
#include <string>
#include <vector>

namespace fairchain::core {

/// Robust-fairness parameters (ε, δ).  The paper's default is ε = 0.1,
/// δ = 0.1: with probability >= 90 %, the return on investment lies within
/// ±10 % of proportional.
struct FairnessSpec {
  double epsilon = 0.1;
  double delta = 0.1;

  /// Validates 0 <= ε and 0 <= δ <= 1; throws std::invalid_argument.
  void Validate() const;

  /// Lower edge of the fair area for initial share `a`: (1 - ε) a.
  double FairLow(double a) const { return (1.0 - epsilon) * a; }

  /// Upper edge of the fair area for initial share `a`: (1 + ε) a.
  double FairHigh(double a) const { return (1.0 + epsilon) * a; }

  /// True when `lambda` lies inside the (closed) fair area around `a`.
  bool InFairArea(double lambda, double a) const {
    return lambda >= FairLow(a) && lambda <= FairHigh(a);
  }
};

/// Empirical check of expectational fairness: given per-replication reward
/// fractions, is the sample mean within `z` standard errors of `a`?
struct ExpectationalFairnessReport {
  double target;         ///< a, the initial share
  double sample_mean;    ///< empirical E[λ]
  double std_error;      ///< standard error of the mean
  double z_score;        ///< (mean - a) / std_error (0 when SE == 0)
  bool consistent;       ///< |z| <= z_threshold
};

/// Builds an ExpectationalFairnessReport from sampled reward fractions.
ExpectationalFairnessReport CheckExpectationalFairness(
    const std::vector<double>& lambdas, double a, double z_threshold = 4.0);

/// Empirical unfair probability: fraction of λ samples outside the fair
/// area around `a` (the paper's Figure 3 / Figure 5 metric).
double UnfairProbability(const std::vector<double>& lambdas, double a,
                         const FairnessSpec& spec);

/// True when the empirical unfair probability satisfies (ε, δ)-fairness.
bool SatisfiesRobustFairness(const std::vector<double>& lambdas, double a,
                             const FairnessSpec& spec);

}  // namespace fairchain::core

#endif  // FAIRCHAIN_CORE_FAIRNESS_HPP_
