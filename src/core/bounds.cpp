#include "core/bounds.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "math/special.hpp"

namespace fairchain::core {

namespace {

void ValidateShare(double a, const char* fn) {
  if (!(a > 0.0) || !(a < 1.0)) {
    throw std::invalid_argument(std::string(fn) + ": a must be in (0, 1)");
  }
}

void ValidateEpsilon(double epsilon, const char* fn) {
  if (epsilon < 0.0) {
    throw std::invalid_argument(std::string(fn) + ": epsilon must be >= 0");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// PoW
// ---------------------------------------------------------------------------

double PowUnfairUpperBound(std::uint64_t n, double a, double epsilon) {
  ValidateShare(a, "PowUnfairUpperBound");
  ValidateEpsilon(epsilon, "PowUnfairUpperBound");
  const double nd = static_cast<double>(n);
  const double bound = 2.0 * std::exp(-2.0 * nd * a * a * epsilon * epsilon);
  return bound > 1.0 ? 1.0 : bound;
}

double PowSufficientBlocks(double a, const FairnessSpec& spec) {
  ValidateShare(a, "PowSufficientBlocks");
  spec.Validate();
  if (spec.epsilon == 0.0 || spec.delta == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::log(2.0 / spec.delta) /
         (2.0 * a * a * spec.epsilon * spec.epsilon);
}

bool PowSatisfiesBound(std::uint64_t n, double a, const FairnessSpec& spec) {
  return static_cast<double>(n) >= PowSufficientBlocks(a, spec);
}

double PowExactFairProbability(std::uint64_t n, double a, double epsilon) {
  return math::PowDeltaExact(n, a, epsilon);
}

// ---------------------------------------------------------------------------
// ML-PoS
// ---------------------------------------------------------------------------

double MlPosUnfairUpperBound(std::uint64_t n, double w, double a,
                             double epsilon) {
  ValidateShare(a, "MlPosUnfairUpperBound");
  ValidateEpsilon(epsilon, "MlPosUnfairUpperBound");
  if (!(w > 0.0)) {
    throw std::invalid_argument("MlPosUnfairUpperBound: w must be > 0");
  }
  const double nd = static_cast<double>(n);
  // From the proof of Theorem 4.3 with gamma = n w a eps:
  //   Pr <= 2 exp(-2 gamma^2 / (w^2 (1 + n w) n)) = 2 exp(-2 n a^2 e^2/(1+nw))
  const double bound =
      2.0 * std::exp(-2.0 * nd * a * a * epsilon * epsilon / (1.0 + nd * w));
  return bound > 1.0 ? 1.0 : bound;
}

double AzumaConditionRhs(double a, const FairnessSpec& spec) {
  ValidateShare(a, "AzumaConditionRhs");
  spec.Validate();
  if (spec.delta == 0.0) return 0.0;
  return 2.0 * a * a * spec.epsilon * spec.epsilon /
         std::log(2.0 / spec.delta);
}

bool MlPosSatisfiesBound(std::uint64_t n, double w, double a,
                         const FairnessSpec& spec) {
  if (n == 0) throw std::invalid_argument("MlPosSatisfiesBound: n must be >0");
  return 1.0 / static_cast<double>(n) + w <= AzumaConditionRhs(a, spec);
}

double MlPosMaxRewardForFairness(double a, const FairnessSpec& spec) {
  return AzumaConditionRhs(a, spec);
}

BetaParams MlPosLimitDistribution(double a, double w) {
  ValidateShare(a, "MlPosLimitDistribution");
  if (!(w > 0.0)) {
    throw std::invalid_argument("MlPosLimitDistribution: w must be > 0");
  }
  return BetaParams{a / w, (1.0 - a) / w};
}

double MlPosLimitUnfairProbability(double a, double w, double epsilon) {
  const BetaParams params = MlPosLimitDistribution(a, w);
  ValidateEpsilon(epsilon, "MlPosLimitUnfairProbability");
  const double hi = math::BetaCdf(params.alpha, params.beta,
                                  (1.0 + epsilon) * a);
  const double lo = math::BetaCdf(params.alpha, params.beta,
                                  (1.0 - epsilon) * a);
  return 1.0 - (hi - lo);
}

bool MlPosLimitSatisfies(double a, double w, const FairnessSpec& spec) {
  spec.Validate();
  return MlPosLimitUnfairProbability(a, w, spec.epsilon) <= spec.delta;
}

// ---------------------------------------------------------------------------
// C-PoS
// ---------------------------------------------------------------------------

double CPosConditionLhs(std::uint64_t n, double w, double v, std::uint32_t P) {
  if (n == 0) throw std::invalid_argument("CPosConditionLhs: n must be > 0");
  if (!(w > 0.0)) {
    throw std::invalid_argument("CPosConditionLhs: w must be > 0");
  }
  if (v < 0.0) throw std::invalid_argument("CPosConditionLhs: v must be >= 0");
  if (P == 0) throw std::invalid_argument("CPosConditionLhs: P must be >= 1");
  const double nd = static_cast<double>(n);
  const double total = w + v;
  return w * w * (1.0 / nd + total) /
         (total * total * static_cast<double>(P));
}

double CPosUnfairUpperBound(std::uint64_t n, double w, double v,
                            std::uint32_t P, double a, double epsilon) {
  ValidateShare(a, "CPosUnfairUpperBound");
  ValidateEpsilon(epsilon, "CPosUnfairUpperBound");
  const double lhs = CPosConditionLhs(n, w, v, P);
  // Pr <= 2 exp(-2 a^2 eps^2 / lhs)  (rearranged Theorem 4.10 tail).
  const double bound = 2.0 * std::exp(-2.0 * a * a * epsilon * epsilon / lhs);
  return bound > 1.0 ? 1.0 : bound;
}

bool CPosSatisfiesBound(std::uint64_t n, double w, double v, std::uint32_t P,
                        double a, const FairnessSpec& spec) {
  return CPosConditionLhs(n, w, v, P) <= AzumaConditionRhs(a, spec);
}

double CPosMinInflationForFairness(double w, std::uint32_t P, double a,
                                   const FairnessSpec& spec) {
  ValidateShare(a, "CPosMinInflationForFairness");
  spec.Validate();
  const double rhs = AzumaConditionRhs(a, spec);
  if (rhs <= 0.0) return std::numeric_limits<double>::infinity();
  // Asymptotic (n -> infinity) LHS:  w^2 (w + v) / ((w + v)^2 P)
  //                                = w^2 / ((w + v) P).
  auto lhs_infinite = [w, P](double v) {
    return w * w / ((w + v) * static_cast<double>(P));
  };
  if (lhs_infinite(0.0) <= rhs) return 0.0;
  // lhs is strictly decreasing in v; solve lhs(v) = rhs in closed form:
  //   w^2 / ((w + v) P) = rhs  =>  v = w^2 / (rhs P) - w.
  return w * w / (rhs * static_cast<double>(P)) - w;
}

}  // namespace fairchain::core
