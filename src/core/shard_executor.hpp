// Process-sharded chunk execution: fork N worker processes, stream results
// back over pipes.
//
// RunSharded is the transport under the ShardBackend.  The caller brings a
// flat list of `chunk_count` independent chunks (in the campaign runner:
// one (cell, replication-range) pair each).  Chunks are distributed
// round-robin by index — worker s computes chunks {s, s+N, s+2N, ...} in
// ascending order — which is a pure function of (chunk index, shard
// count), never of timing, so the partition is reproducible.
//
// Per the execution-backend contract (core/execution_backend.hpp), every
// chunk's payload is pre-addressed: `compute(j)` returns the chunk's
// doubles and `consume(j, payload)` scatters them into the caller's
// result matrices.  Because payloads commute (disjoint target ranges),
// the parent may consume them in ANY arrival order; deterministic output
// is the caller's reduction/emission cursor, exactly as with the
// in-process backends.
//
// Wire protocol (one pipe per worker, host byte order — the workers are
// forks of this very process, never remote):
//   chunk message:  [kChunkMagic u64][chunk index u64][count u64]
//                   [count doubles]
//   error message:  [kErrorMagic u64][length u64][length bytes of what()]
//   done message:   [kDoneMagic u64][chunks streamed u64]
//   span message:   [kSpanMagic u64][length u64][length bytes of
//                   obs::TraceCollector::DrainSerializedSpans payload]
// Workers send their chunks strictly in their assigned ascending order,
// then exactly one done message, then _exit(0).  When tracing is enabled
// a worker also flushes its recorded spans as span messages — after each
// complete chunk message and once more before the done marker — which the
// parent imports into the process-wide obs::TraceCollector tagged with
// the worker's shard index; one exported trace therefore shows the whole
// process tree.  The parent runs one reader thread per worker and
// validates the full framing: magic, chunk ownership and order, payload
// length, span payload well-formedness, the done count, and the worker's
// exit status.  ANY deviation — a worker SIGKILLed mid-message, a torn
// payload, an early EOF, a nonzero exit — makes RunSharded throw after
// draining every worker; it never returns partial results silently.
//
// Fault-injection sites (support/fault_injection.hpp): a worker passes
// shard-message after each header and shard-chunk after each complete
// chunk message, so crash tests can sever the stream at either boundary.

#ifndef FAIRCHAIN_CORE_SHARD_EXECUTOR_HPP_
#define FAIRCHAIN_CORE_SHARD_EXECUTOR_HPP_

#include <cstddef>
#include <functional>
#include <vector>

namespace fairchain::core {

/// Computes one chunk's payload.  Runs inside a forked worker process (on
/// a copy-on-write snapshot of the parent taken at the RunSharded call),
/// single-threaded.  Exceptions are marshalled back and rethrown by the
/// parent.
using ShardComputeFn = std::function<std::vector<double>(std::size_t)>;

/// Consumes one chunk's payload in the parent.  Called from per-worker
/// reader threads — concurrently across shards — so it must be
/// thread-safe; chunks of one shard arrive in their assigned order.
/// Exceptions abort the run and are rethrown by the parent.
using ShardConsumeFn =
    std::function<void(std::size_t, std::vector<double>&&)>;

/// Executes chunks [0, chunk_count) across `shard_count` forked worker
/// processes and feeds every payload to `consume`.  Returns only when all
/// payloads are consumed, all workers are reaped, and the framing was
/// valid end to end; throws std::runtime_error otherwise (dead worker,
/// torn message, bad framing, worker-side exception).  POSIX only.
void RunSharded(unsigned shard_count, std::size_t chunk_count,
                const ShardComputeFn& compute, const ShardConsumeFn& consume);

}  // namespace fairchain::core

#endif  // FAIRCHAIN_CORE_SHARD_EXECUTOR_HPP_
