// Process-sharded chunk execution: fork N worker processes, stream results
// back over pipes.
//
// RunSharded is the transport under the ShardBackend.  The caller brings a
// flat list of `chunk_count` independent chunks (in the campaign runner:
// one (cell, replication-range) pair each).  Chunk ownership is
// DEMAND-DRIVEN: the parent holds one grant queue (the caller's
// `grant_order`, default ascending index) and hands out one chunk per
// worker at a time — each worker is primed with one grant at fork, and
// earns its next grant by finishing the previous chunk.  A worker that
// drains cheap chunks therefore immediately absorbs the queue's expensive
// tail instead of idling behind a static j%N partition.  WHICH worker
// computes a chunk is timing-dependent; WHAT every chunk computes and
// where its payload lands never is, so output stays byte-identical to the
// serial backend at any shard count (the campaign determinism contract).
//
// Per the execution-backend contract (core/execution_backend.hpp), every
// chunk's payload is pre-addressed: `compute(j)` returns the chunk's
// doubles and `consume(j, payload)` scatters them into the caller's
// result matrices.  Because payloads commute (disjoint target ranges),
// the parent may consume them in ANY arrival order; deterministic output
// is the caller's reduction/emission cursor, exactly as with the
// in-process backends.
//
// Wire protocol (host byte order — the workers are forks of this very
// process, never remote).  Each worker has TWO pipes: a data pipe
// (worker -> parent) and a command pipe (parent -> worker).
//
// Worker -> parent, on the data pipe:
//   chunk message:   [kChunkMagic u64][chunk index u64][count u64]
//                    [count doubles]
//   request message: [kRequestMagic u64][chunks sent so far u64]
//   error message:   [kErrorMagic u64][length u64][length bytes of what()]
//   done message:    [kDoneMagic u64][chunks streamed u64]
//   span message:    [kSpanMagic u64][length u64][length bytes of
//                    obs::TraceCollector::DrainSerializedSpans payload]
// Parent -> worker, on the command pipe:
//   grant message:   [kGrantMagic u64][chunk index u64]
//                    (index kNoMoreWork = drain: send the done message
//                    and exit)
//
// A worker's life is a strict alternation: read grant, compute the chunk,
// stream its chunk message, flush spans, send a request, repeat — so the
// parent sees request k only after chunk k is fully on the wire, and at
// most ONE chunk per worker is ever in flight.  The parent runs one
// reader thread per worker which validates the full framing — magic,
// grant/request sequencing, that a chunk message matches the worker's
// outstanding grant, payload length, span payload well-formedness, the
// done count, and the worker's exit status.
//
// Failure semantics: when a worker dies, the chunks it was granted but
// never delivered are NOT re-granted, and the surviving workers keep
// draining the remaining queue to completion — then RunSharded throws,
// naming the dead shard.  Nothing is emitted for cells missing a chunk,
// but every cell whose chunks all arrived has been consumed (and, in the
// campaign runner, committed to the store), so a resumed run recomputes
// only the affected cells.  It never returns partial results silently.
//
// Fault-injection sites (support/fault_injection.hpp): a worker passes
// shard-message after each chunk header and shard-chunk after each
// complete chunk message (before requesting its next grant), so crash
// tests can sever the stream at either boundary and stall tests can force
// worst-case grant interleavings.

#ifndef FAIRCHAIN_CORE_SHARD_EXECUTOR_HPP_
#define FAIRCHAIN_CORE_SHARD_EXECUTOR_HPP_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace fairchain::core {

/// Computes one chunk's payload.  Runs inside a forked worker process (on
/// a copy-on-write snapshot of the parent taken at the RunSharded call),
/// single-threaded.  Exceptions are marshalled back and rethrown by the
/// parent.
using ShardComputeFn = std::function<std::vector<double>(std::size_t)>;

/// Consumes one chunk's payload in the parent.  Called from per-worker
/// reader threads — concurrently across shards — so it must be
/// thread-safe.  Exceptions abort the run and are rethrown by the parent.
using ShardConsumeFn =
    std::function<void(std::size_t, std::vector<double>&&)>;

/// Parent-side observation of one consumed chunk, for scheduler metrics.
struct ShardChunkStats {
  std::size_t index = 0;       ///< chunk index
  unsigned shard = 0;          ///< worker that computed it
  std::uint64_t busy_ns = 0;   ///< grant written -> payload fully consumed
  std::uint64_t grant_ns = 0;  ///< request read -> grant written (0 for
                               ///< the primed first grant)
};

/// Scheduling knobs for RunSharded.  Defaults reproduce plain ascending
/// grant order with no observation.
struct ShardOptions {
  /// Order chunks are granted in; must be a permutation of
  /// [0, chunk_count).  Empty = ascending index.  The campaign runner
  /// passes longest-processing-time order (descending modeled cost) so
  /// the expensive chunks start first and the cheap tail levels the
  /// finish.
  std::vector<std::size_t> grant_order;
  /// Called from the reader threads (concurrently across shards) after
  /// each chunk is consumed.  Null = no observation.
  std::function<void(const ShardChunkStats&)> on_chunk;
};

/// Executes chunks [0, chunk_count) across `shard_count` forked worker
/// processes via the demand-driven grant protocol and feeds every payload
/// to `consume`.  Returns only when all payloads are consumed, all
/// workers are reaped, and the framing was valid end to end; throws
/// std::runtime_error otherwise (dead worker, torn message, bad framing,
/// worker-side exception) — after the surviving workers have drained
/// every still-grantable chunk.  POSIX only.
void RunSharded(unsigned shard_count, std::size_t chunk_count,
                const ShardComputeFn& compute, const ShardConsumeFn& consume,
                const ShardOptions& options = {});

}  // namespace fairchain::core

#endif  // FAIRCHAIN_CORE_SHARD_EXECUTOR_HPP_
