#include "core/equitability.hpp"

#include <stdexcept>

#include "support/stats.hpp"

namespace fairchain::core {

EquitabilityReport ComputeEquitability(const std::vector<double>& lambdas,
                                       double a) {
  if (lambdas.empty()) {
    throw std::invalid_argument("ComputeEquitability: empty sample");
  }
  if (!(a > 0.0) || !(a < 1.0)) {
    throw std::invalid_argument("ComputeEquitability: a must be in (0, 1)");
  }
  RunningStats stats;
  for (const double lambda : lambdas) stats.Add(lambda);
  EquitabilityReport report;
  report.initial_share = a;
  report.lambda_variance = stats.Variance();
  report.normalised_variance = stats.Variance() / (a * (1.0 - a));
  return report;
}

double MlPosLimitNormalisedVariance(double w) {
  if (!(w > 0.0)) {
    throw std::invalid_argument(
        "MlPosLimitNormalisedVariance: w must be > 0");
  }
  // Beta(a/w, (1-a)/w): Var = a(1-a) / (1/w + 1)  =>  Var/(a(1-a)) =
  // w / (1 + w).
  return w / (1.0 + w);
}

}  // namespace fairchain::core
