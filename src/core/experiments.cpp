#include "core/experiments.hpp"

#include <stdexcept>

#include "protocol/c_pos.hpp"
#include "protocol/ml_pos.hpp"
#include "protocol/pow.hpp"
#include "protocol/sl_pos.hpp"

namespace fairchain::core::experiments {

FairnessSpec DefaultSpec() { return FairnessSpec{0.1, 0.1}; }

std::vector<std::unique_ptr<protocol::IncentiveModel>> MakeStandardProtocols(
    double w, double v, std::uint32_t shards) {
  std::vector<std::unique_ptr<protocol::IncentiveModel>> models;
  models.push_back(std::make_unique<protocol::PowModel>(w));
  models.push_back(std::make_unique<protocol::MlPosModel>(w));
  models.push_back(std::make_unique<protocol::SlPosModel>(w));
  models.push_back(std::make_unique<protocol::CPosModel>(w, v, shards));
  return models;
}

std::vector<double> WhaleStakes(std::size_t miners, double a) {
  if (miners < 2) {
    throw std::invalid_argument("WhaleStakes: at least two miners required");
  }
  if (!(a > 0.0) || !(a < 1.0)) {
    throw std::invalid_argument("WhaleStakes: a must be in (0, 1)");
  }
  std::vector<double> stakes(miners,
                             (1.0 - a) / static_cast<double>(miners - 1));
  stakes[0] = a;
  return stakes;
}

MultiMinerOutcome RunMultiMinerGame(const protocol::IncentiveModel& model,
                                    std::size_t miners, double a,
                                    const SimulationConfig& config,
                                    const FairnessSpec& spec) {
  MonteCarloEngine engine(config, spec);
  const SimulationResult result =
      engine.Run(model, WhaleStakes(miners, a));
  MultiMinerOutcome outcome;
  outcome.protocol = model.name();
  outcome.miners = miners;
  outcome.avg_lambda = result.Final().mean;
  outcome.unfair_probability = result.Final().unfair_probability;
  outcome.convergence_step = result.ConvergenceStep();
  return outcome;
}

std::string FormatConvergence(const std::optional<std::uint64_t>& step) {
  return step ? std::to_string(*step) : std::string("Never");
}

}  // namespace fairchain::core::experiments
