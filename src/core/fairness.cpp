#include "core/fairness.hpp"

#include <cmath>
#include <stdexcept>

#include "support/stats.hpp"

namespace fairchain::core {

void FairnessSpec::Validate() const {
  if (epsilon < 0.0) {
    throw std::invalid_argument("FairnessSpec: epsilon must be >= 0");
  }
  if (delta < 0.0 || delta > 1.0) {
    throw std::invalid_argument("FairnessSpec: delta must be in [0, 1]");
  }
}

ExpectationalFairnessReport CheckExpectationalFairness(
    const std::vector<double>& lambdas, double a, double z_threshold) {
  if (lambdas.empty()) {
    throw std::invalid_argument("CheckExpectationalFairness: empty sample");
  }
  RunningStats stats;
  for (const double lambda : lambdas) stats.Add(lambda);
  ExpectationalFairnessReport report;
  report.target = a;
  report.sample_mean = stats.Mean();
  report.std_error = stats.StdError();
  report.z_score = report.std_error > 0.0
                       ? (report.sample_mean - a) / report.std_error
                       : 0.0;
  report.consistent = std::fabs(report.z_score) <= z_threshold;
  return report;
}

double UnfairProbability(const std::vector<double>& lambdas, double a,
                         const FairnessSpec& spec) {
  spec.Validate();
  return FractionOutside(lambdas, spec.FairLow(a), spec.FairHigh(a));
}

bool SatisfiesRobustFairness(const std::vector<double>& lambdas, double a,
                             const FairnessSpec& spec) {
  return UnfairProbability(lambdas, a, spec) <= spec.delta;
}

}  // namespace fairchain::core
