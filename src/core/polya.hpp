// The (classical) Pólya urn underlying ML-PoS (Section 4.3).
//
// ML-PoS with initial stakes (S_0, ..., S_{m-1}) and block reward w is
// exactly a Pólya urn: each draw picks color i with probability
// proportional to its current mass and adds w to that color.  For two
// colors, the fraction of draws won by color 0 converges almost surely to
// Beta(S_0 / w, S_1 / w)  [Mahmoud 2008, Thm 3.2], which the paper uses to
// characterise ML-PoS's limiting reward distribution.
//
// This class exists both as an analysis tool (limit parameters, exact
// fairness probabilities) and as an independently tested model that the
// ML-PoS implementation is cross-validated against.

#ifndef FAIRCHAIN_CORE_POLYA_HPP_
#define FAIRCHAIN_CORE_POLYA_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/bounds.hpp"
#include "support/rng.hpp"

namespace fairchain::core {

/// A Pólya urn with real-valued masses and constant reinforcement.
class PolyaUrn {
 public:
  /// Creates an urn.  Throws std::invalid_argument when `initial` is empty,
  /// has negative entries, sums to zero, or `reinforcement` <= 0.
  PolyaUrn(std::vector<double> initial, double reinforcement);

  /// Draws one color (probability proportional to mass), reinforces it,
  /// and returns its index.
  std::size_t Draw(RngStream& rng);

  /// Runs `n` draws; returns the number of times color `color` was drawn.
  std::uint64_t Run(RngStream& rng, std::uint64_t n, std::size_t color);

  /// Current mass of color `i`.
  double mass(std::size_t i) const { return mass_[i]; }

  /// Current total mass.
  double total_mass() const { return total_; }

  /// Current share of color `i`.
  double Share(std::size_t i) const { return mass_[i] / total_; }

  /// Number of colors.
  std::size_t colors() const { return mass_.size(); }

  /// Number of draws performed.
  std::uint64_t draws() const { return draws_; }

  /// Restores the initial composition.
  void Reset();

  /// Limit law of color 0's share for a TWO-color urn:
  /// Beta(s0 / w, s1 / w).
  static BetaParams TwoColorLimit(double s0, double s1, double w);

 private:
  std::vector<double> initial_;
  std::vector<double> mass_;
  double total_ = 0.0;
  double reinforcement_;
  std::uint64_t draws_ = 0;
};

}  // namespace fairchain::core

#endif  // FAIRCHAIN_CORE_POLYA_HPP_
