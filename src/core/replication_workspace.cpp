#include "core/replication_workspace.hpp"

namespace fairchain::core {

void ReplicationWorkspace::Bind(const std::vector<double>& initial_stakes,
                                std::uint64_t withhold_period) {
  if (state_.has_value() && bound_withhold_ == withhold_period &&
      state_->miner_count() == initial_stakes.size()) {
    bool same = true;
    for (std::size_t i = 0; i < initial_stakes.size(); ++i) {
      if (state_->initial_stake(i) != initial_stakes[i]) {
        same = false;
        break;
      }
    }
    // Same cell configuration: keep every buffer (state vectors, sampler
    // tree, scratch) exactly as allocated.  The caller Resets per
    // replication, so no further normalisation is needed here.
    if (same) return;
  }
  state_.emplace(initial_stakes, withhold_period);
  bound_withhold_ = withhold_period;
}

ReplicationWorkspace& ThreadLocalReplicationWorkspace() {
  thread_local ReplicationWorkspace workspace;
  return workspace;
}

}  // namespace fairchain::core
