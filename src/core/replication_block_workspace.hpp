// ReplicationBlockWorkspace: the per-worker arena of the VECTORIZED
// Monte Carlo hot path.
//
// Where ReplicationWorkspace steps one replication at a time, this arena
// advances a lane block of up to kReplicationLaneWidth replications of the
// same campaign cell in lockstep: one structure-of-arrays LaneStakeState
// (per-lane income columns over a shared frozen stake tree) driven by one
// counter-based PhiloxLanes generator.  Replication r is always lane r of
// the Philox keystream — never "lane l of block b" — so the block
// partition, the chunk boundaries, and the backend are all invisible in
// the output, exactly like thread chunking in the scalar engine.
//
// The arena is reused across lane blocks, chunks, and cells: LaneStakeState
// and PhiloxLanes both recycle their buffers on Reset, so steady-state
// stepping performs ZERO heap allocations (pinned by
// bench/hotpath_bench.cpp's allocation counter).
//
// Threading: NOT thread-safe; every worker gets its own via
// ThreadLocalReplicationBlockWorkspace().

#ifndef FAIRCHAIN_CORE_REPLICATION_BLOCK_WORKSPACE_HPP_
#define FAIRCHAIN_CORE_REPLICATION_BLOCK_WORKSPACE_HPP_

#include <cstddef>
#include <vector>

#include "protocol/lane_state.hpp"
#include "support/philox.hpp"

namespace fairchain::core {

/// Lane-block width of the vectorized stepping path.  16 lanes fill two
/// AVX-512 / four AVX2 double vectors per column sweep while the lockstep
/// descent state (16 indices + 16 residuals) still fits comfortably in
/// registers and L1.  Campaign output does NOT depend on this value (lane
/// r's stream is derived from r alone); it only tunes throughput.
inline constexpr std::size_t kReplicationLaneWidth = 16;

/// Per-worker arena: lane-block game state + Philox lane generator +
/// measurement buffers, reused across lane blocks.
class ReplicationBlockWorkspace {
 public:
  ReplicationBlockWorkspace() = default;

  ReplicationBlockWorkspace(const ReplicationBlockWorkspace&) = delete;
  ReplicationBlockWorkspace& operator=(const ReplicationBlockWorkspace&) =
      delete;

  /// The lane-block state; Reset() it at every lane-block boundary.
  protocol::LaneStakeState& block() { return block_; }

  /// The lane generator; Reset(seed, first_lane, width) per lane block.
  PhiloxLanes& rng() { return rng_; }

  /// Wealth vector buffer for population-metric checkpoints.
  std::vector<double>* wealth_buffer() { return &wealth_; }

  /// Sort scratch for core::MeasurePopulation.
  std::vector<double>* population_scratch() { return &scratch_; }

 private:
  protocol::LaneStakeState block_;
  PhiloxLanes rng_;
  std::vector<double> wealth_;
  std::vector<double> scratch_;
};

/// This thread's block workspace, default-constructed on first use — the
/// vectorized twin of ThreadLocalReplicationWorkspace().
ReplicationBlockWorkspace& ThreadLocalReplicationBlockWorkspace();

}  // namespace fairchain::core

#endif  // FAIRCHAIN_CORE_REPLICATION_BLOCK_WORKSPACE_HPP_
