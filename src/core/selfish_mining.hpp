// Selfish mining (Eyal & Sirer 2014) — the incentive attack the paper
// flags as future work ("we aim to take into account malicious attacks on
// incentives that can change reward distribution"; Sections 6.5, 8).
//
// A selfish pool with hash share alpha withholds found blocks and releases
// them strategically; gamma is the fraction of honest power that mines on
// the pool's branch during a tie.  The pool's long-run revenue share is
//
//            alpha (1-alpha)^2 (4 alpha + gamma (1 - 2 alpha)) - alpha^3
//   R = ---------------------------------------------------------------- ,
//                    1 - alpha (1 + (2 - alpha) alpha)
//
// which exceeds the fair share alpha once alpha > (1-gamma)/(3-2gamma).
// In fairchain's vocabulary: selfish mining breaks PoW's *expectational*
// fairness (E[lambda] != alpha), turning the honest-PoW column of the
// paper's Table into an attack-dependent quantity.
//
// This module provides the closed form, the profitability threshold, and
// an event-level simulator of the Eyal-Sirer state machine that the tests
// cross-validate against the formula.

#ifndef FAIRCHAIN_CORE_SELFISH_MINING_HPP_
#define FAIRCHAIN_CORE_SELFISH_MINING_HPP_

#include <cstdint>

#include "support/rng.hpp"

namespace fairchain::core {

/// Closed-form long-run revenue share of a selfish pool (Eyal-Sirer
/// equation (8)).  alpha in (0, 0.5], gamma in [0, 1].
///
/// Domain note (why the formula stops at 0.5 while the simulator accepts
/// any alpha in (0, 1)): the closed form is the stationary revenue of the
/// withholding state machine, whose lead is a random walk with drift
/// alpha - (1 - alpha).  For alpha > 0.5 the walk is transient — the pool
/// outpaces the honest chain forever, its revenue share tends to 1, and
/// equation (8)'s denominator changes sign, so evaluating it would return
/// a meaningless number.  SelfishMiningSimulator remains well defined
/// there (any finite horizon has a definite share approaching 1);
/// this function deliberately throws instead of extrapolating.
double SelfishMiningRevenue(double alpha, double gamma);

/// The profitability threshold: selfish mining beats honest mining when
/// alpha > (1 - gamma) / (3 - 2 gamma).
double SelfishMiningThreshold(double gamma);

/// Outcome of a simulated selfish-mining campaign.
struct SelfishMiningResult {
  std::uint64_t selfish_blocks = 0;  ///< pool blocks on the main chain
  std::uint64_t honest_blocks = 0;   ///< honest blocks on the main chain
  std::uint64_t orphaned_blocks = 0; ///< blocks displaced by either side

  /// The pool's share of main-chain blocks (its lambda).
  double RevenueShare() const {
    const std::uint64_t total = selfish_blocks + honest_blocks;
    return total == 0 ? 0.0
                      : static_cast<double>(selfish_blocks) /
                            static_cast<double>(total);
  }
};

/// Event-level simulator of the Eyal-Sirer state machine.
///
/// Accepts the full alpha in (0, 1): unlike the closed form (see
/// SelfishMiningRevenue's domain note) the state machine itself is well
/// defined for a majority pool — its finite-horizon revenue share simply
/// exceeds alpha and tends to 1.  Tests cross-validate the two on the
/// shared domain (0, 0.5] and pin the divergent behaviour above it.
class SelfishMiningSimulator {
 public:
  /// Creates a simulator; alpha in (0, 1), gamma in [0, 1].  NaN
  /// parameters are rejected like any other out-of-range value.
  SelfishMiningSimulator(double alpha, double gamma);

  /// Simulates `block_events` block discoveries and returns the outcome.
  /// The private lead is settled (published) at the end of the campaign.
  SelfishMiningResult Run(RngStream& rng, std::uint64_t block_events) const;

  double alpha() const { return alpha_; }
  double gamma() const { return gamma_; }

 private:
  double alpha_;
  double gamma_;
};

}  // namespace fairchain::core

#endif  // FAIRCHAIN_CORE_SELFISH_MINING_HPP_
