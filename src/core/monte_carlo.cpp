#include "core/monte_carlo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/stats.hpp"

namespace fairchain::core {

namespace {

// Per-checkpoint-segment spans multiply the span count by the checkpoint
// schedule length, so they hide behind an env gate on top of the trace
// flag.  Read once: this sits inside the replication loop.
bool TraceDetailEnabled() {
  static const bool enabled = std::getenv("FAIRCHAIN_TRACE_DETAIL") != nullptr;
  return enabled;
}

}  // namespace

void SimulationConfig::Validate() const {
  if (steps == 0) {
    throw std::invalid_argument("SimulationConfig: steps must be > 0");
  }
  if (replications == 0) {
    throw std::invalid_argument("SimulationConfig: replications must be > 0");
  }
  std::uint64_t previous = 0;
  for (const std::uint64_t cp : checkpoints) {
    if (cp == 0 || cp > steps) {
      throw std::invalid_argument(
          "SimulationConfig: checkpoints must lie in [1, steps]");
    }
    if (cp <= previous) {
      throw std::invalid_argument(
          "SimulationConfig: checkpoints must be strictly ascending");
    }
    previous = cp;
  }
}

const CheckpointStats& SimulationResult::Final() const {
  if (checkpoints.empty()) {
    throw std::logic_error("SimulationResult: no checkpoints recorded");
  }
  return checkpoints.back();
}

std::optional<std::uint64_t> SimulationResult::ConvergenceStep() const {
  std::optional<std::uint64_t> candidate;
  for (const auto& cp : checkpoints) {
    if (cp.unfair_probability <= spec.delta) {
      if (!candidate) candidate = cp.step;
    } else {
      candidate.reset();
    }
  }
  return candidate;
}

ExpectationalFairnessReport SimulationResult::Expectational() const {
  if (final_lambdas.empty()) {
    throw std::logic_error(
        "SimulationResult: final_lambdas were not retained — run with "
        "keep_final_lambdas on to evaluate expectational fairness");
  }
  return CheckExpectationalFairness(final_lambdas, initial_share);
}

MonteCarloEngine::MonteCarloEngine(SimulationConfig config, FairnessSpec spec)
    : config_(std::move(config)), spec_(spec) {
  config_.Validate();
  spec_.Validate();
  if (config_.checkpoints.empty()) {
    const std::size_t count =
        config_.steps < 120 ? static_cast<std::size_t>(config_.steps) : 120;
    config_.checkpoints = LinearCheckpoints(config_.steps, count);
  }
}

bool UsesVectorizedStepping(const protocol::IncentiveModel& model,
                            const SimulationConfig& config) {
  return config.stepping == SteppingMode::kVectorized &&
         model.SupportsLaneStepping() && !model.RewardCompounds();
}

std::size_t PopulationMatrixSize(const SimulationConfig& config) {
  return kPopulationMetricCount * config.checkpoints.size() *
         static_cast<std::size_t>(config.replications);
}

void RunReplicationBlockRange(const protocol::IncentiveModel& model,
                              const std::vector<double>& initial_stakes,
                              const SimulationConfig& config,
                              std::size_t begin, std::size_t end,
                              double* lambda_matrix,
                              double* population_matrix,
                              ReplicationBlockWorkspace& workspace) {
  if (config.miner >= initial_stakes.size()) {
    throw std::invalid_argument(
        "RunReplicationBlockRange: miner index out of range");
  }
  if (!model.SupportsLaneStepping() || model.RewardCompounds()) {
    throw std::invalid_argument(
        "RunReplicationBlockRange: " + model.name() +
        " has no static-stake lane kernel — route through "
        "RunReplicationRange, which falls back to scalar stepping");
  }
  config.Validate();
  static auto& block_range_ns = obs::MetricsRegistry::Global().GetHistogram(
      "mc.replication_block_range_ns");
  obs::ScopedLatency latency(block_range_ns);
  obs::Span range_span("mc.replication_block_range",
                       static_cast<std::uint64_t>(end - begin));
  const std::uint64_t reps = config.replications;
  const std::size_t cp_count = config.checkpoints.size();
  protocol::LaneStakeState& block = workspace.block();
  PhiloxLanes& rng = workspace.rng();
  std::vector<double>* wealth = workspace.wealth_buffer();
  std::vector<double>* scratch = workspace.population_scratch();
  for (std::size_t block_begin = begin; block_begin < end;
       block_begin += kReplicationLaneWidth) {
    const std::size_t width =
        std::min(kReplicationLaneWidth, end - block_begin);
    block.Reset(initial_stakes, width, /*compounding=*/false);
    rng.Reset(config.seed, /*first_lane=*/block_begin, width);
    std::uint64_t done = 0;
    for (std::size_t cp = 0; cp < cp_count; ++cp) {
      const std::uint64_t target = config.checkpoints[cp];
      model.RunLaneSteps(block, done, target - done, rng);
      done = target;
      for (std::size_t l = 0; l < width; ++l) {
        const std::size_t rep = block_begin + l;
        lambda_matrix[cp * reps + rep] =
            block.RewardFraction(l, config.miner);
        if (population_matrix != nullptr) {
          block.WealthVector(l, wealth);
          const PopulationSnapshot snapshot =
              MeasurePopulation(*wealth, scratch);
          const std::size_t cell = cp * reps + rep;
          const std::size_t plane = cp_count * reps;
          population_matrix[0 * plane + cell] = snapshot.gini;
          population_matrix[1 * plane + cell] = snapshot.hhi;
          population_matrix[2 * plane + cell] = snapshot.nakamoto;
          population_matrix[3 * plane + cell] = snapshot.top_decile_share;
        }
      }
    }
    // Same horizon contract as the scalar path: run the tail beyond the
    // last checkpoint so a full game is always played.
    if (done < config.steps) {
      model.RunLaneSteps(block, done, config.steps - done, rng);
    }
  }
}

void RunReplicationRange(const protocol::IncentiveModel& model,
                         const std::vector<double>& initial_stakes,
                         const SimulationConfig& config, std::size_t begin,
                         std::size_t end, double* lambda_matrix,
                         double* population_matrix,
                         ReplicationWorkspace& workspace) {
  if (config.miner >= initial_stakes.size()) {
    throw std::invalid_argument(
        "RunReplicationRange: miner index out of range");
  }
  // Same rationale as the miner check: this is a public entry point, and a
  // non-ascending checkpoint schedule would underflow the segment length
  // below into a ~2^64-step spin instead of degrading benignly.
  config.Validate();
  // Lane-batched dispatch: every backend's workers enter through this
  // function, so eligible cells pick up the vectorized path no matter who
  // runs them.  The block arena is per-thread (like the scalar one the
  // caller handed us); ineligible cells fall through to the scalar loop
  // below, byte-identical to a kScalar campaign.
  if (UsesVectorizedStepping(model, config)) {
    RunReplicationBlockRange(model, initial_stakes, config, begin, end,
                             lambda_matrix, population_matrix,
                             ThreadLocalReplicationBlockWorkspace());
    return;
  }
  static auto& range_ns =
      obs::MetricsRegistry::Global().GetHistogram("mc.replication_range_ns");
  obs::ScopedLatency latency(range_ns);
  obs::Span range_span("mc.replication_range",
                       static_cast<std::uint64_t>(end - begin));
  const bool trace_segments = obs::TraceEnabled() && TraceDetailEnabled();
  const std::uint64_t reps = config.replications;
  const std::size_t cp_count = config.checkpoints.size();
  const RngStream master(config.seed);
  workspace.Bind(initial_stakes, config.withhold_period);
  protocol::StakeState& state = workspace.state();
  std::vector<double>* wealth = workspace.wealth_buffer();
  std::vector<double>* scratch = workspace.population_scratch();
  for (std::size_t rep = begin; rep < end; ++rep) {
    state.Reset();
    RngStream rng = master.Split(rep);
    // Checkpoint-segment stepping: one batched RunSteps per segment, so
    // the per-step work is the protocol's tight inner loop and the
    // checkpoint comparison runs once per segment, not once per block.
    // Draw-for-draw identical to the historical Step-at-a-time loop.
    std::uint64_t done = 0;
    for (std::size_t cp = 0; cp < cp_count; ++cp) {
      const std::uint64_t target = config.checkpoints[cp];
      if (trace_segments) {
        obs::Span segment_span("mc.segment", target);
        model.RunSteps(state, done, target - done, rng);
      } else {
        model.RunSteps(state, done, target - done, rng);
      }
      done = target;
      lambda_matrix[cp * reps + rep] = state.RewardFraction(config.miner);
      if (population_matrix != nullptr) {
        state.WealthVector(wealth);
        const PopulationSnapshot snapshot =
            MeasurePopulation(*wealth, scratch);
        const std::size_t cell = cp * reps + rep;
        const std::size_t plane = cp_count * reps;
        population_matrix[0 * plane + cell] = snapshot.gini;
        population_matrix[1 * plane + cell] = snapshot.hhi;
        population_matrix[2 * plane + cell] = snapshot.nakamoto;
        population_matrix[3 * plane + cell] = snapshot.top_decile_share;
      }
    }
    // Games historically ran to the horizon even when the last checkpoint
    // fell short of it; the tail segment keeps that contract (and the
    // documented "runs a full game" semantics) intact.
    if (done < config.steps) {
      model.RunSteps(state, done, config.steps - done, rng);
    }
  }
}

void RunReplicationRange(const protocol::IncentiveModel& model,
                         const std::vector<double>& initial_stakes,
                         const SimulationConfig& config, std::size_t begin,
                         std::size_t end, double* lambda_matrix,
                         double* population_matrix) {
  RunReplicationRange(model, initial_stakes, config, begin, end,
                      lambda_matrix, population_matrix,
                      ThreadLocalReplicationWorkspace());
}

void RunReplicationRange(const protocol::IncentiveModel& model,
                         const std::vector<double>& initial_stakes,
                         const SimulationConfig& config, std::size_t begin,
                         std::size_t end, double* lambda_matrix) {
  RunReplicationRange(model, initial_stakes, config, begin, end,
                      lambda_matrix, nullptr);
}

SimulationResult ReduceToResult(const std::string& protocol_name,
                                const std::vector<double>& initial_stakes,
                                const SimulationConfig& config,
                                const FairnessSpec& spec,
                                const std::vector<double>& lambda_matrix,
                                const std::vector<double>& population_matrix) {
  if (config.miner >= initial_stakes.size()) {
    throw std::invalid_argument("ReduceToResult: miner index out of range");
  }
  if (!population_matrix.empty() &&
      population_matrix.size() != PopulationMatrixSize(config)) {
    throw std::invalid_argument(
        "ReduceToResult: population matrix size mismatch");
  }
  const std::uint64_t reps = config.replications;
  const std::size_t cp_count = config.checkpoints.size();

  SimulationResult result;
  result.protocol = protocol_name;
  {
    double total = 0.0;
    for (const double s : initial_stakes) total += s;
    result.initial_share = initial_stakes[config.miner] / total;
  }
  result.spec = spec;
  result.config = config;
  result.checkpoints.reserve(cp_count);

  const double fair_low = spec.FairLow(result.initial_share);
  const double fair_high = spec.FairHigh(result.initial_share);
  // Reduction scratch, hoisted out of the checkpoint loop: one column
  // buffer (sorted in place per checkpoint) and one quantile output vector
  // serve every checkpoint — the per-checkpoint copy Quantiles used to
  // make was the reduction's dominant allocation churn (see
  // bench/micro_perf.cpp, BM_ReduceToResult).
  std::vector<double> column(reps);
  std::vector<double> quantile_out;
  static const std::vector<double> kQuantiles = {0.05, 0.25, 0.5, 0.75,
                                                 0.95};
  for (std::size_t c = 0; c < cp_count; ++c) {
    std::copy_n(lambda_matrix.begin() + static_cast<std::ptrdiff_t>(c * reps),
                reps, column.begin());
    CheckpointStats stats;
    stats.step = config.checkpoints[c];
    RunningStats running;
    std::size_t outside = 0;
    for (const double lambda : column) {
      running.Add(lambda);
      if (lambda < fair_low || lambda > fair_high) ++outside;
    }
    stats.mean = running.Mean();
    stats.std_dev = running.StdDev();
    stats.min = running.Min();
    stats.max = running.Max();
    stats.unfair_probability =
        static_cast<double>(outside) / static_cast<double>(reps);
    // final_lambdas keeps replication order, so capture the last column
    // BEFORE the in-place quantile sort reorders it.
    if (c + 1 == cp_count && config.keep_final_lambdas) {
      result.final_lambdas = column;
    }
    QuantilesInPlace(column, kQuantiles, &quantile_out);
    stats.p05 = quantile_out[0];
    stats.p25 = quantile_out[1];
    stats.median = quantile_out[2];
    stats.p75 = quantile_out[3];
    stats.p95 = quantile_out[4];
    if (!population_matrix.empty()) {
      const std::size_t plane = cp_count * reps;
      double* means[] = {&stats.gini, &stats.hhi, &stats.nakamoto,
                         &stats.top_decile_share};
      for (std::size_t metric = 0; metric < kPopulationMetricCount;
           ++metric) {
        KahanSum sum;
        const double* base =
            population_matrix.data() + metric * plane + c * reps;
        for (std::uint64_t r = 0; r < reps; ++r) sum.Add(base[r]);
        *means[metric] = sum.Total() / static_cast<double>(reps);
      }
    }
    result.checkpoints.push_back(stats);
  }
  return result;
}

SimulationResult ReduceToResult(const std::string& protocol_name,
                                const std::vector<double>& initial_stakes,
                                const SimulationConfig& config,
                                const FairnessSpec& spec,
                                const std::vector<double>& lambda_matrix) {
  return ReduceToResult(protocol_name, initial_stakes, config, spec,
                        lambda_matrix, {});
}

SimulationResult MonteCarloEngine::Run(
    const protocol::IncentiveModel& model,
    const std::vector<double>& initial_stakes) const {
  return Run(model, initial_stakes, *MakeDefaultBackend(config_.threads));
}

SimulationResult MonteCarloEngine::Run(
    const protocol::IncentiveModel& model,
    const std::vector<double>& initial_stakes,
    const ExecutionBackend& backend) const {
  if (config_.miner >= initial_stakes.size()) {
    throw std::invalid_argument("MonteCarloEngine: miner index out of range");
  }
  // Fail fast on the calling thread: construct the game state once here so
  // invalid stake vectors (empty, negative, zero/NaN sum) throw before any
  // job is scheduled — backend jobs must not throw (execution_backend.hpp).
  {
    const protocol::StakeState probe(initial_stakes,
                                     config_.withhold_period);
    (void)probe;
  }
  const std::uint64_t reps = config_.replications;

  // lambda_matrix[c * reps + r] = λ of replication r at checkpoint c.
  std::vector<double> lambda_matrix(config_.checkpoints.size() * reps);
  std::vector<double> population_matrix(
      config_.population_metrics ? PopulationMatrixSize(config_) : 0);
  double* population =
      population_matrix.empty() ? nullptr : population_matrix.data();

  // One contiguous replication chunk per concurrency slot; each job steps
  // in its worker's thread-local arena.  Replication r derives its stream
  // from r alone, so the partition never shows in the output.
  const std::size_t count = static_cast<std::size_t>(reps);
  const std::size_t slots =
      std::max<std::size_t>(1, std::min<std::size_t>(backend.Concurrency(),
                                                     count));
  const std::size_t chunk = (count + slots - 1) / slots;
  std::vector<std::function<void()>> jobs;
  jobs.reserve(slots);
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(count, begin + chunk);
    jobs.push_back([&, begin, end] {
      RunReplicationRange(model, initial_stakes, config_, begin, end,
                          lambda_matrix.data(), population,
                          ThreadLocalReplicationWorkspace());
    });
  }
  backend.Execute(std::move(jobs));

  return ReduceToResult(model.name(), initial_stakes, config_, spec_,
                        lambda_matrix, population_matrix);
}

SimulationResult MonteCarloEngine::RunTwoMiner(
    const protocol::IncentiveModel& model, double a) const {
  if (!(a > 0.0) || !(a < 1.0)) {
    throw std::invalid_argument("RunTwoMiner: a must be in (0, 1)");
  }
  return Run(model, {a, 1.0 - a});
}

std::vector<std::uint64_t> LinearCheckpoints(std::uint64_t steps,
                                             std::size_t count) {
  if (steps == 0) {
    throw std::invalid_argument("LinearCheckpoints: steps must be > 0");
  }
  if (count == 0 || count > steps) count = static_cast<std::size_t>(steps);
  std::vector<std::uint64_t> checkpoints;
  checkpoints.reserve(count);
  for (std::size_t k = 1; k <= count; ++k) {
    // 128-bit intermediate: steps * k wraps std::uint64_t for horizons
    // beyond 2^64 / count, which silently produced non-monotone schedules.
    const std::uint64_t cp = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(steps) * k / count);
    if (checkpoints.empty() || cp > checkpoints.back()) {
      checkpoints.push_back(cp);
    }
  }
  return checkpoints;
}

std::vector<std::uint64_t> LogCheckpoints(std::uint64_t steps,
                                          std::size_t count,
                                          std::uint64_t first) {
  if (steps == 0 || first == 0 || first > steps) {
    throw std::invalid_argument("LogCheckpoints: need 0 < first <= steps");
  }
  if (count < 2) throw std::invalid_argument("LogCheckpoints: count >= 2");
  std::vector<std::uint64_t> checkpoints;
  const double log_first = std::log(static_cast<double>(first));
  const double log_last = std::log(static_cast<double>(steps));
  for (std::size_t k = 0; k < count; ++k) {
    const double t = static_cast<double>(k) / static_cast<double>(count - 1);
    const double value = std::exp(log_first + t * (log_last - log_first));
    // Clamp in the double domain BEFORE converting: exp/log rounding can
    // land above `steps` (breaking the strict-ascent invariant once `steps`
    // was appended), and for horizons beyond 2^63 llround would overflow
    // long long with an unspecified result.  value + 0.5 stays below 2^64
    // here, so the direct conversion is well-defined round-to-nearest.
    std::uint64_t cp;
    if (!(value < static_cast<double>(steps))) {
      cp = steps;
    } else {
      cp = std::min(steps, static_cast<std::uint64_t>(value + 0.5));
    }
    if (checkpoints.empty() || cp > checkpoints.back()) {
      checkpoints.push_back(cp);
    }
  }
  if (checkpoints.back() != steps) checkpoints.push_back(steps);
  return checkpoints;
}

}  // namespace fairchain::core
