// Shared experiment descriptors: the paper's default parameters and the
// campaign runners used by both the bench harness and the integration
// tests (so the tests assert on exactly the code paths the benches print).

#ifndef FAIRCHAIN_CORE_EXPERIMENTS_HPP_
#define FAIRCHAIN_CORE_EXPERIMENTS_HPP_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/monte_carlo.hpp"
#include "protocol/incentive_model.hpp"

namespace fairchain::core::experiments {

// Paper defaults (Sections 5.1 and 5.2).
inline constexpr double kDefaultA = 0.2;        ///< miner A's initial share
inline constexpr double kDefaultW = 0.01;       ///< block / proposer reward
inline constexpr double kDefaultV = 0.1;        ///< C-PoS inflation reward
inline constexpr std::uint32_t kDefaultShards = 32;  ///< Ethereum 2.0 P
inline constexpr std::uint64_t kDefaultSteps = 5000;  ///< Figure 2 horizon

/// The paper's default robust-fairness parameters: ε = 0.1, δ = 10 %.
FairnessSpec DefaultSpec();

/// The four protocols of the main evaluation (Figure 2 / Figure 3 / Table 1)
/// in paper order: PoW, ML-PoS, SL-PoS, C-PoS, at the given parameters.
std::vector<std::unique_ptr<protocol::IncentiveModel>> MakeStandardProtocols(
    double w = kDefaultW, double v = kDefaultV,
    std::uint32_t shards = kDefaultShards);

/// Table 1 stake vector: miner A holds share `a`; the remaining 1 - a is
/// split equally among `miners - 1` competitors.  Requires miners >= 2.
std::vector<double> WhaleStakes(std::size_t miners, double a);

/// One Table 1 cell group: the multi-miner outcome for a protocol.
struct MultiMinerOutcome {
  std::string protocol;
  std::size_t miners = 0;
  double avg_lambda = 0.0;
  double unfair_probability = 0.0;
  /// First step from which (ε,δ)-fairness holds; nullopt = "Never".
  std::optional<std::uint64_t> convergence_step;
};

/// Runs the Table 1 scenario for one protocol and miner count.
MultiMinerOutcome RunMultiMinerGame(const protocol::IncentiveModel& model,
                                    std::size_t miners, double a,
                                    const SimulationConfig& config,
                                    const FairnessSpec& spec);

/// Formats a convergence step as the paper does ("Never" when absent).
std::string FormatConvergence(const std::optional<std::uint64_t>& step);

}  // namespace fairchain::core::experiments

#endif  // FAIRCHAIN_CORE_EXPERIMENTS_HPP_
