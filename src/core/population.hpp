// Population-level wealth-concentration metrics.
//
// The paper's two-miner figures ask whether miner A's reward share drifts;
// at realistic population scale the interesting question is distributional:
// does the whole wealth distribution concentrate?  These are the standard
// summary statistics of that question (cf. arXiv:2207.11714 and
// arXiv:1910.09786):
//
//   * Gini coefficient      — 0 = perfect equality, -> 1 = one miner owns all;
//   * HHI                   — Herfindahl–Hirschman index, Σ share²; 1/m for a
//                             uniform population, 1 for a monopoly;
//   * Nakamoto coefficient  — smallest number of miners jointly controlling
//                             a strict majority (> 1/2) of wealth;
//   * top-decile share      — wealth fraction held by the richest ⌈m/10⌉
//                             miners.
//
// The Monte Carlo engine records these per replication at every checkpoint
// (over miner wealth = initial resource + cumulative credited income) and
// reduces them to per-checkpoint means alongside the λ statistics.

#ifndef FAIRCHAIN_CORE_POPULATION_HPP_
#define FAIRCHAIN_CORE_POPULATION_HPP_

#include <cstddef>
#include <vector>

namespace fairchain::core {

/// One replication's concentration metrics at one checkpoint.
struct PopulationSnapshot {
  double gini = 0.0;
  double hhi = 0.0;
  /// Nakamoto coefficient; kept as double so metric matrices and CSV
  /// columns stay homogeneous (it is always an integer value).
  double nakamoto = 0.0;
  double top_decile_share = 0.0;
};

/// Number of scalar metrics a PopulationSnapshot carries — the stride of
/// the engine's per-replication population matrices.
inline constexpr std::size_t kPopulationMetricCount = 4;

/// Number of miners in the "top decile" of a population of `miners`:
/// ⌈miners / 10⌉, never 0.
std::size_t TopDecileCount(std::size_t miners);

/// Measures `wealth` (all entries >= 0, positive total; one sort pass,
/// O(m log m)).  `scratch` is overwritten and may be reused across calls to
/// avoid per-call allocation.  Throws std::invalid_argument on an empty
/// vector, a negative entry, or a zero total.
PopulationSnapshot MeasurePopulation(const std::vector<double>& wealth,
                                     std::vector<double>* scratch);

}  // namespace fairchain::core

#endif  // FAIRCHAIN_CORE_POPULATION_HPP_
