#include "core/population.hpp"

#include <algorithm>
#include <stdexcept>

namespace fairchain::core {

std::size_t TopDecileCount(std::size_t miners) {
  return std::max<std::size_t>(1, (miners + 9) / 10);
}

PopulationSnapshot MeasurePopulation(const std::vector<double>& wealth,
                                     std::vector<double>* scratch) {
  if (wealth.empty()) {
    throw std::invalid_argument("MeasurePopulation: empty wealth vector");
  }
  const std::size_t m = wealth.size();
  *scratch = wealth;
  std::sort(scratch->begin(), scratch->end());
  if ((*scratch)[0] < 0.0) {
    throw std::invalid_argument("MeasurePopulation: negative wealth");
  }

  double total = 0.0;
  double weighted = 0.0;  // Σ rank_i * x_(i), ranks 1..m over ascending order
  double hhi = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double x = (*scratch)[i];
    total += x;
    weighted += static_cast<double>(i + 1) * x;
    hhi += x * x;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("MeasurePopulation: zero total wealth");
  }

  PopulationSnapshot snapshot;
  const double dm = static_cast<double>(m);
  // Gini over the sorted sample:  (2 Σ i x_(i)) / (m Σ x) - (m + 1)/m,
  // clamped against FP noise at perfect equality.
  snapshot.gini =
      std::max(0.0, 2.0 * weighted / (dm * total) - (dm + 1.0) / dm);
  snapshot.hhi = hhi / (total * total);

  const std::size_t decile = TopDecileCount(m);
  const double half = total / 2.0;
  double from_top = 0.0;
  double top_decile = 0.0;
  std::size_t nakamoto = 0;
  bool majority_reached = false;
  for (std::size_t taken = 1; taken <= m; ++taken) {
    from_top += (*scratch)[m - taken];
    if (taken == decile) top_decile = from_top;
    if (!majority_reached && from_top > half) {
      nakamoto = taken;
      majority_reached = true;
    }
    if (taken >= decile && majority_reached) break;
  }
  // A degenerate exact 50/50 split never strictly exceeds half; every miner
  // together always does up to FP noise, so fall back to m.
  if (!majority_reached) nakamoto = m;
  snapshot.nakamoto = static_cast<double>(nakamoto);
  snapshot.top_decile_share = top_decile / total;
  return snapshot;
}

}  // namespace fairchain::core
