#include "core/selfish_mining.hpp"

#include <stdexcept>

namespace fairchain::core {

double SelfishMiningRevenue(double alpha, double gamma) {
  // Negated comparisons so NaN fails validation instead of slipping
  // through (NaN > 0.0 and NaN > 0.5 are both false).
  if (!(alpha > 0.0) || !(alpha <= 0.5)) {
    throw std::invalid_argument(
        "SelfishMiningRevenue: alpha must be in (0, 0.5] — the closed form "
        "diverges for a majority pool (revenue -> 1); use "
        "SelfishMiningSimulator for alpha > 0.5");
  }
  if (!(gamma >= 0.0) || !(gamma <= 1.0)) {
    throw std::invalid_argument(
        "SelfishMiningRevenue: gamma must be in [0, 1]");
  }
  const double numerator =
      alpha * (1.0 - alpha) * (1.0 - alpha) *
          (4.0 * alpha + gamma * (1.0 - 2.0 * alpha)) -
      alpha * alpha * alpha;
  const double denominator =
      1.0 - alpha * (1.0 + (2.0 - alpha) * alpha);
  return numerator / denominator;
}

double SelfishMiningThreshold(double gamma) {
  if (!(gamma >= 0.0) || !(gamma <= 1.0)) {
    throw std::invalid_argument(
        "SelfishMiningThreshold: gamma must be in [0, 1]");
  }
  return (1.0 - gamma) / (3.0 - 2.0 * gamma);
}

SelfishMiningSimulator::SelfishMiningSimulator(double alpha, double gamma)
    : alpha_(alpha), gamma_(gamma) {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    throw std::invalid_argument(
        "SelfishMiningSimulator: alpha must be in (0, 1) — the state "
        "machine is well defined for a majority pool, unlike "
        "SelfishMiningRevenue, which requires alpha <= 0.5");
  }
  if (!(gamma >= 0.0) || !(gamma <= 1.0)) {
    throw std::invalid_argument(
        "SelfishMiningSimulator: gamma must be in [0, 1]");
  }
}

SelfishMiningResult SelfishMiningSimulator::Run(
    RngStream& rng, std::uint64_t block_events) const {
  SelfishMiningResult result;
  std::uint64_t lead = 0;   // private-chain advantage
  bool tie_race = false;    // a 1-1 fork is being raced
  for (std::uint64_t event = 0; event < block_events; ++event) {
    const bool selfish_found = rng.NextBernoulli(alpha_);
    if (tie_race) {
      // Both branches have length 1; the next block decides the race.
      tie_race = false;
      if (selfish_found) {
        // Pool extends its own branch: both its blocks commit.
        result.selfish_blocks += 2;
        result.orphaned_blocks += 1;  // the honest tie block
      } else if (rng.NextBernoulli(gamma_)) {
        // Honest miner built on the pool's branch: one block each.
        result.selfish_blocks += 1;
        result.honest_blocks += 1;
        result.orphaned_blocks += 1;
      } else {
        // Honest miners resolved on their own branch.
        result.honest_blocks += 2;
        result.orphaned_blocks += 1;  // the pool's withheld block
      }
      continue;
    }
    if (selfish_found) {
      ++lead;  // extend the private chain
      continue;
    }
    // Honest miners found a block.
    switch (lead) {
      case 0:
        result.honest_blocks += 1;
        break;
      case 1:
        // Pool publishes its single withheld block: 1-1 race.
        tie_race = true;
        lead = 0;
        break;
      case 2:
        // Pool publishes everything and wins; the honest block orphans.
        result.selfish_blocks += 2;
        result.orphaned_blocks += 1;
        lead = 0;
        break;
      default:
        // Lead > 2: the pool reveals one block, which commits (+1), the
        // honest block is destined to orphan, and the advantage shrinks
        // by one.
        result.selfish_blocks += 1;
        result.orphaned_blocks += 1;
        lead -= 1;
        break;
    }
  }
  // Settle: publish whatever remains of the private chain.
  result.selfish_blocks += lead;
  return result;
}

}  // namespace fairchain::core
