// ExecutionBackend: where simulation jobs run.
//
// The Monte Carlo engine and the campaign runner both reduce their work to
// a flat batch of independent jobs (replication chunks).  A backend decides
// only WHERE those jobs execute — inline on the calling thread, across a
// thread pool, or (future) across processes/machines.  It never decides
// WHAT a replication computes.
//
// Seeding / chunking contract (what makes every backend byte-identical):
//   * A job is a closed-over (cell, replication-range) pair.  Replication r
//     of a cell always derives its stream as RngStream(cell seed).Split(r)
//     — from the replication INDEX, never from the worker, the thread, or
//     the execution order.
//   * Jobs write to disjoint, pre-addressed output ranges
//     (lambda_matrix[c * reps + r]); no job reads another job's output.
//   * Post-processing that must observe ALL of a cell's jobs (reduction,
//     row emission) is ordered by the caller (atomic remaining-chunk
//     counters + an ordered-emit cursor), not by the backend.
// A future process-sharded backend therefore only needs to ship the same
// (cell seed, begin, end) triples and concatenate the same pre-addressed
// ranges to stay golden-compatible.
//
// Workers may cache per-thread arenas (ThreadLocalReplicationWorkspace);
// correctness never depends on which worker runs which job.

#ifndef FAIRCHAIN_CORE_EXECUTION_BACKEND_HPP_
#define FAIRCHAIN_CORE_EXECUTION_BACKEND_HPP_

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace fairchain::core {

/// Abstract job executor.  Implementations are stateless between Execute
/// calls and re-entrant: one backend instance may serve many concurrent
/// campaigns.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Human-readable backend name ("serial", "threadpool").
  virtual std::string name() const = 0;

  /// Upper bound on jobs that may run at the same time (1 for serial);
  /// callers use this to pick chunk sizes.
  virtual unsigned Concurrency() const = 0;

  /// Runs every job to completion before returning.  Jobs may execute in
  /// any order and on any worker; they must not throw (simulation errors
  /// are raised when jobs are built, before anything is scheduled).
  virtual void Execute(std::vector<std::function<void()>> jobs) const = 0;

  /// Non-zero when this backend runs jobs in forked worker PROCESSES and
  /// the caller should marshal results explicitly (core/shard_executor.hpp)
  /// instead of relying on shared memory.  In-process backends return 0.
  /// Closure batches handed to Execute cannot cross a process boundary
  /// (they communicate through caller memory), so process-sharded callers
  /// must check this and take the marshalling path.
  virtual unsigned ProcessShards() const { return 0; }
};

/// Runs jobs inline on the calling thread, in submission order.  The
/// determinism reference: any other backend must reproduce its output
/// byte for byte.
class SerialBackend final : public ExecutionBackend {
 public:
  std::string name() const override { return "serial"; }
  unsigned Concurrency() const override { return 1; }
  void Execute(std::vector<std::function<void()>> jobs) const override;
};

/// Runs jobs across a batch of worker threads with per-worker deques and
/// work stealing (support::RunStealingBatch): job i is dealt onto deque
/// i % threads, each worker drains its own deque front-to-back, and a
/// worker whose deque runs dry steals from the back of the most loaded
/// sibling — so a worker that finishes a cheap cell's chunks immediately
/// picks up an expensive cell's remaining ones.  Successful steals are
/// counted into the `campaign.steal_count` metric.  Fresh worker threads
/// per Execute keep the backend re-entrant and the workers' thread-local
/// arenas scoped to one campaign.
class ThreadPoolBackend final : public ExecutionBackend {
 public:
  /// `threads` = 0 means EnvThreads().  `stealing` false pins every job to
  /// the worker it was dealt to — the static-dispatch control arm the
  /// scheduler benchmarks compare against; output is identical either way.
  explicit ThreadPoolBackend(unsigned threads = 0, bool stealing = true);

  std::string name() const override { return "threadpool"; }
  unsigned Concurrency() const override;
  void Execute(std::vector<std::function<void()>> jobs) const override;

 private:
  unsigned threads_;
  bool stealing_;
};

/// Runs jobs across N forked worker PROCESSES ("shard:N" on the CLI).
/// Callers that can marshal results (the campaign runner) detect it via
/// ProcessShards() and ship replication chunks through
/// core/shard_executor.hpp — outputs stay byte-identical to Serial at any
/// shard count because the same pre-addressed ranges are concatenated in
/// the same order.  The generic Execute falls back to inline serial
/// execution: closure jobs write to caller memory, which a forked child
/// cannot share back, so running them in-process is the only CORRECT
/// fallback (slower, never wrong).
class ShardBackend final : public ExecutionBackend {
 public:
  /// `shards` >= 1 (the CLI parser enforces it before construction).
  explicit ShardBackend(unsigned shards);

  std::string name() const override;
  unsigned Concurrency() const override { return shards_; }
  unsigned ProcessShards() const override { return shards_; }
  void Execute(std::vector<std::function<void()>> jobs) const override;

 private:
  unsigned shards_;
};

/// The backend used when none is injected: Serial for a single worker
/// (no pool setup, no worker handoff), ThreadPool otherwise.  `threads` = 0
/// means EnvThreads().
std::unique_ptr<ExecutionBackend> MakeDefaultBackend(unsigned threads);

/// Backend by CLI name: "serial", "pool"/"threadpool" (at `threads`
/// workers, 0 = EnvThreads()), or "shard:<N>" (N >= 1 forked worker
/// processes).  Throws std::invalid_argument on an unknown or malformed
/// name — listing the known backends and suggesting the closest spelling
/// ("did you mean") — and on a missing/zero/negative/garbage shard count.
std::unique_ptr<ExecutionBackend> MakeBackend(const std::string& name,
                                              unsigned threads);

}  // namespace fairchain::core

#endif  // FAIRCHAIN_CORE_EXECUTION_BACKEND_HPP_
