#include "protocol/extensions.hpp"

#include <stdexcept>

#include "protocol/batched_steps.hpp"
#include "protocol/lane_steps.hpp"

namespace fairchain::protocol {

NeoModel::NeoModel(double w) : w_(w) { ValidateReward(w, "NeoModel: w"); }

void NeoModel::Step(StakeState& state, RngStream& rng) const {
  // Proposer ∝ base-asset share; the base asset never changes because gas
  // rewards are a separate token (compounds = false keeps stakes fixed),
  // so the O(log m) sampler never needs an update between steps and the
  // branchless static-stake descent applies.
  const std::size_t winner = state.SampleProportionalToStaticStake(rng);
  state.Credit(winner, w_, /*compounds=*/false);
}

void NeoModel::RunSteps(StakeState& state, std::uint64_t step_begin,
                        std::uint64_t step_count, RngStream& rng) const {
  CheckRunStepsBegin(state, step_begin);
  // Gas rewards never become stake, so like PoW the whole batch runs
  // against a frozen sampler tree.
  batched::RunStaticIncomeSteps(state, w_, step_count, rng);
}

void NeoModel::RunLaneSteps(LaneStakeState& block, std::uint64_t step_begin,
                            std::uint64_t step_count,
                            PhiloxLanes& rng) const {
  CheckRunLaneStepsBegin(block, step_begin);
  // Same lockstep dynamics as PoW: frozen tree, non-compounding income.
  lanes::RunStaticIncomeLaneSteps(block, w_, step_count, rng);
}

double NeoModel::WinProbability(const StakeState& state,
                                std::size_t i) const {
  return state.StakeShare(i);
}

AlgorandModel::AlgorandModel(double v) : v_(v) {
  ValidateReward(v, "AlgorandModel: v");
}

void AlgorandModel::Step(StakeState& state, RngStream& rng) const {
  (void)rng;  // Fully deterministic: inflation only.
  const std::size_t n = state.miner_count();
  const double total = state.total_stake();
  for (std::size_t i = 0; i < n; ++i) {
    const double stake = state.stake(i);  // epoch-start value (see C-PoS)
    if (stake > 0.0) {
      state.Credit(i, v_ * (stake / total), /*compounds=*/true);
    }
  }
}

double AlgorandModel::WinProbability(const StakeState& state,
                                     std::size_t i) const {
  return state.StakeShare(i);
}

EosModel::EosModel(double w, double v) : w_(w), v_(v) {
  ValidateReward(w, "EosModel: w");
  if (v < 0.0) throw std::invalid_argument("EosModel: v must be >= 0");
}

void EosModel::Step(StakeState& state, RngStream& rng) const {
  (void)rng;  // Round-robin proposing: deterministic per round.
  const std::size_t n = state.miner_count();
  const double total = state.total_stake();
  const double constant_part = w_ / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double stake = state.stake(i);  // round-start value
    double credit = constant_part;
    if (v_ > 0.0 && stake > 0.0) credit += v_ * (stake / total);
    state.Credit(i, credit, /*compounds=*/true);
  }
}

double EosModel::WinProbability(const StakeState& state,
                                std::size_t /*i*/) const {
  return 1.0 / static_cast<double>(state.miner_count());
}

}  // namespace fairchain::protocol
