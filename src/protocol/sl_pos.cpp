#include "protocol/sl_pos.hpp"

#include <limits>
#include <vector>

#include "protocol/win_probability.hpp"

namespace fairchain::protocol {

SlPosModel::SlPosModel(double w) : w_(w) { ValidateReward(w, "SlPosModel: w"); }

std::size_t SlPosModel::RunLottery(const StakeState& state,
                                   RngStream& rng) {
  // One lottery ticket per miner: deadline U_i / stake_i (basetime cancels).
  // Draws are independent uniforms, so ties have probability zero; a miner
  // with zero stake draws no ticket and never has the smallest deadline.
  const std::size_t n = state.miner_count();
  std::size_t winner = 0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const double stake = state.stake(i);
    if (stake <= 0.0) continue;
    const double deadline = rng.NextOpenDouble() / stake;
    if (deadline < best) {
      best = deadline;
      winner = i;
    }
  }
  return winner;
}

void SlPosModel::Step(StakeState& state, RngStream& rng) const {
  state.Credit(RunLottery(state, rng), w_, /*compounds=*/true);
}

void SlPosModel::RunSteps(StakeState& state, std::uint64_t step_begin,
                          std::uint64_t step_count, RngStream& rng) const {
  CheckRunStepsBegin(state, step_begin);
  // The deadline race is inherently O(m) per block, but batching still
  // removes the per-step virtual call and inlines the credit arm.
  const double w = w_;
  const bool withholding = state.withhold_period() != 0;
  for (std::uint64_t s = 0; s < step_count; ++s) {
    const std::size_t winner = RunLottery(state, rng);
    if (withholding) {
      state.CreditWithheld(winner, w);
    } else {
      state.CreditCompounding(winner, w);
    }
    state.AdvanceStep();
  }
}

double SlPosModel::WinProbability(const StakeState& state,
                                  std::size_t i) const {
  const std::size_t n = state.miner_count();
  if (n == 2) {
    const std::size_t other = i == 0 ? 1 : 0;
    return SlPosTwoMinerWinProbability(state.stake(i), state.stake(other));
  }
  // SL-PoS keeps its integral form (Lemma 6.1) — the lottery is genuinely
  // non-proportional — but the full probability vector is cached in the
  // state and recomputed only when stakes actually change, so sweeping all
  // miners costs one quadrature pass instead of one per query.
  StakeState::WinProbabilityCache& cache = state.win_probability_cache();
  if (cache.version != state.stake_version() ||
      cache.probabilities.size() != n) {
    std::vector<double> stakes(n);
    for (std::size_t j = 0; j < n; ++j) stakes[j] = state.stake(j);
    cache.probabilities = SlPosWinProbabilities(stakes);
    cache.version = state.stake_version();
  }
  return cache.probabilities[i];
}

}  // namespace fairchain::protocol
