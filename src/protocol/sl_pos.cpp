#include "protocol/sl_pos.hpp"

#include <limits>
#include <vector>

#include "protocol/win_probability.hpp"

namespace fairchain::protocol {

SlPosModel::SlPosModel(double w) : w_(w) { ValidateReward(w, "SlPosModel: w"); }

void SlPosModel::Step(StakeState& state, RngStream& rng) const {
  // One lottery ticket per miner: deadline U_i / stake_i (basetime cancels).
  // Draws are independent uniforms, so ties have probability zero; a miner
  // with zero stake never has the smallest deadline.
  const std::size_t n = state.miner_count();
  std::size_t winner = 0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const double stake = state.stake(i);
    if (stake <= 0.0) continue;
    const double deadline = rng.NextOpenDouble() / stake;
    if (deadline < best) {
      best = deadline;
      winner = i;
    }
  }
  state.Credit(winner, w_, /*compounds=*/true);
}

double SlPosModel::WinProbability(const StakeState& state,
                                  std::size_t i) const {
  const std::size_t n = state.miner_count();
  if (n == 2) {
    const std::size_t other = i == 0 ? 1 : 0;
    return SlPosTwoMinerWinProbability(state.stake(i), state.stake(other));
  }
  // SL-PoS keeps its integral form (Lemma 6.1) — the lottery is genuinely
  // non-proportional — but the full probability vector is cached in the
  // state and recomputed only when stakes actually change, so sweeping all
  // miners costs one quadrature pass instead of one per query.
  StakeState::WinProbabilityCache& cache = state.win_probability_cache();
  if (cache.version != state.stake_version() ||
      cache.probabilities.size() != n) {
    std::vector<double> stakes(n);
    for (std::size_t j = 0; j < n; ++j) stakes[j] = state.stake(j);
    cache.probabilities = SlPosWinProbabilities(stakes);
    cache.version = state.stake_version();
  }
  return cache.probabilities[i];
}

}  // namespace fairchain::protocol
