#include "protocol/stake_state.hpp"

#include <stdexcept>

namespace fairchain::protocol {

StakeState::StakeState(std::vector<double> initial,
                       std::uint64_t withhold_period)
    : initial_(std::move(initial)), withhold_period_(withhold_period) {
  if (initial_.empty()) {
    throw std::invalid_argument("StakeState: at least one miner required");
  }
  for (const double s : initial_) {
    if (s < 0.0) {
      throw std::invalid_argument("StakeState: negative initial stake");
    }
    initial_total_ += s;
  }
  if (!(initial_total_ > 0.0)) {
    throw std::invalid_argument("StakeState: initial stakes sum to zero");
  }
  stake_ = initial_;
  income_.assign(initial_.size(), 0.0);
  pending_.assign(initial_.size(), 0.0);
  total_stake_ = initial_total_;
  sampler_.Build(stake_);
}

void StakeState::Credit(std::size_t i, double amount, bool compounds) {
  if (amount < 0.0) {
    throw std::invalid_argument("StakeState::Credit: negative amount");
  }
  if (!compounds) {
    CreditIncome(i, amount);
  } else if (withhold_period_ == 0) {
    CreditCompounding(i, amount);
  } else {
    CreditWithheld(i, amount);
  }
}

void StakeState::ReleaseWithheld() {
  bool released = false;
  for (std::size_t i = 0; i < stake_.size(); ++i) {
    if (pending_[i] != 0.0) {
      stake_[i] += pending_[i];
      total_stake_ += pending_[i];
      pending_[i] = 0.0;
      released = true;
    }
  }
  if (released) {
    // A boundary can release up to m pending rewards at once; one O(m)
    // rebuild beats m separate O(log m) update paths.
    sampler_.Build(stake_);
    ++stake_version_;
  }
}

double StakeState::PendingTotal() const {
  double total = 0.0;
  for (const double p : pending_) total += p;
  return total;
}

void StakeState::Reset() {
  stake_ = initial_;
  for (auto& value : income_) value = 0.0;
  for (auto& value : pending_) value = 0.0;
  total_stake_ = initial_total_;
  total_income_ = 0.0;
  step_ = 0;
  sampler_.Build(stake_);
  ++stake_version_;
}

void StakeState::WealthVector(std::vector<double>* out) const {
  out->resize(initial_.size());
  for (std::size_t i = 0; i < initial_.size(); ++i) {
    (*out)[i] = initial_[i] + income_[i];
  }
}

}  // namespace fairchain::protocol
