// Shared batched inner loops for the RunSteps overrides.
//
// Two step dynamics cover four protocols: the static-stake income loop
// (PoW and NEO — rewards never become mining power, the sampler tree is
// frozen, the branchless descent applies) and the compounding urn loop
// (ML-PoS and FSL-PoS — identical batched dynamics once FSL-PoS's
// exponential race is sampled as its equivalent categorical draw).  One
// definition each, inline so the per-protocol RunSteps overrides still
// compile to a single tight loop; a withholding-boundary fix or a sampler
// change lands in every protocol that shares the dynamic.
//
// Both loops preserve the RunSteps contract exactly: same state
// transitions and RNG draw order as the iterated Step reference (pinned by
// tests/protocol/run_steps_conformance_test.cpp).

#ifndef FAIRCHAIN_PROTOCOL_BATCHED_STEPS_HPP_
#define FAIRCHAIN_PROTOCOL_BATCHED_STEPS_HPP_

#include <cstdint>

#include "protocol/stake_state.hpp"
#include "support/rng.hpp"

namespace fairchain::protocol::batched {

/// PoW / NEO: proportional proposer over frozen stakes, non-compounding
/// reward `w` per block.  AdvanceStep stays in the loop for
/// withholding-boundary parity with Step (all pending amounts are zero, so
/// a boundary is a no-op, exactly as in the reference loop).
inline void RunStaticIncomeSteps(StakeState& state, double w,
                                 std::uint64_t step_count, RngStream& rng) {
  for (std::uint64_t s = 0; s < step_count; ++s) {
    state.CreditIncome(state.SampleProportionalToStaticStake(rng), w);
    state.AdvanceStep();
  }
}

/// ML-PoS / FSL-PoS: one categorical draw per block, reward `w` compounds
/// — the Pólya-urn fast path with the withholding branch hoisted out of
/// the loop entirely.
inline void RunCompoundingSteps(StakeState& state, double w,
                                std::uint64_t step_count, RngStream& rng) {
  if (state.withhold_period() == 0) {
    for (std::uint64_t s = 0; s < step_count; ++s) {
      state.CreditCompounding(state.SampleProportionalToStake(rng), w);
      state.AdvanceStep();
    }
  } else {
    // Withholding: rewards pend until the boundary AdvanceStep crosses.
    for (std::uint64_t s = 0; s < step_count; ++s) {
      state.CreditWithheld(state.SampleProportionalToStake(rng), w);
      state.AdvanceStep();
    }
  }
}

}  // namespace fairchain::protocol::batched

#endif  // FAIRCHAIN_PROTOCOL_BATCHED_STEPS_HPP_
