// The fused static-income batch kernel — out-of-line body of
// lanes::RunStaticIncomeLaneSteps (declared in lane_steps.hpp).
//
// NOTE ON COMPILE FLAGS: like support/philox.cpp and support/fenwick.cpp,
// this TU is compiled with the host CPU's full SIMD ISA when
// FAIRCHAIN_LANE_SIMD is on.  Safe for the same reasons: only a non-inline
// free function is defined here (no ODR leak), and the arithmetic is
// compare / masked-select / subtract / add with standalone multiplies —
// no mul+add chain for FP contraction to fuse, so winners and credited
// sums are bit-identical at any ISA level.
//
// Why fuse: the per-step reference loop (kept below as the portable
// fallback) pays a function call, descent setup, and an income scatter per
// step.  The static-income dynamic reads the SAME frozen tree every step
// and touches only the income matrix, so a whole batch can share the
// setup:
//   * uniforms come zero-copy from the Philox row buffer (no per-step
//     copy through a stack array);
//   * two adjacent steps' descents interleave, giving the out-of-order
//     core four independent gather chains instead of two — the gather
//     latency of step A hides behind step B's compares;
//   * the two-miner game (the paper's default cell shape) skips the
//     descent entirely and keeps its K-lane income rows in registers for
//     the whole batch: one masked compare + two masked adds per step, no
//     loads or stores until the batch ends.
//
// Bit-exactness contract (pinned by the lane conformance tests): winners
// equal FenwickSampler::SampleFlat decision-for-decision, per-miner income
// cells receive the same additions in the same step order as
// CreditIncomeLanes, and the shared total is accumulated by repeated
// addition in LaneStakeState::FinishKernelSteps — so the fused batch is
// byte-identical to the per-step loop, which is byte-identical to a
// scalar PhiloxStream replay.

#include "protocol/lane_steps.hpp"

#include <cstddef>
#include <cstdint>

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__)
#include <immintrin.h>
#define FAIRCHAIN_LANES_AVX512 1
#endif

namespace fairchain::protocol::lanes {

#if FAIRCHAIN_LANES_AVX512
namespace {

__mmask8 LiveMask(std::size_t lanes_left) {
  return lanes_left >= 8 ? static_cast<__mmask8>(0xFF)
                         : static_cast<__mmask8>((1u << lanes_left) - 1u);
}

/// Two-miner batch: the income matrix is 2 rows of K <= kMaxFenwickLanes
/// doubles — at most 8 zmm registers — so it stays register-resident
/// across the whole batch.  Per step and 8-lane group: one masked row
/// load of uniforms, two broadcast compares, one mask-arithmetic winner
/// select, two masked adds.  Matches the SampleFlatLanes two-element
/// path: winner = over ? LastPositive() : (node1 <= remaining ? 1 : 0).
///
/// The group count is a TEMPLATE parameter: with a compile-time bound the
/// group loops fully unroll and the accumulators are promoted from an
/// indexed stack array to registers — with a runtime bound GCC spills
/// every accumulator to the stack on each step, which costs more than the
/// arithmetic it carries.
template <std::size_t kGroups>
void RunTwoMinerBatch(LaneStakeState& block, double w,
                      std::uint64_t step_count, PhiloxLanes& rng) {
  const FenwickSampler& sampler = block.shared_sampler();
  const double* tree = sampler.tree_data();
  const std::size_t lanes = block.lane_count();
  double* income = block.income_data();
  const __mmask8 last_is_1 =
      sampler.LastPositive() == 1 ? static_cast<__mmask8>(0xFF)
                                  : static_cast<__mmask8>(0x00);
  const __m512d node1 = _mm512_set1_pd(tree[1]);
  const __m512d node2 = _mm512_set1_pd(tree[2]);
  const __m512d total = _mm512_set1_pd(sampler.Total());
  const __m512d wv = _mm512_set1_pd(w);
  __mmask8 live[kGroups];
  __m512d acc0[kGroups];  // income row of miner 0, one vector per group
  __m512d acc1[kGroups];  // income row of miner 1
  for (std::size_t g = 0; g < kGroups; ++g) {
    live[g] = LiveMask(lanes - 8 * g);
    acc0[g] = _mm512_maskz_loadu_pd(live[g], income + 8 * g);
    acc1[g] = _mm512_maskz_loadu_pd(live[g], income + lanes + 8 * g);
  }
  for (std::uint64_t s = 0; s < step_count; ++s) {
    const double* u = rng.NextRow();  // consumed before the next NextRow
    for (std::size_t g = 0; g < kGroups; ++g) {
      const __m512d remaining =
          _mm512_mul_pd(_mm512_maskz_loadu_pd(live[g], u + 8 * g), total);
      const __mmask8 take1 =
          _mm512_cmp_pd_mask(node1, remaining, _CMP_LE_OQ);
      const __mmask8 over =
          _mm512_cmp_pd_mask(node2, remaining, _CMP_LE_OQ);
      // Miner 1 wins a lane iff it took node1 without rounding overrunning
      // the root, or it overran and miner 1 is the LastPositive fallback.
      const __mmask8 won1 = static_cast<__mmask8>(
          (take1 & static_cast<__mmask8>(~over)) | (over & last_is_1));
      acc1[g] = _mm512_mask_add_pd(acc1[g], won1, acc1[g], wv);
      acc0[g] = _mm512_mask_add_pd(acc0[g], static_cast<__mmask8>(~won1),
                                   acc0[g], wv);
      // Dead tail lanes accumulate w too (they start at maskz 0.0 and are
      // always in ~won1); the masked stores below discard them.
    }
  }
  for (std::size_t g = 0; g < kGroups; ++g) {
    _mm512_mask_storeu_pd(income + 8 * g, live[g], acc0[g]);
    _mm512_mask_storeu_pd(income + lanes + 8 * g, live[g], acc1[g]);
  }
}

/// Dispatches the lane count to a compile-time group count.
void RunTwoMinerBatchDispatch(LaneStakeState& block, double w,
                              std::uint64_t step_count, PhiloxLanes& rng) {
  static_assert(kMaxFenwickLanes <= 32);
  switch ((block.lane_count() + 7) / 8) {
    case 1: RunTwoMinerBatch<1>(block, w, step_count, rng); break;
    case 2: RunTwoMinerBatch<2>(block, w, step_count, rng); break;
    case 3: RunTwoMinerBatch<3>(block, w, step_count, rng); break;
    default: RunTwoMinerBatch<4>(block, w, step_count, rng); break;
  }
}

/// General-m batch: steps are processed in PAIRS, the two descents
/// interleaved instruction-for-instruction.  Each descent level is a
/// serial gather -> compare -> blend chain; interleaving two independent
/// steps (x the independent 8-lane groups) keeps the gather unit busy
/// while the sibling chain's compare retires.  Credits stay scalar: each
/// lane adds the same `w` to one cell per step in step order, identical
/// to CreditIncomeLanes.
void RunGeneralBatch(LaneStakeState& block, double w,
                     std::uint64_t step_count, PhiloxLanes& rng) {
  const FenwickSampler& sampler = block.shared_sampler();
  const double* tree = sampler.tree_data();
  const std::size_t lanes = block.lane_count();
  const std::size_t mask = sampler.descent_mask();
  const std::size_t size = sampler.size();
  double* income = block.income_data();
  const __m512d total = _mm512_set1_pd(sampler.Total());
  double ua[kMaxFenwickLanes];
  double ub[kMaxFenwickLanes];
  std::uint32_t wa[kMaxFenwickLanes];
  std::uint32_t wb[kMaxFenwickLanes];
  const auto credit = [&](std::uint32_t* winners) {
    for (std::size_t l = 0; l < lanes; ++l) {
      if (winners[l] >= size) {  // rounding overran: rare, off the hot path
        winners[l] = static_cast<std::uint32_t>(sampler.LastPositive());
      }
      income[winners[l] * lanes + l] += w;
    }
  };
  const std::uint64_t pairs = step_count / 2;
  for (std::uint64_t p = 0; p < pairs; ++p) {
    // Copy the two rows out of the Philox buffer: the second fill may
    // refill (and overwrite) the buffer, so the zero-copy NextRow pointer
    // of the first row cannot be held across it.
    rng.FillUniformDoubles(ua);
    rng.FillUniformDoubles(ub);
    for (std::size_t base = 0; base < lanes; base += 8) {
      const __mmask8 live = LiveMask(lanes - base);
      __m512d rem_a =
          _mm512_mul_pd(_mm512_maskz_loadu_pd(live, ua + base), total);
      __m512d rem_b =
          _mm512_mul_pd(_mm512_maskz_loadu_pd(live, ub + base), total);
      __m512i idx_a = _mm512_setzero_si512();
      __m512i idx_b = _mm512_setzero_si512();
      for (std::size_t bit = mask; bit != 0; bit >>= 1) {
        const __m512i bitv = _mm512_set1_epi64(static_cast<long long>(bit));
        const __m512i probe_a = _mm512_add_epi64(idx_a, bitv);
        const __m512i probe_b = _mm512_add_epi64(idx_b, bitv);
        const __m512d t_a = _mm512_i64gather_pd(probe_a, tree, 8);
        const __m512d t_b = _mm512_i64gather_pd(probe_b, tree, 8);
        const __mmask8 take_a = _mm512_cmp_pd_mask(t_a, rem_a, _CMP_LE_OQ);
        const __mmask8 take_b = _mm512_cmp_pd_mask(t_b, rem_b, _CMP_LE_OQ);
        idx_a = _mm512_mask_mov_epi64(idx_a, take_a, probe_a);
        idx_b = _mm512_mask_mov_epi64(idx_b, take_b, probe_b);
        rem_a = _mm512_mask_sub_pd(rem_a, take_a, rem_a, t_a);
        rem_b = _mm512_mask_sub_pd(rem_b, take_b, rem_b, t_b);
      }
      _mm256_mask_storeu_epi32(wa + base, live,
                               _mm512_cvtepi64_epi32(idx_a));
      _mm256_mask_storeu_epi32(wb + base, live,
                               _mm512_cvtepi64_epi32(idx_b));
    }
    credit(wa);
    credit(wb);
  }
  if (step_count & 1) {  // odd tail: one step through the lane descent
    rng.FillUniformDoubles(ua);
    sampler.SampleFlatLanes(ua, lanes, wa);
    for (std::size_t l = 0; l < lanes; ++l) {
      income[wa[l] * lanes + l] += w;
    }
  }
}

}  // namespace
#endif  // FAIRCHAIN_LANES_AVX512

void RunStaticIncomeLaneSteps(LaneStakeState& block, double w,
                              std::uint64_t step_count, PhiloxLanes& rng) {
#if FAIRCHAIN_LANES_AVX512
  if (block.shared_sampler().size() == 2) {
    RunTwoMinerBatchDispatch(block, w, step_count, rng);
  } else {
    RunGeneralBatch(block, w, step_count, rng);
  }
  block.FinishKernelSteps(w, step_count);
#else
  // Portable reference loop: fill -> lane descent -> SoA credit per step.
  // This IS the semantics the fused bodies above must reproduce.
  double u[kMaxFenwickLanes];
  std::uint32_t winner[kMaxFenwickLanes];
  const std::size_t lane_count = block.lane_count();
  const FenwickSampler& sampler = block.shared_sampler();
  for (std::uint64_t s = 0; s < step_count; ++s) {
    rng.FillUniformDoubles(u);
    sampler.SampleFlatLanes(u, lane_count, winner);
    block.CreditIncomeLanes(winner, w);
    block.AdvanceStep();
  }
#endif
}

}  // namespace fairchain::protocol::lanes
