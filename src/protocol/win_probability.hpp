// Closed-form and numeric next-block win probabilities (Section 2 and
// Lemma 6.1 of the paper).
//
// These are the protocol selection rules *before* any reward feedback:
// given the current resource vector, what is the chance each miner proposes
// the next block?  The models call these; the bench for Figure 1 plots them;
// tests cross-check them against simulated frequencies.

#ifndef FAIRCHAIN_PROTOCOL_WIN_PROBABILITY_HPP_
#define FAIRCHAIN_PROTOCOL_WIN_PROBABILITY_HPP_

#include <cstddef>
#include <vector>

namespace fairchain::protocol {

/// PoW / ML-PoS / C-PoS / FSL-PoS: probability proportional to resource.
/// Returns resource_i / Σ resource_j.  Throws when the total is zero.
double ProportionalWinProbability(const std::vector<double>& resources,
                                  std::size_t i);

/// Exact ML-PoS two-miner next-block probability including the tie term
/// (Section 2.2):  (p_a - p_a p_b / 2) / (p_a + p_b - p_a p_b),
/// where p_x is the per-timestamp success probability D*S_x/2^256.
/// Converges to s_a / (s_a + s_b) as the p's -> 0.
double MlPosTwoMinerWinProbabilityExact(double p_a, double p_b);

/// SL-PoS two-miner win probability for miner A, continuous-hash limit
/// (Equation (1)):  s_a / (2 s_b) when s_a <= s_b, else 1 - s_b / (2 s_a).
/// Requires positive stakes.
double SlPosTwoMinerWinProbability(double s_a, double s_b);

/// SL-PoS two-miner win probability with the exact discrete-hash correction
/// of Equation (1):  (s_a / 2 s_b) (2^256 - 1)/2^256 + 2^-257 for s_a<=s_b.
/// Included to show the discretisation error is negligible (tests assert
/// agreement to ~1e-70 relative).
double SlPosTwoMinerWinProbabilityDiscrete(double s_a, double s_b);

/// SL-PoS multi-miner win probability (Lemma 6.1):
///   Pr[i wins] = S_i * Integral_0^{1/S_max} Prod_{j != i} (1 - S_j z) dz,
/// evaluated by Gauss-Legendre quadrature (exact: polynomial integrand).
/// Requires all stakes > 0.
double SlPosMultiMinerWinProbability(const std::vector<double>& stakes,
                                     std::size_t i);

/// All miners' SL-PoS win probabilities in one pass; sums to 1 (up to
/// quadrature error, which tests bound at 1e-12).
std::vector<double> SlPosWinProbabilities(const std::vector<double>& stakes);

}  // namespace fairchain::protocol

#endif  // FAIRCHAIN_PROTOCOL_WIN_PROBABILITY_HPP_
