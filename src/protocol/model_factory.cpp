#include "protocol/model_factory.hpp"

#include <algorithm>
#include <stdexcept>

#include "protocol/c_pos.hpp"
#include "protocol/extensions.hpp"
#include "protocol/fsl_pos.hpp"
#include "protocol/ml_pos.hpp"
#include "protocol/pow.hpp"
#include "protocol/sl_pos.hpp"

namespace fairchain::protocol {

std::unique_ptr<IncentiveModel> MakeModel(const std::string& name, double w,
                                          double v, std::uint32_t shards) {
  if (name == "pow") return std::make_unique<PowModel>(w);
  if (name == "mlpos") return std::make_unique<MlPosModel>(w);
  if (name == "slpos") return std::make_unique<SlPosModel>(w);
  if (name == "cpos") return std::make_unique<CPosModel>(w, v, shards);
  if (name == "fslpos") return std::make_unique<FslPosModel>(w);
  if (name == "neo") return std::make_unique<NeoModel>(w);
  if (name == "algorand") return std::make_unique<AlgorandModel>(v);
  if (name == "eos") return std::make_unique<EosModel>(w, v);
  std::string known;
  for (const std::string& candidate : KnownModelNames()) {
    if (!known.empty()) known += "|";
    known += candidate;
  }
  throw std::invalid_argument("unknown protocol '" + name + "' (known: " +
                              known + ")");
}

const std::vector<std::string>& KnownModelNames() {
  static const std::vector<std::string> names = {
      "pow", "mlpos", "slpos", "cpos", "fslpos", "neo", "algorand", "eos"};
  return names;
}

bool IsKnownModelName(const std::string& name) {
  const auto& names = KnownModelNames();
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace fairchain::protocol
