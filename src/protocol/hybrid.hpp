// Filecoin-style hybrid incentive model (Section 6.4, last paragraph).
//
// Filecoin's mining power combines contributions that do NOT compound
// (committed storage, analogous to PoW hash power) with pledge stakes that
// DO compound.  HybridModel generalises this: miner i's selection weight is
//
//     power_i = alpha * fixed_i + (1 - alpha) * stake_share_i,
//
// where `fixed_i` is the (normalised) non-compounding resource and the
// stake component evolves like ML-PoS.  alpha = 1 degenerates to PoW,
// alpha = 0 to ML-PoS; intermediate alphas interpolate the fairness
// behaviour between them — "our analysis of PoW and PoS protocols is
// useful for understanding the fairness of the Filecoin incentive".

#ifndef FAIRCHAIN_PROTOCOL_HYBRID_HPP_
#define FAIRCHAIN_PROTOCOL_HYBRID_HPP_

#include <vector>

#include "protocol/incentive_model.hpp"

namespace fairchain::protocol {

/// Hybrid fixed-resource / compounding-stake proposer selection.
class HybridModel : public IncentiveModel {
 public:
  /// Creates a hybrid model.
  ///
  /// \param w      block reward (> 0); credited to the stake component
  /// \param alpha  weight of the fixed resource in [0, 1]
  /// \param fixed  per-miner fixed resource (storage); must match the
  ///               miner count of the states it is run with, be
  ///               non-negative, and have a positive sum
  HybridModel(double w, double alpha, std::vector<double> fixed);

  std::string name() const override { return "Hybrid"; }
  void Step(StakeState& state, RngStream& rng) const override;
  double RewardPerStep() const override { return w_; }
  double WinProbability(const StakeState& state, std::size_t i) const override;
  bool RewardCompounds() const override { return true; }

  double alpha() const { return alpha_; }
  /// Fixed-resource share of miner i.
  double FixedShare(std::size_t i) const {
    return fixed_[i] / fixed_total_;
  }

 private:
  double Weight(const StakeState& state, std::size_t i) const;

  double w_;
  double alpha_;
  std::vector<double> fixed_;
  double fixed_total_ = 0.0;
};

}  // namespace fairchain::protocol

#endif  // FAIRCHAIN_PROTOCOL_HYBRID_HPP_
