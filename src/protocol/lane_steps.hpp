// Shared lockstep inner loops for the RunLaneSteps overrides — the
// replication-vectorized analog of batched_steps.hpp.
//
// One step advances ALL K lanes: K counter-based uniforms in one fill
// (PhiloxLanes), K winners in one masked multi-lane Fenwick descent, K
// credits in one SoA scatter.  Every stage is a dependency-free loop over
// lanes, so the compiler can vectorize across replications; nothing in
// the step body allocates or branches on lane-varying data.
//
// Two dynamics cover the four lane-stepping protocols, mirroring the
// scalar batched loops: the static-income loop (PoW / NEO — one frozen
// tree serves every lane) and the compounding loop (ML-PoS / FSL-PoS —
// per-lane trees, each reinforced by its own winner).
//
// Determinism contract: lane l consumes exactly the draw sequence of
// PhiloxStream(seed, first_lane + l) and applies exactly the credits a
// scalar StakeState replay of those winners would — so lane results are
// invariant to K, to block partitioning, and to which backend runs them
// (pinned by tests/protocol/lane_steps_conformance_test.cpp).

#ifndef FAIRCHAIN_PROTOCOL_LANE_STEPS_HPP_
#define FAIRCHAIN_PROTOCOL_LANE_STEPS_HPP_

#include <cstdint>

#include "protocol/lane_state.hpp"
#include "support/philox.hpp"

namespace fairchain::protocol::lanes {

/// PoW / NEO: proportional proposer over the one frozen tree,
/// non-compounding reward `w` per block on every lane.
///
/// Defined out of line in lane_kernels.cpp — the third ISA-widened kernel
/// TU (see FAIRCHAIN_LANE_SIMD in CMakeLists.txt).  Unlike the compounding
/// loop below, every step of this dynamic reads the SAME frozen tree and
/// touches only the income matrix, so the whole step batch fuses: uniforms
/// are consumed zero-copy from the Philox row buffer, descents of adjacent
/// steps interleave to hide gather latency, and the two-miner game keeps
/// its income rows in registers across the entire batch.  Output is
/// bit-identical to the naive per-step loop (same winners, same credit
/// order — pinned by the lane conformance tests).
void RunStaticIncomeLaneSteps(LaneStakeState& block, double w,
                              std::uint64_t step_count, PhiloxLanes& rng);

/// ML-PoS / FSL-PoS: one categorical draw per block per lane, reward `w`
/// compounds into that lane's tree (withholding is out of scope here —
/// see the LaneStakeState contract).
inline void RunCompoundingLaneSteps(LaneStakeState& block, double w,
                                    std::uint64_t step_count,
                                    PhiloxLanes& rng) {
  double u[kMaxFenwickLanes];
  std::uint32_t winner[kMaxFenwickLanes];
  FenwickLanes& trees = block.lane_trees();
  for (std::uint64_t s = 0; s < step_count; ++s) {
    rng.FillUniformDoubles(u);
    trees.SampleLanes(u, winner);
    block.CreditCompoundingLanes(winner, w);
    block.AdvanceStep();
  }
}

}  // namespace fairchain::protocol::lanes

#endif  // FAIRCHAIN_PROTOCOL_LANE_STEPS_HPP_
