// StakeState: the evolving state of a mining game.
//
// Tracks, per miner, the effective mining power ("stake"), the cumulative
// credited income, and — when reward withholding (Section 6.3) is enabled —
// rewards that have been issued but do not yet count as mining power.
//
// Conventions (matching Section 3.1 of the paper):
//   * initial stakes are the miners' resource shares a, b, ...; the library
//     does not require them to sum to 1 but the paper's parameters (w, v)
//     are interpreted relative to the initial total;
//   * income is credited per step; λ_i = income_i / Σ income_j;
//   * for protocols where rewards compound (all PoS variants), credited
//     income also increases mining power; for PoW / NEO it does not.
//
// Scale: a Fenwick tree over the effective stakes is maintained alongside
// the flat vectors, so proportional proposer selection
// (SampleProportionalToStake) and reinforcement (Credit) are both O(log m)
// — the property that lets one replication step stay cheap at 100k-miner
// populations.  Reset and withholding releases rebuild the tree in O(m).

#ifndef FAIRCHAIN_PROTOCOL_STAKE_STATE_HPP_
#define FAIRCHAIN_PROTOCOL_STAKE_STATE_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/fenwick.hpp"
#include "support/rng.hpp"

namespace fairchain::protocol {

/// Mutable per-game state shared by every incentive model.
class StakeState {
 public:
  /// Starts a game with the given initial resource vector.
  ///
  /// `withhold_period` > 0 enables the paper's reward-withholding remedy:
  /// compounding rewards issued at step s only become mining power at the
  /// next multiple of the period strictly after s (e.g. a reward issued at
  /// block 1024 with period 1000 takes effect at block 2000).
  ///
  /// Throws std::invalid_argument when `initial` is empty, contains a
  /// negative entry, or sums to zero.
  explicit StakeState(std::vector<double> initial,
                      std::uint64_t withhold_period = 0);

  /// Number of competing miners.
  std::size_t miner_count() const { return stake_.size(); }

  /// Current effective mining power of miner `i`.
  double stake(std::size_t i) const { return stake_[i]; }

  /// Total effective mining power (maintained incrementally).
  double total_stake() const { return total_stake_; }

  /// Miner i's share of effective mining power, Z_i in the paper.
  double StakeShare(std::size_t i) const { return stake_[i] / total_stake_; }

  /// Cumulative income credited to miner `i`.
  double income(std::size_t i) const { return income_[i]; }

  /// Total income credited so far.
  double total_income() const { return total_income_; }

  /// λ_i: miner i's fraction of all credited rewards (0 before any reward).
  double RewardFraction(std::size_t i) const {
    return total_income_ > 0.0 ? income_[i] / total_income_ : 0.0;
  }

  /// Miner i's initial resource.
  double initial_stake(std::size_t i) const { return initial_[i]; }

  /// Miner i's initial resource share (the paper's a).
  double InitialShare(std::size_t i) const {
    return initial_[i] / initial_total_;
  }

  /// Initial total resource.
  double initial_total() const { return initial_total_; }

  /// Number of completed steps (blocks / epochs).
  std::uint64_t step() const { return step_; }

  /// Withholding period (0 = disabled).
  std::uint64_t withhold_period() const { return withhold_period_; }

  /// Credits `amount` of reward to miner `i`.
  ///
  /// Income is always recorded immediately.  When `compounds` is true the
  /// amount also becomes mining power — immediately, or at the next
  /// withholding boundary when withholding is enabled.  O(log m) when the
  /// stake changes (the sampler tree is kept in sync), O(1) otherwise.
  void Credit(std::size_t i, double amount, bool compounds);

  // Inline credit fast paths for the batched RunSteps loops.  Each is one
  // arm of Credit with the mode branches hoisted out of the per-step loop;
  // `amount` must be >= 0 (the models validate rewards at construction).
  // They keep exactly Credit's state transitions, so interleaving them with
  // Credit is safe.

  /// Credit(i, amount, compounds=false): income only, O(1).
  void CreditIncome(std::size_t i, double amount) {
    income_[i] += amount;
    total_income_ += amount;
  }

  /// Credit(i, amount, compounds=true) with withholding disabled: income
  /// plus immediate mining power, O(log m).  Precondition:
  /// withhold_period() == 0.
  void CreditCompounding(std::size_t i, double amount) {
    income_[i] += amount;
    total_income_ += amount;
    stake_[i] += amount;
    total_stake_ += amount;
    sampler_.Add(i, amount);
    ++stake_version_;
  }

  /// Credit(i, amount, compounds=true) with withholding enabled: income
  /// now, mining power at the next boundary, O(1).  Precondition:
  /// withhold_period() != 0.
  void CreditWithheld(std::size_t i, double amount) {
    income_[i] += amount;
    total_income_ += amount;
    pending_[i] += amount;
  }

  /// Marks the end of a step: advances the block/epoch counter and releases
  /// withheld rewards when a boundary is crossed.  Called by the model
  /// driver after each IncentiveModel::Step.  Inline: without withholding
  /// this is a single increment on the hot path.
  void AdvanceStep() {
    ++step_;
    if (withhold_period_ != 0 && step_ % withhold_period_ == 0) {
      ReleaseWithheld();
    }
  }

  /// Sum of rewards issued but not yet effective (0 without withholding).
  double PendingTotal() const;

  /// Resets to the initial configuration (reuses allocations).
  void Reset();

  /// Draws the next proposer proportionally to effective stake: one uniform
  /// from `rng`, one O(log m) Fenwick descent.  Zero-stake miners are never
  /// selected.  Equivalent in distribution to the classic O(m) cumulative
  /// scan; the shared hot path of PoW / NEO / ML-PoS / FSL-PoS and of
  /// C-PoS slot assignment.
  std::size_t SampleProportionalToStake(RngStream& rng) const {
    return sampler_.Sample(rng.NextDouble());
  }

  /// Identical selection to SampleProportionalToStake — same draw, same
  /// winner for every input — through the sampler's branchless descent,
  /// which is ~2x faster when the stake distribution never changes during
  /// the game (PoW / NEO: per-level descent decisions are fresh coin flips
  /// the branch predictor cannot learn).  Compounding protocols should
  /// keep the branchy variant: their concentrated evolving trees make the
  /// predicted-skip descent cheaper (see FenwickSampler::SampleFlat).
  std::size_t SampleProportionalToStaticStake(RngStream& rng) const {
    return sampler_.SampleFlat(rng.NextDouble());
  }

  /// Monotone counter bumped whenever any effective stake changes
  /// (compounding credit, withholding release, reset).  Lets derived-value
  /// caches (e.g. the SL-PoS win-probability vector) detect staleness in
  /// O(1) instead of re-deriving per query.
  std::uint64_t stake_version() const { return stake_version_; }

  /// Per-state scratch cache for a full win-probability vector, keyed by
  /// stake_version.  Owned here (not by the immutable, thread-shared
  /// models) so each replication's state carries its own cache; `mutable`
  /// because filling it does not change the observable game state.
  struct WinProbabilityCache {
    std::uint64_t version = ~std::uint64_t{0};  ///< never a live version
    std::vector<double> probabilities;
  };
  WinProbabilityCache& win_probability_cache() const {
    return win_probability_cache_;
  }

  /// Per-state index scratch buffer (e.g. the C-PoS epoch slot winners).
  /// Owned by the state — not the immutable, thread-shared models — so
  /// steady-state stepping allocates it once per workspace, not per epoch;
  /// `mutable` because scratch contents are not observable game state.
  std::vector<std::size_t>& index_scratch() const { return index_scratch_; }

  /// Appends each miner's wealth — initial resource plus all credited
  /// income, whether or not it compounds or is still withheld — to `out`
  /// (resized to miner_count).  The basis of the population concentration
  /// metrics (Gini / HHI / Nakamoto coefficient).
  void WealthVector(std::vector<double>* out) const;

 private:
  /// Releases all pending stakes into mining power (boundary crossing);
  /// out of line because a release rebuilds the sampler tree in O(m).
  void ReleaseWithheld();

  std::vector<double> initial_;
  std::vector<double> stake_;
  std::vector<double> income_;
  std::vector<double> pending_;
  FenwickSampler sampler_;
  mutable WinProbabilityCache win_probability_cache_;
  mutable std::vector<std::size_t> index_scratch_;
  double initial_total_ = 0.0;
  double total_stake_ = 0.0;
  double total_income_ = 0.0;
  std::uint64_t step_ = 0;
  std::uint64_t withhold_period_ = 0;
  std::uint64_t stake_version_ = 0;
};

}  // namespace fairchain::protocol

#endif  // FAIRCHAIN_PROTOCOL_STAKE_STATE_HPP_
