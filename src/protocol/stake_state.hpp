// StakeState: the evolving state of a mining game.
//
// Tracks, per miner, the effective mining power ("stake"), the cumulative
// credited income, and — when reward withholding (Section 6.3) is enabled —
// rewards that have been issued but do not yet count as mining power.
//
// Conventions (matching Section 3.1 of the paper):
//   * initial stakes are the miners' resource shares a, b, ...; the library
//     does not require them to sum to 1 but the paper's parameters (w, v)
//     are interpreted relative to the initial total;
//   * income is credited per step; λ_i = income_i / Σ income_j;
//   * for protocols where rewards compound (all PoS variants), credited
//     income also increases mining power; for PoW / NEO it does not.
//
// Scale: a Fenwick tree over the effective stakes is maintained alongside
// the flat vectors, so proportional proposer selection
// (SampleProportionalToStake) and reinforcement (Credit) are both O(log m)
// — the property that lets one replication step stay cheap at 100k-miner
// populations.  Reset and withholding releases rebuild the tree in O(m).

#ifndef FAIRCHAIN_PROTOCOL_STAKE_STATE_HPP_
#define FAIRCHAIN_PROTOCOL_STAKE_STATE_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/fenwick.hpp"
#include "support/rng.hpp"

namespace fairchain::protocol {

/// Mutable per-game state shared by every incentive model.
class StakeState {
 public:
  /// Starts a game with the given initial resource vector.
  ///
  /// `withhold_period` > 0 enables the paper's reward-withholding remedy:
  /// compounding rewards issued at step s only become mining power at the
  /// next multiple of the period strictly after s (e.g. a reward issued at
  /// block 1024 with period 1000 takes effect at block 2000).
  ///
  /// Throws std::invalid_argument when `initial` is empty, contains a
  /// negative entry, or sums to zero.
  explicit StakeState(std::vector<double> initial,
                      std::uint64_t withhold_period = 0);

  /// Number of competing miners.
  std::size_t miner_count() const { return stake_.size(); }

  /// Current effective mining power of miner `i`.
  double stake(std::size_t i) const { return stake_[i]; }

  /// Total effective mining power (maintained incrementally).
  double total_stake() const { return total_stake_; }

  /// Miner i's share of effective mining power, Z_i in the paper.
  double StakeShare(std::size_t i) const { return stake_[i] / total_stake_; }

  /// Cumulative income credited to miner `i`.
  double income(std::size_t i) const { return income_[i]; }

  /// Total income credited so far.
  double total_income() const { return total_income_; }

  /// λ_i: miner i's fraction of all credited rewards (0 before any reward).
  double RewardFraction(std::size_t i) const {
    return total_income_ > 0.0 ? income_[i] / total_income_ : 0.0;
  }

  /// Miner i's initial resource.
  double initial_stake(std::size_t i) const { return initial_[i]; }

  /// Miner i's initial resource share (the paper's a).
  double InitialShare(std::size_t i) const {
    return initial_[i] / initial_total_;
  }

  /// Initial total resource.
  double initial_total() const { return initial_total_; }

  /// Number of completed steps (blocks / epochs).
  std::uint64_t step() const { return step_; }

  /// Withholding period (0 = disabled).
  std::uint64_t withhold_period() const { return withhold_period_; }

  /// Credits `amount` of reward to miner `i`.
  ///
  /// Income is always recorded immediately.  When `compounds` is true the
  /// amount also becomes mining power — immediately, or at the next
  /// withholding boundary when withholding is enabled.  O(log m) when the
  /// stake changes (the sampler tree is kept in sync), O(1) otherwise.
  void Credit(std::size_t i, double amount, bool compounds);

  /// Marks the end of a step: advances the block/epoch counter and releases
  /// withheld rewards when a boundary is crossed.  Called by the model
  /// driver after each IncentiveModel::Step.
  void AdvanceStep();

  /// Sum of rewards issued but not yet effective (0 without withholding).
  double PendingTotal() const;

  /// Resets to the initial configuration (reuses allocations).
  void Reset();

  /// Draws the next proposer proportionally to effective stake: one uniform
  /// from `rng`, one O(log m) Fenwick descent.  Zero-stake miners are never
  /// selected.  Equivalent in distribution to the classic O(m) cumulative
  /// scan; the shared hot path of PoW / NEO / ML-PoS / FSL-PoS and of
  /// C-PoS slot assignment.
  std::size_t SampleProportionalToStake(RngStream& rng) const {
    return sampler_.Sample(rng.NextDouble());
  }

  /// Monotone counter bumped whenever any effective stake changes
  /// (compounding credit, withholding release, reset).  Lets derived-value
  /// caches (e.g. the SL-PoS win-probability vector) detect staleness in
  /// O(1) instead of re-deriving per query.
  std::uint64_t stake_version() const { return stake_version_; }

  /// Per-state scratch cache for a full win-probability vector, keyed by
  /// stake_version.  Owned here (not by the immutable, thread-shared
  /// models) so each replication's state carries its own cache; `mutable`
  /// because filling it does not change the observable game state.
  struct WinProbabilityCache {
    std::uint64_t version = ~std::uint64_t{0};  ///< never a live version
    std::vector<double> probabilities;
  };
  WinProbabilityCache& win_probability_cache() const {
    return win_probability_cache_;
  }

  /// Appends each miner's wealth — initial resource plus all credited
  /// income, whether or not it compounds or is still withheld — to `out`
  /// (resized to miner_count).  The basis of the population concentration
  /// metrics (Gini / HHI / Nakamoto coefficient).
  void WealthVector(std::vector<double>* out) const;

 private:
  std::vector<double> initial_;
  std::vector<double> stake_;
  std::vector<double> income_;
  std::vector<double> pending_;
  FenwickSampler sampler_;
  mutable WinProbabilityCache win_probability_cache_;
  double initial_total_ = 0.0;
  double total_stake_ = 0.0;
  double total_income_ = 0.0;
  std::uint64_t step_ = 0;
  std::uint64_t withhold_period_ = 0;
  std::uint64_t stake_version_ = 0;
};

}  // namespace fairchain::protocol

#endif  // FAIRCHAIN_PROTOCOL_STAKE_STATE_HPP_
