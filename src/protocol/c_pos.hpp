// C-PoS: the compound Proof-of-Stake incentive model of Ethereum 2.0
// (Section 2.4), generalised as in the paper's analysis.
//
// Each mining epoch:
//   * P proposer slots ("shards") are filled independently, each by a miner
//     drawn with probability proportional to current stake; a miner winning
//     X slots receives a proposer reward of w * X / P;
//   * every miner additionally receives an inflation (attester) reward of
//     v * (stake share) — deterministic and exactly proportional.
//
// The inflation reward dilutes the variance contributed by proposer
// selection, which is why C-PoS achieves robust fairness far more easily
// than ML-PoS (Theorem 4.10); with v = 0 and P = 1, C-PoS degenerates to
// ML-PoS exactly.

#ifndef FAIRCHAIN_PROTOCOL_C_POS_HPP_
#define FAIRCHAIN_PROTOCOL_C_POS_HPP_

#include <cstdint>

#include "protocol/incentive_model.hpp"

namespace fairchain::protocol {

/// Compound PoS: sharded proposer lottery plus proportional inflation.
class CPosModel : public IncentiveModel {
 public:
  /// Creates a C-PoS model.
  ///
  /// \param w       total proposer reward per epoch (> 0)
  /// \param v       total inflation (attester) reward per epoch (>= 0)
  /// \param shards  number of proposer slots P per epoch (>= 1);
  ///                Ethereum 2.0 uses P = 32
  CPosModel(double w, double v, std::uint32_t shards);

  std::string name() const override { return "C-PoS"; }
  void Step(StakeState& state, RngStream& rng) const override;
  void RunSteps(StakeState& state, std::uint64_t step_begin,
                std::uint64_t step_count, RngStream& rng) const override;
  double RewardPerStep() const override { return w_ + v_; }

  /// Per-slot proposer selection probability (= stake share).
  double WinProbability(const StakeState& state, std::size_t i) const override;

  bool RewardCompounds() const override { return true; }

  double proposer_reward() const { return w_; }
  double inflation_reward() const { return v_; }
  std::uint32_t shards() const { return shards_; }

 private:
  /// One epoch's slot draws and credits (the body Step and RunSteps share);
  /// `withholding` is hoisted so the batched loop branches once, not per
  /// credit.
  void RunEpoch(StakeState& state, RngStream& rng, bool withholding) const;

  double w_;
  double v_;
  std::uint32_t shards_;
};

}  // namespace fairchain::protocol

#endif  // FAIRCHAIN_PROTOCOL_C_POS_HPP_
