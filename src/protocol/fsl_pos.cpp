#include "protocol/fsl_pos.hpp"

#include "protocol/batched_steps.hpp"
#include "protocol/lane_steps.hpp"

namespace fairchain::protocol {

FslPosModel::FslPosModel(double w) : w_(w) {
  ValidateReward(w, "FslPosModel: w");
}

void FslPosModel::Step(StakeState& state, RngStream& rng) const {
  // Exponential-deadline race:  T_i = -ln(U_i) / stake_i.  The minimum of
  // independent exponentials falls on miner i with probability
  // stake_i / total exactly, so the race is sampled as a single categorical
  // draw through the stake sampler — one uniform and O(log m) instead of
  // one exponential per miner.  (The earlier per-miner sampling mirrored
  // the protocol's wire mechanism but had the identical winner law.)
  const std::size_t winner = state.SampleProportionalToStake(rng);
  state.Credit(winner, w_, /*compounds=*/true);
}

void FslPosModel::RunSteps(StakeState& state, std::uint64_t step_begin,
                           std::uint64_t step_count, RngStream& rng) const {
  CheckRunStepsBegin(state, step_begin);
  // Identical batched dynamics to ML-PoS: the exponential race reduces to
  // one categorical draw per block (see Step), and the reward compounds.
  batched::RunCompoundingSteps(state, w_, step_count, rng);
}

void FslPosModel::RunLaneSteps(LaneStakeState& block,
                               std::uint64_t step_begin,
                               std::uint64_t step_count,
                               PhiloxLanes& rng) const {
  CheckRunLaneStepsBegin(block, step_begin);
  // Same lockstep dynamics as ML-PoS (one categorical draw per block per
  // lane, compounding reward).
  lanes::RunCompoundingLaneSteps(block, w_, step_count, rng);
}

double FslPosModel::WinProbability(const StakeState& state,
                                   std::size_t i) const {
  return state.StakeShare(i);
}

}  // namespace fairchain::protocol
