#include "protocol/fsl_pos.hpp"

#include <cmath>
#include <limits>

namespace fairchain::protocol {

FslPosModel::FslPosModel(double w) : w_(w) {
  ValidateReward(w, "FslPosModel: w");
}

void FslPosModel::Step(StakeState& state, RngStream& rng) const {
  // Exponential-deadline race:  T_i = -ln(U_i) / stake_i.  The minimum of
  // independent exponentials falls on miner i with probability
  // stake_i / total — the lottery is kept in its sampled form (rather than
  // a single categorical draw) to mirror the protocol's actual mechanism.
  const std::size_t n = state.miner_count();
  std::size_t winner = 0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const double stake = state.stake(i);
    if (stake <= 0.0) continue;
    const double deadline = -std::log(rng.NextOpenDouble()) / stake;
    if (deadline < best) {
      best = deadline;
      winner = i;
    }
  }
  state.Credit(winner, w_, /*compounds=*/true);
}

double FslPosModel::WinProbability(const StakeState& state,
                                   std::size_t i) const {
  return state.StakeShare(i);
}

}  // namespace fairchain::protocol
