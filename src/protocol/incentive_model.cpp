#include "protocol/incentive_model.hpp"

#include <stdexcept>

namespace fairchain::protocol {

void IncentiveModel::RunGame(StakeState& state, RngStream& rng,
                             std::uint64_t steps) const {
  for (std::uint64_t i = 0; i < steps; ++i) {
    Step(state, rng);
    state.AdvanceStep();
  }
}

void ValidateReward(double w, const char* what) {
  if (!(w > 0.0)) {
    throw std::invalid_argument(std::string(what) + " must be positive");
  }
}

}  // namespace fairchain::protocol
