#include "protocol/incentive_model.hpp"

#include <stdexcept>

namespace fairchain::protocol {

void CheckRunStepsBegin(const StakeState& state, std::uint64_t step_begin) {
  if (state.step() != step_begin) {
    throw std::invalid_argument(
        "IncentiveModel::RunSteps: step_begin does not match state.step()");
  }
}

void IncentiveModel::RunSteps(StakeState& state, std::uint64_t step_begin,
                              std::uint64_t step_count,
                              RngStream& rng) const {
  // Reference implementation and conformance oracle: the batched overrides
  // must be indistinguishable from this loop (state AND RNG sequence).
  CheckRunStepsBegin(state, step_begin);
  for (std::uint64_t s = 0; s < step_count; ++s) {
    Step(state, rng);
    state.AdvanceStep();
  }
}

void IncentiveModel::RunGame(StakeState& state, RngStream& rng,
                             std::uint64_t steps) const {
  RunSteps(state, state.step(), steps, rng);
}

void ValidateReward(double w, const char* what) {
  if (!(w > 0.0)) {
    throw std::invalid_argument(std::string(what) + " must be positive");
  }
}

}  // namespace fairchain::protocol
