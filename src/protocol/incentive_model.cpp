#include "protocol/incentive_model.hpp"

#include <stdexcept>

#include "protocol/lane_state.hpp"

namespace fairchain::protocol {

void CheckRunStepsBegin(const StakeState& state, std::uint64_t step_begin) {
  if (state.step() != step_begin) {
    throw std::invalid_argument(
        "IncentiveModel::RunSteps: step_begin does not match state.step()");
  }
}

void CheckRunLaneStepsBegin(const LaneStakeState& block,
                            std::uint64_t step_begin) {
  if (block.step() != step_begin) {
    throw std::invalid_argument(
        "IncentiveModel::RunLaneSteps: step_begin does not match "
        "block.step()");
  }
}

void IncentiveModel::RunLaneSteps(LaneStakeState& block,
                                  std::uint64_t step_begin,
                                  std::uint64_t step_count,
                                  PhiloxLanes& rng) const {
  (void)block;
  (void)step_begin;
  (void)step_count;
  (void)rng;
  // No generic fallback exists: lane stepping changes the RNG discipline,
  // so a silent scalar emulation here would quietly break the "lane l ==
  // PhiloxStream(seed, first_lane + l)" contract the vectorized campaign
  // mode relies on.  Callers gate on SupportsLaneStepping().
  throw std::logic_error(name() +
                         ": RunLaneSteps is not supported by this model");
}

void IncentiveModel::RunSteps(StakeState& state, std::uint64_t step_begin,
                              std::uint64_t step_count,
                              RngStream& rng) const {
  // Reference implementation and conformance oracle: the batched overrides
  // must be indistinguishable from this loop (state AND RNG sequence).
  CheckRunStepsBegin(state, step_begin);
  for (std::uint64_t s = 0; s < step_count; ++s) {
    Step(state, rng);
    state.AdvanceStep();
  }
}

void IncentiveModel::RunGame(StakeState& state, RngStream& rng,
                             std::uint64_t steps) const {
  RunSteps(state, state.step(), steps, rng);
}

void ValidateReward(double w, const char* what) {
  if (!(w > 0.0)) {
    throw std::invalid_argument(std::string(what) + " must be positive");
  }
}

}  // namespace fairchain::protocol
