#include "protocol/ml_pos.hpp"

#include "protocol/batched_steps.hpp"
#include "protocol/lane_steps.hpp"

namespace fairchain::protocol {

MlPosModel::MlPosModel(double w) : w_(w) { ValidateReward(w, "MlPosModel: w"); }

void MlPosModel::Step(StakeState& state, RngStream& rng) const {
  // Proposer selection proportional to current effective stake: one O(log m)
  // sampler descent, then an O(log m) reinforcement of the winner — the
  // Pólya-urn step that used to cost a full O(m) cumulative scan.
  const std::size_t winner = state.SampleProportionalToStake(rng);
  state.Credit(winner, w_, /*compounds=*/true);
}

void MlPosModel::RunSteps(StakeState& state, std::uint64_t step_begin,
                          std::uint64_t step_count, RngStream& rng) const {
  CheckRunStepsBegin(state, step_begin);
  batched::RunCompoundingSteps(state, w_, step_count, rng);
}

void MlPosModel::RunLaneSteps(LaneStakeState& block,
                              std::uint64_t step_begin,
                              std::uint64_t step_count,
                              PhiloxLanes& rng) const {
  CheckRunLaneStepsBegin(block, step_begin);
  // Pólya urn per lane: each lane's winner reinforces that lane's tree.
  lanes::RunCompoundingLaneSteps(block, w_, step_count, rng);
}

double MlPosModel::WinProbability(const StakeState& state,
                                  std::size_t i) const {
  return state.StakeShare(i);
}

}  // namespace fairchain::protocol
