#include "protocol/ml_pos.hpp"

namespace fairchain::protocol {

MlPosModel::MlPosModel(double w) : w_(w) { ValidateReward(w, "MlPosModel: w"); }

void MlPosModel::Step(StakeState& state, RngStream& rng) const {
  // Proposer selection proportional to current effective stake.
  const double target = rng.NextDouble() * state.total_stake();
  double cumulative = 0.0;
  const std::size_t n = state.miner_count();
  std::size_t winner = n - 1;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    cumulative += state.stake(i);
    if (target < cumulative) {
      winner = i;
      break;
    }
  }
  state.Credit(winner, w_, /*compounds=*/true);
}

double MlPosModel::WinProbability(const StakeState& state,
                                  std::size_t i) const {
  return state.StakeShare(i);
}

}  // namespace fairchain::protocol
