// Name-to-model factory: the single place that maps a protocol's CLI /
// scenario-spec name ("pow", "mlpos", ...) to a constructed IncentiveModel.
// The fairchain CLI and the sim layer's campaign runner both build models
// through this, so a new protocol registers here once and is immediately
// usable from `fairchain simulate`, scenario specs, and the registry.

#ifndef FAIRCHAIN_PROTOCOL_MODEL_FACTORY_HPP_
#define FAIRCHAIN_PROTOCOL_MODEL_FACTORY_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "protocol/incentive_model.hpp"

namespace fairchain::protocol {

/// Constructs the model named `name` at the given parameters.  `w` is the
/// block / proposer reward, `v` the inflation reward (C-PoS, Algorand,
/// EOS), `shards` the C-PoS committee count; parameters a model does not
/// take are ignored.  Throws std::invalid_argument for an unknown name,
/// listing the known ones.
std::unique_ptr<IncentiveModel> MakeModel(const std::string& name, double w,
                                          double v, std::uint32_t shards);

/// The names MakeModel accepts, in a stable presentation order.
const std::vector<std::string>& KnownModelNames();

/// True when `name` is accepted by MakeModel.
bool IsKnownModelName(const std::string& name);

}  // namespace fairchain::protocol

#endif  // FAIRCHAIN_PROTOCOL_MODEL_FACTORY_HPP_
