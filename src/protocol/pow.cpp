#include "protocol/pow.hpp"

namespace fairchain::protocol {

PowModel::PowModel(double w) : w_(w) { ValidateReward(w, "PowModel: w"); }

void PowModel::Step(StakeState& state, RngStream& rng) const {
  // Proportional proposer selection over the state's stake sampler:
  // one uniform draw, O(log m).  PoW stakes never change, so the sampler is
  // never even updated between steps.
  const std::size_t winner = state.SampleProportionalToStake(rng);
  state.Credit(winner, w_, /*compounds=*/false);
}

double PowModel::WinProbability(const StakeState& state,
                                std::size_t i) const {
  return state.StakeShare(i);
}

}  // namespace fairchain::protocol
