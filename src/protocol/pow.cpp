#include "protocol/pow.hpp"

#include "protocol/batched_steps.hpp"
#include "protocol/lane_steps.hpp"

namespace fairchain::protocol {

PowModel::PowModel(double w) : w_(w) { ValidateReward(w, "PowModel: w"); }

void PowModel::Step(StakeState& state, RngStream& rng) const {
  // Proportional proposer selection over the state's stake sampler:
  // one uniform draw, O(log m).  PoW stakes never change, so the sampler
  // is never updated between steps and the branchless static-stake
  // descent applies (identical winners, ~2x faster on flat trees).
  const std::size_t winner = state.SampleProportionalToStaticStake(rng);
  state.Credit(winner, w_, /*compounds=*/false);
}

void PowModel::RunSteps(StakeState& state, std::uint64_t step_begin,
                        std::uint64_t step_count, RngStream& rng) const {
  CheckRunStepsBegin(state, step_begin);
  // Non-compounding: stakes (and the sampler tree) never change, so the
  // whole batch is sampler descents plus O(1) income credits.
  batched::RunStaticIncomeSteps(state, w_, step_count, rng);
}

void PowModel::RunLaneSteps(LaneStakeState& block, std::uint64_t step_begin,
                            std::uint64_t step_count,
                            PhiloxLanes& rng) const {
  CheckRunLaneStepsBegin(block, step_begin);
  // The frozen tree serves every lane; K replications advance per
  // multi-lane descent.
  lanes::RunStaticIncomeLaneSteps(block, w_, step_count, rng);
}

double PowModel::WinProbability(const StakeState& state,
                                std::size_t i) const {
  return state.StakeShare(i);
}

}  // namespace fairchain::protocol
