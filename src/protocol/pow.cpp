#include "protocol/pow.hpp"

namespace fairchain::protocol {

namespace {

// Proportional proposer selection over the state's effective stakes.
// Shared by PoW / ML-PoS; allocation-free.
std::size_t SampleProposerByStake(const StakeState& state, RngStream& rng) {
  const double target = rng.NextDouble() * state.total_stake();
  double cumulative = 0.0;
  const std::size_t n = state.miner_count();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    cumulative += state.stake(i);
    if (target < cumulative) return i;
  }
  return n - 1;
}

}  // namespace

PowModel::PowModel(double w) : w_(w) { ValidateReward(w, "PowModel: w"); }

void PowModel::Step(StakeState& state, RngStream& rng) const {
  const std::size_t winner = SampleProposerByStake(state, rng);
  state.Credit(winner, w_, /*compounds=*/false);
}

double PowModel::WinProbability(const StakeState& state,
                                std::size_t i) const {
  return state.StakeShare(i);
}

}  // namespace fairchain::protocol
