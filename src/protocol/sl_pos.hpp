// SL-PoS: the single-lottery Proof-of-Stake incentive model (Section 2.3),
// as deployed by NXT.
//
// Each block is a single lottery: miner i draws a deadline
//   T_i = basetime * Hash(pk_i, ...) / stake_i,
// and the smallest deadline wins.  Since Hash/2^256 is uniform on (0, 1),
// T_i ~ U(0, basetime / stake_i) — a *uniform*, not exponential, race, which
// is why the win probability is NOT proportional to stake (a poorer miner A
// with s_a <= s_b wins with probability s_a / (2 s_b) < s_a/(s_a+s_b)).
// With compounding rewards the stake share is a stochastic-approximation
// process whose only stable fixed points are 0 and 1 (Theorem 4.9): the
// game monopolises almost surely.

#ifndef FAIRCHAIN_PROTOCOL_SL_POS_HPP_
#define FAIRCHAIN_PROTOCOL_SL_POS_HPP_

#include "protocol/incentive_model.hpp"

namespace fairchain::protocol {

/// Single-lottery PoS: uniform-deadline race, reward compounds.
class SlPosModel : public IncentiveModel {
 public:
  /// Creates an SL-PoS model with per-block reward `w` > 0.
  explicit SlPosModel(double w);

  std::string name() const override { return "SL-PoS"; }
  void Step(StakeState& state, RngStream& rng) const override;
  void RunSteps(StakeState& state, std::uint64_t step_begin,
                std::uint64_t step_count, RngStream& rng) const override;
  double RewardPerStep() const override { return w_; }

  /// Exact win probability for the next block (two-miner closed form of
  /// Eq. (1), Lemma 6.1 quadrature for three or more miners).
  double WinProbability(const StakeState& state, std::size_t i) const override;

  bool RewardCompounds() const override { return true; }

  /// Per-block reward.
  double block_reward() const { return w_; }

 private:
  /// One deadline race: exactly one uniform per positive-stake miner, in
  /// miner order — the draw sequence Step and RunSteps share.
  static std::size_t RunLottery(const StakeState& state, RngStream& rng);

  double w_;
};

}  // namespace fairchain::protocol

#endif  // FAIRCHAIN_PROTOCOL_SL_POS_HPP_
