#include "protocol/hybrid.hpp"

#include <stdexcept>

namespace fairchain::protocol {

HybridModel::HybridModel(double w, double alpha, std::vector<double> fixed)
    : w_(w), alpha_(alpha), fixed_(std::move(fixed)) {
  ValidateReward(w, "HybridModel: w");
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument("HybridModel: alpha must be in [0, 1]");
  }
  if (fixed_.empty()) {
    throw std::invalid_argument("HybridModel: fixed resources empty");
  }
  for (const double f : fixed_) {
    if (f < 0.0) {
      throw std::invalid_argument("HybridModel: negative fixed resource");
    }
    fixed_total_ += f;
  }
  if (!(fixed_total_ > 0.0)) {
    throw std::invalid_argument("HybridModel: zero total fixed resource");
  }
}

double HybridModel::Weight(const StakeState& state, std::size_t i) const {
  return alpha_ * (fixed_[i] / fixed_total_) +
         (1.0 - alpha_) * state.StakeShare(i);
}

void HybridModel::Step(StakeState& state, RngStream& rng) const {
  const std::size_t n = state.miner_count();
  if (n != fixed_.size()) {
    throw std::invalid_argument(
        "HybridModel: state/fixed-resource miner count mismatch");
  }
  // Weights sum to 1 by construction (convex combination of two
  // probability vectors), so sample directly against a unit total.
  const double target = rng.NextDouble();
  double cumulative = 0.0;
  std::size_t winner = n - 1;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    cumulative += Weight(state, i);
    if (target < cumulative) {
      winner = i;
      break;
    }
  }
  state.Credit(winner, w_, /*compounds=*/true);
}

double HybridModel::WinProbability(const StakeState& state,
                                   std::size_t i) const {
  if (state.miner_count() != fixed_.size()) {
    throw std::invalid_argument(
        "HybridModel: state/fixed-resource miner count mismatch");
  }
  return Weight(state, i);
}

}  // namespace fairchain::protocol
