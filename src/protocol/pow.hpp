// PoW incentive model (Section 2.1).
//
// The proposer of each block is the winner of a race between independent
// Poisson processes with rates proportional to hash power; equivalently each
// block is won by miner i with probability H_i / Σ H_j, independently of all
// previous outcomes.  Rewards are currency, not hash power, so they never
// feed back into the competition: PoW does not compound.

#ifndef FAIRCHAIN_PROTOCOL_POW_HPP_
#define FAIRCHAIN_PROTOCOL_POW_HPP_

#include "protocol/incentive_model.hpp"

namespace fairchain::protocol {

/// Proof-of-Work: i.i.d. proportional proposer selection, block reward `w`.
class PowModel : public IncentiveModel {
 public:
  /// Creates a PoW model with per-block reward `w` > 0.
  explicit PowModel(double w);

  std::string name() const override { return "PoW"; }
  void Step(StakeState& state, RngStream& rng) const override;
  void RunSteps(StakeState& state, std::uint64_t step_begin,
                std::uint64_t step_count, RngStream& rng) const override;
  bool SupportsLaneStepping() const override { return true; }
  void RunLaneSteps(LaneStakeState& block, std::uint64_t step_begin,
                    std::uint64_t step_count,
                    PhiloxLanes& rng) const override;
  double RewardPerStep() const override { return w_; }
  double WinProbability(const StakeState& state, std::size_t i) const override;
  bool RewardCompounds() const override { return false; }

  /// Per-block reward.
  double block_reward() const { return w_; }

 private:
  double w_;
};

}  // namespace fairchain::protocol

#endif  // FAIRCHAIN_PROTOCOL_POW_HPP_
