#include "protocol/lane_state.hpp"

#include <stdexcept>

namespace fairchain::protocol {

void LaneStakeState::Reset(const std::vector<double>& initial,
                           std::size_t lane_count, bool compounding) {
  if (initial.empty()) {
    throw std::invalid_argument("LaneStakeState: initial stakes are empty");
  }
  double total = 0.0;
  for (const double stake : initial) {
    if (stake < 0.0) {
      throw std::invalid_argument("LaneStakeState: negative initial stake");
    }
    total += stake;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("LaneStakeState: initial stakes sum to zero");
  }
  if (lane_count == 0 || lane_count > kMaxFenwickLanes) {
    throw std::invalid_argument(
        "LaneStakeState: lane count must be in [1, kMaxFenwickLanes]");
  }
  initial_ = initial;
  lane_count_ = lane_count;
  compounding_ = compounding;
  income_.assign(initial.size() * lane_count, 0.0);
  total_income_ = 0.0;
  step_ = 0;
  if (compounding) {
    trees_.Build(initial, lane_count);
  } else {
    sampler_.Build(initial);
  }
}

void LaneStakeState::WealthVector(std::size_t lane,
                                  std::vector<double>* out) const {
  const std::size_t miners = initial_.size();
  out->resize(miners);
  for (std::size_t i = 0; i < miners; ++i) {
    (*out)[i] = initial_[i] + income_[i * lane_count_ + lane];
  }
}

}  // namespace fairchain::protocol
