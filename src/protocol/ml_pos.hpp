// ML-PoS: the multi-lottery Proof-of-Stake incentive model (Section 2.2),
// as deployed by Qtum and Blackcoin.
//
// Every timestamp, each miner checks one staking kernel; the first success
// wins.  Because the per-timestamp success probabilities are tiny, the next
// block is won with probability (asymptotically) proportional to *current*
// stake, and the reward compounds into future stake — a classical Pólya urn.
// The fraction of blocks won converges to Beta(a/w, b/w) almost surely
// (Section 4.3), which is why ML-PoS preserves expectational fairness but
// can fail robust fairness.

#ifndef FAIRCHAIN_PROTOCOL_ML_POS_HPP_
#define FAIRCHAIN_PROTOCOL_ML_POS_HPP_

#include "protocol/incentive_model.hpp"

namespace fairchain::protocol {

/// Multi-lottery PoS: proposer ∝ current stake, reward compounds.
class MlPosModel : public IncentiveModel {
 public:
  /// Creates an ML-PoS model with per-block reward `w` > 0 (expressed in the
  /// same unit as the initial stakes; the paper normalises initial stakes to
  /// a total of 1, making `w` the reward-to-circulation ratio).
  explicit MlPosModel(double w);

  std::string name() const override { return "ML-PoS"; }
  void Step(StakeState& state, RngStream& rng) const override;
  void RunSteps(StakeState& state, std::uint64_t step_begin,
                std::uint64_t step_count, RngStream& rng) const override;
  bool SupportsLaneStepping() const override { return true; }
  void RunLaneSteps(LaneStakeState& block, std::uint64_t step_begin,
                    std::uint64_t step_count,
                    PhiloxLanes& rng) const override;
  double RewardPerStep() const override { return w_; }
  double WinProbability(const StakeState& state, std::size_t i) const override;
  bool RewardCompounds() const override { return true; }

  /// Per-block reward.
  double block_reward() const { return w_; }

 private:
  double w_;
};

}  // namespace fairchain::protocol

#endif  // FAIRCHAIN_PROTOCOL_ML_POS_HPP_
