// LaneStakeState: the state of K replications of ONE game, advanced in
// lockstep.
//
// The scalar StakeState carries one replication; campaigns run thousands
// of replications of the same cell, and for the protocols whose dynamics
// are one categorical draw + one credit per block the only thing that
// differs between replications is the randomness.  This class lays the
// per-replication state out structure-of-arrays — lane l's income for
// miner i lives at income[i * K + l] — so the lockstep kernels in
// lane_steps.hpp touch K adjacent values per operation and the inner
// loops vectorize across replications instead of meandering through K
// separate object graphs.
//
// What is shared vs per-lane:
//   * initial stakes, miner count, and the step counter are SHARED — all
//     lanes advance the same block index of the same cell;
//   * total credited income is SHARED: every tracked protocol credits a
//     constant reward per block, so each lane's total after s steps is
//     the identical sum 0 + w + ... + w.  Keeping one accumulator makes
//     the lane totals bit-identical to a scalar replay's;
//   * per-miner income is PER-LANE (the SoA matrix);
//   * effective stake is shared and frozen for static protocols (one
//     FenwickSampler serves every lane) and per-lane for compounding
//     protocols (a FenwickLanes column per lane), selected by the
//     `compounding` flag at Reset.
//
// Semantics contract: lane l of a LaneStakeState evolves exactly like a
// scalar StakeState fed the same winners — same credit order, same
// floating-point additions (pinned by tests/protocol/lane_steps_
// conformance_test.cpp).  Reward withholding is NOT modelled here: the
// vectorized campaign mode only admits non-compounding protocols (where
// withholding is vacuously a no-op), and the compounding lane kernels
// exist for lockstep experimentation at withhold_period 0.

#ifndef FAIRCHAIN_PROTOCOL_LANE_STATE_HPP_
#define FAIRCHAIN_PROTOCOL_LANE_STATE_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/fenwick.hpp"

namespace fairchain::protocol {

/// SoA state for K lockstep replications of one game.
class LaneStakeState {
 public:
  LaneStakeState() = default;

  /// Rebinds to a cell: initial resource vector, lane count, and whether
  /// rewards feed back into stake.  Reuses storage across calls (a
  /// replication block resets once per K replications, and repeated
  /// same-shape resets must not allocate).  Throws std::invalid_argument
  /// on an empty / negative / zero-sum initial vector or a lane count
  /// outside [1, kMaxFenwickLanes].
  void Reset(const std::vector<double>& initial, std::size_t lane_count,
             bool compounding);

  std::size_t miner_count() const { return initial_.size(); }
  std::size_t lane_count() const { return lane_count_; }
  bool compounding() const { return compounding_; }

  /// Number of completed steps — shared: lanes advance in lockstep.
  std::uint64_t step() const { return step_; }

  /// Cumulative income of miner `miner` on lane `lane`.
  double income(std::size_t lane, std::size_t miner) const {
    return income_[miner * lane_count_ + lane];
  }

  /// Total credited income — shared across lanes (constant per-block
  /// reward; see file comment).
  double total_income() const { return total_income_; }

  /// λ of miner `miner` on lane `lane` (0 before any reward).
  double RewardFraction(std::size_t lane, std::size_t miner) const {
    return total_income_ > 0.0
               ? income_[miner * lane_count_ + lane] / total_income_
               : 0.0;
  }

  /// Miner `miner`'s current effective stake on lane `lane` (O(log m) in
  /// compounding mode; for tests and win-probability spot checks).
  double stake(std::size_t lane, std::size_t miner) const {
    return compounding_ ? trees_.Weight(lane, miner) : initial_[miner];
  }

  /// Lane `lane`'s wealth vector — initial resource plus credited income
  /// per miner — resized into `out`; feeds the population concentration
  /// metrics exactly like StakeState::WealthVector.
  void WealthVector(std::size_t lane, std::vector<double>* out) const;

  // --- Lockstep hot-path hooks (lane_steps.hpp kernels) -----------------

  /// The frozen shared tree (static mode only).
  const FenwickSampler& shared_sampler() const { return sampler_; }

  /// The per-lane trees (compounding mode only).
  FenwickLanes& lane_trees() { return trees_; }
  const FenwickLanes& lane_trees() const { return trees_; }

  /// Credits `w` to winners[l] on every lane l, income only — the
  /// static-income step body.  One scatter into the SoA matrix plus one
  /// shared-total add.
  void CreditIncomeLanes(const std::uint32_t* winners, double w) {
    const std::size_t stride = lane_count_;
    double* income = income_.data();
    for (std::size_t l = 0; l < stride; ++l) {  // dependency-free scatter
      income[winners[l] * stride + l] += w;
    }
    total_income_ += w;
  }

  /// Credits `w` to winners[l] on every lane l AND reinforces each lane's
  /// tree — the compounding step body.
  void CreditCompoundingLanes(const std::uint32_t* winners, double w) {
    CreditIncomeLanes(winners, w);
    for (std::size_t l = 0; l < lane_count_; ++l) {
      trees_.Add(l, winners[l], w);
    }
  }

  /// Marks the end of a lockstep step (all lanes at once).
  void AdvanceStep() { ++step_; }

  /// The raw SoA income matrix ([miner * lane_count + lane]) — for the
  /// fused batch kernel (lane_kernels.cpp), which keeps hot income rows in
  /// registers across a whole step batch instead of scattering per step.
  double* income_data() { return income_.data(); }

  /// Batch equivalent of `step_count` x (CreditIncomeLanes total add +
  /// AdvanceStep) for a kernel that has already applied the per-miner
  /// credits itself.  The shared total is accumulated by REPEATED addition
  /// — not `w * step_count` — so it stays bit-identical to the per-step
  /// path (and to a scalar replay) despite rounding.
  void FinishKernelSteps(double w, std::uint64_t step_count) {
    for (std::uint64_t s = 0; s < step_count; ++s) total_income_ += w;
    step_ += step_count;
  }

 private:
  std::vector<double> initial_;
  std::vector<double> income_;  // [miner * lane_count_ + lane]
  FenwickSampler sampler_;      // static mode: one tree for all lanes
  FenwickLanes trees_;          // compounding mode: one tree per lane
  std::size_t lane_count_ = 0;
  double total_income_ = 0.0;
  std::uint64_t step_ = 0;
  bool compounding_ = false;
};

}  // namespace fairchain::protocol

#endif  // FAIRCHAIN_PROTOCOL_LANE_STATE_HPP_
