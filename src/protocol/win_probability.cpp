#include "protocol/win_probability.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/integrate.hpp"

namespace fairchain::protocol {

double ProportionalWinProbability(const std::vector<double>& resources,
                                  std::size_t i) {
  if (i >= resources.size()) {
    throw std::invalid_argument("ProportionalWinProbability: index range");
  }
  double total = 0.0;
  for (const double r : resources) {
    if (r < 0.0) {
      throw std::invalid_argument(
          "ProportionalWinProbability: negative resource");
    }
    total += r;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("ProportionalWinProbability: zero total");
  }
  return resources[i] / total;
}

double MlPosTwoMinerWinProbabilityExact(double p_a, double p_b) {
  if (!(p_a > 0.0) || !(p_b > 0.0) || p_a > 1.0 || p_b > 1.0) {
    throw std::invalid_argument(
        "MlPosTwoMinerWinProbabilityExact: p in (0, 1] required");
  }
  return (p_a - p_a * p_b / 2.0) / (p_a + p_b - p_a * p_b);
}

double SlPosTwoMinerWinProbability(double s_a, double s_b) {
  if (s_a < 0.0 || s_b < 0.0 || (s_a == 0.0 && s_b == 0.0)) {
    throw std::invalid_argument(
        "SlPosTwoMinerWinProbability: stakes must be non-negative with a "
        "positive total");
  }
  // A zero-stake miner draws an infinite deadline and never wins.
  if (s_a == 0.0) return 0.0;
  if (s_b == 0.0) return 1.0;
  if (s_a <= s_b) return s_a / (2.0 * s_b);
  return 1.0 - s_b / (2.0 * s_a);
}

double SlPosTwoMinerWinProbabilityDiscrete(double s_a, double s_b) {
  if (!(s_a > 0.0) || !(s_b > 0.0)) {
    throw std::invalid_argument(
        "SlPosTwoMinerWinProbabilityDiscrete: stakes must be positive");
  }
  // (s_a / 2 s_b) * (2^256 - 1) / 2^256  +  1 / 2^257.
  constexpr double kTwo256 = 1.157920892373162e77;  // 2^256
  if (s_a <= s_b) {
    return s_a / (2.0 * s_b) * ((kTwo256 - 1.0) / kTwo256) +
           1.0 / (2.0 * kTwo256);
  }
  return 1.0 - SlPosTwoMinerWinProbabilityDiscrete(s_b, s_a);
}

double SlPosMultiMinerWinProbability(const std::vector<double>& stakes,
                                     std::size_t i) {
  if (i >= stakes.size()) {
    throw std::invalid_argument("SlPosMultiMinerWinProbability: index range");
  }
  if (stakes.size() == 1) return 1.0;
  double s_max = 0.0;
  for (const double s : stakes) {
    if (s < 0.0) {
      throw std::invalid_argument(
          "SlPosMultiMinerWinProbability: negative stake");
    }
    s_max = std::max(s_max, s);
  }
  if (!(s_max > 0.0)) {
    throw std::invalid_argument(
        "SlPosMultiMinerWinProbability: all stakes are zero");
  }
  // A zero-stake miner draws an infinite deadline: it never wins and never
  // constrains the others (its survival factor is identically 1).
  if (stakes[i] == 0.0) return 0.0;
  const double upper = 1.0 / s_max;
  const double s_i = stakes[i];
  auto integrand = [&stakes, i](double z) {
    double product = 1.0;
    for (std::size_t j = 0; j < stakes.size(); ++j) {
      if (j == i) continue;
      product *= std::max(0.0, 1.0 - stakes[j] * z);
    }
    return product;
  };
  // The integrand is a polynomial of degree m - 1 (m = #miners), so order-32
  // Gauss-Legendre is exact for m <= 64; fall back to adaptive Simpson above.
  double integral;
  if (stakes.size() <= 64) {
    integral = math::GaussLegendre(integrand, 0.0, upper, 32);
  } else {
    integral = math::AdaptiveSimpson(integrand, 0.0, upper, 1e-13);
  }
  return s_i * integral;
}

std::vector<double> SlPosWinProbabilities(const std::vector<double>& stakes) {
  std::vector<double> probabilities(stakes.size());
  for (std::size_t i = 0; i < stakes.size(); ++i) {
    probabilities[i] = SlPosMultiMinerWinProbability(stakes, i);
  }
  return probabilities;
}

}  // namespace fairchain::protocol
