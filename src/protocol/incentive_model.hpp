// IncentiveModel: the abstract interface every blockchain incentive
// mechanism implements.
//
// A model advances a StakeState by one "step" — a block for PoW / ML-PoS /
// SL-PoS / FSL-PoS, a mining epoch for C-PoS / Algorand / EOS — crediting
// rewards according to the protocol's rules.  Models are immutable and
// thread-compatible: all mutable state lives in StakeState and RngStream, so
// a single model instance can drive thousands of parallel replications.

#ifndef FAIRCHAIN_PROTOCOL_INCENTIVE_MODEL_HPP_
#define FAIRCHAIN_PROTOCOL_INCENTIVE_MODEL_HPP_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "protocol/stake_state.hpp"
#include "support/rng.hpp"

namespace fairchain {
class PhiloxLanes;  // support/philox.hpp
}  // namespace fairchain

namespace fairchain::protocol {

class LaneStakeState;  // protocol/lane_state.hpp

/// Abstract incentive mechanism (Section 2 of the paper).
class IncentiveModel {
 public:
  virtual ~IncentiveModel() = default;

  /// Human-readable protocol name ("PoW", "ML-PoS", ...).
  virtual std::string name() const = 0;

  /// Executes one reward step: selects proposer(s) using `rng` and credits
  /// rewards into `state`.  Implementations must not call
  /// StakeState::AdvanceStep — the driver does, so decorators can observe
  /// boundaries.
  virtual void Step(StakeState& state, RngStream& rng) const = 0;

  /// Advances `state` by `step_count` whole steps — the batched hot path.
  ///
  /// Semantics are defined BY Step: RunSteps must perform exactly the state
  /// transitions and RNG draws (same count, same order) of
  ///
  ///     for (uint64 s = 0; s < step_count; ++s) { Step(state, rng);
  ///                                               state.AdvanceStep(); }
  ///
  /// which is also the base-class implementation — the reference the
  /// per-protocol conformance tests pin every override against
  /// (tests/protocol/run_steps_conformance_test.cpp).  `step_begin` is the
  /// number of steps completed before the call and must equal
  /// `state.step()` (throws std::invalid_argument otherwise): passing it
  /// explicitly lets checkpoint-segment drivers mis-count loudly instead of
  /// recording λ at silently shifted steps.
  ///
  /// Overrides exist for the paper's six protocols so one virtual call
  /// amortises over a whole checkpoint segment and the inner loop inlines
  /// the sampler descent and credit arms (no per-step virtual dispatch, no
  /// allocation).
  virtual void RunSteps(StakeState& state, std::uint64_t step_begin,
                        std::uint64_t step_count, RngStream& rng) const;

  /// True when the model implements RunLaneSteps — the lockstep
  /// replication-vectorized stepping mode.  Orthogonal to
  /// RewardCompounds(): the four one-draw-per-block protocols (PoW, NEO,
  /// ML-PoS, FSL-PoS) all support lane stepping, but the campaign layer
  /// only *selects* it for non-compounding protocols (see
  /// core/replication_block_workspace.hpp for the eligibility rule and
  /// the statistical-equivalence contract).
  virtual bool SupportsLaneStepping() const { return false; }

  /// Advances all lanes of `block` by `step_count` lockstep steps, lane l
  /// consuming exactly the stream PhiloxStream(seed, first_lane + l)
  /// carried by `rng`.  Lane semantics: each lane evolves as a scalar
  /// StakeState replaying the same winners would (per-lane bit-exactness,
  /// pinned by the lane conformance suite); across generators the results
  /// are statistically — not byte — equivalent to the RngStream paths.
  /// `step_begin` must equal `block.step()` (throws std::invalid_argument
  /// otherwise, mirroring RunSteps).  Base implementation throws
  /// std::logic_error; models report availability via
  /// SupportsLaneStepping().
  virtual void RunLaneSteps(LaneStakeState& block, std::uint64_t step_begin,
                            std::uint64_t step_count, PhiloxLanes& rng) const;

  /// Total reward issued per step (w, or w + v for compound protocols);
  /// used to normalise λ and for analytic bounds.
  virtual double RewardPerStep() const = 0;

  /// Probability that miner `i` proposes the next block given the current
  /// state (for epoch protocols: the per-slot selection probability).
  /// Closed forms from Section 2 / Lemma 6.1.
  virtual double WinProbability(const StakeState& state,
                                std::size_t i) const = 0;

  /// True when credited rewards feed back into future mining power
  /// (the defining property of PoS; false for PoW and NEO).
  virtual bool RewardCompounds() const = 0;

  /// Runs a full game of `steps` steps on `state` (Step + AdvanceStep).
  void RunGame(StakeState& state, RngStream& rng, std::uint64_t steps) const;
};

/// Validates a per-block/epoch reward parameter; throws on w <= 0.
void ValidateReward(double w, const char* what);

/// Shared RunSteps precondition: throws std::invalid_argument unless
/// `state.step() == step_begin`.  Every override calls this first.
void CheckRunStepsBegin(const StakeState& state, std::uint64_t step_begin);

/// Lane analogue of CheckRunStepsBegin for the RunLaneSteps overrides.
void CheckRunLaneStepsBegin(const LaneStakeState& block,
                            std::uint64_t step_begin);

}  // namespace fairchain::protocol

#endif  // FAIRCHAIN_PROTOCOL_INCENTIVE_MODEL_HPP_
