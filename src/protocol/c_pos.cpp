#include "protocol/c_pos.hpp"

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace fairchain::protocol {

CPosModel::CPosModel(double w, double v, std::uint32_t shards)
    : w_(w), v_(v), shards_(shards) {
  ValidateReward(w, "CPosModel: w");
  if (v < 0.0) throw std::invalid_argument("CPosModel: v must be >= 0");
  if (shards == 0) {
    throw std::invalid_argument("CPosModel: shards must be >= 1");
  }
}

void CPosModel::Step(StakeState& state, RngStream& rng) const {
  RunEpoch(state, rng, /*withholding=*/state.withhold_period() != 0);
}

void CPosModel::RunEpoch(StakeState& state, RngStream& rng,
                         bool withholding) const {
  const std::size_t n = state.miner_count();
  const double total = state.total_stake();
  const double per_slot_reward = w_ / static_cast<double>(shards_);

  // All rewards in an epoch are computed against the epoch-start stake
  // distribution (the paper's X ~ Bin(P, S_A / (S_A + S_B)) snapshot).
  //
  // Proposer slots follow a multinomial over shares, sampled as P
  // independent categorical draws through the stake sampler — O(P log m)
  // instead of the earlier conditional-binomial chain's O(m).  All slots
  // are drawn BEFORE any reward is credited so every draw sees the
  // epoch-start distribution.  The winner buffer is the state's index
  // scratch: sized on the first epoch, reused by every later one.
  std::vector<std::size_t>& winners = state.index_scratch();
  if (winners.size() < shards_) winners.resize(shards_);
  for (std::uint32_t slot = 0; slot < shards_; ++slot) {
    winners[slot] = state.SampleProportionalToStake(rng);
  }

  // Inflation (attester) reward: exactly proportional to the epoch-start
  // share.  Crediting miner i mutates only stake_[i], which is read exactly
  // once — before its own credit — and `total` is the epoch-start value.
  if (v_ > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      const double stake = state.stake(i);  // epoch-start value for miner i
      if (stake > 0.0) {
        const double reward = v_ * (stake / total);
        if (withholding) {
          state.CreditWithheld(i, reward);
        } else {
          state.CreditCompounding(i, reward);
        }
      }
    }
  }

  // Proposer rewards for the sampled slots.
  for (std::uint32_t slot = 0; slot < shards_; ++slot) {
    if (withholding) {
      state.CreditWithheld(winners[slot], per_slot_reward);
    } else {
      state.CreditCompounding(winners[slot], per_slot_reward);
    }
  }
}

void CPosModel::RunSteps(StakeState& state, std::uint64_t step_begin,
                         std::uint64_t step_count, RngStream& rng) const {
  CheckRunStepsBegin(state, step_begin);
  const bool withholding = state.withhold_period() != 0;
  for (std::uint64_t s = 0; s < step_count; ++s) {
    RunEpoch(state, rng, withholding);
    state.AdvanceStep();
  }
}

double CPosModel::WinProbability(const StakeState& state,
                                 std::size_t i) const {
  return state.StakeShare(i);
}

}  // namespace fairchain::protocol
