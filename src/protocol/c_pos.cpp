#include "protocol/c_pos.hpp"

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace fairchain::protocol {

CPosModel::CPosModel(double w, double v, std::uint32_t shards)
    : w_(w), v_(v), shards_(shards) {
  ValidateReward(w, "CPosModel: w");
  if (v < 0.0) throw std::invalid_argument("CPosModel: v must be >= 0");
  if (shards == 0) {
    throw std::invalid_argument("CPosModel: shards must be >= 1");
  }
}

void CPosModel::Step(StakeState& state, RngStream& rng) const {
  const std::size_t n = state.miner_count();
  const double total = state.total_stake();
  const double per_slot_reward = w_ / static_cast<double>(shards_);

  // All rewards in an epoch are computed against the epoch-start stake
  // distribution (the paper's X ~ Bin(P, S_A / (S_A + S_B)) snapshot).
  //
  // Proposer slots follow a multinomial over shares, sampled as P
  // independent categorical draws through the stake sampler — O(P log m)
  // instead of the earlier conditional-binomial chain's O(m).  All slots
  // are drawn BEFORE any reward is credited so every draw sees the
  // epoch-start distribution.
  constexpr std::size_t kStackSlots = 256;
  std::size_t stack_winners[kStackSlots];
  std::vector<std::size_t> heap_winners;
  std::size_t* winners = stack_winners;
  if (shards_ > kStackSlots) {
    heap_winners.resize(shards_);
    winners = heap_winners.data();
  }
  for (std::uint32_t slot = 0; slot < shards_; ++slot) {
    winners[slot] = state.SampleProportionalToStake(rng);
  }

  // Inflation (attester) reward: exactly proportional to the epoch-start
  // share.  Crediting miner i mutates only stake_[i], which is read exactly
  // once — before its own credit — and `total` is the epoch-start value.
  if (v_ > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      const double stake = state.stake(i);  // epoch-start value for miner i
      if (stake > 0.0) {
        state.Credit(i, v_ * (stake / total), /*compounds=*/true);
      }
    }
  }

  // Proposer rewards for the sampled slots.
  for (std::uint32_t slot = 0; slot < shards_; ++slot) {
    state.Credit(winners[slot], per_slot_reward, /*compounds=*/true);
  }
}

double CPosModel::WinProbability(const StakeState& state,
                                 std::size_t i) const {
  return state.StakeShare(i);
}

}  // namespace fairchain::protocol
