#include "protocol/c_pos.hpp"

#include <stdexcept>

#include "math/distributions.hpp"

namespace fairchain::protocol {

CPosModel::CPosModel(double w, double v, std::uint32_t shards)
    : w_(w), v_(v), shards_(shards) {
  ValidateReward(w, "CPosModel: w");
  if (v < 0.0) throw std::invalid_argument("CPosModel: v must be >= 0");
  if (shards == 0) {
    throw std::invalid_argument("CPosModel: shards must be >= 1");
  }
}

void CPosModel::Step(StakeState& state, RngStream& rng) const {
  const std::size_t n = state.miner_count();
  const double total = state.total_stake();
  const double per_slot_reward = w_ / static_cast<double>(shards_);

  // All rewards in an epoch are computed against the epoch-start stake
  // distribution (the paper's X ~ Bin(P, S_A / (S_A + S_B)) snapshot).
  // Credits are applied as we sweep miner by miner; this is safe because
  // crediting miner i mutates only stake_[i], which is read exactly once —
  // before its own credit — and `total` / `remaining_stake` are derived
  // from epoch-start values.
  //
  // Proposer slots follow a multinomial over shares, sampled as a chain of
  // conditional binomials:  slots_i ~ Bin(remaining, s_i / remaining_stake).
  std::uint64_t remaining_slots = shards_;
  double remaining_stake = total;
  for (std::size_t i = 0; i < n; ++i) {
    const double stake = state.stake(i);  // epoch-start value for miner i
    double credit = 0.0;
    if (stake > 0.0) {
      // Inflation (attester) reward: exactly proportional to share.
      if (v_ > 0.0) credit += v_ * (stake / total);
      // Proposer reward for this miner's slots.
      if (remaining_slots > 0) {
        std::uint64_t slots;
        if (stake >= remaining_stake) {
          slots = remaining_slots;
        } else {
          slots = math::SampleBinomial(rng, remaining_slots,
                                       stake / remaining_stake);
        }
        remaining_slots -= slots;
        credit += per_slot_reward * static_cast<double>(slots);
      }
    }
    if (credit > 0.0) state.Credit(i, credit, /*compounds=*/true);
    remaining_stake -= stake;
  }
}

double CPosModel::WinProbability(const StakeState& state,
                                 std::size_t i) const {
  return state.StakeShare(i);
}

}  // namespace fairchain::protocol
