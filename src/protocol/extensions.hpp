// Extension incentive models discussed in Section 6.4 of the paper.
//
//   * NEO       — PoS proposer selection, but rewards are paid in a separate
//                 asset (NEO Gas) that carries no staking power; statistically
//                 identical to PoW, so both fairness notions hold long-term.
//   * Algorand  — inflation-only rewards proportional to stake; zero reward
//                 variance, both fairness notions hold trivially.
//   * EOS       — delegated PoS: each of the m delegates receives an
//                 inflation reward proportional to stake PLUS a constant
//                 proposer reward w/m regardless of stake; the constant part
//                 breaks expectational fairness for any non-uniform stake
//                 distribution.
//
// Wave and Vixify (also discussed in 6.4) are statistically identical to
// FSL-PoS / ML-PoS respectively and are covered by those models; see
// DESIGN.md.

#ifndef FAIRCHAIN_PROTOCOL_EXTENSIONS_HPP_
#define FAIRCHAIN_PROTOCOL_EXTENSIONS_HPP_

#include "protocol/incentive_model.hpp"

namespace fairchain::protocol {

/// NEO: stake-proportional proposer selection, non-compounding reward
/// (paid in a separate gas asset).
class NeoModel : public IncentiveModel {
 public:
  /// Creates a NEO model with per-block gas reward `w` > 0.
  explicit NeoModel(double w);

  std::string name() const override { return "NEO"; }
  void Step(StakeState& state, RngStream& rng) const override;
  void RunSteps(StakeState& state, std::uint64_t step_begin,
                std::uint64_t step_count, RngStream& rng) const override;
  bool SupportsLaneStepping() const override { return true; }
  void RunLaneSteps(LaneStakeState& block, std::uint64_t step_begin,
                    std::uint64_t step_count,
                    PhiloxLanes& rng) const override;
  double RewardPerStep() const override { return w_; }
  double WinProbability(const StakeState& state, std::size_t i) const override;
  bool RewardCompounds() const override { return false; }

 private:
  double w_;
};

/// Algorand: deterministic inflation reward proportional to stake; no
/// proposer reward.
class AlgorandModel : public IncentiveModel {
 public:
  /// Creates an Algorand model with per-epoch inflation total `v` > 0.
  explicit AlgorandModel(double v);

  std::string name() const override { return "Algorand"; }
  void Step(StakeState& state, RngStream& rng) const override;
  double RewardPerStep() const override { return v_; }
  /// No lottery; defined as the stake share for interface uniformity.
  double WinProbability(const StakeState& state, std::size_t i) const override;
  bool RewardCompounds() const override { return true; }

 private:
  double v_;
};

/// EOS: delegated PoS round — every miner (delegate) receives w/m constant
/// proposer reward plus v * share inflation.
class EosModel : public IncentiveModel {
 public:
  /// Creates an EOS model.
  ///
  /// \param w  total proposer reward per round (> 0), split equally
  /// \param v  total inflation reward per round (>= 0), split by stake
  EosModel(double w, double v);

  std::string name() const override { return "EOS"; }
  void Step(StakeState& state, RngStream& rng) const override;
  double RewardPerStep() const override { return w_ + v_; }
  /// Every delegate proposes the same number of blocks per round.
  double WinProbability(const StakeState& state, std::size_t i) const override;
  bool RewardCompounds() const override { return true; }

 private:
  double w_;
  double v_;
};

}  // namespace fairchain::protocol

#endif  // FAIRCHAIN_PROTOCOL_EXTENSIONS_HPP_
