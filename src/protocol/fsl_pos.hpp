// FSL-PoS: the paper's "fair single-lottery" treatment for SL-PoS
// (Section 6.2).
//
// SL-PoS is unfair because its deadline T = basetime * Hash / stake is a
// *uniform* random variable scaled by 1/stake.  The treatment replaces the
// time function with the inverse-exponential transform
//   time = basetime * ( -ln(1 - Hash / 2^256) ) / stake,
// making the deadlines exponential with rate `stake`; the minimum of
// independent exponentials is won with probability exactly proportional to
// rate, restoring expectational fairness.  The dynamics then coincide with
// ML-PoS (a Pólya urn), so robust fairness still requires small w or reward
// withholding (Figure 6).

#ifndef FAIRCHAIN_PROTOCOL_FSL_POS_HPP_
#define FAIRCHAIN_PROTOCOL_FSL_POS_HPP_

#include "protocol/incentive_model.hpp"

namespace fairchain::protocol {

/// Fair single-lottery PoS: exponential-deadline race, reward compounds.
class FslPosModel : public IncentiveModel {
 public:
  /// Creates an FSL-PoS model with per-block reward `w` > 0.
  explicit FslPosModel(double w);

  std::string name() const override { return "FSL-PoS"; }
  void Step(StakeState& state, RngStream& rng) const override;
  void RunSteps(StakeState& state, std::uint64_t step_begin,
                std::uint64_t step_count, RngStream& rng) const override;
  bool SupportsLaneStepping() const override { return true; }
  void RunLaneSteps(LaneStakeState& block, std::uint64_t step_begin,
                    std::uint64_t step_count,
                    PhiloxLanes& rng) const override;
  double RewardPerStep() const override { return w_; }

  /// Exactly proportional: stake share (the point of the treatment).
  double WinProbability(const StakeState& state, std::size_t i) const override;

  bool RewardCompounds() const override { return true; }

  /// Per-block reward.
  double block_reward() const { return w_; }

 private:
  double w_;
};

}  // namespace fairchain::protocol

#endif  // FAIRCHAIN_PROTOCOL_FSL_POS_HPP_
