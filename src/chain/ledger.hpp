// StakeLedger: integer-atom balances for the chain substrate.
//
// Real clients account stake in integral base units (satoshi / wei /
// NXT-quants); the ledger mirrors that so reward arithmetic is exact and
// conservation can be asserted to the atom in tests.

#ifndef FAIRCHAIN_CHAIN_LEDGER_HPP_
#define FAIRCHAIN_CHAIN_LEDGER_HPP_

#include <cstdint>
#include <vector>

#include "chain/block.hpp"

namespace fairchain::chain {

/// Per-miner balances in atoms, with O(1) total maintenance.
class StakeLedger {
 public:
  /// Creates a ledger with the given initial balances (at least one miner,
  /// positive total).  Throws std::invalid_argument otherwise.
  explicit StakeLedger(std::vector<Amount> initial);

  /// Number of accounts.
  std::size_t miner_count() const { return balance_.size(); }

  /// Balance of miner `i` in atoms.
  Amount balance(MinerId i) const { return balance_[i]; }

  /// Total atoms in circulation.
  Amount total() const { return total_; }

  /// Miner i's stake share as a double (for statistics only; consensus code
  /// uses atom arithmetic).
  double Share(MinerId i) const {
    return static_cast<double>(balance_[i]) / static_cast<double>(total_);
  }

  /// Cumulative rewards credited to miner `i` (excludes initial balance).
  Amount reward(MinerId i) const { return reward_[i]; }

  /// Total rewards minted so far.
  Amount total_rewards() const { return total_rewards_; }

  /// Miner i's fraction of all minted rewards (0 before any mint).
  double RewardFraction(MinerId i) const {
    return total_rewards_ == 0
               ? 0.0
               : static_cast<double>(reward_[i]) /
                     static_cast<double>(total_rewards_);
  }

  /// Mints `amount` atoms of reward to miner `i`.
  ///
  /// `staking` controls whether the reward joins the miner's staking balance
  /// (PoS) or is tracked as reward only (PoW / NEO-gas semantics).
  void Mint(MinerId i, Amount amount, bool staking);

  /// Initial balance of miner `i`.
  Amount initial_balance(MinerId i) const { return initial_[i]; }

  /// Restores the initial state.
  void Reset();

 private:
  std::vector<Amount> initial_;
  std::vector<Amount> balance_;
  std::vector<Amount> reward_;
  Amount total_ = 0;
  Amount total_rewards_ = 0;
};

}  // namespace fairchain::chain

#endif  // FAIRCHAIN_CHAIN_LEDGER_HPP_
