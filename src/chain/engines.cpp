#include "chain/engines.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fairchain::chain {

namespace {

// Guard against a mis-configured network that can never find a block.
constexpr std::uint64_t kMaxTicksPerBlock = 50'000'000;

// A deterministic 64-bit value derived from a digest (its first 8 bytes,
// big-endian) — used as lottery "hit" values and committee seeds.
std::uint64_t DigestPrefix(const crypto::Digest& digest) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value = (value << 8) | digest[i];
  return value;
}

}  // namespace

crypto::Digest MinerPublicKey(MinerId miner) {
  crypto::Sha256 hasher;
  hasher.Update("fairchain-miner-pk");
  hasher.UpdateU64(miner);
  return hasher.Finalize();
}

// ---------------------------------------------------------------------------
// PoW
// ---------------------------------------------------------------------------

PowEngine::PowEngine(PowEngineConfig config) : config_(std::move(config)) {
  if (config_.hash_rates.empty()) {
    throw std::invalid_argument("PowEngine: hash_rates must be non-empty");
  }
  std::uint64_t total_rate = 0;
  for (const std::uint64_t rate : config_.hash_rates) total_rate += rate;
  if (total_rate == 0) {
    throw std::invalid_argument("PowEngine: zero total hash rate");
  }
  if (!(config_.initial_expected_trials >= 1.0)) {
    throw std::invalid_argument(
        "PowEngine: initial_expected_trials must be >= 1");
  }
  genesis_target_ =
      TargetFromProbability(1.0 / config_.initial_expected_trials);
  // Align the difficulty config's notion of "block time" with the hash
  // rates: expected seconds per block = expected_trials / total_rate.
  if (config_.difficulty.target_block_time == 0) {
    config_.difficulty.target_block_time = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(config_.initial_expected_trials /
                                      static_cast<double>(total_rate)));
  }
  nonce_counters_.assign(config_.hash_rates.size(), 0);
}

U256 PowEngine::CurrentTarget(const Blockchain& chain) const {
  return NextPowTarget(chain, genesis_target_, config_.difficulty);
}

Block PowEngine::MineNext(const Blockchain& chain, StakeLedger& ledger,
                          RngStream& rng) {
  const U256 target = CurrentTarget(chain);
  const std::size_t miners = config_.hash_rates.size();
  if (ledger.miner_count() != miners) {
    throw std::invalid_argument("PowEngine: ledger/miner count mismatch");
  }
  Block candidate;
  candidate.header.height = chain.height() + 1;
  candidate.header.prev_hash = chain.TipHash();
  candidate.header.kind = ProofKind::kPow;
  candidate.header.target = target;
  candidate.reward = config_.block_reward;

  // Grind: every simulated second, each miner checks hash_rate nonces on its
  // own candidate header (headers differ by proposer + nonce).  All
  // successes within the same second race; the winner is the success with
  // the earliest sub-second position, which is uniform — drawn via rng.
  std::uint64_t tick = chain.Tip().header.timestamp;
  for (std::uint64_t elapsed = 0; elapsed < kMaxTicksPerBlock; ++elapsed) {
    ++tick;
    candidate.header.timestamp = tick;
    std::uint32_t successes = 0;
    MinerId success_miner = 0;
    std::uint64_t success_nonce = 0;
    for (MinerId m = 0; m < miners; ++m) {
      candidate.header.proposer = m;
      for (std::uint64_t trial = 0; trial < config_.hash_rates[m]; ++trial) {
        candidate.header.nonce = nonce_counters_[m]++;
        if (DigestToU256(candidate.Hash()) < target) {
          ++successes;
          // Reservoir-sample uniformly among this second's successes.
          if (successes == 1 || rng.NextBounded(successes) == 0) {
            success_miner = m;
            success_nonce = candidate.header.nonce;
          }
        }
      }
    }
    if (successes > 0) {
      candidate.header.proposer = success_miner;
      candidate.header.nonce = success_nonce;
      ledger.Mint(success_miner, config_.block_reward, RewardStakes());
      return candidate;
    }
  }
  throw std::runtime_error("PowEngine: no block found within tick budget");
}

// ---------------------------------------------------------------------------
// ML-PoS
// ---------------------------------------------------------------------------

MlPosEngine::MlPosEngine(MlPosEngineConfig config) : config_(config) {
  if (config_.block_reward == 0) {
    throw std::invalid_argument("MlPosEngine: block_reward must be > 0");
  }
  if (config_.target_spacing == 0) {
    throw std::invalid_argument("MlPosEngine: target_spacing must be > 0");
  }
}

U256 MlPosEngine::KernelBaseTarget(const StakeLedger& ledger) const {
  // Network-wide per-second success probability 1 / target_spacing:
  //   sum_i  D * stake_i / 2^256 = 1 / spacing
  //   =>  D = 2^256 / (spacing * total_stake).
  const U256 numerator = U256::Max();  // 2^256 - 1 ~ 2^256
  return numerator / U256(config_.target_spacing).SaturatingMulU64(
                         ledger.total());
}

Block MlPosEngine::MineNext(const Blockchain& chain, StakeLedger& ledger,
                            RngStream& rng) {
  const std::size_t miners = ledger.miner_count();
  const U256 base_target = KernelBaseTarget(ledger);
  Block block;
  block.header.height = chain.height() + 1;
  block.header.prev_hash = chain.TipHash();
  block.header.kind = ProofKind::kMlPos;
  block.header.target = base_target;
  block.reward = config_.block_reward;

  std::uint64_t t = chain.Tip().header.timestamp;
  for (std::uint64_t elapsed = 0; elapsed < kMaxTicksPerBlock; ++elapsed) {
    ++t;
    std::uint32_t successes = 0;
    MinerId winner = 0;
    for (MinerId m = 0; m < miners; ++m) {
      const Amount stake = ledger.balance(m);
      if (stake == 0) continue;
      // Staking kernel: one trial per timestamp per miner, weighted target.
      crypto::Sha256 kernel;
      kernel.Update(chain.TipHash().data(), 32);
      kernel.UpdateU64(t);
      const crypto::Digest pk = MinerPublicKey(m);
      kernel.Update(pk.data(), pk.size());
      const U256 kernel_value = DigestToU256(kernel.Finalize());
      const U256 miner_target = base_target.SaturatingMulU64(stake);
      if (kernel_value < miner_target) {
        ++successes;
        // Simultaneous successes tie-break uniformly (50 % for two miners,
        // matching Section 2.2).
        if (successes == 1 || rng.NextBounded(successes) == 0) winner = m;
      }
    }
    if (successes > 0) {
      block.header.proposer = winner;
      block.header.timestamp = t;
      block.header.nonce = 0;
      ledger.Mint(winner, config_.block_reward, RewardStakes());
      return block;
    }
  }
  throw std::runtime_error("MlPosEngine: no kernel hit within tick budget");
}

// ---------------------------------------------------------------------------
// SL-PoS / FSL-PoS
// ---------------------------------------------------------------------------

SlPosEngine::SlPosEngine(SlPosEngineConfig config) : config_(config) {
  if (config_.block_reward == 0) {
    throw std::invalid_argument("SlPosEngine: block_reward must be > 0");
  }
  if (config_.basetime == 0) {
    throw std::invalid_argument("SlPosEngine: basetime must be > 0");
  }
}

std::uint64_t SlPosEngine::Deadline(const crypto::Digest& tip_hash,
                                    MinerId miner, Amount stake) const {
  if (stake == 0) return UINT64_MAX;
  crypto::Sha256 lottery;
  lottery.Update(tip_hash.data(), 32);
  const crypto::Digest pk = MinerPublicKey(miner);
  lottery.Update(pk.data(), pk.size());
  const std::uint64_t hit = DigestPrefix(lottery.Finalize());
  if (!config_.fair_transform) {
    // NXT rule: deadline = basetime * hit / stake (exact 128-bit arithmetic).
    const unsigned __int128 scaled =
        static_cast<unsigned __int128>(hit) * config_.basetime;
    return static_cast<std::uint64_t>(scaled / stake);
  }
  // FSL-PoS treatment (Section 6.2): deadline = basetime * -ln(1-u) / stake
  // with u = hit / 2^64 — exponential deadlines restore proportionality.
  const double u =
      (static_cast<double>(hit) + 0.5) * 0x1.0p-64;  // u in (0, 1)
  const double transformed = -std::log1p(-u);
  const double deadline = static_cast<double>(config_.basetime) *
                          transformed * 9.2233720368547758e18 /
                          static_cast<double>(stake);
  if (deadline >= 1.8e19) return UINT64_MAX;
  return static_cast<std::uint64_t>(deadline);
}

Block SlPosEngine::MineNext(const Blockchain& chain, StakeLedger& ledger,
                            RngStream& rng) {
  const std::size_t miners = ledger.miner_count();
  MinerId winner = 0;
  std::uint64_t best = UINT64_MAX;
  std::uint32_t ties = 0;
  for (MinerId m = 0; m < miners; ++m) {
    const std::uint64_t deadline =
        Deadline(chain.TipHash(), m, ledger.balance(m));
    if (deadline < best) {
      best = deadline;
      winner = m;
      ties = 1;
    } else if (deadline == best && deadline != UINT64_MAX) {
      // Exact 64-bit deadline collision: 50/50 per the paper's tie rule.
      ++ties;
      if (rng.NextBounded(ties) == 0) winner = m;
    }
  }
  if (best == UINT64_MAX) {
    throw std::runtime_error("SlPosEngine: no miner could forge");
  }
  Block block;
  block.header.height = chain.height() + 1;
  block.header.prev_hash = chain.TipHash();
  block.header.kind = ProofKind::kSlPos;
  block.header.proposer = winner;
  // Deadlines can be astronomically large in simulated "seconds"; keep the
  // chain clock bounded while preserving ordering.
  block.header.timestamp =
      chain.Tip().header.timestamp + 1 + best % 1000000;
  block.header.nonce = best;  // record the winning deadline as the proof
  block.header.target = U256::Max();
  block.reward = config_.block_reward;
  ledger.Mint(winner, config_.block_reward, RewardStakes());
  return block;
}

// ---------------------------------------------------------------------------
// C-PoS
// ---------------------------------------------------------------------------

CPosEngine::CPosEngine(CPosEngineConfig config) : config_(config) {
  if (config_.proposer_reward == 0) {
    throw std::invalid_argument("CPosEngine: proposer_reward must be > 0");
  }
  if (config_.shards == 0) {
    throw std::invalid_argument("CPosEngine: shards must be >= 1");
  }
}

Block CPosEngine::MineNext(const Blockchain& chain, StakeLedger& ledger,
                           RngStream& rng) {
  (void)rng;  // All epoch randomness derives from the chain (RANDAO-style).
  const std::size_t miners = ledger.miner_count();

  // Epoch randomness: hash the tip (the beacon-chain RANDAO stand-in).
  crypto::Sha256 seed_hasher;
  seed_hasher.Update("fairchain-cpos-epoch-seed");
  seed_hasher.Update(chain.TipHash().data(), 32);
  RngStream epoch_rng(DigestPrefix(seed_hasher.Finalize()));

  // Snapshot epoch-start balances: all slot draws and attester rewards use
  // the distribution at the start of the epoch.
  std::vector<Amount> snapshot(miners);
  Amount total = 0;
  for (MinerId m = 0; m < miners; ++m) {
    snapshot[m] = ledger.balance(m);
    total += snapshot[m];
  }

  // Proposer slots: P independent stake-proportional draws.
  const Amount per_slot = config_.proposer_reward / config_.shards;
  Amount proposer_remainder =
      config_.proposer_reward - per_slot * config_.shards;
  MinerId slot0_proposer = 0;
  for (std::uint32_t slot = 0; slot < config_.shards; ++slot) {
    const std::uint64_t pick = epoch_rng.NextBounded(total);
    std::uint64_t cumulative = 0;
    MinerId chosen = static_cast<MinerId>(miners - 1);
    for (MinerId m = 0; m < miners; ++m) {
      cumulative += snapshot[m];
      if (pick < cumulative) {
        chosen = m;
        break;
      }
    }
    Amount amount = per_slot;
    if (slot == 0) {
      slot0_proposer = chosen;
      amount += proposer_remainder;  // conservation: dust to slot 0
    }
    ledger.Mint(chosen, amount, RewardStakes());
  }

  // Attester (inflation) rewards: exact largest-remainder apportionment of
  // `inflation_reward` proportional to the snapshot.
  if (config_.inflation_reward > 0) {
    std::vector<std::pair<unsigned __int128, MinerId>> remainders;
    remainders.reserve(miners);
    Amount distributed = 0;
    for (MinerId m = 0; m < miners; ++m) {
      const unsigned __int128 numerator =
          static_cast<unsigned __int128>(config_.inflation_reward) *
          snapshot[m];
      const Amount share = static_cast<Amount>(numerator / total);
      const unsigned __int128 remainder = numerator % total;
      if (share > 0) ledger.Mint(m, share, RewardStakes());
      distributed += share;
      remainders.emplace_back(remainder, m);
    }
    Amount leftover = config_.inflation_reward - distributed;
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    for (std::size_t k = 0; leftover > 0 && k < remainders.size(); ++k) {
      ledger.Mint(remainders[k].second, 1, RewardStakes());
      --leftover;
    }
  }

  Block block;
  block.header.height = chain.height() + 1;
  block.header.prev_hash = chain.TipHash();
  block.header.kind = ProofKind::kCPos;
  block.header.proposer = slot0_proposer;
  block.header.timestamp =
      chain.Tip().header.timestamp + config_.epoch_seconds;
  block.header.nonce = 0;
  block.header.target = U256::Max();
  block.reward = config_.proposer_reward + config_.inflation_reward;
  return block;
}

}  // namespace fairchain::chain
