#include "chain/ledger.hpp"

#include <stdexcept>

namespace fairchain::chain {

StakeLedger::StakeLedger(std::vector<Amount> initial)
    : initial_(std::move(initial)) {
  if (initial_.empty()) {
    throw std::invalid_argument("StakeLedger: at least one miner required");
  }
  balance_ = initial_;
  reward_.assign(initial_.size(), 0);
  for (const Amount b : balance_) total_ += b;
  if (total_ == 0) {
    throw std::invalid_argument("StakeLedger: zero total initial balance");
  }
}

void StakeLedger::Mint(MinerId i, Amount amount, bool staking) {
  if (i >= balance_.size()) {
    throw std::invalid_argument("StakeLedger::Mint: miner out of range");
  }
  reward_[i] += amount;
  total_rewards_ += amount;
  if (staking) {
    balance_[i] += amount;
    total_ += amount;
  }
}

void StakeLedger::Reset() {
  balance_ = initial_;
  for (auto& r : reward_) r = 0;
  total_ = 0;
  for (const Amount b : balance_) total_ += b;
  total_rewards_ = 0;
}

}  // namespace fairchain::chain
