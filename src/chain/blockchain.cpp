#include "chain/blockchain.hpp"

#include <stdexcept>

namespace fairchain::chain {

Blockchain::Blockchain(std::uint64_t genesis_salt) {
  Block genesis;
  genesis.header.height = 0;
  genesis.header.kind = ProofKind::kGenesis;
  genesis.header.nonce = genesis_salt;
  genesis.header.timestamp = 0;
  genesis.header.target = U256::Max();
  genesis.reward = 0;
  blocks_.push_back(genesis);
  tip_hash_ = genesis.Hash();
}

void Blockchain::Append(const Block& block) {
  const Block& tip = Tip();
  if (block.header.height != tip.header.height + 1) {
    throw std::invalid_argument("Blockchain::Append: non-consecutive height");
  }
  if (block.header.prev_hash != tip_hash_) {
    throw std::invalid_argument("Blockchain::Append: parent hash mismatch");
  }
  if (block.header.timestamp < tip.header.timestamp) {
    throw std::invalid_argument("Blockchain::Append: timestamp regression");
  }
  blocks_.push_back(block);
  tip_hash_ = block.Hash();
}

ValidationReport Blockchain::Validate() const {
  ValidationReport report;
  crypto::Digest expected_prev = blocks_.front().Hash();
  for (std::size_t i = 1; i < blocks_.size(); ++i) {
    const Block& block = blocks_[i];
    if (block.header.height != i) {
      report.ok = false;
      report.error = "height mismatch";
      report.bad_height = block.header.height;
      return report;
    }
    if (block.header.prev_hash != expected_prev) {
      report.ok = false;
      report.error = "broken hash link";
      report.bad_height = block.header.height;
      return report;
    }
    if (block.header.timestamp < blocks_[i - 1].header.timestamp) {
      report.ok = false;
      report.error = "timestamp regression";
      report.bad_height = block.header.height;
      return report;
    }
    if (block.header.kind == ProofKind::kPow) {
      // The proof of work is the header hash itself meeting the target.
      if (DigestToU256(block.Hash()) >= block.header.target) {
        report.ok = false;
        report.error = "PoW proof does not meet target";
        report.bad_height = block.header.height;
        return report;
      }
    }
    expected_prev = block.Hash();
  }
  return report;
}

std::uint64_t Blockchain::BlocksBy(MinerId miner) const {
  std::uint64_t count = 0;
  for (std::size_t i = 1; i < blocks_.size(); ++i) {
    if (blocks_[i].header.proposer == miner) ++count;
  }
  return count;
}

double Blockchain::MeanBlockInterval() const {
  if (blocks_.size() < 2) return 0.0;
  const std::uint64_t span =
      blocks_.back().header.timestamp - blocks_.front().header.timestamp;
  return static_cast<double>(span) /
         static_cast<double>(blocks_.size() - 1);
}

}  // namespace fairchain::chain
