#include "chain/chain_replication.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fairchain::chain {

namespace {

// Probability that group with hash share `share` finds a block within one
// propagation window of `delay` mean block intervals: block discovery is
// Poisson with rate `share` per interval, so P = 1 - exp(-share * delay).
double WindowProbability(double share, double delay) {
  return -std::expm1(-share * delay);
}

}  // namespace

bool IsKnownChainDynamicsName(const std::string& name) {
  return name == "selfish" || name == "forkrace";
}

ChainDynamics ParseChainDynamics(const std::string& name) {
  if (name == "selfish") return ChainDynamics::kSelfish;
  if (name == "forkrace") return ChainDynamics::kForkRace;
  throw std::invalid_argument(
      "ParseChainDynamics: unknown chain dynamics '" + name +
      "' (known: selfish, forkrace)");
}

std::string ChainDynamicsName(ChainDynamics dynamics) {
  return dynamics == ChainDynamics::kSelfish ? "selfish" : "forkrace";
}

void ChainGameSpec::Validate() const {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    throw std::invalid_argument(
        "ChainGameSpec: alpha must lie in (0, 1)");
  }
  if (!(gamma >= 0.0) || !(gamma <= 1.0)) {
    throw std::invalid_argument(
        "ChainGameSpec: gamma must lie in [0, 1]");
  }
  if (!std::isfinite(delay) || delay < 0.0) {
    throw std::invalid_argument(
        "ChainGameSpec: delay must be finite and >= 0");
  }
}

void ChainGameState::Reset() { *this = ChainGameState{}; }

double ChainGameState::Lambda(const ChainGameSpec& spec) const {
  // Selfish: settle the private lead virtually (exactly what
  // SelfishMiningSimulator::Run does at the horizon); an unresolved tie
  // race stays unattributed, also matching Run.  ForkRace: attribute open
  // branches to their owners so a checkpoint falling mid-race still
  // reflects every discovered block.
  const std::uint64_t tracked =
      tracked_blocks +
      (spec.dynamics == ChainDynamics::kSelfish ? lead : tracked_branch);
  const std::uint64_t other =
      other_blocks +
      (spec.dynamics == ChainDynamics::kSelfish ? 0 : other_branch);
  const std::uint64_t total = tracked + other;
  if (total == 0) return spec.alpha;
  return static_cast<double>(tracked) / static_cast<double>(total);
}

double ChainGameState::OrphanRate() const {
  if (events == 0) return 0.0;
  return static_cast<double>(orphaned_blocks) /
         static_cast<double>(events);
}

double ChainGameState::ReorgDepthMean() const {
  if (reorg_count == 0) return 0.0;
  return static_cast<double>(reorg_depth_sum) /
         static_cast<double>(reorg_count);
}

namespace {

// One Eyal–Sirer block event; the draw order is IDENTICAL to
// core::SelfishMiningSimulator::Run, so a full-horizon StepChainEvents on
// the same stream reproduces its counts bit for bit (pinned by
// tests/chain/chain_replication_test.cpp).
void StepSelfishEvent(const ChainGameSpec& spec, ChainGameState& state,
                      RngStream& rng) {
  const bool selfish_found = rng.NextBernoulli(spec.alpha);
  if (state.tie_race) {
    // Both branches have length 1; this block decides the race.  The
    // displaced tie block is a depth-1 reorg for whichever side loses.
    state.tie_race = false;
    if (selfish_found) {
      state.tracked_blocks += 2;
    } else if (rng.NextBernoulli(spec.gamma)) {
      state.tracked_blocks += 1;
      state.other_blocks += 1;
    } else {
      state.other_blocks += 2;
    }
    state.orphaned_blocks += 1;
    state.reorg_count += 1;
    state.reorg_depth_sum += 1;
    state.reorg_depth_max = std::max<std::uint64_t>(state.reorg_depth_max, 1);
    return;
  }
  if (selfish_found) {
    ++state.lead;
    return;
  }
  // Honest miners found a block.
  switch (state.lead) {
    case 0:
      state.other_blocks += 1;
      return;
    case 1:
      // Pool publishes its single withheld block: 1-1 race.
      state.tie_race = true;
      state.lead = 0;
      return;
    case 2:
      // Pool publishes everything and wins; the honest block orphans
      // (depth-1 reorg of the honest tip).
      state.tracked_blocks += 2;
      state.lead = 0;
      break;
    default:
      // Lead > 2: the pool reveals one block, which commits; the honest
      // block is destined to orphan and the advantage shrinks by one.
      state.tracked_blocks += 1;
      state.lead -= 1;
      break;
  }
  state.orphaned_blocks += 1;
  state.reorg_count += 1;
  state.reorg_depth_sum += 1;
  state.reorg_depth_max = std::max<std::uint64_t>(state.reorg_depth_max, 1);
}

// One fork-race block event.  `q_tracked` / `q_other` are the window
// probabilities WindowProbability(share, delay) of each group.
void StepForkRaceEvent(const ChainGameSpec& spec, ChainGameState& state,
                       double q_tracked, double q_other, RngStream& rng) {
  using ForkPhase = ChainGameState::ForkPhase;
  switch (state.phase) {
    case ForkPhase::kSynced: {
      const bool tracked_found = rng.NextBernoulli(spec.alpha);
      const bool fork =
          rng.NextBernoulli(tracked_found ? q_other : q_tracked);
      if (!fork) {
        if (tracked_found) {
          state.tracked_blocks += 1;
        } else {
          state.other_blocks += 1;
        }
        return;
      }
      // The other side finds a competitor within the window: this block
      // opens a branch and the forced next block is theirs.
      if (tracked_found) {
        state.tracked_branch = 1;
        state.pending_tracked = false;
      } else {
        state.other_branch = 1;
        state.pending_tracked = true;
      }
      state.phase = ForkPhase::kForced;
      return;
    }
    case ForkPhase::kForced:
      // The window draw already fixed this block's owner (fork opening or
      // race catch-up); no randomness is consumed.
      if (state.pending_tracked) {
        state.tracked_branch += 1;
      } else {
        state.other_branch += 1;
      }
      state.phase = ForkPhase::kRace;
      return;
    case ForkPhase::kRace: {
      // Equal branches: the extender pulls ahead, then the other side
      // either evens up within the window (forced next block) or the lead
      // survives and the race resolves.
      const bool tracked_extends = rng.NextBernoulli(spec.alpha);
      if (tracked_extends) {
        state.tracked_branch += 1;
      } else {
        state.other_branch += 1;
      }
      const bool contested =
          rng.NextBernoulli(tracked_extends ? q_other : q_tracked);
      if (contested) {
        state.pending_tracked = !tracked_extends;
        state.phase = ForkPhase::kForced;
        return;
      }
      // Resolve: the longer branch commits whole, the loser orphans whole.
      const std::uint64_t depth =
          tracked_extends ? state.other_branch : state.tracked_branch;
      if (tracked_extends) {
        state.tracked_blocks += state.tracked_branch;
      } else {
        state.other_blocks += state.other_branch;
      }
      state.orphaned_blocks += depth;
      state.reorg_count += 1;
      state.reorg_depth_sum += depth;
      state.reorg_depth_max =
          std::max(state.reorg_depth_max, depth);
      state.tracked_branch = 0;
      state.other_branch = 0;
      state.phase = ForkPhase::kSynced;
      return;
    }
  }
}

}  // namespace

void StepChainEvents(const ChainGameSpec& spec, ChainGameState& state,
                     RngStream& rng, std::uint64_t events) {
  if (spec.dynamics == ChainDynamics::kSelfish) {
    for (std::uint64_t i = 0; i < events; ++i) {
      StepSelfishEvent(spec, state, rng);
    }
  } else {
    const double q_tracked = WindowProbability(spec.alpha, spec.delay);
    const double q_other = WindowProbability(1.0 - spec.alpha, spec.delay);
    for (std::uint64_t i = 0; i < events; ++i) {
      StepForkRaceEvent(spec, state, q_tracked, q_other, rng);
    }
  }
  state.events += events;
}

std::size_t ChainMatrixSize(const core::SimulationConfig& config) {
  return kChainMetricCount * config.checkpoints.size() *
         static_cast<std::size_t>(config.replications);
}

void ChainReplicationWorkspace::Bind(const ChainGameSpec& spec) {
  spec.Validate();
  const bool same = bound_ && spec_.dynamics == spec.dynamics &&
                    spec_.alpha == spec.alpha && spec_.gamma == spec.gamma &&
                    spec_.delay == spec.delay;
  spec_ = spec;
  bound_ = true;
  if (!same) state_ = ChainGameState{};
  state_.Reset();
}

ChainReplicationWorkspace& ThreadLocalChainReplicationWorkspace() {
  thread_local ChainReplicationWorkspace workspace;
  return workspace;
}

void RunChainReplicationRange(const ChainGameSpec& spec,
                              const core::SimulationConfig& config,
                              std::size_t begin, std::size_t end,
                              double* lambda_matrix, double* chain_matrix,
                              ChainReplicationWorkspace& workspace) {
  spec.Validate();
  if (config.checkpoints.empty()) {
    throw std::invalid_argument(
        "RunChainReplicationRange: config.checkpoints must be populated");
  }
  if (end > config.replications || begin > end) {
    throw std::invalid_argument(
        "RunChainReplicationRange: replication range out of bounds");
  }
  workspace.Bind(spec);

  obs::Span range_span("mc.chain_replication_range", end - begin);
  const std::size_t cp = config.checkpoints.size();
  const auto replications = static_cast<std::size_t>(config.replications);
  const RngStream root(config.seed);
  ChainGameState& state = workspace.state();
  // Per-range totals, flushed into the global counters once at the end —
  // the hot loop must stay pure arithmetic.
  std::uint64_t blocks_total = 0;
  std::uint64_t orphans_total = 0;
  std::uint64_t reorgs_total = 0;
  for (std::size_t r = begin; r < end; ++r) {
    RngStream rng = root.Split(r);
    state.Reset();
    std::uint64_t previous_step = 0;
    for (std::size_t c = 0; c < cp; ++c) {
      const std::uint64_t step = config.checkpoints[c];
      StepChainEvents(spec, state, rng, step - previous_step);
      previous_step = step;
      lambda_matrix[c * replications + r] = state.Lambda(spec);
      if (chain_matrix != nullptr) {
        chain_matrix[(0 * cp + c) * replications + r] = state.OrphanRate();
        chain_matrix[(1 * cp + c) * replications + r] =
            state.ReorgDepthMean();
        chain_matrix[(2 * cp + c) * replications + r] =
            static_cast<double>(state.reorg_depth_max);
      }
    }
    blocks_total += state.events;
    orphans_total += state.orphaned_blocks;
    reorgs_total += state.reorg_count;
  }
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.GetCounter("chain.block_events_total").Add(blocks_total);
  metrics.GetCounter("chain.orphans_total").Add(orphans_total);
  metrics.GetCounter("chain.reorgs_total").Add(reorgs_total);
}

void RunChainReplicationRange(const ChainGameSpec& spec,
                              const core::SimulationConfig& config,
                              std::size_t begin, std::size_t end,
                              double* lambda_matrix, double* chain_matrix) {
  RunChainReplicationRange(spec, config, begin, end, lambda_matrix,
                           chain_matrix,
                           ThreadLocalChainReplicationWorkspace());
}

void ReduceChainMetrics(const core::SimulationConfig& config,
                        const std::vector<double>& chain_matrix,
                        core::SimulationResult& result) {
  if (chain_matrix.size() != ChainMatrixSize(config)) {
    throw std::invalid_argument(
        "ReduceChainMetrics: chain matrix size mismatch");
  }
  const std::size_t cp = config.checkpoints.size();
  const auto replications = static_cast<std::size_t>(config.replications);
  if (result.checkpoints.size() != cp) {
    throw std::invalid_argument(
        "ReduceChainMetrics: result/checkpoint count mismatch");
  }
  for (std::size_t c = 0; c < cp; ++c) {
    double orphan_sum = 0.0;
    double depth_sum = 0.0;
    double depth_max = 0.0;
    for (std::size_t r = 0; r < replications; ++r) {
      orphan_sum += chain_matrix[(0 * cp + c) * replications + r];
      depth_sum += chain_matrix[(1 * cp + c) * replications + r];
      depth_max =
          std::max(depth_max, chain_matrix[(2 * cp + c) * replications + r]);
    }
    core::CheckpointStats& stats = result.checkpoints[c];
    stats.orphan_rate = orphan_sum / static_cast<double>(replications);
    stats.reorg_depth_mean = depth_sum / static_cast<double>(replications);
    stats.reorg_depth_max = depth_max;
  }
}

}  // namespace fairchain::chain
