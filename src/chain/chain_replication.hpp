// Chain-dynamics replication kernel: fork races, propagation delays, and
// selfish mining on the execution core's contracts.
//
// The paper's incentive games assume an idealized longest-chain world —
// every block commits, no forks, no orphans.  This module is the
// fork-aware counterpart: an arena-backed, checkpoint-segmented kernel
// (the chain twin of core::RunReplicationRange) that the campaign runner
// steps through serial / thread-pool / process-shard backends unchanged.
//
// Two dynamics families:
//
//   * kSelfish — the Eyal–Sirer withholding state machine of
//     core/selfish_mining, restructured so a replication can advance in
//     whole segments between checkpoints: the private lead and tie-race
//     flag live in ChainGameState and carry across segment boundaries,
//     and each checkpoint's λ settles the lead virtually (the final
//     checkpoint therefore equals SelfishMiningSimulator::Run exactly,
//     draw for draw).  `alpha` is the pool's hash share, `gamma` the
//     fraction of honest power that mines on the pool's branch in a tie.
//
//   * kForkRace — a two-group propagation-delay model (tracked group A
//     with hash share `alpha`, the rest B) in which every block event is
//     one discovery.  After a block by X, the other group Y finds a
//     competing block within the propagation window with probability
//     q_Y = 1 - exp(-h_Y · delay) (delay in mean-block-interval units),
//     opening a 1-1 fork.  Races advance in rounds — the extender leads
//     by one, the other side evens up with the same window probability —
//     until a lead survives the window: the longer branch commits, the
//     loser orphans whole (reorg depth = its length).  At delay = 0 the
//     model collapses to iid proportional block production, so the
//     tracked block count is EXACTLY Binomial(n, alpha) — the anchor the
//     verify layer pins.  Closed forms for delay > 0: with
//     ρ = α(1-e^{-(1-α)d}) + (1-α)(1-e^{-αd}), the expected orphan rate
//     (orphans per block event) is ρ/(1+ρ) and the expected reorg depth
//     per resolved race is 1/(1-ρ) — both claimed by the forkrace oracle.
//
// Determinism contract (identical to the core engine): replication r of a
// cell draws from RngStream(config.seed).Split(r); segmenting a
// replication across checkpoints never changes its draw sequence; the
// (λ, chain-metric) matrices are invariant to the [begin, end) partition,
// so every backend produces byte-identical campaigns.

#ifndef FAIRCHAIN_CHAIN_CHAIN_REPLICATION_HPP_
#define FAIRCHAIN_CHAIN_CHAIN_REPLICATION_HPP_

#include <cstdint>
#include <string>

#include "core/monte_carlo.hpp"
#include "support/rng.hpp"

namespace fairchain::chain {

/// Which chain-dynamics game a cell runs.
enum class ChainDynamics {
  kSelfish,   ///< Eyal–Sirer selfish mining (alpha, gamma)
  kForkRace,  ///< two-group propagation-delay fork races (alpha, delay)
};

/// True for the spec-facing names "selfish" / "forkrace".
bool IsKnownChainDynamicsName(const std::string& name);

/// Parses a spec-facing name; throws std::invalid_argument with the known
/// names on anything else.
ChainDynamics ParseChainDynamics(const std::string& name);

/// The spec-facing name ("selfish" / "forkrace").
std::string ChainDynamicsName(ChainDynamics dynamics);

/// Everything that parameterises one chain-dynamics cell.
struct ChainGameSpec {
  ChainDynamics dynamics = ChainDynamics::kForkRace;
  /// Tracked hash share: the selfish pool's alpha, or group A's share.
  double alpha = 0.2;
  /// Tie-breaking share of honest power on the pool's branch (selfish
  /// only; ignored by kForkRace).
  double gamma = 0.0;
  /// Propagation delay in mean-block-interval units (forkrace only;
  /// ignored by kSelfish).
  double delay = 0.0;

  /// Throws std::invalid_argument: alpha must lie in (0, 1), gamma in
  /// [0, 1], delay must be finite and >= 0.
  void Validate() const;
};

/// Mutable per-replication state, segmentable at any event boundary.
struct ChainGameState {
  // Committed main-chain blocks.
  std::uint64_t tracked_blocks = 0;  ///< pool / group A
  std::uint64_t other_blocks = 0;    ///< honest miners / group B
  std::uint64_t orphaned_blocks = 0;
  /// Total block-discovery events stepped so far.
  std::uint64_t events = 0;
  // Resolved-reorg accounting (each orphaned branch is one reorg whose
  // depth is the number of blocks the losing side discards).
  std::uint64_t reorg_count = 0;
  std::uint64_t reorg_depth_sum = 0;
  std::uint64_t reorg_depth_max = 0;

  // --- selfish-mining machine ---
  std::uint64_t lead = 0;  ///< private-chain advantage
  bool tie_race = false;   ///< a 1-1 fork is being raced

  // --- fork-race machine ---
  enum class ForkPhase : std::uint8_t {
    kSynced,  ///< one tip; next event is an ordinary discovery
    kForced,  ///< a window draw already committed `pending_tracked`'s side
              ///< to find the next block (fork opening or race catch-up)
    kRace,    ///< two branches race; lengths in tracked/other_branch
  };
  ForkPhase phase = ForkPhase::kSynced;
  /// Unresolved branch lengths: each group mines on its own branch, so a
  /// branch is wholly one side's blocks.  Zero outside a fork.
  std::uint64_t tracked_branch = 0;
  std::uint64_t other_branch = 0;
  /// While phase == kForced: whether the forced next block belongs to the
  /// tracked group.
  bool pending_tracked = false;

  /// Back to the genesis state (all counters zero, synced, no lead).
  void Reset();

  /// λ attribution at a checkpoint: committed tracked blocks plus the
  /// tracked side's unresolved-branch blocks (selfish: the private lead,
  /// matching SelfishMiningSimulator::Run's end-of-horizon settle;
  /// forkrace: the tracked branch of an open race), over all attributed
  /// blocks.  Falls back to `alpha` before the first attribution.
  double Lambda(const ChainGameSpec& spec) const;

  /// Orphaned blocks per block event so far (0 before the first event).
  double OrphanRate() const;

  /// Mean depth of resolved reorgs (0 when none resolved yet).
  double ReorgDepthMean() const;
};

/// Advances `state` by `events` block-discovery events of `spec`'s game,
/// drawing from `rng`.  Segment-invariant: N events in one call and in any
/// split of N across calls consume the same draws and land in the same
/// state.
void StepChainEvents(const ChainGameSpec& spec, ChainGameState& state,
                     RngStream& rng, std::uint64_t events);

/// Number of chain-metric planes RunChainReplicationRange records per
/// (checkpoint, replication): orphan_rate, reorg_depth_mean,
/// reorg_depth_max.
inline constexpr std::size_t kChainMetricCount = 3;

/// Doubles a chain-metric matrix needs: kChainMetricCount planes of
/// (checkpoints × replications), laid out
/// chain_matrix[(metric * cp_count + c) * replications + r] — the same
/// plane layout as core::PopulationMatrixSize, so shard payloads marshal
/// chain planes exactly like population planes.
std::size_t ChainMatrixSize(const core::SimulationConfig& config);

/// Per-worker arena for chain replications — the chain twin of
/// core::ReplicationWorkspace.  The game state is small and flat, so the
/// arena's job is the contract, not the capacity: Bind is free when the
/// spec is unchanged, replications Reset() in place, and steady-state
/// stepping performs zero heap allocations.
class ChainReplicationWorkspace {
 public:
  ChainReplicationWorkspace() = default;

  ChainReplicationWorkspace(const ChainReplicationWorkspace&) = delete;
  ChainReplicationWorkspace& operator=(const ChainReplicationWorkspace&) =
      delete;

  /// Prepares the workspace for replications of `spec` (validated).
  /// Rebinding with an identical spec only Reset()s the state.
  void Bind(const ChainGameSpec& spec);

  /// The bound game state; valid until the next Bind.
  ChainGameState& state() { return state_; }

  const ChainGameSpec& spec() const { return spec_; }
  bool bound() const { return bound_; }

 private:
  ChainGameSpec spec_;
  ChainGameState state_;
  bool bound_ = false;
};

/// This thread's chain workspace, default-constructed on first use (the
/// same per-worker-arena pattern as ThreadLocalReplicationWorkspace).
ChainReplicationWorkspace& ThreadLocalChainReplicationWorkspace();

/// Runs replications [begin, end) of `spec`'s game under `config` (steps =
/// block events; checkpoints must be populated and ascending), writing λ
/// of replication r at checkpoint c into
/// lambda_matrix[c * config.replications + r] and — when `chain_matrix`
/// is non-null — the chain observables into the ChainMatrixSize layout.
/// Replication r always draws from RngStream(config.seed).Split(r), so any
/// partition of [0, replications) across threads, chunks, or forked shard
/// workers produces identical matrices.  `workspace` is Bind()-ed to
/// `spec` (free when already bound) and left bound on return.
void RunChainReplicationRange(const ChainGameSpec& spec,
                              const core::SimulationConfig& config,
                              std::size_t begin, std::size_t end,
                              double* lambda_matrix, double* chain_matrix,
                              ChainReplicationWorkspace& workspace);

/// Convenience overload running in this thread's workspace.
void RunChainReplicationRange(const ChainGameSpec& spec,
                              const core::SimulationConfig& config,
                              std::size_t begin, std::size_t end,
                              double* lambda_matrix, double* chain_matrix);

/// Folds a fully populated chain-metric matrix into `result`'s checkpoint
/// stats: orphan_rate and reorg_depth_mean are means over replications,
/// reorg_depth_max the maximum.  The λ reduction itself stays
/// core::ReduceToResult — chain campaigns reuse it unchanged.
void ReduceChainMetrics(const core::SimulationConfig& config,
                        const std::vector<double>& chain_matrix,
                        core::SimulationResult& result);

}  // namespace fairchain::chain

#endif  // FAIRCHAIN_CHAIN_CHAIN_REPLICATION_HPP_
