#include "chain/block_tree.hpp"

#include <stdexcept>
#include <vector>

namespace fairchain::chain {

BlockTree::BlockTree(const Block& genesis) {
  if (genesis.header.height != 0) {
    throw std::invalid_argument("BlockTree: genesis must have height 0");
  }
  Node node;
  node.block = genesis;
  node.parent = crypto::Digest{};
  node.arrival = next_arrival_++;
  tip_hash_ = genesis.Hash();
  nodes_.emplace(tip_hash_, std::move(node));
}

std::uint64_t BlockTree::TipHeight() const {
  return nodes_.at(tip_hash_).block.header.height;
}

bool BlockTree::Contains(const crypto::Digest& hash) const {
  return nodes_.find(hash) != nodes_.end();
}

AddBlockResult BlockTree::Add(const Block& block) {
  const crypto::Digest hash = block.Hash();
  if (Contains(hash)) return AddBlockResult::kDuplicate;
  if (!Contains(block.header.prev_hash)) {
    orphans_.emplace(block.header.prev_hash, block);
    return AddBlockResult::kOrphaned;
  }
  return Attach(block);
}

AddBlockResult BlockTree::Attach(const Block& block) {
  const auto parent_it = nodes_.find(block.header.prev_hash);
  if (block.header.height != parent_it->second.block.header.height + 1) {
    return AddBlockResult::kInvalid;
  }
  const crypto::Digest hash = block.Hash();
  Node node;
  node.block = block;
  node.parent = block.header.prev_hash;
  node.arrival = next_arrival_++;
  nodes_.emplace(hash, std::move(node));
  MaybeAdoptTip(hash);
  TryAttachOrphans(hash);
  return AddBlockResult::kAdded;
}

void BlockTree::TryAttachOrphans(const crypto::Digest& parent_hash) {
  // Iteratively attach any buffered descendants (orphan chains can be
  // arbitrarily deep, so keep a worklist).
  std::vector<crypto::Digest> worklist = {parent_hash};
  while (!worklist.empty()) {
    const crypto::Digest parent = worklist.back();
    worklist.pop_back();
    auto range = orphans_.equal_range(parent);
    std::vector<Block> ready;
    for (auto it = range.first; it != range.second; ++it) {
      ready.push_back(it->second);
    }
    orphans_.erase(range.first, range.second);
    for (const Block& block : ready) {
      if (Attach(block) == AddBlockResult::kAdded) {
        worklist.push_back(block.Hash());
      }
    }
  }
}

void BlockTree::MaybeAdoptTip(const crypto::Digest& candidate_hash) {
  const Node& candidate = nodes_.at(candidate_hash);
  const Node& current = nodes_.at(tip_hash_);
  const std::uint64_t candidate_height = candidate.block.header.height;
  const std::uint64_t current_height = current.block.header.height;
  // Longest chain wins; first-seen wins ties (strictly-greater check).
  if (candidate_height <= current_height) return;
  // A reorg happened unless the new tip directly extends the old one.
  if (candidate.parent != tip_hash_) ++reorg_count_;
  tip_hash_ = candidate_hash;
}

bool BlockTree::IsCanonical(const crypto::Digest& hash) const {
  const auto it = nodes_.find(hash);
  if (it == nodes_.end()) return false;
  // Walk back from the tip to the block's height.
  crypto::Digest cursor = tip_hash_;
  while (true) {
    const Node& node = nodes_.at(cursor);
    if (node.block.header.height < it->second.block.header.height) {
      return false;
    }
    if (cursor == hash) return true;
    if (node.block.header.height == 0) return false;
    cursor = node.parent;
  }
}

std::vector<Block> BlockTree::CanonicalChain() const {
  std::vector<Block> chain;
  crypto::Digest cursor = tip_hash_;
  while (true) {
    const Node& node = nodes_.at(cursor);
    chain.push_back(node.block);
    if (node.block.header.height == 0) break;
    cursor = node.parent;
  }
  std::vector<Block> ordered(chain.rbegin(), chain.rend());
  return ordered;
}

std::uint64_t BlockTree::CanonicalBlocksBy(MinerId miner) const {
  std::uint64_t count = 0;
  crypto::Digest cursor = tip_hash_;
  while (true) {
    const Node& node = nodes_.at(cursor);
    if (node.block.header.height == 0) break;
    if (node.block.header.proposer == miner) ++count;
    cursor = node.parent;
  }
  return count;
}

}  // namespace fairchain::chain
