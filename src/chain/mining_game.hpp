// MiningGame: drives a mining engine to produce a full chain, validates it,
// and reduces it to the statistics the paper reports (λ per miner, block
// intervals).  RunReplicated mirrors the paper's repeated real-system
// experiments (10 runs for PoW, 500 for PoS) with per-replication genesis
// salts.

#ifndef FAIRCHAIN_CHAIN_MINING_GAME_HPP_
#define FAIRCHAIN_CHAIN_MINING_GAME_HPP_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "chain/blockchain.hpp"
#include "chain/engines.hpp"
#include "chain/ledger.hpp"

namespace fairchain::chain {

/// Outcome of one simulated mining game.
struct GameResult {
  std::vector<std::uint64_t> blocks_by_miner;  ///< proposal counts
  std::vector<double> reward_fraction;         ///< λ per miner
  std::vector<double> final_stake_share;       ///< end-of-game stake shares
  double mean_block_interval = 0.0;            ///< simulated seconds
  std::uint64_t blocks = 0;
  ValidationReport validation;                 ///< full-chain re-verification
};

/// Factory producing a fresh engine per replication (engines are stateful).
using EngineFactory = std::function<std::unique_ptr<MiningEngine>()>;

/// Runs one game: mines `blocks` blocks from a salted genesis, appending to
/// a real Blockchain and re-validating it at the end.
GameResult RunMiningGame(MiningEngine& engine,
                         const std::vector<Amount>& initial_balances,
                         std::uint64_t blocks, std::uint64_t genesis_salt);

/// Runs `replications` independent games in parallel (distinct genesis
/// salts derived from `seed`) and returns miner `miner`'s λ from each.
/// Throws std::runtime_error if any game fails validation.
std::vector<double> ReplicatedRewardFractions(
    const EngineFactory& factory,
    const std::vector<Amount>& initial_balances, std::uint64_t blocks,
    std::uint64_t replications, std::uint64_t seed, MinerId miner,
    unsigned threads = 0);

}  // namespace fairchain::chain

#endif  // FAIRCHAIN_CHAIN_MINING_GAME_HPP_
