// Difficulty targets and Bitcoin-style retargeting for the PoW engine.

#ifndef FAIRCHAIN_CHAIN_DIFFICULTY_HPP_
#define FAIRCHAIN_CHAIN_DIFFICULTY_HPP_

#include <cstdint>

#include "chain/blockchain.hpp"
#include "support/u256.hpp"

namespace fairchain::chain {

/// Difficulty-adjustment parameters.
struct DifficultyConfig {
  /// Blocks between retargets (Bitcoin: 2016).
  std::uint64_t retarget_interval = 64;
  /// Desired seconds between blocks.
  std::uint64_t target_block_time = 60;
  /// Per-retarget adjustment clamp (Bitcoin: 4).
  std::uint64_t max_adjustment = 4;
};

/// Converts a per-trial success probability p in (0, 1] to the 256-bit
/// target T with Pr[hash < T] = p (up to 64-bit precision in the mantissa).
U256 TargetFromProbability(double p);

/// The success probability corresponding to a target (T / 2^256).
double ProbabilityFromTarget(const U256& target);

/// One retarget step:  new = old * actual_timespan / expected_timespan,
/// with the timespan ratio clamped to [1/max_adjustment, max_adjustment]
/// (the Bitcoin rule).  Never returns zero.
U256 Retarget(const U256& current, std::uint64_t actual_timespan,
              std::uint64_t expected_timespan, std::uint64_t max_adjustment);

/// Computes the target the next PoW block must satisfy, given the chain so
/// far: `genesis_target` until the first full interval, then retargeted
/// every `config.retarget_interval` blocks from observed timestamps.
U256 NextPowTarget(const Blockchain& chain, const U256& genesis_target,
                   const DifficultyConfig& config);

}  // namespace fairchain::chain

#endif  // FAIRCHAIN_CHAIN_DIFFICULTY_HPP_
