// Hash-level mining engines: the substitute for the real clients (Geth,
// Qtum, NXT) the paper deployed on EC2.
//
// Each engine mines blocks by evaluating the *actual* consensus rule with
// real SHA-256 over candidate headers / staking kernels, against 256-bit
// targets in exact integer arithmetic:
//
//   PowEngine    — grinds header nonces; hash(header) < target; Bitcoin-
//                  style retargeting keeps the block interval on target.
//   MlPosEngine  — Qtum/Blackcoin staking: one kernel trial per miner per
//                  timestamp, success iff hash(prev, t, pk) < D * stake;
//                  simultaneous successes tie-break uniformly (the paper's
//                  50 % rule).
//   SlPosEngine  — NXT forging: a single lottery per block,
//                  deadline = basetime * hit / stake, smallest deadline
//                  forges.  With `fair_transform` it becomes the paper's
//                  FSL-PoS treatment: deadline = basetime * -ln(1 - u)/stake.
//   CPosEngine   — Ethereum-2.0-style epochs: P proposer slots drawn from a
//                  hash-seeded committee shuffle + proportional attester
//                  (inflation) rewards, with exact integer conservation.
//
// Randomness: all lottery inputs derive from block hashes (seeded by a
// per-game genesis salt), so a game is a deterministic function of its
// genesis — replications differ only through the salt, as real testnets do.
// The explicit RngStream is used solely for tie-breaks among simultaneous
// successes.

#ifndef FAIRCHAIN_CHAIN_ENGINES_HPP_
#define FAIRCHAIN_CHAIN_ENGINES_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "chain/blockchain.hpp"
#include "chain/difficulty.hpp"
#include "chain/ledger.hpp"
#include "support/rng.hpp"

namespace fairchain::chain {

/// Abstract block producer for one simulated network.
class MiningEngine {
 public:
  virtual ~MiningEngine() = default;

  /// Engine name for reports.
  virtual std::string name() const = 0;

  /// Mines the next block on top of `chain`, minting rewards into `ledger`.
  /// `rng` is used only for tie-breaking.  Implementations never mutate the
  /// chain; the caller appends the returned block.
  virtual Block MineNext(const Blockchain& chain, StakeLedger& ledger,
                         RngStream& rng) = 0;

  /// Whether minted rewards enter the staking balance (PoS) or not (PoW).
  virtual bool RewardStakes() const = 0;
};

/// Deterministic per-miner public key (hash of the miner id) — the pk
/// argument of the staking kernels.
crypto::Digest MinerPublicKey(MinerId miner);

// ---------------------------------------------------------------------------

/// PoW engine configuration.
struct PowEngineConfig {
  /// Hash trials per simulated second, per miner (relative hash power).
  std::vector<std::uint64_t> hash_rates;
  /// Coinbase reward per block, in atoms.
  Amount block_reward = 1000000;
  /// Expected hash trials to find a block at genesis difficulty.
  double initial_expected_trials = 4096.0;
  /// Retargeting rule.
  DifficultyConfig difficulty;
};

/// Nonce-grinding PoW miner network.
class PowEngine : public MiningEngine {
 public:
  explicit PowEngine(PowEngineConfig config);

  std::string name() const override { return "PoW/chain"; }
  Block MineNext(const Blockchain& chain, StakeLedger& ledger,
                 RngStream& rng) override;
  bool RewardStakes() const override { return false; }

  /// The target the next block must satisfy (exposed for tests).
  U256 CurrentTarget(const Blockchain& chain) const;

 private:
  PowEngineConfig config_;
  U256 genesis_target_;
  std::vector<std::uint64_t> nonce_counters_;
};

// ---------------------------------------------------------------------------

/// ML-PoS engine configuration.
struct MlPosEngineConfig {
  /// Block reward in atoms (compounds into stake).
  Amount block_reward = 10000000;
  /// Desired expected timestamps per block (the paper quotes p ~ 1/1200
  /// per miner-second; this is the network-wide expectation).
  std::uint64_t target_spacing = 64;
};

/// Qtum/Blackcoin-style multi-lottery staking network.
class MlPosEngine : public MiningEngine {
 public:
  explicit MlPosEngine(MlPosEngineConfig config);

  std::string name() const override { return "ML-PoS/chain"; }
  Block MineNext(const Blockchain& chain, StakeLedger& ledger,
                 RngStream& rng) override;
  bool RewardStakes() const override { return true; }

  /// Per-atom kernel target, recomputed from current circulation so the
  /// expected spacing stays constant as stake inflates (staking-coin
  /// retargeting).
  U256 KernelBaseTarget(const StakeLedger& ledger) const;

 private:
  MlPosEngineConfig config_;
};

// ---------------------------------------------------------------------------

/// SL-PoS engine configuration.
struct SlPosEngineConfig {
  /// Block reward in atoms (compounds into stake).
  Amount block_reward = 10000000;
  /// Deadline multiplier (NXT's basetime); deadlines are
  /// basetime * hit / stake simulated seconds with hit a 64-bit hash.
  std::uint64_t basetime = 1;
  /// Apply the paper's FSL-PoS inverse-exponential transform (Section 6.2).
  bool fair_transform = false;
};

/// NXT-style single-lottery forging network (optionally FSL-PoS).
class SlPosEngine : public MiningEngine {
 public:
  explicit SlPosEngine(SlPosEngineConfig config);

  std::string name() const override {
    return config_.fair_transform ? "FSL-PoS/chain" : "SL-PoS/chain";
  }
  Block MineNext(const Blockchain& chain, StakeLedger& ledger,
                 RngStream& rng) override;
  bool RewardStakes() const override { return true; }

  /// The forging deadline of `miner` on top of `tip_hash` (exposed so tests
  /// can verify the winner really had the smallest deadline).
  std::uint64_t Deadline(const crypto::Digest& tip_hash, MinerId miner,
                         Amount stake) const;

 private:
  SlPosEngineConfig config_;
};

// ---------------------------------------------------------------------------

/// C-PoS engine configuration.
struct CPosEngineConfig {
  /// Total proposer reward per epoch, in atoms.
  Amount proposer_reward = 10000000;
  /// Total inflation (attester) reward per epoch, in atoms.
  Amount inflation_reward = 100000000;
  /// Proposer slots (shards) per epoch; Ethereum 2.0 uses 32.
  std::uint32_t shards = 32;
  /// Seconds per epoch (timestamp bookkeeping only).
  std::uint64_t epoch_seconds = 384;  // 32 slots * 12 s
};

/// Ethereum-2.0-style compound staking network; one block per epoch is
/// recorded (the slot-0 proposer), rewards cover all P slots + attesters.
class CPosEngine : public MiningEngine {
 public:
  explicit CPosEngine(CPosEngineConfig config);

  std::string name() const override { return "C-PoS/chain"; }
  Block MineNext(const Blockchain& chain, StakeLedger& ledger,
                 RngStream& rng) override;
  bool RewardStakes() const override { return true; }

 private:
  CPosEngineConfig config_;
};

}  // namespace fairchain::chain

#endif  // FAIRCHAIN_CHAIN_ENGINES_HPP_
