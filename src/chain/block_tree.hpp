// BlockTree: fork-aware block storage with longest-chain fork choice.
//
// The linear Blockchain container is enough for the paper's two-miner
// evaluation (honest miners never fork), but a credible substrate must
// handle competing branches: the selfish-mining extension and any
// adversarial analysis need reorgs.  BlockTree stores the full block DAG
// (a tree rooted at genesis), applies the longest-chain rule with
// first-seen tie-breaking (Bitcoin's rule), buffers orphans that arrive
// before their parents, and counts chain reorganisations.

#ifndef FAIRCHAIN_CHAIN_BLOCK_TREE_HPP_
#define FAIRCHAIN_CHAIN_BLOCK_TREE_HPP_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chain/block.hpp"

namespace fairchain::chain {

/// Outcome of BlockTree::Add.
enum class AddBlockResult {
  kAdded,      ///< attached to the tree (tip may have changed)
  kOrphaned,   ///< parent unknown; buffered until the parent arrives
  kDuplicate,  ///< already present
  kInvalid,    ///< malformed (height does not extend its parent)
};

/// A tree of blocks with longest-chain fork choice.
class BlockTree {
 public:
  /// Roots the tree at a genesis block.
  explicit BlockTree(const Block& genesis);

  /// Inserts a block.  Orphans are buffered and attached automatically
  /// when their parent arrives.
  AddBlockResult Add(const Block& block);

  /// Hash of the current best tip.
  const crypto::Digest& TipHash() const { return tip_hash_; }

  /// Height of the current best tip.
  std::uint64_t TipHeight() const;

  /// True when `hash` is a known (attached) block.
  bool Contains(const crypto::Digest& hash) const;

  /// True when `hash` lies on the canonical (best) chain.
  bool IsCanonical(const crypto::Digest& hash) const;

  /// The canonical chain, genesis first.
  std::vector<Block> CanonicalChain() const;

  /// Number of canonical blocks proposed by `miner` (excluding genesis).
  std::uint64_t CanonicalBlocksBy(MinerId miner) const;

  /// Number of attached blocks (including genesis).
  std::size_t size() const { return nodes_.size(); }

  /// Orphans currently buffered.
  std::size_t orphan_count() const { return orphans_.size(); }

  /// Number of tip switches that abandoned at least one block (reorgs).
  std::uint64_t reorg_count() const { return reorg_count_; }

 private:
  struct Node {
    Block block;
    crypto::Digest parent;
    std::uint64_t arrival = 0;  // insertion order, for first-seen ties
  };

  struct DigestHasher {
    std::size_t operator()(const crypto::Digest& digest) const {
      std::size_t value = 0;
      for (int i = 0; i < 8; ++i) {
        value = (value << 8) | digest[i];
      }
      return value;
    }
  };

  AddBlockResult Attach(const Block& block);
  void TryAttachOrphans(const crypto::Digest& parent_hash);
  void MaybeAdoptTip(const crypto::Digest& candidate_hash);

  std::unordered_map<crypto::Digest, Node, DigestHasher> nodes_;
  std::unordered_multimap<crypto::Digest, Block, DigestHasher> orphans_;
  crypto::Digest tip_hash_{};
  std::uint64_t next_arrival_ = 0;
  std::uint64_t reorg_count_ = 0;
};

}  // namespace fairchain::chain

#endif  // FAIRCHAIN_CHAIN_BLOCK_TREE_HPP_
