// Blockchain: an append-only, hash-linked chain of blocks with full
// re-verification.
//
// The chain substrate builds real header chains so that tests can assert
// structural integrity (hash links, height monotonicity, proof-satisfies-
// target) on every simulated mining game — the property a real client's
// block validation enforces.

#ifndef FAIRCHAIN_CHAIN_BLOCKCHAIN_HPP_
#define FAIRCHAIN_CHAIN_BLOCKCHAIN_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "chain/block.hpp"

namespace fairchain::chain {

/// Result of chain validation.
struct ValidationReport {
  bool ok = true;
  std::string error;          ///< empty when ok
  std::uint64_t bad_height = 0;  ///< height of the first offending block
};

/// An in-memory chain anchored at a genesis block.
class Blockchain {
 public:
  /// Creates a chain from a genesis salt: the salt (typically a per-
  /// replication random value) is hashed into the genesis header so that
  /// independent simulated networks have independent hash randomness —
  /// exactly how distinct testnets behave.
  explicit Blockchain(std::uint64_t genesis_salt);

  /// The genesis block.
  const Block& genesis() const { return blocks_.front(); }

  /// The current tip.
  const Block& Tip() const { return blocks_.back(); }

  /// Hash of the current tip (cached).
  const crypto::Digest& TipHash() const { return tip_hash_; }

  /// Number of blocks excluding genesis.
  std::uint64_t height() const {
    return static_cast<std::uint64_t>(blocks_.size()) - 1;
  }

  /// Block at `height` (0 = genesis).
  const Block& at(std::uint64_t height) const { return blocks_[height]; }

  /// All blocks, genesis first.
  const std::vector<Block>& blocks() const { return blocks_; }

  /// Appends a block after structural checks (parent hash, height,
  /// timestamp monotonicity).  Throws std::invalid_argument on violation.
  void Append(const Block& block);

  /// Re-verifies the whole chain: hash links, heights, timestamps, and for
  /// PoW blocks that the header hash meets the recorded target.
  ValidationReport Validate() const;

  /// Count of blocks proposed by `miner` (excluding genesis).
  std::uint64_t BlocksBy(MinerId miner) const;

  /// Average inter-block time in simulated seconds (0 with < 2 blocks).
  double MeanBlockInterval() const;

 private:
  std::vector<Block> blocks_;
  crypto::Digest tip_hash_{};
};

}  // namespace fairchain::chain

#endif  // FAIRCHAIN_CHAIN_BLOCKCHAIN_HPP_
