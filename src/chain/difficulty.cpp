#include "chain/difficulty.hpp"

#include <cmath>
#include <stdexcept>

namespace fairchain::chain {

U256 TargetFromProbability(double p) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument("TargetFromProbability: p must be in (0, 1]");
  }
  if (p == 1.0) return U256::Max();
  // Write p = m * 2^e with m in [0.5, 1); target = floor(m * 2^64) << (192+e).
  int exponent = 0;
  const double mantissa = std::frexp(p, &exponent);  // p = mantissa * 2^exp
  const std::uint64_t mantissa_bits = static_cast<std::uint64_t>(
      std::ldexp(mantissa, 64));  // in [2^63, 2^64)
  const int shift = 192 + exponent;
  if (shift <= -64) return U256(1);  // below representable: smallest target
  U256 target = U256(mantissa_bits);
  if (shift >= 0) {
    target = target << static_cast<unsigned>(shift);
  } else {
    target = target >> static_cast<unsigned>(-shift);
  }
  return target.IsZero() ? U256(1) : target;
}

double ProbabilityFromTarget(const U256& target) {
  constexpr double kTwo256 = 1.157920892373162e77;
  return target.ToDouble() / kTwo256;
}

U256 Retarget(const U256& current, std::uint64_t actual_timespan,
              std::uint64_t expected_timespan, std::uint64_t max_adjustment) {
  if (expected_timespan == 0 || max_adjustment == 0) {
    throw std::invalid_argument("Retarget: invalid parameters");
  }
  std::uint64_t clamped = actual_timespan;
  const std::uint64_t low = expected_timespan / max_adjustment;
  const std::uint64_t high = expected_timespan * max_adjustment;
  if (clamped < low) clamped = low;
  if (clamped > high) clamped = high;
  if (clamped == 0) clamped = 1;
  U256 adjusted = current.MulDivU64(clamped, expected_timespan);
  return adjusted.IsZero() ? U256(1) : adjusted;
}

U256 NextPowTarget(const Blockchain& chain, const U256& genesis_target,
                   const DifficultyConfig& config) {
  const std::uint64_t height = chain.height();
  if (config.retarget_interval == 0) return genesis_target;
  // Walk forward interval by interval, replaying each adjustment — the
  // target is a pure function of the chain, as in real clients.
  U256 target = genesis_target;
  const std::uint64_t interval = config.retarget_interval;
  for (std::uint64_t boundary = interval; boundary <= height;
       boundary += interval) {
    const std::uint64_t window_start = boundary - interval;
    const std::uint64_t actual = chain.at(boundary).header.timestamp -
                                 chain.at(window_start).header.timestamp;
    const std::uint64_t expected = interval * config.target_block_time;
    target = Retarget(target, actual, expected, config.max_adjustment);
  }
  return target;
}

}  // namespace fairchain::chain
