// Block and header structures for the hash-level chain substrate.
//
// This module is the stand-in for the real clients the paper deployed
// (Geth / Qtum / NXT): blocks carry real 256-bit hashes computed with the
// from-scratch SHA-256, link by previous-hash, and record the mining proof
// (nonce / kernel timestamp / lottery deadline) so the whole chain is
// re-verifiable after the fact.  Blocks carry only a coinbase (the block
// reward to the proposer) — the paper's experiments measure reward
// attribution, not transaction throughput, so a transaction pool would add
// noise without changing any measured quantity (see DESIGN.md).

#ifndef FAIRCHAIN_CHAIN_BLOCK_HPP_
#define FAIRCHAIN_CHAIN_BLOCK_HPP_

#include <cstdint>
#include <string>

#include "crypto/sha256.hpp"
#include "support/u256.hpp"

namespace fairchain::chain {

/// Identifier of a miner within a simulated network.
using MinerId = std::uint32_t;

/// Amount type: integer stake/reward atoms (no floating point on-chain).
using Amount = std::uint64_t;

/// The consensus proof type a block was produced under.
enum class ProofKind : std::uint8_t {
  kGenesis = 0,
  kPow = 1,
  kMlPos = 2,
  kSlPos = 3,
  kCPos = 4,
};

/// Returns a human-readable name for a proof kind.
std::string ProofKindName(ProofKind kind);

/// A block header; its SHA-256 over the canonical serialisation is the
/// block hash.
struct BlockHeader {
  std::uint64_t height = 0;
  crypto::Digest prev_hash{};   ///< hash of the parent block
  MinerId proposer = 0;
  std::uint64_t timestamp = 0;  ///< simulated seconds since genesis
  std::uint64_t nonce = 0;      ///< PoW nonce / PoS kernel discriminator
  ProofKind kind = ProofKind::kGenesis;
  U256 target;                  ///< difficulty target the proof satisfied

  /// Canonical serialisation absorbed into the hash.
  void Absorb(crypto::Sha256* hasher) const;

  /// SHA-256 of the canonical serialisation.
  crypto::Digest Hash() const;
};

/// A block: header plus the coinbase reward it mints.
struct Block {
  BlockHeader header;
  Amount reward = 0;  ///< coinbase credited to header.proposer

  /// The block's hash (header hash).
  crypto::Digest Hash() const { return header.Hash(); }
};

/// Interprets a digest as a 256-bit big-endian integer (the mining-target
/// comparison convention).
U256 DigestToU256(const crypto::Digest& digest);

}  // namespace fairchain::chain

#endif  // FAIRCHAIN_CHAIN_BLOCK_HPP_
