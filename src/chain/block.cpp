#include "chain/block.hpp"

namespace fairchain::chain {

std::string ProofKindName(ProofKind kind) {
  switch (kind) {
    case ProofKind::kGenesis:
      return "genesis";
    case ProofKind::kPow:
      return "PoW";
    case ProofKind::kMlPos:
      return "ML-PoS";
    case ProofKind::kSlPos:
      return "SL-PoS";
    case ProofKind::kCPos:
      return "C-PoS";
  }
  return "unknown";
}

void BlockHeader::Absorb(crypto::Sha256* hasher) const {
  hasher->UpdateU64(height);
  hasher->Update(prev_hash.data(), prev_hash.size());
  hasher->UpdateU64(proposer);
  hasher->UpdateU64(timestamp);
  hasher->UpdateU64(nonce);
  hasher->UpdateU64(static_cast<std::uint64_t>(kind));
  std::uint8_t target_bytes[32];
  target.ToBigEndianBytes(target_bytes);
  hasher->Update(target_bytes, sizeof(target_bytes));
}

crypto::Digest BlockHeader::Hash() const {
  crypto::Sha256 hasher;
  Absorb(&hasher);
  return hasher.Finalize();
}

U256 DigestToU256(const crypto::Digest& digest) {
  return U256::FromBigEndianBytes(digest.data());
}

}  // namespace fairchain::chain
