#include "chain/mining_game.hpp"

#include <stdexcept>

#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace fairchain::chain {

GameResult RunMiningGame(MiningEngine& engine,
                         const std::vector<Amount>& initial_balances,
                         std::uint64_t blocks, std::uint64_t genesis_salt) {
  StakeLedger ledger(initial_balances);
  Blockchain chain(genesis_salt);
  RngStream tie_break_rng(genesis_salt ^ 0x5DEECE66DULL);
  for (std::uint64_t i = 0; i < blocks; ++i) {
    const Block block = engine.MineNext(chain, ledger, tie_break_rng);
    chain.Append(block);
  }
  GameResult result;
  result.blocks = blocks;
  const std::size_t miners = ledger.miner_count();
  result.blocks_by_miner.resize(miners);
  result.reward_fraction.resize(miners);
  result.final_stake_share.resize(miners);
  for (MinerId m = 0; m < miners; ++m) {
    result.blocks_by_miner[m] = chain.BlocksBy(m);
    result.reward_fraction[m] = ledger.RewardFraction(m);
    result.final_stake_share[m] = ledger.Share(m);
  }
  result.mean_block_interval = chain.MeanBlockInterval();
  result.validation = chain.Validate();
  return result;
}

std::vector<double> ReplicatedRewardFractions(
    const EngineFactory& factory,
    const std::vector<Amount>& initial_balances, std::uint64_t blocks,
    std::uint64_t replications, std::uint64_t seed, MinerId miner,
    unsigned threads) {
  if (replications == 0) {
    throw std::invalid_argument(
        "ReplicatedRewardFractions: replications must be > 0");
  }
  std::vector<double> lambdas(replications);
  const RngStream master(seed);
  const unsigned workers = threads != 0 ? threads : EnvThreads();
  ParallelForChunked(
      workers, static_cast<std::size_t>(replications),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t rep = begin; rep < end; ++rep) {
          const std::uint64_t salt =
              RngStream(seed).Split(rep).NextU64();
          auto engine = factory();
          const GameResult result =
              RunMiningGame(*engine, initial_balances, blocks, salt);
          if (!result.validation.ok) {
            throw std::runtime_error(
                "ReplicatedRewardFractions: chain validation failed: " +
                result.validation.error);
          }
          lambdas[rep] = result.reward_fraction[miner];
        }
      });
  (void)master;
  return lambdas;
}

}  // namespace fairchain::chain
