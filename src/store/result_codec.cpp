#include "store/result_codec.hpp"

#include <bit>
#include <cstdint>
#include <stdexcept>

namespace fairchain::store {

namespace {

// Absurd-length guard: no real campaign result holds a billion elements in
// one vector; a corrupt length must fail fast, not attempt a 2^60 resize.
constexpr std::uint64_t kMaxElements = 1ULL << 30;

void PutU64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void PutDouble(std::string& out, double value) {
  PutU64(out, std::bit_cast<std::uint64_t>(value));
}

void PutString(std::string& out, const std::string& value) {
  PutU64(out, value.size());
  out.append(value);
}

void PutBool(std::string& out, bool value) {
  out.push_back(value ? '\1' : '\0');
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint64_t U64() {
    if (bytes_.size() - offset_ < 8) Fail("truncated integer");
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(bytes_[offset_ + i]))
               << (8 * i);
    }
    offset_ += 8;
    return value;
  }

  double Double() { return std::bit_cast<double>(U64()); }

  std::string String() {
    const std::uint64_t length = U64();
    if (length > kMaxElements || bytes_.size() - offset_ < length) {
      Fail("truncated string");
    }
    std::string value(bytes_.substr(offset_, length));
    offset_ += length;
    return value;
  }

  bool Bool() {
    if (bytes_.size() - offset_ < 1) Fail("truncated bool");
    const char value = bytes_[offset_++];
    if (value != '\0' && value != '\1') Fail("malformed bool");
    return value == '\1';
  }

  template <typename T, typename Fn>
  std::vector<T> Vector(Fn element) {
    const std::uint64_t count = U64();
    if (count > kMaxElements) Fail("absurd vector length");
    std::vector<T> values;
    values.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) values.push_back(element());
    return values;
  }

  void ExpectEnd() const {
    if (offset_ != bytes_.size()) Fail("trailing bytes after payload");
  }

 private:
  [[noreturn]] static void Fail(const char* what) {
    throw std::runtime_error(std::string("DecodeSimulationResult: ") + what);
  }

  std::string_view bytes_;
  std::size_t offset_ = 0;
};

}  // namespace

std::string EncodeSimulationResult(const core::SimulationResult& result) {
  std::string out;
  PutString(out, result.protocol);
  PutDouble(out, result.initial_share);
  PutDouble(out, result.spec.epsilon);
  PutDouble(out, result.spec.delta);

  const core::SimulationConfig& config = result.config;
  PutU64(out, config.steps);
  PutU64(out, config.replications);
  PutU64(out, config.seed);
  PutU64(out, config.checkpoints.size());
  for (const std::uint64_t checkpoint : config.checkpoints) {
    PutU64(out, checkpoint);
  }
  PutU64(out, config.withhold_period);
  PutU64(out, config.miner);
  PutBool(out, config.population_metrics);
  PutBool(out, config.keep_final_lambdas);

  PutU64(out, result.checkpoints.size());
  for (const core::CheckpointStats& stats : result.checkpoints) {
    PutU64(out, stats.step);
    PutDouble(out, stats.mean);
    PutDouble(out, stats.std_dev);
    PutDouble(out, stats.p05);
    PutDouble(out, stats.p25);
    PutDouble(out, stats.median);
    PutDouble(out, stats.p75);
    PutDouble(out, stats.p95);
    PutDouble(out, stats.min);
    PutDouble(out, stats.max);
    PutDouble(out, stats.unfair_probability);
    PutDouble(out, stats.gini);
    PutDouble(out, stats.hhi);
    PutDouble(out, stats.nakamoto);
    PutDouble(out, stats.top_decile_share);
    PutDouble(out, stats.orphan_rate);
    PutDouble(out, stats.reorg_depth_mean);
    PutDouble(out, stats.reorg_depth_max);
  }
  PutU64(out, result.final_lambdas.size());
  for (const double lambda : result.final_lambdas) PutDouble(out, lambda);
  return out;
}

core::SimulationResult DecodeSimulationResult(std::string_view bytes) {
  Reader reader(bytes);
  core::SimulationResult result;
  result.protocol = reader.String();
  result.initial_share = reader.Double();
  result.spec.epsilon = reader.Double();
  result.spec.delta = reader.Double();

  result.config.steps = reader.U64();
  result.config.replications = reader.U64();
  result.config.seed = reader.U64();
  result.config.checkpoints =
      reader.Vector<std::uint64_t>([&reader] { return reader.U64(); });
  result.config.withhold_period = reader.U64();
  result.config.miner = static_cast<std::size_t>(reader.U64());
  result.config.population_metrics = reader.Bool();
  result.config.keep_final_lambdas = reader.Bool();

  result.checkpoints = reader.Vector<core::CheckpointStats>([&reader] {
    core::CheckpointStats stats;
    stats.step = reader.U64();
    stats.mean = reader.Double();
    stats.std_dev = reader.Double();
    stats.p05 = reader.Double();
    stats.p25 = reader.Double();
    stats.median = reader.Double();
    stats.p75 = reader.Double();
    stats.p95 = reader.Double();
    stats.min = reader.Double();
    stats.max = reader.Double();
    stats.unfair_probability = reader.Double();
    stats.gini = reader.Double();
    stats.hhi = reader.Double();
    stats.nakamoto = reader.Double();
    stats.top_decile_share = reader.Double();
    stats.orphan_rate = reader.Double();
    stats.reorg_depth_mean = reader.Double();
    stats.reorg_depth_max = reader.Double();
    return stats;
  });
  result.final_lambdas =
      reader.Vector<double>([&reader] { return reader.Double(); });
  reader.ExpectEnd();
  return result;
}

}  // namespace fairchain::store
