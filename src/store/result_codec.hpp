// Exact binary serialisation of core::SimulationResult for the campaign
// store.
//
// The codec must be BIT-exact: a cache-served cell has to emit the same
// CSV/JSONL bytes as a freshly computed one, so every double travels as
// its raw IEEE-754 bit pattern (no decimal round trip) and every field of
// the result — including the config it ran under and the per-replication
// final λ vector the verify judge consumes — is carried.  Integers and
// double bit patterns are encoded little-endian, strings and vectors
// length-prefixed.
//
// The layout is versioned by the store's code-version stamp
// (store/campaign_store.hpp): changing this codec REQUIRES bumping
// kStoreSchemaRevision so stale entries are rejected instead of
// misdecoded.

#ifndef FAIRCHAIN_STORE_RESULT_CODEC_HPP_
#define FAIRCHAIN_STORE_RESULT_CODEC_HPP_

#include <string>
#include <string_view>

#include "core/monte_carlo.hpp"

namespace fairchain::store {

/// Serialises `result` to the store's binary payload format.
std::string EncodeSimulationResult(const core::SimulationResult& result);

/// Inverse of EncodeSimulationResult.  Throws std::runtime_error on any
/// malformed input (truncation, trailing bytes, absurd lengths) — a
/// corrupt payload must never decode to a plausible-looking result.
core::SimulationResult DecodeSimulationResult(std::string_view bytes);

}  // namespace fairchain::store

#endif  // FAIRCHAIN_STORE_RESULT_CODEC_HPP_
