// Content-addressed, durable campaign store — the resume/cache layer.
//
// Every finished campaign cell is persisted as one entry keyed by
// SHA-256(canonical cell description), where the description covers
// everything that determines the simulated result: the code-version
// stamp, the protocol and its parameters, the exact stake vector, the
// seed, the horizon/replications/checkpoints, and the fairness spec (see
// sim::CellStorePreimage).  Identical cells — across campaigns, scenario
// names, shard counts, and backends — therefore share one entry, so:
//   * `campaign --store DIR` re-run after a crash skips every cell that
//     finished (resume),
//   * an identical campaign re-run completes entirely from cache,
//   * a code upgrade changes the stamp, which changes every key: stale
//     results are never served.
//
// Durability discipline (the DragonBallChain persistence idiom: write
// sideways, commit atomically, verify on read):
//   * Entries commit via write-to-temp + rename(2).  A writer SIGKILLed
//     mid-entry leaves only a `*.tmp.*` orphan, which lookups never open;
//     the committed namespace only ever contains complete files.
//   * Every entry carries its key, the code-version stamp, the canonical
//     preimage, and a SHA-256 over the payload.  Load() re-verifies all
//     of them; truncation, bit flips, stamp mismatches, or key mismatches
//     come back as kCorrupt / kVersionMismatch — NEVER as a hit — so the
//     caller recomputes and overwrites.  Silently serving a wrong row is
//     structurally impossible: the payload hash has to match first.
//
// Entry layout (binary, little-endian):
//   "FCSTORE1"                     8-byte magic
//   key digest                     32 bytes
//   code version                   length-prefixed string
//   preimage                       length-prefixed string (debuggability:
//                                  `xxd` on an entry shows what it caches)
//   payload                        length-prefixed EncodeSimulationResult
//   payload SHA-256                32 bytes
//
// Thread safety: Load/Put may be called concurrently from campaign
// workers; stats live in atomic obs::MetricsRegistry counters, files are
// written under unique temp names (pid + sequence number).

#ifndef FAIRCHAIN_STORE_CAMPAIGN_STORE_HPP_
#define FAIRCHAIN_STORE_CAMPAIGN_STORE_HPP_

#include <cstdint>
#include <mutex>
#include <string>

#include "core/monte_carlo.hpp"
#include "crypto/sha256.hpp"

namespace fairchain::store {

/// Bump on ANY change to the entry layout, the result codec, or the
/// simulation semantics that existing keys cannot capture.  Part of the
/// code-version stamp, so a bump invalidates every cached cell at once.
inline constexpr int kStoreSchemaRevision = 2;

/// The stamp written into (and checked against) every entry:
/// "<library version>+schema<revision>".
const std::string& DefaultCodeVersion();

/// A content address: the SHA-256 of a canonical cell description, kept
/// together with its preimage for debuggability and header echo.
struct CellKey {
  crypto::Digest digest{};
  std::string preimage;

  /// Lowercase hex of the digest — the entry's file basename.
  std::string Hex() const;
};

/// Hashes a canonical cell description into its content address.
CellKey MakeCellKey(std::string preimage);

enum class LoadStatus {
  kHit,              ///< verified entry, result is valid
  kMiss,             ///< no entry under this key
  kCorrupt,          ///< entry exists but fails verification — recompute
  kVersionMismatch,  ///< entry written by a different code version
};

struct LoadResult {
  LoadStatus status = LoadStatus::kMiss;
  core::SimulationResult result;  ///< populated only for kHit
  std::string detail;             ///< human-readable failure description
};

/// Monotonic per-store counters (one store object = one campaign run's
/// accounting; the CLI prints them).  Backed by the process-wide
/// obs::MetricsRegistry ("store.hits", "store.misses", ...): the store
/// snapshots the counters at construction and stats() reports the delta,
/// so per-store accounting and `--metrics` export share one source of
/// truth.
struct StoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t version_mismatches = 0;
  std::uint64_t writes = 0;
  std::uint64_t write_failures = 0;
};

class CampaignStore {
 public:
  /// Opens (creating if needed) the store directory.  `code_version`
  /// defaults to DefaultCodeVersion(); tests inject synthetic stamps to
  /// exercise the mismatch path.  Throws std::runtime_error when the
  /// directory cannot be created.
  explicit CampaignStore(std::string directory,
                         std::string code_version = DefaultCodeVersion());

  const std::string& directory() const { return directory_; }
  const std::string& code_version() const { return code_version_; }

  /// Absolute path of `key`'s entry file.
  std::string EntryPath(const CellKey& key) const;

  /// Looks `key` up and fully verifies the entry (magic, key echo,
  /// version stamp, payload hash, decode).  Never throws on a bad entry —
  /// corruption is a recoverable cache miss, reported in the status.
  LoadResult Load(const CellKey& key);

  /// Atomically commits `result` under `key` (write temp, fsync-free
  /// rename; an interrupted Put never touches the committed entry).
  /// Returns false and counts a write failure when the filesystem refuses
  /// (disk full, permissions) — caching is best-effort, the campaign's
  /// own output is already correct.
  bool Put(const CellKey& key, const core::SimulationResult& result);

  StoreStats stats() const;

 private:
  std::string directory_;
  std::string code_version_;
  mutable std::mutex mutex_;
  StoreStats baseline_;  ///< registry totals when this store was opened
  std::uint64_t temp_sequence_ = 0;
};

}  // namespace fairchain::store

#endif  // FAIRCHAIN_STORE_CAMPAIGN_STORE_HPP_
