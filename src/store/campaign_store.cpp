#include "store/campaign_store.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/result_codec.hpp"
#include "support/fault_injection.hpp"
#include "support/version.hpp"

namespace fairchain::store {

namespace {

constexpr char kEntryMagic[8] = {'F', 'C', 'S', 'T', 'O', 'R', 'E', '1'};
constexpr std::uint64_t kMaxFieldLength = 1ULL << 32;

void PutU64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

bool GetU64(const std::string& bytes, std::size_t& offset,
            std::uint64_t* value) {
  if (bytes.size() - offset < 8) return false;
  *value = 0;
  for (int i = 0; i < 8; ++i) {
    *value |= static_cast<std::uint64_t>(
                  static_cast<unsigned char>(bytes[offset + i]))
              << (8 * i);
  }
  offset += 8;
  return true;
}

std::uint64_t ProcessId() {
#ifdef _WIN32
  return 0;
#else
  return static_cast<std::uint64_t>(getpid());
#endif
}

// The store's slice of the metrics registry, resolved once: per-store
// stats() values are deltas of these process-wide counters against the
// snapshot taken when the store was opened.
struct StoreCounters {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& corrupt;
  obs::Counter& version_mismatches;
  obs::Counter& writes;
  obs::Counter& write_failures;
};

StoreCounters& Counters() {
  static auto& registry = obs::MetricsRegistry::Global();
  static StoreCounters counters{
      registry.GetCounter("store.hits"),
      registry.GetCounter("store.misses"),
      registry.GetCounter("store.corrupt"),
      registry.GetCounter("store.version_mismatches"),
      registry.GetCounter("store.writes"),
      registry.GetCounter("store.write_failures"),
  };
  return counters;
}

StoreStats CurrentTotals() {
  const StoreCounters& counters = Counters();
  StoreStats totals;
  totals.hits = counters.hits.Value();
  totals.misses = counters.misses.Value();
  totals.corrupt = counters.corrupt.Value();
  totals.version_mismatches = counters.version_mismatches.Value();
  totals.writes = counters.writes.Value();
  totals.write_failures = counters.write_failures.Value();
  return totals;
}

}  // namespace

const std::string& DefaultCodeVersion() {
  static const std::string version =
      std::string(kVersionString) + "+schema" +
      std::to_string(kStoreSchemaRevision);
  return version;
}

std::string CellKey::Hex() const { return crypto::DigestToHex(digest); }

CellKey MakeCellKey(std::string preimage) {
  CellKey key;
  key.digest = crypto::Sha256Digest(preimage);
  key.preimage = std::move(preimage);
  return key;
}

CampaignStore::CampaignStore(std::string directory, std::string code_version)
    : directory_(std::move(directory)),
      code_version_(std::move(code_version)) {
  std::error_code error;
  std::filesystem::create_directories(directory_, error);
  if (error || !std::filesystem::is_directory(directory_)) {
    throw std::runtime_error("CampaignStore: cannot create store directory '" +
                             directory_ + "': " + error.message());
  }
  baseline_ = CurrentTotals();
}

std::string CampaignStore::EntryPath(const CellKey& key) const {
  return directory_ + "/" + key.Hex() + ".cell";
}

LoadResult CampaignStore::Load(const CellKey& key) {
  static auto& load_ns =
      obs::MetricsRegistry::Global().GetHistogram("store.load_ns");
  obs::ScopedLatency latency(load_ns);
  obs::Span load_span("store.load");
  LoadResult loaded;
  auto finish = [&loaded](LoadStatus status, std::string detail) {
    loaded.status = status;
    loaded.detail = std::move(detail);
    StoreCounters& counters = Counters();
    switch (status) {
      case LoadStatus::kHit: counters.hits.Add(); break;
      case LoadStatus::kMiss: counters.misses.Add(); break;
      case LoadStatus::kCorrupt: counters.corrupt.Add(); break;
      case LoadStatus::kVersionMismatch:
        counters.version_mismatches.Add();
        break;
    }
    return loaded;
  };

  const std::string path = EntryPath(key);
  std::ifstream file(path, std::ios::binary);
  if (!file) return finish(LoadStatus::kMiss, "no entry");
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  if (!file.good() && !file.eof()) {
    return finish(LoadStatus::kCorrupt, "unreadable entry " + path);
  }

  std::size_t offset = 0;
  if (bytes.size() < sizeof(kEntryMagic) ||
      std::memcmp(bytes.data(), kEntryMagic, sizeof(kEntryMagic)) != 0) {
    return finish(LoadStatus::kCorrupt, "bad magic in " + path);
  }
  offset += sizeof(kEntryMagic);
  if (bytes.size() - offset < key.digest.size() ||
      std::memcmp(bytes.data() + offset, key.digest.data(),
                  key.digest.size()) != 0) {
    return finish(LoadStatus::kCorrupt, "key mismatch in " + path);
  }
  offset += key.digest.size();

  auto read_string = [&bytes, &offset](std::string* value) {
    std::uint64_t length = 0;
    if (!GetU64(bytes, offset, &length) || length > kMaxFieldLength ||
        bytes.size() - offset < length) {
      return false;
    }
    value->assign(bytes, offset, static_cast<std::size_t>(length));
    offset += static_cast<std::size_t>(length);
    return true;
  };

  std::string entry_version;
  if (!read_string(&entry_version)) {
    return finish(LoadStatus::kCorrupt, "truncated version stamp in " + path);
  }
  if (entry_version != code_version_) {
    return finish(LoadStatus::kVersionMismatch,
                  "entry written by code version '" + entry_version +
                      "', this build is '" + code_version_ + "'");
  }
  std::string preimage;
  if (!read_string(&preimage)) {
    return finish(LoadStatus::kCorrupt, "truncated preimage in " + path);
  }
  if (crypto::Sha256Digest(preimage) != key.digest) {
    return finish(LoadStatus::kCorrupt,
                  "preimage does not hash to the key in " + path);
  }
  std::string payload;
  if (!read_string(&payload)) {
    return finish(LoadStatus::kCorrupt, "truncated payload in " + path);
  }
  if (bytes.size() - offset != key.digest.size()) {
    return finish(LoadStatus::kCorrupt, "truncated payload hash in " + path);
  }
  const crypto::Digest expected = crypto::Sha256Digest(payload);
  if (std::memcmp(bytes.data() + offset, expected.data(), expected.size()) !=
      0) {
    return finish(LoadStatus::kCorrupt,
                  "payload hash mismatch in " + path +
                      " (flipped or truncated bytes)");
  }
  try {
    loaded.result = DecodeSimulationResult(payload);
  } catch (const std::exception& error) {
    return finish(LoadStatus::kCorrupt,
                  std::string("undecodable payload: ") + error.what());
  }
  return finish(LoadStatus::kHit, "");
}

bool CampaignStore::Put(const CellKey& key,
                        const core::SimulationResult& result) {
  static auto& put_ns =
      obs::MetricsRegistry::Global().GetHistogram("store.put_ns");
  obs::ScopedLatency latency(put_ns);
  obs::Span put_span("store.put");
  std::string entry;
  entry.append(kEntryMagic, sizeof(kEntryMagic));
  entry.append(reinterpret_cast<const char*>(key.digest.data()),
               key.digest.size());
  PutU64(entry, code_version_.size());
  entry.append(code_version_);
  PutU64(entry, key.preimage.size());
  entry.append(key.preimage);
  const std::string payload = EncodeSimulationResult(result);
  PutU64(entry, payload.size());
  entry.append(payload);
  const crypto::Digest payload_hash = crypto::Sha256Digest(payload);
  entry.append(reinterpret_cast<const char*>(payload_hash.data()),
               payload_hash.size());

  std::uint64_t sequence = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sequence = ++temp_sequence_;
  }
  // Per-store write ordinal (the fault-injection "nth write" index); the
  // registry counters are process-wide, so subtract this store's opening
  // snapshot.
  const StoreStats totals = CurrentTotals();
  const std::uint64_t write_number = (totals.writes - baseline_.writes) +
                                     (totals.write_failures -
                                      baseline_.write_failures) +
                                     1;
  const std::string temp_path = EntryPath(key) + ".tmp." +
                                std::to_string(ProcessId()) + "." +
                                std::to_string(sequence);
  auto fail = [&temp_path] {
    std::error_code ignored;
    std::filesystem::remove(temp_path, ignored);
    Counters().write_failures.Add();
    return false;
  };

  {
    std::ofstream file(temp_path, std::ios::binary | std::ios::trunc);
    if (!file) return fail();
    // Truncated-temp-file fault point: die with roughly half the entry on
    // disk.  The flush makes the truncation REAL before the kill.
    const std::size_t half = entry.size() / 2;
    file.write(entry.data(), static_cast<std::streamsize>(half));
    file.flush();
    MaybeInjectFault("store-payload", 0, write_number);
    file.write(entry.data() + half,
               static_cast<std::streamsize>(entry.size() - half));
    file.flush();
    if (!file.good()) return fail();
  }
  // Complete-temp-but-uncommitted fault point: the entry bytes exist, the
  // rename has not happened — a resume must treat the cell as missing.
  MaybeInjectFault("store-commit", 0, write_number);
  std::error_code error;
  std::filesystem::rename(temp_path, EntryPath(key), error);
  if (error) return fail();
  Counters().writes.Add();
  return true;
}

StoreStats CampaignStore::stats() const {
  const StoreStats totals = CurrentTotals();
  StoreStats delta;
  delta.hits = totals.hits - baseline_.hits;
  delta.misses = totals.misses - baseline_.misses;
  delta.corrupt = totals.corrupt - baseline_.corrupt;
  delta.version_mismatches =
      totals.version_mismatches - baseline_.version_mismatches;
  delta.writes = totals.writes - baseline_.writes;
  delta.write_failures = totals.write_failures - baseline_.write_failures;
  return delta;
}

}  // namespace fairchain::store
