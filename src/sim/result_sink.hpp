// Streaming result sinks for campaign output.
//
// The CampaignRunner reduces every finished cell to CampaignRows (one row
// per checkpoint, tidy-data style) and streams them to the attached sinks
// in deterministic (cell, checkpoint) order — so CSV and JSONL output is
// byte-identical for any thread count.  Column schemas are stable: new
// columns may only be appended, never reordered or removed, so downstream
// plotting scripts keyed on the header keep working.

#ifndef FAIRCHAIN_SIM_RESULT_SINK_HPP_
#define FAIRCHAIN_SIM_RESULT_SINK_HPP_

#include <cstdint>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/scenario_spec.hpp"

namespace fairchain::sim {

// String escaping (EscapeCsvField / EscapeJsonString) lives in
// support/escape.hpp, shared with Table::WriteCsv and the verify layer.

/// JSON-safe number rendering: FormatDouble for finite values, `null` for
/// NaN / ±Inf (bare nan/inf tokens are not valid JSON).
std::string JsonNumber(double value);

/// One checkpoint of one campaign cell, fully denormalised so every row is
/// self-describing (grid coordinates repeat on purpose — tidy data).
struct CampaignRow {
  std::string scenario;
  std::size_t cell = 0;
  std::string protocol;
  std::size_t miners = 2;
  std::size_t whales = 1;
  double a = 0.0;
  double w = 0.0;
  double v = 0.0;
  std::uint32_t shards = 0;
  std::uint64_t withhold = 0;
  std::uint64_t steps = 0;
  std::uint64_t replications = 0;
  std::uint64_t cell_seed = 0;
  std::size_t checkpoint = 0;  ///< checkpoint index within the cell
  std::uint64_t step = 0;      ///< simulated step the checkpoint records
  double mean = 0.0;
  double std_dev = 0.0;
  double p05 = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double min = 0.0;
  double max = 0.0;
  double unfair_probability = 0.0;
  /// Cell-level convergence step, repeated on each of the cell's rows;
  /// nullopt = "Never" (as in Table 1).
  std::optional<std::uint64_t> convergence_step;
  // Appended columns (schema is append-only; see the class comment).
  std::string stake_dist = "split";  ///< the cell's stake distribution
  /// Population concentration metrics at this checkpoint, averaged over
  /// replications; NaN (CSV `nan`, JSONL null) when the campaign runs with
  /// population metrics off.
  double gini = std::numeric_limits<double>::quiet_NaN();
  double hhi = std::numeric_limits<double>::quiet_NaN();
  double nakamoto = std::numeric_limits<double>::quiet_NaN();
  double top_decile_share = std::numeric_limits<double>::quiet_NaN();
  /// Chain-dynamics columns (appended): the cell's gamma / delay
  /// parameters (0 for incentive cells) and the fork observables at this
  /// checkpoint, NaN (CSV `nan`, JSONL null) for incentive cells.
  double gamma = 0.0;
  double delay = 0.0;
  double orphan_rate = std::numeric_limits<double>::quiet_NaN();
  double reorg_depth_mean = std::numeric_limits<double>::quiet_NaN();
  double reorg_depth_max = std::numeric_limits<double>::quiet_NaN();
};

/// Abstract streaming consumer of campaign rows.  Doubles are rendered
/// with sim::FormatDouble (scenario_spec.hpp): deterministic, shortest
/// round-trip.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Called once before any row; sinks emit headers here.
  virtual void BeginCampaign(const ScenarioSpec& spec) { (void)spec; }

  /// Called once per row, in ascending (cell, checkpoint) order.
  virtual void WriteRow(const CampaignRow& row) = 0;

  /// Called once after the last row; sinks flush here.
  virtual void EndCampaign() {}
};

/// RFC-4180-ish CSV with the stable column schema (Header()).
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(std::ostream& out) : out_(out) {}

  /// The exact header line (no newline); tests pin the schema against it.
  static const std::string& Header();

  void BeginCampaign(const ScenarioSpec& spec) override;
  void WriteRow(const CampaignRow& row) override;
  void EndCampaign() override;

 private:
  std::ostream& out_;
};

/// One JSON object per line with the same field names as the CSV columns;
/// convergence_step is null when fairness is never sustained.
class JsonlSink : public ResultSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(out) {}

  void WriteRow(const CampaignRow& row) override;
  void EndCampaign() override;

 private:
  std::ostream& out_;
};

/// Collects each cell's final checkpoint and prints an aligned summary
/// Table (one row per cell) at EndCampaign — the human-facing view the CLI
/// and the bench wrappers show.
class SummarySink : public ResultSink {
 public:
  /// `emit_basename` feeds Table::Emit (stdout + FAIRCHAIN_CSV_DIR copy).
  explicit SummarySink(std::string emit_basename)
      : emit_basename_(std::move(emit_basename)) {}

  void BeginCampaign(const ScenarioSpec& spec) override;
  void WriteRow(const CampaignRow& row) override;
  void EndCampaign() override;

 private:
  std::string emit_basename_;
  std::string title_;
  std::vector<CampaignRow> final_rows_;
};

/// The standard sink trio every campaign entry point uses: a stdout
/// SummarySink (Table::Emit basename `campaign_<name>_summary`) plus
/// optional streaming CSV and JSONL file sinks.  Owning the streams and
/// the wiring here keeps the CLI and the bench wrappers consistent.
class CampaignFileSinks {
 public:
  /// `scenario_name` determines the summary's Table::Emit basename.
  explicit CampaignFileSinks(const std::string& scenario_name);

  /// Opens the streaming file sinks.  Returns false — leaving both
  /// detached — when either path cannot be opened for writing.
  bool OpenFiles(const std::string& csv_path, const std::string& jsonl_path);

  /// The attached sinks, ready to pass to CampaignRunner::Run.
  std::vector<ResultSink*> sinks();

 private:
  SummarySink summary_;
  std::ofstream csv_file_;
  std::ofstream jsonl_file_;
  std::unique_ptr<CsvSink> csv_;
  std::unique_ptr<JsonlSink> jsonl_;
};

}  // namespace fairchain::sim

#endif  // FAIRCHAIN_SIM_RESULT_SINK_HPP_
