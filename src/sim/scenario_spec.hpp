// Declarative simulation scenarios.
//
// A ScenarioSpec describes a whole campaign — a grid of mining-game cells
// over protocols × parameters — as data instead of code.  Specs come from
// three sources that all meet in the same value type:
//   * the built-in ScenarioRegistry (every paper figure/table + new
//     workloads),
//   * `key=value` text (one assignment per line, '#' comments), via
//     FromText / FromFile,
//   * CLI flag overrides (`--reps 200`), via ApplyOverrides.
//
// The CampaignRunner expands a spec's grid axes into their cartesian
// product of CampaignCells and executes every cell over one execution
// backend (see campaign.hpp and core/execution_backend.hpp).

#ifndef FAIRCHAIN_SIM_SCENARIO_SPEC_HPP_
#define FAIRCHAIN_SIM_SCENARIO_SPEC_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "core/fairness.hpp"
#include "core/monte_carlo.hpp"
#include "support/flags.hpp"

namespace fairchain::sim {

/// Shortest round-trippable decimal rendering of a double
/// (std::to_chars) — the deterministic formatting used by ToText and
/// every result sink, so printed specs and rows parse back to the exact
/// same values.
std::string FormatDouble(double value);

/// How a spec's checkpoint steps are spaced over [1, steps].
enum class CheckpointSpacing {
  kLinear,  ///< LinearCheckpoints (the default for 5k-block horizons)
  kLog,     ///< LogCheckpoints (the Figure 4 style, for 1e5-block horizons)
};

/// Parsed form of a stake-distribution token (grid axis `stakes`):
///   * "split"          — the classic whale/minnow split driven by the
///                        cell's `whales` and `a` fields (the default);
///   * "pareto:<alpha>" — heavy-tailed Pareto population: deterministic
///                        mid-point quantiles of Pareto(alpha), descending,
///                        normalised to sum 1 (alpha > 0; 1.16 is the
///                        classic 80/20 tail);
///   * "zipf:<s>"       — Zipf ranks: stake_i ∝ (i+1)^-s, normalised
///                        (s >= 0; s = 0 is a uniform population).
/// For pareto/zipf the tracked miner (index 0) is the richest; `whales`
/// and `a` are ignored.  Deterministic by construction — no RNG — so cell
/// stakes are reproducible from the spec alone.
struct StakeDistribution {
  enum class Kind { kSplit, kPareto, kZipf };
  Kind kind = Kind::kSplit;
  double parameter = 0.0;
};

/// Parses a stake-distribution token; throws std::invalid_argument on an
/// unknown form or an out-of-range parameter.
StakeDistribution ParseStakeDistribution(const std::string& text);

/// Which physics a spec's cells run.
enum class ScenarioFamily {
  /// The paper's incentive games: `protocols` name protocol::MakeModel
  /// models, rewards compound, every block commits (the default).
  kIncentive,
  /// Chain-dynamics games: `protocols` name chain::ChainDynamics kernels
  /// ("selfish", "forkrace"); blocks fork, race, and orphan, and the
  /// cells additionally record orphan-rate / reorg-depth observables.
  kChain,
  /// Both in one grid: each protocol token resolves per cell — chain
  /// dynamics names run the chain physics, everything else an incentive
  /// model.  The protocol namespaces are disjoint, so resolution is
  /// unambiguous.  Mixed specs carry the chain family's structural
  /// constraints (two miners, one whale, split stakes, no withholding)
  /// and a SINGLE gamma/delay pair (applied to the chain cells, zeroed on
  /// incentive cells so no incentive cell is duplicated across a chain
  /// axis).  This is the family heterogeneous scheduler benchmarks use:
  /// cost-per-replication spans orders of magnitude across one grid.
  kMixed,
};

/// One fully bound grid cell: a single (protocol, parameters) mining game.
struct CampaignCell {
  std::size_t index = 0;      ///< position in the expanded grid, row-major
  std::string protocol;       ///< model name (protocol::MakeModel), or the
                              ///< chain dynamics name for chain cells
  std::size_t miners = 2;     ///< total number of miners
  std::size_t whales = 1;     ///< miners sharing the tracked allocation `a`
  double a = 0.2;             ///< combined initial share of the whales
  double w = 0.01;            ///< block / proposer reward
  double v = 0.1;             ///< inflation reward (C-PoS, Algorand, EOS)
  std::uint32_t shards = 32;  ///< C-PoS committee count P
  std::uint64_t withhold = 0; ///< reward-withholding period (0 = off)
  std::string stake_dist = "split";  ///< stake-distribution token
  /// True for ScenarioFamily::kChain cells: `a` is the tracked hash
  /// share, and gamma / delay parameterise the dynamics.
  bool chain_dynamics = false;
  double gamma = 0.0;  ///< selfish tie-breaking share (chain cells)
  double delay = 0.0;  ///< propagation delay, mean-block-interval units

  /// Stake vector for this cell.  For "split": the first `whales` miners
  /// split `a` equally, the remaining miners split 1 - a equally
  /// (whales == 1 is the paper's Table 1 whale-vs-minnows allocation).
  /// For "pareto:<alpha>" / "zipf:<s>": the deterministic heavy-tailed
  /// population described at StakeDistribution, richest first.
  std::vector<double> Stakes() const;

  /// Compact "protocol=pow a=0.2 ..." rendering for logs and errors.
  std::string Label() const;
};

/// A declarative campaign: grid axes (expanded to their cartesian product)
/// plus the scalar simulation parameters shared by every cell.
struct ScenarioSpec {
  std::string name = "custom";
  std::string description;

  /// Cell physics (`family=incentive|chain|mixed`).  kChain interprets
  /// `protocols` as chain dynamics names ("selfish", "forkrace"), unlocks
  /// the gamma / delay axes, and restricts the incentive-only axes to
  /// their defaults (two miners, one whale, split stakes, no
  /// withholding) — chain games are two-party by construction.  kMixed
  /// resolves each protocol token per cell (see ScenarioFamily::kMixed).
  ScenarioFamily family = ScenarioFamily::kIncentive;

  // Grid axes.  Cells are enumerated row-major in this field order:
  // protocol is the slowest-varying axis, delay the fastest.
  std::vector<std::string> protocols = {"mlpos"};
  std::vector<std::size_t> miner_counts = {2};
  std::vector<std::size_t> whale_counts = {1};
  std::vector<double> allocations = {0.2};
  std::vector<double> rewards = {0.01};
  std::vector<double> inflations = {0.1};
  std::vector<std::uint32_t> shard_counts = {32};
  std::vector<std::uint64_t> withhold_periods = {0};
  std::vector<std::string> stake_dists = {"split"};
  /// Chain-family axes (`gamma=` / `delay=`); must stay at their {0.0}
  /// defaults for incentive specs, so existing grids never reindex.
  std::vector<double> gammas = {0.0};
  std::vector<double> delays = {0.0};

  // Scalars shared by every cell.
  std::uint64_t steps = 5000;
  std::uint64_t replications = 10000;
  std::uint64_t seed = 20210620;
  std::size_t checkpoint_count = 50;
  CheckpointSpacing spacing = CheckpointSpacing::kLinear;
  core::FairnessSpec fairness{0.1, 0.1};
  /// Record Gini / HHI / Nakamoto / top-decile checkpoint metrics (one
  /// O(m log m) sort per replication-checkpoint; turn off for pure
  /// throughput scenarios at extreme populations).
  bool population_metrics = true;
  /// Retain per-replication final-checkpoint λ vectors in cell results
  /// (SimulationResult::final_lambdas, an O(replications) vector per
  /// cell).  The streamed CSV/JSONL rows never read them, so turn off
  /// (`final_lambdas=off`) for 100k-replication cells.
  bool keep_final_lambdas = true;
  /// Stepping mode requested for every cell (`stepping=scalar|vectorized`).
  /// Vectorized only takes effect where core::UsesVectorizedStepping says
  /// so (static-stake models with a lane kernel); every other cell keeps
  /// the scalar path, byte-identical to `stepping=scalar`.
  core::SteppingMode stepping = core::SteppingMode::kScalar;

  /// Throws std::invalid_argument on an empty axis, an unknown protocol,
  /// out-of-range allocations / miner counts, or zero steps/replications.
  void Validate() const;

  /// Number of cells the grid expands to (product of the axis sizes).
  std::size_t CellCount() const;

  /// Expands the grid axes to their cartesian product, row-major in the
  /// field order documented above.  Calls Validate first.
  std::vector<CampaignCell> ExpandCells() const;

  /// Parses `key=value` lines.  Blank lines and whole-line '#' comments
  /// are skipped (values may contain '#'); list-valued keys take
  /// comma-separated values.  Keys:
  ///   name, description, family (incentive|chain|mixed), protocols, miners,
  ///   whales, a, w, v, shards, withhold, stakes (split|pareto:A|zipf:S),
  ///   gamma, delay, steps, reps, seed, checkpoints, spacing (linear|log),
  ///   eps, delta, population (on|off), final_lambdas (on|off),
  ///   stepping (scalar|vectorized)
  /// Unknown keys throw std::invalid_argument (same contract as
  /// FlagSet::RejectUnknown: a typo must not silently become a default).
  static ScenarioSpec FromText(const std::string& text);

  /// FromText over a file's contents; throws std::runtime_error when the
  /// file cannot be read.
  static ScenarioSpec FromFile(const std::string& path);

  /// Renders the spec as FromText-parseable `key=value` lines; round-trips
  /// through FromText.
  std::string ToText() const;

  /// Applies CLI overrides (all optional): --reps, --steps, --seed,
  /// --checkpoints, --spacing, --eps, --delta, --family, --protocols,
  /// --miners, --whales, --a, --w, --v, --shards, --withhold, --stakes,
  /// --gamma, --delay, --population, --final_lambdas, --stepping.
  /// List-valued flags take comma-separated values and replace the whole
  /// axis.
  void ApplyOverrides(const FlagSet& flags);

  /// Flag names ApplyOverrides understands (for FlagSet::RejectUnknown).
  static const std::vector<std::string>& OverrideFlagNames();
};

}  // namespace fairchain::sim

#endif  // FAIRCHAIN_SIM_SCENARIO_SPEC_HPP_
