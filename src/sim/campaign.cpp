#include "sim/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "core/execution_backend.hpp"
#include "protocol/model_factory.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace fairchain::sim {

namespace {

// Everything one cell needs while in flight on the pool.
struct CellExecution {
  CampaignCell cell;
  core::SimulationConfig config;
  std::unique_ptr<protocol::IncentiveModel> model;
  std::vector<double> stakes;
  std::vector<double> lambdas;     // [checkpoint * reps + rep]
  std::vector<double> population;  // PopulationMatrixSize layout (or empty)
  std::once_flag allocate_once;  // matrices allocated by the first chunk
  std::atomic<std::size_t> remaining_chunks{0};
  core::SimulationResult result;
  bool reduced = false;
};

void EmitCellRows(const ScenarioSpec& spec, const CellExecution& execution,
                  const std::vector<ResultSink*>& sinks) {
  const auto convergence = execution.result.ConvergenceStep();
  for (std::size_t c = 0; c < execution.result.checkpoints.size(); ++c) {
    const core::CheckpointStats& stats = execution.result.checkpoints[c];
    CampaignRow row;
    row.scenario = spec.name;
    row.cell = execution.cell.index;
    row.protocol = execution.cell.protocol;
    row.miners = execution.cell.miners;
    row.whales = execution.cell.whales;
    row.a = execution.cell.a;
    row.w = execution.cell.w;
    row.v = execution.cell.v;
    row.shards = execution.cell.shards;
    row.withhold = execution.cell.withhold;
    row.steps = spec.steps;
    row.replications = spec.replications;
    row.cell_seed = execution.config.seed;
    row.checkpoint = c;
    row.step = stats.step;
    row.mean = stats.mean;
    row.std_dev = stats.std_dev;
    row.p05 = stats.p05;
    row.p25 = stats.p25;
    row.median = stats.median;
    row.p75 = stats.p75;
    row.p95 = stats.p95;
    row.min = stats.min;
    row.max = stats.max;
    row.unfair_probability = stats.unfair_probability;
    row.convergence_step = convergence;
    row.stake_dist = execution.cell.stake_dist;
    row.gini = stats.gini;
    row.hhi = stats.hhi;
    row.nakamoto = stats.nakamoto;
    row.top_decile_share = stats.top_decile_share;
    for (ResultSink* sink : sinks) sink->WriteRow(row);
  }
}

}  // namespace

std::uint64_t CellSeed(std::uint64_t master_seed, std::size_t cell_index) {
  // Two SplitMix64 rounds over (seed, index); the golden-ratio multiplier
  // decorrelates adjacent indices before the first mix.
  SplitMix64 mixer(master_seed ^
                   (0x9E3779B97F4A7C15ULL *
                    (static_cast<std::uint64_t>(cell_index) + 1)));
  mixer.Next();
  return mixer.Next();
}

core::SimulationConfig CellConfig(const ScenarioSpec& spec,
                                  const CampaignCell& cell) {
  core::SimulationConfig config;
  config.steps = spec.steps;
  config.replications = spec.replications;
  config.seed = CellSeed(spec.seed, cell.index);
  config.withhold_period = cell.withhold;
  config.population_metrics = spec.population_metrics;
  config.keep_final_lambdas = spec.keep_final_lambdas;
  if (spec.spacing == CheckpointSpacing::kLog) {
    config.checkpoints = core::LogCheckpoints(
        spec.steps, std::max<std::size_t>(2, spec.checkpoint_count),
        std::min<std::uint64_t>(10, spec.steps));
  } else {
    config.checkpoints =
        core::LinearCheckpoints(spec.steps, spec.checkpoint_count);
  }
  return config;
}

core::SimulationConfig CellConfig(const ScenarioSpec& spec,
                                  std::size_t cell_index) {
  const std::vector<CampaignCell> cells = spec.ExpandCells();
  if (cell_index >= cells.size()) {
    throw std::invalid_argument("CellConfig: cell index out of range");
  }
  return CellConfig(spec, cells[cell_index]);
}

CampaignRunner::CampaignRunner(CampaignOptions options)
    : options_(options) {}

std::uint64_t CampaignRunner::ChunkSize(std::uint64_t replications,
                                        unsigned threads) const {
  if (options_.chunk_replications != 0) return options_.chunk_replications;
  // ~4 chunks per worker per cell: fine-grained enough that a finished
  // cell's workers immediately pick up the next cell's chunks, coarse
  // enough that dispatch overhead stays negligible.
  const std::uint64_t chunks = static_cast<std::uint64_t>(threads) * 4;
  return std::max<std::uint64_t>(1, (replications + chunks - 1) / chunks);
}

unsigned CampaignRunner::PlannedConcurrency() const {
  if (options_.backend != nullptr) {
    return std::max(1u, options_.backend->Concurrency());
  }
  return options_.threads != 0 ? options_.threads : EnvThreads();
}

std::vector<ChunkJob> CampaignRunner::PlanJobs(
    const ScenarioSpec& spec) const {
  const std::uint64_t chunk =
      ChunkSize(spec.replications, PlannedConcurrency());
  std::vector<ChunkJob> jobs;
  const std::size_t cells = spec.ExpandCells().size();
  for (std::size_t cell = 0; cell < cells; ++cell) {
    for (std::uint64_t begin = 0; begin < spec.replications; begin += chunk) {
      ChunkJob job;
      job.cell = cell;
      job.begin = static_cast<std::size_t>(begin);
      job.end = static_cast<std::size_t>(
          std::min(spec.replications, begin + chunk));
      jobs.push_back(job);
    }
  }
  return jobs;
}

std::vector<CellOutcome> CampaignRunner::Run(
    const ScenarioSpec& spec, const std::vector<ResultSink*>& sinks) const {
  const std::vector<CampaignCell> cells = spec.ExpandCells();
  const core::ExecutionBackend* backend = options_.backend;
  std::unique_ptr<core::ExecutionBackend> owned_backend;
  if (backend == nullptr) {
    owned_backend = core::MakeDefaultBackend(options_.threads);
    backend = owned_backend.get();
  }

  // Bind every cell fully on this thread: model construction and config
  // validation throw here, never inside a worker.  The λ matrix itself is
  // allocated lazily by the cell's first chunk, so peak memory tracks the
  // cells actually in flight rather than the whole grid.
  std::vector<std::unique_ptr<CellExecution>> executions;
  executions.reserve(cells.size());
  for (const CampaignCell& cell : cells) {
    auto execution = std::make_unique<CellExecution>();
    execution->cell = cell;
    execution->config = CellConfig(spec, cell);
    execution->config.Validate();
    execution->model =
        protocol::MakeModel(cell.protocol, cell.w, cell.v, cell.shards);
    execution->stakes = cell.Stakes();
    executions.push_back(std::move(execution));
  }

  for (ResultSink* sink : sinks) sink->BeginCampaign(spec);

  // Ordered streaming: the worker that reduces a cell drains every
  // consecutive reduced cell starting at next_emit, so sinks always see
  // ascending cell order no matter which cell finishes first.
  std::mutex emit_mutex;
  std::size_t next_emit = 0;

  auto reduce_and_emit = [&](CellExecution& execution) {
    execution.result = core::ReduceToResult(
        execution.model->name(), execution.stakes, execution.config,
        spec.fairness, execution.lambdas, execution.population);
    execution.lambdas.clear();
    execution.lambdas.shrink_to_fit();
    execution.population.clear();
    execution.population.shrink_to_fit();
    std::lock_guard<std::mutex> lock(emit_mutex);
    execution.reduced = true;
    while (next_emit < executions.size() && executions[next_emit]->reduced) {
      EmitCellRows(spec, *executions[next_emit], sinks);
      ++next_emit;
    }
  };

  // Dispatch exactly the job grid PlanJobs describes (the plan the tests
  // assert on), as one Execute batch so cells interleave across workers.
  // Each chunk steps in its worker's thread-local arena, reused across
  // chunks and cells (zero steady-state allocation within a cell).
  const std::vector<ChunkJob> plan = PlanJobs(spec);
  for (const ChunkJob& job : plan) {
    executions[job.cell]->remaining_chunks.fetch_add(1);
  }
  std::vector<std::function<void()>> jobs;
  jobs.reserve(plan.size());
  for (const ChunkJob& job : plan) {
    CellExecution* execution = executions[job.cell].get();
    jobs.push_back([execution, job, &reduce_and_emit] {
      std::call_once(execution->allocate_once, [execution] {
        execution->lambdas.assign(execution->config.checkpoints.size() *
                                      execution->config.replications,
                                  0.0);
        if (execution->config.population_metrics) {
          execution->population.assign(
              core::PopulationMatrixSize(execution->config), 0.0);
        }
      });
      core::RunReplicationRange(*execution->model, execution->stakes,
                                execution->config, job.begin, job.end,
                                execution->lambdas.data(),
                                execution->population.empty()
                                    ? nullptr
                                    : execution->population.data());
      if (execution->remaining_chunks.fetch_sub(1) == 1) {
        reduce_and_emit(*execution);
      }
    });
  }

  backend->Execute(std::move(jobs));

  for (ResultSink* sink : sinks) sink->EndCampaign();

  std::vector<CellOutcome> outcomes;
  outcomes.reserve(executions.size());
  for (auto& execution : executions) {
    CellOutcome outcome;
    outcome.cell = execution->cell;
    outcome.seed = execution->config.seed;
    outcome.result = std::move(execution->result);
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace fairchain::sim
