#include "sim/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>

#include "chain/chain_replication.hpp"
#include "core/execution_backend.hpp"
#include "core/population.hpp"
#include "core/shard_executor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocol/model_factory.hpp"
#include "sim/cost_model.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace fairchain::sim {

namespace {

// Everything one cell needs while in flight on the pool.
struct CellExecution {
  CampaignCell cell;
  core::SimulationConfig config;
  // Incentive cells bind a protocol model; chain cells bind a game spec
  // instead (model stays null) and record per-replication chain
  // observables alongside λ.
  std::unique_ptr<protocol::IncentiveModel> model;
  bool chain = false;
  chain::ChainGameSpec game;
  std::string protocol_name;  // model->name(), or the chain dynamics name
  std::vector<double> stakes;
  std::vector<double> lambdas;      // [checkpoint * reps + rep]
  std::vector<double> population;   // PopulationMatrixSize layout (or empty)
  std::vector<double> chain_matrix; // ChainMatrixSize layout (or empty)
  std::once_flag allocate_once;  // matrices allocated by the first chunk
  std::atomic<std::size_t> remaining_chunks{0};
  core::SimulationResult result;
  bool reduced = false;
};

void EmitCellRows(const ScenarioSpec& spec, const CellExecution& execution,
                  const std::vector<ResultSink*>& sinks) {
  const auto convergence = execution.result.ConvergenceStep();
  for (std::size_t c = 0; c < execution.result.checkpoints.size(); ++c) {
    const core::CheckpointStats& stats = execution.result.checkpoints[c];
    CampaignRow row;
    row.scenario = spec.name;
    row.cell = execution.cell.index;
    row.protocol = execution.cell.protocol;
    row.miners = execution.cell.miners;
    row.whales = execution.cell.whales;
    row.a = execution.cell.a;
    row.w = execution.cell.w;
    row.v = execution.cell.v;
    row.shards = execution.cell.shards;
    row.withhold = execution.cell.withhold;
    row.steps = spec.steps;
    row.replications = spec.replications;
    row.cell_seed = execution.config.seed;
    row.checkpoint = c;
    row.step = stats.step;
    row.mean = stats.mean;
    row.std_dev = stats.std_dev;
    row.p05 = stats.p05;
    row.p25 = stats.p25;
    row.median = stats.median;
    row.p75 = stats.p75;
    row.p95 = stats.p95;
    row.min = stats.min;
    row.max = stats.max;
    row.unfair_probability = stats.unfair_probability;
    row.convergence_step = convergence;
    row.stake_dist = execution.cell.stake_dist;
    row.gini = stats.gini;
    row.hhi = stats.hhi;
    row.nakamoto = stats.nakamoto;
    row.top_decile_share = stats.top_decile_share;
    row.gamma = execution.cell.gamma;
    row.delay = execution.cell.delay;
    row.orphan_rate = stats.orphan_rate;
    row.reorg_depth_mean = stats.reorg_depth_mean;
    row.reorg_depth_max = stats.reorg_depth_max;
    for (ResultSink* sink : sinks) sink->WriteRow(row);
  }
}

// IEEE-754 bit pattern as 16 hex digits: the preimage must distinguish
// bit-different doubles (e.g. 0.1 vs its neighbour), which no decimal
// rendering shorter than 17 significant digits guarantees.
std::string DoubleBits(double value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(
                    std::bit_cast<std::uint64_t>(value)));
  return buffer;
}

// Minimum modeled cost per chunk (1 ms).  Below this, dispatch overhead
// (closure/grant round-trips, payload framing) rivals the work itself — a
// cell whose whole replication budget models cheaper than this floor runs
// as ONE chunk instead of shattering into per-replication confetti.
constexpr double kMinChunkNs = 1e6;

// Longest-processing-time order over the pending chunks: descending
// modeled cost, ties broken by ascending index so the order is a pure
// function of the plan.  Starting the expensive chunks first lets the
// cheap tail level out the finish — the classic LPT bound.
std::vector<std::size_t> LptOrder(const std::vector<ChunkJob>& jobs) {
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&jobs](std::size_t a, std::size_t b) {
              if (jobs[a].cost_ns != jobs[b].cost_ns) {
                return jobs[a].cost_ns > jobs[b].cost_ns;
              }
              return a < b;
            });
  return order;
}

// Full per-cell matrices a forked shard worker computes into; reused
// across the worker's consecutive chunks of one cell.  Under LPT grant
// order a worker's consecutive chunks usually belong to the same
// expensive cell, so the reuse still pays; an out-of-order grant merely
// reallocates — correctness never depends on arrival order.
struct ShardChildState {
  std::size_t cell = std::numeric_limits<std::size_t>::max();
  std::vector<double> lambdas;
  std::vector<double> population;
  std::vector<double> chain_matrix;
};

}  // namespace

std::string CellStorePreimage(const ScenarioSpec& spec,
                              const CampaignCell& cell) {
  const core::SimulationConfig config = CellConfig(spec, cell);
  if (cell.chain_dynamics) {
    // Chain cells fork the preimage under their own header: the physics is
    // different (fork races instead of incentive games), so a chain cell
    // must never collide with an incentive entry — and incentive preimages
    // stay byte-for-byte what they were before chain campaigns existed.
    std::string out = "fairchain-chain-cell-v1\n";
    out += "dynamics=" + cell.protocol + "\n";
    out += "alpha=" + DoubleBits(cell.a) + "\n";
    out += "gamma=" + DoubleBits(cell.gamma) + "\n";
    out += "delay=" + DoubleBits(cell.delay) + "\n";
    out += "steps=" + std::to_string(config.steps);
    out += "\nreplications=" + std::to_string(config.replications);
    out += "\nseed=" + std::to_string(config.seed);
    out += "\ncheckpoints=";
    for (std::size_t i = 0; i < config.checkpoints.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(config.checkpoints[i]);
    }
    out += "\nkeep_final_lambdas=";
    out += config.keep_final_lambdas ? '1' : '0';
    out += "\nepsilon=" + DoubleBits(spec.fairness.epsilon);
    out += "\ndelta=" + DoubleBits(spec.fairness.delta);
    out += "\n";
    return out;
  }
  std::string out = "fairchain-cell-v1\n";
  out += "protocol=" + cell.protocol + "\n";
  out += "w=" + DoubleBits(cell.w) + "\n";
  out += "v=" + DoubleBits(cell.v) + "\n";
  out += "shards=" + std::to_string(cell.shards) + "\n";
  out += "withhold=" + std::to_string(config.withhold_period) + "\n";
  out += "miner=" + std::to_string(config.miner) + "\n";
  out += "stakes=";
  const std::vector<double> stakes = cell.Stakes();
  for (std::size_t i = 0; i < stakes.size(); ++i) {
    if (i != 0) out += ',';
    out += DoubleBits(stakes[i]);
  }
  out += "\nsteps=" + std::to_string(config.steps);
  out += "\nreplications=" + std::to_string(config.replications);
  out += "\nseed=" + std::to_string(config.seed);
  out += "\ncheckpoints=";
  for (std::size_t i = 0; i < config.checkpoints.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(config.checkpoints[i]);
  }
  out += "\npopulation_metrics=";
  out += config.population_metrics ? '1' : '0';
  out += "\nkeep_final_lambdas=";
  out += config.keep_final_lambdas ? '1' : '0';
  out += "\nepsilon=" + DoubleBits(spec.fairness.epsilon);
  out += "\ndelta=" + DoubleBits(spec.fairness.delta);
  out += "\n";
  // Appended ONLY when the cell actually resolves to the lane path: a
  // vectorized request that falls back to scalar (compounding model, no
  // lane kernel) produces byte-identical results, so it must also produce
  // an identical key — and every pre-existing scalar key stays valid.
  if (config.stepping == core::SteppingMode::kVectorized) {
    const auto model =
        protocol::MakeModel(cell.protocol, cell.w, cell.v, cell.shards);
    if (core::UsesVectorizedStepping(*model, config)) {
      out += "stepping=vectorized\n";
    }
  }
  return out;
}

std::uint64_t CellSeed(std::uint64_t master_seed, std::size_t cell_index) {
  // Two SplitMix64 rounds over (seed, index); the golden-ratio multiplier
  // decorrelates adjacent indices before the first mix.
  SplitMix64 mixer(master_seed ^
                   (0x9E3779B97F4A7C15ULL *
                    (static_cast<std::uint64_t>(cell_index) + 1)));
  mixer.Next();
  return mixer.Next();
}

core::SimulationConfig CellConfig(const ScenarioSpec& spec,
                                  const CampaignCell& cell) {
  core::SimulationConfig config;
  config.steps = spec.steps;
  config.replications = spec.replications;
  config.seed = CellSeed(spec.seed, cell.index);
  config.withhold_period = cell.withhold;
  config.population_metrics = spec.population_metrics;
  config.keep_final_lambdas = spec.keep_final_lambdas;
  config.stepping = spec.stepping;
  if (cell.chain_dynamics) {
    // Chain cells have no stake population to take Gini/HHI over and no
    // lane kernel; they record their own observables (the chain matrix)
    // and always step the scalar event machine.
    config.population_metrics = false;
    config.stepping = core::SteppingMode::kScalar;
  }
  if (spec.spacing == CheckpointSpacing::kLog) {
    config.checkpoints = core::LogCheckpoints(
        spec.steps, std::max<std::size_t>(2, spec.checkpoint_count),
        std::min<std::uint64_t>(10, spec.steps));
  } else {
    config.checkpoints =
        core::LinearCheckpoints(spec.steps, spec.checkpoint_count);
  }
  return config;
}

core::SimulationConfig CellConfig(const ScenarioSpec& spec,
                                  std::size_t cell_index) {
  const std::vector<CampaignCell> cells = spec.ExpandCells();
  if (cell_index >= cells.size()) {
    throw std::invalid_argument("CellConfig: cell index out of range");
  }
  return CellConfig(spec, cells[cell_index]);
}

CampaignRunner::CampaignRunner(CampaignOptions options)
    : options_(options) {}

std::uint64_t CampaignRunner::ChunkSize(std::uint64_t replications,
                                        unsigned threads) const {
  if (options_.chunk_replications != 0) return options_.chunk_replications;
  // ~4 chunks per worker per cell: fine-grained enough that a finished
  // cell's workers immediately pick up the next cell's chunks, coarse
  // enough that dispatch overhead stays negligible.
  const std::uint64_t chunks = static_cast<std::uint64_t>(threads) * 4;
  return std::max<std::uint64_t>(1, (replications + chunks - 1) / chunks);
}

unsigned CampaignRunner::PlannedConcurrency() const {
  if (options_.backend != nullptr) {
    return std::max(1u, options_.backend->Concurrency());
  }
  return options_.threads != 0 ? options_.threads : EnvThreads();
}

std::vector<ChunkJob> CampaignRunner::PlanJobs(
    const ScenarioSpec& spec) const {
  const std::vector<CampaignCell> cells = spec.ExpandCells();
  const unsigned threads = PlannedConcurrency();
  // Per-cell modeled replication cost (always finite and positive): the
  // cost model's BENCH-calibrated priors, refined by the EWMA over chunks
  // this process has already observed.  Estimates only shape chunk
  // GEOMETRY — the simulated values depend on (cell seed, replication
  // index) alone, so a wrong estimate costs wall clock, never bytes.
  CostModel& model = CostModel::Global();
  std::vector<double> rep_ns(cells.size(), 1.0);
  double total_ns = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    rep_ns[i] = model.EstimateReplicationNs(cells[i], spec.steps);
    total_ns += rep_ns[i] * static_cast<double>(spec.replications);
  }
  const bool cost_aware = options_.chunk_replications == 0 &&
                          options_.schedule == SchedulePolicy::kCostAware;
  // Cost-aware target: ~4 chunks per worker of EQUAL MODELED COST across
  // the whole campaign (not per cell), floored at kMinChunkNs.  An
  // expensive cell therefore splits into many small-replication chunks
  // while a cheap cell contributes a few large ones — the geometry that
  // keeps every worker busy until the campaign's last millisecond.
  const double target_ns =
      std::max(total_ns / (static_cast<double>(threads) * 4.0), kMinChunkNs);
  std::vector<ChunkJob> jobs;
  for (std::size_t cell = 0; cell < cells.size(); ++cell) {
    std::uint64_t chunk;
    if (cost_aware) {
      const double reps_per_chunk = target_ns / rep_ns[cell];
      chunk = static_cast<std::uint64_t>(std::llround(reps_per_chunk));
      chunk = std::clamp<std::uint64_t>(chunk, 1, spec.replications);
    } else {
      chunk = ChunkSize(spec.replications, threads);
    }
    for (std::uint64_t begin = 0; begin < spec.replications; begin += chunk) {
      ChunkJob job;
      job.cell = cell;
      job.begin = static_cast<std::size_t>(begin);
      job.end = static_cast<std::size_t>(
          std::min(spec.replications, begin + chunk));
      job.cost_ns =
          rep_ns[cell] * static_cast<double>(job.end - job.begin);
      jobs.push_back(job);
    }
  }
  return jobs;
}

std::vector<CellOutcome> CampaignRunner::Run(
    const ScenarioSpec& spec, const std::vector<ResultSink*>& sinks) const {
  const std::vector<CampaignCell> cells = spec.ExpandCells();
  // Campaign-wide metrics (always on; two clock reads per multi-ms unit of
  // work).  Resolved once per Run so the worker lambdas never touch the
  // registry — recording is pure atomics.  --progress reads cells_done /
  // replications_done live; cache-served cells credit their replications
  // so throughput and ETA stay truthful on warm stores.
  auto& metrics = obs::MetricsRegistry::Global();
  obs::Counter& cells_total = metrics.GetCounter("campaign.cells_total");
  obs::Counter& cells_done = metrics.GetCounter("campaign.cells_done");
  obs::Counter& cells_cached = metrics.GetCounter("campaign.cells_cached");
  obs::Counter& chunks_done = metrics.GetCounter("campaign.chunks_done");
  obs::Counter& replications_done =
      metrics.GetCounter("campaign.replications_done");
  obs::Counter& rows_emitted = metrics.GetCounter("campaign.rows_emitted");
  // Chunk latency split by cell family: incentive games and chain
  // fork-races have cost distributions an order of magnitude apart, and a
  // merged histogram hides both.
  obs::LatencyHistogram& chunk_ns_incentive =
      metrics.GetHistogram("campaign.chunk_ns.incentive");
  obs::LatencyHistogram& chunk_ns_chain =
      metrics.GetHistogram("campaign.chunk_ns.chain");
  obs::LatencyHistogram& reduce_ns =
      metrics.GetHistogram("campaign.reduce_ns");
  // Modeled-cost progress: total at Run start (every planned chunk plus
  // cache-served cells), done as chunks complete.  --progress weights its
  // ETA by these, so a campaign that front-loads cheap cells doesn't show
  // a collapsing-then-exploding estimate.
  obs::Counter& cost_total_ns = metrics.GetCounter("campaign.cost_total_ns");
  obs::Counter& cost_done_ns = metrics.GetCounter("campaign.cost_done_ns");
  obs::Span run_span("campaign.run", cells.size());
  cells_total.Add(cells.size());
  const core::ExecutionBackend* backend = options_.backend;
  std::unique_ptr<core::ExecutionBackend> owned_backend;
  if (backend == nullptr) {
    owned_backend = core::MakeDefaultBackend(options_.threads);
    backend = owned_backend.get();
  }

  // Bind every cell fully on this thread: model construction and config
  // validation throw here, never inside a worker.  The λ matrix itself is
  // allocated lazily by the cell's first chunk, so peak memory tracks the
  // cells actually in flight rather than the whole grid.
  std::vector<std::unique_ptr<CellExecution>> executions;
  executions.reserve(cells.size());
  for (const CampaignCell& cell : cells) {
    auto execution = std::make_unique<CellExecution>();
    execution->cell = cell;
    execution->config = CellConfig(spec, cell);
    execution->config.Validate();
    if (cell.chain_dynamics) {
      execution->chain = true;
      execution->game.dynamics = chain::ParseChainDynamics(cell.protocol);
      execution->game.alpha = cell.a;
      execution->game.gamma = cell.gamma;
      execution->game.delay = cell.delay;
      execution->game.Validate();
      execution->protocol_name = cell.protocol;
    } else {
      execution->model =
          protocol::MakeModel(cell.protocol, cell.w, cell.v, cell.shards);
      execution->protocol_name = execution->model->name();
    }
    execution->stakes = cell.Stakes();
    executions.push_back(std::move(execution));
  }

  // Plan the job grid up front (it is pure): per-job modeled costs feed
  // the cost counters below, the cache probe, and the dispatch order.
  const std::vector<ChunkJob> plan = PlanJobs(spec);
  std::vector<double> cell_cost_ns(executions.size(), 0.0);
  double plan_cost_ns = 0.0;
  for (const ChunkJob& job : plan) {
    cell_cost_ns[job.cell] += job.cost_ns;
    plan_cost_ns += job.cost_ns;
  }
  cost_total_ns.Add(static_cast<std::uint64_t>(plan_cost_ns));

  // Content addresses and cache probe.  A verified hit hands the cell its
  // decoded result up front; its chunks are never scheduled.  Corrupt or
  // version-mismatched entries count as misses — the cell recomputes and
  // the Put below overwrites the bad entry.
  store::CampaignStore* cache = options_.store;
  std::vector<store::CellKey> keys;
  std::vector<bool> cached(executions.size(), false);
  if (cache != nullptr) {
    keys.reserve(executions.size());
    for (const auto& execution : executions) {
      keys.push_back(store::MakeCellKey(cache->code_version() + "\n" +
                                        CellStorePreimage(spec,
                                                          execution->cell)));
    }
    if (options_.read_cache) {
      for (std::size_t i = 0; i < executions.size(); ++i) {
        obs::Span probe_span("campaign.store_probe", i);
        store::LoadResult loaded = cache->Load(keys[i]);
        if (loaded.status == store::LoadStatus::kHit) {
          executions[i]->result = std::move(loaded.result);
          executions[i]->reduced = true;
          cached[i] = true;
          cells_cached.Add();
          cells_done.Add();
          replications_done.Add(spec.replications);
          // A cache hit retires the cell's whole modeled cost: the ETA
          // must see warm-store cells as finished work, not free work.
          cost_done_ns.Add(static_cast<std::uint64_t>(cell_cost_ns[i]));
        }
      }
    }
  }

  for (ResultSink* sink : sinks) sink->BeginCampaign(spec);

  // Ordered streaming: the worker that reduces a cell drains every
  // consecutive reduced cell starting at next_emit, so sinks always see
  // ascending cell order no matter which cell finishes first.
  std::mutex emit_mutex;
  std::size_t next_emit = 0;

  // Caller holds emit_mutex.
  auto drain_reduced = [&] {
    while (next_emit < executions.size() && executions[next_emit]->reduced) {
      obs::Span emit_span("campaign.emit", next_emit);
      EmitCellRows(spec, *executions[next_emit], sinks);
      rows_emitted.Add(executions[next_emit]->result.checkpoints.size());
      ++next_emit;
    }
  };

  auto reduce_and_emit = [&](CellExecution& execution, std::size_t index) {
    {
      obs::Span reduce_span("campaign.reduce", index);
      obs::ScopedLatency reduce_latency(reduce_ns);
      execution.result = core::ReduceToResult(
          execution.protocol_name, execution.stakes, execution.config,
          spec.fairness, execution.lambdas, execution.population);
      if (execution.chain) {
        chain::ReduceChainMetrics(execution.config, execution.chain_matrix,
                                  execution.result);
      }
    }
    cells_done.Add();
    execution.lambdas.clear();
    execution.lambdas.shrink_to_fit();
    execution.population.clear();
    execution.population.shrink_to_fit();
    execution.chain_matrix.clear();
    execution.chain_matrix.shrink_to_fit();
    // Persist before emitting: once a cell's rows are visible its entry is
    // committed, so a crash after partial output never loses stored work.
    if (cache != nullptr) cache->Put(keys[index], execution.result);
    std::lock_guard<std::mutex> lock(emit_mutex);
    execution.reduced = true;
    drain_reduced();
  };

  // Emit the cache-served prefix now: when a leading run of cells (or the
  // whole campaign) came from the store, no chunk completion will ever
  // trigger the drain for them.
  {
    std::lock_guard<std::mutex> lock(emit_mutex);
    drain_reduced();
  }

  // Dispatch exactly the job grid PlanJobs describes (the plan the tests
  // assert on) minus cache-served cells, as one batch so cells interleave
  // across workers.
  std::vector<ChunkJob> pending;
  pending.reserve(plan.size());
  for (const ChunkJob& job : plan) {
    if (!cached[job.cell]) pending.push_back(job);
  }
  for (const ChunkJob& job : pending) {
    executions[job.cell]->remaining_chunks.fetch_add(1);
  }

  auto allocate_matrices = [](CellExecution& execution) {
    std::call_once(execution.allocate_once, [&execution] {
      execution.lambdas.assign(execution.config.checkpoints.size() *
                                   execution.config.replications,
                               0.0);
      if (execution.config.population_metrics) {
        execution.population.assign(
            core::PopulationMatrixSize(execution.config), 0.0);
      }
      if (execution.chain) {
        execution.chain_matrix.assign(
            chain::ChainMatrixSize(execution.config), 0.0);
      }
    });
  };

  // Dispatch order: longest modeled cost first under kCostAware (LPT —
  // expensive chunks start early, the cheap tail levels the finish), plan
  // order under kStatic.  Order never affects output: payloads land in
  // pre-addressed slots and emission is cursor-ordered.
  const bool lpt_dispatch =
      options_.schedule == SchedulePolicy::kCostAware && !pending.empty();

  const unsigned process_shards = backend->ProcessShards();
  if (!pending.empty() && process_shards > 0) {
    // Process-sharded path: forked workers pull chunks through the
    // demand-driven grant protocol and stream raw payloads back; the
    // parent commits each payload into the exact matrix slots the
    // in-process path would have written, then runs the identical
    // reduction — which is why output is byte-identical.
    // Payload layout for chunk (cell, begin, end): the [begin, end)
    // columns of every λ checkpoint row, then of every population plane.
    obs::Span execute_span("backend.execute", pending.size());
    // Scheduler observability, recorded parent-side (the child's clock
    // readings die with the fork): per-chunk busy time into the family
    // histograms and the cost model's EWMA, grant round-trip latency, and
    // per-shard busy-nanosecond counters (the busy-fraction skew the
    // traced-shard CI step asserts on).
    obs::LatencyHistogram& grant_ns_hist =
        metrics.GetHistogram("campaign.grant_ns");
    std::vector<obs::Counter*> shard_busy;
    shard_busy.reserve(process_shards);
    for (unsigned s = 0; s < process_shards; ++s) {
      shard_busy.push_back(&metrics.GetCounter(
          "campaign.shard_busy_ns." + std::to_string(s)));
    }
    core::ShardOptions shard_options;
    if (lpt_dispatch) shard_options.grant_order = LptOrder(pending);
    shard_options.on_chunk = [&](const core::ShardChunkStats& stats) {
      const ChunkJob& job = pending[stats.index];
      CellExecution& execution = *executions[job.cell];
      (execution.chain ? chunk_ns_chain : chunk_ns_incentive)
          .Record(stats.busy_ns);
      if (stats.grant_ns != 0) grant_ns_hist.Record(stats.grant_ns);
      shard_busy[stats.shard]->Add(stats.busy_ns);
      CostModel::Global().Observe(execution.cell, execution.config.steps,
                                  job.end - job.begin, stats.busy_ns);
      cost_done_ns.Add(static_cast<std::uint64_t>(job.cost_ns));
    };
    core::RunSharded(
        process_shards, pending.size(),
        // Runs in the forked child.
        [&, state = std::make_shared<ShardChildState>()](std::size_t index) {
          const ChunkJob& job = pending[index];
          CellExecution& execution = *executions[job.cell];
          // Recorded in the forked worker and streamed back over the span
          // message, so the parent's trace shows this chunk on the
          // worker's own track.  (Latency histograms are recorded
          // parent-side via on_chunk — a child-side record dies with the
          // fork.)
          obs::Span chunk_span("campaign.chunk", job.cell);
          const core::SimulationConfig& config = execution.config;
          const std::size_t cp = config.checkpoints.size();
          if (state->cell != job.cell || state->lambdas.empty()) {
            state->cell = job.cell;
            state->lambdas.assign(cp * config.replications, 0.0);
            state->population.assign(
                config.population_metrics
                    ? core::PopulationMatrixSize(config)
                    : 0,
                0.0);
            state->chain_matrix.assign(
                execution.chain ? chain::ChainMatrixSize(config) : 0, 0.0);
          }
          if (execution.chain) {
            chain::RunChainReplicationRange(execution.game, config,
                                            job.begin, job.end,
                                            state->lambdas.data(),
                                            state->chain_matrix.data());
          } else {
            core::RunReplicationRange(*execution.model, execution.stakes,
                                      config, job.begin, job.end,
                                      state->lambdas.data(),
                                      state->population.empty()
                                          ? nullptr
                                          : state->population.data());
          }
          const std::size_t span = job.end - job.begin;
          // Plane rows follow the λ rows: population planes for incentive
          // cells, chain planes for chain cells (never both — chain cells
          // force population_metrics off).  Same marshaling either way.
          const double* plane_data = execution.chain
                                         ? state->chain_matrix.data()
                                         : state->population.data();
          const std::size_t planes =
              execution.chain
                  ? chain::kChainMetricCount * cp
                  : (state->population.empty()
                         ? 0
                         : core::kPopulationMetricCount * cp);
          std::vector<double> payload;
          payload.reserve((cp + planes) * span);
          for (std::size_t c = 0; c < cp; ++c) {
            const double* row =
                state->lambdas.data() + c * config.replications;
            payload.insert(payload.end(), row + job.begin, row + job.end);
          }
          for (std::size_t p = 0; p < planes; ++p) {
            const double* row = plane_data + p * config.replications;
            payload.insert(payload.end(), row + job.begin, row + job.end);
          }
          return payload;
        },
        // Runs in the parent's reader threads.
        [&](std::size_t index, std::vector<double>&& payload) {
          const ChunkJob& job = pending[index];
          CellExecution& execution = *executions[job.cell];
          allocate_matrices(execution);
          const core::SimulationConfig& config = execution.config;
          const std::size_t span = job.end - job.begin;
          const std::size_t cp = config.checkpoints.size();
          double* plane_dest = execution.chain
                                   ? execution.chain_matrix.data()
                                   : execution.population.data();
          const std::size_t planes =
              execution.chain
                  ? chain::kChainMetricCount * cp
                  : (execution.population.empty()
                         ? 0
                         : core::kPopulationMetricCount * cp);
          if (payload.size() != (cp + planes) * span) {
            throw std::runtime_error(
                "campaign shard payload size mismatch for cell " +
                std::to_string(job.cell));
          }
          const double* source = payload.data();
          for (std::size_t c = 0; c < cp; ++c) {
            std::copy(source, source + span,
                      execution.lambdas.data() + c * config.replications +
                          job.begin);
            source += span;
          }
          for (std::size_t p = 0; p < planes; ++p) {
            std::copy(source, source + span,
                      plane_dest + p * config.replications + job.begin);
            source += span;
          }
          chunks_done.Add();
          replications_done.Add(span);
          if (execution.remaining_chunks.fetch_sub(1) == 1) {
            reduce_and_emit(execution, job.cell);
          }
        },
        shard_options);
  } else if (!pending.empty()) {
    // In-process path.  Each chunk steps in its worker's thread-local
    // arena, reused across chunks and cells (zero steady-state allocation
    // within a cell).  Jobs are submitted in dispatch order (LPT under
    // kCostAware); the stealing pool deals them round-robin from there.
    std::vector<std::size_t> submit_order(pending.size());
    std::iota(submit_order.begin(), submit_order.end(), std::size_t{0});
    if (lpt_dispatch) submit_order = LptOrder(pending);
    std::vector<std::function<void()>> jobs;
    jobs.reserve(pending.size());
    for (const std::size_t index : submit_order) {
      const ChunkJob job = pending[index];
      CellExecution* execution = executions[job.cell].get();
      obs::LatencyHistogram* hist =
          execution->chain ? &chunk_ns_chain : &chunk_ns_incentive;
      jobs.push_back([execution, job, hist, &reduce_and_emit,
                      &allocate_matrices, &chunks_done, &replications_done,
                      &cost_done_ns] {
        allocate_matrices(*execution);
        {
          obs::Span chunk_span("campaign.chunk", job.cell);
          // Timed by hand (not ScopedLatency) because the same reading
          // also feeds the cost model's EWMA.
          const auto start = std::chrono::steady_clock::now();
          if (execution->chain) {
            chain::RunChainReplicationRange(execution->game,
                                            execution->config, job.begin,
                                            job.end,
                                            execution->lambdas.data(),
                                            execution->chain_matrix.data());
          } else {
            core::RunReplicationRange(*execution->model, execution->stakes,
                                      execution->config, job.begin, job.end,
                                      execution->lambdas.data(),
                                      execution->population.empty()
                                          ? nullptr
                                          : execution->population.data());
          }
          const std::uint64_t elapsed_ns = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count());
          hist->Record(elapsed_ns);
          CostModel::Global().Observe(execution->cell,
                                      execution->config.steps,
                                      job.end - job.begin, elapsed_ns);
        }
        chunks_done.Add();
        replications_done.Add(job.end - job.begin);
        cost_done_ns.Add(static_cast<std::uint64_t>(job.cost_ns));
        if (execution->remaining_chunks.fetch_sub(1) == 1) {
          reduce_and_emit(*execution, job.cell);
        }
      });
    }
    obs::Span execute_span("backend.execute", jobs.size());
    backend->Execute(std::move(jobs));
  }

  for (ResultSink* sink : sinks) sink->EndCampaign();

  std::vector<CellOutcome> outcomes;
  outcomes.reserve(executions.size());
  for (std::size_t i = 0; i < executions.size(); ++i) {
    CellOutcome outcome;
    outcome.cell = executions[i]->cell;
    outcome.seed = executions[i]->config.seed;
    outcome.result = std::move(executions[i]->result);
    outcome.from_cache = cached[i];
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace fairchain::sim
