// Per-cell execution-cost model for cost-aware campaign scheduling.
//
// The campaign planner needs RELATIVE per-replication costs, not absolute
// ones: chunks are sized to a target of ~equal nanoseconds, so only the
// ratios between cells matter.  Estimates come from two sources layered
// over each other:
//   * Priors calibrated against BENCH_hotpath.json: ns-per-step samples of
//     the batched kernel families (BM_Batched_* at several miner counts,
//     BM_ChainStep for the chain event machine), interpolated
//     log-linearly in the miner count.  C-PoS at two miners costs ~32x a
//     PoW step, which is exactly the spread the scheduler exists to
//     balance.
//   * An online EWMA over OBSERVED chunk latencies: every completed chunk
//     reports (protocol, miners, steps, replications, wall ns) back via
//     Observe, and later estimates for the same (protocol, miner-bucket)
//     key prefer the refined figure.  One mis-calibrated prior therefore
//     self-corrects within a few chunks of the first campaign that runs
//     the protocol.
//
// Estimates NEVER affect simulation output — only chunk geometry and
// dispatch order, which the determinism contract (campaign.hpp) makes
// output-invariant.  They do affect plan geometry, so tests that pin
// PlanJobs shapes call Reset() first to drop refinements recorded by
// earlier tests in the same process.

#ifndef FAIRCHAIN_SIM_COST_MODEL_HPP_
#define FAIRCHAIN_SIM_COST_MODEL_HPP_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "sim/scenario_spec.hpp"

namespace fairchain::sim {

/// Process-wide cost estimator.  Thread-safe: Observe and the estimate
/// queries may race from worker and reader threads.
class CostModel {
 public:
  static CostModel& Global();

  /// Modeled wall nanoseconds of ONE replication of `cell` at `steps`
  /// steps.  Always finite and > 0 — unknown protocols fall back to a
  /// mid-range prior rather than failing, since a wrong estimate only
  /// skews chunk sizes, never results.
  double EstimateReplicationNs(const CampaignCell& cell,
                               std::uint64_t steps) const;

  /// Feeds one observed chunk back into the EWMA: `chunk_ns` wall time for
  /// `replications` replications of `cell` at `steps` steps.  Ignored when
  /// the implied per-step cost is degenerate (zero work or zero time).
  void Observe(const CampaignCell& cell, std::uint64_t steps,
               std::uint64_t replications, std::uint64_t chunk_ns);

  /// Drops every EWMA refinement, restoring pure priors.  For tests that
  /// pin plan geometry.
  void Reset();

 private:
  CostModel() = default;

  // Keyed by (protocol name, log2 miner-count bucket): refinements for
  // 100-miner cells never bleed into 2-miner estimates of the same
  // protocol, whose per-step costs differ by an order of magnitude.
  using Key = std::pair<std::string, unsigned>;

  mutable std::mutex mutex_;
  std::map<Key, double> observed_ns_per_step_;
};

}  // namespace fairchain::sim

#endif  // FAIRCHAIN_SIM_COST_MODEL_HPP_
