// The scenario registry: every paper figure/table plus new workloads as
// pre-registered ScenarioSpecs.
//
// Adding a scenario means adding one Register call in BuildBuiltIns() —
// not a new bench binary.  The `fig*` / `table1` bench executables and the
// `fairchain campaign` CLI both resolve their workloads here, so the grid
// the tests assert on is exactly the grid the benches print.

#ifndef FAIRCHAIN_SIM_SCENARIO_REGISTRY_HPP_
#define FAIRCHAIN_SIM_SCENARIO_REGISTRY_HPP_

#include <string>
#include <vector>

#include "sim/scenario_spec.hpp"

namespace fairchain::sim {

/// An ordered, name-keyed collection of scenario specs.
class ScenarioRegistry {
 public:
  /// The built-in catalogue: the paper's six figures and Table 1 at their
  /// published parameters, plus new workloads (whale-vs-minnows sweep,
  /// multi-whale games, a withholding grid, committee-style stake splits).
  static const ScenarioRegistry& BuiltIn();

  /// Registers `spec` (validated); throws std::invalid_argument when a
  /// spec with the same name already exists.
  void Register(ScenarioSpec spec);

  bool Contains(const std::string& name) const;

  /// Looks up a spec by name; throws std::invalid_argument with the known
  /// names when absent.
  const ScenarioSpec& Get(const std::string& name) const;

  /// Scenario names in registration order.
  std::vector<std::string> Names() const;

  std::size_t size() const { return specs_.size(); }

 private:
  std::vector<ScenarioSpec> specs_;
};

}  // namespace fairchain::sim

#endif  // FAIRCHAIN_SIM_SCENARIO_REGISTRY_HPP_
