#include "sim/scenario_spec.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "chain/chain_replication.hpp"
#include "protocol/model_factory.hpp"

namespace fairchain::sim {

std::string FormatDouble(double value) {
  char buffer[64];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc()) return "nan";
  return std::string(buffer, end);
}

namespace {

std::string Trim(const std::string& text) {
  const std::size_t first = text.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const std::size_t last = text.find_last_not_of(" \t\r");
  return text.substr(first, last - first + 1);
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  std::string current;
  std::istringstream stream(text);
  while (std::getline(stream, current, ',')) {
    current = Trim(current);
    if (!current.empty()) parts.push_back(current);
  }
  return parts;
}

double ParseDouble(const std::string& key, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument("tail");
    return parsed;
  } catch (...) {
    throw std::invalid_argument("ScenarioSpec: " + key +
                                " expects a number, got '" + value + "'");
  }
}

std::uint64_t ParseU64(const std::string& key, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const unsigned long long parsed = std::stoull(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument("tail");
    return static_cast<std::uint64_t>(parsed);
  } catch (...) {
    throw std::invalid_argument("ScenarioSpec: " + key +
                                " expects an integer, got '" + value + "'");
  }
}

std::vector<double> ParseDoubleList(const std::string& key,
                                    const std::string& value) {
  std::vector<double> parsed;
  for (const std::string& part : SplitCommas(value)) {
    parsed.push_back(ParseDouble(key, part));
  }
  if (parsed.empty()) {
    throw std::invalid_argument("ScenarioSpec: " + key + " must not be empty");
  }
  return parsed;
}

std::vector<std::uint64_t> ParseU64List(const std::string& key,
                                        const std::string& value) {
  std::vector<std::uint64_t> parsed;
  for (const std::string& part : SplitCommas(value)) {
    parsed.push_back(ParseU64(key, part));
  }
  if (parsed.empty()) {
    throw std::invalid_argument("ScenarioSpec: " + key + " must not be empty");
  }
  return parsed;
}

CheckpointSpacing ParseSpacing(const std::string& value) {
  if (value == "linear") return CheckpointSpacing::kLinear;
  if (value == "log") return CheckpointSpacing::kLog;
  throw std::invalid_argument(
      "ScenarioSpec: spacing expects linear|log, got '" + value + "'");
}

bool ParseOnOff(const std::string& key, const std::string& value) {
  if (value == "on") return true;
  if (value == "off") return false;
  throw std::invalid_argument("ScenarioSpec: " + key +
                              " expects on|off, got '" + value + "'");
}

template <typename T>
std::string JoinList(const std::vector<T>& values) {
  std::ostringstream out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out << ",";
    out << values[i];
  }
  return out.str();
}

// Doubles use the shortest-round-trip rendering so ToText output parses
// back to bitwise-identical values (plain operator<< truncates at 6
// significant digits).
std::string JoinDoubles(const std::vector<double>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ",";
    out += FormatDouble(values[i]);
  }
  return out;
}

// Applies one key=value assignment; shared by FromText and ApplyOverrides.
void Assign(ScenarioSpec& spec, const std::string& key,
            const std::string& value) {
  if (key == "name") {
    spec.name = value;
  } else if (key == "description") {
    spec.description = value;
  } else if (key == "family") {
    if (value == "incentive") {
      spec.family = ScenarioFamily::kIncentive;
    } else if (value == "chain") {
      spec.family = ScenarioFamily::kChain;
    } else if (value == "mixed") {
      spec.family = ScenarioFamily::kMixed;
    } else {
      throw std::invalid_argument(
          "ScenarioSpec: family expects incentive|chain|mixed, got '" +
          value + "'");
    }
  } else if (key == "gamma") {
    spec.gammas = ParseDoubleList(key, value);
  } else if (key == "delay") {
    spec.delays = ParseDoubleList(key, value);
  } else if (key == "protocols") {
    spec.protocols = SplitCommas(value);
  } else if (key == "miners") {
    spec.miner_counts.clear();
    for (const std::uint64_t m : ParseU64List(key, value)) {
      spec.miner_counts.push_back(static_cast<std::size_t>(m));
    }
  } else if (key == "whales") {
    spec.whale_counts.clear();
    for (const std::uint64_t m : ParseU64List(key, value)) {
      spec.whale_counts.push_back(static_cast<std::size_t>(m));
    }
  } else if (key == "a") {
    spec.allocations = ParseDoubleList(key, value);
  } else if (key == "w") {
    spec.rewards = ParseDoubleList(key, value);
  } else if (key == "v") {
    spec.inflations = ParseDoubleList(key, value);
  } else if (key == "shards") {
    spec.shard_counts.clear();
    for (const std::uint64_t p : ParseU64List(key, value)) {
      spec.shard_counts.push_back(static_cast<std::uint32_t>(p));
    }
  } else if (key == "withhold") {
    spec.withhold_periods = ParseU64List(key, value);
  } else if (key == "stakes") {
    spec.stake_dists = SplitCommas(value);
    // Fail at assignment time, matching the numeric keys' behaviour.
    for (const std::string& dist : spec.stake_dists) {
      ParseStakeDistribution(dist);
    }
    if (spec.stake_dists.empty()) {
      throw std::invalid_argument("ScenarioSpec: stakes must not be empty");
    }
  } else if (key == "population") {
    spec.population_metrics = ParseOnOff(key, value);
  } else if (key == "final_lambdas") {
    spec.keep_final_lambdas = ParseOnOff(key, value);
  } else if (key == "stepping") {
    if (value == "scalar") {
      spec.stepping = core::SteppingMode::kScalar;
    } else if (value == "vectorized") {
      spec.stepping = core::SteppingMode::kVectorized;
    } else {
      throw std::invalid_argument(
          "ScenarioSpec: stepping expects scalar|vectorized, got '" + value +
          "'");
    }
  } else if (key == "steps") {
    spec.steps = ParseU64(key, value);
  } else if (key == "reps") {
    spec.replications = ParseU64(key, value);
  } else if (key == "seed") {
    spec.seed = ParseU64(key, value);
  } else if (key == "checkpoints") {
    spec.checkpoint_count = static_cast<std::size_t>(ParseU64(key, value));
  } else if (key == "spacing") {
    spec.spacing = ParseSpacing(value);
  } else if (key == "eps") {
    spec.fairness.epsilon = ParseDouble(key, value);
  } else if (key == "delta") {
    spec.fairness.delta = ParseDouble(key, value);
  } else {
    throw std::invalid_argument("ScenarioSpec: unknown key '" + key + "'");
  }
}

}  // namespace

StakeDistribution ParseStakeDistribution(const std::string& text) {
  StakeDistribution dist;
  if (text == "split") return dist;
  const std::size_t colon = text.find(':');
  const std::string form = text.substr(0, colon);
  if (form != "pareto" && form != "zipf") {
    throw std::invalid_argument(
        "ScenarioSpec: stakes expects split|pareto:<alpha>|zipf:<s>, got '" +
        text + "'");
  }
  if (colon == std::string::npos || colon + 1 == text.size()) {
    throw std::invalid_argument("ScenarioSpec: '" + form +
                                "' stake distribution needs a parameter "
                                "(e.g. '" +
                                form + ":1.16')");
  }
  dist.parameter = ParseDouble("stakes", text.substr(colon + 1));
  if (form == "pareto") {
    dist.kind = StakeDistribution::Kind::kPareto;
    if (!(dist.parameter > 0.0)) {
      throw std::invalid_argument(
          "ScenarioSpec: pareto alpha must be > 0, got '" + text + "'");
    }
  } else {
    dist.kind = StakeDistribution::Kind::kZipf;
    if (!(dist.parameter >= 0.0)) {
      throw std::invalid_argument("ScenarioSpec: zipf s must be >= 0, got '" +
                                  text + "'");
    }
  }
  return dist;
}

std::vector<double> CampaignCell::Stakes() const {
  const StakeDistribution dist = ParseStakeDistribution(stake_dist);
  std::vector<double> stakes(miners);
  if (dist.kind == StakeDistribution::Kind::kSplit) {
    for (std::size_t i = 0; i < miners; ++i) {
      stakes[i] = i < whales
                      ? a / static_cast<double>(whales)
                      : (1.0 - a) / static_cast<double>(miners - whales);
    }
    return stakes;
  }
  const double m = static_cast<double>(miners);
  double total = 0.0;
  for (std::size_t i = 0; i < miners; ++i) {
    double value;
    if (dist.kind == StakeDistribution::Kind::kPareto) {
      // Deterministic mid-point quantiles of Pareto(alpha, x_m = 1),
      // richest first: the i-th stake is the (1 - (i+0.5)/m)-quantile
      // x = ((i + 0.5) / m)^(-1/alpha).
      value = std::pow((static_cast<double>(i) + 0.5) / m,
                       -1.0 / dist.parameter);
    } else {
      value = std::pow(static_cast<double>(i + 1), -dist.parameter);
    }
    stakes[i] = value;
    total += value;
  }
  // Normalise to a unit total so the reward parameters (w, v) keep their
  // paper interpretation relative to the initial resource pool.
  for (double& value : stakes) value /= total;
  // Extreme parameters (e.g. pareto alpha near 0) overflow pow() to inf and
  // normalise to NaN; fail here, on the thread that expanded the cell — a
  // NaN vector would otherwise first throw inside a worker job, where the
  // execution backends document that jobs must not throw.
  for (const double value : stakes) {
    if (!std::isfinite(value)) {
      throw std::invalid_argument(
          "ScenarioSpec: stake distribution '" + stake_dist +
          "' is numerically degenerate at " + std::to_string(miners) +
          " miners (non-finite stake); use a less extreme parameter");
    }
  }
  return stakes;
}

std::string CampaignCell::Label() const {
  std::ostringstream out;
  if (chain_dynamics) {
    // Chain cells: only the parameters that matter to the dynamics.
    out << "dynamics=" << protocol << " a=" << a << " gamma=" << gamma
        << " delay=" << delay;
    return out.str();
  }
  out << "protocol=" << protocol << " miners=" << miners;
  if (whales != 1) out << " whales=" << whales;
  out << " a=" << a << " w=" << w << " v=" << v << " shards=" << shards;
  if (withhold != 0) out << " withhold=" << withhold;
  if (stake_dist != "split") out << " stakes=" << stake_dist;
  return out.str();
}

void ScenarioSpec::Validate() const {
  auto require = [](bool condition, const std::string& message) {
    if (!condition) throw std::invalid_argument("ScenarioSpec: " + message);
  };
  require(!name.empty(), "name must not be empty");
  for (const char c : name) {
    // The name is written verbatim into CSV fields and JSON strings; a
    // restricted alphabet keeps both formats valid without escaping.
    const bool allowed = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                         (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                         c == '.';
    require(allowed,
            "name may only contain letters, digits, '-', '_', '.' (got '" +
                name + "')");
  }
  require(!protocols.empty(), "protocols must not be empty");
  if (family == ScenarioFamily::kMixed) {
    // Mixed specs: each protocol token must resolve in exactly one of the
    // two (disjoint) namespaces, and the grid carries the chain family's
    // structural constraints — the chain cells are two-party games, and
    // the incentive cells must share their coordinates so one grid holds
    // both.  gamma/delay apply to the chain cells only and are pinned to
    // a single value each: incentive cells zero them out, so a second
    // gamma would mint duplicate incentive cells.
    for (const std::string& protocol : protocols) {
      require(chain::IsKnownChainDynamicsName(protocol) ||
                  protocol::IsKnownModelName(protocol),
              "unknown protocol '" + protocol +
                  "' (mixed family accepts incentive models and chain "
                  "dynamics names)");
    }
    require(miner_counts == std::vector<std::size_t>{2},
            "mixed family requires miners=2 (chain games are two-party)");
    require(whale_counts == std::vector<std::size_t>{1},
            "mixed family requires whales=1");
    require(withhold_periods == std::vector<std::uint64_t>{0},
            "mixed family does not support withholding (withhold=0)");
    require(stake_dists == std::vector<std::string>{"split"},
            "mixed family requires stakes=split (a is the hash share)");
    require(gammas.size() == 1,
            "mixed family requires a single gamma (chain cells only)");
    require(gammas[0] >= 0.0 && gammas[0] <= 1.0,
            "gamma must lie in [0, 1]");
    require(delays.size() == 1,
            "mixed family requires a single delay (chain cells only)");
    require(std::isfinite(delays[0]) && delays[0] >= 0.0,
            "delay must be finite and >= 0");
  } else if (family == ScenarioFamily::kChain) {
    // Chain-dynamics specs: protocols name chain kernels, gamma/delay are
    // live axes, and the incentive-only axes must sit at their defaults —
    // chain games are two-party (tracked share a vs the rest) with no
    // notion of whales, rewards, shards, or withholding.
    for (const std::string& protocol : protocols) {
      require(chain::IsKnownChainDynamicsName(protocol),
              "unknown chain dynamics '" + protocol +
                  "' (chain family expects selfish|forkrace)");
    }
    require(miner_counts == std::vector<std::size_t>{2},
            "chain family requires miners=2 (two-party games)");
    require(whale_counts == std::vector<std::size_t>{1},
            "chain family requires whales=1");
    require(withhold_periods == std::vector<std::uint64_t>{0},
            "chain family does not support withholding (withhold=0)");
    require(stake_dists == std::vector<std::string>{"split"},
            "chain family requires stakes=split (a is the hash share)");
    require(!gammas.empty(), "gamma must not be empty");
    for (const double gamma : gammas) {
      require(gamma >= 0.0 && gamma <= 1.0, "every gamma must lie in [0, 1]");
    }
    require(!delays.empty(), "delay must not be empty");
    for (const double delay : delays) {
      require(std::isfinite(delay) && delay >= 0.0,
              "every delay must be finite and >= 0");
    }
  } else {
    for (const std::string& protocol : protocols) {
      require(protocol::IsKnownModelName(protocol),
              "unknown protocol '" + protocol + "'");
    }
    // Keep the chain-only axes pinned at their defaults so incentive grids
    // never reindex (and ToText round-trips losslessly without emitting
    // the chain keys).
    require(gammas == std::vector<double>{0.0},
            "gamma is a chain-family axis (set family=chain)");
    require(delays == std::vector<double>{0.0},
            "delay is a chain-family axis (set family=chain)");
  }
  require(!miner_counts.empty(), "miners must not be empty");
  for (const std::size_t miners : miner_counts) {
    require(miners >= 2, "every miner count must be >= 2");
  }
  require(!whale_counts.empty(), "whales must not be empty");
  for (const std::size_t whales : whale_counts) {
    require(whales >= 1, "every whale count must be >= 1");
    for (const std::size_t miners : miner_counts) {
      require(whales < miners,
              "whale count must be < miner count so minnows exist");
    }
  }
  require(!allocations.empty(), "a must not be empty");
  for (const double a : allocations) {
    require(a > 0.0 && a < 1.0, "every a must lie in (0, 1)");
  }
  require(!rewards.empty(), "w must not be empty");
  for (const double w : rewards) require(w > 0.0, "every w must be > 0");
  require(!inflations.empty(), "v must not be empty");
  for (const double v : inflations) require(v >= 0.0, "every v must be >= 0");
  require(!shard_counts.empty(), "shards must not be empty");
  for (const std::uint32_t shards : shard_counts) {
    require(shards >= 1, "every shard count must be >= 1");
  }
  require(!withhold_periods.empty(), "withhold must not be empty");
  require(!stake_dists.empty(), "stakes must not be empty");
  for (const std::string& dist : stake_dists) {
    ParseStakeDistribution(dist);  // throws with a precise message
  }
  require(steps > 0, "steps must be > 0");
  require(replications > 0, "reps must be > 0");
  require(checkpoint_count > 0, "checkpoints must be > 0");
  fairness.Validate();
}

std::size_t ScenarioSpec::CellCount() const {
  return protocols.size() * miner_counts.size() * whale_counts.size() *
         allocations.size() * rewards.size() * inflations.size() *
         shard_counts.size() * withhold_periods.size() * stake_dists.size() *
         gammas.size() * delays.size();
}

std::vector<CampaignCell> ScenarioSpec::ExpandCells() const {
  Validate();
  std::vector<CampaignCell> cells;
  cells.reserve(CellCount());
  for (const std::string& protocol : protocols) {
    for (const std::size_t miners : miner_counts) {
      for (const std::size_t whales : whale_counts) {
        for (const double a : allocations) {
          for (const double w : rewards) {
            for (const double v : inflations) {
              for (const std::uint32_t shards : shard_counts) {
                for (const std::uint64_t withhold : withhold_periods) {
                  for (const std::string& stake_dist : stake_dists) {
                    for (const double gamma : gammas) {
                      for (const double delay : delays) {
                        CampaignCell cell;
                        cell.index = cells.size();
                        cell.protocol = protocol;
                        cell.miners = miners;
                        cell.whales = whales;
                        cell.a = a;
                        cell.w = w;
                        cell.v = v;
                        cell.shards = shards;
                        cell.withhold = withhold;
                        cell.stake_dist = stake_dist;
                        // Mixed grids resolve the family per cell; the
                        // namespaces are disjoint (Validate rejects any
                        // token known to neither).
                        cell.chain_dynamics =
                            family == ScenarioFamily::kChain ||
                            (family == ScenarioFamily::kMixed &&
                             chain::IsKnownChainDynamicsName(protocol));
                        // Incentive cells carry no chain axes: zeroing
                        // them keeps their store preimages and labels
                        // identical to the same cell in a pure incentive
                        // spec.
                        cell.gamma = cell.chain_dynamics ? gamma : 0.0;
                        cell.delay = cell.chain_dynamics ? delay : 0.0;
                        cells.push_back(std::move(cell));
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

ScenarioSpec ScenarioSpec::FromText(const std::string& text) {
  ScenarioSpec spec;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  std::map<std::string, std::size_t> first_assignment;
  while (std::getline(stream, line)) {
    ++line_number;
    line = Trim(line);
    // Comments are whole lines only, so values (e.g. a description) may
    // contain '#'.
    if (line.empty() || line.front() == '#') continue;
    const std::size_t equals = line.find('=');
    if (equals == std::string::npos) {
      throw std::invalid_argument(
          "ScenarioSpec: line " + std::to_string(line_number) +
          " is not a key=value assignment: '" + line + "'");
    }
    const std::string key = Trim(line.substr(0, equals));
    // A repeated key is almost always an editing mistake; silently letting
    // the last assignment win would discard half the intended grid.
    const auto [it, inserted] = first_assignment.emplace(key, line_number);
    if (!inserted) {
      throw std::invalid_argument(
          "ScenarioSpec: duplicate key '" + key + "' on line " +
          std::to_string(line_number) + " (first assigned on line " +
          std::to_string(it->second) + ")");
    }
    Assign(spec, key, Trim(line.substr(equals + 1)));
  }
  return spec;
}

ScenarioSpec ScenarioSpec::FromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("ScenarioSpec: cannot read '" + path + "'");
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  // A directory opens "successfully" but reads nothing, as does an empty
  // or comment-only file; running the all-defaults campaign for any of
  // these would be the silent-fallback failure mode this layer exists to
  // prevent, so require at least one assignment line.
  bool has_assignment = false;
  {
    std::istringstream lines(contents.str());
    std::string line;
    while (std::getline(lines, line)) {
      line = Trim(line);
      if (!line.empty() && line.front() != '#') {
        has_assignment = true;
        break;
      }
    }
  }
  if (!has_assignment) {
    throw std::runtime_error("ScenarioSpec: '" + path +
                             "' is empty or not a readable spec file");
  }
  ScenarioSpec spec = FromText(contents.str());
  if (spec.name == "custom") {
    // Default the name to the file's basename so sinks and logs name it.
    std::string base = path;
    const std::size_t slash = base.find_last_of("/\\");
    if (slash != std::string::npos) base = base.substr(slash + 1);
    const std::size_t dot = base.find_last_of('.');
    if (dot != std::string::npos && dot > 0) base = base.substr(0, dot);
    if (!base.empty()) spec.name = base;
  }
  return spec;
}

std::string ScenarioSpec::ToText() const {
  std::ostringstream out;
  out << "name=" << name << "\n";
  if (!description.empty()) out << "description=" << description << "\n";
  // Only chain specs emit the family/gamma/delay keys, keeping incentive
  // ToText output byte-identical to earlier revisions (pinned in tests and
  // embedded in stored campaign metadata).
  if (family == ScenarioFamily::kChain || family == ScenarioFamily::kMixed) {
    out << (family == ScenarioFamily::kChain ? "family=chain\n"
                                             : "family=mixed\n")
        << "gamma=" << JoinDoubles(gammas) << "\n"
        << "delay=" << JoinDoubles(delays) << "\n";
  }
  out << "protocols=" << JoinList(protocols) << "\n"
      << "miners=" << JoinList(miner_counts) << "\n"
      << "whales=" << JoinList(whale_counts) << "\n"
      << "a=" << JoinDoubles(allocations) << "\n"
      << "w=" << JoinDoubles(rewards) << "\n"
      << "v=" << JoinDoubles(inflations) << "\n"
      << "shards=" << JoinList(shard_counts) << "\n"
      << "withhold=" << JoinList(withhold_periods) << "\n"
      << "stakes=" << JoinList(stake_dists) << "\n"
      << "steps=" << steps << "\n"
      << "reps=" << replications << "\n"
      << "seed=" << seed << "\n"
      << "checkpoints=" << checkpoint_count << "\n"
      << "spacing="
      << (spacing == CheckpointSpacing::kLog ? "log" : "linear") << "\n"
      << "eps=" << FormatDouble(fairness.epsilon) << "\n"
      << "delta=" << FormatDouble(fairness.delta) << "\n"
      << "population=" << (population_metrics ? "on" : "off") << "\n"
      << "final_lambdas=" << (keep_final_lambdas ? "on" : "off") << "\n"
      << "stepping="
      << (stepping == core::SteppingMode::kVectorized ? "vectorized"
                                                      : "scalar")
      << "\n";
  return out.str();
}

void ScenarioSpec::ApplyOverrides(const FlagSet& flags) {
  for (const std::string& key : OverrideFlagNames()) {
    if (flags.Has(key)) Assign(*this, key, flags.GetString(key, ""));
  }
}

const std::vector<std::string>& ScenarioSpec::OverrideFlagNames() {
  static const std::vector<std::string> names = {
      "family",    "protocols",   "miners",  "whales", "a",
      "w",         "v",           "shards",  "withhold", "stakes",
      "gamma",     "delay",       "steps",   "reps",   "seed",
      "checkpoints", "spacing",   "eps",     "delta",  "population",
      "final_lambdas", "stepping"};
  return names;
}

}  // namespace fairchain::sim
