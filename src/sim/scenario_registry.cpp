#include "sim/scenario_registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace fairchain::sim {

namespace {

// Edit distance between scenario names, for "did you mean" suggestions
// (the same idiom FlagSet and the backend parser use for their names).
std::size_t Levenshtein(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitute =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
    }
  }
  return row[b.size()];
}

ScenarioRegistry BuildBuiltIns() {
  ScenarioRegistry registry;

  // --- Paper figures and Table 1 (Sections 5.1 / 5.2 parameters) --------
  {
    ScenarioSpec spec;
    spec.name = "fig1";
    spec.description =
        "SL-PoS drift at the Figure 1 highlighted shares (0.3 / 0.5 / 0.7)";
    spec.protocols = {"slpos"};
    spec.allocations = {0.3, 0.5, 0.7};
    spec.steps = 2000;
    spec.replications = 10000;
    spec.checkpoint_count = 40;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig2";
    spec.description =
        "Evolution of lambda_A for PoW/ML-PoS/SL-PoS/C-PoS at a=0.2";
    spec.protocols = {"pow", "mlpos", "slpos", "cpos"};
    spec.checkpoint_count = 60;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig3";
    spec.description =
        "Unfair probability vs n under allocations a in {0.1..0.4}";
    spec.protocols = {"pow", "mlpos", "slpos", "cpos"};
    spec.allocations = {0.1, 0.2, 0.3, 0.4};
    spec.checkpoint_count = 40;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig4a";
    spec.description =
        "SL-PoS mean lambda_A decay over 1e5 blocks, allocation sweep";
    spec.protocols = {"slpos"};
    spec.allocations = {0.1, 0.2, 0.3, 0.4, 0.5};
    spec.steps = 100000;
    spec.replications = 2000;
    spec.checkpoint_count = 18;
    spec.spacing = CheckpointSpacing::kLog;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig4b";
    spec.description =
        "SL-PoS mean lambda_A decay over 1e5 blocks, reward sweep at a=0.2";
    spec.protocols = {"slpos"};
    spec.rewards = {1e-4, 1e-3, 1e-2, 1e-1};
    spec.steps = 100000;
    spec.replications = 2000;
    spec.checkpoint_count = 18;
    spec.spacing = CheckpointSpacing::kLog;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig5";
    spec.description =
        "Unfair probability under block-reward sweeps (panels a-c)";
    spec.protocols = {"mlpos", "slpos", "cpos"};
    spec.rewards = {1e-4, 1e-3, 1e-2, 1e-1};
    spec.checkpoint_count = 40;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig5d";
    spec.description =
        "C-PoS unfair probability vs inflation v, sharded and unsharded";
    spec.protocols = {"cpos"};
    spec.inflations = {0.0, 0.01, 0.1};
    spec.shard_counts = {1, 32};
    spec.checkpoint_count = 40;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig6";
    spec.description =
        "FSL-PoS remedy, plain and with 1000-block reward withholding";
    spec.protocols = {"fslpos"};
    spec.withhold_periods = {0, 1000};
    spec.checkpoint_count = 60;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "table1";
    spec.description =
        "Multi-miner game: A holds 20%, the rest split 80% equally";
    spec.protocols = {"pow", "mlpos", "slpos", "cpos"};
    spec.miner_counts = {2, 3, 4, 5, 10};
    spec.steps = 20000;
    spec.replications = 4000;
    spec.checkpoint_count = 200;
    registry.Register(std::move(spec));
  }

  // --- New workloads beyond the paper -----------------------------------
  {
    ScenarioSpec spec;
    spec.name = "whale-sweep";
    spec.description =
        "Whale vs nine minnows: whale share swept from 5% to 50%";
    spec.protocols = {"pow", "mlpos", "slpos", "cpos"};
    spec.miner_counts = {10};
    spec.allocations = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5};
    spec.replications = 4000;
    spec.checkpoint_count = 25;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "multi-whale";
    spec.description =
        "1/2/5 whales jointly holding 40% against minnows sharing 60%";
    spec.protocols = {"mlpos", "slpos", "cpos"};
    spec.miner_counts = {10};
    spec.whale_counts = {1, 2, 5};
    spec.allocations = {0.4};
    spec.replications = 4000;
    spec.checkpoint_count = 25;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "withhold-grid";
    spec.description =
        "Reward-withholding period grid for ML-PoS and FSL-PoS (Sec. 6.3)";
    spec.protocols = {"mlpos", "fslpos"};
    spec.withhold_periods = {0, 100, 500, 1000, 2500};
    spec.replications = 6000;
    spec.checkpoint_count = 25;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "pareto-population";
    spec.description =
        "Heavy-tailed stake populations (Pareto 1.16 / Zipf 1.0): "
        "wealth-concentration trajectory at m=100 and m=1000";
    spec.protocols = {"pow", "mlpos", "fslpos"};
    spec.miner_counts = {100, 1000};
    spec.stake_dists = {"pareto:1.16", "zipf:1.0"};
    spec.steps = 3000;
    spec.replications = 400;
    spec.checkpoint_count = 12;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "large-population-sweep";
    spec.description =
        "Hot-path scale: Pareto populations from 100 to 100k miners "
        "(throughput scenario; population metrics off)";
    spec.protocols = {"pow", "mlpos"};
    spec.miner_counts = {100, 1000, 10000, 100000};
    spec.stake_dists = {"pareto:1.16"};
    spec.steps = 2000;
    spec.replications = 100;
    spec.checkpoint_count = 8;
    // One O(m log m) sort per (replication, checkpoint) would dominate the
    // O(log m) stepping this scenario exists to exercise; the
    // pareto-population scenario carries the concentration metrics.
    spec.population_metrics = false;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "committee";
    spec.description =
        "Committee-style protocols (NEO/Algorand/EOS) under growing "
        "committee sizes";
    spec.protocols = {"neo", "algorand", "eos"};
    spec.miner_counts = {4, 7, 21};
    spec.replications = 6000;
    spec.checkpoint_count = 25;
    registry.Register(std::move(spec));
  }

  // --- Chain-dynamics campaigns (fork/propagation/selfish scenarios) ----
  {
    ScenarioSpec spec;
    spec.name = "selfish-grid";
    spec.description =
        "Eyal-Sirer selfish mining over the alpha x gamma grid, judged "
        "against the closed-form revenue share";
    spec.family = ScenarioFamily::kChain;
    spec.protocols = {"selfish"};
    spec.allocations = {0.15, 0.3, 0.45};
    spec.gammas = {0.0, 0.5, 1.0};
    spec.steps = 4000;
    spec.replications = 2000;
    spec.checkpoint_count = 20;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "propagation-delay-sweep";
    spec.description =
        "Fork races under a propagation-delay sweep at a=0.3: the delay=0 "
        "cell is exactly Binomial, the rest pin orphan-rate/reorg-depth "
        "renewal forms and delay monotonicity";
    spec.family = ScenarioFamily::kChain;
    spec.protocols = {"forkrace"};
    spec.allocations = {0.3};
    spec.delays = {0.0, 0.05, 0.1, 0.2, 0.4};
    spec.steps = 5000;
    spec.replications = 2000;
    spec.checkpoint_count = 20;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "orphan-hashrate-sweep";
    spec.description =
        "Orphan-rate x hashrate-share sweep: fork races over minority, "
        "quarter, and symmetric shares at two delays";
    spec.family = ScenarioFamily::kChain;
    spec.protocols = {"forkrace"};
    spec.allocations = {0.1, 0.25, 0.5};
    spec.delays = {0.1, 0.3};
    spec.steps = 4000;
    spec.replications = 1500;
    spec.checkpoint_count = 20;
    registry.Register(std::move(spec));
  }

  // --- Scheduler workloads --------------------------------------------
  {
    ScenarioSpec spec;
    spec.name = "hetero-cost-mix";
    spec.description =
        "Deliberately imbalanced mixed-family grid (C-PoS epoch machine "
        "vs PoW vs selfish-mining chain cells, ~30x cost spread per "
        "replication) — the cost-aware scheduler benchmark workload";
    spec.family = ScenarioFamily::kMixed;
    spec.protocols = {"cpos", "pow", "selfish"};
    spec.allocations = {0.33};
    spec.gammas = {0.5};
    spec.steps = 3000;
    spec.replications = 96;
    spec.checkpoint_count = 10;
    spec.population_metrics = false;
    spec.keep_final_lambdas = false;
    registry.Register(std::move(spec));
  }

  return registry;
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::BuiltIn() {
  static const ScenarioRegistry registry = BuildBuiltIns();
  return registry;
}

void ScenarioRegistry::Register(ScenarioSpec spec) {
  spec.Validate();
  if (Contains(spec.name)) {
    throw std::invalid_argument("ScenarioRegistry: duplicate scenario '" +
                                spec.name + "'");
  }
  specs_.push_back(std::move(spec));
}

bool ScenarioRegistry::Contains(const std::string& name) const {
  for (const ScenarioSpec& spec : specs_) {
    if (spec.name == name) return true;
  }
  return false;
}

const ScenarioSpec& ScenarioRegistry::Get(const std::string& name) const {
  for (const ScenarioSpec& spec : specs_) {
    if (spec.name == name) return spec;
  }
  std::string known;
  for (const ScenarioSpec& spec : specs_) {
    if (!known.empty()) known += ", ";
    known += spec.name;
  }
  // Suggest the closest registered name when the typo is plausibly one:
  // within 3 edits, or sharing a prefix of at least 4 characters.
  const ScenarioSpec* closest = nullptr;
  std::size_t best = 4;
  for (const ScenarioSpec& spec : specs_) {
    const std::size_t distance = Levenshtein(name, spec.name);
    if (distance < best) {
      best = distance;
      closest = &spec;
    }
  }
  if (closest == nullptr && name.size() >= 4) {
    for (const ScenarioSpec& spec : specs_) {
      if (spec.name.rfind(name.substr(0, 4), 0) == 0) {
        closest = &spec;
        break;
      }
    }
  }
  std::string message =
      "ScenarioRegistry: unknown scenario '" + name + "'";
  if (closest != nullptr) {
    message += " — did you mean '" + closest->name + "'?";
  }
  message += " (known: " + known + ")";
  throw std::invalid_argument(message);
}

std::vector<std::string> ScenarioRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(specs_.size());
  for (const ScenarioSpec& spec : specs_) names.push_back(spec.name);
  return names;
}

}  // namespace fairchain::sim
