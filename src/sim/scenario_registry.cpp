#include "sim/scenario_registry.hpp"

#include <stdexcept>
#include <utility>

namespace fairchain::sim {

namespace {

ScenarioRegistry BuildBuiltIns() {
  ScenarioRegistry registry;

  // --- Paper figures and Table 1 (Sections 5.1 / 5.2 parameters) --------
  {
    ScenarioSpec spec;
    spec.name = "fig1";
    spec.description =
        "SL-PoS drift at the Figure 1 highlighted shares (0.3 / 0.5 / 0.7)";
    spec.protocols = {"slpos"};
    spec.allocations = {0.3, 0.5, 0.7};
    spec.steps = 2000;
    spec.replications = 10000;
    spec.checkpoint_count = 40;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig2";
    spec.description =
        "Evolution of lambda_A for PoW/ML-PoS/SL-PoS/C-PoS at a=0.2";
    spec.protocols = {"pow", "mlpos", "slpos", "cpos"};
    spec.checkpoint_count = 60;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig3";
    spec.description =
        "Unfair probability vs n under allocations a in {0.1..0.4}";
    spec.protocols = {"pow", "mlpos", "slpos", "cpos"};
    spec.allocations = {0.1, 0.2, 0.3, 0.4};
    spec.checkpoint_count = 40;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig4a";
    spec.description =
        "SL-PoS mean lambda_A decay over 1e5 blocks, allocation sweep";
    spec.protocols = {"slpos"};
    spec.allocations = {0.1, 0.2, 0.3, 0.4, 0.5};
    spec.steps = 100000;
    spec.replications = 2000;
    spec.checkpoint_count = 18;
    spec.spacing = CheckpointSpacing::kLog;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig4b";
    spec.description =
        "SL-PoS mean lambda_A decay over 1e5 blocks, reward sweep at a=0.2";
    spec.protocols = {"slpos"};
    spec.rewards = {1e-4, 1e-3, 1e-2, 1e-1};
    spec.steps = 100000;
    spec.replications = 2000;
    spec.checkpoint_count = 18;
    spec.spacing = CheckpointSpacing::kLog;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig5";
    spec.description =
        "Unfair probability under block-reward sweeps (panels a-c)";
    spec.protocols = {"mlpos", "slpos", "cpos"};
    spec.rewards = {1e-4, 1e-3, 1e-2, 1e-1};
    spec.checkpoint_count = 40;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig5d";
    spec.description =
        "C-PoS unfair probability vs inflation v, sharded and unsharded";
    spec.protocols = {"cpos"};
    spec.inflations = {0.0, 0.01, 0.1};
    spec.shard_counts = {1, 32};
    spec.checkpoint_count = 40;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "fig6";
    spec.description =
        "FSL-PoS remedy, plain and with 1000-block reward withholding";
    spec.protocols = {"fslpos"};
    spec.withhold_periods = {0, 1000};
    spec.checkpoint_count = 60;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "table1";
    spec.description =
        "Multi-miner game: A holds 20%, the rest split 80% equally";
    spec.protocols = {"pow", "mlpos", "slpos", "cpos"};
    spec.miner_counts = {2, 3, 4, 5, 10};
    spec.steps = 20000;
    spec.replications = 4000;
    spec.checkpoint_count = 200;
    registry.Register(std::move(spec));
  }

  // --- New workloads beyond the paper -----------------------------------
  {
    ScenarioSpec spec;
    spec.name = "whale-sweep";
    spec.description =
        "Whale vs nine minnows: whale share swept from 5% to 50%";
    spec.protocols = {"pow", "mlpos", "slpos", "cpos"};
    spec.miner_counts = {10};
    spec.allocations = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5};
    spec.replications = 4000;
    spec.checkpoint_count = 25;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "multi-whale";
    spec.description =
        "1/2/5 whales jointly holding 40% against minnows sharing 60%";
    spec.protocols = {"mlpos", "slpos", "cpos"};
    spec.miner_counts = {10};
    spec.whale_counts = {1, 2, 5};
    spec.allocations = {0.4};
    spec.replications = 4000;
    spec.checkpoint_count = 25;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "withhold-grid";
    spec.description =
        "Reward-withholding period grid for ML-PoS and FSL-PoS (Sec. 6.3)";
    spec.protocols = {"mlpos", "fslpos"};
    spec.withhold_periods = {0, 100, 500, 1000, 2500};
    spec.replications = 6000;
    spec.checkpoint_count = 25;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "pareto-population";
    spec.description =
        "Heavy-tailed stake populations (Pareto 1.16 / Zipf 1.0): "
        "wealth-concentration trajectory at m=100 and m=1000";
    spec.protocols = {"pow", "mlpos", "fslpos"};
    spec.miner_counts = {100, 1000};
    spec.stake_dists = {"pareto:1.16", "zipf:1.0"};
    spec.steps = 3000;
    spec.replications = 400;
    spec.checkpoint_count = 12;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "large-population-sweep";
    spec.description =
        "Hot-path scale: Pareto populations from 100 to 100k miners "
        "(throughput scenario; population metrics off)";
    spec.protocols = {"pow", "mlpos"};
    spec.miner_counts = {100, 1000, 10000, 100000};
    spec.stake_dists = {"pareto:1.16"};
    spec.steps = 2000;
    spec.replications = 100;
    spec.checkpoint_count = 8;
    // One O(m log m) sort per (replication, checkpoint) would dominate the
    // O(log m) stepping this scenario exists to exercise; the
    // pareto-population scenario carries the concentration metrics.
    spec.population_metrics = false;
    registry.Register(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "committee";
    spec.description =
        "Committee-style protocols (NEO/Algorand/EOS) under growing "
        "committee sizes";
    spec.protocols = {"neo", "algorand", "eos"};
    spec.miner_counts = {4, 7, 21};
    spec.replications = 6000;
    spec.checkpoint_count = 25;
    registry.Register(std::move(spec));
  }

  return registry;
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::BuiltIn() {
  static const ScenarioRegistry registry = BuildBuiltIns();
  return registry;
}

void ScenarioRegistry::Register(ScenarioSpec spec) {
  spec.Validate();
  if (Contains(spec.name)) {
    throw std::invalid_argument("ScenarioRegistry: duplicate scenario '" +
                                spec.name + "'");
  }
  specs_.push_back(std::move(spec));
}

bool ScenarioRegistry::Contains(const std::string& name) const {
  for (const ScenarioSpec& spec : specs_) {
    if (spec.name == name) return true;
  }
  return false;
}

const ScenarioSpec& ScenarioRegistry::Get(const std::string& name) const {
  for (const ScenarioSpec& spec : specs_) {
    if (spec.name == name) return spec;
  }
  std::string known;
  for (const ScenarioSpec& spec : specs_) {
    if (!known.empty()) known += ", ";
    known += spec.name;
  }
  throw std::invalid_argument("ScenarioRegistry: unknown scenario '" + name +
                              "' (known: " + known + ")");
}

std::vector<std::string> ScenarioRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(specs_.size());
  for (const ScenarioSpec& spec : specs_) names.push_back(spec.name);
  return names;
}

}  // namespace fairchain::sim
