// Batched campaign scheduling.
//
// A campaign is one ScenarioSpec expanded into its grid of CampaignCells.
// The CampaignRunner executes ALL cells over ONE ExecutionBackend with
// replication-level sharding: every cell's replications are cut into
// chunks, and the full job grid (every chunk of every cell) is handed to
// the backend in a single Execute call.  On the thread-pool backend a
// 50-cell campaign therefore saturates all cores for its whole duration
// instead of running cells serially through per-cell pools — on k cores
// the wall clock approaches (serial sum)/k; the serial backend runs the
// same grid inline and is the byte-identical determinism reference.
//
// Determinism contract: replication r of cell i always draws from
// RngStream(CellSeed(spec.seed, i)).Split(r), and rows are streamed to the
// sinks in ascending (cell, checkpoint) order regardless of which worker
// finishes first — so campaign output is byte-identical for any thread
// count (pinned by tests/integration/campaign_determinism_test.cpp).
//
// Scheduling rides on top of that contract (and therefore never changes
// output): chunks are sized cost-proportionally by sim::CostModel and
// dispatched longest-first (SchedulePolicy::kCostAware), the thread-pool
// backend levels imbalance by work stealing, and the shard backend pulls
// chunks through a demand-driven grant protocol.
//
// Two orthogonal extensions ride on the same contract:
//   * Process sharding: a backend advertising ProcessShards() = N runs the
//     job grid through core::RunSharded — N forked workers pull chunks
//     one grant at a time and stream the raw λ payloads back over pipes;
//     the parent commits them into the same pre-addressed matrix slots the
//     in-process path writes.  Same doubles, same slots, same reduction —
//     byte-identical output at any shard count.
//   * Resumable caching: with CampaignOptions::store set, every finished
//     cell is persisted content-addressed (see CellStorePreimage), and
//     verified hits are served without recomputation — a killed campaign
//     re-run with the same store skips every cell that completed.

#ifndef FAIRCHAIN_SIM_CAMPAIGN_HPP_
#define FAIRCHAIN_SIM_CAMPAIGN_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "core/execution_backend.hpp"
#include "core/monte_carlo.hpp"
#include "sim/result_sink.hpp"
#include "sim/scenario_spec.hpp"
#include "store/campaign_store.hpp"

namespace fairchain::sim {

/// How the runner sizes and orders a campaign's chunks.  Either policy
/// produces byte-identical output (chunk geometry never reaches the
/// simulated values); the policies differ only in wall clock under
/// heterogeneous cost mixes.
enum class SchedulePolicy {
  /// Cost-aware (the default): chunks are sized to ~equal modeled
  /// nanoseconds using sim::CostModel (BENCH-calibrated priors refined by
  /// an EWMA over observed chunk latencies), floored at a minimum chunk
  /// cost so tiny cells never shatter into dispatch-overhead-dominated
  /// single-replication chunks, and dispatched longest-processing-time
  /// first so the expensive chunks start early and the cheap tail levels
  /// the finish.
  kCostAware,
  /// The legacy planner: one uniform replication count per chunk
  /// (reps / (4 x workers), or `chunk_replications` verbatim), dispatched
  /// in grid order.  Kept as the control arm the scheduler benchmarks
  /// compare against (`--scheduler static`).
  kStatic,
};

/// Execution knobs independent of what is simulated.
struct CampaignOptions {
  /// Worker threads for the default backend (0 = EnvThreads()).  Ignored
  /// when `backend` is injected.
  unsigned threads = 0;
  /// Replications per scheduled chunk (0 = auto; see `schedule`).  A
  /// non-zero value overrides the cost model's chunk sizing but keeps the
  /// policy's dispatch order.
  std::uint64_t chunk_replications = 0;
  /// Chunk planning / dispatch policy (see SchedulePolicy).
  SchedulePolicy schedule = SchedulePolicy::kCostAware;
  /// Execution backend the job grid runs on (non-owning; must outlive the
  /// runner's Run).  Null = MakeDefaultBackend(threads).  Output is
  /// byte-identical for ANY backend — see core/execution_backend.hpp for
  /// the seeding/chunking contract that guarantees it.
  const core::ExecutionBackend* backend = nullptr;
  /// Content-addressed cell cache (non-owning; null = no caching).  When
  /// set, every finished cell is persisted, and — unless `read_cache` is
  /// off — verified store hits are served without recomputation, which is
  /// what makes a killed campaign resumable.
  store::CampaignStore* store = nullptr;
  /// When false (`--no-cache`), the store is write-only: every cell is
  /// recomputed and its entry overwritten.
  bool read_cache = true;
};

/// One executed cell: its grid coordinates, derived seed, and full result.
struct CellOutcome {
  CampaignCell cell;
  std::uint64_t seed = 0;  ///< CellSeed(spec.seed, cell.index)
  core::SimulationResult result;
  /// True when the result was served from the campaign store instead of
  /// being recomputed (the cache-accounting hook the resume tests pin).
  bool from_cache = false;
};

/// One schedulable unit: replications [begin, end) of one cell.
struct ChunkJob {
  std::size_t cell = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  /// Modeled cost of this chunk (sim::CostModel estimate at planning
  /// time).  Drives dispatch order and the cost-weighted progress ETA;
  /// never reaches the simulated values.
  double cost_ns = 0.0;
};

/// Deterministic per-cell seed split: distinct cells draw from
/// statistically independent streams, and a cell's seed depends only on
/// (master seed, cell index) — not on the grid's other axes — so adding a
/// cell never perturbs existing ones.
std::uint64_t CellSeed(std::uint64_t master_seed, std::size_t cell_index);

/// The runner.  Stateless apart from its options; Run is re-entrant.
class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {});

  /// Expands `spec`, executes every cell over one shared pool, streams
  /// rows to `sinks` (BeginCampaign / WriteRow* / EndCampaign; WriteRow
  /// calls are serialised and ordered), and returns per-cell outcomes in
  /// grid order.  Throws std::invalid_argument on an invalid spec.
  std::vector<CellOutcome> Run(const ScenarioSpec& spec,
                               const std::vector<ResultSink*>& sinks) const;

  /// The job grid Run would schedule: every cell's replication chunks, in
  /// grid order (dispatch reordering — LPT under kCostAware — happens at
  /// execution time, not here).  Under kCostAware each cell's chunk size
  /// is cost-proportional: chunks target ~equal modeled nanoseconds, with
  /// a minimum-cost floor so cells whose replications are tiny never
  /// degenerate into per-replication chunks.  Exposed so tests can verify
  /// that a multi-cell campaign is dispatched as one interleavable batch
  /// and that the planner's geometry matches the policy, without running
  /// the simulations.
  std::vector<ChunkJob> PlanJobs(const ScenarioSpec& spec) const;

  const CampaignOptions& options() const { return options_; }

 private:
  std::uint64_t ChunkSize(std::uint64_t replications, unsigned threads) const;
  /// Concurrency the job grid is sized for: the injected backend's, or the
  /// default backend's worker count.
  unsigned PlannedConcurrency() const;

  CampaignOptions options_;
};

/// The exact SimulationConfig `cell` runs under: checkpoints expanded per
/// the spec's spacing, seed = CellSeed(spec.seed, cell.index), and the
/// cell's withholding period.  Shared by the runner and the tests that
/// cross-check it against MonteCarloEngine.
core::SimulationConfig CellConfig(const ScenarioSpec& spec,
                                  const CampaignCell& cell);

/// Convenience overload: expands the grid and configures its
/// `cell_index`-th cell.
core::SimulationConfig CellConfig(const ScenarioSpec& spec,
                                  std::size_t cell_index);

/// Canonical text describing everything that determines `cell`'s simulated
/// result: protocol and its parameters, the exact stake vector, the
/// derived cell seed, horizon / replications / expanded checkpoints, and
/// the fairness spec.  Doubles are rendered as IEEE-754 bit patterns, so
/// equal preimages mean bit-equal inputs.  Deliberately EXCLUDES the
/// scenario name, cell index, backend, shard count, and chunking — cells
/// that simulate the same game share one store entry no matter how they
/// were scheduled.  The runner prefixes the store's code-version stamp and
/// hashes the result into the cell's content address (store::MakeCellKey).
/// Chain-dynamics cells use their own preimage header
/// ("fairchain-chain-cell-v1") over (dynamics, alpha, gamma, delay) plus
/// the shared horizon fields, so they can never collide with incentive
/// entries — whose preimages remain byte-identical to earlier revisions.
std::string CellStorePreimage(const ScenarioSpec& spec,
                              const CampaignCell& cell);

}  // namespace fairchain::sim

#endif  // FAIRCHAIN_SIM_CAMPAIGN_HPP_
