#include "sim/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace fairchain::sim {

namespace {

// One calibration point: ns per (step, replication) at `miners` miners,
// taken from BENCH_hotpath.json's BM_Batched_* families (1e9 /
// items_per_second).
struct PriorPoint {
  double miners;
  double ns_per_step;
};

struct PriorTable {
  const char* protocol;
  const PriorPoint* points;
  std::size_t count;
};

constexpr PriorPoint kPowPoints[] = {
    {2, 6.51}, {10, 14.78}, {100, 22.16},
    {1000, 30.69}, {10000, 48.56}, {100000, 81.02}};
constexpr PriorPoint kMlPosPoints[] = {
    {2, 7.82}, {10, 23.0}, {100, 38.18},
    {1000, 56.3}, {10000, 70.34}, {100000, 127.4}};
constexpr PriorPoint kFslPosPoints[] = {
    {2, 8.06}, {10, 28.42}, {100, 40.3},
    {1000, 53.75}, {10000, 84.19}, {100000, 125.78}};
constexpr PriorPoint kSlPosPoints[] = {
    {2, 16.82}, {10, 39.3}, {100, 326.27}, {1000, 2684.15}};
constexpr PriorPoint kCPosPoints[] = {
    {2, 207.5}, {10, 1001.34}, {100, 1699.16},
    {1000, 2357.74}, {10000, 3432.94}, {100000, 4478.97}};

constexpr PriorTable kPriorTables[] = {
    {"pow", kPowPoints, std::size(kPowPoints)},
    {"mlpos", kMlPosPoints, std::size(kMlPosPoints)},
    {"fslpos", kFslPosPoints, std::size(kFslPosPoints)},
    {"slpos", kSlPosPoints, std::size(kSlPosPoints)},
    {"cpos", kCPosPoints, std::size(kCPosPoints)},
};

// Chain-dynamics event machines (BM_ChainStep: 12.9–16.8 ns/event across
// the delay range) — flat in the miner count, chain games are two-party.
constexpr double kChainNsPerStep = 15.0;

// Committee protocols (neo/algorand/eos) have no batched calibration
// family yet; the MlPos curve is the closest stake-weighted shape.
constexpr const PriorTable& DefaultTable() { return kPriorTables[1]; }

// Log-linear interpolation in the miner count, clamped at the table ends.
double InterpolateNsPerStep(const PriorTable& table, double miners) {
  miners = std::max(miners, 1.0);
  if (miners <= table.points[0].miners) return table.points[0].ns_per_step;
  const PriorPoint& last = table.points[table.count - 1];
  if (miners >= last.miners) return last.ns_per_step;
  for (std::size_t i = 1; i < table.count; ++i) {
    const PriorPoint& hi = table.points[i];
    if (miners > hi.miners) continue;
    const PriorPoint& lo = table.points[i - 1];
    const double t = (std::log(miners) - std::log(lo.miners)) /
                     (std::log(hi.miners) - std::log(lo.miners));
    return lo.ns_per_step + t * (hi.ns_per_step - lo.ns_per_step);
  }
  return last.ns_per_step;
}

double PriorNsPerStep(const CampaignCell& cell) {
  if (cell.chain_dynamics) return kChainNsPerStep;
  for (const PriorTable& table : kPriorTables) {
    if (cell.protocol == table.protocol) {
      return InterpolateNsPerStep(table,
                                  static_cast<double>(cell.miners));
    }
  }
  return InterpolateNsPerStep(DefaultTable(),
                              static_cast<double>(cell.miners));
}

unsigned MinerBucket(std::size_t miners) {
  unsigned bucket = 0;
  while (miners > 1) {
    miners >>= 1;
    ++bucket;
  }
  return bucket;
}

// EWMA weight of each new observation.  High enough that a cold prior is
// mostly corrected after three chunks, low enough that one descheduled
// chunk (OS noise) cannot flip the plan's cost ordering.
constexpr double kEwmaAlpha = 0.3;

}  // namespace

CostModel& CostModel::Global() {
  static CostModel model;
  return model;
}

double CostModel::EstimateReplicationNs(const CampaignCell& cell,
                                        std::uint64_t steps) const {
  double ns_per_step = PriorNsPerStep(cell);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = observed_ns_per_step_.find(
        Key(cell.protocol, MinerBucket(cell.miners)));
    if (it != observed_ns_per_step_.end()) ns_per_step = it->second;
  }
  return std::max(1.0, ns_per_step * static_cast<double>(steps));
}

void CostModel::Observe(const CampaignCell& cell, std::uint64_t steps,
                        std::uint64_t replications,
                        std::uint64_t chunk_ns) {
  const double work =
      static_cast<double>(steps) * static_cast<double>(replications);
  if (!(work > 0.0) || chunk_ns == 0) return;
  const double ns_per_step = static_cast<double>(chunk_ns) / work;
  if (!std::isfinite(ns_per_step) || ns_per_step <= 0.0) return;
  const Key key(cell.protocol, MinerBucket(cell.miners));
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = observed_ns_per_step_.emplace(key, ns_per_step);
  if (!inserted) {
    it->second += kEwmaAlpha * (ns_per_step - it->second);
  }
}

void CostModel::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  observed_ns_per_step_.clear();
}

}  // namespace fairchain::sim
