#include "sim/result_sink.hpp"

#include <cmath>

#include "core/experiments.hpp"
#include "support/escape.hpp"
#include "support/table.hpp"

namespace fairchain::sim {

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  return FormatDouble(value);
}

// ---------------------------------------------------------------------------
// CsvSink
// ---------------------------------------------------------------------------

const std::string& CsvSink::Header() {
  static const std::string header =
      "scenario,cell,protocol,miners,whales,a,w,v,shards,withhold,steps,"
      "replications,cell_seed,checkpoint,step,mean,std_dev,p05,p25,median,"
      "p75,p95,min,max,unfair_probability,convergence_step,stake_dist,gini,"
      "hhi,nakamoto,top_decile_share,gamma,delay,orphan_rate,"
      "reorg_depth_mean,reorg_depth_max";
  return header;
}

void CsvSink::BeginCampaign(const ScenarioSpec& spec) {
  (void)spec;
  out_ << Header() << "\n";
}

void CsvSink::WriteRow(const CampaignRow& row) {
  // Scenario and protocol names come from a restricted alphabet, so
  // EscapeCsvField leaves them byte-identical; the escaping is defensive
  // for rows constructed outside the campaign runner.
  out_ << EscapeCsvField(row.scenario) << ',' << row.cell << ','
       << EscapeCsvField(row.protocol) << ','
       << row.miners << ',' << row.whales << ',' << FormatDouble(row.a) << ','
       << FormatDouble(row.w) << ',' << FormatDouble(row.v) << ','
       << row.shards << ',' << row.withhold << ',' << row.steps << ','
       << row.replications << ',' << row.cell_seed << ',' << row.checkpoint
       << ',' << row.step << ',' << FormatDouble(row.mean) << ','
       << FormatDouble(row.std_dev) << ',' << FormatDouble(row.p05) << ','
       << FormatDouble(row.p25) << ',' << FormatDouble(row.median) << ','
       << FormatDouble(row.p75) << ',' << FormatDouble(row.p95) << ','
       << FormatDouble(row.min) << ',' << FormatDouble(row.max) << ','
       << FormatDouble(row.unfair_probability) << ',';
  if (row.convergence_step) {
    out_ << *row.convergence_step;
  } else {
    out_ << "never";
  }
  out_ << ',' << EscapeCsvField(row.stake_dist) << ','
       << FormatDouble(row.gini) << ',' << FormatDouble(row.hhi) << ','
       << FormatDouble(row.nakamoto) << ','
       << FormatDouble(row.top_decile_share) << ','
       << FormatDouble(row.gamma) << ',' << FormatDouble(row.delay) << ','
       << FormatDouble(row.orphan_rate) << ','
       << FormatDouble(row.reorg_depth_mean) << ','
       << FormatDouble(row.reorg_depth_max) << "\n";
}

void CsvSink::EndCampaign() { out_.flush(); }

// ---------------------------------------------------------------------------
// JsonlSink
// ---------------------------------------------------------------------------

void JsonlSink::WriteRow(const CampaignRow& row) {
  // Strings are escaped and non-finite metrics rendered as null so every
  // emitted line is valid JSON even for degenerate rows.
  out_ << "{\"scenario\":\"" << EscapeJsonString(row.scenario)
       << "\",\"cell\":" << row.cell << ",\"protocol\":\""
       << EscapeJsonString(row.protocol) << "\",\"miners\":" << row.miners
       << ",\"whales\":" << row.whales << ",\"a\":" << JsonNumber(row.a)
       << ",\"w\":" << JsonNumber(row.w) << ",\"v\":" << JsonNumber(row.v)
       << ",\"shards\":" << row.shards << ",\"withhold\":" << row.withhold
       << ",\"steps\":" << row.steps
       << ",\"replications\":" << row.replications
       // As a string: seeds are full-range 64-bit values, beyond the 2^53
       // exact-integer range of double-based JSON parsers, and the row
       // exists to make the cell reproducible via --seed.
       << ",\"cell_seed\":\"" << row.cell_seed << "\""
       << ",\"checkpoint\":" << row.checkpoint << ",\"step\":" << row.step
       << ",\"mean\":" << JsonNumber(row.mean)
       << ",\"std_dev\":" << JsonNumber(row.std_dev)
       << ",\"p05\":" << JsonNumber(row.p05)
       << ",\"p25\":" << JsonNumber(row.p25)
       << ",\"median\":" << JsonNumber(row.median)
       << ",\"p75\":" << JsonNumber(row.p75)
       << ",\"p95\":" << JsonNumber(row.p95)
       << ",\"min\":" << JsonNumber(row.min)
       << ",\"max\":" << JsonNumber(row.max)
       << ",\"unfair_probability\":" << JsonNumber(row.unfair_probability)
       << ",\"convergence_step\":";
  if (row.convergence_step) {
    out_ << *row.convergence_step;
  } else {
    out_ << "null";
  }
  out_ << ",\"stake_dist\":\"" << EscapeJsonString(row.stake_dist) << "\""
       << ",\"gini\":" << JsonNumber(row.gini)
       << ",\"hhi\":" << JsonNumber(row.hhi)
       << ",\"nakamoto\":" << JsonNumber(row.nakamoto)
       << ",\"top_decile_share\":" << JsonNumber(row.top_decile_share)
       << ",\"gamma\":" << JsonNumber(row.gamma)
       << ",\"delay\":" << JsonNumber(row.delay)
       << ",\"orphan_rate\":" << JsonNumber(row.orphan_rate)
       << ",\"reorg_depth_mean\":" << JsonNumber(row.reorg_depth_mean)
       << ",\"reorg_depth_max\":" << JsonNumber(row.reorg_depth_max)
       << "}\n";
}

void JsonlSink::EndCampaign() { out_.flush(); }

// ---------------------------------------------------------------------------
// SummarySink
// ---------------------------------------------------------------------------

void SummarySink::BeginCampaign(const ScenarioSpec& spec) {
  title_ = spec.name + " — " + spec.description;
  final_rows_.clear();
}

void SummarySink::WriteRow(const CampaignRow& row) {
  // The runner emits a cell's checkpoints in ascending order, so the last
  // row seen for a cell is its final checkpoint.
  if (!final_rows_.empty() && final_rows_.back().cell == row.cell) {
    final_rows_.back() = row;
  } else {
    final_rows_.push_back(row);
  }
}

void SummarySink::EndCampaign() {
  Table table({"cell", "protocol", "miners", "a", "w", "v", "shards",
               "withhold", "mean", "p5", "p95", "unfair prob", "gini",
               "cvg"});
  table.SetTitle(title_);
  for (const CampaignRow& row : final_rows_) {
    table.AddRow();
    table.Cell(static_cast<std::uint64_t>(row.cell));
    table.Cell(row.protocol);
    table.Cell(static_cast<std::uint64_t>(row.miners));
    table.Cell(row.a, 2);
    table.CellSci(row.w, 0);
    table.Cell(row.v, 2);
    table.Cell(static_cast<std::uint64_t>(row.shards));
    table.Cell(row.withhold);
    table.Cell(row.mean, 4);
    table.Cell(row.p05, 4);
    table.Cell(row.p95, 4);
    table.Cell(row.unfair_probability, 3);
    table.Cell(row.gini, 3);
    table.Cell(core::experiments::FormatConvergence(row.convergence_step));
  }
  table.Emit(emit_basename_);
}

// ---------------------------------------------------------------------------
// CampaignFileSinks
// ---------------------------------------------------------------------------

CampaignFileSinks::CampaignFileSinks(const std::string& scenario_name)
    : summary_("campaign_" + scenario_name + "_summary") {}

bool CampaignFileSinks::OpenFiles(const std::string& csv_path,
                                  const std::string& jsonl_path) {
  csv_file_.open(csv_path);
  jsonl_file_.open(jsonl_path);
  if (!csv_file_ || !jsonl_file_) {
    csv_file_.close();
    jsonl_file_.close();
    return false;
  }
  csv_ = std::make_unique<CsvSink>(csv_file_);
  jsonl_ = std::make_unique<JsonlSink>(jsonl_file_);
  return true;
}

std::vector<ResultSink*> CampaignFileSinks::sinks() {
  std::vector<ResultSink*> attached = {&summary_};
  if (csv_) attached.push_back(csv_.get());
  if (jsonl_) attached.push_back(jsonl_.get());
  return attached;
}

}  // namespace fairchain::sim
