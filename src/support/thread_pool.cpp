#include "support/thread_pool.hpp"

#include <algorithm>

namespace fairchain {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = std::max(1u, threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::SubmitBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (auto& task : tasks) tasks_.push(std::move(task));
    in_flight_ += tasks.size();
  }
  task_available_.notify_all();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(unsigned threads, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  ParallelForChunked(threads, count,
                     [&body](std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) body(i);
                     });
}

void ParallelForChunked(
    unsigned threads, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (threads <= 1 || count == 1) {
    body(0, count);
    return;
  }
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, count));
  ThreadPool pool(workers);
  const std::size_t chunk = (count + workers - 1) / workers;
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(count, begin + chunk);
    pool.Submit([&body, begin, end] { body(begin, end); });
  }
  pool.Wait();
}

}  // namespace fairchain
