#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>

#include "support/fault_injection.hpp"

namespace fairchain {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = std::max(1u, threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::SubmitBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (auto& task : tasks) tasks_.push(std::move(task));
    in_flight_ += tasks.size();
  }
  task_available_.notify_all();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

namespace {

// One worker's deque.  A mutex per deque is ample here: the callers
// schedule multi-hundred-microsecond chunks, so even a pathological steal
// storm spends a vanishing fraction of its time under these locks.
struct StealableDeque {
  std::mutex mutex;
  std::deque<std::function<void()>> tasks;
};

}  // namespace

std::uint64_t RunStealingBatch(unsigned threads,
                               std::vector<std::function<void()>> tasks,
                               bool stealing) {
  if (tasks.empty()) return 0;
  const unsigned workers = std::max(1u, threads);
  if (workers == 1) {
    for (auto& task : tasks) task();
    return 0;
  }
  // unique_ptr keeps each deque's mutex at a stable address.
  std::vector<std::unique_ptr<StealableDeque>> deques;
  deques.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    deques.push_back(std::make_unique<StealableDeque>());
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    deques[i % workers]->tasks.push_back(std::move(tasks[i]));
  }
  std::atomic<std::uint64_t> steals{0};

  auto worker_loop = [&](unsigned self) {
    std::uint64_t executed = 0;
    for (;;) {
      std::function<void()> task;
      {
        std::lock_guard<std::mutex> lock(deques[self]->mutex);
        if (!deques[self]->tasks.empty()) {
          task = std::move(deques[self]->tasks.front());
          deques[self]->tasks.pop_front();
        }
      }
      while (!task && stealing) {
        // Steal from the sibling with the largest backlog: relieving the
        // most loaded worker minimises the makespan when one deque holds
        // an expensive cell's chunks.  Sizes are sampled one lock at a
        // time, so a pick can race empty — rescan until a steal lands or
        // every deque is drained.
        unsigned victim = workers;
        std::size_t victim_backlog = 0;
        for (unsigned v = 0; v < workers; ++v) {
          if (v == self) continue;
          std::lock_guard<std::mutex> lock(deques[v]->mutex);
          if (deques[v]->tasks.size() > victim_backlog) {
            victim = v;
            victim_backlog = deques[v]->tasks.size();
          }
        }
        if (victim == workers) break;
        std::lock_guard<std::mutex> lock(deques[victim]->mutex);
        if (deques[victim]->tasks.empty()) continue;
        task = std::move(deques[victim]->tasks.back());
        deques[victim]->tasks.pop_back();
        steals.fetch_add(1, std::memory_order_relaxed);
      }
      // The batch is closed (tasks never submit tasks), so an empty sweep
      // means this worker is permanently out of work.
      if (!task) return;
      task();
      // Fault site "pool-task": index = worker id, count = tasks that
      // worker has finished.  A stall here pins one worker mid-batch and
      // forces its siblings to steal the rest of its deque — the
      // worst-case interleaving the golden determinism tests replay.
      MaybeInjectFault("pool-task", self, ++executed);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back(worker_loop, w);
  }
  for (std::thread& worker : pool) worker.join();
  return steals.load(std::memory_order_relaxed);
}

void ParallelFor(unsigned threads, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  ParallelForChunked(threads, count,
                     [&body](std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) body(i);
                     });
}

void ParallelForChunked(
    unsigned threads, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (threads <= 1 || count == 1) {
    body(0, count);
    return;
  }
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, count));
  ThreadPool pool(workers);
  const std::size_t chunk = (count + workers - 1) / workers;
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(count, begin + chunk);
    pool.Submit([&body, begin, end] { body(begin, end); });
  }
  pool.Wait();
}

}  // namespace fairchain
