#include "support/fault_injection.hpp"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/env.hpp"

namespace fairchain {

namespace {

std::uint64_t ParseCount(const std::string& text, const char* what) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument(std::string("FAIRCHAIN_FAULT: ") + what +
                                " must be a non-negative integer, got '" +
                                text + "'");
  }
  return std::stoull(text);
}

}  // namespace

bool FaultSpec::Matches(std::string_view at_site, std::uint64_t at_index,
                        std::uint64_t count) const {
  return site == at_site && index == at_index && count == nth;
}

FaultSpec ParseFaultSpec(const std::string& text) {
  std::vector<std::string> fields;
  std::size_t begin = 0;
  while (fields.size() < 3) {
    const std::size_t colon = text.find(':', begin);
    if (colon == std::string::npos) break;
    fields.push_back(text.substr(begin, colon - begin));
    begin = colon + 1;
  }
  fields.push_back(text.substr(begin));
  if (fields.size() != 4) {
    throw std::invalid_argument(
        "FAIRCHAIN_FAULT: expected <site>:<index>:<nth>:<action>, got '" +
        text + "'");
  }
  FaultSpec spec;
  spec.site = fields[0];
  if (spec.site.empty()) {
    throw std::invalid_argument("FAIRCHAIN_FAULT: empty site in '" + text +
                                "'");
  }
  spec.index = ParseCount(fields[1], "index");
  spec.nth = ParseCount(fields[2], "nth");
  const std::string& action = fields[3];
  if (action == "kill") {
    spec.action = FaultSpec::Action::kKill;
  } else if (action.rfind("exit=", 0) == 0) {
    spec.action = FaultSpec::Action::kExit;
    spec.argument = ParseCount(action.substr(5), "exit code");
  } else if (action.rfind("stall=", 0) == 0) {
    spec.action = FaultSpec::Action::kStall;
    spec.argument = ParseCount(action.substr(6), "stall milliseconds");
  } else {
    throw std::invalid_argument(
        "FAIRCHAIN_FAULT: unknown action '" + action +
        "' (known: kill, exit=<code>, stall=<ms>)");
  }
  return spec;
}

std::optional<FaultSpec> ActiveFault() {
  const std::optional<std::string> value = GetEnv("FAIRCHAIN_FAULT");
  if (!value) return std::nullopt;
  return ParseFaultSpec(*value);
}

void MaybeInjectFault(std::string_view site, std::uint64_t index,
                      std::uint64_t count) {
  const std::optional<FaultSpec> fault = ActiveFault();
  if (!fault || !fault->Matches(site, index, count)) return;
  switch (fault->action) {
    case FaultSpec::Action::kKill:
#ifdef _WIN32
      std::abort();
#else
      raise(SIGKILL);
#endif
      break;
    case FaultSpec::Action::kExit:
      _Exit(static_cast<int>(fault->argument));
      break;
    case FaultSpec::Action::kStall:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(fault->argument));
      break;
  }
}

}  // namespace fairchain
