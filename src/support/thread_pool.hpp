// A fixed-size worker pool with a ParallelFor convenience wrapper.
//
// The Monte Carlo engine shards replications across workers; determinism is
// preserved because each replication derives its RNG stream from the
// replication index, never from the executing thread.

#ifndef FAIRCHAIN_SUPPORT_THREAD_POOL_HPP_
#define FAIRCHAIN_SUPPORT_THREAD_POOL_HPP_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fairchain {

/// Fixed pool of worker threads executing queued tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Enqueues `tasks` under a single lock acquisition and wakes every
  /// worker once.  Much cheaper than N Submit calls when dispatching a
  /// large job grid (see bench/micro_perf.cpp for the measured difference);
  /// the campaign runner uses this to launch whole campaigns at once.
  void SubmitBatch(std::vector<std::function<void()>> tasks);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs one fixed batch of tasks across `threads` workers with per-worker
/// deques and work stealing, blocking until every task has finished.
///
/// Task i is dealt onto deque i % threads; a worker pops its OWN deque
/// front-to-back (preserving the batch's locality — consecutive chunks of
/// one campaign cell stay on one worker while it keeps up), and when its
/// deque drains it STEALS from the back of the busiest sibling — so a
/// worker that finishes a run of cheap tasks immediately relieves whoever
/// holds the expensive ones.  Tasks must not submit further tasks: the
/// batch is closed, which is what makes "every deque empty" a correct
/// termination condition.
///
/// Returns the number of successful steals (tasks executed by a worker
/// other than the one they were dealt to).  With `stealing` false the
/// deal is static: each worker runs exactly its own deque — the control
/// arm benchmarks compare against.
///
/// Determinism: like ThreadPool, stealing only changes WHICH worker runs
/// a task and WHEN, never what the task computes — callers uphold the
/// index-derived-RNG / disjoint-output contract (core/execution_backend).
std::uint64_t RunStealingBatch(unsigned threads,
                               std::vector<std::function<void()>> tasks,
                               bool stealing = true);

/// Runs `body(i)` for i in [0, count) across `threads` workers in contiguous
/// chunks, blocking until completion.  With threads <= 1 runs inline.
void ParallelFor(unsigned threads, std::size_t count,
                 const std::function<void(std::size_t)>& body);

/// Chunked variant: `body(begin, end)` over disjoint ranges covering
/// [0, count).  Lower dispatch overhead for tight per-item loops.
void ParallelForChunked(
    unsigned threads, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace fairchain

#endif  // FAIRCHAIN_SUPPORT_THREAD_POOL_HPP_
