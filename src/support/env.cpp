#include "support/env.hpp"

#include <cstdlib>
#include <thread>

namespace fairchain {

std::optional<std::string> GetEnv(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || value[0] == '\0') return std::nullopt;
  return std::string(value);
}

std::uint64_t GetEnvU64(const std::string& name, std::uint64_t fallback) {
  auto raw = GetEnv(name);
  if (!raw) return fallback;
  try {
    const unsigned long long parsed = std::stoull(*raw);
    return static_cast<std::uint64_t>(parsed);
  } catch (...) {
    return fallback;
  }
}

double GetEnvDouble(const std::string& name, double fallback) {
  auto raw = GetEnv(name);
  if (!raw) return fallback;
  try {
    return std::stod(*raw);
  } catch (...) {
    return fallback;
  }
}

bool FastModeEnabled() { return GetEnvU64("FAIRCHAIN_FAST", 0) != 0; }

std::uint64_t EnvReps(std::uint64_t fallback, std::uint64_t fast_fallback) {
  auto explicit_reps = GetEnv("FAIRCHAIN_REPS");
  if (explicit_reps) return GetEnvU64("FAIRCHAIN_REPS", fallback);
  return FastModeEnabled() ? fast_fallback : fallback;
}

unsigned EnvThreads() {
  const std::uint64_t configured = GetEnvU64("FAIRCHAIN_THREADS", 0);
  if (configured > 0) return static_cast<unsigned>(configured);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace fairchain
