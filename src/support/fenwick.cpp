#include "support/fenwick.hpp"

namespace fairchain {

void FenwickSampler::Build(const std::vector<double>& weights) {
  size_ = weights.size();
  tree_.assign(size_ + 1, 0.0);
  total_ = 0.0;
  // O(m) construction: place each element, then push its running sum to the
  // immediate parent; every node receives exactly the sums it needs.
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t k = i + 1;
    tree_[k] += weights[i];
    total_ += weights[i];
    const std::size_t parent = k + (k & (~k + 1));
    if (parent <= size_) tree_[parent] += tree_[k];
  }
  mask_ = 1;
  while (mask_ * 2 <= size_) mask_ *= 2;
  if (size_ == 0) mask_ = 0;
}

}  // namespace fairchain
