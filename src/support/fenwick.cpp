// NOTE ON COMPILE FLAGS: like philox.cpp, this TU is compiled with the
// host CPU's full SIMD ISA when FAIRCHAIN_LANE_SIMD is on.  Safe for the
// same reasons: only non-inline members are defined here (no ODR leak),
// and the descent arithmetic is compare / masked-select / subtract with a
// single standalone multiply — nothing FP contraction could fuse, so the
// selected indices are bit-identical at any ISA level.

#include "support/fenwick.hpp"

#include <algorithm>

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__)
#include <immintrin.h>
#define FAIRCHAIN_FENWICK_AVX512 1
#endif

namespace fairchain {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::size_t HighestPowerOfTwoAtMost(std::size_t size) {
  if (size == 0) return 0;
  std::size_t mask = 1;
  while (mask * 2 <= size) mask *= 2;
  return mask;
}

}  // namespace

void FenwickSampler::Build(const std::vector<double>& weights) {
  size_ = weights.size();
  mask_ = HighestPowerOfTwoAtMost(size_);
  // The branchless descents probe nodes up to 2 x mask_ - 1 without a
  // bounds check; nodes beyond size_ hold +inf so `t <= remaining` can
  // never take them (see SampleFlat).
  const std::size_t slots = size_ + 1 > 2 * mask_ ? size_ + 1 : 2 * mask_;
  tree_.assign(slots, kInf);
  for (std::size_t k = 0; k <= size_; ++k) tree_[k] = 0.0;
  total_ = 0.0;
  // O(m) construction: place each element, then push its running sum to the
  // immediate parent; every node receives exactly the sums it needs.
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t k = i + 1;
    tree_[k] += weights[i];
    total_ += weights[i];
    const std::size_t parent = k + (k & (~k + 1));
    if (parent <= size_) tree_[parent] += tree_[k];
  }
}

void FenwickSampler::SampleFlatLanes(const double* u01, std::size_t lanes,
                                     std::uint32_t* out) const {
  const double* tree = tree_.data();
  if (size_ == 2) {
    // SampleTwo, branchless across lanes: both compares broadcast against
    // the same two nodes, and the rare rounding-overran fallback is folded
    // in as a second select (LastPositive is loop-invariant here).
    const std::uint32_t last = static_cast<std::uint32_t>(LastPositive());
    const double node1 = tree[1];
    const double node2 = tree[2];
    for (std::size_t l = 0; l < lanes; ++l) {
      const double remaining = u01[l] * total_;
      const std::uint32_t pick = node1 <= remaining ? 1u : 0u;
      out[l] = node2 <= remaining ? last : pick;
    }
    return;
  }
  // General descent in fixed-width groups: tail slots beyond `lanes` are
  // padded with remaining = 0.0 and their results discarded.  Pad lanes
  // are safe wherever they descend — every probe is bounded by the same
  // invariant as the live lanes (index + bit <= 2 * mask_ - 1, and Build
  // pads the tree to 2 * mask_ slots) — so every level stays full-width
  // and branch-free.  The AVX-512 body (GCC scalarises the portable loop,
  // so the gather descent is written by hand) walks 8 lanes per register:
  // one vgatherqpd, one compare-to-mask, and two masked updates per level
  // — decision-for-decision the scalar SampleFlat chain.
#if FAIRCHAIN_FENWICK_AVX512
  const __m512d total = _mm512_set1_pd(total_);
  for (std::size_t base = 0; base < lanes; base += 8) {
    const std::size_t n = lanes - base;
    const __mmask8 live =
        n >= 8 ? static_cast<__mmask8>(0xFF)
               : static_cast<__mmask8>((1u << n) - 1u);
    __m512d remaining =
        _mm512_mul_pd(_mm512_maskz_loadu_pd(live, u01 + base), total);
    __m512i index = _mm512_setzero_si512();
    for (std::size_t bit = mask_; bit != 0; bit >>= 1) {
      const __m512i probe =
          _mm512_add_epi64(index, _mm512_set1_epi64(
                                      static_cast<long long>(bit)));
      const __m512d t = _mm512_i64gather_pd(probe, tree, 8);
      const __mmask8 take = _mm512_cmp_pd_mask(t, remaining, _CMP_LE_OQ);
      index = _mm512_mask_mov_epi64(index, take, probe);
      remaining = _mm512_mask_sub_pd(remaining, take, remaining, t);
    }
    _mm256_mask_storeu_epi32(out + base, live, _mm512_cvtepi64_epi32(index));
  }
#else   // portable fixed-width fallback
  constexpr std::size_t kChunk = 16;
  for (std::size_t base = 0; base < lanes; base += kChunk) {
    const std::size_t n = std::min(kChunk, lanes - base);
    double remaining[kChunk];
    std::uint64_t index[kChunk];
    for (std::size_t l = 0; l < kChunk; ++l) {
      remaining[l] = l < n ? u01[base + l] * total_ : 0.0;
      index[l] = 0;
    }
    for (std::size_t bit = mask_; bit != 0; bit >>= 1) {
      for (std::size_t l = 0; l < kChunk; ++l) {  // dependency-free
        const double t = tree[index[l] + bit];
        const bool take = t <= remaining[l];
        index[l] += take ? bit : 0;
        remaining[l] -= take ? t : 0.0;
      }
    }
    for (std::size_t l = 0; l < n; ++l) {
      out[base + l] = static_cast<std::uint32_t>(index[l]);
    }
  }
#endif
  for (std::size_t l = 0; l < lanes; ++l) {
    if (out[l] >= size_) {  // rounding overran: rare, off the hot loop
      out[l] = static_cast<std::uint32_t>(LastPositive());
    }
  }
}

void FenwickLanes::Build(const std::vector<double>& weights,
                         std::size_t lanes) {
  size_ = weights.size();
  mask_ = HighestPowerOfTwoAtMost(size_);
  lane_count_ = lanes;
  totals_.assign(lanes, 0.0);
  const std::size_t slots = size_ + 1 > 2 * mask_ ? size_ + 1 : 2 * mask_;
  tree_.assign(slots * lanes, kInf);
  for (std::size_t k = 0; k <= size_; ++k) {
    for (std::size_t l = 0; l < lanes; ++l) tree_[k * lanes + l] = 0.0;
  }
  // Build lane 0's column with the scalar O(m) recurrence, then replicate
  // node-wise: every lane starts from the cell's common stake vector.
  double total = 0.0;
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t k = i + 1;
    tree_[k * lanes] += weights[i];
    total += weights[i];
    const std::size_t parent = k + (k & (~k + 1));
    if (parent <= size_) tree_[parent * lanes] += tree_[k * lanes];
  }
  for (std::size_t k = 1; k <= size_; ++k) {
    const double node = tree_[k * lanes];
    for (std::size_t l = 1; l < lanes; ++l) tree_[k * lanes + l] = node;
  }
  for (std::size_t l = 0; l < lanes; ++l) totals_[l] = total;
}

}  // namespace fairchain
