#include "support/fenwick.hpp"

namespace fairchain {

void FenwickSampler::Build(const std::vector<double>& weights) {
  size_ = weights.size();
  tree_.assign(size_ + 1, 0.0);
  total_ = 0.0;
  // O(m) construction: place each element, then push its running sum to the
  // immediate parent; every node receives exactly the sums it needs.
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t k = i + 1;
    tree_[k] += weights[i];
    total_ += weights[i];
    const std::size_t parent = k + (k & (~k + 1));
    if (parent <= size_) tree_[parent] += tree_[k];
  }
  mask_ = 1;
  while (mask_ * 2 <= size_) mask_ *= 2;
  if (size_ == 0) mask_ = 0;
}

void FenwickSampler::Add(std::size_t i, double delta) {
  total_ += delta;
  for (std::size_t k = i + 1; k <= size_; k += k & (~k + 1)) {
    tree_[k] += delta;
  }
}

double FenwickSampler::PrefixSum(std::size_t i) const {
  double sum = 0.0;
  for (std::size_t k = i; k > 0; k -= k & (~k + 1)) {
    sum += tree_[k];
  }
  return sum;
}

std::size_t FenwickSampler::Sample(double u01) const {
  double remaining = u01 * total_;
  std::size_t index = 0;
  for (std::size_t bit = mask_; bit != 0; bit >>= 1) {
    const std::size_t next = index + bit;
    if (next <= size_ && tree_[next] <= remaining) {
      index = next;
      remaining -= tree_[next];
    }
  }
  // `index` counts the elements whose cumulative sum is <= the target, so it
  // is the 0-based winner — unless rounding overran every prefix, in which
  // case walk back to the last element with positive weight.
  if (index >= size_) {
    index = size_ - 1;
    while (index > 0 && Weight(index) <= 0.0) --index;
  }
  return index;
}

}  // namespace fairchain
