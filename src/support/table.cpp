#include "support/table.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "support/env.hpp"
#include "support/escape.hpp"

namespace fairchain {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: at least one column required");
  }
}

void Table::AddRow() { cells_.emplace_back(); }

void Table::Cell(const std::string& value) {
  if (cells_.empty()) AddRow();
  cells_.back().push_back(value);
}

void Table::Cell(std::uint64_t value) { Cell(std::to_string(value)); }

void Table::Cell(std::int64_t value) { Cell(std::to_string(value)); }

void Table::Cell(double value, int precision) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << value;
  Cell(oss.str());
}

void Table::CellSci(double value, int precision) {
  std::ostringstream oss;
  oss.setf(std::ios::scientific);
  oss.precision(precision);
  oss << value;
  Cell(oss.str());
}

void Table::Print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& value = c < row.size() ? row[c] : std::string();
      out << " " << value << std::string(widths[c] - value.size(), ' ')
          << " |";
    }
    out << "\n";
  };
  print_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : cells_) print_row(row);
}

void Table::WriteCsv(std::ostream& out) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out << ",";
    out << EscapeCsvField(headers_[c]);
  }
  out << "\n";
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << EscapeCsvField(row[c]);
    }
    out << "\n";
  }
}

void Table::Emit(const std::string& basename) const {
  Print(std::cout);
  std::cout << std::endl;
  if (auto dir = GetEnv("FAIRCHAIN_CSV_DIR")) {
    const std::string path = *dir + "/" + basename + ".csv";
    std::ofstream file(path);
    if (file) {
      WriteCsv(file);
      std::cout << "[csv] wrote " << path << "\n";
    } else {
      std::cerr << "[csv] could not open " << path << "\n";
    }
  }
}

}  // namespace fairchain
