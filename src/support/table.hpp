// Console table / CSV rendering for the experiment harness.
//
// Every bench binary prints its figure or table through this class so output
// is uniform: an aligned ASCII table on stdout and, when FAIRCHAIN_CSV_DIR is
// set, a CSV file per experiment for plotting.

#ifndef FAIRCHAIN_SUPPORT_TABLE_HPP_
#define FAIRCHAIN_SUPPORT_TABLE_HPP_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace fairchain {

/// An in-memory table with typed cell formatting helpers.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Optional caption printed above the table.
  void SetTitle(std::string title) { title_ = std::move(title); }

  /// Starts a new (empty) row.
  void AddRow();

  /// Appends a string cell to the last row.
  void Cell(const std::string& value);
  /// Appends an integer cell.
  void Cell(std::uint64_t value);
  /// Appends a signed integer cell.
  void Cell(std::int64_t value);
  /// Appends a floating cell with `precision` digits after the point.
  void Cell(double value, int precision = 4);
  /// Appends a cell formatted in scientific notation.
  void CellSci(double value, int precision = 2);

  std::size_t rows() const { return cells_.size(); }
  std::size_t columns() const { return headers_.size(); }

  /// Renders an aligned ASCII table.
  void Print(std::ostream& out) const;

  /// Writes RFC-4180-ish CSV (quotes applied only when needed).
  void WriteCsv(std::ostream& out) const;

  /// Convenience: Print to stdout and, if FAIRCHAIN_CSV_DIR is set, write
  /// `<dir>/<basename>.csv`.
  void Emit(const std::string& basename) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace fairchain

#endif  // FAIRCHAIN_SUPPORT_TABLE_HPP_
