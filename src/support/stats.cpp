#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace fairchain {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::StdError() const {
  if (count_ == 0) return 0.0;
  return StdDev() / std::sqrt(static_cast<double>(count_));
}

void KahanSum::Add(double x) {
  const double y = x - compensation_;
  const double t = sum_ + y;
  compensation_ = (t - sum_) - y;
  sum_ = t;
}

namespace {

double InterpolatedQuantile(const std::vector<double>& sorted, double q) {
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  // x_lo + frac * (x_hi - x_lo), NOT x_lo(1-frac) + x_hi*frac: the latter
  // wobbles by an ulp when x_lo == x_hi, which made adjacent quantiles of a
  // constant sample non-monotone (caught by the verify layer's sanity
  // oracle).  This form is exact at coincident endpoints and monotone in q.
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("Quantile: empty input");
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("Quantile: q outside [0, 1]");
  }
  std::sort(values.begin(), values.end());
  return InterpolatedQuantile(values, q);
}

std::vector<double> Quantiles(std::vector<double> values,
                              const std::vector<double>& qs) {
  std::vector<double> out;
  QuantilesInPlace(values, qs, &out);
  return out;
}

void QuantilesInPlace(std::vector<double>& values,
                      const std::vector<double>& qs,
                      std::vector<double>* out) {
  if (values.empty()) throw std::invalid_argument("Quantiles: empty input");
  for (const double q : qs) {
    if (q < 0.0 || q > 1.0) {
      throw std::invalid_argument("Quantiles: q outside [0, 1]");
    }
  }
  std::sort(values.begin(), values.end());
  out->resize(qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    (*out)[i] = InterpolatedQuantile(values, qs[i]);
  }
}

double FractionOutside(const std::vector<double>& values, double lo,
                       double hi) {
  if (values.empty()) return 0.0;
  std::size_t outside = 0;
  for (const double v : values) {
    if (v < lo || v > hi) ++outside;
  }
  return static_cast<double>(outside) / static_cast<double>(values.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  std::size_t bucket = static_cast<std::size_t>((x - lo_) / width_);
  if (bucket >= counts_.size()) bucket = counts_.size() - 1;
  ++counts_[bucket];
}

double Histogram::BucketLow(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::BucketHigh(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::string Histogram::ToAscii(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    out << "[";
    out.setf(std::ios::fixed);
    out.precision(4);
    out << BucketLow(i) << ", " << BucketHigh(i) << ") ";
    out << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace fairchain
