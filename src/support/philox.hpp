// Counter-based pseudo-random number generation (Philox4x32-10).
//
// The replication-vectorized stepping core advances K replication lanes in
// lockstep, and each lane needs its own reproducible stream.  A stateful
// generator (xoshiro in support/rng.hpp) makes that awkward: every lane
// would carry 256 bits of evolving state and a serial dependency between
// consecutive draws.  Philox (Salmon et al., SC'11 — "Parallel random
// numbers: as easy as 1, 2, 3") inverts the design: draw d of lane r is a
// pure function
//
//     Philox4x32-10(key = Mix(seed), counter = (d / 2, r))[d % 2]
//
// of the seed, the lane id, and the draw index.  Consequences the
// vectorized core is built on:
//   * lane seeding is ORDER-FREE: lane r's stream depends only on
//     (seed, r) — the counter-based analog of the RngStream discipline
//     "replication r always uses RngStream(seed).Split(r)", so any
//     partition of replications into lane blocks yields identical values;
//   * streams are NON-OVERLAPPING BY CONSTRUCTION: the cipher is a
//     bijection per key, and distinct (block, lane) counters are distinct
//     inputs, so two lanes can never share an output block — a structural
//     guarantee where split-stream generators offer a statistical one;
//   * draws have NO loop-carried dependency: K lanes' draws are K
//     independent dataflow chains, which is what lets the lockstep inner
//     loops schedule (and auto-vectorize) across lanes.
//
// Implemented from scratch (public-domain algorithm), same as the xoshiro
// family in rng.hpp; pinned against the canonical Random123 known-answer
// vectors in tests/support/philox_test.cpp.  Philox output is
// statistically independent of — but numerically different from — the
// xoshiro streams, which is why vectorized stepping is a documented
// statistical-equivalence mode, not a bit-exact one (see
// core/replication_block_workspace.hpp).

#ifndef FAIRCHAIN_SUPPORT_PHILOX_HPP_
#define FAIRCHAIN_SUPPORT_PHILOX_HPP_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fairchain {

/// The Philox4x32-10 block function: encrypts a 128-bit counter under a
/// 64-bit key in 10 rounds of 32x32->64 multiply / xor mixing.
class Philox4x32 {
 public:
  using Block = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  /// One block: pure, stateless, O(1).  Inline — this is the innermost
  /// operation of every vectorized Monte Carlo step, called once per lane
  /// per two draws.
  static Block Encrypt(Block counter, Key key) {
    for (int round = 0; round < 9; ++round) {
      counter = Round(counter, key);
      key[0] += kWeyl0;
      key[1] += kWeyl1;
    }
    return Round(counter, key);
  }

  /// Expands a 64-bit seed into a key (SplitMix64, the same seeding
  /// procedure RngStream uses).
  static Key KeyFromSeed(std::uint64_t seed);

  // Algorithm constants (Salmon et al., Table 2), public so the SoA lane
  // kernel in philox.cpp runs the identical schedule.
  static constexpr std::uint32_t kMult0 = 0xD2511F53u;
  static constexpr std::uint32_t kMult1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

 private:
  static Block Round(const Block& c, const Key& k) {
    const std::uint64_t product0 = static_cast<std::uint64_t>(kMult0) * c[0];
    const std::uint64_t product1 = static_cast<std::uint64_t>(kMult1) * c[2];
    return Block{
        static_cast<std::uint32_t>(product1 >> 32) ^ c[1] ^ k[0],
        static_cast<std::uint32_t>(product1),
        static_cast<std::uint32_t>(product0 >> 32) ^ c[3] ^ k[1],
        static_cast<std::uint32_t>(product0),
    };
  }
};

/// The 64-bit value of draw `draw_index` on lane `lane` under `key` — THE
/// defining function of the Philox stream discipline.  Both PhiloxStream
/// and PhiloxLanes produce exactly this sequence; the conformance tests
/// pin them against it.
std::uint64_t PhiloxDraw(Philox4x32::Key key, std::uint64_t lane,
                         std::uint64_t draw_index);

/// Sequential view of one lane's stream: the counter-based analog of
/// RngStream(seed).Split(lane), with the same NextU64/NextDouble surface
/// so scalar reference simulations can be driven draw-for-draw identically
/// to a vectorized lane.
class PhiloxStream {
 public:
  PhiloxStream(std::uint64_t seed, std::uint64_t lane)
      : key_(Philox4x32::KeyFromSeed(seed)), lane_(lane) {}

  /// Next raw 64-bit draw: PhiloxDraw(key, lane, d) for d = 0, 1, 2, ...
  /// Consecutive draws share one cipher block (two 64-bit halves), so the
  /// amortised cost is half an Encrypt per draw.
  std::uint64_t NextU64() {
    const std::uint64_t block_index = next_draw_ >> 1;
    if ((next_draw_ & 1) == 0 || cached_block_ != block_index) {
      const Philox4x32::Block block = Philox4x32::Encrypt(
          {static_cast<std::uint32_t>(block_index),
           static_cast<std::uint32_t>(block_index >> 32),
           static_cast<std::uint32_t>(lane_),
           static_cast<std::uint32_t>(lane_ >> 32)},
          key_);
      low_ = block[0] | (static_cast<std::uint64_t>(block[1]) << 32);
      high_ = block[2] | (static_cast<std::uint64_t>(block[3]) << 32);
      cached_block_ = block_index;
    }
    const std::uint64_t value = (next_draw_ & 1) == 0 ? low_ : high_;
    ++next_draw_;
    return value;
  }

  /// Uniform double in [0, 1): identical bit mapping to
  /// RngStream::NextDouble (53 high bits).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1), safe as a log() input; identical mapping to
  /// RngStream::NextOpenDouble.
  double NextOpenDouble() {
    return (static_cast<double>(NextU64() >> 11) + 0.5) * 0x1.0p-53;
  }

  /// O(1) random access: the next NextU64 returns draw `draw_index` — the
  /// counter-based property that makes checkpoint-segment resumption free.
  void Seek(std::uint64_t draw_index) {
    next_draw_ = draw_index;
    cached_block_ = ~std::uint64_t{0};
  }

  std::uint64_t draw_index() const { return next_draw_; }
  std::uint64_t lane() const { return lane_; }

 private:
  Philox4x32::Key key_;
  std::uint64_t lane_ = 0;
  std::uint64_t next_draw_ = 0;
  std::uint64_t cached_block_ = ~std::uint64_t{0};
  std::uint64_t low_ = 0;
  std::uint64_t high_ = 0;
};

/// Lockstep generator for a block of K consecutive lanes: one shared draw
/// cursor, K independent streams.  FillUniformDoubles(out) yields lane l's
/// next draw in out[l] — exactly PhiloxStream(seed, first_lane + l) would
/// produce.  Cipher blocks are produced kBlocksAhead at a time by the
/// out-of-line SoA kernel in philox.cpp (an ISA-widened TU): one refill
/// serves 2 * kBlocksAhead consecutive draws per lane, so the per-refill
/// setup amortises and the independent per-(lane, block) cipher chains
/// overlap in the out-of-order window.  Counter-based random access makes
/// look-ahead free: blocks computed past a segment boundary are exactly
/// the blocks the next segment consumes.
class PhiloxLanes {
 public:
  /// Cipher blocks computed per refill (2 draws per lane each).
  static constexpr std::size_t kBlocksAhead = 4;

  PhiloxLanes() = default;

  /// Re-seeds the block: lane slot l maps to stream (seed, first_lane + l).
  /// Reuses buffers once capacity covers `lanes` (no steady-state
  /// allocation in the replication loop).
  void Reset(std::uint64_t seed, std::uint64_t first_lane, std::size_t lanes);

  /// Writes one uniform [0, 1) double per lane into out[0 .. lane_count)
  /// and advances the shared draw cursor by one.  A plain row copy when
  /// the draw is buffered; every 2 * kBlocksAhead draws the buffer is
  /// refilled through the SoA cipher kernel.
  void FillUniformDoubles(double* out) {
    const double* row = NextRow();
    for (std::size_t l = 0; l < lane_count_; ++l) out[l] = row[l];
  }

  /// The buffered row for the next draw — the zero-copy variant of
  /// FillUniformDoubles for kernels that consume the row in place.  The
  /// pointer is valid until the next Fill/NextRow/Reset/Seek call.
  const double* NextRow() {
    const std::uint64_t block_index = next_draw_ >> 1;
    // The unsigned difference covers "before the buffer" and "past the
    // buffer" in one comparison; the invalidated state (Reset / Seek)
    // parks buffered_first_ at a sentinel no real block index reaches
    // (block indices are draw_index / 2, so they never exceed 2^63).
    if (block_index - buffered_first_ >= kBlocksAhead) {
      Refill(block_index);
    }
    const std::size_t row =
        (block_index - buffered_first_) * 2 + (next_draw_ & 1);
    ++next_draw_;
    return buffer_.data() + row * lane_count_;
  }

  std::size_t lane_count() const { return lane_count_; }
  std::uint64_t first_lane() const { return first_lane_; }
  std::uint64_t draw_index() const { return next_draw_; }

  /// O(1) cursor jump (counter-based random access); the next Fill yields
  /// every lane's draw `draw_index`.
  void Seek(std::uint64_t draw_index) {
    next_draw_ = draw_index;
    buffered_first_ = kInvalidBuffer;
  }

 private:
  /// Encrypts cipher blocks [first_block, first_block + kBlocksAhead) for
  /// every lane through the structure-of-arrays round loops and stores
  /// every 64-bit half already converted to a uniform [0, 1) double
  /// (identical bit mapping to PhiloxStream::NextDouble).  Buffer row
  /// 2 * j + h holds half h of block first_block + j.
  void Refill(std::uint64_t first_block);

  /// "Nothing buffered": far enough from every reachable block index that
  /// block - kInvalidBuffer can never land inside [0, kBlocksAhead) —
  /// ~0 would wrap to block + 1 and alias the first blocks.
  static constexpr std::uint64_t kInvalidBuffer = std::uint64_t{1} << 63;

  Philox4x32::Key key_{};
  std::uint64_t first_lane_ = 0;
  std::size_t lane_count_ = 0;
  std::uint64_t next_draw_ = 0;
  std::uint64_t buffered_first_ = kInvalidBuffer;
  std::vector<double> buffer_;  // [2 * kBlocksAhead rows][lane_count_]
};

}  // namespace fairchain

#endif  // FAIRCHAIN_SUPPORT_PHILOX_HPP_
