#include "support/flags.hpp"

#include <algorithm>
#include <stdexcept>

namespace fairchain {

namespace {

// Edit distance between flag names, for "did you mean" suggestions.
std::size_t Levenshtein(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitute =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
    }
  }
  return row[b.size()];
}

}  // namespace

FlagSet FlagSet::Parse(const std::vector<std::string>& args,
                       const std::vector<std::string>& switches) {
  FlagSet set;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      set.positionals_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) {
      throw std::invalid_argument("FlagSet: bare '--' is not a flag");
    }
    const std::size_t equals = body.find('=');
    if (equals != std::string::npos) {
      set.flags_[body.substr(0, equals)] = body.substr(equals + 1);
      continue;
    }
    // `--name value` unless the flag is a declared switch or the next
    // token is another flag (then treat as boolean).
    const bool is_switch =
        std::find(switches.begin(), switches.end(), body) != switches.end();
    if (!is_switch && i + 1 < args.size() &&
        args[i + 1].rfind("--", 0) != 0) {
      set.flags_[body] = args[i + 1];
      ++i;
    } else {
      set.flags_[body] = "";
    }
  }
  return set;
}

FlagSet FlagSet::Parse(int argc, const char* const argv[],
                       const std::vector<std::string>& switches) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return Parse(args, switches);
}

bool FlagSet::Has(const std::string& name) const {
  return flags_.find(name) != flags_.end();
}

std::string FlagSet::GetString(const std::string& name,
                               const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

double FlagSet::GetDouble(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("tail");
    return value;
  } catch (...) {
    throw std::invalid_argument("FlagSet: --" + name +
                                " expects a number, got '" + it->second +
                                "'");
  }
}

std::uint64_t FlagSet::GetU64(const std::string& name,
                              std::uint64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("tail");
    return static_cast<std::uint64_t>(value);
  } catch (...) {
    throw std::invalid_argument("FlagSet: --" + name +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

void FlagSet::RejectUnknown(const std::vector<std::string>& allowed) const {
  std::string errors;
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), name) != allowed.end()) {
      continue;
    }
    if (!errors.empty()) errors += "; ";
    errors += "unknown flag --" + name;
    std::size_t best_distance = 3;  // suggest only close misspellings
    const std::string* best = nullptr;
    for (const std::string& candidate : allowed) {
      const std::size_t distance = Levenshtein(name, candidate);
      if (distance < best_distance) {
        best_distance = distance;
        best = &candidate;
      }
    }
    if (best != nullptr) errors += " (did you mean --" + *best + "?)";
  }
  if (!errors.empty()) throw std::invalid_argument("FlagSet: " + errors);
}

bool FlagSet::GetBool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& value = it->second;
  return value.empty() || value == "1" || value == "true" || value == "yes";
}

}  // namespace fairchain
