#include "support/flags.hpp"

#include <stdexcept>

namespace fairchain {

FlagSet FlagSet::Parse(const std::vector<std::string>& args) {
  FlagSet set;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      set.positionals_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) {
      throw std::invalid_argument("FlagSet: bare '--' is not a flag");
    }
    const std::size_t equals = body.find('=');
    if (equals != std::string::npos) {
      set.flags_[body.substr(0, equals)] = body.substr(equals + 1);
      continue;
    }
    // `--name value` unless the next token is another flag (then treat as
    // a boolean switch).
    if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      set.flags_[body] = args[i + 1];
      ++i;
    } else {
      set.flags_[body] = "";
    }
  }
  return set;
}

FlagSet FlagSet::Parse(int argc, const char* const argv[]) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return Parse(args);
}

bool FlagSet::Has(const std::string& name) const {
  return flags_.find(name) != flags_.end();
}

std::string FlagSet::GetString(const std::string& name,
                               const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

double FlagSet::GetDouble(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("tail");
    return value;
  } catch (...) {
    throw std::invalid_argument("FlagSet: --" + name +
                                " expects a number, got '" + it->second +
                                "'");
  }
}

std::uint64_t FlagSet::GetU64(const std::string& name,
                              std::uint64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("tail");
    return static_cast<std::uint64_t>(value);
  } catch (...) {
    throw std::invalid_argument("FlagSet: --" + name +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

bool FlagSet::GetBool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& value = it->second;
  return value.empty() || value == "1" || value == "true" || value == "yes";
}

}  // namespace fairchain
