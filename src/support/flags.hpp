// Minimal command-line flag parsing for the fairchain CLI.
//
// Supports `--name value` and `--name=value` long flags plus positional
// arguments; typed accessors with defaults and range validation.  No
// external dependencies, deliberately small.

#ifndef FAIRCHAIN_SUPPORT_FLAGS_HPP_
#define FAIRCHAIN_SUPPORT_FLAGS_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fairchain {

/// Parsed command line: positionals in order, flags by name.
class FlagSet {
 public:
  /// Parses argv-style input (excluding argv[0]).  Throws
  /// std::invalid_argument on a malformed flag (e.g. missing value).
  /// Flags named in `switches` are boolean and never consume the next
  /// token, so a positional may directly follow them
  /// (`--no-files table1` keeps "table1" positional).
  static FlagSet Parse(const std::vector<std::string>& args,
                       const std::vector<std::string>& switches = {});

  /// Convenience overload for main()'s argc/argv (skips argv[0]).
  static FlagSet Parse(int argc, const char* const argv[],
                       const std::vector<std::string>& switches = {});

  /// True when --name was supplied.
  bool Has(const std::string& name) const;

  /// String flag with default.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;

  /// Double flag with default; throws std::invalid_argument when the
  /// supplied value does not parse.
  double GetDouble(const std::string& name, double fallback) const;

  /// Unsigned integer flag with default; throws on malformed values.
  std::uint64_t GetU64(const std::string& name,
                       std::uint64_t fallback) const;

  /// Boolean flag: present without value (or with "true"/"1") = true.
  bool GetBool(const std::string& name, bool fallback = false) const;

  /// Positional arguments in order.
  const std::vector<std::string>& positionals() const {
    return positionals_;
  }

  /// Throws std::invalid_argument when any parsed flag is not in `allowed`,
  /// naming every offender and suggesting the closest allowed spelling
  /// ("unknown flag --rep (did you mean --reps?)").  Commands call this
  /// after parsing so a misspelled flag fails loudly instead of silently
  /// falling back to the default value.
  void RejectUnknown(const std::vector<std::string>& allowed) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positionals_;
};

}  // namespace fairchain

#endif  // FAIRCHAIN_SUPPORT_FLAGS_HPP_
