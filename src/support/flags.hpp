// Minimal command-line flag parsing for the fairchain CLI.
//
// Supports `--name value` and `--name=value` long flags plus positional
// arguments; typed accessors with defaults and range validation.  No
// external dependencies, deliberately small.

#ifndef FAIRCHAIN_SUPPORT_FLAGS_HPP_
#define FAIRCHAIN_SUPPORT_FLAGS_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fairchain {

/// Parsed command line: positionals in order, flags by name.
class FlagSet {
 public:
  /// Parses argv-style input (excluding argv[0]).  Throws
  /// std::invalid_argument on a malformed flag (e.g. missing value).
  static FlagSet Parse(const std::vector<std::string>& args);

  /// Convenience overload for main()'s argc/argv (skips argv[0]).
  static FlagSet Parse(int argc, const char* const argv[]);

  /// True when --name was supplied.
  bool Has(const std::string& name) const;

  /// String flag with default.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;

  /// Double flag with default; throws std::invalid_argument when the
  /// supplied value does not parse.
  double GetDouble(const std::string& name, double fallback) const;

  /// Unsigned integer flag with default; throws on malformed values.
  std::uint64_t GetU64(const std::string& name,
                       std::uint64_t fallback) const;

  /// Boolean flag: present without value (or with "true"/"1") = true.
  bool GetBool(const std::string& name, bool fallback = false) const;

  /// Positional arguments in order.
  const std::vector<std::string>& positionals() const {
    return positionals_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positionals_;
};

}  // namespace fairchain

#endif  // FAIRCHAIN_SUPPORT_FLAGS_HPP_
