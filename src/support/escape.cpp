#include "support/escape.hpp"

#include <cstdio>

namespace fairchain {

std::string EscapeCsvField(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quoting) return field;
  std::string escaped;
  escaped.reserve(field.size() + 2);
  escaped.push_back('"');
  for (const char c : field) {
    if (c == '"') escaped.push_back('"');
    escaped.push_back(c);
  }
  escaped.push_back('"');
  return escaped;
}

std::string EscapeJsonString(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\b':
        escaped += "\\b";
        break;
      case '\f':
        escaped += "\\f";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          escaped += buffer;
        } else {
          escaped.push_back(c);
        }
        break;
    }
  }
  return escaped;
}

}  // namespace fairchain
