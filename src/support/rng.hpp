// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component of fairchain draws randomness through RngStream,
// a thin wrapper over xoshiro256** (Blackman & Vigna).  Streams are seeded
// via SplitMix64, the recommended seeding procedure for the xoshiro family,
// and support O(1) stream splitting so that parallel Monte Carlo
// replications are statistically independent AND bitwise reproducible
// regardless of thread scheduling: replication r always uses
// `RngStream(seed).Split(r)`.
//
// The generators are implemented from scratch (public-domain algorithms);
// <random> engines are deliberately avoided because their distributions are
// not reproducible across standard-library implementations.

#ifndef FAIRCHAIN_SUPPORT_RNG_HPP_
#define FAIRCHAIN_SUPPORT_RNG_HPP_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fairchain {

/// SplitMix64: a tiny 64-bit generator used to expand seeds.
///
/// Passes BigCrush when used directly; here it only initialises the state of
/// stronger generators and derives per-replication sub-seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value and advances the state.
  constexpr std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator (period 2^256 - 1).
///
/// All simulation randomness flows through this class.  Determinism contract:
/// the same seed always yields the same sequence, on every platform.
class RngStream {
 public:
  /// Seeds the stream by expanding `seed` through SplitMix64.
  explicit RngStream(std::uint64_t seed);

  /// Constructs from raw state (used internally by Split / Jump).
  explicit RngStream(const std::array<std::uint64_t, 4>& state);

  /// Returns the next raw 64-bit output.  Inline (with the two doubles
  /// below): one draw per simulated block is THE innermost operation of
  /// every Monte Carlo campaign, and the batched protocol loops rely on it
  /// scheduling into their inner loop instead of costing a call per draw.
  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Returns a uniform double in [0, 1) with 53 random bits.
  double NextDouble() {
    // 53 high bits -> uniform on [0, 1) with full double precision.
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Returns a uniform double in the open interval (0, 1); never 0, so it is
  /// safe as input to log() in inverse-transform sampling.
  double NextOpenDouble() {
    // (u + 0.5) / 2^53 lies in (0, 1) strictly.
    return (static_cast<double>(NextU64() >> 11) + 0.5) * 0x1.0p-53;
  }

  /// Returns a uniform integer in [0, bound) without modulo bias.
  /// `bound` must be positive.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Fills `out` with independent uniform [0,1) doubles.
  void FillDoubles(std::vector<double>* out);

  /// Returns a statistically independent child stream.
  ///
  /// Implemented as SplitMix64 over (state, index): child streams for
  /// distinct indices never collide in practice and are reproducible.
  RngStream Split(std::uint64_t index) const;

  /// Advances this stream by 2^128 steps (the canonical xoshiro jump).
  /// Useful for partitioning one logical stream across threads.
  void Jump();

  /// Raw state accessor (serialisation / tests).
  const std::array<std::uint64_t, 4>& state() const { return state_; }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace fairchain

#endif  // FAIRCHAIN_SUPPORT_RNG_HPP_
