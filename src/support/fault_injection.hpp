// Deterministic fault injection for crash/kill testing.
//
// Production code marks its interesting failure points with
// MaybeInjectFault("site", index, count); the hook is a no-op unless the
// FAIRCHAIN_FAULT environment variable selects exactly that point:
//
//   FAIRCHAIN_FAULT=<site>:<index>:<nth>:<action>
//
//   site    the call-site name (e.g. shard-chunk, store-commit)
//   index   which instance of the site (e.g. the shard number; 0 when the
//           site has only one instance)
//   nth     fire when the caller's count reaches this value (counts are
//           1-based: the caller reports "how many times this point has now
//           been passed")
//   action  kill           raise(SIGKILL) — an unhandleable crash
//           exit=<code>    _exit(code)   — sudden death, no cleanup
//           stall=<ms>     sleep for <ms> milliseconds, then continue
//
// Example: FAIRCHAIN_FAULT=shard-chunk:1:2:kill SIGKILLs shard worker 1
// immediately after it has streamed its 2nd result chunk.
//
// The variable is re-read on every call (getenv, no caching) so in-process
// tests can setenv/unsetenv between campaign runs, and forked shard
// workers inherit the trigger from their parent.  Sites fire at chunk /
// store-write granularity — never inside a simulation inner loop — so the
// lookup cost is irrelevant.
//
// Registered sites (keep in sync with docs/TESTING.md):
//   shard-chunk    index = shard; count = chunks fully streamed by that
//                  shard worker (fires between two chunk messages)
//   shard-message  index = shard; count = message headers written (fires
//                  after the header, before the payload — a torn message)
//   store-commit   index = 0; count = entries written (fires after the
//                  temp file is complete, before the atomic rename)
//   store-payload  index = 0; count = entries written (fires after roughly
//                  half the entry's payload bytes — a truncated temp file)
//   pool-task      index = worker id; count = tasks that worker has
//                  finished in the current stealing batch (fires between
//                  two tasks — stalling here forces siblings to steal)

#ifndef FAIRCHAIN_SUPPORT_FAULT_INJECTION_HPP_
#define FAIRCHAIN_SUPPORT_FAULT_INJECTION_HPP_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace fairchain {

/// A parsed FAIRCHAIN_FAULT trigger.
struct FaultSpec {
  std::string site;
  std::uint64_t index = 0;
  std::uint64_t nth = 0;
  enum class Action { kKill, kExit, kStall } action = Action::kKill;
  std::uint64_t argument = 0;  ///< exit code or stall milliseconds

  /// True when this trigger selects (site, index) at count `count`.
  bool Matches(std::string_view at_site, std::uint64_t at_index,
               std::uint64_t count) const;
};

/// Parses a trigger description ("shard-chunk:1:2:kill").  Throws
/// std::invalid_argument on a malformed site, index, count, or action.
FaultSpec ParseFaultSpec(const std::string& text);

/// The process's active trigger: ParseFaultSpec(FAIRCHAIN_FAULT), re-read
/// on every call; std::nullopt when the variable is unset or empty.  A
/// malformed value throws — a typo in a fault experiment must not silently
/// run fault-free.
std::optional<FaultSpec> ActiveFault();

/// Fires the active trigger if it selects (site, index, count); otherwise
/// does nothing.  `count` is 1-based ("this point has now been passed
/// `count` times").
void MaybeInjectFault(std::string_view site, std::uint64_t index,
                      std::uint64_t count);

}  // namespace fairchain

#endif  // FAIRCHAIN_SUPPORT_FAULT_INJECTION_HPP_
