#include "support/u256.hpp"

#include <stdexcept>

namespace fairchain {

namespace {

// 64x64 -> 128 multiply via the compiler's native unsigned __int128.
inline void Mul64(std::uint64_t a, std::uint64_t b, std::uint64_t* lo,
                  std::uint64_t* hi) {
  const unsigned __int128 p =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  *lo = static_cast<std::uint64_t>(p);
  *hi = static_cast<std::uint64_t>(p >> 64);
}

inline int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

U256 U256::FromHex(const std::string& hex) {
  std::size_t start = 0;
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    start = 2;
  }
  if (start == hex.size()) {
    throw std::invalid_argument("U256::FromHex: empty input");
  }
  if (hex.size() - start > 64) {
    throw std::invalid_argument("U256::FromHex: more than 64 hex digits");
  }
  U256 value;
  for (std::size_t i = start; i < hex.size(); ++i) {
    const int digit = HexDigit(hex[i]);
    if (digit < 0) {
      throw std::invalid_argument("U256::FromHex: invalid hex digit");
    }
    value = (value << 4) | U256(static_cast<std::uint64_t>(digit));
  }
  return value;
}

U256 U256::FromBigEndianBytes(const std::uint8_t bytes[32]) {
  U256 value;
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t word = 0;
    for (int byte = 0; byte < 8; ++byte) {
      word = (word << 8) | bytes[(3 - limb) * 8 + byte];
    }
    value.limbs_[limb] = word;
  }
  return value;
}

void U256::ToBigEndianBytes(std::uint8_t out[32]) const {
  for (int limb = 0; limb < 4; ++limb) {
    const std::uint64_t word = limbs_[3 - limb];
    for (int byte = 0; byte < 8; ++byte) {
      out[limb * 8 + byte] =
          static_cast<std::uint8_t>(word >> (8 * (7 - byte)));
    }
  }
}

std::string U256::ToHex() const {
  static const char* kDigits = "0123456789abcdef";
  if (IsZero()) return "0";
  std::string result;
  bool leading = true;
  for (int limb = 3; limb >= 0; --limb) {
    for (int nibble = 15; nibble >= 0; --nibble) {
      const int digit =
          static_cast<int>((limbs_[limb] >> (4 * nibble)) & 0xF);
      if (leading && digit == 0) continue;
      leading = false;
      result.push_back(kDigits[digit]);
    }
  }
  return result;
}

double U256::ToDouble() const {
  double value = 0.0;
  for (int limb = 3; limb >= 0; --limb) {
    value = value * 18446744073709551616.0 /* 2^64 */ +
            static_cast<double>(limbs_[limb]);
  }
  return value;
}

int U256::BitLength() const {
  for (int limb = 3; limb >= 0; --limb) {
    if (limbs_[limb] != 0) {
      return limb * 64 + (63 - __builtin_clzll(limbs_[limb]));
    }
  }
  return -1;
}

U256 U256::operator+(const U256& other) const {
  U256 result;
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const unsigned __int128 sum =
        static_cast<unsigned __int128>(limbs_[i]) + other.limbs_[i] + carry;
    result.limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
  return result;
}

U256 U256::operator-(const U256& other) const {
  U256 result;
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint64_t a = limbs_[i];
    const std::uint64_t b = other.limbs_[i];
    const std::uint64_t diff1 = a - b;
    const std::uint64_t borrow1 = a < b ? 1u : 0u;
    const std::uint64_t diff2 = diff1 - borrow;
    const std::uint64_t borrow2 = diff1 < borrow ? 1u : 0u;
    result.limbs_[i] = diff2;
    borrow = borrow1 | borrow2;
  }
  return result;
}

U256 U256::operator*(const U256& other) const {
  // Schoolbook multiply, keeping only the low 256 bits.
  std::array<std::uint64_t, 4> out = {0, 0, 0, 0};
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; i + j < 4; ++j) {
      std::uint64_t lo, hi;
      Mul64(limbs_[i], other.limbs_[j], &lo, &hi);
      unsigned __int128 acc = static_cast<unsigned __int128>(out[i + j]) +
                              lo + carry;
      out[i + j] = static_cast<std::uint64_t>(acc);
      carry = hi + static_cast<std::uint64_t>(acc >> 64);
    }
  }
  return U256(out[0], out[1], out[2], out[3]);
}

void U256::DivMod(const U256& num, const U256& den, U256* quot, U256* rem) {
  if (den.IsZero()) throw std::invalid_argument("U256: division by zero");
  if (num < den) {
    *quot = U256();
    *rem = num;
    return;
  }
  if (den.FitsU64()) {
    auto [q, r] = num.DivModU64(den.ToU64());
    *quot = q;
    *rem = U256(r);
    return;
  }
  // Shift-subtract long division over at most 256 bits.
  U256 quotient;
  U256 remainder;
  const int bits = num.BitLength();
  for (int bit = bits; bit >= 0; --bit) {
    remainder = remainder << 1;
    const std::uint64_t numerator_bit =
        (num.limbs_[bit / 64] >> (bit % 64)) & 1ULL;
    remainder.limbs_[0] |= numerator_bit;
    if (remainder >= den) {
      remainder -= den;
      quotient.limbs_[bit / 64] |= (1ULL << (bit % 64));
    }
  }
  *quot = quotient;
  *rem = remainder;
}

U256 U256::operator/(const U256& divisor) const {
  U256 q, r;
  DivMod(*this, divisor, &q, &r);
  return q;
}

U256 U256::operator%(const U256& divisor) const {
  U256 q, r;
  DivMod(*this, divisor, &q, &r);
  return r;
}

U256 U256::operator<<(unsigned shift) const {
  if (shift >= 256) return U256();
  const unsigned limb_shift = shift / 64;
  const unsigned bit_shift = shift % 64;
  U256 result;
  for (int i = 3; i >= 0; --i) {
    std::uint64_t value = 0;
    const int src = i - static_cast<int>(limb_shift);
    if (src >= 0) {
      value = limbs_[src] << bit_shift;
      if (bit_shift != 0 && src - 1 >= 0) {
        value |= limbs_[src - 1] >> (64 - bit_shift);
      }
    }
    result.limbs_[i] = value;
  }
  return result;
}

U256 U256::operator>>(unsigned shift) const {
  if (shift >= 256) return U256();
  const unsigned limb_shift = shift / 64;
  const unsigned bit_shift = shift % 64;
  U256 result;
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t value = 0;
    const std::size_t src = i + limb_shift;
    if (src < 4) {
      value = limbs_[src] >> bit_shift;
      if (bit_shift != 0 && src + 1 < 4) {
        value |= limbs_[src + 1] << (64 - bit_shift);
      }
    }
    result.limbs_[i] = value;
  }
  return result;
}

U256 U256::operator&(const U256& o) const {
  return U256(limbs_[0] & o.limbs_[0], limbs_[1] & o.limbs_[1],
              limbs_[2] & o.limbs_[2], limbs_[3] & o.limbs_[3]);
}

U256 U256::operator|(const U256& o) const {
  return U256(limbs_[0] | o.limbs_[0], limbs_[1] | o.limbs_[1],
              limbs_[2] | o.limbs_[2], limbs_[3] | o.limbs_[3]);
}

U256 U256::operator^(const U256& o) const {
  return U256(limbs_[0] ^ o.limbs_[0], limbs_[1] ^ o.limbs_[1],
              limbs_[2] ^ o.limbs_[2], limbs_[3] ^ o.limbs_[3]);
}

U256 U256::SaturatingMulU64(std::uint64_t m) const {
  std::array<std::uint64_t, 4> out;
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t lo, hi;
    Mul64(limbs_[i], m, &lo, &hi);
    const unsigned __int128 acc = static_cast<unsigned __int128>(lo) + carry;
    out[i] = static_cast<std::uint64_t>(acc);
    carry = hi + static_cast<std::uint64_t>(acc >> 64);
  }
  if (carry != 0) return Max();
  return U256(out[0], out[1], out[2], out[3]);
}

U256 U256::MulDivU64(std::uint64_t m, std::uint64_t d) const {
  if (d == 0) throw std::invalid_argument("U256::MulDivU64: divide by zero");
  // 256 x 64 -> 320-bit product in five limbs.
  std::array<std::uint64_t, 5> product = {0, 0, 0, 0, 0};
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t lo, hi;
    Mul64(limbs_[i], m, &lo, &hi);
    const unsigned __int128 acc = static_cast<unsigned __int128>(lo) + carry;
    product[i] = static_cast<std::uint64_t>(acc);
    carry = hi + static_cast<std::uint64_t>(acc >> 64);
  }
  product[4] = carry;
  // Long division of the 320-bit product by the 64-bit divisor.
  std::array<std::uint64_t, 5> quotient = {0, 0, 0, 0, 0};
  unsigned __int128 remainder = 0;
  for (int i = 4; i >= 0; --i) {
    const unsigned __int128 cur = (remainder << 64) | product[i];
    quotient[i] = static_cast<std::uint64_t>(cur / d);
    remainder = cur % d;
  }
  if (quotient[4] != 0) return Max();
  return U256(quotient[0], quotient[1], quotient[2], quotient[3]);
}

std::pair<U256, std::uint64_t> U256::DivModU64(std::uint64_t d) const {
  if (d == 0) throw std::invalid_argument("U256::DivModU64: divide by zero");
  U256 quotient;
  unsigned __int128 remainder = 0;
  for (int i = 3; i >= 0; --i) {
    const unsigned __int128 cur = (remainder << 64) | limbs_[i];
    quotient.limbs_[i] = static_cast<std::uint64_t>(cur / d);
    remainder = cur % d;
  }
  return {quotient, static_cast<std::uint64_t>(remainder)};
}

}  // namespace fairchain
