// Streaming and batch statistics used by the Monte Carlo engine.
//
// RunningStats implements Welford's numerically stable online algorithm with
// pairwise merging (so per-thread accumulators can be combined without bias).
// Quantile() uses the linear-interpolation definition (type 7 in Hyndman &
// Fan), matching the percentile bands the paper plots (5th / 95th).

#ifndef FAIRCHAIN_SUPPORT_STATS_HPP_
#define FAIRCHAIN_SUPPORT_STATS_HPP_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace fairchain {

/// Online mean / variance / extrema accumulator (Welford).
class RunningStats {
 public:
  RunningStats() = default;

  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

  /// Number of observations.
  std::uint64_t count() const { return count_; }
  /// Sample mean (0 when empty).
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance (0 when count < 2).
  double Variance() const;
  /// Unbiased sample standard deviation.
  double StdDev() const;
  /// Standard error of the mean.
  double StdError() const;
  /// Smallest observation (+inf when empty).
  double Min() const { return min_; }
  /// Largest observation (-inf when empty).
  double Max() const { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Kahan-compensated summation: exact to double precision for long series.
class KahanSum {
 public:
  /// Adds a term.
  void Add(double x);
  /// Current compensated total.
  double Total() const { return sum_ + compensation_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Returns the q-quantile (q in [0,1]) of `values` by linear interpolation.
/// The input is copied and partially sorted; throws on empty input.
double Quantile(std::vector<double> values, double q);

/// Computes several quantiles in one sort pass (more efficient than repeated
/// Quantile calls).  `qs` entries must lie in [0,1]; throws on empty input.
std::vector<double> Quantiles(std::vector<double> values,
                              const std::vector<double>& qs);

/// Allocation-free core of Quantiles: sorts `values` IN PLACE (the buffer
/// is left sorted) and writes the quantiles into `out`, resized to
/// qs.size().  Callers that reduce many same-sized samples reuse one
/// buffer pair across calls — the Monte Carlo per-checkpoint reduction
/// path.  Same validation as Quantiles.
void QuantilesInPlace(std::vector<double>& values,
                      const std::vector<double>& qs,
                      std::vector<double>* out);

/// Fraction of `values` strictly outside [lo, hi].
double FractionOutside(const std::vector<double>& values, double lo, double hi);

/// Fixed-width histogram over [lo, hi) with `bins` buckets plus underflow /
/// overflow counters; used by examples to render reward distributions.
class Histogram {
 public:
  /// Creates a histogram; throws std::invalid_argument when hi <= lo or
  /// bins == 0.
  Histogram(double lo, double hi, std::size_t bins);

  /// Inserts an observation.
  void Add(double x);

  /// Count in bucket `i` (i < bins()).
  std::uint64_t BucketCount(std::size_t i) const { return counts_[i]; }
  /// Inclusive lower edge of bucket `i`.
  double BucketLow(std::size_t i) const;
  /// Exclusive upper edge of bucket `i`.
  double BucketHigh(std::size_t i) const;

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  /// Renders a fixed-width ASCII bar chart (one bucket per line).
  std::string ToAscii(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace fairchain

#endif  // FAIRCHAIN_SUPPORT_STATS_HPP_
