// Fenwick (binary indexed) tree over non-negative weights, specialised for
// proportional sampling.
//
// This is the data structure behind the O(log m) Monte Carlo hot path: the
// protocol models draw the next proposer proportionally to stake with
// Sample() (one prefix-sum descent) and reinforce the winner with Add()
// (one update path), replacing the O(m) cumulative scan that capped
// simulations at small miner populations.  Build() is O(m) and is used by
// StakeState::Reset and after batched stake releases (reward withholding),
// where rebuilding once beats m individual update paths.
//
// Weights live in the tree as partial sums only; Weight() recovers a single
// element in O(log m) for tests and debugging.

#ifndef FAIRCHAIN_SUPPORT_FENWICK_HPP_
#define FAIRCHAIN_SUPPORT_FENWICK_HPP_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

namespace fairchain {

/// Upper bound on the lane count of the lockstep descents below; the
/// per-lane descent state (index + remaining) must fit on the stack.
inline constexpr std::size_t kMaxFenwickLanes = 32;

/// Fenwick tree over `size()` non-negative double weights.
class FenwickSampler {
 public:
  FenwickSampler() = default;

  /// Rebuilds the tree over `weights` in O(m); negative entries are a
  /// precondition violation (the callers validate stakes on construction).
  void Build(const std::vector<double>& weights);

  /// Adds `delta` to element `i` in O(log m).  Defined inline: this is the
  /// per-step reinforcement of every compounding protocol, and the batched
  /// RunSteps loops rely on it folding into their inner loop.  The
  /// two-element game updates straight-line (adding a masked +0.0 is exact
  /// on these non-negative sums, so the update set matches the loop's).
  void Add(std::size_t i, double delta) {
    total_ += delta;
    if (size_ == 2) {
      tree_[1] += MaskDouble(delta, i == 0);
      tree_[2] += delta;
      return;
    }
    for (std::size_t k = i + 1; k <= size_; k += k & (~k + 1)) {
      tree_[k] += delta;
    }
  }

  /// Sum of elements [0, i) in O(log m).
  double PrefixSum(std::size_t i) const {
    double sum = 0.0;
    for (std::size_t k = i; k > 0; k -= k & (~k + 1)) {
      sum += tree_[k];
    }
    return sum;
  }

  /// Element `i` alone, in O(log m).
  double Weight(std::size_t i) const { return PrefixSum(i + 1) - PrefixSum(i); }

  /// Sum of all elements, as the tree accumulates it.  May differ from an
  /// externally tracked total in the last few ulps; Sample() therefore
  /// scales against this value, never an external one.
  double Total() const { return total_; }

  /// Number of elements.
  std::size_t size() const { return size_; }

  /// Proportional selection: maps `u01` in [0, 1) to the smallest index i
  /// with PrefixSum(i + 1) > u01 * Total().  Zero-weight elements are never
  /// selected (their prefix sums tie with their predecessor's).  When
  /// floating-point rounding pushes the target past every prefix sum, the
  /// last positive-weight element wins — mirroring the linear scan's
  /// return-last fallback.  The result is ALWAYS in [0, max(size, 1)):
  /// u01 at or beyond 1.0, an all-zero tree, and even an empty tree clamp
  /// to an in-range index (0 in the degenerate cases) instead of reading
  /// out of bounds.
  /// Inline for the same reason as Add: one Sample per simulated block.
  ///
  /// This is the branch-based descent: a level whose node is skipped costs
  /// only a predicted compare.  Fastest when the weight distribution is
  /// CONCENTRATED (a compounding game that has crowned early winners): the
  /// descent path repeats, the predictor learns it, skips are free.  The
  /// two-element game (the paper's default) resolves with the same two
  /// comparisons the descent would make, minus the loop.
  std::size_t Sample(double u01) const {
    double remaining = u01 * total_;
    if (size_ == 2) return SampleTwo(remaining);
    std::size_t index = 0;
    for (std::size_t bit = mask_; bit != 0; bit >>= 1) {
      const std::size_t next = index + bit;
      if (next <= size_ && tree_[next] <= remaining) {
        index = next;
        remaining -= tree_[next];
      }
    }
    // `index` counts the elements whose cumulative sum is <= the target, so
    // it is the 0-based winner — unless rounding overran every prefix, in
    // which case walk back to the last element with positive weight.
    return index < size_ ? index : LastPositive();
  }

  /// Same selection as Sample — bit-for-bit, for every input — via a
  /// BRANCHLESS descent: `take ? bit : 0` compiles to a conditional move
  /// and the subtrahend is masked to exactly t or exactly +0.0 in the bit
  /// domain, so a mispredictable take/skip decision never flushes the
  /// pipeline.  Fastest when the distribution is FLAT or heavy-tailed but
  /// static (PoW / NEO, whose stakes never change: each level's decision
  /// is a fresh coin flip the predictor cannot learn) — measured (gcc
  /// Release, pareto:1.16): 37 → 17 ns at m = 100, 104 → 70 ns at m =
  /// 100k.  On a concentrated evolving tree the always-executed
  /// compare-mask-subtract chain loses to Sample's predicted skips, which
  /// is why the compounding protocols keep the branchy descent.
  ///
  /// The descent body has no bounds branch at all: Build pads the tree out
  /// to 2 x mask_ nodes with +inf, so an out-of-range node compares
  /// `+inf <= remaining` (never true, for any finite target) and is skipped
  /// by the same conditional move that skips a too-heavy real node.  The
  /// selected index is identical to the bounds-checked descent, and the
  /// loop body becomes a pure compare/cmov/mask chain — the form the
  /// multi-lane SampleFlatLanes below unrolls across replications.
  std::size_t SampleFlat(double u01) const {
    double remaining = u01 * total_;
    if (size_ == 2) return SampleTwo(remaining);
    std::size_t index = 0;
    for (std::size_t bit = mask_; bit != 0; bit >>= 1) {
      const double t = tree_[index + bit];
      const bool take = t <= remaining;
      index += take ? bit : 0;
      remaining -= MaskDouble(t, take);
    }
    return index < size_ ? index : LastPositive();
  }

  /// The masked MULTI-LANE descent: `out[l] = SampleFlat(u01[l])` for
  /// every lane, bit-for-bit, over the one shared tree.  All lanes walk
  /// the levels in lockstep; each level is a dependency-free inner loop of
  /// the same compare/cmov/mask chain as SampleFlat (the +inf padding has
  /// already absorbed the bounds check), so the compiler can vectorize
  /// across lanes and the K gather loads of one level overlap instead of
  /// serialising.  This is the static-stake (PoW / NEO) vectorized hot
  /// path: stakes never change, so one tree serves every replication.
  /// `lanes` must be <= kMaxFenwickLanes.  Defined out of line in
  /// fenwick.cpp — one of the ISA-widened kernel TUs (see
  /// FAIRCHAIN_LANE_SIMD in CMakeLists.txt), where the per-level lane loop
  /// compiles to vector gathers + compare-masked blends.
  void SampleFlatLanes(const double* u01, std::size_t lanes,
                       std::uint32_t* out) const;

  // --- Read-only internals for the fused lane kernels -------------------
  // (protocol/lane_kernels.cpp) which inline the descent against raw
  // pointers so per-step call and setup costs vanish.  The values expose
  // the exact quantities the descents above use; they are NOT a mutation
  // surface.

  /// The node array (1-based; padded with +inf past size() up to
  /// 2 * descent_mask() slots — the invariant the branchless descents
  /// probe against).
  const double* tree_data() const { return tree_.data(); }

  /// The top descent bit: highest power of two <= size().
  std::size_t descent_mask() const { return mask_; }

  /// Rounding-overran fallback: the last element with positive weight.
  /// Clamped so it can never produce an out-of-range index: an empty or
  /// default-constructed tree returns 0 (size_ - 1 would wrap to
  /// SIZE_MAX), and an all-zero tree — where no element is selectable by
  /// weight — degrades to element 0 rather than reading past the end.
  /// Every descent funnels its u01 >= 1 / rounding-overran cases here, so
  /// this clamp is what bounds Sample/SampleFlat for ALL inputs.
  std::size_t LastPositive() const {
    if (size_ == 0) return 0;
    std::size_t index = size_ - 1;
    while (index > 0 && Weight(index) <= 0.0) --index;
    return index;
  }

 private:
  /// `condition ? value : +0.0` computed in the bit domain (no int→fp
  /// conversion, no branch); exact because masking all bits off IS +0.0.
  static double MaskDouble(double value, bool condition) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    bits &= 0ULL - static_cast<std::uint64_t>(condition);
    double masked;
    std::memcpy(&masked, &bits, sizeof(masked));
    return masked;
  }

  /// Two-element fast path shared by both descents: exactly the decisions
  /// the loop would make (compare tree_[2] at bit 2, tree_[1] at bit 1).
  std::size_t SampleTwo(double remaining) const {
    if (tree_[2] <= remaining) return LastPositive();  // rounding overran
    return tree_[1] <= remaining ? 1 : 0;
  }

  // tree_[k] (1-based) holds the sum of the k & -k elements ending at k.
  // Padded to 2 x mask_ nodes with +inf beyond size_ so the branchless
  // descents need no bounds check (see SampleFlat).
  std::vector<double> tree_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;  // highest power of two <= size_
  double total_ = 0.0;
};

/// K INDEPENDENT Fenwick trees advanced in lockstep — the compounding
/// counterpart of FenwickSampler::SampleFlatLanes, for protocols whose
/// stakes evolve per lane (ML-PoS / FSL-PoS reinforce each lane's winner,
/// so lanes cannot share a tree).  Node k of lane l lives at
/// tree_[k * lane_count + l]: one descent level's loads sit adjacent
/// while lane indices still agree (early steps, before stakes diverge)
/// and degrade to gathers afterwards.  Selection and update are
/// operation-identical to a scalar FenwickSampler per lane — the lane
/// conformance tests pin SampleLanes against SampleFlat element-wise.
/// Same +inf padding discipline, same LastPositive clamp.
class FenwickLanes {
 public:
  FenwickLanes() = default;

  /// Rebuilds every lane's tree over the same `weights` in O(m x lanes)
  /// (lanes start from the cell's common stake vector and diverge through
  /// Add).  `lanes` must be in [1, kMaxFenwickLanes].  Reuses storage when
  /// capacity suffices (no steady-state allocation across cell resets).
  void Build(const std::vector<double>& weights, std::size_t lanes);

  /// Adds `delta` to element `i` of `lane` in O(log m) — the per-step
  /// reinforcement of one compounding lane.  Straight-line for the
  /// two-miner game, mirroring FenwickSampler::Add.
  void Add(std::size_t lane, std::size_t i, double delta) {
    totals_[lane] += delta;
    const std::size_t stride = lane_count_;
    double* column = tree_.data() + lane;
    if (size_ == 2) {
      column[1 * stride] += MaskDouble(delta, i == 0);
      column[2 * stride] += delta;
      return;
    }
    for (std::size_t k = i + 1; k <= size_; k += k & (~k + 1)) {
      column[k * stride] += delta;
    }
  }

  /// Lockstep masked descent, one u01 per lane: out[l] is exactly what
  /// FenwickSampler::SampleFlat(u01[l]) would return on lane l's tree.
  void SampleLanes(const double* u01, std::uint32_t* out) const {
    const std::size_t lanes = lane_count_;
    const std::size_t stride = lane_count_;
    double remaining[kMaxFenwickLanes];
    for (std::size_t l = 0; l < lanes; ++l) {
      remaining[l] = u01[l] * totals_[l];
    }
    if (size_ == 2) {
      for (std::size_t l = 0; l < lanes; ++l) {
        const double* column = tree_.data() + l;
        std::uint32_t index;
        if (column[2 * stride] <= remaining[l]) {
          index = static_cast<std::uint32_t>(LastPositive(l));
        } else {
          index = column[1 * stride] <= remaining[l] ? 1u : 0u;
        }
        out[l] = index;
      }
      return;
    }
    std::uint32_t index[kMaxFenwickLanes] = {};
    for (std::size_t bit = mask_; bit != 0; bit >>= 1) {
      for (std::size_t l = 0; l < lanes; ++l) {  // dependency-free
        const double t = tree_[(index[l] + bit) * stride + l];
        const bool take = t <= remaining[l];
        index[l] += take ? static_cast<std::uint32_t>(bit) : 0u;
        remaining[l] -= MaskDouble(t, take);
      }
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      out[l] = index[l] < size_
                   ? index[l]
                   : static_cast<std::uint32_t>(LastPositive(l));
    }
  }

  /// Sum of lane `lane`'s elements [0, i) in O(log m).
  double PrefixSum(std::size_t lane, std::size_t i) const {
    double sum = 0.0;
    for (std::size_t k = i; k > 0; k -= k & (~k + 1)) {
      sum += tree_[k * lane_count_ + lane];
    }
    return sum;
  }

  /// Element `i` of lane `lane`, in O(log m).
  double Weight(std::size_t lane, std::size_t i) const {
    return PrefixSum(lane, i + 1) - PrefixSum(lane, i);
  }

  /// Lane `lane`'s total, as its tree accumulates it.
  double Total(std::size_t lane) const { return totals_[lane]; }

  std::size_t size() const { return size_; }
  std::size_t lane_count() const { return lane_count_; }

 private:
  static double MaskDouble(double value, bool condition) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    bits &= 0ULL - static_cast<std::uint64_t>(condition);
    double masked;
    std::memcpy(&masked, &bits, sizeof(masked));
    return masked;
  }

  /// Same clamp discipline as FenwickSampler::LastPositive, per lane.
  std::size_t LastPositive(std::size_t lane) const {
    if (size_ == 0) return 0;
    std::size_t index = size_ - 1;
    while (index > 0 && Weight(lane, index) <= 0.0) --index;
    return index;
  }

  std::vector<double> tree_;    // [node * lane_count_ + lane], +inf padded
  std::vector<double> totals_;  // per-lane running totals
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  std::size_t lane_count_ = 0;
};

}  // namespace fairchain

#endif  // FAIRCHAIN_SUPPORT_FENWICK_HPP_
