// Fenwick (binary indexed) tree over non-negative weights, specialised for
// proportional sampling.
//
// This is the data structure behind the O(log m) Monte Carlo hot path: the
// protocol models draw the next proposer proportionally to stake with
// Sample() (one prefix-sum descent) and reinforce the winner with Add()
// (one update path), replacing the O(m) cumulative scan that capped
// simulations at small miner populations.  Build() is O(m) and is used by
// StakeState::Reset and after batched stake releases (reward withholding),
// where rebuilding once beats m individual update paths.
//
// Weights live in the tree as partial sums only; Weight() recovers a single
// element in O(log m) for tests and debugging.

#ifndef FAIRCHAIN_SUPPORT_FENWICK_HPP_
#define FAIRCHAIN_SUPPORT_FENWICK_HPP_

#include <cstddef>
#include <vector>

namespace fairchain {

/// Fenwick tree over `size()` non-negative double weights.
class FenwickSampler {
 public:
  FenwickSampler() = default;

  /// Rebuilds the tree over `weights` in O(m); negative entries are a
  /// precondition violation (the callers validate stakes on construction).
  void Build(const std::vector<double>& weights);

  /// Adds `delta` to element `i` in O(log m).
  void Add(std::size_t i, double delta);

  /// Sum of elements [0, i) in O(log m).
  double PrefixSum(std::size_t i) const;

  /// Element `i` alone, in O(log m).
  double Weight(std::size_t i) const { return PrefixSum(i + 1) - PrefixSum(i); }

  /// Sum of all elements, as the tree accumulates it.  May differ from an
  /// externally tracked total in the last few ulps; Sample() therefore
  /// scales against this value, never an external one.
  double Total() const { return total_; }

  /// Number of elements.
  std::size_t size() const { return size_; }

  /// Proportional selection: maps `u01` in [0, 1) to the smallest index i
  /// with PrefixSum(i + 1) > u01 * Total().  Zero-weight elements are never
  /// selected (their prefix sums tie with their predecessor's).  When
  /// floating-point rounding pushes the target past every prefix sum, the
  /// last positive-weight element wins — mirroring the linear scan's
  /// return-last fallback.  Requires a non-empty tree with positive total.
  std::size_t Sample(double u01) const;

 private:
  // tree_[k] (1-based) holds the sum of the k & -k elements ending at k.
  std::vector<double> tree_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;  // highest power of two <= size_
  double total_ = 0.0;
};

}  // namespace fairchain

#endif  // FAIRCHAIN_SUPPORT_FENWICK_HPP_
