// Fenwick (binary indexed) tree over non-negative weights, specialised for
// proportional sampling.
//
// This is the data structure behind the O(log m) Monte Carlo hot path: the
// protocol models draw the next proposer proportionally to stake with
// Sample() (one prefix-sum descent) and reinforce the winner with Add()
// (one update path), replacing the O(m) cumulative scan that capped
// simulations at small miner populations.  Build() is O(m) and is used by
// StakeState::Reset and after batched stake releases (reward withholding),
// where rebuilding once beats m individual update paths.
//
// Weights live in the tree as partial sums only; Weight() recovers a single
// element in O(log m) for tests and debugging.

#ifndef FAIRCHAIN_SUPPORT_FENWICK_HPP_
#define FAIRCHAIN_SUPPORT_FENWICK_HPP_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace fairchain {

/// Fenwick tree over `size()` non-negative double weights.
class FenwickSampler {
 public:
  FenwickSampler() = default;

  /// Rebuilds the tree over `weights` in O(m); negative entries are a
  /// precondition violation (the callers validate stakes on construction).
  void Build(const std::vector<double>& weights);

  /// Adds `delta` to element `i` in O(log m).  Defined inline: this is the
  /// per-step reinforcement of every compounding protocol, and the batched
  /// RunSteps loops rely on it folding into their inner loop.  The
  /// two-element game updates straight-line (adding a masked +0.0 is exact
  /// on these non-negative sums, so the update set matches the loop's).
  void Add(std::size_t i, double delta) {
    total_ += delta;
    if (size_ == 2) {
      tree_[1] += MaskDouble(delta, i == 0);
      tree_[2] += delta;
      return;
    }
    for (std::size_t k = i + 1; k <= size_; k += k & (~k + 1)) {
      tree_[k] += delta;
    }
  }

  /// Sum of elements [0, i) in O(log m).
  double PrefixSum(std::size_t i) const {
    double sum = 0.0;
    for (std::size_t k = i; k > 0; k -= k & (~k + 1)) {
      sum += tree_[k];
    }
    return sum;
  }

  /// Element `i` alone, in O(log m).
  double Weight(std::size_t i) const { return PrefixSum(i + 1) - PrefixSum(i); }

  /// Sum of all elements, as the tree accumulates it.  May differ from an
  /// externally tracked total in the last few ulps; Sample() therefore
  /// scales against this value, never an external one.
  double Total() const { return total_; }

  /// Number of elements.
  std::size_t size() const { return size_; }

  /// Proportional selection: maps `u01` in [0, 1) to the smallest index i
  /// with PrefixSum(i + 1) > u01 * Total().  Zero-weight elements are never
  /// selected (their prefix sums tie with their predecessor's).  When
  /// floating-point rounding pushes the target past every prefix sum, the
  /// last positive-weight element wins — mirroring the linear scan's
  /// return-last fallback.  Requires a non-empty tree with positive total.
  /// Inline for the same reason as Add: one Sample per simulated block.
  ///
  /// This is the branch-based descent: a level whose node is skipped costs
  /// only a predicted compare.  Fastest when the weight distribution is
  /// CONCENTRATED (a compounding game that has crowned early winners): the
  /// descent path repeats, the predictor learns it, skips are free.  The
  /// two-element game (the paper's default) resolves with the same two
  /// comparisons the descent would make, minus the loop.
  std::size_t Sample(double u01) const {
    double remaining = u01 * total_;
    if (size_ == 2) return SampleTwo(remaining);
    std::size_t index = 0;
    for (std::size_t bit = mask_; bit != 0; bit >>= 1) {
      const std::size_t next = index + bit;
      if (next <= size_ && tree_[next] <= remaining) {
        index = next;
        remaining -= tree_[next];
      }
    }
    // `index` counts the elements whose cumulative sum is <= the target, so
    // it is the 0-based winner — unless rounding overran every prefix, in
    // which case walk back to the last element with positive weight.
    return index < size_ ? index : LastPositive();
  }

  /// Same selection as Sample — bit-for-bit, for every input — via a
  /// BRANCHLESS descent: `take ? bit : 0` compiles to a conditional move
  /// and the subtrahend is masked to exactly t or exactly +0.0 in the bit
  /// domain, so a mispredictable take/skip decision never flushes the
  /// pipeline.  Fastest when the distribution is FLAT or heavy-tailed but
  /// static (PoW / NEO, whose stakes never change: each level's decision
  /// is a fresh coin flip the predictor cannot learn) — measured (gcc
  /// Release, pareto:1.16): 37 → 17 ns at m = 100, 104 → 70 ns at m =
  /// 100k.  On a concentrated evolving tree the always-executed
  /// compare-mask-subtract chain loses to Sample's predicted skips, which
  /// is why the compounding protocols keep the branchy descent.
  std::size_t SampleFlat(double u01) const {
    double remaining = u01 * total_;
    if (size_ == 2) return SampleTwo(remaining);
    std::size_t index = 0;
    for (std::size_t bit = mask_; bit != 0; bit >>= 1) {
      const std::size_t next = index + bit;
      if (next <= size_) {
        const double t = tree_[next];
        const bool take = t <= remaining;
        index += take ? bit : 0;
        remaining -= MaskDouble(t, take);
      }
    }
    return index < size_ ? index : LastPositive();
  }

 private:
  /// `condition ? value : +0.0` computed in the bit domain (no int→fp
  /// conversion, no branch); exact because masking all bits off IS +0.0.
  static double MaskDouble(double value, bool condition) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    bits &= 0ULL - static_cast<std::uint64_t>(condition);
    double masked;
    std::memcpy(&masked, &bits, sizeof(masked));
    return masked;
  }

  /// Two-element fast path shared by both descents: exactly the decisions
  /// the loop would make (compare tree_[2] at bit 2, tree_[1] at bit 1).
  std::size_t SampleTwo(double remaining) const {
    if (tree_[2] <= remaining) return LastPositive();  // rounding overran
    return tree_[1] <= remaining ? 1 : 0;
  }

  /// Rounding-overran fallback: the last element with positive weight.
  std::size_t LastPositive() const {
    std::size_t index = size_ - 1;
    while (index > 0 && Weight(index) <= 0.0) --index;
    return index;
  }

  // tree_[k] (1-based) holds the sum of the k & -k elements ending at k.
  std::vector<double> tree_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;  // highest power of two <= size_
  double total_ = 0.0;
};

}  // namespace fairchain

#endif  // FAIRCHAIN_SUPPORT_FENWICK_HPP_
