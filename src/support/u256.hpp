// U256: a 256-bit unsigned integer.
//
// Blockchain mining rules compare 256-bit hash outputs against 256-bit
// targets (PoW: Hash < D; ML-PoS: Hash < D * stake) and compute lottery
// deadlines (SL-PoS: time = basetime * Hash / stake).  U256 implements the
// minimal arithmetic needed for those rules exactly, with explicit overflow
// semantics, so the chain substrate never rounds through doubles.
//
// Representation: four 64-bit limbs, little-endian (limb 0 = least
// significant).  All arithmetic is constant-size and allocation-free.

#ifndef FAIRCHAIN_SUPPORT_U256_HPP_
#define FAIRCHAIN_SUPPORT_U256_HPP_

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <string>

namespace fairchain {

/// 256-bit unsigned integer with wrapping add/sub/mul and exact division.
class U256 {
 public:
  /// Zero.
  constexpr U256() : limbs_{0, 0, 0, 0} {}

  /// Value-constructs from a 64-bit integer.
  constexpr U256(std::uint64_t low) : limbs_{low, 0, 0, 0} {}  // NOLINT(runtime/explicit)

  /// Constructs from explicit limbs, least-significant first.
  constexpr U256(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2,
                 std::uint64_t l3)
      : limbs_{l0, l1, l2, l3} {}

  /// The largest representable value (2^256 - 1).
  static constexpr U256 Max() {
    return U256(~0ULL, ~0ULL, ~0ULL, ~0ULL);
  }

  /// Parses a hexadecimal string (optional "0x" prefix, up to 64 digits).
  /// Throws std::invalid_argument on malformed input.
  static U256 FromHex(const std::string& hex);

  /// Interprets 32 bytes as a big-endian integer (hash-digest convention).
  static U256 FromBigEndianBytes(const std::uint8_t bytes[32]);

  /// Serialises to 32 big-endian bytes.
  void ToBigEndianBytes(std::uint8_t out[32]) const;

  /// Lowercase hexadecimal rendering without leading zeros ("0" for zero).
  std::string ToHex() const;

  /// Limb accessor, least-significant first; index < 4.
  constexpr std::uint64_t limb(std::size_t i) const { return limbs_[i]; }

  /// True iff the value is zero.
  constexpr bool IsZero() const {
    return (limbs_[0] | limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }

  /// Truncates to the low 64 bits.
  constexpr std::uint64_t ToU64() const { return limbs_[0]; }

  /// True iff the value fits in 64 bits.
  constexpr bool FitsU64() const {
    return (limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }

  /// Converts to double (may lose precision beyond 53 bits; monotone).
  double ToDouble() const;

  /// Index of the highest set bit, or -1 for zero.
  int BitLength() const;

  friend constexpr bool operator==(const U256& a, const U256& b) {
    return a.limbs_ == b.limbs_;
  }
  friend constexpr std::strong_ordering operator<=>(const U256& a,
                                                    const U256& b) {
    for (int i = 3; i >= 0; --i) {
      if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
    }
    return std::strong_ordering::equal;
  }

  /// Wrapping addition (mod 2^256).
  U256 operator+(const U256& other) const;
  /// Wrapping subtraction (mod 2^256).
  U256 operator-(const U256& other) const;
  /// Wrapping multiplication (mod 2^256).
  U256 operator*(const U256& other) const;
  /// Quotient of exact integer division; throws on divide-by-zero.
  U256 operator/(const U256& divisor) const;
  /// Remainder of exact integer division; throws on divide-by-zero.
  U256 operator%(const U256& divisor) const;

  U256& operator+=(const U256& o) { return *this = *this + o; }
  U256& operator-=(const U256& o) { return *this = *this - o; }

  /// Left shift; shifts >= 256 yield zero.
  U256 operator<<(unsigned shift) const;
  /// Right shift; shifts >= 256 yield zero.
  U256 operator>>(unsigned shift) const;

  U256 operator&(const U256& o) const;
  U256 operator|(const U256& o) const;
  U256 operator^(const U256& o) const;

  /// Multiplies by a 64-bit value, saturating at Max() on overflow.
  ///
  /// Mining targets are computed as `base_target * stake`; saturation matches
  /// the "difficulty cannot exceed the hash range" semantics of real clients.
  U256 SaturatingMulU64(std::uint64_t m) const;

  /// Computes floor(value * m / d) exactly using a 320-bit intermediate.
  ///
  /// This is the SL-PoS lottery transform `basetime * Hash / stake`.
  /// Saturates at Max() if the true quotient exceeds 2^256 - 1.
  /// Throws std::invalid_argument when d == 0.
  U256 MulDivU64(std::uint64_t m, std::uint64_t d) const;

  /// (quotient, remainder) of division by a 64-bit divisor.
  /// Throws std::invalid_argument when d == 0.
  std::pair<U256, std::uint64_t> DivModU64(std::uint64_t d) const;

 private:
  static void DivMod(const U256& num, const U256& den, U256* quot, U256* rem);

  std::array<std::uint64_t, 4> limbs_;
};

}  // namespace fairchain

#endif  // FAIRCHAIN_SUPPORT_U256_HPP_
