#include "support/rng.hpp"

#include <stdexcept>

namespace fairchain {

RngStream::RngStream(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.Next();
  // An all-zero state is the single fixed point of xoshiro; SplitMix64 cannot
  // produce four zero outputs in a row from any seed, but guard regardless.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

RngStream::RngStream(const std::array<std::uint64_t, 4>& state) : state_(state) {
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    throw std::invalid_argument("RngStream: all-zero state is invalid");
  }
}

std::uint64_t RngStream::NextBounded(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("NextBounded: bound must be > 0");
  // Rejection sampling over the largest multiple of `bound`.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

bool RngStream::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

void RngStream::FillDoubles(std::vector<double>* out) {
  for (auto& value : *out) value = NextDouble();
}

RngStream RngStream::Split(std::uint64_t index) const {
  // Derive a child seed by hashing (state, index) through SplitMix64 chains.
  SplitMix64 mix(state_[0] ^ Rotl(state_[3], 13) ^
                 (index * 0xD1B54A32D192ED03ULL + 0x2545F4914F6CDD1DULL));
  std::uint64_t child_seed = mix.Next() ^ state_[1];
  SplitMix64 expander(child_seed + index);
  std::array<std::uint64_t, 4> child_state;
  for (auto& word : child_state) word = expander.Next();
  if (child_state[0] == 0 && child_state[1] == 0 && child_state[2] == 0 &&
      child_state[3] == 0) {
    child_state[0] = 0x9E3779B97F4A7C15ULL;
  }
  return RngStream(child_state);
}

void RngStream::Jump() {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      NextU64();
    }
  }
  state_ = acc;
}

}  // namespace fairchain
