// NOTE ON COMPILE FLAGS: this translation unit (and only this one) is
// compiled with the host CPU's full SIMD ISA when available (see the
// FAIRCHAIN_LANE_SIMD block in CMakeLists.txt).  That is safe here because
//   (a) every function defined in this file is a non-inline member or free
//       function, so no ISA-specific code can leak into other TUs via the
//       ODR, and
//   (b) the arithmetic is integer mixing plus a single exact multiply by
//       2^-53 — there are no mul+add chains for FP contraction to fuse, so
//       the output is bit-identical at any ISA level.  The flag changes
//       speed, never bytes.

#include "support/philox.hpp"

#include <algorithm>

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__)
#include <immintrin.h>
#define FAIRCHAIN_PHILOX_AVX512 1
#endif

#include "support/rng.hpp"

namespace fairchain {

Philox4x32::Key Philox4x32::KeyFromSeed(std::uint64_t seed) {
  // One SplitMix64 round decorrelates adjacent seeds (campaign cells often
  // use seed, seed+1, ...) before the bits become the cipher key.
  SplitMix64 mixer(seed);
  const std::uint64_t mixed = mixer.Next();
  return Key{static_cast<std::uint32_t>(mixed),
             static_cast<std::uint32_t>(mixed >> 32)};
}

std::uint64_t PhiloxDraw(Philox4x32::Key key, std::uint64_t lane,
                         std::uint64_t draw_index) {
  const std::uint64_t block_index = draw_index >> 1;
  const Philox4x32::Block block = Philox4x32::Encrypt(
      {static_cast<std::uint32_t>(block_index),
       static_cast<std::uint32_t>(block_index >> 32),
       static_cast<std::uint32_t>(lane),
       static_cast<std::uint32_t>(lane >> 32)},
      key);
  if ((draw_index & 1) == 0) {
    return block[0] | (static_cast<std::uint64_t>(block[1]) << 32);
  }
  return block[2] | (static_cast<std::uint64_t>(block[3]) << 32);
}

void PhiloxLanes::Reset(std::uint64_t seed, std::uint64_t first_lane,
                        std::size_t lanes) {
  key_ = Philox4x32::KeyFromSeed(seed);
  first_lane_ = first_lane;
  lane_count_ = lanes;
  next_draw_ = 0;
  buffered_first_ = kInvalidBuffer;
  const std::size_t needed = 2 * kBlocksAhead * lanes;
  if (buffer_.size() < needed) buffer_.resize(needed);
}

void PhiloxLanes::Refill(std::uint64_t first_block) {
  // Structure-of-arrays Philox: the four counter words of a chunk of lanes
  // live in four uint64 columns whose values stay 32-bit-clean, so the
  // 32x32->64 round multiplies are exactly the shape of vpmuludq.  Two
  // bodies below compute the identical schedule: an explicit AVX-512
  // kernel (8 lanes per register, vpmuludq + masked stores — GCC's
  // auto-vectorizer scalarises the portable loop, so this path is written
  // by hand) and the portable chunked loop for every other target.
  // Bit-for-bit the same schedule as Philox4x32::Encrypt — pinned
  // draw-for-draw against PhiloxStream by tests/support/philox_test.cpp.
  //
  // Per-round key schedule, shared by every lane and block: round r uses
  // key + r * weyl (the 9 bumps of the sequential Encrypt, precomputed).
  std::uint32_t k0[10];
  std::uint32_t k1[10];
  k0[0] = key_[0];
  k1[0] = key_[1];
  for (int r = 1; r < 10; ++r) {
    k0[r] = k0[r - 1] + Philox4x32::kWeyl0;
    k1[r] = k1[r - 1] + Philox4x32::kWeyl1;
  }
  double* rows = buffer_.data();
  const std::size_t stride = lane_count_;
#if FAIRCHAIN_PHILOX_AVX512
  const __m512i mult0 = _mm512_set1_epi64(Philox4x32::kMult0);
  const __m512i mult1 = _mm512_set1_epi64(Philox4x32::kMult1);
  const __m512i mask32 = _mm512_set1_epi64(0xFFFFFFFFu);
  const __m512d scale = _mm512_set1_pd(0x1.0p-53);
  const __m512i iota = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
  for (std::size_t base = 0; base < lane_count_; base += 8) {
    const std::size_t n = lane_count_ - base;
    const __mmask8 live =
        n >= 8 ? static_cast<__mmask8>(0xFF)
               : static_cast<__mmask8>((1u << n) - 1u);
    const __m512i lane =
        _mm512_add_epi64(_mm512_set1_epi64(first_lane_ + base), iota);
    const __m512i lane_lo = _mm512_and_si512(lane, mask32);
    const __m512i lane_hi = _mm512_srli_epi64(lane, 32);
    // The kBlocksAhead cipher chains of this lane group are independent;
    // iterating them back to back lets the out-of-order core overlap
    // their multiply latencies.  Values are carried UNMASKED between
    // rounds: vpmuludq reads only the low 32 bits of each element, and
    // the one place the high half matters (the packed output) masks once
    // at the end — trimming 4 ANDs from every round.
    for (std::size_t j = 0; j < kBlocksAhead; ++j) {
      const std::uint64_t block_index = first_block + j;
      __m512i x0 = _mm512_set1_epi64(block_index & 0xFFFFFFFFu);
      __m512i x1 = _mm512_set1_epi64(block_index >> 32);
      __m512i x2 = lane_lo;
      __m512i x3 = lane_hi;
      for (int r = 0; r < 10; ++r) {
        const __m512i product0 = _mm512_mul_epu32(mult0, x0);
        const __m512i product1 = _mm512_mul_epu32(mult1, x2);
        const __m512i w0 = _mm512_set1_epi64(k0[r]);
        const __m512i w1 = _mm512_set1_epi64(k1[r]);
        // srli fills the high half with zeros and w is a 32-bit value, so
        // the LOW 32 bits of each new word are exact; the high halves
        // carry stale xor noise that the pack below discards.
        x0 = _mm512_xor_si512(
            _mm512_xor_si512(_mm512_srli_epi64(product1, 32), x1), w0);
        x1 = product1;
        x2 = _mm512_xor_si512(
            _mm512_xor_si512(_mm512_srli_epi64(product0, 32), x3), w1);
        x3 = product0;
      }
      const __m512i even = _mm512_or_si512(_mm512_and_si512(x0, mask32),
                                           _mm512_slli_epi64(x1, 32));
      const __m512i odd = _mm512_or_si512(_mm512_and_si512(x2, mask32),
                                          _mm512_slli_epi64(x3, 32));
      const __m512d lo = _mm512_mul_pd(
          _mm512_cvtepu64_pd(_mm512_srli_epi64(even, 11)), scale);
      const __m512d hi = _mm512_mul_pd(
          _mm512_cvtepu64_pd(_mm512_srli_epi64(odd, 11)), scale);
      _mm512_mask_storeu_pd(rows + (2 * j + 0) * stride + base, live, lo);
      _mm512_mask_storeu_pd(rows + (2 * j + 1) * stride + base, live, hi);
    }
  }
#else   // portable structure-of-arrays fallback
  constexpr std::size_t kChunk = 16;
  for (std::size_t j = 0; j < kBlocksAhead; ++j) {
    const std::uint64_t block_index = first_block + j;
    const std::uint32_t c0 = static_cast<std::uint32_t>(block_index);
    const std::uint32_t c1 = static_cast<std::uint32_t>(block_index >> 32);
    double* low = rows + (2 * j + 0) * stride;
    double* spare = rows + (2 * j + 1) * stride;
    for (std::size_t base = 0; base < lane_count_; base += kChunk) {
      // Always run the full chunk — the tail lanes beyond lane_count_ are
      // computed and discarded, which keeps the round loops branch-free
      // and full-width instead of growing a scalar remainder loop.
      std::uint64_t x0[kChunk];
      std::uint64_t x1[kChunk];
      std::uint64_t x2[kChunk];
      std::uint64_t x3[kChunk];
      for (std::size_t l = 0; l < kChunk; ++l) {
        const std::uint64_t lane = first_lane_ + base + l;
        x0[l] = c0;
        x1[l] = c1;
        x2[l] = static_cast<std::uint32_t>(lane);
        x3[l] = lane >> 32;
      }
      for (int r = 0; r < 10; ++r) {
        const std::uint64_t w0 = k0[r];
        const std::uint64_t w1 = k1[r];
        for (std::size_t l = 0; l < kChunk; ++l) {
          const std::uint64_t product0 = Philox4x32::kMult0 * x0[l];
          const std::uint64_t product1 = Philox4x32::kMult1 * x2[l];
          x0[l] = ((product1 >> 32) ^ x1[l] ^ w0) & 0xFFFFFFFFu;
          x1[l] = product1 & 0xFFFFFFFFu;
          x2[l] = ((product0 >> 32) ^ x3[l] ^ w1) & 0xFFFFFFFFu;
          x3[l] = product0 & 0xFFFFFFFFu;
        }
      }
      const std::size_t n = std::min(kChunk, lane_count_ - base);
      for (std::size_t l = 0; l < n; ++l) {
        const std::uint64_t even = x0[l] | (x1[l] << 32);
        const std::uint64_t odd = x2[l] | (x3[l] << 32);
        low[base + l] = static_cast<double>(even >> 11) * 0x1.0p-53;
        spare[base + l] = static_cast<double>(odd >> 11) * 0x1.0p-53;
      }
    }
  }
#endif
  buffered_first_ = first_block;
}

}  // namespace fairchain
