// Text-escaping helpers shared by every tabular/streaming output surface
// (support/table.cpp's CSV mirror, the sim campaign sinks, the verify
// verdict sinks).  One implementation so the formats cannot drift.

#ifndef FAIRCHAIN_SUPPORT_ESCAPE_HPP_
#define FAIRCHAIN_SUPPORT_ESCAPE_HPP_

#include <string>

namespace fairchain {

/// RFC 4180 CSV field escaping: returns the field unchanged when it is
/// already safe, otherwise wraps it in double quotes with embedded quotes
/// doubled.  Safe fields (no comma, quote, CR, LF) stay byte-identical, so
/// existing output is unchanged.
std::string EscapeCsvField(const std::string& field);

/// JSON string-body escaping: quotes, backslashes, and control characters
/// (as \uXXXX).  The caller supplies the surrounding quotes.
std::string EscapeJsonString(const std::string& text);

}  // namespace fairchain

#endif  // FAIRCHAIN_SUPPORT_ESCAPE_HPP_
