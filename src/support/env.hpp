// Environment-variable helpers used by the experiment harness.
//
// The benchmark binaries mirror the paper's replication counts by default
// (e.g. 10,000 Monte Carlo repetitions).  On small machines these can be
// scaled down without recompiling:
//
//   FAIRCHAIN_REPS=500  ./build/bench/fig2_lambda_evolution
//   FAIRCHAIN_FAST=1    ./build/bench/table1_multiminer   (CI-sized run)
//   FAIRCHAIN_THREADS=8 ...                               (worker threads)

#ifndef FAIRCHAIN_SUPPORT_ENV_HPP_
#define FAIRCHAIN_SUPPORT_ENV_HPP_

#include <cstdint>
#include <optional>
#include <string>

namespace fairchain {

/// Reads an environment variable; returns std::nullopt when unset or empty.
std::optional<std::string> GetEnv(const std::string& name);

/// Reads an integer-valued environment variable.  Returns `fallback` when the
/// variable is unset or does not parse as a non-negative integer.
std::uint64_t GetEnvU64(const std::string& name, std::uint64_t fallback);

/// Reads a floating-point environment variable with a fallback.
double GetEnvDouble(const std::string& name, double fallback);

/// True when FAIRCHAIN_FAST is set to a non-zero value.  Benchmarks use this
/// to select a CI-sized configuration (fewer repetitions, shorter horizons).
bool FastModeEnabled();

/// Repetition count for Monte Carlo experiments: FAIRCHAIN_REPS when set,
/// otherwise `fast_fallback` under FAIRCHAIN_FAST=1, otherwise `fallback`.
std::uint64_t EnvReps(std::uint64_t fallback, std::uint64_t fast_fallback);

/// Worker-thread count: FAIRCHAIN_THREADS when set, else hardware concurrency.
unsigned EnvThreads();

}  // namespace fairchain

#endif  // FAIRCHAIN_SUPPORT_ENV_HPP_
