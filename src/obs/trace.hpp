// Span tracing: bounded, allocation-free recording of timed scopes,
// process-tree aware.
//
// The recording discipline mirrors the execution core's constraints:
//   * DISABLED (the default) costs one relaxed atomic load and a branch
//     per Span — nothing else happens, no clock read, no store.  The
//     hotpath_bench instrumented family holds this to <2% ns/step.
//   * ENABLED, a Span reads the steady clock twice and pushes one fixed
//     SpanRecord into its thread's preallocated ring buffer.  The ring is
//     allocated on the thread's FIRST span (never in steady state) and
//     bounded (kRingCapacity); when full, new spans are dropped and
//     counted — tracing can never grow memory without bound or stall a
//     worker.
//   * Span names must be string literals (or otherwise outlive the
//     collector): records store the pointer, not a copy.  The pinned name
//     taxonomy lives in docs/OBSERVABILITY.md.
//
// Process sharding: a forked shard worker calls OnShardWorkerStart() to
// discard the buffers it inherited from the parent's snapshot, records
// spans locally, and periodically drains them with DrainSerializedSpans()
// into a length-prefixed pipe message (core/shard_executor.hpp, span
// message).  The parent ImportShardSpans()s each payload, tagging the
// records with the worker's shard index, so one exported trace shows the
// whole process tree with per-shard tracks.  Steady-clock timestamps are
// directly comparable across fork: parent and children share the clock
// and the trace epoch captured at SetTraceEnabled(true).

#ifndef FAIRCHAIN_OBS_TRACE_HPP_
#define FAIRCHAIN_OBS_TRACE_HPP_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fairchain::obs {

namespace internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// Turns span recording on or off process-wide.  Enabling (re)captures the
/// trace epoch: subsequent span timestamps are nanoseconds since that
/// moment.  Forked children inherit the flag and the epoch.
void SetTraceEnabled(bool enabled);

/// The single check every Span constructor performs.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Nanoseconds since the trace epoch (steady clock).
std::uint64_t TraceNowNanos();

/// One recorded scope.  `name` points at a string literal; `track` is -1
/// for spans recorded in this process and the shard index for spans
/// imported from a forked worker.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t arg = 0;      ///< small numeric payload (cell/chunk index)
  std::uint32_t thread = 0;   ///< sequential id of the recording thread
};

/// A span imported from a shard worker: same shape, but the name crossed a
/// process boundary so the collector owns a copy.
struct ImportedSpan {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t arg = 0;
  std::uint32_t thread = 0;
  unsigned shard = 0;
};

/// RAII timed scope.  When tracing is disabled construction is a load and
/// a branch; nothing is recorded.
class Span {
 public:
  explicit Span(const char* name, std::uint64_t arg = 0) {
    if (TraceEnabled()) {
      name_ = name;
      arg_ = arg;
      start_ns_ = TraceNowNanos();
    }
  }
  ~Span() {
    if (name_ != nullptr) Commit();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void Commit() noexcept;  // out of line: ring push

  const char* name_ = nullptr;
  std::uint64_t arg_ = 0;
  std::uint64_t start_ns_ = 0;
};

/// Owns every thread's span ring plus the spans imported from shard
/// workers.  Buffers live until Clear(), surviving their threads, so a
/// campaign's spans can be exported after the pool is joined.
class TraceCollector {
 public:
  /// Ring capacity per thread, in spans.  At chunk/cell granularity a
  /// campaign records a few spans per chunk, so 64k spans per thread
  /// absorbs ~10k-cell campaigns before dropping (drops are counted).
  static constexpr std::size_t kRingCapacity = 65536;

  static TraceCollector& Global();

  /// All spans recorded in this process, in ring order per thread.
  std::vector<SpanRecord> LocalSpans() const;

  /// All spans imported from shard workers.
  std::vector<ImportedSpan> ShardSpans() const;

  /// Spans dropped because a ring was full (local) — the exporter reports
  /// this so a truncated trace is never mistaken for a complete one.
  std::uint64_t DroppedSpans() const;

  /// Discards every recorded and imported span and resets drop counts.
  /// Rings stay allocated for their threads.
  void Clear();

  /// Serializes and removes every span currently in this process's rings
  /// (the shard worker's flush).  Returns an empty string when there is
  /// nothing to flush.  Wire format is an implementation detail shared
  /// with ImportShardSpans; it never leaves the process tree.
  std::string DrainSerializedSpans();

  /// Parses a DrainSerializedSpans payload received from shard worker
  /// `shard` and appends the spans.  Returns false (importing nothing) on
  /// a malformed payload — the shard executor treats that as a framing
  /// error.  Thread-safe: called from concurrent per-shard reader threads.
  bool ImportShardSpans(unsigned shard, const std::string& payload);

  /// Called at the top of a forked shard worker: drops the span state
  /// inherited from the parent's snapshot so the worker streams only its
  /// own spans.
  void OnShardWorkerStart();

  /// One thread's bounded span storage (definition in trace.cpp; public
  /// only so the ring-recycling lease in the implementation can name it).
  struct ThreadRing;

 private:
  friend class Span;

  TraceCollector() = default;
  ThreadRing& RingForThisThread();

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadRing>> rings_;
  std::vector<ImportedSpan> imported_;
  std::uint32_t next_thread_id_ = 0;
};

}  // namespace fairchain::obs

#endif  // FAIRCHAIN_OBS_TRACE_HPP_
