// Live campaign progress on stderr: a single line, rewritten in place,
// showing cells done/total, replication throughput, and an ETA.
//
//   [campaign] cells 42/128 (32.8%) | 1.24e+05 reps/s | ETA 00:01:43
//
// The reporter is a pure READER of the metrics registry — it samples the
// campaign.* counters from a background thread on a throttled interval
// (default 200 ms) and never touches the hot path.  It refuses to run
// when stderr is not a TTY (piped logs should not fill with carriage
// returns) unless explicitly forced, and it erases its line before the
// destructor returns so subsequent output starts on a clean row.

#ifndef FAIRCHAIN_OBS_PROGRESS_HPP_
#define FAIRCHAIN_OBS_PROGRESS_HPP_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace fairchain::obs {

/// Returns true when stderr is an interactive terminal.
bool StderrIsTty();

/// Formats a remaining-time estimate in seconds as "MM:SS" (under an
/// hour) or "H:MM:SS".  Total width is bounded for the progress line:
///   * seconds round to the NEAREST second and the carry propagates, so
///     59.7 renders "01:00", never "00:60";
///   * estimates of 100 hours or more — including +inf, and any value a
///     cast to integer could not represent — saturate to "99:59:59+";
///   * NaN and negative inputs render the unknown marker "--:--".
std::string FormatEta(double seconds);

/// Remaining-seconds estimate from a work ledger: `done` of `total` units
/// finished after `elapsed_seconds`.  Pure (testable without a thread):
///   * done >= total (and total > 0) -> 0.0, the run is finished;
///   * elapsed <= 0, done <= 0, or total <= 0 -> NaN (no rate yet;
///     FormatEta renders it as the unknown marker);
///   * otherwise elapsed * (total - done) / done — the constant-rate
///     extrapolation.
/// The campaign reporter feeds MODELED-COST units (campaign.cost_done_ns
/// over cost_total_ns) rather than replication counts, so a campaign
/// whose cheap cells finish first does not show a collapsing ETA that
/// explodes when the expensive tail starts.
double EstimateEtaSeconds(double elapsed_seconds, double done, double total);

/// Background progress line for a campaign run.  Construct before the run
/// with the known totals; destroy (or Stop()) after.  Inert unless
/// `enabled` and stderr is a TTY (or `force_tty` for tests).
class ProgressReporter {
 public:
  struct Options {
    bool enabled = false;
    bool force_tty = false;  ///< bypass the isatty gate (tests)
    std::uint64_t total_cells = 0;
    std::uint64_t total_replications = 0;
    std::chrono::milliseconds interval{200};
  };

  explicit ProgressReporter(const Options& options);
  ~ProgressReporter();
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Joins the sampler thread and erases the progress line.  Idempotent;
  /// the destructor calls it.
  void Stop();

  /// True when the reporter actually started its sampler thread.
  bool active() const { return active_; }

 private:
  void Loop();
  void Render();

  Options options_;
  bool active_ = false;
  // Cost-counter baselines snapshotted at construction: the registry's
  // counters are cumulative across a process's runs, and the ETA must
  // weight only THIS run's modeled work.
  std::uint64_t cost_total_base_ = 0;
  std::uint64_t cost_done_base_ = 0;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
  std::thread thread_;
  std::chrono::steady_clock::time_point start_time_;
  bool line_dirty_ = false;  ///< a progress line is currently displayed
};

}  // namespace fairchain::obs

#endif  // FAIRCHAIN_OBS_PROGRESS_HPP_
