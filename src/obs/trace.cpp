#include "obs/trace.hpp"

#include <chrono>
#include <cstring>

namespace fairchain::obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

std::atomic<std::uint64_t> g_trace_epoch_ns{0};

std::uint64_t SteadyNowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Wire helpers for the shard span payload (host byte order — the payload
// never leaves the process tree, exactly like the chunk protocol).
void PutU64(std::string& out, std::uint64_t value) {
  char bytes[sizeof(value)];
  std::memcpy(bytes, &value, sizeof(value));
  out.append(bytes, sizeof(bytes));
}

void PutU32(std::string& out, std::uint32_t value) {
  char bytes[sizeof(value)];
  std::memcpy(bytes, &value, sizeof(value));
  out.append(bytes, sizeof(bytes));
}

bool GetU64(const std::string& bytes, std::size_t& offset,
            std::uint64_t* value) {
  if (bytes.size() - offset < sizeof(*value)) return false;
  std::memcpy(value, bytes.data() + offset, sizeof(*value));
  offset += sizeof(*value);
  return true;
}

bool GetU32(const std::string& bytes, std::size_t& offset,
            std::uint32_t* value) {
  if (bytes.size() - offset < sizeof(*value)) return false;
  std::memcpy(value, bytes.data() + offset, sizeof(*value));
  offset += sizeof(*value);
  return true;
}

constexpr std::uint32_t kMaxSpanNameLength = 256;

}  // namespace

void SetTraceEnabled(bool enabled) {
  if (enabled) {
    g_trace_epoch_ns.store(SteadyNowNanos(), std::memory_order_relaxed);
  }
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t TraceNowNanos() {
  const std::uint64_t now = SteadyNowNanos();
  const std::uint64_t epoch =
      g_trace_epoch_ns.load(std::memory_order_relaxed);
  return now >= epoch ? now - epoch : 0;
}

// One thread's bounded span storage.  Single-writer (the owning thread);
// `size` is the publication point for post-join readers.  Rings are
// recycled through a free list when their thread exits — a reused ring
// keeps its id and its recorded spans, and simply continues appending, so
// pool-per-campaign execution does not grow a new 2.5 MB ring per worker
// per run.
struct TraceCollector::ThreadRing {
  explicit ThreadRing(std::uint32_t thread_id) : id(thread_id) {
    records.resize(kRingCapacity);
  }
  std::uint32_t id = 0;
  std::vector<SpanRecord> records;
  std::atomic<std::size_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
};

namespace {

// Thread-exit hook: returns the ring to the collector's free list.
struct RingLease {
  TraceCollector::ThreadRing* ring = nullptr;
  std::vector<TraceCollector::ThreadRing*>* free_list = nullptr;
  std::mutex* mutex = nullptr;
  ~RingLease() {
    if (ring != nullptr && free_list != nullptr) {
      std::lock_guard<std::mutex> lock(*mutex);
      free_list->push_back(ring);
    }
  }
};

}  // namespace

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();  // never dtor'd
  return *collector;
}

namespace {
// The free list lives beside the collector (not inside the header type)
// so ThreadRing can stay an implementation detail.
std::vector<TraceCollector::ThreadRing*>& FreeRings() {
  static auto* free_rings = new std::vector<TraceCollector::ThreadRing*>();
  return *free_rings;
}
}  // namespace

TraceCollector::ThreadRing& TraceCollector::RingForThisThread() {
  thread_local RingLease lease;
  if (lease.ring == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!FreeRings().empty()) {
      lease.ring = FreeRings().back();
      FreeRings().pop_back();
    } else {
      rings_.push_back(std::make_unique<ThreadRing>(next_thread_id_++));
      lease.ring = rings_.back().get();
    }
    lease.free_list = &FreeRings();
    lease.mutex = &mutex_;
  }
  return *lease.ring;
}

void Span::Commit() noexcept {
  SpanRecord record;
  record.name = name_;
  record.start_ns = start_ns_;
  record.end_ns = TraceNowNanos();
  record.arg = arg_;
  TraceCollector::ThreadRing& ring =
      TraceCollector::Global().RingForThisThread();
  record.thread = ring.id;
  const std::size_t n = ring.size.load(std::memory_order_relaxed);
  if (n >= TraceCollector::kRingCapacity) {
    ring.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring.records[n] = record;
  ring.size.store(n + 1, std::memory_order_release);
}

std::vector<SpanRecord> TraceCollector::LocalSpans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  for (const auto& ring : rings_) {
    const std::size_t n = ring->size.load(std::memory_order_acquire);
    out.insert(out.end(), ring->records.begin(),
               ring->records.begin() + static_cast<std::ptrdiff_t>(n));
  }
  return out;
}

std::vector<ImportedSpan> TraceCollector::ShardSpans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return imported_;
}

std::uint64_t TraceCollector::DroppedSpans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    dropped += ring->dropped.load(std::memory_order_relaxed);
  }
  return dropped;
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Rings are reset, never destroyed: live threads hold leases into them.
  for (const auto& ring : rings_) {
    ring->size.store(0, std::memory_order_relaxed);
    ring->dropped.store(0, std::memory_order_relaxed);
  }
  imported_.clear();
}

std::string TraceCollector::DrainSerializedSpans() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->size.load(std::memory_order_acquire);
  }
  if (total == 0) return {};
  std::string payload;
  PutU64(payload, total);
  for (const auto& ring : rings_) {
    const std::size_t n = ring->size.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const SpanRecord& record = ring->records[i];
      PutU64(payload, record.start_ns);
      PutU64(payload, record.end_ns);
      PutU64(payload, record.arg);
      PutU32(payload, record.thread);
      const std::uint32_t length = static_cast<std::uint32_t>(
          std::min<std::size_t>(std::strlen(record.name),
                                kMaxSpanNameLength));
      PutU32(payload, length);
      payload.append(record.name, length);
    }
    ring->size.store(0, std::memory_order_relaxed);
  }
  return payload;
}

bool TraceCollector::ImportShardSpans(unsigned shard,
                                      const std::string& payload) {
  std::size_t offset = 0;
  std::uint64_t count = 0;
  if (!GetU64(payload, offset, &count)) return false;
  // A span needs at least 28 payload bytes; reject counts the payload
  // cannot possibly hold before reserving anything.
  if (count > payload.size() / 28) return false;
  std::vector<ImportedSpan> spans;
  spans.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    ImportedSpan span;
    std::uint32_t name_length = 0;
    if (!GetU64(payload, offset, &span.start_ns) ||
        !GetU64(payload, offset, &span.end_ns) ||
        !GetU64(payload, offset, &span.arg) ||
        !GetU32(payload, offset, &span.thread) ||
        !GetU32(payload, offset, &name_length) ||
        name_length > kMaxSpanNameLength ||
        payload.size() - offset < name_length) {
      return false;
    }
    span.name.assign(payload, offset, name_length);
    offset += name_length;
    span.shard = shard;
    spans.push_back(std::move(span));
  }
  if (offset != payload.size()) return false;  // trailing garbage
  std::lock_guard<std::mutex> lock(mutex_);
  imported_.insert(imported_.end(),
                   std::make_move_iterator(spans.begin()),
                   std::make_move_iterator(spans.end()));
  return true;
}

void TraceCollector::OnShardWorkerStart() {
  // The fork snapshotted the parent's rings and imported spans; the
  // worker must stream only what IT records, so both are discarded.
  Clear();
}

}  // namespace fairchain::obs
