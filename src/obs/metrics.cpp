#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace fairchain::obs {

namespace {

// Bucket index of a nanosecond sample: floor(log2(ns)), 0 for 0/1 ns.
std::size_t BucketIndex(std::uint64_t nanoseconds) {
  if (nanoseconds < 2) return 0;
  return static_cast<std::size_t>(std::bit_width(nanoseconds) - 1);
}

}  // namespace

void LatencyHistogram::Record(std::uint64_t nanoseconds) {
  buckets_[BucketIndex(nanoseconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(nanoseconds, std::memory_order_relaxed);
}

void LatencyHistogram::Record(std::uint64_t nanoseconds,
                              std::uint64_t occurrences) {
  buckets_[BucketIndex(nanoseconds)].fetch_add(occurrences,
                                               std::memory_order_relaxed);
  count_.fetch_add(occurrences, std::memory_order_relaxed);
  total_ns_.fetch_add(nanoseconds * occurrences, std::memory_order_relaxed);
}

double LatencyHistogram::QuantileNanos(double q) const {
  const std::array<std::uint64_t, kBuckets> counts = BucketCounts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (1-based, ceil — the classic nearest-rank
  // definition, so p100 is the last sample's bucket).  Clamped into
  // [1, total]: at totals near 2^53 the double rounding in q * total + 0.5
  // can land PAST total, which used to walk off the end of the bucket scan
  // and report 0.0 — far below the populated bucket's lower edge.
  const std::uint64_t rank = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5), 1,
      total);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (seen + counts[b] >= rank) {
      // Linear interpolation inside [2^b, 2^(b+1)): the rank's position
      // within the bucket picks the point.  The result is clamped to the
      // bucket's half-open range — a quantile estimate must never leave
      // the bucket that holds its sample, whatever rounding does.
      const double low = b == 0 ? 0.0 : static_cast<double>(1ULL << b);
      const double width = b == 0 ? 2.0 : low;  // bucket 0 spans [0, 2)
      const double within = (static_cast<double>(rank - seen) - 0.5) /
                            static_cast<double>(counts[b]);
      const double value = low + width * std::clamp(within, 0.0, 1.0);
      return std::min(std::max(value, low),
                      std::nextafter(low + width, low));
    }
    seen += counts[b];
  }
  return 0.0;  // unreachable: rank <= total guarantees the scan lands
}

std::array<std::uint64_t, LatencyHistogram::kBuckets>
LatencyHistogram::BucketCounts() const {
  std::array<std::uint64_t, kBuckets> out{};
  for (std::size_t b = 0; b < kBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

void LatencyHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dtor'd
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto found = counters_.find(name);
  if (found == counters_.end()) {
    found = counters_
                .emplace(std::string(name), std::make_unique<Counter>())
                .first;
  }
  return *found->second;
}

LatencyHistogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto found = histograms_.find(name);
  if (found == histograms_.end()) {
    found = histograms_
                .emplace(std::string(name),
                         std::make_unique<LatencyHistogram>())
                .first;
  }
  return *found->second;
}

std::vector<CounterSnapshot> MetricsRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterSnapshot> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, counter->Value()});
  }
  return out;
}

std::vector<HistogramSnapshot> MetricsRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snapshot;
    snapshot.name = name;
    snapshot.count = histogram->Count();
    snapshot.total_ns = histogram->TotalNanos();
    snapshot.p50_ns = histogram->QuantileNanos(0.50);
    snapshot.p95_ns = histogram->QuantileNanos(0.95);
    snapshot.p99_ns = histogram->QuantileNanos(0.99);
    snapshot.buckets = histogram->BucketCounts();
    out.push_back(std::move(snapshot));
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace fairchain::obs
