// Exporters for the observability layer: Chrome/Perfetto trace-event
// JSON, a machine-readable metrics snapshot (JSONL), and the end-of-run
// human summary table.
//
// Output contracts (pinned by tests/obs/export_test.cpp and validated in
// CI by tools/check_trace.py):
//   * WriteChromeTrace emits one JSON object {"traceEvents": [...]} in
//     the trace-event format both chrome://tracing and ui.perfetto.dev
//     load.  Spans become complete ("ph":"X") events with microsecond
//     ts/dur; every process in the tree gets a process_name metadata
//     event — "fairchain" for the parent, "shard <s>" for each forked
//     worker — so shard spans land on their own named tracks.
//   * WriteMetricsJsonl emits one JSON object per line:
//     {"type":"counter","name":...,"value":...} and
//     {"type":"histogram","name":...,"count":...,"total_ns":...,
//      "p50_ns":...,"p95_ns":...,"p99_ns":...}.  Schema is append-only.

#ifndef FAIRCHAIN_OBS_EXPORT_HPP_
#define FAIRCHAIN_OBS_EXPORT_HPP_

#include <ostream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/table.hpp"

namespace fairchain::obs {

/// Writes everything the collector holds (local + imported shard spans)
/// as trace-event JSON.  When spans were dropped (full rings), a
/// "trace.dropped_spans" instant event records the count so a truncated
/// trace is self-describing.
void WriteChromeTrace(std::ostream& out,
                      const TraceCollector& collector = TraceCollector::Global());

/// Writes every registered metric as one JSON object per line, in name
/// order (deterministic).
void WriteMetricsJsonl(std::ostream& out,
                       const MetricsRegistry& registry = MetricsRegistry::Global());

/// The human end-of-run view: one row per counter (name, value) and one
/// per histogram (name, count, mean/p50/p95/p99 in ms).  Caller Emit()s
/// or Print()s it.
Table MetricsSummaryTable(const MetricsRegistry& registry = MetricsRegistry::Global());

}  // namespace fairchain::obs

#endif  // FAIRCHAIN_OBS_EXPORT_HPP_
