#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <set>

#include "support/escape.hpp"

namespace fairchain::obs {

namespace {

// Microseconds with sub-bucket precision: trace-event ts/dur are doubles
// in µs; three decimals keeps full nanosecond resolution.
std::string Micros(std::uint64_t nanoseconds) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64 ".%03u",
                nanoseconds / 1000,
                static_cast<unsigned>(nanoseconds % 1000));
  return buffer;
}

void WriteCompleteEvent(std::ostream& out, bool& first,
                        const std::string& name, std::uint64_t start_ns,
                        std::uint64_t end_ns, std::uint64_t arg,
                        unsigned pid, std::uint32_t tid) {
  if (!first) out << ",\n";
  first = false;
  const std::uint64_t duration = end_ns >= start_ns ? end_ns - start_ns : 0;
  out << "{\"name\":\"" << EscapeJsonString(name) << "\",\"ph\":\"X\""
      << ",\"ts\":" << Micros(start_ns) << ",\"dur\":" << Micros(duration)
      << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"args\":{\"v\":"
      << arg << "}}";
}

void WriteProcessName(std::ostream& out, bool& first, unsigned pid,
                      const std::string& name) {
  if (!first) out << ",\n";
  first = false;
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"name\":\"" << EscapeJsonString(name)
      << "\"}}";
}

}  // namespace

void WriteChromeTrace(std::ostream& out, const TraceCollector& collector) {
  std::vector<SpanRecord> local = collector.LocalSpans();
  std::vector<ImportedSpan> shard = collector.ShardSpans();
  // Deterministic event order: by start time, then end, then name — the
  // rings return per-thread batches whose interleaving is timing-defined,
  // and a stable file order makes traces diffable.
  std::sort(local.begin(), local.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.end_ns != b.end_ns) return a.end_ns < b.end_ns;
              return std::strcmp(a.name, b.name) < 0;
            });
  std::sort(shard.begin(), shard.end(),
            [](const ImportedSpan& a, const ImportedSpan& b) {
              if (a.shard != b.shard) return a.shard < b.shard;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.end_ns != b.end_ns) return a.end_ns < b.end_ns;
              return a.name < b.name;
            });

  out << "{\"traceEvents\":[\n";
  bool first = true;
  // The parent is pid 0; shard worker s is pid s + 1 (its own named
  // track in the viewer).
  WriteProcessName(out, first, 0, "fairchain");
  std::set<unsigned> shards;
  for (const ImportedSpan& span : shard) shards.insert(span.shard);
  for (const unsigned s : shards) {
    WriteProcessName(out, first, s + 1, "shard " + std::to_string(s));
  }
  for (const SpanRecord& span : local) {
    WriteCompleteEvent(out, first, span.name, span.start_ns, span.end_ns,
                       span.arg, 0, span.thread);
  }
  for (const ImportedSpan& span : shard) {
    WriteCompleteEvent(out, first, span.name, span.start_ns, span.end_ns,
                       span.arg, span.shard + 1, span.thread);
  }
  const std::uint64_t dropped = collector.DroppedSpans();
  if (dropped != 0) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"trace.dropped_spans\",\"ph\":\"i\",\"s\":\"g\""
        << ",\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{\"count\":" << dropped
        << "}}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void WriteMetricsJsonl(std::ostream& out, const MetricsRegistry& registry) {
  for (const CounterSnapshot& counter : registry.Counters()) {
    out << "{\"type\":\"counter\",\"name\":\""
        << EscapeJsonString(counter.name) << "\",\"value\":" << counter.value
        << "}\n";
  }
  for (const HistogramSnapshot& histogram : registry.Histograms()) {
    char quantiles[160];
    std::snprintf(quantiles, sizeof(quantiles),
                  "\"p50_ns\":%.1f,\"p95_ns\":%.1f,\"p99_ns\":%.1f",
                  histogram.p50_ns, histogram.p95_ns, histogram.p99_ns);
    out << "{\"type\":\"histogram\",\"name\":\""
        << EscapeJsonString(histogram.name)
        << "\",\"count\":" << histogram.count
        << ",\"total_ns\":" << histogram.total_ns << "," << quantiles
        << "}\n";
  }
}

Table MetricsSummaryTable(const MetricsRegistry& registry) {
  Table table({"metric", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms"});
  table.SetTitle("Observability summary (counters, then latency histograms)");
  for (const CounterSnapshot& counter : registry.Counters()) {
    table.AddRow();
    table.Cell(counter.name);
    table.Cell(counter.value);
    table.Cell(std::string("-"));
    table.Cell(std::string("-"));
    table.Cell(std::string("-"));
    table.Cell(std::string("-"));
  }
  constexpr double kMs = 1.0e6;
  for (const HistogramSnapshot& histogram : registry.Histograms()) {
    table.AddRow();
    table.Cell(histogram.name);
    table.Cell(histogram.count);
    const double mean =
        histogram.count == 0
            ? 0.0
            : static_cast<double>(histogram.total_ns) /
                  static_cast<double>(histogram.count);
    table.Cell(mean / kMs, 3);
    table.Cell(histogram.p50_ns / kMs, 3);
    table.Cell(histogram.p95_ns / kMs, 3);
    table.Cell(histogram.p99_ns / kMs, 3);
  }
  return table;
}

}  // namespace fairchain::obs
