#include "obs/progress.hpp"

#include <unistd.h>

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/metrics.hpp"

namespace fairchain::obs {

bool StderrIsTty() { return ::isatty(STDERR_FILENO) == 1; }

std::string FormatEta(double seconds) {
  // NaN fails every comparison; negative estimates mean the rate sample
  // is nonsense.  Both render as unknown rather than feeding snprintf.
  if (!(seconds >= 0.0)) return "--:--";
  // Saturate BEFORE the integer cast: casting a double at or above 2^64
  // (a near-zero reps/s estimate early in a run) is undefined behaviour,
  // and a raw %PRIu64 hour field would blow out the single-line display.
  if (seconds >= 359999.5) return "99:59:59+";  // rounds to >= 100 h
  // Round to the nearest second FIRST, then split: the carry propagates
  // through the fields, so 59.7 s is 60 s -> "01:00" (never "00:60") and
  // 3599.6 s -> "1:00:00".
  const auto total = static_cast<std::uint64_t>(seconds + 0.5);
  // Sized for the full %PRIu64 range so -Wformat-truncation can prove the
  // worst case fits; the saturation above keeps the real output <= 9 chars.
  char eta[32];
  if (total >= 3600) {
    std::snprintf(eta, sizeof(eta), "%" PRIu64 ":%02" PRIu64 ":%02" PRIu64,
                  total / 3600, (total / 60) % 60, total % 60);
  } else {
    std::snprintf(eta, sizeof(eta), "%02" PRIu64 ":%02" PRIu64, total / 60,
                  total % 60);
  }
  return eta;
}

double EstimateEtaSeconds(double elapsed_seconds, double done,
                          double total) {
  if (total > 0.0 && done >= total) return 0.0;
  if (!(elapsed_seconds > 0.0) || !(done > 0.0) || !(total > 0.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return elapsed_seconds * (total - done) / done;
}

ProgressReporter::ProgressReporter(const Options& options)
    : options_(options) {
  if (!options_.enabled) return;
  if (!options_.force_tty && !StderrIsTty()) return;
  active_ = true;
  start_time_ = std::chrono::steady_clock::now();
  auto& registry = MetricsRegistry::Global();
  cost_total_base_ =
      registry.GetCounter("campaign.cost_total_ns").Value();
  cost_done_base_ = registry.GetCounter("campaign.cost_done_ns").Value();
  thread_ = std::thread([this] { Loop(); });
}

ProgressReporter::~ProgressReporter() { Stop(); }

void ProgressReporter::Stop() {
  if (!active_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (line_dirty_) {
    // Erase the line so the final summary starts on a clean row.
    std::fputs("\r\033[2K", stderr);
    std::fflush(stderr);
    line_dirty_ = false;
  }
  active_ = false;
}

void ProgressReporter::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    wake_.wait_for(lock, options_.interval);
    if (stopping_) break;
    lock.unlock();
    Render();
    lock.lock();
  }
}

void ProgressReporter::Render() {
  // Pure registry reads: the counters are maintained by the campaign
  // runner regardless of whether anyone is watching.
  static auto& cells_done =
      MetricsRegistry::Global().GetCounter("campaign.cells_done");
  static auto& replications_done =
      MetricsRegistry::Global().GetCounter("campaign.replications_done");
  const std::uint64_t cells = cells_done.Value();
  const std::uint64_t replications = replications_done.Value();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  const double reps_per_sec =
      elapsed > 0.0 ? static_cast<double>(replications) / elapsed : 0.0;
  const double percent =
      options_.total_cells == 0
          ? 0.0
          : 100.0 * static_cast<double>(cells) /
                static_cast<double>(options_.total_cells);

  // ETA weights remaining work by MODELED COST when the runner published
  // cost counters this run (campaign.cost_total_ns / cost_done_ns deltas
  // against the construction-time baselines); replication counts are the
  // fallback so the line still works for callers that never planned.
  static auto& cost_total_counter =
      MetricsRegistry::Global().GetCounter("campaign.cost_total_ns");
  static auto& cost_done_counter =
      MetricsRegistry::Global().GetCounter("campaign.cost_done_ns");
  const std::uint64_t cost_total =
      cost_total_counter.Value() - cost_total_base_;
  const std::uint64_t cost_done =
      cost_done_counter.Value() - cost_done_base_;

  std::string eta = "--:--";
  if (cost_total > 0) {
    eta = FormatEta(EstimateEtaSeconds(elapsed,
                                       static_cast<double>(cost_done),
                                       static_cast<double>(cost_total)));
  } else if (reps_per_sec > 0.0 &&
             options_.total_replications > replications) {
    eta = FormatEta(
        static_cast<double>(options_.total_replications - replications) /
        reps_per_sec);
  } else if (options_.total_replications != 0 &&
             replications >= options_.total_replications) {
    eta = "00:00";
  }

  std::fprintf(stderr,
               "\r\033[2K[campaign] cells %" PRIu64 "/%" PRIu64
               " (%.1f%%) | %.3g reps/s | ETA %s",
               cells, options_.total_cells, percent, reps_per_sec,
               eta.c_str());
  std::fflush(stderr);
  line_dirty_ = true;
}

}  // namespace fairchain::obs
