// Process-wide metrics: named counters and log-bucketed latency
// histograms.
//
// Design constraints (this layer sits under every hot path):
//   * Recording is lock-free and allocation-free: a Counter is one relaxed
//     atomic add, a LatencyHistogram::Record is two relaxed atomic adds
//     into a fixed array of power-of-two buckets.  Only REGISTRATION (the
//     first GetCounter/GetHistogram for a name) takes the registry mutex
//     and allocates; call sites cache the returned reference, typically in
//     a function-local static, so steady-state recording never touches the
//     registry again — preserving the zero-steady-state-allocation
//     guarantee hotpath_bench enforces.
//   * Metric objects are never destroyed or moved once registered; the
//     references GetCounter/GetHistogram hand out stay valid for the
//     process lifetime.  Reset() zeroes values but keeps registrations.
//   * Names are a flat dotted namespace ("store.hits", "campaign.chunk_ns")
//     — the full registry of pinned names lives in docs/OBSERVABILITY.md;
//     tests pin the ones the exporters and the CLI depend on.
//
// Instrumentation at chunk / store-entry / cell granularity is always on:
// two clock reads per multi-millisecond chunk are unmeasurable, and it is
// what lets `--metrics` and `--progress` report on a run that never asked
// for tracing.  Span recording (trace.hpp) is the part behind an enable
// flag.

#ifndef FAIRCHAIN_OBS_METRICS_HPP_
#define FAIRCHAIN_OBS_METRICS_HPP_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fairchain::obs {

/// A monotonically increasing event count.  Relaxed atomics: totals are
/// exact once the producing threads are joined, which is when snapshots
/// are taken; mid-run readers (--progress) tolerate slightly stale values.
class Counter {
 public:
  void Add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Latency histogram over log2 buckets of nanoseconds: bucket b counts
/// samples in [2^b, 2^(b+1)) ns (bucket 0 also absorbs 0 ns).  64 buckets
/// cover every representable duration; relative quantile error is bounded
/// by the 2x bucket width, which is ample for the p50/p95/p99 latency
/// shapes this repo tracks (is the p99 microseconds or milliseconds?).
/// Fixed size, no allocation ever.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void Record(std::uint64_t nanoseconds);

  /// Records `occurrences` samples of the same duration in O(1) — for
  /// callers that aggregate before recording (and for tests that need
  /// populations far beyond what a loop of single Records could build).
  void Record(std::uint64_t nanoseconds, std::uint64_t occurrences);

  std::uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t TotalNanos() const {
    return total_ns_.load(std::memory_order_relaxed);
  }

  /// Quantile estimate in nanoseconds (q in [0, 1]): finds the bucket
  /// holding the q-th sample and interpolates linearly within it.  The
  /// estimate is guaranteed to lie inside that bucket's [2^b, 2^(b+1))
  /// range for every q and every population.  0 when empty.
  double QuantileNanos(double q) const;

  /// Raw bucket counts, for exporters.
  std::array<std::uint64_t, kBuckets> BucketCounts() const;

  void Reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
};

/// RAII latency sample: records the enclosing scope's wall time into a
/// histogram on destruction.
class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyHistogram& histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatency() {
    histogram_.Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  LatencyHistogram& histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Point-in-time value of one counter.
struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

/// Point-in-time reduction of one histogram.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  std::array<std::uint64_t, LatencyHistogram::kBuckets> buckets{};
};

/// The process-wide named-metric table.  Registration is idempotent: the
/// same name always returns the same object, so independent call sites
/// (the store layer, the campaign runner, the CLI reader) share one truth.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the counter registered under `name`, creating it on first
  /// use.  The reference is valid for the process lifetime.
  Counter& GetCounter(std::string_view name);

  /// Histogram analogue of GetCounter.
  LatencyHistogram& GetHistogram(std::string_view name);

  /// Snapshots in name order (deterministic export order).
  std::vector<CounterSnapshot> Counters() const;
  std::vector<HistogramSnapshot> Histograms() const;

  /// Zeroes every value; registrations (and handed-out references) stay
  /// valid.  For tests and for per-run baselines in long-lived processes.
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  // Node-based maps: values never move, so references survive rehash-free.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
};

}  // namespace fairchain::obs

#endif  // FAIRCHAIN_OBS_METRICS_HPP_
