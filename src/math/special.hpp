// Special functions implemented from scratch.
//
// The paper's analytical results need three non-elementary functions:
//
//  * the regularized incomplete beta function I_x(a, b) — the CDF of the
//    Beta(a/w, b/w) limit of the ML-PoS Pólya urn (Section 4.3);
//  * binomial tail probabilities — the exact Δ(ε; n, a) robust-fairness
//    probability for PoW (Section 4.2);
//  * the normal CDF — used for asymptotic cross-checks in tests.
//
// LogGamma uses the Lanczos approximation (g = 7, n = 9 coefficients,
// |relative error| < 1e-13 over the positive reals); the incomplete beta
// uses the Lentz continued-fraction evaluation.

#ifndef FAIRCHAIN_MATH_SPECIAL_HPP_
#define FAIRCHAIN_MATH_SPECIAL_HPP_

#include <cstdint>

namespace fairchain::math {

/// Natural log of the Gamma function for x > 0 (Lanczos approximation).
/// Throws std::invalid_argument for x <= 0.
double LogGamma(double x);

/// log B(a, b) = lgamma(a) + lgamma(b) - lgamma(a + b); a, b > 0.
double LogBeta(double a, double b);

/// Regularized incomplete beta function I_x(a, b) for x in [0, 1], a, b > 0.
///
/// I_x(a, b) = B(x; a, b) / B(a, b) is the CDF at x of a Beta(a, b) random
/// variable.  Evaluated by the Lentz algorithm on the standard continued
/// fraction, using the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) for convergence.
double RegularizedIncompleteBeta(double a, double b, double x);

/// CDF of Beta(a, b) at x (clamps x to [0, 1]).
double BetaCdf(double a, double b, double x);

/// Quantile (inverse CDF) of Beta(a, b) at probability p, by bisection.
double BetaQuantile(double a, double b, double p);

/// Mean of Beta(a, b).
double BetaMean(double a, double b);

/// Variance of Beta(a, b).
double BetaVariance(double a, double b);

/// log of the binomial probability mass  C(n, k) p^k (1-p)^(n-k).
/// Requires 0 <= k <= n and p in [0, 1]; degenerate p handled exactly.
double BinomialLogPmf(std::uint64_t n, std::uint64_t k, double p);

/// Binomial pmf (exponentiated BinomialLogPmf).
double BinomialPmf(std::uint64_t n, std::uint64_t k, double p);

/// P[X <= k] for X ~ Bin(n, p), evaluated through the incomplete beta
/// identity  P[X <= k] = I_{1-p}(n - k, k + 1).
double BinomialCdf(std::uint64_t n, std::uint64_t k, double p);

/// The paper's Δ(ε; n, a) for PoW (Section 4.2):
///   Pr[(1-ε)a <= λ_A <= (1+ε)a] with n·λ_A ~ Bin(n, a),
/// computed exactly as F(⌊n(1+ε)a⌋) - F(⌈n(1-ε)a⌉ - 1).
double PowDeltaExact(std::uint64_t n, double a, double epsilon);

/// Standard normal CDF.
double NormalCdf(double z);

/// log(n choose k) via LogGamma.
double LogChoose(std::uint64_t n, std::uint64_t k);

/// Regularized lower incomplete gamma P(a, x) for a > 0, x >= 0
/// (series for x < a + 1, continued fraction otherwise).
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Chi-square CDF with k > 0 degrees of freedom: P(k/2, x/2).
double ChiSquareCdf(double k, double x);

/// log pmf of the Beta-Binomial(n, alpha, beta) distribution — the EXACT
/// finite-n law of the number of blocks miner A wins in an ML-PoS /
/// Pólya-urn game with initial composition (alpha w, beta w) and
/// reinforcement w (Section 4.3):
///   P[K = k] = C(n, k) B(k + alpha, n - k + beta) / B(alpha, beta).
double BetaBinomialLogPmf(std::uint64_t n, std::uint64_t k, double alpha,
                          double beta);

/// Beta-Binomial pmf (exponentiated log pmf).
double BetaBinomialPmf(std::uint64_t n, std::uint64_t k, double alpha,
                       double beta);

}  // namespace fairchain::math

#endif  // FAIRCHAIN_MATH_SPECIAL_HPP_
