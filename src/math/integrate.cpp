#include "math/integrate.hpp"

#include <cmath>
#include <stdexcept>

namespace fairchain::math {

namespace {

double SimpsonRule(const std::function<double(double)>& f, double a, double fa,
                   double b, double fb, double* fm_out) {
  const double m = 0.5 * (a + b);
  const double fm = f(m);
  *fm_out = fm;
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double AdaptiveSimpsonRecurse(const std::function<double(double)>& f, double a,
                              double fa, double b, double fb, double m,
                              double fm, double whole, double tol, int depth) {
  double flm, frm;
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double left = SimpsonRule(f, a, fa, m, fm, &flm);
  const double right = SimpsonRule(f, m, fm, b, fb, &frm);
  (void)lm;
  (void)rm;
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return AdaptiveSimpsonRecurse(f, a, fa, m, fm, 0.5 * (a + m), flm, left,
                                0.5 * tol, depth - 1) +
         AdaptiveSimpsonRecurse(f, m, fm, b, fb, 0.5 * (m + b), frm, right,
                                0.5 * tol, depth - 1);
}

// Gauss-Legendre nodes/weights on [-1, 1] for orders 8, 16, 32
// (positive half; symmetric).
constexpr double kNodes8[4] = {0.1834346424956498, 0.5255324099163290,
                               0.7966664774136267, 0.9602898564975363};
constexpr double kWeights8[4] = {0.3626837833783620, 0.3137066458778873,
                                 0.2223810344533745, 0.1012285362903763};

constexpr double kNodes16[8] = {
    0.0950125098376374, 0.2816035507792589, 0.4580167776572274,
    0.6178762444026438, 0.7554044083550030, 0.8656312023878318,
    0.9445750230732326, 0.9894009349916499};
constexpr double kWeights16[8] = {
    0.1894506104550685, 0.1826034150449236, 0.1691565193950025,
    0.1495959888165767, 0.1246289712555339, 0.0951585116824928,
    0.0622535239386479, 0.0271524594117541};

constexpr double kNodes32[16] = {
    0.0483076656877383, 0.1444719615827965, 0.2392873622521371,
    0.3318686022821277, 0.4213512761306353, 0.5068999089322294,
    0.5877157572407623, 0.6630442669302152, 0.7321821187402897,
    0.7944837959679424, 0.8493676137325700, 0.8963211557660521,
    0.9349060759377397, 0.9647622555875064, 0.9856115115452684,
    0.9972638618494816};
constexpr double kWeights32[16] = {
    0.0965400885147278, 0.0956387200792749, 0.0938443990808046,
    0.0911738786957639, 0.0876520930044038, 0.0833119242269467,
    0.0781938957870703, 0.0723457941088485, 0.0658222227763618,
    0.0586840934785355, 0.0509980592623762, 0.0428358980222267,
    0.0342738629130214, 0.0253920653092621, 0.0162743947309057,
    0.0070186100094701};

}  // namespace

double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tol, int max_depth) {
  if (a == b) return 0.0;
  const double fa = f(a);
  const double fb = f(b);
  double fm;
  const double whole = SimpsonRule(f, a, fa, b, fb, &fm);
  return AdaptiveSimpsonRecurse(f, a, fa, b, fb, 0.5 * (a + b), fm, whole, tol,
                                max_depth);
}

double GaussLegendre(const std::function<double(double)>& f, double a,
                     double b, int order) {
  const double* nodes;
  const double* weights;
  int half;
  switch (order) {
    case 8:
      nodes = kNodes8;
      weights = kWeights8;
      half = 4;
      break;
    case 16:
      nodes = kNodes16;
      weights = kWeights16;
      half = 8;
      break;
    case 32:
      nodes = kNodes32;
      weights = kWeights32;
      half = 16;
      break;
    default:
      throw std::invalid_argument("GaussLegendre: order must be 8, 16 or 32");
  }
  const double center = 0.5 * (a + b);
  const double half_width = 0.5 * (b - a);
  double sum = 0.0;
  for (int i = 0; i < half; ++i) {
    const double dx = half_width * nodes[i];
    sum += weights[i] * (f(center - dx) + f(center + dx));
  }
  return sum * half_width;
}

}  // namespace fairchain::math
