// Kolmogorov-Smirnov goodness-of-fit machinery.
//
// Used to verify distributional claims rigorously: the ML-PoS / Pólya-urn
// reward fraction converging to Beta(a/w, b/w) (Section 4.3), and the
// equivalence of protocol pairs (FSL-PoS vs ML-PoS, C-PoS(v=0, P=1) vs
// ML-PoS).  One-sample tests compare data against an analytic CDF;
// two-sample tests compare two simulated samples.

#ifndef FAIRCHAIN_MATH_KS_TEST_HPP_
#define FAIRCHAIN_MATH_KS_TEST_HPP_

#include <cstdint>
#include <functional>
#include <vector>

namespace fairchain::math {

/// Result of a Kolmogorov-Smirnov test.
struct KsResult {
  double statistic = 0.0;  ///< sup-norm distance D
  double p_value = 0.0;    ///< asymptotic Kolmogorov p-value
};

/// One-sample KS test of `sample` against the continuous CDF `cdf`.
///
/// Defined for every non-degenerate input: n = 1 works (D is the larger of
/// F(x) and 1 - F(x)) and ties are handled exactly.  Throws
/// std::invalid_argument — never UB — on an empty sample, a non-finite
/// observation (NaN breaks std::sort's strict weak ordering), or a cdf that
/// returns a non-finite value; cdf values are clamped to [0, 1].
KsResult KsTestOneSample(std::vector<double> sample,
                         const std::function<double(double)>& cdf);

/// Two-sample KS test.  Ties within and across the samples are handled
/// exactly (both ECDFs advance past the tied value before comparing).
/// Throws std::invalid_argument on an empty or non-finite sample.
KsResult KsTestTwoSample(std::vector<double> a, std::vector<double> b);

/// The asymptotic Kolmogorov survival function Q(x) = 2 Σ (-1)^{k-1}
/// exp(-2 k² x²); Q(effective_n-scaled D) is the p-value.
double KolmogorovSurvival(double x);

/// Result of a chi-square goodness-of-fit test.
struct ChiSquareResult {
  double statistic = 0.0;        ///< Σ (O - E)² / E over merged cells
  std::size_t degrees = 0;       ///< cells after merging, minus 1
  double p_value = 0.0;          ///< 1 - ChiSquareCdf(degrees, statistic)
};

/// Pearson chi-square GOF test of observed counts against cell
/// probabilities (which are normalised internally).  Cells with expected
/// count below `min_expected` are pooled into their neighbour so the
/// asymptotic chi-square approximation is valid.  Suited to *discrete*
/// laws where KS is conservative — e.g. validating that ML-PoS block
/// counts follow the exact Beta-Binomial(n, a/w, b/w) distribution.
ChiSquareResult ChiSquareGofTest(const std::vector<std::uint64_t>& observed,
                                 const std::vector<double>& probabilities,
                                 double min_expected = 5.0);

}  // namespace fairchain::math

#endif  // FAIRCHAIN_MATH_KS_TEST_HPP_
