#include "math/special.hpp"

#include <cmath>
#include <stdexcept>

namespace fairchain::math {

namespace {

// Lanczos coefficients for g = 7, n = 9 (Godfrey / Numerical Recipes family).
constexpr double kLanczosG = 7.0;
constexpr double kLanczos[9] = {
    0.99999999999980993,  676.5203681218851,    -1259.1392167224028,
    771.32342877765313,   -176.61502916214059,  12.507343278686905,
    -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};

constexpr double kHalfLogTwoPi = 0.91893853320467274178;  // log(2*pi)/2

// Continued-fraction kernel for the incomplete beta (Lentz's method).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 400;
  constexpr double kEpsilon = 3.0e-15;
  constexpr double kTiny = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double dm = static_cast<double>(m);
    const double m2 = 2.0 * dm;
    // Even step.
    double aa = dm * (b - dm) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    // Odd step.
    aa = -(a + dm) * (qab + dm) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double LogGamma(double x) {
  if (!(x > 0.0)) {
    throw std::invalid_argument("LogGamma: x must be positive");
  }
  if (x < 0.5) {
    // Reflection formula keeps the Lanczos series in its accurate range.
    // log Gamma(x) = log(pi / sin(pi x)) - log Gamma(1 - x)
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kLanczos[0];
  for (int i = 1; i < 9; ++i) {
    sum += kLanczos[i] / (z + static_cast<double>(i));
  }
  const double t = z + kLanczosG + 0.5;
  return kHalfLogTwoPi + (z + 0.5) * std::log(t) - t + std::log(sum);
}

double LogBeta(double a, double b) {
  return LogGamma(a) + LogGamma(b) - LogGamma(a + b);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::invalid_argument("RegularizedIncompleteBeta: a, b must be > 0");
  }
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double log_front =
      a * std::log(x) + b * std::log1p(-x) - LogBeta(a, b);
  const double front = std::exp(log_front);
  // The continued fraction converges rapidly for x < (a+1)/(a+b+2);
  // otherwise use the symmetry relation.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double BetaCdf(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return RegularizedIncompleteBeta(a, b, x);
}

double BetaQuantile(double a, double b, double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("BetaQuantile: p must be in [0, 1]");
  }
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (BetaCdf(a, b, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-14) break;
  }
  return 0.5 * (lo + hi);
}

double BetaMean(double a, double b) { return a / (a + b); }

double BetaVariance(double a, double b) {
  const double s = a + b;
  return a * b / (s * s * (s + 1.0));
}

double BinomialLogPmf(std::uint64_t n, std::uint64_t k, double p) {
  if (k > n) throw std::invalid_argument("BinomialLogPmf: k > n");
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("BinomialLogPmf: p outside [0, 1]");
  }
  if (p == 0.0) return k == 0 ? 0.0 : -INFINITY;
  if (p == 1.0) return k == n ? 0.0 : -INFINITY;
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  return LogChoose(n, k) + kd * std::log(p) + (nd - kd) * std::log1p(-p);
}

double BinomialPmf(std::uint64_t n, std::uint64_t k, double p) {
  const double lp = BinomialLogPmf(n, k, p);
  return std::isinf(lp) ? 0.0 : std::exp(lp);
}

double BinomialCdf(std::uint64_t n, std::uint64_t k, double p) {
  if (k >= n) return 1.0;
  if (p <= 0.0) return 1.0;  // all mass at 0 <= k
  if (p >= 1.0) return 0.0;  // all mass at n > k
  // P[X <= k] = I_{1-p}(n-k, k+1).
  return RegularizedIncompleteBeta(static_cast<double>(n - k),
                                   static_cast<double>(k) + 1.0, 1.0 - p);
}

double PowDeltaExact(std::uint64_t n, double a, double epsilon) {
  if (n == 0) throw std::invalid_argument("PowDeltaExact: n must be > 0");
  if (a <= 0.0 || a >= 1.0) {
    throw std::invalid_argument("PowDeltaExact: a must be in (0, 1)");
  }
  const double nd = static_cast<double>(n);
  // Association matters: the fair-area edges are computed as (1 ± ε) a
  // first (exactly as FairnessSpec does) and then scaled by n, so that the
  // boundary atoms k = n(1 ± ε)a are classified identically by this exact
  // computation and by empirical checks of k/n against the same edges.
  const double upper_real = nd * ((1.0 + epsilon) * a);
  const double lower_real = nd * ((1.0 - epsilon) * a);
  const std::uint64_t upper =
      static_cast<std::uint64_t>(std::min(std::floor(upper_real), nd));
  const double lower_ceil = std::ceil(lower_real);
  // Pr[(1-eps)a <= lambda <= (1+eps)a] = F(floor) - F(ceil - 1).
  const double cdf_upper = BinomialCdf(n, upper, a);
  double cdf_below = 0.0;
  if (lower_ceil >= 1.0) {
    cdf_below = BinomialCdf(
        n, static_cast<std::uint64_t>(lower_ceil) - 1, a);
  }
  return cdf_upper - cdf_below;
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / M_SQRT2); }

double LogChoose(std::uint64_t n, std::uint64_t k) {
  if (k > n) throw std::invalid_argument("LogChoose: k > n");
  if (k == 0 || k == n) return 0.0;
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  return LogGamma(nd + 1.0) - LogGamma(kd + 1.0) - LogGamma(nd - kd + 1.0);
}

namespace {

// Series expansion of P(a, x), accurate for x < a + 1.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Lentz continued fraction for Q(a, x), accurate for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-16) break;
  }
  return h * std::exp(-x + a * std::log(x) - LogGamma(a));
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  if (!(a > 0.0)) {
    throw std::invalid_argument("RegularizedGammaP: a must be > 0");
  }
  if (x < 0.0) {
    throw std::invalid_argument("RegularizedGammaP: x must be >= 0");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  return 1.0 - RegularizedGammaP(a, x);
}

double ChiSquareCdf(double k, double x) {
  if (!(k > 0.0)) {
    throw std::invalid_argument("ChiSquareCdf: k must be > 0");
  }
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(0.5 * k, 0.5 * x);
}

double BetaBinomialLogPmf(std::uint64_t n, std::uint64_t k, double alpha,
                          double beta) {
  if (k > n) throw std::invalid_argument("BetaBinomialLogPmf: k > n");
  if (!(alpha > 0.0) || !(beta > 0.0)) {
    throw std::invalid_argument(
        "BetaBinomialLogPmf: alpha, beta must be > 0");
  }
  const double kd = static_cast<double>(k);
  const double nd = static_cast<double>(n);
  return LogChoose(n, k) + LogBeta(kd + alpha, nd - kd + beta) -
         LogBeta(alpha, beta);
}

double BetaBinomialPmf(std::uint64_t n, std::uint64_t k, double alpha,
                       double beta) {
  return std::exp(BetaBinomialLogPmf(n, k, alpha, beta));
}

}  // namespace fairchain::math
