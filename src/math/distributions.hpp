// Random-variate samplers built on RngStream.
//
// Each protocol model needs a specific sampler:
//   * Exponential  — PoW / FSL-PoS inter-block race (Section 2.1, 6.2);
//   * Geometric    — ML-PoS per-timestamp lottery (Section 2.2);
//   * Binomial     — C-PoS proposer count per epoch, X ~ Bin(P, share);
//   * Categorical  — proposer selection with stake-proportional weights;
//   * Beta / Gamma — cross-checking the Pólya-urn limit in tests.
//
// All samplers are inverse-transform or rejection algorithms implemented
// from scratch so runs are bit-reproducible across platforms.

#ifndef FAIRCHAIN_MATH_DISTRIBUTIONS_HPP_
#define FAIRCHAIN_MATH_DISTRIBUTIONS_HPP_

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace fairchain::math {

/// Exponential(rate) via inverse transform.  rate > 0.
double SampleExponential(RngStream& rng, double rate);

/// Geometric on {1, 2, ...}: number of Bernoulli(p) trials until the first
/// success, sampled in O(1) via the inverse transform.  p in (0, 1].
std::uint64_t SampleGeometric(RngStream& rng, double p);

/// Binomial(n, p).
///
/// Uses explicit Bernoulli summation for tiny n, CDF inversion from zero
/// when the mean is small, and inversion from the mode otherwise, so the
/// expected cost is O(sd) rather than O(n).
std::uint64_t SampleBinomial(RngStream& rng, std::uint64_t n, double p);

/// Categorical draw: returns index i with probability weights[i] / sum.
/// Weights must be non-negative with a positive sum.
std::size_t SampleCategorical(RngStream& rng,
                              const std::vector<double>& weights);

/// Categorical draw given a precomputed positive total (hot-path variant
/// that skips the summation pass).
std::size_t SampleCategoricalWithTotal(RngStream& rng,
                                       const std::vector<double>& weights,
                                       double total);

/// Gamma(shape, 1) via Marsaglia & Tsang's squeeze method (shape > 0).
double SampleGamma(RngStream& rng, double shape);

/// Beta(a, b) via the two-Gamma construction.
double SampleBeta(RngStream& rng, double a, double b);

/// Standard normal via Box-Muller (polar form not needed; trig is fine).
double SampleNormal(RngStream& rng);

/// Alias-method table for O(1) categorical sampling with *static* weights
/// (PoW hash power, NEO base asset).  Construction is O(n).
class AliasTable {
 public:
  /// Builds the table; throws std::invalid_argument when weights are empty,
  /// negative, or sum to zero.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index in O(1).
  std::size_t Sample(RngStream& rng) const;

  /// Number of categories.
  std::size_t size() const { return probability_.size(); }

 private:
  std::vector<double> probability_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace fairchain::math

#endif  // FAIRCHAIN_MATH_DISTRIBUTIONS_HPP_
