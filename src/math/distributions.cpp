#include "math/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/special.hpp"

namespace fairchain::math {

double SampleExponential(RngStream& rng, double rate) {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("SampleExponential: rate must be > 0");
  }
  return -std::log(rng.NextOpenDouble()) / rate;
}

std::uint64_t SampleGeometric(RngStream& rng, double p) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument("SampleGeometric: p must be in (0, 1]");
  }
  if (p >= 1.0) return 1;
  const double u = rng.NextOpenDouble();
  const double value = std::floor(std::log(u) / std::log1p(-p)) + 1.0;
  return value < 1.0 ? 1 : static_cast<std::uint64_t>(value);
}

namespace {

// CDF inversion starting from k = 0; O(np) expected steps.
std::uint64_t BinomialInversionFromZero(RngStream& rng, std::uint64_t n,
                                        double p) {
  const double q = 1.0 - p;
  const double s = p / q;
  double pmf = std::pow(q, static_cast<double>(n));
  double cdf = pmf;
  const double u = rng.NextDouble();
  std::uint64_t k = 0;
  while (u > cdf && k < n) {
    ++k;
    pmf *= s * (static_cast<double>(n - k + 1) / static_cast<double>(k));
    cdf += pmf;
  }
  return k;
}

// CDF inversion walking outward from the mode; O(sd) expected steps.
std::uint64_t BinomialInversionFromMode(RngStream& rng, std::uint64_t n,
                                        double p) {
  const std::uint64_t mode = static_cast<std::uint64_t>(
      std::floor(static_cast<double>(n + 1) * p));
  const double pmf_mode = BinomialPmf(n, mode, p);
  double u = rng.NextDouble() - BinomialCdf(n, mode, p);
  if (u <= 0.0) {
    // Walk downward from the mode.
    std::uint64_t k = mode;
    double pmf = pmf_mode;
    while (k > 0) {
      u += pmf;
      if (u > 0.0) return k;
      // pmf(k-1) = pmf(k) * k * (1-p) / ((n-k+1) * p)
      pmf *= (static_cast<double>(k) * (1.0 - p)) /
             (static_cast<double>(n - k + 1) * p);
      --k;
    }
    return 0;
  }
  // Walk upward from the mode.
  std::uint64_t k = mode;
  double pmf = pmf_mode;
  while (k < n) {
    // pmf(k+1) = pmf(k) * (n-k) p / ((k+1)(1-p))
    pmf *= (static_cast<double>(n - k) * p) /
           (static_cast<double>(k + 1) * (1.0 - p));
    ++k;
    u -= pmf;
    if (u <= 0.0) return k;
  }
  return n;
}

}  // namespace

std::uint64_t SampleBinomial(RngStream& rng, std::uint64_t n, double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("SampleBinomial: p outside [0, 1]");
  }
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  // Exploit symmetry so the walk is over the smaller tail.
  if (p > 0.5) return n - SampleBinomial(rng, n, 1.0 - p);
  const double mean = static_cast<double>(n) * p;
  if (n <= 16) {
    std::uint64_t successes = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      successes += rng.NextBernoulli(p) ? 1 : 0;
    }
    return successes;
  }
  if (mean < 12.0) return BinomialInversionFromZero(rng, n, p);
  return BinomialInversionFromMode(rng, n, p);
}

std::size_t SampleCategorical(RngStream& rng,
                              const std::vector<double>& weights) {
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument("SampleCategorical: negative weight");
    }
    total += w;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("SampleCategorical: weights sum to zero");
  }
  return SampleCategoricalWithTotal(rng, weights, total);
}

std::size_t SampleCategoricalWithTotal(RngStream& rng,
                                       const std::vector<double>& weights,
                                       double total) {
  const double target = rng.NextDouble() * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;
}

double SampleGamma(RngStream& rng, double shape) {
  if (!(shape > 0.0)) {
    throw std::invalid_argument("SampleGamma: shape must be > 0");
  }
  if (shape < 1.0) {
    // Boost to shape + 1 and scale back (Marsaglia-Tsang section 6).
    const double u = rng.NextOpenDouble();
    return SampleGamma(rng, shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = SampleNormal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.NextOpenDouble();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) return d * v;
  }
}

double SampleBeta(RngStream& rng, double a, double b) {
  const double x = SampleGamma(rng, a);
  const double y = SampleGamma(rng, b);
  return x / (x + y);
}

double SampleNormal(RngStream& rng) {
  const double u1 = rng.NextOpenDouble();
  const double u2 = rng.NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  if (weights.empty()) {
    throw std::invalid_argument("AliasTable: empty weights");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasTable: negative weight");
    total += w;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("AliasTable: weights sum to zero");
  }
  const std::size_t n = weights.size();
  probability_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (const std::uint32_t i : large) probability_[i] = 1.0;
  for (const std::uint32_t i : small) probability_[i] = 1.0;
}

std::size_t AliasTable::Sample(RngStream& rng) const {
  const std::size_t column = static_cast<std::size_t>(
      rng.NextBounded(static_cast<std::uint64_t>(probability_.size())));
  return rng.NextDouble() < probability_[column] ? column : alias_[column];
}

}  // namespace fairchain::math
