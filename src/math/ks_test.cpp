#include "math/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/special.hpp"

namespace fairchain::math {

double KolmogorovSurvival(double x) {
  if (x <= 0.0) return 1.0;
  // Series converges extremely fast for x > 0.3; below that clamp to 1.
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term =
        std::exp(-2.0 * static_cast<double>(k) * k * x * x);
    sum += (k % 2 == 1 ? term : -term);
    if (term < 1e-16) break;
  }
  const double q = 2.0 * sum;
  return std::clamp(q, 0.0, 1.0);
}

namespace {

// std::sort requires a strict weak ordering; a NaN breaks it (operator< is
// not transitive-of-incomparability with NaN), which is undefined
// behaviour.  Reject non-finite observations up front with a defined error
// instead.
void RequireFinite(const std::vector<double>& sample, const char* what) {
  for (const double x : sample) {
    if (!std::isfinite(x)) {
      throw std::invalid_argument(std::string(what) +
                                  ": sample contains a non-finite value");
    }
  }
}

}  // namespace

KsResult KsTestOneSample(std::vector<double> sample,
                         const std::function<double(double)>& cdf) {
  if (sample.empty()) {
    throw std::invalid_argument("KsTestOneSample: empty sample");
  }
  RequireFinite(sample, "KsTestOneSample");
  std::sort(sample.begin(), sample.end());
  const double n = static_cast<double>(sample.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double raw = cdf(sample[i]);
    if (!std::isfinite(raw)) {
      throw std::invalid_argument(
          "KsTestOneSample: cdf returned a non-finite value");
    }
    const double value = std::clamp(raw, 0.0, 1.0);
    const double upper = static_cast<double>(i + 1) / n - value;
    const double lower = value - static_cast<double>(i) / n;
    d = std::max({d, upper, lower});
  }
  KsResult result;
  result.statistic = d;
  const double scaled = (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n)) * d;
  result.p_value = KolmogorovSurvival(scaled);
  return result;
}

KsResult KsTestTwoSample(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("KsTestTwoSample: empty sample");
  }
  RequireFinite(a, "KsTestTwoSample");
  RequireFinite(b, "KsTestTwoSample");
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    const double fa = static_cast<double>(i) / na;
    const double fb = static_cast<double>(j) / nb;
    d = std::max(d, std::fabs(fa - fb));
  }
  KsResult result;
  result.statistic = d;
  const double effective = std::sqrt(na * nb / (na + nb));
  const double scaled = (effective + 0.12 + 0.11 / effective) * d;
  result.p_value = KolmogorovSurvival(scaled);
  return result;
}

ChiSquareResult ChiSquareGofTest(const std::vector<std::uint64_t>& observed,
                                 const std::vector<double>& probabilities,
                                 double min_expected) {
  if (observed.empty() || observed.size() != probabilities.size()) {
    throw std::invalid_argument(
        "ChiSquareGofTest: observed/probabilities size mismatch");
  }
  double total_probability = 0.0;
  std::uint64_t total_count = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (probabilities[i] < 0.0) {
      throw std::invalid_argument("ChiSquareGofTest: negative probability");
    }
    total_probability += probabilities[i];
    total_count += observed[i];
  }
  if (!(total_probability > 0.0) || total_count == 0) {
    throw std::invalid_argument("ChiSquareGofTest: empty distribution");
  }
  // Merge adjacent cells until every expected count reaches the floor.
  std::vector<double> merged_expected;
  std::vector<double> merged_observed;
  double acc_expected = 0.0;
  double acc_observed = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    acc_expected += static_cast<double>(total_count) * probabilities[i] /
                    total_probability;
    acc_observed += static_cast<double>(observed[i]);
    if (acc_expected >= min_expected) {
      merged_expected.push_back(acc_expected);
      merged_observed.push_back(acc_observed);
      acc_expected = 0.0;
      acc_observed = 0.0;
    }
  }
  if (acc_expected > 0.0 || acc_observed > 0.0) {
    if (merged_expected.empty()) {
      merged_expected.push_back(acc_expected);
      merged_observed.push_back(acc_observed);
    } else {
      merged_expected.back() += acc_expected;
      merged_observed.back() += acc_observed;
    }
  }
  ChiSquareResult result;
  for (std::size_t i = 0; i < merged_expected.size(); ++i) {
    const double diff = merged_observed[i] - merged_expected[i];
    result.statistic += diff * diff / merged_expected[i];
  }
  result.degrees = merged_expected.size() > 1 ? merged_expected.size() - 1
                                              : 1;
  result.p_value = 1.0 - ChiSquareCdf(static_cast<double>(result.degrees),
                                      result.statistic);
  return result;
}

}  // namespace fairchain::math
