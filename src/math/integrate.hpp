// Numerical integration.
//
// Lemma 6.1 expresses the multi-miner SL-PoS win probability as
//   Pr[miner i wins] = S_i * Integral_0^{1/S_max}  Prod_{j != i} (1 - S_j z) dz
// which has no closed form for heterogeneous stakes.  AdaptiveSimpson
// evaluates it to near machine precision; GaussLegendre provides a fixed-cost
// alternative used inside the stochastic-approximation drift field where the
// integrand is polynomial (degree m-1) and a fixed rule is exact.

#ifndef FAIRCHAIN_MATH_INTEGRATE_HPP_
#define FAIRCHAIN_MATH_INTEGRATE_HPP_

#include <functional>

namespace fairchain::math {

/// Adaptive Simpson quadrature of `f` over [a, b] to absolute tolerance
/// `tol`; recursion depth capped at `max_depth`.
double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tol = 1e-12, int max_depth = 40);

/// Fixed-order Gauss-Legendre quadrature over [a, b].
/// Supported orders: 8, 16, 32 (exact for polynomials of degree 2n-1).
double GaussLegendre(const std::function<double(double)>& f, double a,
                     double b, int order = 16);

}  // namespace fairchain::math

#endif  // FAIRCHAIN_MATH_INTEGRATE_HPP_
