// VerificationPlan: pairs every cell of a scenario's grid with the analytic
// oracle that understands it, and VerifyCampaign: run the campaign, judge
// every cell, stream verdict rows.
//
// A plan is built from any ScenarioSpec — in particular every
// ScenarioRegistry built-in — so each registered scenario is a
// self-checking experiment: `fairchain verify <name>` (or the
// oracle_conformance CTest suite) runs the grid through the Monte Carlo
// engine and accepts it only when every cell's replication-level samples
// are consistent with the closed forms.  The plan also carries the
// Bonferroni denominator (total stochastic comparisons across the grid) so
// the judge's family-wise false-alarm rate holds per campaign, not per
// cell.

#ifndef FAIRCHAIN_VERIFY_VERIFICATION_PLAN_HPP_
#define FAIRCHAIN_VERIFY_VERIFICATION_PLAN_HPP_

#include <cstddef>
#include <string>
#include <vector>

#include "sim/campaign.hpp"
#include "sim/scenario_spec.hpp"
#include "verify/oracle.hpp"
#include "verify/statistical_judge.hpp"
#include "verify/verdict_sink.hpp"

namespace fairchain::verify {

/// One grid cell with its matched oracle and precomputed prediction.
struct PlannedCell {
  sim::CampaignCell cell;
  const Oracle* oracle = nullptr;  ///< null = sanity checks only
  OraclePrediction prediction;     ///< empty claims when oracle is null
};

/// The verification plan of one scenario.
class VerificationPlan {
 public:
  /// Builds the plan for `spec` using `oracles` (first AppliesTo match
  /// wins; DefaultOracles() when omitted).  Validates the spec and
  /// precomputes every cell's prediction.
  explicit VerificationPlan(sim::ScenarioSpec spec,
                            const std::vector<const Oracle*>* oracles =
                                nullptr);

  /// Plan for a registered scenario (ScenarioRegistry::BuiltIn lookup).
  static VerificationPlan ForScenario(const std::string& name);

  const sim::ScenarioSpec& spec() const { return spec_; }
  const std::vector<PlannedCell>& cells() const { return cells_; }

  /// Number of cells with a matched oracle.
  std::size_t OracleCoverage() const;

  /// Total p-value-producing comparisons across the grid — the Bonferroni
  /// denominator VerifyCampaign feeds into the judge.
  std::size_t StochasticComparisons() const;

 private:
  sim::ScenarioSpec spec_;
  std::vector<PlannedCell> cells_;
};

/// Execution knobs for VerifyCampaign.
struct VerificationOptions {
  /// Threads / chunking / execution backend for the runner.  Verdicts are
  /// pure functions of the seeded campaign output, so they are
  /// byte-identical across backends and thread counts.
  sim::CampaignOptions campaign;
  /// Judge knobs; `comparisons` is overwritten from the plan.
  JudgeConfig judge;
};

/// Aggregate outcome of one verified campaign.
struct VerificationReport {
  std::string scenario;
  std::size_t cells = 0;
  std::size_t checks = 0;
  std::size_t failures = 0;
  double threshold = 0.0;  ///< Bonferroni-corrected p-value threshold used
  std::vector<CellVerdict> verdicts;  ///< grid order
  bool passed = true;
};

/// Runs the plan's campaign through the shared-pool CampaignRunner
/// (optionally streaming ordinary campaign rows to `row_sinks`), judges
/// every cell against its prediction, streams one VerdictRow per check to
/// `verdict_sinks` in ascending (cell, check) order, and returns the
/// report.  Deterministic for a fixed spec seed at any thread count.
VerificationReport VerifyCampaign(
    const VerificationPlan& plan, const VerificationOptions& options,
    const std::vector<VerdictSink*>& verdict_sinks,
    const std::vector<sim::ResultSink*>& row_sinks = {});

}  // namespace fairchain::verify

#endif  // FAIRCHAIN_VERIFY_VERIFICATION_PLAN_HPP_
