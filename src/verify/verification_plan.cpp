#include "verify/verification_plan.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "sim/scenario_registry.hpp"

namespace fairchain::verify {

VerificationPlan::VerificationPlan(
    sim::ScenarioSpec spec, const std::vector<const Oracle*>* oracles)
    : spec_(std::move(spec)) {
  spec_.Validate();
  // The statistical judge consumes replication-level final-λ samples;
  // honouring `final_lambdas=off` here would turn every cell into a
  // misleading "no replication-level samples" sanity failure, so the plan
  // always retains them (the key exists for campaign memory savings, which
  // do not apply to verification runs).
  spec_.keep_final_lambdas = true;
  const std::vector<const Oracle*>& catalogue =
      oracles != nullptr ? *oracles : DefaultOracles();
  const std::vector<sim::CampaignCell> cells = spec_.ExpandCells();
  cells_.reserve(cells.size());
  for (const sim::CampaignCell& cell : cells) {
    PlannedCell planned;
    planned.cell = cell;
    for (const Oracle* oracle : catalogue) {
      if (oracle->AppliesTo(cell)) {
        planned.oracle = oracle;
        planned.prediction =
            oracle->Predict(cell, spec_.fairness, spec_.steps);
        planned.prediction.oracle = oracle->name();
        break;
      }
    }
    cells_.push_back(std::move(planned));
  }
}

VerificationPlan VerificationPlan::ForScenario(const std::string& name) {
  return VerificationPlan(sim::ScenarioRegistry::BuiltIn().Get(name));
}

std::size_t VerificationPlan::OracleCoverage() const {
  std::size_t covered = 0;
  for (const PlannedCell& planned : cells_) {
    if (planned.oracle != nullptr) ++covered;
  }
  return covered;
}

std::size_t VerificationPlan::StochasticComparisons() const {
  std::size_t comparisons = 0;
  for (const PlannedCell& planned : cells_) {
    comparisons += planned.prediction.StochasticComparisons();
  }
  return comparisons;
}

VerificationReport VerifyCampaign(
    const VerificationPlan& plan, const VerificationOptions& options,
    const std::vector<VerdictSink*>& verdict_sinks,
    const std::vector<sim::ResultSink*>& row_sinks) {
  JudgeConfig judge_config = options.judge;
  judge_config.comparisons = plan.StochasticComparisons();
  const StatisticalJudge judge(judge_config);

  const sim::CampaignRunner runner(options.campaign);
  const std::vector<sim::CellOutcome> outcomes =
      runner.Run(plan.spec(), row_sinks);

  VerificationReport report;
  report.scenario = plan.spec().name;
  report.threshold = judge_config.Threshold();

  for (VerdictSink* sink : verdict_sinks) {
    sink->BeginVerification(plan.spec());
  }

  // Cross-cell physics the per-cell judge cannot see: within a group of
  // forkrace cells that differ only in propagation delay, the
  // final-checkpoint orphan rate must be non-decreasing in delay (a wider
  // window can only contest more blocks).  Each adjacent-pair comparison
  // is attached to the higher-delay cell's verdict as a structural check.
  std::map<std::size_t, std::vector<CheckResult>> cross_checks;
  {
    // (a, gamma) -> cell indices of forkrace cells, later sorted by delay.
    std::map<std::pair<double, double>, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const sim::CampaignCell& cell = plan.cells()[i].cell;
      if (cell.chain_dynamics && cell.protocol == "forkrace" &&
          !outcomes[i].result.checkpoints.empty()) {
        groups[{cell.a, cell.gamma}].push_back(i);
      }
    }
    // Sampling slack: the compared values are means over replications, so
    // their noise is far below this at any campaign scale worth verifying.
    constexpr double kMonotoneSlack = 0.01;
    for (auto& [key, members] : groups) {
      if (members.size() < 2) continue;
      std::sort(members.begin(), members.end(),
                [&](std::size_t lhs, std::size_t rhs) {
                  return plan.cells()[lhs].cell.delay <
                         plan.cells()[rhs].cell.delay;
                });
      for (std::size_t j = 1; j < members.size(); ++j) {
        const std::size_t prev = members[j - 1];
        const std::size_t next = members[j];
        const double low =
            outcomes[prev].result.checkpoints.back().orphan_rate;
        const double high =
            outcomes[next].result.checkpoints.back().orphan_rate;
        CheckResult check;
        check.check = "orphan-monotone-delay";
        check.statistic = high - low;
        check.passed = !(high < low - kMonotoneSlack);
        if (!check.passed) {
          check.detail =
              "orphan rate " + sim::FormatDouble(high) + " at delay " +
              sim::FormatDouble(plan.cells()[next].cell.delay) +
              " fell below " + sim::FormatDouble(low) + " at delay " +
              sim::FormatDouble(plan.cells()[prev].cell.delay);
        }
        cross_checks[next].push_back(std::move(check));
      }
    }
  }

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const PlannedCell& planned = plan.cells()[i];
    CellVerdict verdict =
        judge.Judge(planned.cell, planned.prediction, outcomes[i].result);
    if (const auto extra = cross_checks.find(i); extra != cross_checks.end()) {
      for (CheckResult& check : extra->second) {
        if (!check.passed) verdict.passed = false;
        verdict.checks.push_back(std::move(check));
      }
    }
    for (const CheckResult& check : verdict.checks) {
      VerdictRow row;
      row.scenario = plan.spec().name;
      row.cell = planned.cell.index;
      row.protocol = planned.cell.protocol;
      row.miners = planned.cell.miners;
      row.whales = planned.cell.whales;
      row.a = planned.cell.a;
      row.w = planned.cell.w;
      row.v = planned.cell.v;
      row.shards = planned.cell.shards;
      row.withhold = planned.cell.withhold;
      row.oracle = verdict.oracle.empty() ? "none" : verdict.oracle;
      row.check = check.check;
      row.statistic = check.statistic;
      row.p_value = check.p_value;
      row.threshold = report.threshold;
      row.passed = check.passed;
      row.detail = check.detail;
      for (VerdictSink* sink : verdict_sinks) sink->WriteRow(row);
    }
    ++report.cells;
    report.checks += verdict.checks.size();
    report.failures += verdict.Failures();
    if (!verdict.passed) report.passed = false;
    report.verdicts.push_back(std::move(verdict));
  }

  for (VerdictSink* sink : verdict_sinks) sink->EndVerification();
  return report;
}

}  // namespace fairchain::verify
