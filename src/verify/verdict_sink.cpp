#include "verify/verdict_sink.hpp"

#include <algorithm>
#include <cmath>

#include "sim/result_sink.hpp"
#include "support/escape.hpp"
#include "support/table.hpp"

namespace fairchain::verify {

using sim::FormatDouble;
using sim::JsonNumber;

// ---------------------------------------------------------------------------
// VerdictCsvSink
// ---------------------------------------------------------------------------

const std::string& VerdictCsvSink::Header() {
  static const std::string header =
      "scenario,cell,protocol,miners,whales,a,w,v,shards,withhold,oracle,"
      "check,statistic,p_value,threshold,passed,detail";
  return header;
}

void VerdictCsvSink::BeginVerification(const sim::ScenarioSpec& spec) {
  (void)spec;
  out_ << Header() << "\n";
}

void VerdictCsvSink::WriteRow(const VerdictRow& row) {
  out_ << EscapeCsvField(row.scenario) << ',' << row.cell << ','
       << EscapeCsvField(row.protocol) << ',' << row.miners << ','
       << row.whales << ',' << FormatDouble(row.a) << ','
       << FormatDouble(row.w) << ',' << FormatDouble(row.v) << ','
       << row.shards << ',' << row.withhold << ','
       << EscapeCsvField(row.oracle) << ',' << EscapeCsvField(row.check)
       << ',' << FormatDouble(row.statistic) << ','
       << FormatDouble(row.p_value) << ',' << FormatDouble(row.threshold)
       << ',' << (row.passed ? "pass" : "FAIL") << ','
       << EscapeCsvField(row.detail) << "\n";
}

void VerdictCsvSink::EndVerification() { out_.flush(); }

// ---------------------------------------------------------------------------
// VerdictJsonlSink
// ---------------------------------------------------------------------------

void VerdictJsonlSink::WriteRow(const VerdictRow& row) {
  out_ << "{\"scenario\":\"" << EscapeJsonString(row.scenario)
       << "\",\"cell\":" << row.cell << ",\"protocol\":\""
       << EscapeJsonString(row.protocol) << "\",\"miners\":" << row.miners
       << ",\"whales\":" << row.whales << ",\"a\":" << JsonNumber(row.a)
       << ",\"w\":" << JsonNumber(row.w) << ",\"v\":" << JsonNumber(row.v)
       << ",\"shards\":" << row.shards << ",\"withhold\":" << row.withhold
       << ",\"oracle\":\"" << EscapeJsonString(row.oracle)
       << "\",\"check\":\"" << EscapeJsonString(row.check)
       << "\",\"statistic\":" << JsonNumber(row.statistic)
       << ",\"p_value\":" << JsonNumber(row.p_value)
       << ",\"threshold\":" << JsonNumber(row.threshold)
       << ",\"passed\":" << (row.passed ? "true" : "false")
       << ",\"detail\":\"" << EscapeJsonString(row.detail) << "\"}\n";
}

void VerdictJsonlSink::EndVerification() { out_.flush(); }

// ---------------------------------------------------------------------------
// VerdictSummarySink
// ---------------------------------------------------------------------------

void VerdictSummarySink::BeginVerification(const sim::ScenarioSpec& spec) {
  title_ = "verify " + spec.name + " — " + spec.description;
  cells_.clear();
}

void VerdictSummarySink::WriteRow(const VerdictRow& row) {
  if (cells_.empty() || cells_.back().cell != row.cell) {
    CellSummary summary;
    summary.cell = row.cell;
    summary.protocol = row.protocol;
    summary.oracle = row.oracle;
    cells_.push_back(summary);
  }
  CellSummary& summary = cells_.back();
  ++summary.checks;
  if (std::isfinite(row.p_value)) {
    summary.has_p = true;
    summary.min_p = std::min(summary.min_p, row.p_value);
  }
  if (!row.passed) {
    ++summary.failures;
    if (!summary.failed_checks.empty()) summary.failed_checks += ",";
    summary.failed_checks += row.check;
  }
}

void VerdictSummarySink::EndVerification() {
  Table table({"cell", "protocol", "oracle", "checks", "min p", "verdict"});
  table.SetTitle(title_);
  for (const CellSummary& summary : cells_) {
    table.AddRow();
    table.Cell(static_cast<std::uint64_t>(summary.cell));
    table.Cell(summary.protocol);
    table.Cell(summary.oracle.empty() ? std::string("none") : summary.oracle);
    table.Cell(static_cast<std::uint64_t>(summary.checks));
    // Structural-only cells ran no hypothesis test; don't fabricate a p.
    if (summary.has_p) {
      table.CellSci(summary.min_p, 1);
    } else {
      table.Cell(std::string("-"));
    }
    table.Cell(summary.failures == 0
                   ? std::string("pass")
                   : "FAIL(" + summary.failed_checks + ")");
  }
  table.Emit(emit_basename_);
}

// ---------------------------------------------------------------------------
// VerdictFileSinks
// ---------------------------------------------------------------------------

VerdictFileSinks::VerdictFileSinks(const std::string& scenario_name)
    : summary_("verify_" + scenario_name + "_summary") {}

bool VerdictFileSinks::OpenFiles(const std::string& csv_path,
                                 const std::string& jsonl_path) {
  csv_file_.open(csv_path);
  jsonl_file_.open(jsonl_path);
  if (!csv_file_ || !jsonl_file_) {
    csv_file_.close();
    jsonl_file_.close();
    return false;
  }
  csv_ = std::make_unique<VerdictCsvSink>(csv_file_);
  jsonl_ = std::make_unique<VerdictJsonlSink>(jsonl_file_);
  return true;
}

std::vector<VerdictSink*> VerdictFileSinks::sinks() {
  std::vector<VerdictSink*> attached = {&summary_};
  if (csv_) attached.push_back(csv_.get());
  if (jsonl_) attached.push_back(jsonl_.get());
  return attached;
}

}  // namespace fairchain::verify
