// Analytic oracles: closed-form re-derivations of what each campaign cell
// must produce, computed independently of the Monte Carlo engine.
//
// The paper's central results are exact laws, not just bounds, which makes
// every simulated cell independently checkable:
//
//   * PoW / NEO select proposers with a share that never changes, so the
//     tracked miner's block count is EXACTLY Binomial(n, a) (Section 4.2);
//   * ML-PoS / FSL-PoS (and C-PoS with v = 0, P = 1) are a two-color Pólya
//     urn once the minnows are aggregated, so the block count is EXACTLY
//     Beta-Binomial(n, s0/w, s1/w) — PolyaUrn::TwoColorLimit gives the
//     parameters (Section 4.3);
//   * C-PoS keeps the stake share a martingale, so E[λ] = a exactly and the
//     Theorem 4.10 Azuma bound caps the unfair probability;
//   * SL-PoS drifts monotonically toward monopoly (Theorem 4.9), pinning
//     the SIGN of E[λ] - a (and E[λ] = 1/2 exactly at a = 1/2 by symmetry);
//   * Algorand / EOS are deterministic: the whole λ trajectory has a closed
//     form (Section 6.4).
//
// An Oracle declares which cells it understands (AppliesTo) and emits an
// OraclePrediction — exact moments, an exact pmf of the block count, and/or
// analytic bounds — that the StatisticalJudge turns into accept/reject
// verdicts against replication-level samples.

#ifndef FAIRCHAIN_VERIFY_ORACLE_HPP_
#define FAIRCHAIN_VERIFY_ORACLE_HPP_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/fairness.hpp"
#include "sim/scenario_spec.hpp"

namespace fairchain::verify {

/// Everything an oracle can claim about one cell's final-checkpoint λ
/// distribution.  Absent fields simply mean "no claim"; the judge only
/// tests what is present.
struct OraclePrediction {
  /// Name of the oracle that produced the prediction ("" = none).
  std::string oracle;

  /// Exact E[λ_n] (martingale protocols: the initial share).
  std::optional<double> mean;
  /// Exact Var[λ_n].
  std::optional<double> variance;
  /// One-sided drift claims (SL-PoS): E[λ_n] <= mean_upper / >= mean_lower.
  std::optional<double> mean_upper;
  std::optional<double> mean_lower;
  /// λ_n is almost surely this exact value (deterministic protocols).
  std::optional<double> deterministic_lambda;

  /// Exact pmf of K = n·λ on {0, ..., n}; empty = no distributional claim.
  /// The judge runs a chi-square GOF test against it.
  std::vector<double> pmf;

  /// Exact unfair probability Pr[λ outside the fair area], counting
  /// FP-ambiguous lattice points (k/n within ~1e-9 of a fair-area edge) as
  /// fair; `unfair_boundary_mass` is the pmf mass on those points, so the
  /// truth lies in [unfair_probability, unfair_probability + boundary mass].
  std::optional<double> unfair_probability;
  double unfair_boundary_mass = 0.0;
  /// Analytic upper bound on the unfair probability (Hoeffding / Azuma).
  /// Equitability claims ride on `variance`: for ML-PoS it equals
  /// a(1-a)(1/n + w)/(1 + w), i.e. a(1-a) times the normalised variance
  /// that tends to MlPosLimitNormalisedVariance(w).
  std::optional<double> unfair_upper_bound;

  /// Chain-dynamics claims (fork-aware cells only): the expected
  /// final-checkpoint orphan rate and mean reorg depth, each checked as a
  /// structural tolerance comparison against the cell's reduced chain
  /// observables (absolute tolerance; finite-horizon/ratio-estimator bias
  /// dominates sampling error at campaign scale, so no p-value is run and
  /// neither claim joins the Bonferroni denominator).
  std::optional<double> orphan_rate_expected;
  double orphan_rate_tolerance = 0.0;
  std::optional<double> reorg_depth_expected;
  double reorg_depth_tolerance = 0.0;

  /// Number of p-value-producing checks the judge will run for this
  /// prediction — the cell's contribution to the Bonferroni denominator.
  /// Deterministic and structural checks cannot false-alarm and do not
  /// count.
  std::size_t StochasticComparisons() const;
};

/// A closed-form cross-check for a family of campaign cells.
class Oracle {
 public:
  virtual ~Oracle() = default;

  /// Stable identifier written into verdict rows.
  virtual std::string name() const = 0;

  /// True when this oracle's closed form is exact for `cell`.
  virtual bool AppliesTo(const sim::CampaignCell& cell) const = 0;

  /// The prediction for `cell` run for `steps` steps under `fairness`.
  /// Only called when AppliesTo(cell).
  virtual OraclePrediction Predict(const sim::CampaignCell& cell,
                                   const core::FairnessSpec& fairness,
                                   std::uint64_t steps) const = 0;
};

/// PoW / NEO: non-compounding rewards keep the selection share constant, so
/// K ~ Binomial(n, a) exactly — pmf, moments, exact unfair probability, and
/// the Theorem 4.2 Hoeffding bound.  Withholding is irrelevant (nothing
/// compounds), so this applies at any withhold period.
class BinomialProportionalityOracle : public Oracle {
 public:
  std::string name() const override { return "binomial-proportionality"; }
  bool AppliesTo(const sim::CampaignCell& cell) const override;
  OraclePrediction Predict(const sim::CampaignCell& cell,
                           const core::FairnessSpec& fairness,
                           std::uint64_t steps) const override;
};

/// ML-PoS / FSL-PoS / degenerate C-PoS (v = 0, P = 1): the two-color Pólya
/// urn (tracked miner vs aggregated rest) makes K ~ Beta-Binomial(n, α, β)
/// with (α, β) = PolyaUrn::TwoColorLimit — pmf, exact moments, the exact
/// finite-n equitability (1/n + w)/(1 + w), the exact unfair probability,
/// and the Theorem 4.3 Azuma bound.  Requires withhold == 0 (withholding
/// breaks the urn's reinforcement schedule).
class PolyaBetaLimitOracle : public Oracle {
 public:
  std::string name() const override { return "polya-beta-limit"; }
  bool AppliesTo(const sim::CampaignCell& cell) const override;
  OraclePrediction Predict(const sim::CampaignCell& cell,
                           const core::FairnessSpec& fairness,
                           std::uint64_t steps) const override;
};

/// General C-PoS: the stake share is a martingale, so E[λ] = a exactly;
/// the Theorem 4.10 Azuma bound caps the unfair probability.  Requires
/// withhold == 0.
class CPosMartingaleOracle : public Oracle {
 public:
  std::string name() const override { return "cpos-martingale"; }
  bool AppliesTo(const sim::CampaignCell& cell) const override;
  OraclePrediction Predict(const sim::CampaignCell& cell,
                           const core::FairnessSpec& fairness,
                           std::uint64_t steps) const override;
};

/// Two-miner SL-PoS: Theorem 4.9's monopolisation drift pins the side of a
/// that E[λ] lies on (below for a < 1/2, above for a > 1/2, exactly 1/2 at
/// a = 1/2 by symmetry).  Requires miners == 2 and withhold == 0.
class SlPosDriftOracle : public Oracle {
 public:
  std::string name() const override { return "slpos-drift"; }
  bool AppliesTo(const sim::CampaignCell& cell) const override;
  OraclePrediction Predict(const sim::CampaignCell& cell,
                           const core::FairnessSpec& fairness,
                           std::uint64_t steps) const override;
};

/// Algorand / EOS: both protocols are deterministic, so λ_n has a closed
/// form.  Algorand's proportional inflation leaves shares invariant
/// (λ = a for every n); EOS's constant w/m proposer reward follows a
/// deterministic recurrence the oracle integrates directly.  Requires
/// withhold == 0.
class DeterministicShareOracle : public Oracle {
 public:
  std::string name() const override { return "deterministic-share"; }
  bool AppliesTo(const sim::CampaignCell& cell) const override;
  OraclePrediction Predict(const sim::CampaignCell& cell,
                           const core::FairnessSpec& fairness,
                           std::uint64_t steps) const override;
};

/// Chain-dynamics "selfish" cells with alpha <= 0.5: the Eyal–Sirer
/// closed-form revenue share R(alpha, gamma) pins E[λ] of the selfish
/// kernel inside a ±O(1/n) finite-horizon band (mean_lower AND mean_upper,
/// one one-sided drift check per side).  The band, not an exact mean
/// claim, because R is the stationary revenue while the simulated horizon
/// is finite: the end-of-horizon lead settle biases λ by at most a few
/// blocks, i.e. O(1/n) on the λ scale.
class SelfishMiningRevenueOracle : public Oracle {
 public:
  std::string name() const override { return "selfish-revenue"; }
  bool AppliesTo(const sim::CampaignCell& cell) const override;
  OraclePrediction Predict(const sim::CampaignCell& cell,
                           const core::FairnessSpec& fairness,
                           std::uint64_t steps) const override;
};

/// Chain-dynamics "forkrace" cells.  At delay = 0 the model collapses to
/// iid proportional discovery, so K ~ Binomial(n, a) EXACTLY — the full
/// binomial battery (pmf, moments, exact unfair probability, Hoeffding
/// bound) plus exact zero-orphan claims.  For delay > 0: race resolution
/// favours the majority side, pinning the side of a that E[λ] lies on
/// (exactly 1/2 at a = 1/2 by symmetry), and the renewal closed forms
/// ρ = a(1-e^{-(1-a)d}) + (1-a)(1-e^{-ad}), orphan rate ρ/(1+ρ), reorg
/// depth 1/(1-ρ) bound the chain observables within tolerance.
class ForkRaceOracle : public Oracle {
 public:
  std::string name() const override { return "forkrace-renewal"; }
  bool AppliesTo(const sim::CampaignCell& cell) const override;
  OraclePrediction Predict(const sim::CampaignCell& cell,
                           const core::FairnessSpec& fairness,
                           std::uint64_t steps) const override;
};

/// The default oracle catalogue, in match order (first AppliesTo wins).
/// Returns pointers to function-local statics; never null entries.
const std::vector<const Oracle*>& DefaultOracles();

/// The tracked miner's initial resource share for `cell`, computed exactly
/// as the Monte Carlo reduction computes it (stakes[0] / Σ stakes) so
/// oracle claims about a match the engine's own normalisation.
double TrackedInitialShare(const sim::CampaignCell& cell);

}  // namespace fairchain::verify

#endif  // FAIRCHAIN_VERIFY_ORACLE_HPP_
