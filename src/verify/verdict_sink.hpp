// Streaming sinks for verification verdicts.
//
// VerifyCampaign flattens every cell's CellVerdict into VerdictRows (one
// row per check, tidy-data style, same grid-coordinate prefix as the
// campaign CampaignRow schema) and streams them in ascending (cell, check)
// order — deterministic for any thread count, like the campaign sinks.
// The column schema is append-only, mirroring the CampaignRow contract.

#ifndef FAIRCHAIN_VERIFY_VERDICT_SINK_HPP_
#define FAIRCHAIN_VERIFY_VERDICT_SINK_HPP_

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/scenario_spec.hpp"
#include "verify/statistical_judge.hpp"

namespace fairchain::verify {

/// One acceptance check of one campaign cell, fully denormalised.
struct VerdictRow {
  std::string scenario;
  std::size_t cell = 0;
  std::string protocol;
  std::size_t miners = 2;
  std::size_t whales = 1;
  double a = 0.0;
  double w = 0.0;
  double v = 0.0;
  std::uint32_t shards = 0;
  std::uint64_t withhold = 0;
  std::string oracle;  ///< producing oracle ("none" when sanity-only)
  std::string check;   ///< "sanity", "mean", "distribution", ...
  double statistic = 0.0;
  double p_value = 0.0;    ///< NaN for structural checks
  double threshold = 0.0;  ///< Bonferroni-corrected p-value threshold
  bool passed = true;
  std::string detail;  ///< failure context; may contain commas/quotes
};

/// Abstract streaming consumer of verdict rows.
class VerdictSink {
 public:
  virtual ~VerdictSink() = default;

  /// Called once before any row.
  virtual void BeginVerification(const sim::ScenarioSpec& spec) {
    (void)spec;
  }

  /// Called once per row, ascending (cell, check) order.
  virtual void WriteRow(const VerdictRow& row) = 0;

  /// Called once after the last row.
  virtual void EndVerification() {}
};

/// CSV with the stable verdict column schema (Header()); free-text fields
/// are RFC-4180 escaped, non-finite p-values render via FormatDouble
/// ("nan").
class VerdictCsvSink : public VerdictSink {
 public:
  explicit VerdictCsvSink(std::ostream& out) : out_(out) {}

  /// The exact header line (no newline); tests pin the schema against it.
  static const std::string& Header();

  void BeginVerification(const sim::ScenarioSpec& spec) override;
  void WriteRow(const VerdictRow& row) override;
  void EndVerification() override;

 private:
  std::ostream& out_;
};

/// One JSON object per line; strings escaped, NaN p-values emitted as null.
class VerdictJsonlSink : public VerdictSink {
 public:
  explicit VerdictJsonlSink(std::ostream& out) : out_(out) {}

  void WriteRow(const VerdictRow& row) override;
  void EndVerification() override;

 private:
  std::ostream& out_;
};

/// Collects per-cell outcomes and prints an aligned summary table (one row
/// per cell) at EndVerification — the human-facing view the CLI shows.
class VerdictSummarySink : public VerdictSink {
 public:
  /// `emit_basename` feeds Table::Emit (stdout + FAIRCHAIN_CSV_DIR copy).
  explicit VerdictSummarySink(std::string emit_basename)
      : emit_basename_(std::move(emit_basename)) {}

  void BeginVerification(const sim::ScenarioSpec& spec) override;
  void WriteRow(const VerdictRow& row) override;
  void EndVerification() override;

 private:
  struct CellSummary {
    std::size_t cell = 0;
    std::string protocol;
    std::string oracle;
    std::size_t checks = 0;
    std::size_t failures = 0;
    bool has_p = false;  ///< any finite p-value seen (else "min p" is "-")
    double min_p = 1.0;  ///< smallest finite p-value seen
    std::string failed_checks;
  };

  std::string emit_basename_;
  std::string title_;
  std::vector<CellSummary> cells_;
};

/// The standard verdict sink trio: a stdout summary plus optional
/// streaming CSV and JSONL file sinks (mirrors sim::CampaignFileSinks).
class VerdictFileSinks {
 public:
  explicit VerdictFileSinks(const std::string& scenario_name);

  /// Opens the file sinks; returns false — leaving both detached — when
  /// either path cannot be opened for writing.
  bool OpenFiles(const std::string& csv_path, const std::string& jsonl_path);

  /// The attached sinks, ready to pass to VerifyCampaign.
  std::vector<VerdictSink*> sinks();

 private:
  VerdictSummarySink summary_;
  std::ofstream csv_file_;
  std::ofstream jsonl_file_;
  std::unique_ptr<VerdictCsvSink> csv_;
  std::unique_ptr<VerdictJsonlSink> jsonl_;
};

}  // namespace fairchain::verify

#endif  // FAIRCHAIN_VERIFY_VERDICT_SINK_HPP_
