#include "verify/statistical_judge.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/population.hpp"
#include "math/ks_test.hpp"
#include "math/special.hpp"

namespace fairchain::verify {

namespace {

std::string Num(double value) { return sim::FormatDouble(value); }

CheckResult StructuralPass(const std::string& check, double statistic) {
  CheckResult result;
  result.check = check;
  result.statistic = statistic;
  result.passed = true;
  return result;
}

CheckResult StructuralFail(const std::string& check, double statistic,
                           std::string detail) {
  CheckResult result;
  result.check = check;
  result.statistic = statistic;
  result.passed = false;
  result.detail = std::move(detail);
  return result;
}

}  // namespace

double JudgeConfig::Threshold() const {
  return family_alpha / static_cast<double>(std::max<std::size_t>(1,
                                                                  comparisons));
}

void JudgeConfig::Validate() const {
  if (!(family_alpha > 0.0) || family_alpha > 1.0) {
    throw std::invalid_argument(
        "JudgeConfig: family_alpha must lie in (0, 1]");
  }
  if (!(deterministic_tolerance > 0.0) || !(lattice_tolerance > 0.0)) {
    throw std::invalid_argument("JudgeConfig: tolerances must be > 0");
  }
  if (!(min_expected_cell > 0.0)) {
    throw std::invalid_argument("JudgeConfig: min_expected_cell must be > 0");
  }
}

std::size_t CellVerdict::Failures() const {
  std::size_t failures = 0;
  for (const CheckResult& check : checks) {
    if (!check.passed) ++failures;
  }
  return failures;
}

StatisticalJudge::StatisticalJudge(JudgeConfig config) : config_(config) {
  config_.Validate();
}

double StatisticalJudge::NormalTwoSidedP(double z) {
  return std::clamp(2.0 * (1.0 - math::NormalCdf(std::fabs(z))), 0.0, 1.0);
}

double StatisticalJudge::BinomialTwoSidedP(std::uint64_t n,
                                           std::uint64_t successes,
                                           double p0) {
  if (p0 <= 0.0) return successes == 0 ? 1.0 : 0.0;
  if (p0 >= 1.0) return successes == n ? 1.0 : 0.0;
  const double lower = math::BinomialCdf(n, successes, p0);
  const double upper =
      successes == 0 ? 1.0 : 1.0 - math::BinomialCdf(n, successes - 1, p0);
  return std::clamp(2.0 * std::min(lower, upper), 0.0, 1.0);
}

CellVerdict StatisticalJudge::Judge(
    const sim::CampaignCell& cell, const OraclePrediction& prediction,
    const core::SimulationResult& result) const {
  CellVerdict verdict;
  verdict.cell = cell;
  verdict.oracle = prediction.oracle;

  const std::vector<double>& lambdas = result.final_lambdas;
  const auto replications = static_cast<double>(lambdas.size());
  const double threshold = config_.Threshold();

  auto statistical = [&](const std::string& check, double statistic,
                         double p_value, const std::string& context) {
    CheckResult check_result;
    check_result.check = check;
    check_result.statistic = statistic;
    check_result.p_value = p_value;
    check_result.passed = p_value >= threshold;
    if (!check_result.passed) {
      check_result.detail = context + " (p=" + Num(p_value) +
                            " < threshold=" + Num(threshold) + ")";
    }
    verdict.checks.push_back(std::move(check_result));
  };

  // --- sanity: structural invariants every cell must satisfy -------------
  {
    std::ostringstream problems;
    if (lambdas.empty()) {
      problems << "no replication-level samples; ";
    }
    if (lambdas.size() != result.config.replications) {
      problems << "sample count " << lambdas.size() << " != replications "
               << result.config.replications << "; ";
    }
    for (const double lambda : lambdas) {
      if (!std::isfinite(lambda) || lambda < -1e-12 || lambda > 1.0 + 1e-12) {
        problems << "lambda " << Num(lambda) << " outside [0, 1]; ";
        break;
      }
    }
    std::uint64_t previous_step = 0;
    for (const core::CheckpointStats& stats : result.checkpoints) {
      if (stats.step <= previous_step) {
        problems << "checkpoint steps not strictly ascending; ";
        break;
      }
      previous_step = stats.step;
      if (!(stats.p05 <= stats.p25 && stats.p25 <= stats.median &&
            stats.median <= stats.p75 && stats.p75 <= stats.p95)) {
        problems << "quantiles out of order at step " << stats.step << "; ";
        break;
      }
      if (stats.mean < stats.min - 1e-12 || stats.mean > stats.max + 1e-12) {
        problems << "mean outside [min, max] at step " << stats.step << "; ";
        break;
      }
      if (stats.unfair_probability < 0.0 || stats.unfair_probability > 1.0) {
        problems << "unfair probability outside [0, 1]; ";
        break;
      }
      // Chain observables: NaN (incentive cells) is fine; recorded values
      // must satisfy the definitional ranges — an orphan rate is a
      // fraction of block events, depths are non-negative, and a maximum
      // dominates its mean.
      if (!std::isnan(stats.orphan_rate)) {
        if (stats.orphan_rate < 0.0 || stats.orphan_rate > 1.0) {
          problems << "orphan rate " << Num(stats.orphan_rate)
                   << " outside [0, 1] at step " << stats.step << "; ";
          break;
        }
        if (stats.reorg_depth_mean < 0.0 ||
            stats.reorg_depth_max < stats.reorg_depth_mean - 1e-12) {
          problems << "reorg depths inconsistent (mean "
                   << Num(stats.reorg_depth_mean) << ", max "
                   << Num(stats.reorg_depth_max) << ") at step "
                   << stats.step << "; ";
          break;
        }
      }
      // Population concentration metrics: NaN (disabled) is fine; recorded
      // values must satisfy the definitional ranges — Gini in [0, 1), HHI
      // in [1/m, 1], Nakamoto in [1, m], and the top decile's share at
      // least its population fraction (it holds the largest wealths).
      if (!std::isnan(stats.gini)) {
        const double m = static_cast<double>(cell.miners);
        const std::size_t decile = core::TopDecileCount(cell.miners);
        const double decile_fraction = static_cast<double>(decile) / m;
        if (stats.gini < 0.0 || stats.gini >= 1.0) {
          problems << "gini " << Num(stats.gini) << " outside [0, 1) at step "
                   << stats.step << "; ";
          break;
        }
        if (stats.hhi < 1.0 / m - 1e-12 || stats.hhi > 1.0 + 1e-12) {
          problems << "hhi " << Num(stats.hhi) << " outside [1/m, 1] at step "
                   << stats.step << "; ";
          break;
        }
        if (stats.nakamoto < 1.0 || stats.nakamoto > m) {
          problems << "nakamoto " << Num(stats.nakamoto)
                   << " outside [1, m] at step " << stats.step << "; ";
          break;
        }
        if (stats.top_decile_share < decile_fraction - 1e-9 ||
            stats.top_decile_share > 1.0 + 1e-12) {
          problems << "top-decile share " << Num(stats.top_decile_share)
                   << " outside [" << Num(decile_fraction)
                   << ", 1] at step " << stats.step << "; ";
          break;
        }
      }
    }
    const std::string detail = problems.str();
    verdict.checks.push_back(detail.empty()
                                 ? StructuralPass("sanity", 0.0)
                                 : StructuralFail("sanity", 1.0, detail));
  }

  const core::CheckpointStats* final_stats =
      result.checkpoints.empty() ? nullptr : &result.checkpoints.back();

  // --- deterministic trajectory ------------------------------------------
  if (prediction.deterministic_lambda && !lambdas.empty()) {
    const double expected = *prediction.deterministic_lambda;
    double worst = 0.0;
    for (const double lambda : lambdas) {
      worst = std::max(worst, std::fabs(lambda - expected));
    }
    verdict.checks.push_back(
        worst <= config_.deterministic_tolerance
            ? StructuralPass("deterministic", worst)
            : StructuralFail("deterministic", worst,
                             "max |lambda - " + Num(expected) + "| = " +
                                 Num(worst) + " exceeds tolerance " +
                                 Num(config_.deterministic_tolerance)));
  }

  // --- mean (expectational fairness) -------------------------------------
  if (prediction.mean && final_stats != nullptr && !lambdas.empty()) {
    const double se = final_stats->std_dev / std::sqrt(replications);
    const double difference = final_stats->mean - *prediction.mean;
    if (se == 0.0) {
      verdict.checks.push_back(
          std::fabs(difference) <= config_.deterministic_tolerance
              ? StructuralPass("mean", difference)
              : StructuralFail("mean", difference,
                               "zero-variance sample mean " +
                                   Num(final_stats->mean) + " != exact " +
                                   Num(*prediction.mean)));
    } else {
      const double z = difference / se;
      statistical("mean", z, NormalTwoSidedP(z),
                  "sample mean " + Num(final_stats->mean) + " vs exact " +
                      Num(*prediction.mean) + ", z=" + Num(z));
    }
  }

  // --- one-sided drift (one check per claimed side; a band claims both) ---
  if ((prediction.mean_upper || prediction.mean_lower) &&
      final_stats != nullptr && !lambdas.empty()) {
    const auto drift = [&](double bound, bool upper) {
      const double se = final_stats->std_dev / std::sqrt(replications);
      // Signed excess beyond the claimed side; positive = violating.
      const double excess = upper ? final_stats->mean - bound
                                  : bound - final_stats->mean;
      if (se == 0.0) {
        verdict.checks.push_back(
            excess <= config_.deterministic_tolerance
                ? StructuralPass("mean-drift", excess)
                : StructuralFail("mean-drift", excess,
                                 "zero-variance mean on wrong side of " +
                                     Num(bound)));
      } else {
        const double z = excess / se;
        const double p = std::clamp(1.0 - math::NormalCdf(z), 0.0, 1.0);
        statistical("mean-drift", z, p,
                    "mean " + Num(final_stats->mean) + " must lie " +
                        (upper ? "below " : "above ") + Num(bound) +
                        ", one-sided z=" + Num(z));
      }
    };
    if (prediction.mean_upper) drift(*prediction.mean_upper, true);
    if (prediction.mean_lower) drift(*prediction.mean_lower, false);
  }

  // --- variance (equitability) -------------------------------------------
  if (prediction.variance && final_stats != nullptr && lambdas.size() >= 2) {
    const double mean = final_stats->mean;
    const double s2 = final_stats->std_dev * final_stats->std_dev;
    double m4 = 0.0;
    for (const double lambda : lambdas) {
      const double centered = lambda - mean;
      m4 += centered * centered * centered * centered;
    }
    m4 /= replications;
    // Asymptotic SE of the unbiased sample variance:
    //   sqrt((m4 - s⁴ (R-3)/(R-1)) / R).
    const double se = std::sqrt(
        std::max(0.0, m4 - s2 * s2 * (replications - 3.0) /
                               (replications - 1.0)) /
        replications);
    const double difference = s2 - *prediction.variance;
    if (se == 0.0) {
      verdict.checks.push_back(
          std::fabs(difference) <= config_.deterministic_tolerance
              ? StructuralPass("variance", difference)
              : StructuralFail("variance", difference,
                               "zero-spread sample variance " + Num(s2) +
                                   " != exact " + Num(*prediction.variance)));
    } else {
      const double z = difference / se;
      statistical("variance", z, NormalTwoSidedP(z),
                  "sample variance " + Num(s2) + " vs exact " +
                      Num(*prediction.variance) + ", z=" + Num(z));
    }
  }

  // --- distribution (exact law of the block count) ------------------------
  if (!prediction.pmf.empty() && !lambdas.empty()) {
    const auto steps = static_cast<double>(result.config.steps);
    std::vector<std::uint64_t> counts(prediction.pmf.size(), 0);
    bool on_lattice = true;
    double worst_offset = 0.0;
    for (const double lambda : lambdas) {
      const double scaled = lambda * steps;
      const auto k = static_cast<std::int64_t>(std::llround(scaled));
      const double offset = std::fabs(scaled - static_cast<double>(k));
      worst_offset = std::max(worst_offset, offset);
      if (k < 0 || static_cast<std::size_t>(k) >= counts.size() ||
          offset > config_.lattice_tolerance) {
        on_lattice = false;
        break;
      }
      ++counts[static_cast<std::size_t>(k)];
    }
    if (!on_lattice) {
      verdict.checks.push_back(StructuralFail(
          "distribution", worst_offset,
          "samples do not sit on the k/n lattice (worst offset " +
              Num(worst_offset) + ") — oracle misapplied"));
    } else {
      const math::ChiSquareResult gof = math::ChiSquareGofTest(
          counts, prediction.pmf, config_.min_expected_cell);
      statistical("distribution", gof.statistic, gof.p_value,
                  "chi-square GOF against the exact law, chi2=" +
                      Num(gof.statistic) + " df=" +
                      std::to_string(gof.degrees));
    }
  }

  // --- unfair probability: exact value and analytic upper bound -----------
  if ((prediction.unfair_probability || prediction.unfair_upper_bound) &&
      !lambdas.empty()) {
    const double a = result.initial_share;
    const double fair_low = result.spec.FairLow(a);
    const double fair_high = result.spec.FairHigh(a);
    std::uint64_t outside = 0;
    for (const double lambda : lambdas) {
      if (lambda < fair_low || lambda > fair_high) ++outside;
    }
    const double proportion =
        static_cast<double>(outside) / replications;
    const auto count = static_cast<std::uint64_t>(lambdas.size());

    if (prediction.unfair_probability) {
      const double p_low = *prediction.unfair_probability;
      const double p_high =
          std::min(1.0, p_low + prediction.unfair_boundary_mass);
      // Composite null: the truth lies in [p_low, p_high] (boundary lattice
      // points may be counted either way by the engine's FP arithmetic).
      double p_value = 1.0;
      if (proportion < p_low) {
        p_value = BinomialTwoSidedP(count, outside, p_low);
      } else if (proportion > p_high) {
        p_value = BinomialTwoSidedP(count, outside, p_high);
      }
      statistical("unfair-exact", proportion, p_value,
                  "observed unfair proportion " + Num(proportion) +
                      " vs exact " + Num(p_low) +
                      (p_high > p_low ? ".." + Num(p_high) : ""));
    }

    if (prediction.unfair_upper_bound) {
      const double bound = *prediction.unfair_upper_bound;
      if (bound >= 1.0) {
        verdict.checks.push_back(StructuralPass("unfair-bound", proportion));
      } else {
        // One-sided: H0 is "true unfair probability <= bound".
        const double p_value =
            outside == 0
                ? 1.0
                : std::clamp(1.0 - math::BinomialCdf(count, outside - 1,
                                                     std::max(0.0, bound)),
                             0.0, 1.0);
        statistical("unfair-bound", proportion, p_value,
                    "observed unfair proportion " + Num(proportion) +
                        " exceeds analytic bound " + Num(bound));
      }
    }
  }

  // --- chain observables: structural tolerance comparisons ----------------
  if (final_stats != nullptr) {
    const auto tolerance_check = [&](const std::string& check,
                                     double observed, double expected,
                                     double tolerance) {
      if (std::isnan(observed)) {
        verdict.checks.push_back(StructuralFail(
            check, 0.0,
            "oracle claims a chain observable but the cell recorded none "
            "(expected " +
                Num(expected) + ") — oracle misapplied"));
        return;
      }
      const double error = std::fabs(observed - expected);
      verdict.checks.push_back(
          error <= tolerance
              ? StructuralPass(check, error)
              : StructuralFail(check, error,
                               "observed " + Num(observed) + " vs expected " +
                                   Num(expected) + ", |error| = " +
                                   Num(error) + " exceeds tolerance " +
                                   Num(tolerance)));
    };
    if (prediction.orphan_rate_expected) {
      tolerance_check("orphan-rate", final_stats->orphan_rate,
                      *prediction.orphan_rate_expected,
                      prediction.orphan_rate_tolerance);
    }
    if (prediction.reorg_depth_expected) {
      tolerance_check("reorg-depth", final_stats->reorg_depth_mean,
                      *prediction.reorg_depth_expected,
                      prediction.reorg_depth_tolerance);
    }
  }

  for (const CheckResult& check : verdict.checks) {
    if (!check.passed) {
      verdict.passed = false;
      break;
    }
  }
  return verdict;
}

}  // namespace fairchain::verify
