// StatisticalJudge: turns an OraclePrediction plus replication-level
// samples into deterministic accept/reject verdicts.
//
// Every verdict is a pure function of the (seeded) simulation output, so a
// fixed campaign seed gives byte-identical verdicts at any thread count.
// Statistical checks produce honest p-values and are compared against a
// Bonferroni-corrected threshold (family_alpha split across every
// stochastic comparison in the campaign grid), so a full `verify --all`
// run false-alarms with probability ~family_alpha per campaign, not per
// cell.  Structural checks (lattice membership, quantile ordering,
// deterministic trajectories) use exact tolerances and cannot false-alarm.

#ifndef FAIRCHAIN_VERIFY_STATISTICAL_JUDGE_HPP_
#define FAIRCHAIN_VERIFY_STATISTICAL_JUDGE_HPP_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/monte_carlo.hpp"
#include "sim/scenario_spec.hpp"
#include "verify/oracle.hpp"

namespace fairchain::verify {

/// Knobs of the acceptance tests.
struct JudgeConfig {
  /// Family-wise false-alarm probability budget for one campaign.
  double family_alpha = 1e-3;
  /// Bonferroni denominator: total stochastic comparisons in the campaign
  /// (VerificationPlan::StochasticComparisons()).  1 = no correction.
  std::size_t comparisons = 1;
  /// Absolute tolerance for deterministic-trajectory and exact-value
  /// checks.
  double deterministic_tolerance = 1e-9;
  /// Maximum |n·λ - round(n·λ)| before the lattice (block-count) check
  /// declares the samples off-lattice, i.e. the oracle was misapplied.
  double lattice_tolerance = 1e-6;
  /// Chi-square pooling floor (cells with smaller expected counts merge).
  double min_expected_cell = 5.0;

  /// The per-comparison p-value threshold: family_alpha / comparisons.
  double Threshold() const;

  /// Throws std::invalid_argument on a non-positive alpha or tolerance.
  void Validate() const;
};

/// One acceptance test's outcome.
struct CheckResult {
  std::string check;       ///< "mean", "variance", "distribution", ...
  double statistic = 0.0;  ///< test statistic (z, chi², D, proportion, ...)
  /// p-value under the oracle's null; NaN for structural (non-statistical)
  /// checks, whose pass/fail is tolerance-based.
  double p_value = std::numeric_limits<double>::quiet_NaN();
  bool passed = true;
  std::string detail;  ///< human-readable context (filled on failure)
};

/// All checks for one campaign cell.
struct CellVerdict {
  sim::CampaignCell cell;
  std::string oracle;  ///< producing oracle's name ("" = sanity only)
  std::vector<CheckResult> checks;
  bool passed = true;

  /// Number of failed checks.
  std::size_t Failures() const;
};

/// The judge.  Immutable after construction; Judge is re-entrant.
class StatisticalJudge {
 public:
  explicit StatisticalJudge(JudgeConfig config = {});

  /// Runs every applicable check of `prediction` against the cell's
  /// replication-level samples (`result.final_lambdas`) and summary
  /// statistics.  Always includes the structural sanity checks, so every
  /// cell — even one no oracle understands — gets a verdict.
  CellVerdict Judge(const sim::CampaignCell& cell,
                    const OraclePrediction& prediction,
                    const core::SimulationResult& result) const;

  const JudgeConfig& config() const { return config_; }

  /// Two-sided p-value of a standard-normal statistic.
  static double NormalTwoSidedP(double z);

  /// Exact two-sided binomial test: probability under Bin(n, p0) of an
  /// outcome at least as extreme as `successes` (doubled one-tail, clamped
  /// to [0, 1]).
  static double BinomialTwoSidedP(std::uint64_t n, std::uint64_t successes,
                                  double p0);

 private:
  JudgeConfig config_;
};

}  // namespace fairchain::verify

#endif  // FAIRCHAIN_VERIFY_STATISTICAL_JUDGE_HPP_
