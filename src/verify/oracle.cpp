#include "verify/oracle.hpp"

#include <cmath>
#include <stdexcept>

#include "core/bounds.hpp"
#include "core/polya.hpp"
#include "math/special.hpp"

namespace fairchain::verify {

namespace {

// Absolute slack (on the λ scale) within which a lattice point k/n is
// considered to sit ON a fair-area edge.  The engine accumulates incomes in
// floating point, so a replication's λ differs from the exact k/n by
// ~1e-13; a lattice point this close to an edge can be counted on either
// side by the engine, and the oracle must not claim it for one side.
constexpr double kBoundaryTolerance = 1e-9;

// Exact unfair probability of the discrete law `pmf` over k/n under the
// engine's own counting rule (λ < fair_low || λ > fair_high, evaluated in
// double), with FP-ambiguous edge points reported separately.
void ExactUnfairFromPmf(const std::vector<double>& pmf, std::uint64_t n,
                        double a, const core::FairnessSpec& fairness,
                        OraclePrediction& prediction) {
  const double fair_low = fairness.FairLow(a);
  const double fair_high = fairness.FairHigh(a);
  double outside = 0.0;
  double boundary = 0.0;
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    const double lambda =
        static_cast<double>(k) / static_cast<double>(n);
    if (std::fabs(lambda - fair_low) <= kBoundaryTolerance ||
        std::fabs(lambda - fair_high) <= kBoundaryTolerance) {
      boundary += pmf[k];
    } else if (lambda < fair_low || lambda > fair_high) {
      outside += pmf[k];
    }
  }
  prediction.unfair_probability = outside;
  prediction.unfair_boundary_mass = boundary;
}

}  // namespace

std::size_t OraclePrediction::StochasticComparisons() const {
  // Deterministic claims are checked by exact tolerance, never by a
  // hypothesis test, so they cannot contribute false alarms.
  if (deterministic_lambda) return 0;
  std::size_t count = 0;
  if (mean) ++count;
  if (mean_upper || mean_lower) ++count;
  if (variance) ++count;
  if (!pmf.empty()) ++count;
  if (unfair_probability) ++count;
  // A vacuous bound (>= 1) is demoted to a structural pass by the judge,
  // so it must not inflate the Bonferroni denominator.
  if (unfair_upper_bound && *unfair_upper_bound < 1.0) ++count;
  return count;
}

double TrackedInitialShare(const sim::CampaignCell& cell) {
  const std::vector<double> stakes = cell.Stakes();
  double total = 0.0;
  for (const double s : stakes) total += s;
  return stakes[0] / total;
}

// ---------------------------------------------------------------------------
// BinomialProportionalityOracle (PoW / NEO, Section 4.2)
// ---------------------------------------------------------------------------

bool BinomialProportionalityOracle::AppliesTo(
    const sim::CampaignCell& cell) const {
  return cell.protocol == "pow" || cell.protocol == "neo";
}

OraclePrediction BinomialProportionalityOracle::Predict(
    const sim::CampaignCell& cell, const core::FairnessSpec& fairness,
    std::uint64_t steps) const {
  const double a = TrackedInitialShare(cell);
  OraclePrediction prediction;
  prediction.mean = a;
  prediction.variance = a * (1.0 - a) / static_cast<double>(steps);
  prediction.pmf.resize(static_cast<std::size_t>(steps) + 1);
  for (std::uint64_t k = 0; k <= steps; ++k) {
    prediction.pmf[static_cast<std::size_t>(k)] =
        math::BinomialPmf(steps, k, a);
  }
  ExactUnfairFromPmf(prediction.pmf, steps, a, fairness, prediction);
  prediction.unfair_upper_bound =
      core::PowUnfairUpperBound(steps, a, fairness.epsilon);
  return prediction;
}

// ---------------------------------------------------------------------------
// PolyaBetaLimitOracle (ML-PoS / FSL-PoS / degenerate C-PoS, Section 4.3)
// ---------------------------------------------------------------------------

bool PolyaBetaLimitOracle::AppliesTo(const sim::CampaignCell& cell) const {
  if (cell.withhold != 0) return false;
  if (cell.protocol == "mlpos" || cell.protocol == "fslpos") return true;
  return cell.protocol == "cpos" && cell.v == 0.0 && cell.shards == 1;
}

OraclePrediction PolyaBetaLimitOracle::Predict(
    const sim::CampaignCell& cell, const core::FairnessSpec& fairness,
    std::uint64_t steps) const {
  const std::vector<double> stakes = cell.Stakes();
  double total = 0.0;
  for (const double s : stakes) total += s;
  const double s0 = stakes[0];
  // Aggregating the minnows into one color is exact: selection is
  // proportional to mass and every win reinforces by the same w.
  const core::BetaParams limit =
      core::PolyaUrn::TwoColorLimit(s0, total - s0, cell.w);
  const double alpha = limit.alpha;
  const double beta = limit.beta;
  const double a = s0 / total;
  const double n = static_cast<double>(steps);

  OraclePrediction prediction;
  prediction.mean = a;
  // Var[K/n] for K ~ BetaBin(n, α, β):  αβ(α+β+n) / (n (α+β)² (α+β+1)).
  // This IS the equitability claim (Fanti et al.): dividing by a(1-a)
  // gives (α+β+n)/(n(α+β+1)), which for α+β = 1/w is (1/n + w)/(1 + w)
  // -> w/(1+w) = the closed-form MlPosLimitNormalisedVariance as
  // n -> infinity (pinned by oracle_test).
  const double ab = alpha + beta;
  prediction.variance = alpha * beta * (ab + n) / (n * ab * ab * (ab + 1.0));
  prediction.pmf.resize(static_cast<std::size_t>(steps) + 1);
  for (std::uint64_t k = 0; k <= steps; ++k) {
    prediction.pmf[static_cast<std::size_t>(k)] =
        math::BetaBinomialPmf(steps, k, alpha, beta);
  }
  ExactUnfairFromPmf(prediction.pmf, steps, a, fairness, prediction);
  prediction.unfair_upper_bound =
      core::MlPosUnfairUpperBound(steps, cell.w / total, a, fairness.epsilon);
  return prediction;
}

// ---------------------------------------------------------------------------
// CPosMartingaleOracle (Theorem 4.10)
// ---------------------------------------------------------------------------

bool CPosMartingaleOracle::AppliesTo(const sim::CampaignCell& cell) const {
  return cell.protocol == "cpos" && cell.withhold == 0;
}

OraclePrediction CPosMartingaleOracle::Predict(
    const sim::CampaignCell& cell, const core::FairnessSpec& fairness,
    std::uint64_t steps) const {
  const double a = TrackedInitialShare(cell);
  OraclePrediction prediction;
  // Each epoch's expected reward is (w+v) * (stake share), so the share is
  // a martingale and E[λ_n] = a exactly for every n.
  prediction.mean = a;
  prediction.unfair_upper_bound = core::CPosUnfairUpperBound(
      steps, cell.w, cell.v, cell.shards, a, fairness.epsilon);
  return prediction;
}

// ---------------------------------------------------------------------------
// SlPosDriftOracle (Theorem 4.9)
// ---------------------------------------------------------------------------

bool SlPosDriftOracle::AppliesTo(const sim::CampaignCell& cell) const {
  return cell.protocol == "slpos" && cell.miners == 2 && cell.withhold == 0;
}

OraclePrediction SlPosDriftOracle::Predict(const sim::CampaignCell& cell,
                                           const core::FairnessSpec& fairness,
                                           std::uint64_t steps) const {
  (void)fairness;
  (void)steps;
  const double a = TrackedInitialShare(cell);
  OraclePrediction prediction;
  if (std::fabs(a - 0.5) < 1e-12) {
    // Perfect symmetry: the two miners are exchangeable, so E[λ] = 1/2.
    prediction.mean = 0.5;
  } else if (a < 0.5) {
    // The uniform-deadline race favours the richer miner beyond
    // proportionality (win probability a/(2(1-a)) < a), so the poorer
    // miner's expected reward fraction sits below a at every horizon.
    prediction.mean_upper = a;
  } else {
    prediction.mean_lower = a;
  }
  return prediction;
}

// ---------------------------------------------------------------------------
// DeterministicShareOracle (Algorand / EOS, Section 6.4)
// ---------------------------------------------------------------------------

bool DeterministicShareOracle::AppliesTo(const sim::CampaignCell& cell) const {
  return (cell.protocol == "algorand" || cell.protocol == "eos") &&
         cell.withhold == 0;
}

OraclePrediction DeterministicShareOracle::Predict(
    const sim::CampaignCell& cell, const core::FairnessSpec& fairness,
    std::uint64_t steps) const {
  (void)fairness;
  OraclePrediction prediction;
  if (cell.protocol == "algorand") {
    // Proportional inflation leaves shares invariant: λ_n = a for all n.
    prediction.deterministic_lambda = TrackedInitialShare(cell);
    return prediction;
  }
  // EOS: integrate the deterministic round recurrence.  Every round each of
  // the m delegates receives w/m plus v * (round-start stake share); both
  // credit income and compound into stake.
  std::vector<double> stakes = cell.Stakes();
  const std::size_t m = stakes.size();
  std::vector<double> income(m, 0.0);
  const double constant_part = cell.w / static_cast<double>(m);
  for (std::uint64_t step = 0; step < steps; ++step) {
    double total = 0.0;
    for (const double s : stakes) total += s;
    for (std::size_t i = 0; i < m; ++i) {
      double credit = constant_part;
      if (cell.v > 0.0 && stakes[i] > 0.0) {
        credit += cell.v * (stakes[i] / total);
      }
      income[i] += credit;
      stakes[i] += credit;
    }
  }
  double total_income = 0.0;
  for (const double r : income) total_income += r;
  prediction.deterministic_lambda = income[0] / total_income;
  return prediction;
}

// ---------------------------------------------------------------------------
// Catalogue
// ---------------------------------------------------------------------------

const std::vector<const Oracle*>& DefaultOracles() {
  static const DeterministicShareOracle deterministic;
  static const BinomialProportionalityOracle binomial;
  static const PolyaBetaLimitOracle polya;
  static const CPosMartingaleOracle cpos;
  static const SlPosDriftOracle slpos;
  static const std::vector<const Oracle*> oracles = {
      &deterministic, &binomial, &polya, &cpos, &slpos};
  return oracles;
}

}  // namespace fairchain::verify
