#include "verify/oracle.hpp"

#include <cmath>
#include <stdexcept>

#include "core/bounds.hpp"
#include "core/polya.hpp"
#include "core/selfish_mining.hpp"
#include "math/special.hpp"

namespace fairchain::verify {

namespace {

// Absolute slack (on the λ scale) within which a lattice point k/n is
// considered to sit ON a fair-area edge.  The engine accumulates incomes in
// floating point, so a replication's λ differs from the exact k/n by
// ~1e-13; a lattice point this close to an edge can be counted on either
// side by the engine, and the oracle must not claim it for one side.
constexpr double kBoundaryTolerance = 1e-9;

// Exact unfair probability of the discrete law `pmf` over k/n under the
// engine's own counting rule (λ < fair_low || λ > fair_high, evaluated in
// double), with FP-ambiguous edge points reported separately.
void ExactUnfairFromPmf(const std::vector<double>& pmf, std::uint64_t n,
                        double a, const core::FairnessSpec& fairness,
                        OraclePrediction& prediction) {
  const double fair_low = fairness.FairLow(a);
  const double fair_high = fairness.FairHigh(a);
  double outside = 0.0;
  double boundary = 0.0;
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    const double lambda =
        static_cast<double>(k) / static_cast<double>(n);
    if (std::fabs(lambda - fair_low) <= kBoundaryTolerance ||
        std::fabs(lambda - fair_high) <= kBoundaryTolerance) {
      boundary += pmf[k];
    } else if (lambda < fair_low || lambda > fair_high) {
      outside += pmf[k];
    }
  }
  prediction.unfair_probability = outside;
  prediction.unfair_boundary_mass = boundary;
}

}  // namespace

std::size_t OraclePrediction::StochasticComparisons() const {
  // Deterministic claims are checked by exact tolerance, never by a
  // hypothesis test, so they cannot contribute false alarms.
  if (deterministic_lambda) return 0;
  std::size_t count = 0;
  if (mean) ++count;
  // One one-sided drift test per claimed side (a two-sided band claims
  // both and contributes two comparisons).
  if (mean_upper) ++count;
  if (mean_lower) ++count;
  if (variance) ++count;
  if (!pmf.empty()) ++count;
  if (unfair_probability) ++count;
  // A vacuous bound (>= 1) is demoted to a structural pass by the judge,
  // so it must not inflate the Bonferroni denominator.
  if (unfair_upper_bound && *unfair_upper_bound < 1.0) ++count;
  return count;
}

double TrackedInitialShare(const sim::CampaignCell& cell) {
  const std::vector<double> stakes = cell.Stakes();
  double total = 0.0;
  for (const double s : stakes) total += s;
  return stakes[0] / total;
}

// ---------------------------------------------------------------------------
// BinomialProportionalityOracle (PoW / NEO, Section 4.2)
// ---------------------------------------------------------------------------

bool BinomialProportionalityOracle::AppliesTo(
    const sim::CampaignCell& cell) const {
  return cell.protocol == "pow" || cell.protocol == "neo";
}

OraclePrediction BinomialProportionalityOracle::Predict(
    const sim::CampaignCell& cell, const core::FairnessSpec& fairness,
    std::uint64_t steps) const {
  const double a = TrackedInitialShare(cell);
  OraclePrediction prediction;
  prediction.mean = a;
  prediction.variance = a * (1.0 - a) / static_cast<double>(steps);
  prediction.pmf.resize(static_cast<std::size_t>(steps) + 1);
  for (std::uint64_t k = 0; k <= steps; ++k) {
    prediction.pmf[static_cast<std::size_t>(k)] =
        math::BinomialPmf(steps, k, a);
  }
  ExactUnfairFromPmf(prediction.pmf, steps, a, fairness, prediction);
  prediction.unfair_upper_bound =
      core::PowUnfairUpperBound(steps, a, fairness.epsilon);
  return prediction;
}

// ---------------------------------------------------------------------------
// PolyaBetaLimitOracle (ML-PoS / FSL-PoS / degenerate C-PoS, Section 4.3)
// ---------------------------------------------------------------------------

bool PolyaBetaLimitOracle::AppliesTo(const sim::CampaignCell& cell) const {
  if (cell.withhold != 0) return false;
  if (cell.protocol == "mlpos" || cell.protocol == "fslpos") return true;
  return cell.protocol == "cpos" && cell.v == 0.0 && cell.shards == 1;
}

OraclePrediction PolyaBetaLimitOracle::Predict(
    const sim::CampaignCell& cell, const core::FairnessSpec& fairness,
    std::uint64_t steps) const {
  const std::vector<double> stakes = cell.Stakes();
  double total = 0.0;
  for (const double s : stakes) total += s;
  const double s0 = stakes[0];
  // Aggregating the minnows into one color is exact: selection is
  // proportional to mass and every win reinforces by the same w.
  const core::BetaParams limit =
      core::PolyaUrn::TwoColorLimit(s0, total - s0, cell.w);
  const double alpha = limit.alpha;
  const double beta = limit.beta;
  const double a = s0 / total;
  const double n = static_cast<double>(steps);

  OraclePrediction prediction;
  prediction.mean = a;
  // Var[K/n] for K ~ BetaBin(n, α, β):  αβ(α+β+n) / (n (α+β)² (α+β+1)).
  // This IS the equitability claim (Fanti et al.): dividing by a(1-a)
  // gives (α+β+n)/(n(α+β+1)), which for α+β = 1/w is (1/n + w)/(1 + w)
  // -> w/(1+w) = the closed-form MlPosLimitNormalisedVariance as
  // n -> infinity (pinned by oracle_test).
  const double ab = alpha + beta;
  prediction.variance = alpha * beta * (ab + n) / (n * ab * ab * (ab + 1.0));
  prediction.pmf.resize(static_cast<std::size_t>(steps) + 1);
  for (std::uint64_t k = 0; k <= steps; ++k) {
    prediction.pmf[static_cast<std::size_t>(k)] =
        math::BetaBinomialPmf(steps, k, alpha, beta);
  }
  ExactUnfairFromPmf(prediction.pmf, steps, a, fairness, prediction);
  prediction.unfair_upper_bound =
      core::MlPosUnfairUpperBound(steps, cell.w / total, a, fairness.epsilon);
  return prediction;
}

// ---------------------------------------------------------------------------
// CPosMartingaleOracle (Theorem 4.10)
// ---------------------------------------------------------------------------

bool CPosMartingaleOracle::AppliesTo(const sim::CampaignCell& cell) const {
  return cell.protocol == "cpos" && cell.withhold == 0;
}

OraclePrediction CPosMartingaleOracle::Predict(
    const sim::CampaignCell& cell, const core::FairnessSpec& fairness,
    std::uint64_t steps) const {
  const double a = TrackedInitialShare(cell);
  OraclePrediction prediction;
  // Each epoch's expected reward is (w+v) * (stake share), so the share is
  // a martingale and E[λ_n] = a exactly for every n.
  prediction.mean = a;
  prediction.unfair_upper_bound = core::CPosUnfairUpperBound(
      steps, cell.w, cell.v, cell.shards, a, fairness.epsilon);
  return prediction;
}

// ---------------------------------------------------------------------------
// SlPosDriftOracle (Theorem 4.9)
// ---------------------------------------------------------------------------

bool SlPosDriftOracle::AppliesTo(const sim::CampaignCell& cell) const {
  return cell.protocol == "slpos" && cell.miners == 2 && cell.withhold == 0;
}

OraclePrediction SlPosDriftOracle::Predict(const sim::CampaignCell& cell,
                                           const core::FairnessSpec& fairness,
                                           std::uint64_t steps) const {
  (void)fairness;
  (void)steps;
  const double a = TrackedInitialShare(cell);
  OraclePrediction prediction;
  if (std::fabs(a - 0.5) < 1e-12) {
    // Perfect symmetry: the two miners are exchangeable, so E[λ] = 1/2.
    prediction.mean = 0.5;
  } else if (a < 0.5) {
    // The uniform-deadline race favours the richer miner beyond
    // proportionality (win probability a/(2(1-a)) < a), so the poorer
    // miner's expected reward fraction sits below a at every horizon.
    prediction.mean_upper = a;
  } else {
    prediction.mean_lower = a;
  }
  return prediction;
}

// ---------------------------------------------------------------------------
// DeterministicShareOracle (Algorand / EOS, Section 6.4)
// ---------------------------------------------------------------------------

bool DeterministicShareOracle::AppliesTo(const sim::CampaignCell& cell) const {
  return (cell.protocol == "algorand" || cell.protocol == "eos") &&
         cell.withhold == 0;
}

OraclePrediction DeterministicShareOracle::Predict(
    const sim::CampaignCell& cell, const core::FairnessSpec& fairness,
    std::uint64_t steps) const {
  (void)fairness;
  OraclePrediction prediction;
  if (cell.protocol == "algorand") {
    // Proportional inflation leaves shares invariant: λ_n = a for all n.
    prediction.deterministic_lambda = TrackedInitialShare(cell);
    return prediction;
  }
  // EOS: integrate the deterministic round recurrence.  Every round each of
  // the m delegates receives w/m plus v * (round-start stake share); both
  // credit income and compound into stake.
  std::vector<double> stakes = cell.Stakes();
  const std::size_t m = stakes.size();
  std::vector<double> income(m, 0.0);
  const double constant_part = cell.w / static_cast<double>(m);
  for (std::uint64_t step = 0; step < steps; ++step) {
    double total = 0.0;
    for (const double s : stakes) total += s;
    for (std::size_t i = 0; i < m; ++i) {
      double credit = constant_part;
      if (cell.v > 0.0 && stakes[i] > 0.0) {
        credit += cell.v * (stakes[i] / total);
      }
      income[i] += credit;
      stakes[i] += credit;
    }
  }
  double total_income = 0.0;
  for (const double r : income) total_income += r;
  prediction.deterministic_lambda = income[0] / total_income;
  return prediction;
}

// ---------------------------------------------------------------------------
// SelfishMiningRevenueOracle (Eyal & Sirer 2014, chain family)
// ---------------------------------------------------------------------------

bool SelfishMiningRevenueOracle::AppliesTo(
    const sim::CampaignCell& cell) const {
  // The closed form only exists on (0, 0.5] (see SelfishMiningRevenue's
  // domain note); majority-pool cells run unverified by this oracle.
  return cell.chain_dynamics && cell.protocol == "selfish" && cell.a <= 0.5;
}

OraclePrediction SelfishMiningRevenueOracle::Predict(
    const sim::CampaignCell& cell, const core::FairnessSpec& fairness,
    std::uint64_t steps) const {
  (void)fairness;
  const double revenue = core::SelfishMiningRevenue(cell.a, cell.gamma);
  OraclePrediction prediction;
  // Finite-horizon band: the stationary revenue R plus/minus the
  // end-of-horizon settle bias.  One withholding cycle moves at most a few
  // blocks between the numerator and denominator, so the bias is O(1/n);
  // 6/n is a comfortably conservative cap (cross-validated by
  // tests/chain/selfish_cross_validation_test.cpp).
  const double slack = 6.0 / static_cast<double>(steps);
  prediction.mean_lower = revenue - slack;
  prediction.mean_upper = revenue + slack;
  return prediction;
}

// ---------------------------------------------------------------------------
// ForkRaceOracle (renewal closed forms, chain family)
// ---------------------------------------------------------------------------

bool ForkRaceOracle::AppliesTo(const sim::CampaignCell& cell) const {
  return cell.chain_dynamics && cell.protocol == "forkrace";
}

OraclePrediction ForkRaceOracle::Predict(const sim::CampaignCell& cell,
                                         const core::FairnessSpec& fairness,
                                         std::uint64_t steps) const {
  const double a = cell.a;
  const double n = static_cast<double>(steps);
  OraclePrediction prediction;
  if (cell.delay == 0.0) {
    // No propagation window — no forks ever: every event is an iid
    // Bernoulli(a) discovery that commits, so K ~ Binomial(n, a) EXACTLY
    // and the chain observables are identically zero.
    prediction.mean = a;
    prediction.variance = a * (1.0 - a) / n;
    prediction.pmf.resize(static_cast<std::size_t>(steps) + 1);
    for (std::uint64_t k = 0; k <= steps; ++k) {
      prediction.pmf[static_cast<std::size_t>(k)] =
          math::BinomialPmf(steps, k, a);
    }
    ExactUnfairFromPmf(prediction.pmf, steps, a, fairness, prediction);
    prediction.unfair_upper_bound =
        core::PowUnfairUpperBound(steps, a, fairness.epsilon);
    prediction.orphan_rate_expected = 0.0;
    prediction.orphan_rate_tolerance = 1e-12;
    prediction.reorg_depth_expected = 0.0;
    prediction.reorg_depth_tolerance = 1e-12;
    return prediction;
  }
  // delay > 0.  Race resolution favours the majority side (the minority's
  // extension is contested more often AND it wins the uncontested round
  // less often), so E[λ] sits on the majority's side of a; exactly 1/2 at
  // a = 1/2 by exchangeability.  The small slack absorbs the open-race
  // attribution at the horizon.
  const double slack = 3.0 / n;
  if (std::fabs(a - 0.5) < 1e-12) {
    prediction.mean = 0.5;
  } else if (a < 0.5) {
    prediction.mean_upper = a + slack;
  } else {
    prediction.mean_lower = a - slack;
  }
  // Renewal closed forms: a fork opens after a synced discovery with
  // probability rho, races last Geometric(1 - rho) rounds, the loser
  // orphans whole — orphans/events -> rho/(1+rho), mean reorg depth
  // -> 1/(1-rho).
  const double rho = a * (-std::expm1(-(1.0 - a) * cell.delay)) +
                     (1.0 - a) * (-std::expm1(-a * cell.delay));
  prediction.orphan_rate_expected = rho / (1.0 + rho);
  prediction.orphan_rate_tolerance = std::max(0.02, 8.0 / n);
  // The per-replication reorg-depth mean is a ratio estimator; only claim
  // it when enough races resolve per replication for the bias to vanish
  // inside the tolerance.
  const double expected_reorgs = n * rho * (1.0 - rho) / (1.0 + rho);
  if (expected_reorgs >= 30.0) {
    prediction.reorg_depth_expected = 1.0 / (1.0 - rho);
    prediction.reorg_depth_tolerance = 0.15;
  }
  return prediction;
}

// ---------------------------------------------------------------------------
// Catalogue
// ---------------------------------------------------------------------------

const std::vector<const Oracle*>& DefaultOracles() {
  static const DeterministicShareOracle deterministic;
  static const BinomialProportionalityOracle binomial;
  static const PolyaBetaLimitOracle polya;
  static const CPosMartingaleOracle cpos;
  static const SlPosDriftOracle slpos;
  static const SelfishMiningRevenueOracle selfish;
  static const ForkRaceOracle forkrace;
  static const std::vector<const Oracle*> oracles = {
      &deterministic, &binomial, &polya, &cpos, &slpos, &selfish, &forkrace};
  return oracles;
}

}  // namespace fairchain::verify
