// Keccak-256 (the pre-NIST padding variant used by Ethereum).
//
// Geth hashes block headers with Keccak-256; the PoW engine uses it so the
// substituted "real system" leg of the evaluation mirrors the client the
// paper deployed (Geth v1.9.11).  Verified against known vectors in
// tests/crypto/keccak256_test.cpp.

#ifndef FAIRCHAIN_CRYPTO_KECCAK256_HPP_
#define FAIRCHAIN_CRYPTO_KECCAK256_HPP_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "crypto/sha256.hpp"  // for Digest

namespace fairchain::crypto {

/// Streaming Keccak-256 context (rate 1088 bits, capacity 512, pad 0x01).
class Keccak256 {
 public:
  Keccak256();

  /// Absorbs `len` bytes.
  void Update(const void* data, std::size_t len);
  /// Absorbs a string view.
  void Update(std::string_view data);
  /// Absorbs a little-endian 64-bit integer.
  void UpdateU64(std::uint64_t value);

  /// Finalises and returns the 32-byte digest.
  Digest Finalize();

  /// Restores the initial state.
  void Reset();

 private:
  static constexpr std::size_t kRateBytes = 136;  // 1088 bits

  void Absorb(const std::uint8_t* block);
  void Permute();

  std::array<std::uint64_t, 25> state_;
  std::array<std::uint8_t, kRateBytes> buffer_;
  std::size_t buffer_len_ = 0;
};

/// One-shot Keccak-256 of a byte buffer.
Digest Keccak256Digest(const void* data, std::size_t len);

/// One-shot Keccak-256 of a string.
Digest Keccak256Digest(std::string_view data);

}  // namespace fairchain::crypto

#endif  // FAIRCHAIN_CRYPTO_KECCAK256_HPP_
