// SHA-256 (FIPS 180-4), implemented from scratch.
//
// The chain substrate grinds real hashes against 256-bit targets, exactly as
// PoW / ML-PoS / SL-PoS clients do; this file provides the hash oracle.
// Verified against the FIPS test vectors in tests/crypto/sha256_test.cpp.

#ifndef FAIRCHAIN_CRYPTO_SHA256_HPP_
#define FAIRCHAIN_CRYPTO_SHA256_HPP_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fairchain::crypto {

/// A 32-byte digest.
using Digest = std::array<std::uint8_t, 32>;

/// Streaming SHA-256 context.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `len` bytes.
  void Update(const void* data, std::size_t len);
  /// Absorbs a string view.
  void Update(std::string_view data);
  /// Absorbs a little-endian 64-bit integer (canonical field encoding used
  /// by the chain substrate's headers).
  void UpdateU64(std::uint64_t value);

  /// Finalises and returns the digest.  The context must not be reused
  /// afterwards without Reset().
  Digest Finalize();

  /// Restores the initial state.
  void Reset();

 private:
  void ProcessBlock(const std::uint8_t block[64]);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t bit_count_ = 0;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
};

/// One-shot convenience: SHA-256 of a byte buffer.
Digest Sha256Digest(const void* data, std::size_t len);

/// One-shot convenience: SHA-256 of a string.
Digest Sha256Digest(std::string_view data);

/// Double SHA-256 (Bitcoin's block-hash convention).
Digest Sha256d(const void* data, std::size_t len);

/// Lowercase hex rendering of a digest.
std::string DigestToHex(const Digest& digest);

}  // namespace fairchain::crypto

#endif  // FAIRCHAIN_CRYPTO_SHA256_HPP_
