#include "crypto/keccak256.hpp"

#include <cstring>

namespace fairchain::crypto {

namespace {

constexpr std::uint64_t kRoundConstants[24] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

constexpr int kRotationOffsets[25] = {
    0,  1,  62, 28, 27,   // y = 0
    36, 44, 6,  55, 20,   // y = 1
    3,  10, 43, 25, 39,   // y = 2
    41, 45, 15, 21, 8,    // y = 3
    18, 2,  61, 56, 14};  // y = 4

inline std::uint64_t Rotl64(std::uint64_t x, int n) {
  return n == 0 ? x : (x << n) | (x >> (64 - n));
}

}  // namespace

Keccak256::Keccak256() { Reset(); }

void Keccak256::Reset() {
  state_.fill(0);
  buffer_len_ = 0;
}

void Keccak256::Update(const void* data, std::size_t len) {
  const std::uint8_t* bytes = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const std::size_t space = kRateBytes - buffer_len_;
    const std::size_t take = len < space ? len : space;
    std::memcpy(buffer_.data() + buffer_len_, bytes, take);
    buffer_len_ += take;
    bytes += take;
    len -= take;
    if (buffer_len_ == kRateBytes) {
      Absorb(buffer_.data());
      buffer_len_ = 0;
    }
  }
}

void Keccak256::Update(std::string_view data) {
  Update(data.data(), data.size());
}

void Keccak256::UpdateU64(std::uint64_t value) {
  std::uint8_t encoded[8];
  for (int i = 0; i < 8; ++i) {
    encoded[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  Update(encoded, 8);
}

Digest Keccak256::Finalize() {
  // Keccak (pre-FIPS) multi-rate padding: 0x01 ... 0x80.
  std::memset(buffer_.data() + buffer_len_, 0, kRateBytes - buffer_len_);
  buffer_[buffer_len_] = 0x01;
  buffer_[kRateBytes - 1] |= 0x80;
  Absorb(buffer_.data());
  Digest digest;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t lane = state_[i];
    for (int byte = 0; byte < 8; ++byte) {
      digest[8 * i + byte] = static_cast<std::uint8_t>(lane >> (8 * byte));
    }
  }
  return digest;
}

void Keccak256::Absorb(const std::uint8_t* block) {
  for (std::size_t lane = 0; lane < kRateBytes / 8; ++lane) {
    std::uint64_t word = 0;
    for (int byte = 7; byte >= 0; --byte) {
      word = (word << 8) | block[lane * 8 + static_cast<std::size_t>(byte)];
    }
    state_[lane] ^= word;
  }
  Permute();
}

void Keccak256::Permute() {
  for (int round = 0; round < 24; ++round) {
    // Theta.
    std::uint64_t c[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = state_[x] ^ state_[x + 5] ^ state_[x + 10] ^ state_[x + 15] ^
             state_[x + 20];
    }
    std::uint64_t d[5];
    for (int x = 0; x < 5; ++x) {
      d[x] = c[(x + 4) % 5] ^ Rotl64(c[(x + 1) % 5], 1);
    }
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) state_[y * 5 + x] ^= d[x];
    }
    // Rho + Pi.
    std::uint64_t b[25];
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        const int from = y * 5 + x;
        const int to_x = y;
        const int to_y = (2 * x + 3 * y) % 5;
        b[to_y * 5 + to_x] = Rotl64(state_[from], kRotationOffsets[from]);
      }
    }
    // Chi.
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        state_[y * 5 + x] =
            b[y * 5 + x] ^ (~b[y * 5 + (x + 1) % 5] & b[y * 5 + (x + 2) % 5]);
      }
    }
    // Iota.
    state_[0] ^= kRoundConstants[round];
  }
}

Digest Keccak256Digest(const void* data, std::size_t len) {
  Keccak256 ctx;
  ctx.Update(data, len);
  return ctx.Finalize();
}

Digest Keccak256Digest(std::string_view data) {
  return Keccak256Digest(data.data(), data.size());
}

}  // namespace fairchain::crypto
