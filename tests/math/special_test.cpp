// Tests for special functions against reference values and identities.

#include "math/special.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace fairchain::math {
namespace {

TEST(LogGammaTest, MatchesFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(11.0), std::log(3628800.0), 1e-9);
}

TEST(LogGammaTest, HalfIntegerValues) {
  // Gamma(1/2) = sqrt(pi)
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-12);
  // Gamma(3/2) = sqrt(pi)/2
  EXPECT_NEAR(LogGamma(1.5), 0.5 * std::log(M_PI) - std::log(2.0), 1e-12);
}

TEST(LogGammaTest, AgreesWithStdLgamma) {
  for (double x : {0.1, 0.7, 1.3, 2.9, 10.5, 100.0, 1234.5}) {
    EXPECT_NEAR(LogGamma(x), std::lgamma(x), 1e-9 * (1.0 + std::lgamma(x)));
  }
}

TEST(LogGammaTest, RecurrenceHolds) {
  // log Gamma(x+1) = log Gamma(x) + log x.
  for (double x : {0.3, 1.7, 8.2, 55.5}) {
    EXPECT_NEAR(LogGamma(x + 1.0), LogGamma(x) + std::log(x), 1e-10);
  }
}

TEST(LogGammaTest, RejectsNonPositive) {
  EXPECT_THROW(LogGamma(0.0), std::invalid_argument);
  EXPECT_THROW(LogGamma(-1.0), std::invalid_argument);
}

TEST(LogBetaTest, SymmetricAndKnown) {
  EXPECT_NEAR(LogBeta(1.0, 1.0), 0.0, 1e-12);  // B(1,1) = 1
  EXPECT_NEAR(LogBeta(2.0, 3.0), std::log(1.0 / 12.0), 1e-10);
  EXPECT_NEAR(LogBeta(4.5, 2.5), LogBeta(2.5, 4.5), 1e-12);
}

TEST(RegularizedIncompleteBetaTest, Boundaries) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(RegularizedIncompleteBetaTest, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(RegularizedIncompleteBetaTest, SymmetryIdentity) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double x : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(3.0, 7.0, x),
                1.0 - RegularizedIncompleteBeta(7.0, 3.0, 1.0 - x), 1e-12);
  }
}

TEST(RegularizedIncompleteBetaTest, KnownValue) {
  // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.5}(2, 5): CDF of Beta(2,5) at .5.
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 2.0, 0.5), 0.5, 1e-12);
  // Beta(2,5) CDF at 0.5 = 1 - (1+5*0.5)(1-0.5)^5 ... use closed form:
  // P(X<=x) for Beta(2,5) = 1-(1-x)^5 (1+5x) ... verified numerically: 0.890625
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 5.0, 0.5), 0.890625, 1e-9);
}

TEST(RegularizedIncompleteBetaTest, IsMonotoneInX) {
  double prev = -1.0;
  for (int i = 0; i <= 50; ++i) {
    const double x = static_cast<double>(i) / 50.0;
    const double value = RegularizedIncompleteBeta(20.0, 80.0, x);
    EXPECT_GE(value, prev);
    prev = value;
  }
}

TEST(RegularizedIncompleteBetaTest, RejectsBadShapes) {
  EXPECT_THROW(RegularizedIncompleteBeta(0.0, 1.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(RegularizedIncompleteBeta(1.0, -2.0, 0.5),
               std::invalid_argument);
}

TEST(BetaQuantileTest, InvertsCdf) {
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double x = BetaQuantile(20.0, 80.0, p);
    EXPECT_NEAR(BetaCdf(20.0, 80.0, x), p, 1e-9);
  }
}

TEST(BetaQuantileTest, Boundaries) {
  EXPECT_DOUBLE_EQ(BetaQuantile(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BetaQuantile(2.0, 3.0, 1.0), 1.0);
  EXPECT_THROW(BetaQuantile(2.0, 3.0, -0.1), std::invalid_argument);
}

TEST(BetaMomentsTest, MeanAndVariance) {
  EXPECT_NEAR(BetaMean(20.0, 80.0), 0.2, 1e-12);
  EXPECT_NEAR(BetaVariance(20.0, 80.0), 0.2 * 0.8 / 101.0, 1e-12);
}

TEST(BinomialPmfTest, MatchesHandComputation) {
  // Bin(4, 0.5): pmf(2) = 6/16.
  EXPECT_NEAR(BinomialPmf(4, 2, 0.5), 0.375, 1e-12);
  // Bin(10, 0.2): pmf(0) = 0.8^10.
  EXPECT_NEAR(BinomialPmf(10, 0, 0.2), std::pow(0.8, 10), 1e-12);
}

TEST(BinomialPmfTest, DegenerateP) {
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 4, 1.0), 0.0);
}

TEST(BinomialPmfTest, SumsToOne) {
  double total = 0.0;
  for (std::uint64_t k = 0; k <= 30; ++k) total += BinomialPmf(30, k, 0.37);
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(BinomialCdfTest, MatchesDirectSummation) {
  for (std::uint64_t k : {0u, 3u, 7u, 15u, 20u}) {
    double direct = 0.0;
    for (std::uint64_t i = 0; i <= k; ++i) direct += BinomialPmf(20, i, 0.3);
    EXPECT_NEAR(BinomialCdf(20, k, 0.3), direct, 1e-10);
  }
}

TEST(BinomialCdfTest, FullRangeIsOne) {
  EXPECT_DOUBLE_EQ(BinomialCdf(10, 10, 0.42), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCdf(10, 12, 0.42), 1.0);
}

TEST(PowDeltaExactTest, GrowsWithN) {
  const double d100 = PowDeltaExact(100, 0.2, 0.1);
  const double d1000 = PowDeltaExact(1000, 0.2, 0.1);
  const double d10000 = PowDeltaExact(10000, 0.2, 0.1);
  EXPECT_LT(d100, d1000);
  EXPECT_LT(d1000, d10000);
  EXPECT_GT(d10000, 0.99);
}

TEST(PowDeltaExactTest, MatchesNormalApproximationAtLargeN) {
  // For n = 10^4, a = 0.2, eps = 0.1: z = n*eps*a / sqrt(n a (1-a)).
  const double n = 10000.0;
  const double z = n * 0.1 * 0.2 / std::sqrt(n * 0.2 * 0.8);
  const double normal_approx = NormalCdf(z) - NormalCdf(-z);
  EXPECT_NEAR(PowDeltaExact(10000, 0.2, 0.1), normal_approx, 0.01);
}

TEST(PowDeltaExactTest, RejectsBadInput) {
  EXPECT_THROW(PowDeltaExact(0, 0.2, 0.1), std::invalid_argument);
  EXPECT_THROW(PowDeltaExact(10, 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(PowDeltaExact(10, 1.0, 0.1), std::invalid_argument);
}

TEST(NormalCdfTest, StandardValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-9);
  EXPECT_NEAR(NormalCdf(1.6448536269514722), 0.95, 1e-9);
}

TEST(LogChooseTest, SmallValues) {
  EXPECT_NEAR(LogChoose(5, 2), std::log(10.0), 1e-10);
  EXPECT_NEAR(LogChoose(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogChoose(10, 10), 0.0, 1e-12);
  EXPECT_THROW(LogChoose(3, 4), std::invalid_argument);
}

TEST(LogChooseTest, PascalIdentity) {
  // C(n, k) = C(n-1, k-1) + C(n-1, k), verified in linear space.
  for (std::uint64_t n : {10u, 25u, 60u}) {
    for (std::uint64_t k = 1; k < n; k += 7) {
      const double lhs = std::exp(LogChoose(n, k));
      const double rhs =
          std::exp(LogChoose(n - 1, k - 1)) + std::exp(LogChoose(n - 1, k));
      EXPECT_NEAR(lhs, rhs, 1e-6 * rhs);
    }
  }
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (const double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(RegularizedGammaTest, ComplementarityAndBoundaries) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.5, 0.0), 0.0);
  for (const double a : {0.5, 2.0, 7.5}) {
    for (const double x : {0.2, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-12);
    }
  }
  EXPECT_NEAR(RegularizedGammaP(3.0, 1000.0), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.0; x <= 20.0; x += 0.25) {
    const double p = RegularizedGammaP(4.0, x);
    EXPECT_GE(p, prev - 1e-14);
    prev = p;
  }
}

TEST(RegularizedGammaTest, RejectsBadInput) {
  EXPECT_THROW(RegularizedGammaP(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(RegularizedGammaP(1.0, -1.0), std::invalid_argument);
}

TEST(ChiSquareCdfTest, KnownQuantiles) {
  // Classic critical values: chi2(1) 95th pct = 3.841; chi2(10) = 18.307.
  EXPECT_NEAR(ChiSquareCdf(1.0, 3.841458820694124), 0.95, 1e-9);
  EXPECT_NEAR(ChiSquareCdf(10.0, 18.307038053275146), 0.95, 1e-9);
  EXPECT_NEAR(ChiSquareCdf(2.0, 2.0 * std::log(2.0)), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(ChiSquareCdf(3.0, 0.0), 0.0);
}

TEST(BetaBinomialTest, UniformSpecialCase) {
  // BetaBin(n, 1, 1) is uniform on {0..n}.
  for (std::uint64_t k = 0; k <= 10; ++k) {
    EXPECT_NEAR(BetaBinomialPmf(10, k, 1.0, 1.0), 1.0 / 11.0, 1e-12);
  }
}

TEST(BetaBinomialTest, SumsToOne) {
  double total = 0.0;
  for (std::uint64_t k = 0; k <= 50; ++k) {
    total += BetaBinomialPmf(50, k, 4.0, 16.0);
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(BetaBinomialTest, MeanMatchesTheory) {
  // E[K] = n alpha / (alpha + beta).
  const std::uint64_t n = 40;
  const double alpha = 4.0, beta = 16.0;
  double mean = 0.0;
  for (std::uint64_t k = 0; k <= n; ++k) {
    mean += static_cast<double>(k) * BetaBinomialPmf(n, k, alpha, beta);
  }
  EXPECT_NEAR(mean, static_cast<double>(n) * alpha / (alpha + beta), 1e-9);
}

TEST(BetaBinomialTest, ConvergesToBinomialForLargeShapes) {
  // alpha, beta -> infinity at fixed ratio: BetaBin -> Bin(n, a).
  const std::uint64_t n = 20;
  for (std::uint64_t k = 0; k <= n; k += 4) {
    EXPECT_NEAR(BetaBinomialPmf(n, k, 2e6, 8e6), BinomialPmf(n, k, 0.2),
                1e-4);
  }
}

TEST(BetaBinomialTest, RejectsBadInput) {
  EXPECT_THROW(BetaBinomialLogPmf(5, 6, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BetaBinomialLogPmf(5, 2, 0.0, 1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Property sweep: the beta CDF is a valid CDF for many shape pairs.
// ---------------------------------------------------------------------------

class BetaCdfPropertyTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(BetaCdfPropertyTest, ValidCdf) {
  const auto [a, b] = GetParam();
  double prev = 0.0;
  for (int i = 0; i <= 100; ++i) {
    const double x = static_cast<double>(i) / 100.0;
    const double cdf = BetaCdf(a, b, x);
    EXPECT_GE(cdf, prev - 1e-12);
    EXPECT_GE(cdf, 0.0);
    EXPECT_LE(cdf, 1.0);
    prev = cdf;
  }
  EXPECT_NEAR(BetaCdf(a, b, 1.0), 1.0, 1e-12);
}

TEST_P(BetaCdfPropertyTest, MedianNearMeanForSymmetricish) {
  const auto [a, b] = GetParam();
  const double median = BetaQuantile(a, b, 0.5);
  // Median lies within the support and within ~1 sd of the mean.
  const double sd = std::sqrt(BetaVariance(a, b));
  EXPECT_NEAR(median, BetaMean(a, b), sd + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    ShapePairs, BetaCdfPropertyTest,
    ::testing::Values(std::make_pair(0.5, 0.5), std::make_pair(1.0, 3.0),
                      std::make_pair(2.0, 2.0), std::make_pair(20.0, 80.0),
                      std::make_pair(200.0, 800.0),
                      std::make_pair(2000.0, 8000.0)));

}  // namespace
}  // namespace fairchain::math
