// Tests for numerical quadrature.

#include "math/integrate.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace fairchain::math {
namespace {

TEST(AdaptiveSimpsonTest, ExactForCubics) {
  auto cubic = [](double x) { return x * x * x - 2.0 * x + 1.0; };
  // Integral over [0, 2]: 4 - 4 + 2 = 2.
  EXPECT_NEAR(AdaptiveSimpson(cubic, 0.0, 2.0), 2.0, 1e-12);
}

TEST(AdaptiveSimpsonTest, KnownTranscendental) {
  EXPECT_NEAR(AdaptiveSimpson([](double x) { return std::sin(x); }, 0.0, M_PI),
              2.0, 1e-10);
  EXPECT_NEAR(
      AdaptiveSimpson([](double x) { return std::exp(-x); }, 0.0, 50.0),
      1.0, 1e-9);
}

TEST(AdaptiveSimpsonTest, EmptyIntervalIsZero) {
  EXPECT_DOUBLE_EQ(AdaptiveSimpson([](double) { return 42.0; }, 1.0, 1.0),
                   0.0);
}

TEST(AdaptiveSimpsonTest, ReversedIntervalIsNegative) {
  const double forward =
      AdaptiveSimpson([](double x) { return x; }, 0.0, 1.0);
  const double backward =
      AdaptiveSimpson([](double x) { return x; }, 1.0, 0.0);
  EXPECT_NEAR(forward, -backward, 1e-12);
}

TEST(AdaptiveSimpsonTest, HandlesSharpPeak) {
  // Narrow Gaussian: integral over [-1, 1] of exp(-x^2 / (2 s^2)) with
  // s = 0.01 is s * sqrt(2 pi).
  const double s = 0.01;
  const double value = AdaptiveSimpson(
      [s](double x) { return std::exp(-x * x / (2.0 * s * s)); }, -1.0, 1.0,
      1e-12);
  EXPECT_NEAR(value, s * std::sqrt(2.0 * M_PI), 1e-8);
}

TEST(GaussLegendreTest, ExactForHighDegreePolynomials) {
  // Order-16 Gauss-Legendre integrates degree <= 31 exactly.
  auto poly = [](double x) {
    double acc = 0.0;
    double pw = 1.0;
    for (int d = 0; d <= 15; ++d) {
      acc += pw;
      pw *= x;
    }
    return acc;  // sum x^d, d = 0..15
  };
  double exact = 0.0;
  for (int d = 0; d <= 15; ++d) exact += 1.0 / (d + 1);  // over [0,1]
  EXPECT_NEAR(GaussLegendre(poly, 0.0, 1.0, 16), exact, 1e-12);
}

TEST(GaussLegendreTest, AllOrdersAgreeOnSmoothFunction) {
  auto f = [](double x) { return std::cos(x); };
  const double exact = std::sin(1.5) - std::sin(0.5);
  EXPECT_NEAR(GaussLegendre(f, 0.5, 1.5, 8), exact, 1e-10);
  EXPECT_NEAR(GaussLegendre(f, 0.5, 1.5, 16), exact, 1e-12);
  EXPECT_NEAR(GaussLegendre(f, 0.5, 1.5, 32), exact, 1e-12);
}

TEST(GaussLegendreTest, RejectsUnsupportedOrder) {
  EXPECT_THROW(GaussLegendre([](double) { return 1.0; }, 0.0, 1.0, 12),
               std::invalid_argument);
}

TEST(GaussLegendreTest, MatchesAdaptiveSimpsonOnLemma61Integrand) {
  // The Lemma 6.1 integrand: product of (1 - S_j z) over [0, 1/S_max].
  const std::vector<double> stakes = {0.2, 0.3, 0.5};
  auto integrand = [&stakes](double z) {
    double prod = 1.0;
    for (std::size_t j = 1; j < stakes.size(); ++j) {
      prod *= std::max(0.0, 1.0 - stakes[j] * z);
    }
    return prod;
  };
  const double upper = 1.0 / 0.5;
  EXPECT_NEAR(GaussLegendre(integrand, 0.0, upper, 32),
              AdaptiveSimpson(integrand, 0.0, upper, 1e-13), 1e-10);
}

TEST(GaussLegendreTest, LinearityInInterval) {
  auto f = [](double x) { return x * x; };
  const double whole = GaussLegendre(f, 0.0, 2.0, 16);
  const double split =
      GaussLegendre(f, 0.0, 1.0, 16) + GaussLegendre(f, 1.0, 2.0, 16);
  EXPECT_NEAR(whole, split, 1e-12);
}

}  // namespace
}  // namespace fairchain::math
