// Tests for the random-variate samplers: moments, exact-CDF agreement, and
// determinism.

#include "math/distributions.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "math/special.hpp"
#include "support/stats.hpp"

namespace fairchain::math {
namespace {

TEST(ExponentialTest, MeanAndVariance) {
  RngStream rng(1);
  RunningStats stats;
  const double rate = 2.5;
  for (int i = 0; i < 200000; ++i) stats.Add(SampleExponential(rng, rate));
  EXPECT_NEAR(stats.Mean(), 1.0 / rate, 0.01);
  EXPECT_NEAR(stats.Variance(), 1.0 / (rate * rate), 0.02);
}

TEST(ExponentialTest, AlwaysPositive) {
  RngStream rng(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(SampleExponential(rng, 1.0), 0.0);
  }
}

TEST(ExponentialTest, RejectsNonPositiveRate) {
  RngStream rng(3);
  EXPECT_THROW(SampleExponential(rng, 0.0), std::invalid_argument);
  EXPECT_THROW(SampleExponential(rng, -1.0), std::invalid_argument);
}

TEST(ExponentialTest, MinOfTwoRacesProportionally) {
  // P[Exp(rate_a) < Exp(rate_b)] = rate_a / (rate_a + rate_b) — the PoW
  // block race of Section 2.1.
  RngStream rng(4);
  const double rate_a = 3.0, rate_b = 7.0;
  int a_wins = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (SampleExponential(rng, rate_a) < SampleExponential(rng, rate_b)) {
      ++a_wins;
    }
  }
  EXPECT_NEAR(static_cast<double>(a_wins) / n, 0.3, 0.005);
}

TEST(GeometricTest, MeanMatches) {
  RngStream rng(5);
  RunningStats stats;
  const double p = 0.05;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(static_cast<double>(SampleGeometric(rng, p)));
  }
  EXPECT_NEAR(stats.Mean(), 1.0 / p, 0.3);
}

TEST(GeometricTest, SupportStartsAtOne) {
  RngStream rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(SampleGeometric(rng, 0.9), 1u);
  }
}

TEST(GeometricTest, PEqualOneIsAlwaysOne) {
  RngStream rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(SampleGeometric(rng, 1.0), 1u);
}

TEST(GeometricTest, RejectsBadP) {
  RngStream rng(8);
  EXPECT_THROW(SampleGeometric(rng, 0.0), std::invalid_argument);
  EXPECT_THROW(SampleGeometric(rng, 1.5), std::invalid_argument);
}

TEST(GeometricTest, MemorylessTailRatio) {
  // P[T > 2] / P[T > 1] should equal (1-p).
  RngStream rng(9);
  const double p = 0.3;
  int gt1 = 0, gt2 = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t t = SampleGeometric(rng, p);
    if (t > 1) ++gt1;
    if (t > 2) ++gt2;
  }
  EXPECT_NEAR(static_cast<double>(gt2) / gt1, 1.0 - p, 0.01);
}

TEST(BinomialTest, DegenerateCases) {
  RngStream rng(10);
  EXPECT_EQ(SampleBinomial(rng, 0, 0.5), 0u);
  EXPECT_EQ(SampleBinomial(rng, 100, 0.0), 0u);
  EXPECT_EQ(SampleBinomial(rng, 100, 1.0), 100u);
  EXPECT_THROW(SampleBinomial(rng, 10, 1.5), std::invalid_argument);
}

TEST(BinomialTest, WithinSupport) {
  RngStream rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LE(SampleBinomial(rng, 32, 0.2), 32u);
  }
}

// Parameterized moment checks across the sampler's three internal regimes:
// tiny n (explicit), small mean (inversion from 0), large mean (from mode).
class BinomialMomentTest
    : public ::testing::TestWithParam<std::pair<std::uint64_t, double>> {};

TEST_P(BinomialMomentTest, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  RngStream rng(1000 + n);
  RunningStats stats;
  const int reps = 120000;
  for (int i = 0; i < reps; ++i) {
    stats.Add(static_cast<double>(SampleBinomial(rng, n, p)));
  }
  const double mean = static_cast<double>(n) * p;
  const double var = mean * (1.0 - p);
  EXPECT_NEAR(stats.Mean(), mean, 5.0 * std::sqrt(var / reps) + 0.01);
  EXPECT_NEAR(stats.Variance(), var, 0.05 * var + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BinomialMomentTest,
    ::testing::Values(std::make_pair(8u, 0.3),      // explicit summation
                      std::make_pair(32u, 0.2),     // C-PoS shard regime
                      std::make_pair(200u, 0.02),   // inversion from zero
                      std::make_pair(500u, 0.4),    // inversion from mode
                      std::make_pair(100u, 0.85))); // symmetry path

TEST(BinomialTest, DistributionMatchesExactPmf) {
  // Chi-square-style check against the exact pmf for Bin(32, 0.2).
  RngStream rng(12);
  const std::uint64_t n = 32;
  const double p = 0.2;
  const int reps = 200000;
  std::vector<int> counts(n + 1, 0);
  for (int i = 0; i < reps; ++i) ++counts[SampleBinomial(rng, n, p)];
  for (std::uint64_t k = 0; k <= 14; ++k) {
    const double expected = reps * BinomialPmf(n, k, p);
    if (expected < 50.0) continue;
    EXPECT_NEAR(counts[k], expected, 6.0 * std::sqrt(expected))
        << "k=" << k;
  }
}

TEST(CategoricalTest, FrequenciesMatchWeights) {
  RngStream rng(13);
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[SampleCategorical(rng, weights)];
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, weights[i] / 10.0, 0.01);
  }
}

TEST(CategoricalTest, ZeroWeightNeverDrawn) {
  RngStream rng(14);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(SampleCategorical(rng, weights), 1u);
  }
}

TEST(CategoricalTest, RejectsInvalidWeights) {
  RngStream rng(15);
  EXPECT_THROW(SampleCategorical(rng, {-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(SampleCategorical(rng, {0.0, 0.0}), std::invalid_argument);
}

TEST(GammaTest, MomentsMatch) {
  RngStream rng(16);
  for (const double shape : {0.5, 1.0, 2.5, 10.0}) {
    RunningStats stats;
    for (int i = 0; i < 100000; ++i) stats.Add(SampleGamma(rng, shape));
    EXPECT_NEAR(stats.Mean(), shape, 0.05 * shape + 0.02) << shape;
    EXPECT_NEAR(stats.Variance(), shape, 0.1 * shape + 0.05) << shape;
  }
}

TEST(GammaTest, RejectsNonPositiveShape) {
  RngStream rng(17);
  EXPECT_THROW(SampleGamma(rng, 0.0), std::invalid_argument);
}

TEST(BetaSamplerTest, MomentsMatchTheory) {
  RngStream rng(18);
  const double a = 20.0, b = 80.0;  // the ML-PoS limit at a=0.2, w=0.01
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(SampleBeta(rng, a, b));
  EXPECT_NEAR(stats.Mean(), BetaMean(a, b), 0.002);
  EXPECT_NEAR(stats.Variance(), BetaVariance(a, b), 0.0002);
}

TEST(BetaSamplerTest, QuantilesMatchCdf) {
  RngStream rng(19);
  std::vector<double> samples;
  samples.reserve(100000);
  for (int i = 0; i < 100000; ++i) samples.push_back(SampleBeta(rng, 2.0, 5.0));
  const double q25 = Quantile(samples, 0.25);
  EXPECT_NEAR(BetaCdf(2.0, 5.0, q25), 0.25, 0.01);
}

TEST(NormalTest, MomentsAndSymmetry) {
  RngStream rng(20);
  RunningStats stats;
  int positive = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = SampleNormal(rng);
    stats.Add(z);
    if (z > 0) ++positive;
  }
  EXPECT_NEAR(stats.Mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.Variance(), 1.0, 0.02);
  EXPECT_NEAR(static_cast<double>(positive) / n, 0.5, 0.01);
}

TEST(AliasTableTest, MatchesWeights) {
  RngStream rng(21);
  const std::vector<double> weights = {5.0, 1.0, 3.0, 1.0};
  AliasTable table(weights);
  EXPECT_EQ(table.size(), 4u);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(rng)];
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, weights[i] / 10.0, 0.01);
  }
}

TEST(AliasTableTest, SingleCategory) {
  RngStream rng(22);
  AliasTable table(std::vector<double>{3.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(AliasTableTest, RejectsInvalid) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{-1.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
}

TEST(DeterminismTest, SamplersReproducible) {
  RngStream a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleExponential(a, 1.0), SampleExponential(b, 1.0));
    EXPECT_EQ(SampleGeometric(a, 0.1), SampleGeometric(b, 0.1));
    EXPECT_EQ(SampleBinomial(a, 32, 0.2), SampleBinomial(b, 32, 0.2));
    EXPECT_EQ(SampleGamma(a, 2.0), SampleGamma(b, 2.0));
  }
}

}  // namespace
}  // namespace fairchain::math
