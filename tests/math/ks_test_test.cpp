// Tests for the Kolmogorov-Smirnov machinery.

#include "math/ks_test.hpp"

#include <gtest/gtest.h>

#include "math/distributions.hpp"
#include "math/special.hpp"
#include "support/rng.hpp"

namespace fairchain::math {
namespace {

TEST(KolmogorovSurvivalTest, KnownValues) {
  EXPECT_DOUBLE_EQ(KolmogorovSurvival(0.0), 1.0);
  EXPECT_DOUBLE_EQ(KolmogorovSurvival(-1.0), 1.0);
  // Q(1.36) ~ 0.049 (the classic 5% critical value).
  EXPECT_NEAR(KolmogorovSurvival(1.36), 0.049, 0.002);
  // Q(1.63) ~ 0.010.
  EXPECT_NEAR(KolmogorovSurvival(1.63), 0.010, 0.001);
  EXPECT_LT(KolmogorovSurvival(3.0), 1e-6);
}

TEST(KolmogorovSurvivalTest, MonotoneDecreasing) {
  double prev = 1.0;
  for (double x = 0.1; x < 3.0; x += 0.1) {
    const double q = KolmogorovSurvival(x);
    EXPECT_LE(q, prev);
    prev = q;
  }
}

TEST(KsOneSampleTest, UniformSampleAgainstUniformCdf) {
  RngStream rng(1);
  std::vector<double> sample(5000);
  for (auto& v : sample) v = rng.NextDouble();
  const KsResult result =
      KsTestOneSample(sample, [](double x) { return x; });
  EXPECT_GT(result.p_value, 0.01);
  EXPECT_LT(result.statistic, 0.05);
}

TEST(KsOneSampleTest, RejectsWrongDistribution) {
  RngStream rng(2);
  std::vector<double> sample(5000);
  for (auto& v : sample) v = rng.NextDouble() * rng.NextDouble();  // not U
  const KsResult result =
      KsTestOneSample(sample, [](double x) { return x; });
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KsOneSampleTest, BetaSampleAgainstBetaCdf) {
  RngStream rng(3);
  std::vector<double> sample(4000);
  for (auto& v : sample) v = SampleBeta(rng, 20.0, 80.0);
  const KsResult result = KsTestOneSample(
      sample, [](double x) { return BetaCdf(20.0, 80.0, x); });
  EXPECT_GT(result.p_value, 0.01);
}

TEST(KsOneSampleTest, EmptySampleThrows) {
  EXPECT_THROW(KsTestOneSample({}, [](double x) { return x; }),
               std::invalid_argument);
}

TEST(KsTwoSampleTest, SameDistributionPasses) {
  RngStream rng(4);
  std::vector<double> a(3000), b(3000);
  for (auto& v : a) v = SampleNormal(rng);
  for (auto& v : b) v = SampleNormal(rng);
  const KsResult result = KsTestTwoSample(a, b);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(KsTwoSampleTest, ShiftedDistributionFails) {
  RngStream rng(5);
  std::vector<double> a(3000), b(3000);
  for (auto& v : a) v = SampleNormal(rng);
  for (auto& v : b) v = SampleNormal(rng) + 0.5;
  const KsResult result = KsTestTwoSample(a, b);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_GT(result.statistic, 0.1);
}

TEST(KsTwoSampleTest, IdenticalSamplesZeroStatistic) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const KsResult result = KsTestTwoSample(a, a);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(KsTwoSampleTest, EmptyThrows) {
  EXPECT_THROW(KsTestTwoSample({}, {1.0}), std::invalid_argument);
  EXPECT_THROW(KsTestTwoSample({1.0}, {}), std::invalid_argument);
}

TEST(ChiSquareGofTest, AcceptsTrueDistribution) {
  RngStream rng(6);
  const std::vector<double> probabilities = {0.1, 0.2, 0.3, 0.4};
  std::vector<std::uint64_t> observed(4, 0);
  for (int i = 0; i < 50000; ++i) {
    ++observed[SampleCategorical(rng, {1.0, 2.0, 3.0, 4.0})];
  }
  const auto result = ChiSquareGofTest(observed, probabilities);
  EXPECT_GT(result.p_value, 0.001);
  EXPECT_EQ(result.degrees, 3u);
}

TEST(ChiSquareGofTest, RejectsWrongDistribution) {
  RngStream rng(7);
  std::vector<std::uint64_t> observed(4, 0);
  for (int i = 0; i < 50000; ++i) {
    ++observed[SampleCategorical(rng, {1.0, 1.0, 1.0, 1.0})];  // uniform
  }
  const std::vector<double> claimed = {0.1, 0.2, 0.3, 0.4};
  const auto result = ChiSquareGofTest(observed, claimed);
  EXPECT_LT(result.p_value, 1e-10);
}

TEST(ChiSquareGofTest, PoolsSparseCells) {
  // 10 cells with tiny tail probabilities must be merged, not divided by
  // near-zero expectations.
  std::vector<std::uint64_t> observed = {500, 480, 15, 3, 1, 0, 0, 1, 0, 0};
  std::vector<double> probabilities = {0.5,  0.48, 0.015, 0.003, 0.001,
                                       1e-4, 1e-4, 1e-4,  1e-4,  2e-4};
  const auto result = ChiSquareGofTest(observed, probabilities);
  EXPECT_LT(result.degrees, 9u);  // cells were pooled
  EXPECT_GT(result.p_value, 0.001);
}

TEST(ChiSquareGofTest, Validation) {
  EXPECT_THROW(ChiSquareGofTest({}, {}), std::invalid_argument);
  EXPECT_THROW(ChiSquareGofTest({1}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(ChiSquareGofTest({1, 2}, {-0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(ChiSquareGofTest({0, 0}, {0.5, 0.5}), std::invalid_argument);
}

}  // namespace
}  // namespace fairchain::math
