// Tests for the Kolmogorov-Smirnov machinery.

#include "math/ks_test.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "math/distributions.hpp"
#include "math/special.hpp"
#include "support/rng.hpp"

namespace fairchain::math {
namespace {

TEST(KolmogorovSurvivalTest, KnownValues) {
  EXPECT_DOUBLE_EQ(KolmogorovSurvival(0.0), 1.0);
  EXPECT_DOUBLE_EQ(KolmogorovSurvival(-1.0), 1.0);
  // Q(1.36) ~ 0.049 (the classic 5% critical value).
  EXPECT_NEAR(KolmogorovSurvival(1.36), 0.049, 0.002);
  // Q(1.63) ~ 0.010.
  EXPECT_NEAR(KolmogorovSurvival(1.63), 0.010, 0.001);
  EXPECT_LT(KolmogorovSurvival(3.0), 1e-6);
}

TEST(KolmogorovSurvivalTest, MonotoneDecreasing) {
  double prev = 1.0;
  for (double x = 0.1; x < 3.0; x += 0.1) {
    const double q = KolmogorovSurvival(x);
    EXPECT_LE(q, prev);
    prev = q;
  }
}

TEST(KsOneSampleTest, UniformSampleAgainstUniformCdf) {
  RngStream rng(1);
  std::vector<double> sample(5000);
  for (auto& v : sample) v = rng.NextDouble();
  const KsResult result =
      KsTestOneSample(sample, [](double x) { return x; });
  EXPECT_GT(result.p_value, 0.01);
  EXPECT_LT(result.statistic, 0.05);
}

TEST(KsOneSampleTest, RejectsWrongDistribution) {
  RngStream rng(2);
  std::vector<double> sample(5000);
  for (auto& v : sample) v = rng.NextDouble() * rng.NextDouble();  // not U
  const KsResult result =
      KsTestOneSample(sample, [](double x) { return x; });
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KsOneSampleTest, BetaSampleAgainstBetaCdf) {
  RngStream rng(3);
  std::vector<double> sample(4000);
  for (auto& v : sample) v = SampleBeta(rng, 20.0, 80.0);
  const KsResult result = KsTestOneSample(
      sample, [](double x) { return BetaCdf(20.0, 80.0, x); });
  EXPECT_GT(result.p_value, 0.01);
}

TEST(KsOneSampleTest, EmptySampleThrows) {
  EXPECT_THROW(KsTestOneSample({}, [](double x) { return x; }),
               std::invalid_argument);
}

TEST(KsTwoSampleTest, SameDistributionPasses) {
  RngStream rng(4);
  std::vector<double> a(3000), b(3000);
  for (auto& v : a) v = SampleNormal(rng);
  for (auto& v : b) v = SampleNormal(rng);
  const KsResult result = KsTestTwoSample(a, b);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(KsTwoSampleTest, ShiftedDistributionFails) {
  RngStream rng(5);
  std::vector<double> a(3000), b(3000);
  for (auto& v : a) v = SampleNormal(rng);
  for (auto& v : b) v = SampleNormal(rng) + 0.5;
  const KsResult result = KsTestTwoSample(a, b);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_GT(result.statistic, 0.1);
}

TEST(KsTwoSampleTest, IdenticalSamplesZeroStatistic) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const KsResult result = KsTestTwoSample(a, a);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(KsTwoSampleTest, EmptyThrows) {
  EXPECT_THROW(KsTestTwoSample({}, {1.0}), std::invalid_argument);
  EXPECT_THROW(KsTestTwoSample({1.0}, {}), std::invalid_argument);
}

TEST(ChiSquareGofTest, AcceptsTrueDistribution) {
  RngStream rng(6);
  const std::vector<double> probabilities = {0.1, 0.2, 0.3, 0.4};
  std::vector<std::uint64_t> observed(4, 0);
  for (int i = 0; i < 50000; ++i) {
    ++observed[SampleCategorical(rng, {1.0, 2.0, 3.0, 4.0})];
  }
  const auto result = ChiSquareGofTest(observed, probabilities);
  EXPECT_GT(result.p_value, 0.001);
  EXPECT_EQ(result.degrees, 3u);
}

TEST(ChiSquareGofTest, RejectsWrongDistribution) {
  RngStream rng(7);
  std::vector<std::uint64_t> observed(4, 0);
  for (int i = 0; i < 50000; ++i) {
    ++observed[SampleCategorical(rng, {1.0, 1.0, 1.0, 1.0})];  // uniform
  }
  const std::vector<double> claimed = {0.1, 0.2, 0.3, 0.4};
  const auto result = ChiSquareGofTest(observed, claimed);
  EXPECT_LT(result.p_value, 1e-10);
}

TEST(ChiSquareGofTest, PoolsSparseCells) {
  // 10 cells with tiny tail probabilities must be merged, not divided by
  // near-zero expectations.
  std::vector<std::uint64_t> observed = {500, 480, 15, 3, 1, 0, 0, 1, 0, 0};
  std::vector<double> probabilities = {0.5,  0.48, 0.015, 0.003, 0.001,
                                       1e-4, 1e-4, 1e-4,  1e-4,  2e-4};
  const auto result = ChiSquareGofTest(observed, probabilities);
  EXPECT_LT(result.degrees, 9u);  // cells were pooled
  EXPECT_GT(result.p_value, 0.001);
}

TEST(ChiSquareGofTest, Validation) {
  EXPECT_THROW(ChiSquareGofTest({}, {}), std::invalid_argument);
  EXPECT_THROW(ChiSquareGofTest({1}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(ChiSquareGofTest({1, 2}, {-0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(ChiSquareGofTest({0, 0}, {0.5, 0.5}), std::invalid_argument);
}

// --- edge cases: defined behaviour instead of UB ---------------------------

TEST(KsOneSampleTest, SingleObservationHasExactStatistic) {
  // n = 1 against U(0,1): D = max(F(x), 1 - F(x)).
  const KsResult result =
      KsTestOneSample({0.3}, [](double x) { return x; });
  EXPECT_DOUBLE_EQ(result.statistic, 0.7);
  EXPECT_GT(result.p_value, 0.0);
  EXPECT_LE(result.p_value, 1.0);
}

TEST(KsOneSampleTest, TiedObservationsHaveExactStatistic) {
  // Two copies of 0.5 against U(0,1): the ECDF jumps by 2/n at the tie, so
  // D = |0.5 - 0| = 0.5 from the lower side of the first tied point.
  const KsResult result =
      KsTestOneSample({0.5, 0.5}, [](double x) { return x; });
  EXPECT_DOUBLE_EQ(result.statistic, 0.5);
}

TEST(KsOneSampleTest, NonFiniteSampleThrowsInsteadOfUb) {
  // NaN breaks std::sort's strict weak ordering — that would be UB, so the
  // test must reject it with a defined error.
  const auto uniform = [](double x) { return x; };
  EXPECT_THROW(
      KsTestOneSample({0.1, std::nan(""), 0.5}, uniform),
      std::invalid_argument);
  EXPECT_THROW(
      KsTestOneSample({std::numeric_limits<double>::infinity()}, uniform),
      std::invalid_argument);
}

TEST(KsOneSampleTest, NonFiniteCdfValueThrows) {
  EXPECT_THROW(
      KsTestOneSample({0.5}, [](double) { return std::nan(""); }),
      std::invalid_argument);
}

TEST(KsOneSampleTest, OutOfRangeCdfValuesAreClamped) {
  // A sloppy CDF returning slightly > 1 must not produce D > 1.
  const KsResult result =
      KsTestOneSample({0.2, 0.4, 0.9}, [](double x) { return x * 1.2; });
  EXPECT_LE(result.statistic, 1.0);
}

TEST(KsTwoSampleTest, NonFiniteSampleThrowsInsteadOfUb) {
  EXPECT_THROW(KsTestTwoSample({0.1, std::nan("")}, {0.2, 0.3}),
               std::invalid_argument);
  EXPECT_THROW(KsTestTwoSample({0.1, 0.2}, {std::nan("")}),
               std::invalid_argument);
}

TEST(KsTwoSampleTest, TiesAcrossSamplesHaveExactStatistic) {
  // a = {1,1,2}, b = {1,2,2}: after x=1, Fa=2/3 vs Fb=1/3 (D = 1/3); after
  // x=2 both reach 1.  Ties advance both ECDFs before comparing.
  const KsResult result = KsTestTwoSample({1.0, 1.0, 2.0}, {1.0, 2.0, 2.0});
  EXPECT_NEAR(result.statistic, 1.0 / 3.0, 1e-12);
}

TEST(KsTwoSampleTest, SingleObservationEach) {
  const KsResult equal = KsTestTwoSample({1.0}, {1.0});
  EXPECT_DOUBLE_EQ(equal.statistic, 0.0);
  const KsResult disjoint = KsTestTwoSample({1.0}, {2.0});
  EXPECT_DOUBLE_EQ(disjoint.statistic, 1.0);
}

// --- p-value approximation pinned against published K-S tables -------------

TEST(KolmogorovSurvivalTest, PublishedAsymptoticCriticalValues) {
  // Smirnov's asymptotic critical values K_alpha with Q(K_alpha) = alpha
  // (e.g. Massey 1951, Table 1 footnote): alpha = 0.10, 0.05, 0.01, 0.001.
  EXPECT_NEAR(KolmogorovSurvival(1.22385), 0.10, 2e-3);
  EXPECT_NEAR(KolmogorovSurvival(1.35810), 0.05, 2e-3);
  EXPECT_NEAR(KolmogorovSurvival(1.62762), 0.01, 5e-4);
  EXPECT_NEAR(KolmogorovSurvival(1.94947), 0.001, 1e-4);
}

// A sorted sample whose one-sample D is exactly `d` at size n: x_i =
// max(0, (i+1)/n - d), so every positive point has upper gap exactly d.
std::vector<double> SampleWithStatistic(std::size_t n, double d) {
  std::vector<double> sample(n);
  for (std::size_t i = 0; i < n; ++i) {
    sample[i] = std::max(
        0.0, static_cast<double>(i + 1) / static_cast<double>(n) - d);
  }
  return sample;
}

TEST(KsOneSampleTest, PValueMatchesMasseyTableAtN5) {
  // Massey (1951): the n = 5, alpha = 0.05 critical value is D = 0.565.
  // Stephens' effective-n scaling must reproduce p ~ 0.05 there.
  const auto sample = SampleWithStatistic(5, 0.565);
  const KsResult result =
      KsTestOneSample(sample, [](double x) { return x; });
  EXPECT_NEAR(result.statistic, 0.565, 1e-12);
  EXPECT_NEAR(result.p_value, 0.05, 0.006);
}

TEST(KsOneSampleTest, PValueMatchesMasseyTableAtN10) {
  // Massey (1951): n = 10, alpha = 0.05 critical value is D = 0.410.
  const auto sample = SampleWithStatistic(10, 0.410);
  const KsResult result =
      KsTestOneSample(sample, [](double x) { return x; });
  EXPECT_NEAR(result.statistic, 0.410, 1e-12);
  EXPECT_NEAR(result.p_value, 0.05, 0.006);
}

TEST(KsOneSampleTest, PValueMatchesMasseyTableAtN20AlphaOne) {
  // Massey (1951): n = 20, alpha = 0.10 critical value is D = 0.264.
  const auto sample = SampleWithStatistic(20, 0.264);
  const KsResult result =
      KsTestOneSample(sample, [](double x) { return x; });
  EXPECT_NEAR(result.p_value, 0.10, 0.012);
}

}  // namespace
}  // namespace fairchain::math
