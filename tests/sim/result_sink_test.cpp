// Tests for the streaming result sinks: stable CSV schema, JSONL field
// correspondence, and deterministic double formatting.

#include "sim/result_sink.hpp"

#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "support/escape.hpp"

namespace fairchain::sim {
namespace {

CampaignRow SampleRow() {
  CampaignRow row;
  row.scenario = "demo";
  row.cell = 3;
  row.protocol = "cpos";
  row.miners = 5;
  row.whales = 2;
  row.a = 0.25;
  row.w = 0.01;
  row.v = 0.1;
  row.shards = 32;
  row.withhold = 1000;
  row.steps = 5000;
  row.replications = 100;
  row.cell_seed = 42;
  row.checkpoint = 7;
  row.step = 800;
  row.mean = 0.2;
  row.std_dev = 0.015;
  row.p05 = 0.17;
  row.p25 = 0.19;
  row.median = 0.2;
  row.p75 = 0.21;
  row.p95 = 0.23;
  row.min = 0.1;
  row.max = 0.3;
  row.unfair_probability = 0.05;
  row.convergence_step = 400;
  row.stake_dist = "pareto:1.16";
  row.gini = 0.42;
  row.hhi = 0.3;
  row.nakamoto = 2;
  row.top_decile_share = 0.6;
  row.gamma = 0.5;
  row.delay = 0.2;
  row.orphan_rate = 0.03;
  row.reorg_depth_mean = 1.5;
  row.reorg_depth_max = 4.0;
  return row;
}

TEST(ResultSinkTest, CsvHeaderSchemaIsStable) {
  // Pinned on purpose: downstream plotting scripts key on these columns.
  // New columns may only be appended (stake_dist..top_decile_share were,
  // then the chain-dynamics gamma..reorg_depth_max block).
  EXPECT_EQ(CsvSink::Header(),
            "scenario,cell,protocol,miners,whales,a,w,v,shards,withhold,"
            "steps,replications,cell_seed,checkpoint,step,mean,std_dev,p05,"
            "p25,median,p75,p95,min,max,unfair_probability,convergence_step,"
            "stake_dist,gini,hhi,nakamoto,top_decile_share,gamma,delay,"
            "orphan_rate,reorg_depth_mean,reorg_depth_max");
}

TEST(ResultSinkTest, CsvRowMatchesSchema) {
  std::ostringstream out;
  CsvSink sink(out);
  sink.BeginCampaign(ScenarioSpec{});
  sink.WriteRow(SampleRow());
  sink.EndCampaign();
  std::istringstream lines(out.str());
  std::string header;
  std::string row;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_EQ(header, CsvSink::Header());
  EXPECT_EQ(row,
            "demo,3,cpos,5,2,0.25,0.01,0.1,32,1000,5000,100,42,7,800,0.2,"
            "0.015,0.17,0.19,0.2,0.21,0.23,0.1,0.3,0.05,400,pareto:1.16,"
            "0.42,0.3,2,0.6,0.5,0.2,0.03,1.5,4");
}

TEST(ResultSinkTest, CsvNeverConvergedRendersAsNever) {
  CampaignRow row = SampleRow();
  row.convergence_step.reset();
  std::ostringstream out;
  CsvSink sink(out);
  sink.WriteRow(row);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find(",never,"), std::string::npos);
}

TEST(ResultSinkTest, DisabledPopulationMetricsRenderAsNanAndNull) {
  // A campaign with population metrics off leaves the appended metric
  // columns NaN: `nan` tokens in CSV, null in JSONL — never silent zeros.
  CampaignRow row = SampleRow();
  row.gini = std::numeric_limits<double>::quiet_NaN();
  row.hhi = std::numeric_limits<double>::quiet_NaN();
  row.nakamoto = std::numeric_limits<double>::quiet_NaN();
  row.top_decile_share = std::numeric_limits<double>::quiet_NaN();
  {
    std::ostringstream out;
    CsvSink sink(out);
    sink.WriteRow(row);
    EXPECT_NE(out.str().find(",pareto:1.16,nan,nan,nan,nan"),
              std::string::npos);
  }
  {
    std::ostringstream out;
    JsonlSink sink(out);
    sink.WriteRow(row);
    EXPECT_NE(out.str().find("\"gini\":null"), std::string::npos);
    EXPECT_NE(out.str().find("\"top_decile_share\":null"), std::string::npos);
  }
}

TEST(ResultSinkTest, IncentiveRowsRenderChainObservablesAsNanAndNull) {
  // Incentive-family cells never produce fork physics, so a
  // default-constructed row's orphan/reorg columns must read as "no data"
  // (nan in CSV, null in JSONL), while the gamma/delay axes keep their 0.0
  // defaults.
  CampaignRow row = SampleRow();
  row.gamma = 0.0;
  row.delay = 0.0;
  row.orphan_rate = std::numeric_limits<double>::quiet_NaN();
  row.reorg_depth_mean = std::numeric_limits<double>::quiet_NaN();
  row.reorg_depth_max = std::numeric_limits<double>::quiet_NaN();
  {
    std::ostringstream out;
    CsvSink sink(out);
    sink.WriteRow(row);
    EXPECT_NE(out.str().find(",0.6,0,0,nan,nan,nan"), std::string::npos);
  }
  {
    std::ostringstream out;
    JsonlSink sink(out);
    sink.WriteRow(row);
    EXPECT_NE(out.str().find("\"orphan_rate\":null"), std::string::npos);
    EXPECT_NE(out.str().find("\"reorg_depth_mean\":null"), std::string::npos);
    EXPECT_NE(out.str().find("\"reorg_depth_max\":null"), std::string::npos);
  }
}

TEST(ResultSinkTest, JsonlRowHasAllColumnsAndNullConvergence) {
  CampaignRow row = SampleRow();
  row.convergence_step.reset();
  std::ostringstream out;
  JsonlSink sink(out);
  sink.WriteRow(row);
  const std::string line = out.str();
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.substr(line.size() - 2), "}\n");
  // Every CSV column name appears as a JSON key.
  std::istringstream header(CsvSink::Header());
  std::string column;
  while (std::getline(header, column, ',')) {
    EXPECT_NE(line.find("\"" + column + "\":"), std::string::npos) << column;
  }
  EXPECT_NE(line.find("\"convergence_step\":null"), std::string::npos);
  // Seeds are full-range 64-bit: emitted as strings so JSON parsers that
  // store numbers as doubles cannot round them.
  EXPECT_NE(line.find("\"cell_seed\":\"42\""), std::string::npos);
}

TEST(ResultSinkTest, FormatDoubleIsShortestRoundTrip) {
  EXPECT_EQ(FormatDouble(0.2), "0.2");
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(0.1 + 0.2), "0.30000000000000004");
  EXPECT_EQ(std::stod(FormatDouble(1.0 / 3.0)), 1.0 / 3.0);
}

// --- escaping ---------------------------------------------------------------

TEST(EscapingTest, CsvFieldsWithoutSpecialsAreByteIdentical) {
  // The no-quoting fast path keeps existing campaign output unchanged.
  EXPECT_EQ(EscapeCsvField("table1"), "table1");
  EXPECT_EQ(EscapeCsvField("ML-PoS"), "ML-PoS");
  EXPECT_EQ(EscapeCsvField(""), "");
}

TEST(EscapingTest, CsvCommasQuotesAndNewlinesAreQuoted) {
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(EscapeCsvField("line1\nline2"), "\"line1\nline2\"");
  EXPECT_EQ(EscapeCsvField("cr\rhere"), "\"cr\rhere\"");
  EXPECT_EQ(EscapeCsvField("x, \"y\""), "\"x, \"\"y\"\"\"");
}

TEST(EscapingTest, JsonStringsEscapeQuotesBackslashesAndControls) {
  EXPECT_EQ(EscapeJsonString("plain"), "plain");
  EXPECT_EQ(EscapeJsonString("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeJsonString("back\\slash"), "back\\\\slash");
  EXPECT_EQ(EscapeJsonString("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(EscapeJsonString(std::string("nul\x01 end")), "nul\\u0001 end");
}

TEST(EscapingTest, JsonNumberRendersNonFiniteAsNull) {
  EXPECT_EQ(JsonNumber(0.25), "0.25");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(-std::numeric_limits<double>::infinity()), "null");
}

TEST(ResultSinkTest, JsonlRowWithNonFiniteMetricsStaysValidJson) {
  CampaignRow row = SampleRow();
  row.mean = std::numeric_limits<double>::quiet_NaN();
  row.max = std::numeric_limits<double>::infinity();
  std::ostringstream out;
  JsonlSink sink(out);
  sink.WriteRow(row);
  const std::string line = out.str();
  EXPECT_NE(line.find("\"mean\":null"), std::string::npos);
  EXPECT_NE(line.find("\"max\":null"), std::string::npos);
  // Bare nan/inf tokens are invalid JSON and must never appear.
  EXPECT_EQ(line.find("nan"), std::string::npos);
  EXPECT_EQ(line.find("inf"), std::string::npos);
}

TEST(ResultSinkTest, CsvRowWithNonFiniteMetricsUsesNanInfTokens) {
  // CSV has no null literal; the documented rendering is to_chars' tokens.
  CampaignRow row = SampleRow();
  row.mean = std::numeric_limits<double>::quiet_NaN();
  row.min = -std::numeric_limits<double>::infinity();
  std::ostringstream out;
  CsvSink sink(out);
  sink.WriteRow(row);
  EXPECT_NE(out.str().find(",nan,"), std::string::npos);
  EXPECT_NE(out.str().find(",-inf,"), std::string::npos);
}

TEST(ResultSinkTest, HostileScenarioNameWouldBeEscapedInBothFormats) {
  // ScenarioSpec::Validate forbids such names, but rows constructed by
  // hand must still serialise safely.
  CampaignRow row = SampleRow();
  row.scenario = "bad,\"name\"";
  {
    std::ostringstream out;
    CsvSink sink(out);
    sink.WriteRow(row);
    EXPECT_EQ(out.str().rfind("\"bad,\"\"name\"\"\",", 0), 0u);
  }
  {
    std::ostringstream out;
    JsonlSink sink(out);
    sink.WriteRow(row);
    EXPECT_NE(out.str().find("\"scenario\":\"bad,\\\"name\\\"\""),
              std::string::npos);
  }
}

}  // namespace
}  // namespace fairchain::sim
