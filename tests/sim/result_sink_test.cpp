// Tests for the streaming result sinks: stable CSV schema, JSONL field
// correspondence, and deterministic double formatting.

#include "sim/result_sink.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace fairchain::sim {
namespace {

CampaignRow SampleRow() {
  CampaignRow row;
  row.scenario = "demo";
  row.cell = 3;
  row.protocol = "cpos";
  row.miners = 5;
  row.whales = 2;
  row.a = 0.25;
  row.w = 0.01;
  row.v = 0.1;
  row.shards = 32;
  row.withhold = 1000;
  row.steps = 5000;
  row.replications = 100;
  row.cell_seed = 42;
  row.checkpoint = 7;
  row.step = 800;
  row.mean = 0.2;
  row.std_dev = 0.015;
  row.p05 = 0.17;
  row.p25 = 0.19;
  row.median = 0.2;
  row.p75 = 0.21;
  row.p95 = 0.23;
  row.min = 0.1;
  row.max = 0.3;
  row.unfair_probability = 0.05;
  row.convergence_step = 400;
  return row;
}

TEST(ResultSinkTest, CsvHeaderSchemaIsStable) {
  // Pinned on purpose: downstream plotting scripts key on these columns.
  // New columns may only be appended.
  EXPECT_EQ(CsvSink::Header(),
            "scenario,cell,protocol,miners,whales,a,w,v,shards,withhold,"
            "steps,replications,cell_seed,checkpoint,step,mean,std_dev,p05,"
            "p25,median,p75,p95,min,max,unfair_probability,convergence_step");
}

TEST(ResultSinkTest, CsvRowMatchesSchema) {
  std::ostringstream out;
  CsvSink sink(out);
  sink.BeginCampaign(ScenarioSpec{});
  sink.WriteRow(SampleRow());
  sink.EndCampaign();
  std::istringstream lines(out.str());
  std::string header;
  std::string row;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_EQ(header, CsvSink::Header());
  EXPECT_EQ(row,
            "demo,3,cpos,5,2,0.25,0.01,0.1,32,1000,5000,100,42,7,800,0.2,"
            "0.015,0.17,0.19,0.2,0.21,0.23,0.1,0.3,0.05,400");
}

TEST(ResultSinkTest, CsvNeverConvergedRendersAsNever) {
  CampaignRow row = SampleRow();
  row.convergence_step.reset();
  std::ostringstream out;
  CsvSink sink(out);
  sink.WriteRow(row);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find(",never\n"), std::string::npos);
}

TEST(ResultSinkTest, JsonlRowHasAllColumnsAndNullConvergence) {
  CampaignRow row = SampleRow();
  row.convergence_step.reset();
  std::ostringstream out;
  JsonlSink sink(out);
  sink.WriteRow(row);
  const std::string line = out.str();
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.substr(line.size() - 2), "}\n");
  // Every CSV column name appears as a JSON key.
  std::istringstream header(CsvSink::Header());
  std::string column;
  while (std::getline(header, column, ',')) {
    EXPECT_NE(line.find("\"" + column + "\":"), std::string::npos) << column;
  }
  EXPECT_NE(line.find("\"convergence_step\":null"), std::string::npos);
  // Seeds are full-range 64-bit: emitted as strings so JSON parsers that
  // store numbers as doubles cannot round them.
  EXPECT_NE(line.find("\"cell_seed\":\"42\""), std::string::npos);
}

TEST(ResultSinkTest, FormatDoubleIsShortestRoundTrip) {
  EXPECT_EQ(FormatDouble(0.2), "0.2");
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(0.1 + 0.2), "0.30000000000000004");
  EXPECT_EQ(std::stod(FormatDouble(1.0 / 3.0)), 1.0 / 3.0);
}

}  // namespace
}  // namespace fairchain::sim
