// Tests for the campaign cost model: prior ordering across protocol
// families, miner-count interpolation, EWMA refinement from observed
// chunks, and the safety properties the planner relies on (estimates are
// always finite and positive, Reset restores pure priors).

#include "sim/cost_model.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/scenario_spec.hpp"

namespace fairchain::sim {
namespace {

CampaignCell Cell(const std::string& protocol, std::size_t miners = 2) {
  CampaignCell cell;
  cell.protocol = protocol;
  cell.miners = miners;
  return cell;
}

CampaignCell ChainCell(const std::string& dynamics) {
  CampaignCell cell;
  cell.protocol = dynamics;
  cell.chain_dynamics = true;
  return cell;
}

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override { CostModel::Global().Reset(); }
  void TearDown() override { CostModel::Global().Reset(); }
};

TEST_F(CostModelTest, PriorsOrderProtocolsByKernelWeight) {
  // The spread the scheduler exists to balance: a C-PoS epoch walks P
  // committees per step while a PoW step is one weighted draw.  The model
  // must reproduce the coarse ordering cpos >> slpos > mlpos > pow at the
  // same steps and miner count.
  CostModel& model = CostModel::Global();
  const std::uint64_t steps = 1000;
  const double pow_ns = model.EstimateReplicationNs(Cell("pow"), steps);
  const double mlpos_ns = model.EstimateReplicationNs(Cell("mlpos"), steps);
  const double slpos_ns = model.EstimateReplicationNs(Cell("slpos"), steps);
  const double cpos_ns = model.EstimateReplicationNs(Cell("cpos"), steps);
  EXPECT_GT(mlpos_ns, pow_ns);
  EXPECT_GT(slpos_ns, mlpos_ns);
  EXPECT_GT(cpos_ns, slpos_ns);
  // C-PoS at two miners really is an order of magnitude above PoW.
  EXPECT_GT(cpos_ns, 10.0 * pow_ns);
}

TEST_F(CostModelTest, EstimatesScaleLinearlyInSteps) {
  CostModel& model = CostModel::Global();
  const double at_1k = model.EstimateReplicationNs(Cell("pow"), 1000);
  const double at_4k = model.EstimateReplicationNs(Cell("pow"), 4000);
  EXPECT_DOUBLE_EQ(at_4k, 4.0 * at_1k);
}

TEST_F(CostModelTest, MinerCountInterpolatesMonotonically) {
  // Priors are tabulated at powers of ten; anything between interpolates
  // log-linearly, so cost must grow monotonically with the miner count.
  CostModel& model = CostModel::Global();
  const double at_2 = model.EstimateReplicationNs(Cell("pow", 2), 1000);
  const double at_10 = model.EstimateReplicationNs(Cell("pow", 10), 1000);
  const double at_50 = model.EstimateReplicationNs(Cell("pow", 50), 1000);
  const double at_100 = model.EstimateReplicationNs(Cell("pow", 100), 1000);
  EXPECT_LT(at_2, at_10);
  EXPECT_LT(at_10, at_50);
  EXPECT_LT(at_50, at_100);
}

TEST_F(CostModelTest, ChainCellsUseTheChainPrior) {
  // Chain dynamics run the event machine, not the incentive kernels: both
  // dynamics share one flat prior regardless of name.
  CostModel& model = CostModel::Global();
  const double selfish = model.EstimateReplicationNs(ChainCell("selfish"), 500);
  const double forkrace =
      model.EstimateReplicationNs(ChainCell("forkrace"), 500);
  EXPECT_DOUBLE_EQ(selfish, forkrace);
  EXPECT_GT(selfish, 0.0);
}

TEST_F(CostModelTest, UnknownProtocolFallsBackFinite) {
  CostModel& model = CostModel::Global();
  const double estimate =
      model.EstimateReplicationNs(Cell("no-such-protocol"), 1000);
  EXPECT_TRUE(std::isfinite(estimate));
  EXPECT_GT(estimate, 0.0);
}

TEST_F(CostModelTest, ObserveRefinesTowardMeasuredCost) {
  // Feed chunks that imply 100 ns/step — far above the PoW prior — and the
  // EWMA must pull the estimate most of the way there within a few
  // observations, without overshooting.
  CostModel& model = CostModel::Global();
  const CampaignCell cell = Cell("pow");
  const double prior = model.EstimateReplicationNs(cell, 1000);
  for (int i = 0; i < 8; ++i) {
    // 4 replications x 1000 steps in 400 us => 100 ns/step.
    model.Observe(cell, 1000, 4, 400000);
  }
  const double refined = model.EstimateReplicationNs(cell, 1000);
  EXPECT_GT(refined, prior);
  EXPECT_GT(refined, 0.5 * 100.0 * 1000.0);
  EXPECT_LE(refined, 100.0 * 1000.0 * 1.01);
}

TEST_F(CostModelTest, ObservationsStayInTheirMinerBucket) {
  // Refining the 100-miner bucket must not disturb 2-miner estimates:
  // their per-step costs differ by an order of magnitude and share only a
  // protocol name.
  CostModel& model = CostModel::Global();
  const double two_before = model.EstimateReplicationNs(Cell("pow", 2), 1000);
  for (int i = 0; i < 8; ++i) {
    model.Observe(Cell("pow", 100), 1000, 4, 4000000);
  }
  const double two_after = model.EstimateReplicationNs(Cell("pow", 2), 1000);
  EXPECT_DOUBLE_EQ(two_before, two_after);
}

TEST_F(CostModelTest, DegenerateObservationsAreIgnored) {
  CostModel& model = CostModel::Global();
  const CampaignCell cell = Cell("mlpos");
  const double before = model.EstimateReplicationNs(cell, 1000);
  model.Observe(cell, 0, 4, 1000);     // zero steps
  model.Observe(cell, 1000, 0, 1000);  // zero replications
  model.Observe(cell, 1000, 4, 0);     // zero wall time
  EXPECT_DOUBLE_EQ(model.EstimateReplicationNs(cell, 1000), before);
}

TEST_F(CostModelTest, ResetRestoresPriors) {
  CostModel& model = CostModel::Global();
  const CampaignCell cell = Cell("fslpos");
  const double prior = model.EstimateReplicationNs(cell, 1000);
  model.Observe(cell, 1000, 4, 4000000);
  EXPECT_NE(model.EstimateReplicationNs(cell, 1000), prior);
  model.Reset();
  EXPECT_DOUBLE_EQ(model.EstimateReplicationNs(cell, 1000), prior);
}

}  // namespace
}  // namespace fairchain::sim
