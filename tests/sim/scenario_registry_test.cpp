// Tests for the built-in scenario registry: coverage of the paper's
// artifacts, validity of every entry, and lookup semantics.

#include "sim/scenario_registry.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace fairchain::sim {
namespace {

TEST(ScenarioRegistryTest, BuiltInHasAtLeastTenScenarios) {
  EXPECT_GE(ScenarioRegistry::BuiltIn().size(), 10u);
}

TEST(ScenarioRegistryTest, AllPaperArtifactsRegistered) {
  const ScenarioRegistry& registry = ScenarioRegistry::BuiltIn();
  for (const char* name : {"fig1", "fig2", "fig3", "fig4a", "fig4b", "fig5",
                           "fig5d", "fig6", "table1"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
}

TEST(ScenarioRegistryTest, AtLeastThreeNewWorkloadsRegistered) {
  const ScenarioRegistry& registry = ScenarioRegistry::BuiltIn();
  for (const char* name :
       {"whale-sweep", "multi-whale", "withhold-grid", "committee"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
}

TEST(ScenarioRegistryTest, EveryEntryValidatesAndExpands) {
  const ScenarioRegistry& registry = ScenarioRegistry::BuiltIn();
  for (const std::string& name : registry.Names()) {
    const ScenarioSpec& spec = registry.Get(name);
    EXPECT_NO_THROW(spec.Validate()) << name;
    EXPECT_GE(spec.CellCount(), 1u) << name;
    EXPECT_FALSE(spec.description.empty()) << name;
    EXPECT_EQ(spec.ExpandCells().size(), spec.CellCount()) << name;
  }
}

TEST(ScenarioRegistryTest, Table1GridMatchesThePaper) {
  const ScenarioSpec& spec = ScenarioRegistry::BuiltIn().Get("table1");
  // 4 protocols x 5 miner counts.
  EXPECT_EQ(spec.CellCount(), 20u);
  EXPECT_EQ(spec.miner_counts,
            (std::vector<std::size_t>{2, 3, 4, 5, 10}));
}

TEST(ScenarioRegistryTest, ChainDynamicsScenariosRegistered) {
  const ScenarioRegistry& registry = ScenarioRegistry::BuiltIn();
  for (const char* name : {"selfish-grid", "propagation-delay-sweep",
                           "orphan-hashrate-sweep"}) {
    ASSERT_TRUE(registry.Contains(name)) << name;
    const ScenarioSpec& spec = registry.Get(name);
    EXPECT_EQ(spec.family, ScenarioFamily::kChain) << name;
    for (const CampaignCell& cell : spec.ExpandCells()) {
      EXPECT_TRUE(cell.chain_dynamics) << name;
    }
  }
  // The grids advertised in the descriptions.
  EXPECT_EQ(registry.Get("selfish-grid").CellCount(), 9u);
  EXPECT_EQ(registry.Get("propagation-delay-sweep").CellCount(), 5u);
  EXPECT_EQ(registry.Get("orphan-hashrate-sweep").CellCount(), 6u);
}

TEST(ScenarioRegistryTest, UnknownNameSuggestsClosestScenario) {
  try {
    ScenarioRegistry::BuiltIn().Get("selfish-gird");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("did you mean 'selfish-grid'"), std::string::npos)
        << what;
  }
  try {
    ScenarioRegistry::BuiltIn().Get("propagation");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    // Too many edits for the distance rule; the shared prefix still
    // resolves a suggestion.
    EXPECT_NE(std::string(error.what())
                  .find("did you mean 'propagation-delay-sweep'"),
              std::string::npos)
        << error.what();
  }
}

TEST(ScenarioRegistryTest, UnknownNameThrowsWithKnownNames) {
  try {
    ScenarioRegistry::BuiltIn().Get("nosuch");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("table1"), std::string::npos);
  }
}

TEST(ScenarioRegistryTest, DuplicateRegistrationThrows) {
  ScenarioRegistry registry;
  ScenarioSpec spec;
  spec.name = "dup";
  registry.Register(spec);
  EXPECT_THROW(registry.Register(spec), std::invalid_argument);
}

}  // namespace
}  // namespace fairchain::sim
