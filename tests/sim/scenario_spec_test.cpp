// Tests for the declarative scenario spec: parsing, validation, grid
// expansion, flag overrides, and text round-tripping.

#include "sim/scenario_spec.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include <gtest/gtest.h>

namespace fairchain::sim {
namespace {

TEST(ScenarioSpecTest, DefaultsAreValidSingleCell) {
  ScenarioSpec spec;
  EXPECT_NO_THROW(spec.Validate());
  EXPECT_EQ(spec.CellCount(), 1u);
  const auto cells = spec.ExpandCells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].protocol, "mlpos");
  EXPECT_DOUBLE_EQ(cells[0].a, 0.2);
}

TEST(ScenarioSpecTest, FromTextParsesListsAndScalars) {
  const ScenarioSpec spec = ScenarioSpec::FromText(
      "# a comment\n"
      "name=demo\n"
      "description=two protocols, two allocations\n"
      "protocols=pow, slpos\n"
      "a=0.1, 0.3\n"
      "steps=1234\n"
      "reps=77\n"
      "seed=9\n"
      "spacing=log\n"
      "eps=0.2\n"
      "delta=0.05\n");
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.protocols, (std::vector<std::string>{"pow", "slpos"}));
  EXPECT_EQ(spec.allocations, (std::vector<double>{0.1, 0.3}));
  EXPECT_EQ(spec.steps, 1234u);
  EXPECT_EQ(spec.replications, 77u);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.spacing, CheckpointSpacing::kLog);
  EXPECT_DOUBLE_EQ(spec.fairness.epsilon, 0.2);
  EXPECT_DOUBLE_EQ(spec.fairness.delta, 0.05);
  EXPECT_EQ(spec.CellCount(), 4u);
}

TEST(ScenarioSpecTest, FromTextRejectsUnknownKeys) {
  EXPECT_THROW(ScenarioSpec::FromText("repz=100\n"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::FromText("not an assignment\n"),
               std::invalid_argument);
}

TEST(ScenarioSpecTest, FromTextRejectsMalformedValues) {
  EXPECT_THROW(ScenarioSpec::FromText("a=zebra\n"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::FromText("steps=12x\n"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::FromText("spacing=cubic\n"),
               std::invalid_argument);
}

TEST(ScenarioSpecTest, ValidateRejectsBadAxes) {
  ScenarioSpec spec;
  spec.protocols = {"nosuch"};
  EXPECT_THROW(spec.Validate(), std::invalid_argument);

  spec = ScenarioSpec();
  spec.allocations = {1.5};
  EXPECT_THROW(spec.Validate(), std::invalid_argument);

  spec = ScenarioSpec();
  spec.miner_counts = {1};
  EXPECT_THROW(spec.Validate(), std::invalid_argument);

  spec = ScenarioSpec();
  spec.whale_counts = {2};  // >= miner count of 2
  EXPECT_THROW(spec.Validate(), std::invalid_argument);

  spec = ScenarioSpec();
  spec.replications = 0;
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
}

TEST(ScenarioSpecTest, ExpandCellsIsRowMajorWithProtocolSlowest) {
  ScenarioSpec spec;
  spec.protocols = {"pow", "mlpos"};
  spec.allocations = {0.1, 0.2};
  const auto cells = spec.ExpandCells();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].protocol, "pow");
  EXPECT_DOUBLE_EQ(cells[0].a, 0.1);
  EXPECT_EQ(cells[1].protocol, "pow");
  EXPECT_DOUBLE_EQ(cells[1].a, 0.2);
  EXPECT_EQ(cells[2].protocol, "mlpos");
  EXPECT_DOUBLE_EQ(cells[2].a, 0.1);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
  }
}

TEST(ScenarioSpecTest, CellStakesSplitWhalesAndMinnows) {
  CampaignCell cell;
  cell.miners = 10;
  cell.whales = 2;
  cell.a = 0.4;
  const auto stakes = cell.Stakes();
  ASSERT_EQ(stakes.size(), 10u);
  EXPECT_DOUBLE_EQ(stakes[0], 0.2);
  EXPECT_DOUBLE_EQ(stakes[1], 0.2);
  double total = 0.0;
  for (const double s : stakes) total += s;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(stakes[2], 0.6 / 8.0);
}

TEST(ScenarioSpecTest, ValidateRejectsNamesThatWouldCorruptSinks) {
  ScenarioSpec spec;
  for (const char* name : {"bad,name", "bad\"name", "bad name", "{}"}) {
    spec.name = name;
    EXPECT_THROW(spec.Validate(), std::invalid_argument) << name;
  }
  spec.name = "ok-name_2.0";
  EXPECT_NO_THROW(spec.Validate());
}

TEST(ScenarioSpecTest, FromFileRejectsMissingAndEmptyFiles) {
  EXPECT_THROW(ScenarioSpec::FromFile("/nonexistent/path.spec"),
               std::runtime_error);
  // A directory opens but reads as empty — must not silently become the
  // all-defaults campaign.
  EXPECT_THROW(ScenarioSpec::FromFile("/tmp"), std::runtime_error);
  const std::string path = "scenario_spec_test_empty.spec";
  { std::ofstream(path) << "   \n# only a comment\n"; }
  EXPECT_THROW(ScenarioSpec::FromFile(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ScenarioSpecTest, ApplyOverridesReplacesAxesAndScalars) {
  ScenarioSpec spec;
  const FlagSet flags = FlagSet::Parse(
      {"--reps", "200", "--protocols", "pow,cpos", "--a", "0.1,0.2,0.3"});
  spec.ApplyOverrides(flags);
  EXPECT_EQ(spec.replications, 200u);
  EXPECT_EQ(spec.protocols, (std::vector<std::string>{"pow", "cpos"}));
  EXPECT_EQ(spec.allocations.size(), 3u);
  EXPECT_NO_THROW(spec.Validate());
}

TEST(ScenarioSpecTest, ToTextRoundTripsFullDoublePrecision) {
  ScenarioSpec spec;
  spec.allocations = {0.123456789012345, 1.0 / 3.0};
  spec.fairness.epsilon = 0.123456789;
  const ScenarioSpec parsed = ScenarioSpec::FromText(spec.ToText());
  EXPECT_EQ(parsed.allocations, spec.allocations);  // bitwise, not near
  EXPECT_EQ(parsed.fairness.epsilon, spec.fairness.epsilon);
}

TEST(ScenarioSpecTest, ValuesMayContainHashOnlyWholeLineComments) {
  const ScenarioSpec spec = ScenarioSpec::FromText(
      "# leading comment\n"
      "description=sweep #2 of the grid\n");
  EXPECT_EQ(spec.description, "sweep #2 of the grid");
}

TEST(ScenarioSpecTest, ToTextRoundTrips) {
  ScenarioSpec spec;
  spec.name = "roundtrip";
  spec.description = "round trip me";
  spec.protocols = {"slpos", "fslpos"};
  spec.allocations = {0.25, 0.4};
  spec.rewards = {0.001};
  spec.miner_counts = {2, 5};
  spec.withhold_periods = {0, 500};
  spec.steps = 2500;
  spec.replications = 123;
  spec.spacing = CheckpointSpacing::kLog;
  const ScenarioSpec parsed = ScenarioSpec::FromText(spec.ToText());
  EXPECT_EQ(parsed.name, spec.name);
  EXPECT_EQ(parsed.description, spec.description);
  EXPECT_EQ(parsed.protocols, spec.protocols);
  EXPECT_EQ(parsed.allocations, spec.allocations);
  EXPECT_EQ(parsed.rewards, spec.rewards);
  EXPECT_EQ(parsed.miner_counts, spec.miner_counts);
  EXPECT_EQ(parsed.withhold_periods, spec.withhold_periods);
  EXPECT_EQ(parsed.steps, spec.steps);
  EXPECT_EQ(parsed.replications, spec.replications);
  EXPECT_EQ(parsed.spacing, spec.spacing);
  EXPECT_EQ(parsed.CellCount(), spec.CellCount());
}

// --- stake distributions -----------------------------------------------------

TEST(StakeDistributionTest, ParsesAllForms) {
  EXPECT_EQ(ParseStakeDistribution("split").kind,
            StakeDistribution::Kind::kSplit);
  const StakeDistribution pareto = ParseStakeDistribution("pareto:1.16");
  EXPECT_EQ(pareto.kind, StakeDistribution::Kind::kPareto);
  EXPECT_DOUBLE_EQ(pareto.parameter, 1.16);
  const StakeDistribution zipf = ParseStakeDistribution("zipf:0.8");
  EXPECT_EQ(zipf.kind, StakeDistribution::Kind::kZipf);
  EXPECT_DOUBLE_EQ(zipf.parameter, 0.8);
}

TEST(StakeDistributionTest, RejectsMalformedTokens) {
  EXPECT_THROW(ParseStakeDistribution("pareto"), std::invalid_argument);
  EXPECT_THROW(ParseStakeDistribution("pareto:"), std::invalid_argument);
  EXPECT_THROW(ParseStakeDistribution("pareto:0"), std::invalid_argument);
  EXPECT_THROW(ParseStakeDistribution("pareto:-1"), std::invalid_argument);
  EXPECT_THROW(ParseStakeDistribution("zipf:-0.1"), std::invalid_argument);
  EXPECT_THROW(ParseStakeDistribution("zipf:abc"), std::invalid_argument);
  EXPECT_THROW(ParseStakeDistribution("uniform"), std::invalid_argument);
  EXPECT_THROW(ParseStakeDistribution(""), std::invalid_argument);
}

TEST(StakeDistributionTest, ParetoStakesAreDescendingNormalisedHeavyTailed) {
  CampaignCell cell;
  cell.miners = 1000;
  cell.stake_dist = "pareto:1.16";
  const std::vector<double> stakes = cell.Stakes();
  ASSERT_EQ(stakes.size(), 1000u);
  double total = 0.0;
  for (std::size_t i = 0; i < stakes.size(); ++i) {
    EXPECT_GT(stakes[i], 0.0);
    if (i > 0) {
      EXPECT_LT(stakes[i], stakes[i - 1]);  // richest first
    }
    total += stakes[i];
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Heavy tail: the tracked (richest) miner holds far more than 1/m.
  EXPECT_GT(stakes[0], 50.0 / 1000.0);
}

TEST(StakeDistributionTest, ZipfStakesFollowPowerLawRanks) {
  CampaignCell cell;
  cell.miners = 4;
  cell.stake_dist = "zipf:1";
  const std::vector<double> stakes = cell.Stakes();
  const double h4 = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
  ASSERT_EQ(stakes.size(), 4u);
  EXPECT_NEAR(stakes[0], 1.0 / h4, 1e-12);
  EXPECT_NEAR(stakes[1], 0.5 / h4, 1e-12);
  EXPECT_NEAR(stakes[3], 0.25 / h4, 1e-12);
}

TEST(StakeDistributionTest, StakesAreDeterministic) {
  CampaignCell cell;
  cell.miners = 100;
  cell.stake_dist = "pareto:2";
  EXPECT_EQ(cell.Stakes(), cell.Stakes());
}

TEST(ScenarioSpecTest, StakesAxisExpandsAsFastestVaryingAxis) {
  ScenarioSpec spec;
  spec.protocols = {"pow", "mlpos"};
  spec.stake_dists = {"split", "pareto:1.16"};
  const std::vector<CampaignCell> cells = spec.ExpandCells();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].protocol, "pow");
  EXPECT_EQ(cells[0].stake_dist, "split");
  EXPECT_EQ(cells[1].protocol, "pow");
  EXPECT_EQ(cells[1].stake_dist, "pareto:1.16");
  EXPECT_EQ(cells[2].protocol, "mlpos");
  EXPECT_EQ(cells[2].stake_dist, "split");
}

TEST(ScenarioSpecTest, StakesAndPopulationRoundTripThroughText) {
  ScenarioSpec spec;
  spec.name = "dist-roundtrip";
  spec.stake_dists = {"pareto:1.16", "zipf:1", "split"};
  spec.population_metrics = false;
  const ScenarioSpec parsed = ScenarioSpec::FromText(spec.ToText());
  EXPECT_EQ(parsed.stake_dists, spec.stake_dists);
  EXPECT_EQ(parsed.population_metrics, spec.population_metrics);
  EXPECT_EQ(parsed.CellCount(), spec.CellCount());
}

TEST(ScenarioSpecTest, StakesAndPopulationApplyAsOverrides) {
  ScenarioSpec spec;
  const FlagSet flags = FlagSet::Parse(
      {"--stakes", "zipf:0.5,split", "--population", "off"});
  spec.ApplyOverrides(flags);
  EXPECT_EQ(spec.stake_dists,
            (std::vector<std::string>{"zipf:0.5", "split"}));
  EXPECT_FALSE(spec.population_metrics);
  EXPECT_NO_THROW(spec.Validate());
}

TEST(ScenarioSpecTest, InvalidStakesOrPopulationValuesThrow) {
  EXPECT_THROW(ScenarioSpec::FromText("stakes=pareto:-3\n"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::FromText("population=maybe\n"),
               std::invalid_argument);
  ScenarioSpec spec;
  spec.stake_dists = {"gauss:1"};
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
}

TEST(StakeDistributionTest, DegenerateParametersFailOnTheExpandingThread) {
  // pow((i+0.5)/m, -1/alpha) overflows to inf for tiny alpha; after
  // normalisation the stakes are NaN.  Stakes() must throw here — on the
  // thread that expands the cell — because execution-backend jobs are not
  // allowed to throw (the old behaviour was std::terminate inside a
  // ThreadPool worker).
  CampaignCell cell;
  cell.miners = 100;
  cell.stake_dist = "pareto:0.001";
  EXPECT_THROW(cell.Stakes(), std::invalid_argument);
  cell.stake_dist = "zipf:5000";  // (i+1)^-5000 underflows all but rank 0
  EXPECT_NO_THROW(cell.Stakes());  // underflow to 0 is fine: rank 0 wins
}

TEST(ScenarioSpecTest, FinalLambdasKeyParsesRoundTripsAndOverrides) {
  EXPECT_TRUE(ScenarioSpec().keep_final_lambdas);  // default stays on
  ScenarioSpec spec = ScenarioSpec::FromText("final_lambdas=off\n");
  EXPECT_FALSE(spec.keep_final_lambdas);
  const ScenarioSpec parsed = ScenarioSpec::FromText(spec.ToText());
  EXPECT_FALSE(parsed.keep_final_lambdas);

  ScenarioSpec overridden;
  overridden.ApplyOverrides(
      FlagSet::Parse({"--final_lambdas", "off"}));
  EXPECT_FALSE(overridden.keep_final_lambdas);

  EXPECT_THROW(ScenarioSpec::FromText("final_lambdas=sometimes\n"),
               std::invalid_argument);
}

// --- error paths: every failure names the problem actionably ----------------

// Captures the exception message of a parse/validate failure.
template <typename Fn>
std::string FailureMessage(Fn&& fn) {
  try {
    fn();
  } catch (const std::exception& error) {
    return error.what();
  }
  return "";
}

TEST(ScenarioSpecTest, DuplicateKeysAreRejectedNamingBothLines) {
  const std::string message = FailureMessage([] {
    ScenarioSpec::FromText("steps=100\nreps=50\nreps=200\n");
  });
  EXPECT_NE(message.find("duplicate key 'reps'"), std::string::npos)
      << message;
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
}

TEST(ScenarioSpecTest, MalformedAssignmentNamesLineAndContent) {
  const std::string message = FailureMessage([] {
    ScenarioSpec::FromText("steps=100\nthis is not an assignment\n");
  });
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("not an assignment"), std::string::npos) << message;
}

TEST(ScenarioSpecTest, MalformedNumberNamesKeyAndValue) {
  const std::string message =
      FailureMessage([] { ScenarioSpec::FromText("steps=soon\n"); });
  EXPECT_NE(message.find("steps"), std::string::npos) << message;
  EXPECT_NE(message.find("'soon'"), std::string::npos) << message;
}

TEST(ScenarioSpecTest, OutOfRangeStakesNameTheConstraint) {
  ScenarioSpec spec;
  spec.allocations = {1.5};
  const std::string message = FailureMessage([&] { spec.Validate(); });
  EXPECT_NE(message.find("every a must lie in (0, 1)"), std::string::npos)
      << message;
  spec.allocations = {0.0};
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
  spec.allocations = {-0.2};
  EXPECT_THROW(spec.Validate(), std::invalid_argument);
}

TEST(ScenarioSpecTest, UnknownProtocolNamesTheOffender) {
  const std::string message = FailureMessage([] {
    ScenarioSpec::FromText("protocols=mlpos,btc\n").Validate();
  });
  EXPECT_NE(message.find("unknown protocol 'btc'"), std::string::npos)
      << message;
}

TEST(ScenarioSpecTest, UnknownKeyNamesTheKey) {
  const std::string message =
      FailureMessage([] { ScenarioSpec::FromText("stepz=100\n"); });
  EXPECT_NE(message.find("unknown key 'stepz'"), std::string::npos)
      << message;
}

TEST(ScenarioSpecTest, OverridesMayRepeatKeysParsedFromText) {
  // Duplicate rejection is a FromText contract only: CLI overrides
  // legitimately re-assign keys that the spec text already set.
  ScenarioSpec spec = ScenarioSpec::FromText("reps=100\n");
  const FlagSet flags = FlagSet::Parse({"--reps", "250"});
  spec.ApplyOverrides(flags);
  EXPECT_EQ(spec.replications, 250u);
}

// --- chain-dynamics family ---------------------------------------------------

TEST(ScenarioSpecTest, ChainFamilyParsesExpandsAndRoundTrips) {
  ScenarioSpec spec = ScenarioSpec::FromText(
      "name=chain-grid\n"
      "description=chain family round trip\n"
      "family=chain\n"
      "protocols=selfish,forkrace\n"
      "a=0.3,0.45\n"
      "gamma=0,0.5\n"
      "delay=0,0.25\n"
      "steps=100\n"
      "reps=10\n");
  EXPECT_EQ(spec.family, ScenarioFamily::kChain);
  EXPECT_EQ(spec.CellCount(), 2u * 2u * 2u * 2u);
  const std::vector<CampaignCell> cells = spec.ExpandCells();
  ASSERT_EQ(cells.size(), 16u);
  for (const CampaignCell& cell : cells) {
    EXPECT_TRUE(cell.chain_dynamics);
    EXPECT_EQ(cell.miners, 2u);
  }
  // delay is the fastest-varying axis, gamma the next.
  EXPECT_EQ(cells[0].delay, 0.0);
  EXPECT_EQ(cells[1].delay, 0.25);
  EXPECT_EQ(cells[0].gamma, 0.0);
  EXPECT_EQ(cells[2].gamma, 0.5);
  EXPECT_EQ(cells[0].protocol, "selfish");
  EXPECT_EQ(cells[8].protocol, "forkrace");

  const ScenarioSpec parsed = ScenarioSpec::FromText(spec.ToText());
  EXPECT_EQ(parsed.family, ScenarioFamily::kChain);
  EXPECT_EQ(parsed.gammas, spec.gammas);
  EXPECT_EQ(parsed.delays, spec.delays);
  EXPECT_EQ(parsed.CellCount(), spec.CellCount());
}

TEST(ScenarioSpecTest, IncentiveToTextOmitsChainKeys) {
  // The incentive family's serialised form must stay byte-compatible with
  // pre-chain readers: no family/gamma/delay lines appear.
  const ScenarioSpec spec;
  const std::string text = spec.ToText();
  EXPECT_EQ(text.find("family="), std::string::npos);
  EXPECT_EQ(text.find("gamma="), std::string::npos);
  EXPECT_EQ(text.find("delay="), std::string::npos);
}

TEST(ScenarioSpecTest, ChainFamilyValidationConstraints) {
  auto chain = [](const std::string& extra) {
    return "name=c\ndescription=d\nfamily=chain\nprotocols=selfish\n" +
           extra;
  };
  // Unknown dynamics name.
  EXPECT_THROW(ScenarioSpec::FromText(
                   "name=c\ndescription=d\nfamily=chain\nprotocols=pow\n")
                   .Validate(),
               std::invalid_argument);
  // Chain cells are strictly two-group games.
  EXPECT_THROW(ScenarioSpec::FromText(chain("miners=5\n")).Validate(),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::FromText(chain("withhold=100\n")).Validate(),
               std::invalid_argument);
  // Gamma out of range / delay negative.
  EXPECT_THROW(ScenarioSpec::FromText(chain("gamma=1.5\n")).Validate(),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::FromText(chain("delay=-0.5\n")).Validate(),
               std::invalid_argument);
  // The chain axes are meaningless for the incentive family and must be
  // rejected loudly rather than silently ignored.
  EXPECT_THROW(ScenarioSpec::FromText(
                   "name=c\ndescription=d\nprotocols=pow\ngamma=0.5\n")
                   .Validate(),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::FromText(
                   "name=c\ndescription=d\nprotocols=pow\ndelay=0.1\n")
                   .Validate(),
               std::invalid_argument);
  // A well-formed chain grid validates.
  EXPECT_NO_THROW(
      ScenarioSpec::FromText(chain("gamma=0,1\ndelay=0\n")).Validate());
}

// --- mixed family ------------------------------------------------------------

TEST(ScenarioSpecTest, MixedFamilyResolvesPhysicsPerCell) {
  ScenarioSpec spec = ScenarioSpec::FromText(
      "name=mixed\n"
      "description=incentive and chain cells in one campaign\n"
      "family=mixed\n"
      "protocols=cpos,pow,selfish\n"
      "a=0.33\n"
      "gamma=0.5\n"
      "delay=0.1\n"
      "steps=100\n"
      "reps=10\n");
  EXPECT_NO_THROW(spec.Validate());
  const std::vector<CampaignCell> cells = spec.ExpandCells();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_FALSE(cells[0].chain_dynamics);  // cpos
  EXPECT_FALSE(cells[1].chain_dynamics);  // pow
  EXPECT_TRUE(cells[2].chain_dynamics);   // selfish
  // The chain axes only reach chain cells; incentive cells keep the zero
  // defaults so their store preimages match a pure incentive spec's.
  EXPECT_EQ(cells[0].gamma, 0.0);
  EXPECT_EQ(cells[0].delay, 0.0);
  EXPECT_EQ(cells[1].gamma, 0.0);
  EXPECT_EQ(cells[2].gamma, 0.5);
  EXPECT_EQ(cells[2].delay, 0.1);
}

TEST(ScenarioSpecTest, MixedFamilyRoundTripsThroughText) {
  const ScenarioSpec spec = ScenarioSpec::FromText(
      "name=mixed\ndescription=d\nfamily=mixed\n"
      "protocols=mlpos,forkrace\na=0.2\ngamma=0.25\ndelay=0.5\n");
  const std::string text = spec.ToText();
  EXPECT_NE(text.find("family=mixed"), std::string::npos);
  const ScenarioSpec parsed = ScenarioSpec::FromText(text);
  EXPECT_EQ(parsed.family, ScenarioFamily::kMixed);
  EXPECT_EQ(parsed.gammas, spec.gammas);
  EXPECT_EQ(parsed.delays, spec.delays);
  EXPECT_EQ(parsed.CellCount(), spec.CellCount());
}

TEST(ScenarioSpecTest, MixedFamilyValidationConstraints) {
  // Base omits gamma/delay (their {0} defaults validate) so each probe can
  // set them without tripping FromText's duplicate-key rejection.
  auto mixed = [](const std::string& extra) {
    return "name=m\ndescription=d\nfamily=mixed\nprotocols=pow,selfish\n" +
           extra;
  };
  EXPECT_NO_THROW(
      ScenarioSpec::FromText(mixed("gamma=0.5\ndelay=0\n")).Validate());
  // Every token must resolve in the incentive OR chain namespace.
  EXPECT_THROW(
      ScenarioSpec::FromText(
          "name=m\ndescription=d\nfamily=mixed\nprotocols=pow,nope\n")
          .Validate(),
      std::invalid_argument);
  // The chain cells keep the two-party restrictions, which the mixed
  // family therefore imposes on the whole grid.
  EXPECT_THROW(ScenarioSpec::FromText(mixed("miners=5\n")).Validate(),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::FromText(mixed("withhold=100\n")).Validate(),
               std::invalid_argument);
  // Chain axes stay singletons: a gamma sweep would multiply the incentive
  // cells by identical copies.
  EXPECT_THROW(ScenarioSpec::FromText(mixed("gamma=0.1,0.2\n")).Validate(),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::FromText(mixed("delay=0,0.25\n")).Validate(),
               std::invalid_argument);
}

TEST(ScenarioSpecTest, ChainCellLabelNamesDynamicsAndAxes) {
  ScenarioSpec spec = ScenarioSpec::FromText(
      "name=c\ndescription=d\nfamily=chain\nprotocols=forkrace\n"
      "a=0.3\ngamma=0.5\ndelay=0.2\n");
  const std::vector<CampaignCell> cells = spec.ExpandCells();
  ASSERT_EQ(cells.size(), 1u);
  const std::string label = cells[0].Label();
  EXPECT_NE(label.find("forkrace"), std::string::npos) << label;
  EXPECT_NE(label.find("gamma"), std::string::npos) << label;
  EXPECT_NE(label.find("delay"), std::string::npos) << label;
}

}  // namespace
}  // namespace fairchain::sim
