// Tests for the campaign runner: thread-count invariance, equivalence with
// the MonteCarloEngine on a single cell, ordered streaming emission, and
// the interleaved job plan that makes campaigns parallel across cells.

#include "sim/campaign.hpp"

#include <set>

#include <gtest/gtest.h>

#include "core/monte_carlo.hpp"
#include "protocol/model_factory.hpp"
#include "sim/cost_model.hpp"
#include "sim/result_sink.hpp"

namespace fairchain::sim {
namespace {

ScenarioSpec SmallSpec() {
  ScenarioSpec spec;
  spec.name = "small";
  spec.description = "small grid for tests";
  spec.protocols = {"pow", "mlpos"};
  spec.allocations = {0.2, 0.3};
  spec.steps = 200;
  spec.replications = 64;
  spec.seed = 7;
  spec.checkpoint_count = 4;
  return spec;
}

// Collects rows in arrival order.
class CollectSink : public ResultSink {
 public:
  void WriteRow(const CampaignRow& row) override { rows.push_back(row); }
  std::vector<CampaignRow> rows;
};

TEST(CampaignRunnerTest, RowsArriveInCellThenCheckpointOrder) {
  CampaignOptions options;
  options.threads = 4;
  CollectSink sink;
  const auto outcomes = CampaignRunner(options).Run(SmallSpec(), {&sink});
  EXPECT_EQ(outcomes.size(), 4u);
  ASSERT_EQ(sink.rows.size(), 4u * 4u);  // 4 cells x 4 checkpoints
  for (std::size_t i = 1; i < sink.rows.size(); ++i) {
    const bool cell_advances = sink.rows[i].cell > sink.rows[i - 1].cell;
    const bool checkpoint_advances =
        sink.rows[i].cell == sink.rows[i - 1].cell &&
        sink.rows[i].checkpoint == sink.rows[i - 1].checkpoint + 1;
    EXPECT_TRUE(cell_advances || checkpoint_advances) << "row " << i;
  }
}

TEST(CampaignRunnerTest, ResultsIdenticalForAnyThreadCount) {
  auto run = [](unsigned threads) {
    CampaignOptions options;
    options.threads = threads;
    CollectSink sink;
    CampaignRunner(options).Run(SmallSpec(), {&sink});
    return sink.rows;
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].cell, parallel[i].cell);
    EXPECT_EQ(serial[i].step, parallel[i].step);
    // Bitwise equality: the determinism contract, not a tolerance check.
    EXPECT_EQ(serial[i].mean, parallel[i].mean) << i;
    EXPECT_EQ(serial[i].p05, parallel[i].p05) << i;
    EXPECT_EQ(serial[i].unfair_probability, parallel[i].unfair_probability)
        << i;
  }
}

TEST(CampaignRunnerTest, SingleCellMatchesMonteCarloEngine) {
  ScenarioSpec spec = SmallSpec();
  spec.protocols = {"mlpos"};
  spec.allocations = {0.2};

  const auto outcomes = CampaignRunner().Run(spec, {});
  ASSERT_EQ(outcomes.size(), 1u);

  // The same cell through the engine directly, seeded with the cell seed.
  core::SimulationConfig config = CellConfig(spec, 0);
  config.threads = 1;
  core::MonteCarloEngine engine(config, spec.fairness);
  const auto model = protocol::MakeModel("mlpos", 0.01, 0.1, 32);
  const auto direct = engine.RunTwoMiner(*model, 0.2);

  ASSERT_EQ(outcomes[0].result.checkpoints.size(),
            direct.checkpoints.size());
  for (std::size_t c = 0; c < direct.checkpoints.size(); ++c) {
    EXPECT_EQ(outcomes[0].result.checkpoints[c].mean,
              direct.checkpoints[c].mean);
    EXPECT_EQ(outcomes[0].result.checkpoints[c].unfair_probability,
              direct.checkpoints[c].unfair_probability);
  }
}

TEST(CampaignRunnerTest, CellConfigPlumbsFinalLambdaRetention) {
  ScenarioSpec spec = SmallSpec();
  EXPECT_TRUE(CellConfig(spec, 0).keep_final_lambdas);
  spec.keep_final_lambdas = false;
  EXPECT_FALSE(CellConfig(spec, 0).keep_final_lambdas);
  const auto outcomes = CampaignRunner().Run(spec, {});
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.result.final_lambdas.empty());
  }
}

TEST(CampaignRunnerTest, CellSeedsAreDistinctAndIndexStable) {
  const std::uint64_t master = 20210620;
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 100; ++i) seeds.insert(CellSeed(master, i));
  EXPECT_EQ(seeds.size(), 100u);
  // A cell's seed depends only on (master, index): growing the grid never
  // reseeds existing cells.
  EXPECT_EQ(CellSeed(master, 3), CellSeed(master, 3));
  EXPECT_NE(CellSeed(master, 3), CellSeed(master + 1, 3));
}

TEST(CampaignRunnerTest, PlanInterleavesAllCellsInOneBatch) {
  // Steps large enough that a single replication's modeled cost keeps the
  // per-chunk target above the 1 ms floor; the cost-aware planner then
  // splits each cell into ~threads*4/cells chunks regardless of how the
  // EWMA has drifted (equal-cost cells make the split scale-invariant).
  CostModel::Global().Reset();
  ScenarioSpec spec = SmallSpec();
  spec.steps = 200000;
  CampaignOptions options;
  options.threads = 4;
  const auto jobs = CampaignRunner(options).PlanJobs(spec);
  // Every cell contributes multiple chunks to the single submitted batch,
  // so workers drain cells concurrently rather than serially.
  std::set<std::size_t> cells;
  std::size_t chunks_of_first = 0;
  for (const ChunkJob& job : jobs) {
    cells.insert(job.cell);
    if (job.cell == 0) ++chunks_of_first;
  }
  EXPECT_EQ(cells.size(), 4u);
  EXPECT_GT(chunks_of_first, 1u);
  // Chunks tile [0, replications) exactly.
  std::size_t covered = 0;
  for (const ChunkJob& job : jobs) {
    if (job.cell == 0) covered += job.end - job.begin;
  }
  EXPECT_EQ(covered, 64u);
}

TEST(CampaignRunnerTest, TinyCellsNeverShatterBelowTheCostFloor) {
  // Degenerate case: cells so cheap that cost-proportional sizing would
  // produce sub-microsecond chunks.  The 1 ms minimum-cost floor collapses
  // each 200-step cell to a single chunk instead of shattering it into
  // per-replication slivers whose scheduling overhead dwarfs the work.
  CostModel::Global().Reset();
  CampaignOptions options;
  options.threads = 4;
  const auto jobs = CampaignRunner(options).PlanJobs(SmallSpec());
  ASSERT_EQ(jobs.size(), 4u);
  for (const ChunkJob& job : jobs) {
    EXPECT_EQ(job.begin, 0u);
    EXPECT_EQ(job.end, 64u);
    EXPECT_GT(job.cost_ns, 0.0);
  }
}

TEST(CampaignRunnerTest, StaticPolicyKeepsUniformChunks) {
  // Opting out of cost-aware planning restores the legacy uniform split:
  // ceil-divided chunks of equal size, identical across cells.
  CampaignOptions options;
  options.threads = 4;
  options.schedule = SchedulePolicy::kStatic;
  const auto jobs = CampaignRunner(options).PlanJobs(SmallSpec());
  std::size_t chunks_of_first = 0;
  for (const ChunkJob& job : jobs) {
    if (job.cell == 0) {
      ++chunks_of_first;
      EXPECT_EQ(job.end - job.begin, 4u);
    }
  }
  EXPECT_EQ(chunks_of_first, 16u);
}

TEST(CampaignRunnerTest, WithholdPeriodReachesTheSimulation) {
  ScenarioSpec spec = SmallSpec();
  spec.protocols = {"mlpos"};
  spec.allocations = {0.2};
  spec.withhold_periods = {0, 100};
  const auto outcomes = CampaignRunner().Run(spec, {});
  ASSERT_EQ(outcomes.size(), 2u);
  // Same seed split index differs per cell, so compare configs not values:
  // the withholding cell must carry the period into its SimulationConfig.
  EXPECT_EQ(outcomes[0].result.config.withhold_period, 0u);
  EXPECT_EQ(outcomes[1].result.config.withhold_period, 100u);
}

}  // namespace
}  // namespace fairchain::sim
