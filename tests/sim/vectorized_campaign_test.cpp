// The `stepping` spec key through the sim layer: parsing / round-trip /
// overrides, CellConfig propagation, the store-key compatibility rule
// (vectorized keys fork ONLY for cells the mode actually accelerates), and
// campaign-level determinism of vectorized cells across thread counts.

#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include "core/monte_carlo.hpp"
#include "sim/result_sink.hpp"
#include "sim/scenario_spec.hpp"
#include "support/flags.hpp"

namespace fairchain::sim {
namespace {

ScenarioSpec VectorizedSpec(const std::string& protocol) {
  ScenarioSpec spec;
  spec.name = "vectorized-test";
  spec.protocols = {protocol};
  spec.steps = 200;
  spec.replications = 48;
  spec.seed = 11;
  spec.checkpoint_count = 3;
  spec.stepping = core::SteppingMode::kVectorized;
  return spec;
}

class CollectSink : public ResultSink {
 public:
  void WriteRow(const CampaignRow& row) override { rows.push_back(row); }
  std::vector<CampaignRow> rows;
};

TEST(SteppingSpecKeyTest, ParsesRoundTripsAndRejectsGarbage) {
  EXPECT_EQ(ScenarioSpec().stepping, core::SteppingMode::kScalar);
  ScenarioSpec spec = ScenarioSpec::FromText("stepping=vectorized\n");
  EXPECT_EQ(spec.stepping, core::SteppingMode::kVectorized);
  const ScenarioSpec parsed = ScenarioSpec::FromText(spec.ToText());
  EXPECT_EQ(parsed.stepping, core::SteppingMode::kVectorized);
  ScenarioSpec overridden;
  overridden.ApplyOverrides(
      FlagSet::Parse({"--stepping", "vectorized"}));
  EXPECT_EQ(overridden.stepping, core::SteppingMode::kVectorized);
  EXPECT_THROW(ScenarioSpec::FromText("stepping=simd\n"),
               std::invalid_argument);
}

TEST(SteppingSpecKeyTest, CellConfigPlumbsSteppingMode) {
  ScenarioSpec spec = VectorizedSpec("pow");
  EXPECT_EQ(CellConfig(spec, 0).stepping, core::SteppingMode::kVectorized);
  spec.stepping = core::SteppingMode::kScalar;
  EXPECT_EQ(CellConfig(spec, 0).stepping, core::SteppingMode::kScalar);
}

TEST(SteppingSpecKeyTest, StoreKeysForkOnlyForAcceleratedCells) {
  // PoW resolves vectorized: different keystream, different results, so
  // the content address MUST differ from the scalar cell's.
  ScenarioSpec pow = VectorizedSpec("pow");
  const std::vector<CampaignCell> pow_cells = pow.ExpandCells();
  const std::string pow_vectorized = CellStorePreimage(pow, pow_cells[0]);
  pow.stepping = core::SteppingMode::kScalar;
  const std::string pow_scalar = CellStorePreimage(pow, pow_cells[0]);
  EXPECT_NE(pow_vectorized, pow_scalar);
  EXPECT_NE(pow_vectorized.find("stepping=vectorized"), std::string::npos);
  EXPECT_EQ(pow_scalar.find("stepping"), std::string::npos);

  // ML-PoS falls back to scalar byte-identical results, so the request
  // must NOT fork its key — a warm store stays warm.
  ScenarioSpec mlpos = VectorizedSpec("mlpos");
  const std::vector<CampaignCell> mlpos_cells = mlpos.ExpandCells();
  const std::string mlpos_vectorized =
      CellStorePreimage(mlpos, mlpos_cells[0]);
  mlpos.stepping = core::SteppingMode::kScalar;
  EXPECT_EQ(mlpos_vectorized, CellStorePreimage(mlpos, mlpos_cells[0]));
}

TEST(SteppingSpecKeyTest, VectorizedCampaignIsThreadCountInvariant) {
  auto run = [](unsigned threads) {
    CampaignOptions options;
    options.threads = threads;
    CollectSink sink;
    CampaignRunner(options).Run(VectorizedSpec("pow"), {&sink});
    return sink.rows;
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].mean, parallel[i].mean) << i;
    EXPECT_EQ(serial[i].p05, parallel[i].p05) << i;
    EXPECT_EQ(serial[i].gini, parallel[i].gini) << i;
  }
}

TEST(SteppingSpecKeyTest, VectorizedChangesAcceleratedRowsOnly) {
  ScenarioSpec spec = VectorizedSpec("pow");
  spec.protocols = {"pow", "mlpos"};
  CollectSink vectorized;
  CampaignRunner().Run(spec, {&vectorized});
  spec.stepping = core::SteppingMode::kScalar;
  CollectSink scalar;
  CampaignRunner().Run(spec, {&scalar});
  ASSERT_EQ(vectorized.rows.size(), scalar.rows.size());
  bool pow_differs = false;
  for (std::size_t i = 0; i < scalar.rows.size(); ++i) {
    ASSERT_EQ(vectorized.rows[i].protocol, scalar.rows[i].protocol);
    if (scalar.rows[i].protocol == "ML-PoS") {
      // Fallback cells: byte-identical to the scalar campaign.
      EXPECT_EQ(vectorized.rows[i].mean, scalar.rows[i].mean) << i;
      EXPECT_EQ(vectorized.rows[i].p95, scalar.rows[i].p95) << i;
    } else if (vectorized.rows[i].mean != scalar.rows[i].mean) {
      pow_differs = true;
    }
  }
  // The accelerated protocol really took the other keystream.
  EXPECT_TRUE(pow_differs);
}

}  // namespace
}  // namespace fairchain::sim
