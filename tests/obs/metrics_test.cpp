// MetricsRegistry contracts: idempotent registration with stable
// references, lock-free recording semantics, log-bucket quantiles, and
// deterministic snapshot order.  Metric names are unique per test — the
// registry is process-global and never forgets a registration.

#include "obs/metrics.hpp"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fairchain::obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ConcurrentAddsAreExactAfterJoin) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(LatencyHistogramTest, CountsAndTotals) {
  LatencyHistogram histogram;
  histogram.Record(100);
  histogram.Record(200);
  histogram.Record(300);
  EXPECT_EQ(histogram.Count(), 3u);
  EXPECT_EQ(histogram.TotalNanos(), 600u);
}

TEST(LatencyHistogramTest, EmptyHistogramQuantileIsZero) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.QuantileNanos(0.5), 0.0);
  EXPECT_EQ(histogram.QuantileNanos(0.99), 0.0);
}

TEST(LatencyHistogramTest, QuantileLandsInTheSampleBucket) {
  LatencyHistogram histogram;
  // 100 ns lives in bucket floor(log2(100)) = 6, i.e. [64, 128).
  for (int i = 0; i < 1000; ++i) histogram.Record(100);
  const double p50 = histogram.QuantileNanos(0.5);
  EXPECT_GE(p50, 64.0);
  EXPECT_LT(p50, 128.0);
  const double p99 = histogram.QuantileNanos(0.99);
  EXPECT_GE(p99, 64.0);
  EXPECT_LT(p99, 128.0);
}

TEST(LatencyHistogramTest, QuantilesSeparateDistinctBuckets) {
  LatencyHistogram histogram;
  // 90 fast samples (~1 µs) and 10 slow ones (~1 ms): the p50 must report
  // the fast bucket and the p99 the slow one, two decades apart.
  for (int i = 0; i < 90; ++i) histogram.Record(1000);
  for (int i = 0; i < 10; ++i) histogram.Record(1000000);
  EXPECT_LT(histogram.QuantileNanos(0.5), 3000.0);
  EXPECT_GT(histogram.QuantileNanos(0.99), 500000.0);
}

TEST(LatencyHistogramTest, ZeroAndOneNanosecondShareBucketZero) {
  LatencyHistogram histogram;
  histogram.Record(0);
  histogram.Record(1);
  const auto buckets = histogram.BucketCounts();
  EXPECT_EQ(buckets[0], 2u);
  const double p50 = histogram.QuantileNanos(0.5);
  EXPECT_GE(p50, 0.0);
  EXPECT_LT(p50, 2.0);
}

TEST(LatencyHistogramTest, SingleSampleQuantilesPinToBucketMidpoint) {
  // One 100 ns sample, bucket [64, 128): with rank 1 of 1 the
  // interpolation point is the bucket midpoint, for EVERY quantile.  Pinned
  // exactly — this is the smallest population where an interpolation
  // rounding bug could escape the bucket.
  LatencyHistogram histogram;
  histogram.Record(100);
  EXPECT_EQ(histogram.QuantileNanos(0.50), 96.0);
  EXPECT_EQ(histogram.QuantileNanos(0.99), 96.0);
  EXPECT_EQ(histogram.QuantileNanos(0.0), 96.0);
  EXPECT_EQ(histogram.QuantileNanos(1.0), 96.0);
}

TEST(LatencyHistogramTest, BulkRecordMatchesRepeatedSingleRecords) {
  LatencyHistogram bulk;
  LatencyHistogram loop;
  bulk.Record(1000, 90);
  bulk.Record(1000000, 10);
  for (int i = 0; i < 90; ++i) loop.Record(1000);
  for (int i = 0; i < 10; ++i) loop.Record(1000000);
  EXPECT_EQ(bulk.Count(), loop.Count());
  EXPECT_EQ(bulk.TotalNanos(), loop.TotalNanos());
  EXPECT_EQ(bulk.BucketCounts(), loop.BucketCounts());
  EXPECT_EQ(bulk.QuantileNanos(0.5), loop.QuantileNanos(0.5));
  EXPECT_EQ(bulk.QuantileNanos(0.99), loop.QuantileNanos(0.99));
}

TEST(LatencyHistogramTest, QuantileNeverLeavesItsBucketAtExtremePopulations) {
  // Regression for the below-bucket-edge bug: with totals near 2^53 the
  // rank computation `(uint64)(q * total + 0.5)` rounds PAST total, and
  // the bucket scan used to fall off the end and report 0.0 — far below
  // the lower edge of the only populated bucket.  The rank clamp keeps
  // every quantile inside [2^b, 2^(b+1)).
  LatencyHistogram histogram;
  constexpr std::uint64_t kHuge = 1ULL << 53;  // above double's exact ints
  histogram.Record(100, kHuge - 1);
  for (const double q : {0.5, 0.99, 0.999999999999, 1.0}) {
    const double value = histogram.QuantileNanos(q);
    EXPECT_GE(value, 64.0) << "q=" << q;
    EXPECT_LT(value, 128.0) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, QuantilesAreMonotoneAcrossBuckets) {
  LatencyHistogram histogram;
  histogram.Record(100, 1ULL << 40);
  histogram.Record(100000, 1ULL << 40);
  double previous = 0.0;
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    const double value = histogram.QuantileNanos(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
  // And the extremes stay inside their respective sample buckets.
  EXPECT_LT(histogram.QuantileNanos(0.0), 128.0);
  EXPECT_GE(histogram.QuantileNanos(1.0), 65536.0);
  EXPECT_LT(histogram.QuantileNanos(1.0), 131072.0);
}

TEST(LatencyHistogramTest, ResetZeroesEverything) {
  LatencyHistogram histogram;
  histogram.Record(12345);
  histogram.Reset();
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_EQ(histogram.TotalNanos(), 0u);
  EXPECT_EQ(histogram.QuantileNanos(0.5), 0.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameObject) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& a = registry.GetCounter("test.registry.same_counter");
  Counter& b = registry.GetCounter("test.registry.same_counter");
  EXPECT_EQ(&a, &b);
  LatencyHistogram& h1 = registry.GetHistogram("test.registry.same_histogram");
  LatencyHistogram& h2 = registry.GetHistogram("test.registry.same_histogram");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, ReferencesSurviveFurtherRegistration) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& stable = registry.GetCounter("test.registry.stable");
  stable.Add(7);
  // A burst of registrations must not move or invalidate the reference.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("test.registry.churn_" + std::to_string(i));
  }
  EXPECT_EQ(stable.Value(), 7u);
  EXPECT_EQ(&registry.GetCounter("test.registry.stable"), &stable);
}

TEST(MetricsRegistryTest, SnapshotsAreSortedByName) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.registry.order_b");
  registry.GetCounter("test.registry.order_a");
  registry.GetCounter("test.registry.order_c");
  const std::vector<CounterSnapshot> counters = registry.Counters();
  for (std::size_t i = 1; i < counters.size(); ++i) {
    EXPECT_LT(counters[i - 1].name, counters[i].name);
  }
}

TEST(MetricsRegistryTest, SnapshotCarriesQuantiles) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  LatencyHistogram& histogram =
      registry.GetHistogram("test.registry.snapshot_histogram");
  for (int i = 0; i < 100; ++i) histogram.Record(4096);
  for (const HistogramSnapshot& snapshot : registry.Histograms()) {
    if (snapshot.name != "test.registry.snapshot_histogram") continue;
    EXPECT_EQ(snapshot.count, 100u);
    EXPECT_EQ(snapshot.total_ns, 409600u);
    EXPECT_GE(snapshot.p50_ns, 4096.0);
    EXPECT_LT(snapshot.p50_ns, 8192.0);
    return;
  }
  FAIL() << "snapshot for registered histogram missing";
}

TEST(MetricsRegistryTest, ResetKeepsRegistrationsAndHandedOutReferences) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("test.registry.reset_counter");
  counter.Add(5);
  registry.Reset();
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add(2);
  EXPECT_EQ(registry.GetCounter("test.registry.reset_counter").Value(), 2u);
}

}  // namespace
}  // namespace fairchain::obs
