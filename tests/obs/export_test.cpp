// Exporter schema pins: the trace-event JSON shape check_trace.py and
// Perfetto rely on, the metrics JSONL line schema, and the summary table.
// These are contract tests — loosening them silently breaks external
// consumers of --trace/--metrics files.

#include "obs/export.hpp"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fairchain::obs {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTraceEnabled(false);
    TraceCollector::Global().Clear();
  }
  void TearDown() override {
    SetTraceEnabled(false);
    TraceCollector::Global().Clear();
  }
};

std::size_t CountOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST_F(ExportTest, EmptyTraceIsStillAValidDocument) {
  std::ostringstream out;
  WriteChromeTrace(out);
  const std::string trace = out.str();
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // The parent process track is always named.
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"fairchain\""), std::string::npos);
}

TEST_F(ExportTest, LocalSpansBecomeCompleteEventsOnPidZero) {
  SetTraceEnabled(true);
  { Span span("export.local", 9); }
  SetTraceEnabled(false);
  std::ostringstream out;
  WriteChromeTrace(out);
  const std::string trace = out.str();
  EXPECT_NE(trace.find("\"name\":\"export.local\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(trace.find("\"args\":{\"v\":9}"), std::string::npos);
  EXPECT_NE(trace.find("\"ts\":"), std::string::npos);
  EXPECT_NE(trace.find("\"dur\":"), std::string::npos);
}

TEST_F(ExportTest, ImportedShardSpansGetTheirOwnNamedTrack) {
  SetTraceEnabled(true);
  { Span span("export.shard_side"); }
  const std::string payload =
      TraceCollector::Global().DrainSerializedSpans();
  ASSERT_TRUE(TraceCollector::Global().ImportShardSpans(2, payload));
  SetTraceEnabled(false);
  std::ostringstream out;
  WriteChromeTrace(out);
  const std::string trace = out.str();
  // Shard 2 is pid 3 (parent is 0, shard s is s + 1) with a named track.
  EXPECT_NE(trace.find("\"name\":\"shard 2\""), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"export.shard_side\""), std::string::npos);
}

TEST_F(ExportTest, SpanNamesAreJsonEscaped) {
  SetTraceEnabled(true);
  { Span span("export.\"quoted\""); }
  SetTraceEnabled(false);
  std::ostringstream out;
  WriteChromeTrace(out);
  EXPECT_NE(out.str().find("export.\\\"quoted\\\""), std::string::npos);
}

TEST_F(ExportTest, DroppedSpansAreReportedAsAnInstantEvent) {
  SetTraceEnabled(true);
  for (std::size_t i = 0; i < TraceCollector::kRingCapacity + 5; ++i) {
    Span span("export.flood");
  }
  SetTraceEnabled(false);
  std::ostringstream out;
  WriteChromeTrace(out);
  const std::string trace = out.str();
  EXPECT_NE(trace.find("\"name\":\"trace.dropped_spans\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"count\":5"), std::string::npos);
}

TEST_F(ExportTest, BracesBalanceInTheTraceDocument) {
  SetTraceEnabled(true);
  { Span span("export.balance", 1); }
  SetTraceEnabled(false);
  std::ostringstream out;
  WriteChromeTrace(out);
  const std::string trace = out.str();
  EXPECT_EQ(CountOccurrences(trace, "{"), CountOccurrences(trace, "}"));
  EXPECT_EQ(CountOccurrences(trace, "["), CountOccurrences(trace, "]"));
}

TEST_F(ExportTest, MetricsJsonlPinsTheLineSchema) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("export.test_counter").Add(11);
  LatencyHistogram& histogram =
      registry.GetHistogram("export.test_histogram");
  for (int i = 0; i < 10; ++i) histogram.Record(1000);
  std::ostringstream out;
  WriteMetricsJsonl(out);
  const std::string jsonl = out.str();
  EXPECT_NE(jsonl.find("{\"type\":\"counter\",\"name\":"
                       "\"export.test_counter\",\"value\":11}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("{\"type\":\"histogram\",\"name\":"
                       "\"export.test_histogram\",\"count\":10,"
                       "\"total_ns\":10000,"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"p50_ns\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"p95_ns\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"p99_ns\":"), std::string::npos);
  // One JSON object per line, every line an object.
  std::istringstream lines(jsonl);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST_F(ExportTest, SummaryTableListsCountersAndHistograms) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("export.table_counter").Add(3);
  registry.GetHistogram("export.table_histogram").Record(5000);
  const Table table = MetricsSummaryTable();
  EXPECT_EQ(table.columns(), 6u);
  EXPECT_EQ(table.rows(), registry.Counters().size() +
                              registry.Histograms().size());
}

}  // namespace
}  // namespace fairchain::obs
