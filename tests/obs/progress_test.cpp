// FormatEta boundary behaviour: the progress line's ETA field is one
// bounded-width token whatever the rate estimate does.  Regressions here
// rendered "00:60" (seconds rounding up without a carry), unbounded hour
// fields, and — worst — an undefined-behaviour double-to-uint64 cast when
// an early near-zero reps/s sample produced an astronomical estimate.

#include "obs/progress.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace fairchain::obs {
namespace {

TEST(FormatEtaTest, ZeroAndSmallValues) {
  EXPECT_EQ(FormatEta(0.0), "00:00");
  EXPECT_EQ(FormatEta(0.4), "00:00");
  EXPECT_EQ(FormatEta(1.0), "00:01");
  EXPECT_EQ(FormatEta(59.0), "00:59");
  EXPECT_EQ(FormatEta(61.0), "01:01");
  EXPECT_EQ(FormatEta(3599.0), "59:59");
}

TEST(FormatEtaTest, SecondsRoundingCarriesIntoMinutes) {
  // The "00:60" regression: 59.7 s must carry into the minute field.
  EXPECT_EQ(FormatEta(59.7), "01:00");
  EXPECT_EQ(FormatEta(59.4), "00:59");
  EXPECT_EQ(FormatEta(119.6), "02:00");
}

TEST(FormatEtaTest, CarryPropagatesIntoHours) {
  EXPECT_EQ(FormatEta(3599.6), "1:00:00");
  EXPECT_EQ(FormatEta(3600.0), "1:00:00");
  EXPECT_EQ(FormatEta(3661.0), "1:01:01");
  EXPECT_EQ(FormatEta(7322.4), "2:02:02");
}

TEST(FormatEtaTest, HourFieldIsCappedNotUnbounded) {
  EXPECT_EQ(FormatEta(99.0 * 3600 + 59 * 60 + 59), "99:59:59");
  // 99:59:59.5 rounds to 100 hours: saturate instead of widening.
  EXPECT_EQ(FormatEta(359999.5), "99:59:59+");
  EXPECT_EQ(FormatEta(1.0e6), "99:59:59+");
}

TEST(FormatEtaTest, AstronomicalEstimatesSaturateInsteadOfOverflowing) {
  // A reps/s estimate of ~1e-300 early in a run yields remaining seconds
  // far beyond 2^64; the raw cast the old code performed is undefined
  // behaviour there.
  EXPECT_EQ(FormatEta(1.0e300), "99:59:59+");
  EXPECT_EQ(FormatEta(std::numeric_limits<double>::max()), "99:59:59+");
  EXPECT_EQ(FormatEta(std::numeric_limits<double>::infinity()), "99:59:59+");
}

TEST(FormatEtaTest, InvalidEstimatesRenderUnknown) {
  EXPECT_EQ(FormatEta(std::numeric_limits<double>::quiet_NaN()), "--:--");
  EXPECT_EQ(FormatEta(-1.0), "--:--");
  EXPECT_EQ(FormatEta(-std::numeric_limits<double>::infinity()), "--:--");
}

TEST(EstimateEtaSecondsTest, BoundaryCases) {
  // Completed work reports zero remaining regardless of the rate.
  EXPECT_EQ(EstimateEtaSeconds(10.0, 100.0, 100.0), 0.0);
  EXPECT_EQ(EstimateEtaSeconds(10.0, 150.0, 100.0), 0.0);
  // No progress yet (or a meaningless denominator): unknown, not infinity.
  EXPECT_TRUE(std::isnan(EstimateEtaSeconds(10.0, 0.0, 100.0)));
  EXPECT_TRUE(std::isnan(EstimateEtaSeconds(0.0, 50.0, 100.0)));
  EXPECT_TRUE(std::isnan(EstimateEtaSeconds(10.0, 50.0, 0.0)));
  // Plain proportional case: half done in 10 s leaves 10 s.
  EXPECT_DOUBLE_EQ(EstimateEtaSeconds(10.0, 50.0, 100.0), 10.0);
}

TEST(EstimateEtaSecondsTest, CostWeightingKeepsEtaHonestOnSkewedCampaigns) {
  // A campaign whose cheap cells finish first: 90% of the REPLICATIONS are
  // done after 10 s, but only 10% of the modeled COST.  A replication-
  // weighted ETA would collapse to ~1.1 s and then explode once the
  // expensive cells start; the cost-weighted estimate says 90 s of work
  // remains from the start.
  const double rep_weighted = EstimateEtaSeconds(10.0, 90.0, 100.0);
  const double cost_weighted = EstimateEtaSeconds(10.0, 10.0, 100.0);
  EXPECT_NEAR(rep_weighted, 10.0 / 9.0, 1e-9);
  EXPECT_DOUBLE_EQ(cost_weighted, 90.0);
  EXPECT_GT(cost_weighted, 50.0 * rep_weighted);
}

TEST(ProgressReporterTest, DisabledReporterNeverStartsItsThread) {
  ProgressReporter::Options options;
  options.enabled = false;
  ProgressReporter reporter(options);
  EXPECT_FALSE(reporter.active());
  reporter.Stop();  // idempotent no-op
}

}  // namespace
}  // namespace fairchain::obs
